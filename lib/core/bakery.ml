open Tbwf_sim
open Tbwf_registers

type t = {
  n : int;
  choosing : bool Atomic_reg.t array;
  tickets : int Atomic_reg.t array;  (* 0 = not competing *)
}

let create rt ~name =
  let n = Runtime.n rt in
  {
    n;
    choosing =
      Array.init n (fun i ->
          Atomic_reg.create rt
            ~name:(Fmt.str "%s.choosing[%d]" name i)
            ~codec:Codec.bool ~init:false);
    tickets =
      Array.init n (fun i ->
          Atomic_reg.create rt
            ~name:(Fmt.str "%s.ticket[%d]" name i)
            ~codec:Codec.int ~init:0);
  }

let lock t =
  let pid = Runtime.self () in
  Atomic_reg.write t.choosing.(pid) true;
  let highest = ref 0 in
  for q = 0 to t.n - 1 do
    let ticket = Atomic_reg.read t.tickets.(q) in
    if ticket > !highest then highest := ticket
  done;
  Atomic_reg.write t.tickets.(pid) (!highest + 1);
  Atomic_reg.write t.choosing.(pid) false;
  for q = 0 to t.n - 1 do
    if q <> pid then begin
      (* Wait for q to finish choosing, then wait until our (ticket, pid)
         is smaller than q's. Both waits re-read shared registers, so they
         consume steps and observe updates. *)
      let rec wait_choosing () =
        if Atomic_reg.read t.choosing.(q) then wait_choosing ()
      in
      wait_choosing ();
      let my_ticket = Atomic_reg.peek t.tickets.(pid) in
      let rec wait_turn () =
        let ticket_q = Atomic_reg.read t.tickets.(q) in
        if ticket_q <> 0 && (ticket_q, q) < (my_ticket, pid) then wait_turn ()
      in
      wait_turn ()
    end
  done

let unlock t =
  let pid = Runtime.self () in
  Atomic_reg.write t.tickets.(pid) 0

let with_lock t f =
  lock t;
  let result = f () in
  unlock t;
  result
