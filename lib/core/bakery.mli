(** Lamport's bakery lock from atomic registers — the lock-based route to
    mutual exclusion, as a baseline.

    Starvation-free when every process inside its critical section keeps
    taking steps; but a process that stalls (or crashes) while holding the
    lock — or even while merely choosing its ticket — blocks every other
    process forever. This is the failure mode that motivates non-blocking
    progress conditions in the first place (paper §1), and experiment E12
    uses it as the fourth route: under the asymmetric schedule the lock
    serializes everyone behind the slow ticket-holder, and a crash inside
    the critical section is fatal to the system. *)

type t

val create : Tbwf_sim.Runtime.t -> name:string -> t
(** One choosing flag and one ticket register per process. *)

val lock : t -> unit
(** Acquire; blocks (busy-waiting) until the caller holds the lock. Must
    run inside a task. *)

val unlock : t -> unit
(** Release. Must be called by the current holder. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [lock], run the thunk, [unlock] — the thunk must not raise. *)
