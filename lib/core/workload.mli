(** Client workload drivers: spawn per-process client tasks that issue
    operations through a shared-object front-end and count completions. *)

type stats = {
  issued : int array;  (** ops started, per pid *)
  completed : int array;  (** ops finished, per pid *)
  last_response : Tbwf_sim.Value.t option array;
}

val fresh_stats : n:int -> stats

val spawn_clients :
  Tbwf_sim.Runtime.t ->
  pids:int list ->
  stats:stats ->
  invoke:(Tbwf_sim.Value.t -> Tbwf_sim.Value.t) ->
  next_op:(pid:int -> k:int -> Tbwf_sim.Value.t option) ->
  unit
(** Spawn one client task per pid. Client [p] repeatedly asks
    [next_op ~pid:p ~k] for its k-th operation (k starts at 0) and runs it
    through [invoke], updating [stats]; it stops when [next_op] returns
    [None]. *)

val forever : Tbwf_sim.Value.t -> pid:int -> k:int -> Tbwf_sim.Value.t option
(** An endless stream of the same operation. *)

val n_times : int -> Tbwf_sim.Value.t -> pid:int -> k:int -> Tbwf_sim.Value.t option
(** The same operation, [n] times, then stop. *)

(** {2 The open-loop generator}

    The closed loop above issues the next operation when the previous
    one completes, so the offered load adapts to the system's pace and a
    degrading system just looks politely slower. Open-loop traffic
    decouples the two: each client draws a deterministic Poisson arrival
    schedule (exponential inter-arrival gaps) and a Zipf-popular key per
    arrival from a private stream derived statelessly from (seed, pid) —
    {!Tbwf_sim.Rng.task_seed} — and issues each operation no earlier
    than its arrival step. A client that falls behind issues the
    backlogged operation immediately, so degradation shows up as
    queueing. Completions still update [stats] and emit
    [Sink.Op_complete], so every online checker works unchanged. *)

module Open_loop : sig
  type profile = {
    mean_gap : float;  (** mean inter-arrival gap, in steps (> 0) *)
    keys : int;  (** Zipf key universe size (>= 1) *)
    zipf : float;  (** Zipf exponent; 0 is uniform popularity *)
  }

  val default : profile
  (** 40-step mean gaps over 64 keys at exponent 1.1. *)

  val spawn_clients :
    Tbwf_sim.Runtime.t ->
    pids:int list ->
    stats:stats ->
    invoke:(Tbwf_sim.Value.t -> Tbwf_sim.Value.t) ->
    profile:profile ->
    seed:int64 ->
    until:int ->
    op_of_key:(pid:int -> k:int -> key:int -> Tbwf_sim.Value.t) ->
    unit
  (** Spawn one open-loop client per pid (layer [App], like the closed
      loop). Client [p]'s k-th operation is [op_of_key ~pid:p ~k ~key]
      for its k-th popularity draw; generation stops at the first
      arrival at or past step [until]. *)

  val client_body :
    Tbwf_sim.Runtime.t ->
    pid:int ->
    stats:stats ->
    invoke:(Tbwf_sim.Value.t -> Tbwf_sim.Value.t) ->
    profile:profile ->
    seed:int64 ->
    until:int ->
    op_of_key:(pid:int -> k:int -> key:int -> Tbwf_sim.Value.t) ->
    unit ->
    unit
  (** One client's task body, unspawned — for deferred activation via
      {!Tbwf_sim.Runtime.spawn_at} (a member that joins mid-run). The
      arrival clock starts at the body's first scheduled step, so a
      joiner's schedule begins at its join, not at step 0. *)
end
