(** Client workload drivers: spawn per-process client tasks that issue
    operations through a shared-object front-end and count completions. *)

type stats = {
  issued : int array;  (** ops started, per pid *)
  completed : int array;  (** ops finished, per pid *)
  last_response : Tbwf_sim.Value.t option array;
}

val fresh_stats : n:int -> stats

val spawn_clients :
  Tbwf_sim.Runtime.t ->
  pids:int list ->
  stats:stats ->
  invoke:(Tbwf_sim.Value.t -> Tbwf_sim.Value.t) ->
  next_op:(pid:int -> k:int -> Tbwf_sim.Value.t option) ->
  unit
(** Spawn one client task per pid. Client [p] repeatedly asks
    [next_op ~pid:p ~k] for its k-th operation (k starts at 0) and runs it
    through [invoke], updating [stats]; it stops when [next_op] returns
    [None]. *)

val forever : Tbwf_sim.Value.t -> pid:int -> k:int -> Tbwf_sim.Value.t option
(** An endless stream of the same operation. *)

val n_times : int -> Tbwf_sim.Value.t -> pid:int -> k:int -> Tbwf_sim.Value.t option
(** The same operation, [n] times, then stop. *)
