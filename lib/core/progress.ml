open Tbwf_sim

type process_report = {
  pid : int;
  timely : bool;
  issued : int;
  completed : int;
}

let reports trace ~n ~stats ~from_step ~bound =
  List.init n (fun pid ->
      {
        pid;
        timely = Timeliness.timely trace ~n ~p:pid ~from_step ~bound;
        issued = stats.Workload.issued.(pid);
        completed = stats.Workload.completed.(pid);
      })

let tbwf_holds_finite reports =
  List.for_all
    (fun r -> (not r.timely) || r.completed = r.issued)
    reports

let tbwf_holds_endless ~before ~after ~timely =
  List.for_all
    (fun pid ->
      after.Workload.completed.(pid) > before.Workload.completed.(pid))
    timely

let lock_freedom_holds ~before ~after =
  let n = Array.length before.Workload.completed in
  let progressed = ref false in
  for pid = 0 to n - 1 do
    if after.Workload.completed.(pid) > before.Workload.completed.(pid) then
      progressed := true
  done;
  !progressed

let snapshot stats =
  {
    Workload.issued = Array.copy stats.Workload.issued;
    completed = Array.copy stats.Workload.completed;
    last_response = Array.copy stats.Workload.last_response;
  }

let pp_report fmt r =
  Fmt.pf fmt "p%d %s completed %d/%d" r.pid
    (if r.timely then "timely " else "untimely")
    r.completed r.issued
