(** Baselines the paper argues against (Sections 1.2 and 2).

    - {!retry_invoke}: a plain obstruction-free object with no boosting —
      each process retries its operation on O_QA until it succeeds. Under
      contention with a hostile abort policy nobody need ever complete
      (only solo runs are guaranteed), which is exactly obstruction-freedom
      and nothing more.

    - {!Naive_booster}: a boosting transformation in the style of
      [7, 8, 11]: leader-based arbitration where the leader is simply the
      {e smallest alive-looking pid} — there is no punishment of processes
      that keep failing to be timely, because these algorithms assume all
      correct processes are timely. A flickering low-pid process therefore
      recaptures leadership after every sleep, and because the failure
      detector's timeout adapts upward, the periods during which everyone
      waits for it grow without bound: a single non-timely process ruins
      the progress of all the timely ones (the paper's non-graceful
      degradation scenario, experiment E2). *)

val retry_invoke : Tbwf_objects.Qa_intf.t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Run one operation with the op/query/retry automaton of Figure 8 but no
    leader gate. Obstruction-free; may loop forever under contention. *)

module Naive_booster : sig
  type t = {
    handles : Tbwf_omega.Omega_spec.handle array;
    monitors : Tbwf_monitor.Activity_monitor.t option array array;
  }

  val install :
    ?factory:Tbwf_registers.Reg.factory -> ?n:int -> Tbwf_sim.Runtime.t -> t
  (** Spawn per-process election tasks using the same activity monitors as
      the real Ω∆ implementation, but electing min-pid-alive and never
      punishing timeliness faults. [factory]/[n] as in
      {!Tbwf_omega.Omega_registers.install}. *)
end
