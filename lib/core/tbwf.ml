open Tbwf_sim
open Tbwf_omega
open Tbwf_objects

type t = {
  qa : Qa_intf.t;
  omega_handles : Omega_spec.handle array;
  canonical : bool;
}

let make ~qa ~omega_handles ?(canonical = true) () =
  { qa; omega_handles; canonical }

type attempt = Run_op | Run_query

(* Figure 7, procedure invoke(op, O, T). *)
let invoke t op =
  let pid = Runtime.self () in
  let handle = t.omega_handles.(pid) in
  let is_leader () =
    Omega_spec.equal_view !(handle.Omega_spec.leader) (Omega_spec.Leader pid)
  in
  if t.canonical then Runtime.await (fun () -> not (is_leader ()));
  handle.Omega_spec.candidate := true;
  let next = ref Run_op in
  let result = ref None in
  while !result = None do
    if is_leader () then begin
      let res =
        match !next with
        | Run_op -> t.qa.Qa_intf.invoke op
        | Run_query -> t.qa.Qa_intf.query ()
      in
      match res with
      | Value.Abort -> next := Run_query
      | Value.Fail -> next := Run_op
      | response ->
        handle.Omega_spec.candidate := false;
        result := Some response
    end
    else Runtime.yield ()
  done;
  Option.get !result

let qa t = t.qa
let handles t = t.omega_handles
