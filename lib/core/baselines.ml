open Tbwf_sim
open Tbwf_omega
open Tbwf_monitor
open Tbwf_objects

let retry_invoke qa op =
  let next = ref `Op in
  let result = ref None in
  while !result = None do
    let res =
      match !next with
      | `Op -> qa.Qa_intf.invoke op
      | `Query -> qa.Qa_intf.query ()
    in
    match res with
    | Value.Abort -> next := `Query
    | Value.Fail -> next := `Op
    | response -> result := Some response
  done;
  Option.get !result

module Naive_booster = struct
  type t = {
    handles : Omega_spec.handle array;
    monitors : Activity_monitor.t option array array;
  }

  (* Like Figure 3's loop but with the two gracefully-degrading ingredients
     removed: no CounterRegister (so no punishments, no self-punishment) and
     leadership by smallest active pid. *)
  let election_loop rt t p n =
    let handle = t.handles.(p) in
    let monitor q = Option.get t.monitors.(p).(q) in
    let active_for q = (Option.get t.monitors.(q).(p)).Activity_monitor.active_for in
    let others = List.filter (fun q -> q <> p) (List.init n Fun.id) in
    while true do
      Omega_spec.set_view rt handle Omega_spec.No_leader;
      List.iter (fun q -> (monitor q).Activity_monitor.monitoring := false) others;
      List.iter (fun q -> active_for q := false) others;
      Runtime.await (fun () -> !(handle.Omega_spec.candidate));
      List.iter (fun q -> (monitor q).Activity_monitor.monitoring := true) others;
      while !(handle.Omega_spec.candidate) do
        let leader = ref p in
        List.iter
          (fun q ->
            let mon = monitor q in
            Runtime.await (fun () ->
                not
                  (Activity_monitor.equal_status
                     !(mon.Activity_monitor.status)
                     Activity_monitor.Unknown));
            if
              Activity_monitor.equal_status
                !(mon.Activity_monitor.status)
                Activity_monitor.Active
              && q < !leader
            then leader := q)
          others;
        Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
        let am_leader = !leader = p in
        List.iter (fun q -> active_for q := am_leader) others;
        Runtime.yield ()
      done
    done

  let install ?factory ?n rt =
    let n = match n with Some n -> n | None -> Runtime.n rt in
    (* Doubling timeout: the aggressive adaptation that eventually trusts a
       decelerating process forever (see Activity_monitor.install). *)
    let adapt timeout = 2 * timeout in
    let monitors =
      Array.init n (fun p ->
          Array.init n (fun q ->
              if p = q then None
              else Some (Activity_monitor.install ~adapt ?factory rt ~p ~q)))
    in
    let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
    let t = { handles; monitors } in
    for p = 0 to n - 1 do
      Runtime.spawn ~layer:Sink.Omega rt ~pid:p
        ~name:(Fmt.str "naive-boost[%d]" p) (fun () -> election_loop rt t p n)
    done;
    t
end
