(** The timeliness-based wait-free universal construction — paper Section 7,
    Figure 7 (Theorems 14–15).

    Given a wait-free query-abortable object O_QA (any {!Tbwf_objects.Qa_intf.t})
    and the dynamic leader elector Ω∆, [invoke] executes an operation of the
    underlying type T so that every process that is timely in the run
    completes each of its operations in a finite number of its own steps
    (Definition 3) — no matter how slow or unstable the other processes are.

    The protocol per operation (Figure 8's automaton):
    + wait until [leader ≠ self] — the canonical-use guard (Definition 6)
      that keeps one timely process from monopolizing the object;
    + become a candidate;
    + whenever elected leader, run the op against O_QA: a normal response
      finishes; ⊥ switches to [query] to learn the fate; F retries the op;
    + on success, withdraw candidacy and return.

    Pass [canonical:false] to reproduce the monopolization counterexample
    discussed at the end of Section 7 (experiment E8). *)

type t

val make :
  qa:Tbwf_objects.Qa_intf.t ->
  omega_handles:Tbwf_omega.Omega_spec.handle array ->
  ?canonical:bool ->
  unit ->
  t

val invoke : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Execute one operation of the underlying type; returns its response.
    Must run inside a task; the calling process is [Runtime.self ()]. *)

val qa : t -> Tbwf_objects.Qa_intf.t
val handles : t -> Tbwf_omega.Omega_spec.handle array
