open Tbwf_sim

type stats = {
  issued : int array;
  completed : int array;
  last_response : Value.t option array;
}

let fresh_stats ~n =
  {
    issued = Array.make n 0;
    completed = Array.make n 0;
    last_response = Array.make n None;
  }

let spawn_clients rt ~pids ~stats ~invoke ~next_op =
  let client pid () =
    let rec loop k =
      match next_op ~pid ~k with
      | None -> ()
      | Some op ->
        stats.issued.(pid) <- stats.issued.(pid) + 1;
        let response = invoke op in
        stats.completed.(pid) <- stats.completed.(pid) + 1;
        stats.last_response.(pid) <- Some response;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid Sink.Op_complete;
        loop (k + 1)
    in
    loop 0
  in
  List.iter
    (fun pid ->
      Runtime.spawn ~layer:Sink.App rt ~pid ~name:"client" (client pid))
    pids

let forever op ~pid:_ ~k:_ = Some op

let n_times n op ~pid:_ ~k = if k < n then Some op else None

(* --- the open-loop generator --------------------------------------------- *)

(* Open-loop traffic: each client draws a Poisson arrival schedule —
   exponential inter-arrival gaps with a fixed mean — and a Zipf-popular
   key per arrival, both from a private splitmix64 stream derived
   statelessly from (seed, pid). Arrivals are decided by the generator,
   not by completions: a client that falls behind (its previous operation
   outlived the next gap) issues the backlogged operation immediately,
   which is exactly the regime where degradation shows up as queueing
   rather than as a politely slower closed loop. *)
module Open_loop = struct
  type profile = { mean_gap : float; keys : int; zipf : float }

  let default = { mean_gap = 40.0; keys = 64; zipf = 1.1 }

  let validate p =
    if p.mean_gap <= 0.0 then
      invalid_arg "Workload.Open_loop: mean_gap must be positive";
    if p.keys < 1 then invalid_arg "Workload.Open_loop: keys must be positive";
    if p.zipf < 0.0 then
      invalid_arg "Workload.Open_loop: zipf must be non-negative"

  (* Cumulative Zipf(s) weights over ranks 1..keys, normalized; sampling
     is one uniform draw plus a binary search. [zipf = 0] is uniform. *)
  let zipf_cdf p =
    let w = Array.init p.keys (fun i -> (1.0 /. float_of_int (i + 1)) ** p.zipf) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w

  let draw_key cdf rng =
    let u = Rng.float rng in
    let lo = ref 0 and hi = ref (Array.length cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) <= u then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Exponential gap with the profile's mean, floored at one step:
     simultaneous arrivals would collapse into one scheduling slot
     anyway, and a zero gap from a tiny uniform draw would not be a
     gap. *)
  let draw_gap p rng =
    let u = Rng.float rng in
    max 1.0 (-.p.mean_gap *. log (1.0 -. u))

  let body rt ~pid ~stats ~invoke ~profile ~cdf ~seed ~until ~op_of_key () =
    let rng = Rng.create (Rng.task_seed ~master:seed pid) in
    let until = float_of_int until in
    let rec loop k next_arrival =
      if next_arrival < until then begin
        while Runtime.now rt < int_of_float next_arrival do
          Runtime.yield ()
        done;
        let key = draw_key cdf rng in
        stats.issued.(pid) <- stats.issued.(pid) + 1;
        let response = invoke (op_of_key ~pid ~k ~key) in
        stats.completed.(pid) <- stats.completed.(pid) + 1;
        stats.last_response.(pid) <- Some response;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid Sink.Op_complete;
        loop (k + 1) (next_arrival +. draw_gap profile rng)
      end
    in
    loop 0 (float_of_int (Runtime.now rt) +. draw_gap profile rng)

  let client_body rt ~pid ~stats ~invoke ~profile ~seed ~until ~op_of_key =
    validate profile;
    let cdf = zipf_cdf profile in
    body rt ~pid ~stats ~invoke ~profile ~cdf ~seed ~until ~op_of_key

  let spawn_clients rt ~pids ~stats ~invoke ~profile ~seed ~until ~op_of_key =
    validate profile;
    let cdf = zipf_cdf profile in
    List.iter
      (fun pid ->
        Runtime.spawn ~layer:Sink.App rt ~pid ~name:"open-loop"
          (body rt ~pid ~stats ~invoke ~profile ~cdf ~seed ~until ~op_of_key))
      pids
end
