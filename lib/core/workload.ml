open Tbwf_sim

type stats = {
  issued : int array;
  completed : int array;
  last_response : Value.t option array;
}

let fresh_stats ~n =
  {
    issued = Array.make n 0;
    completed = Array.make n 0;
    last_response = Array.make n None;
  }

let spawn_clients rt ~pids ~stats ~invoke ~next_op =
  let client pid () =
    let rec loop k =
      match next_op ~pid ~k with
      | None -> ()
      | Some op ->
        stats.issued.(pid) <- stats.issued.(pid) + 1;
        let response = invoke op in
        stats.completed.(pid) <- stats.completed.(pid) + 1;
        stats.last_response.(pid) <- Some response;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid Sink.Op_complete;
        loop (k + 1)
    in
    loop 0
  in
  List.iter
    (fun pid ->
      Runtime.spawn ~layer:Sink.App rt ~pid ~name:"client" (client pid))
    pids

let forever op ~pid:_ ~k:_ = Some op

let n_times n op ~pid:_ ~k = if k < n then Some op else None
