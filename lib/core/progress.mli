(** Progress-condition checkers (paper Definition 3 and Section 1.1).

    Over a finite run we check finite proxies of the liveness conditions:

    - {e timeliness-based wait-freedom}: every process that is empirically
      timely in the run completed every operation it issued (for finite
      workloads) or kept completing operations (for endless ones);
    - {e obstruction-freedom}: a process that runs solo from some point on
      completes operations during the solo suffix;
    - {e lock-freedom}: some process keeps completing operations. *)

type process_report = {
  pid : int;
  timely : bool;  (** empirical classification (Definitions 1–2) *)
  issued : int;
  completed : int;
}

val reports :
  Tbwf_sim.Trace.t ->
  n:int ->
  stats:Workload.stats ->
  from_step:int ->
  bound:int ->
  process_report list
(** Classify each process with {!Tbwf_sim.Timeliness} over the trace suffix
    and pair it with its workload counts. *)

val tbwf_holds_finite : process_report list -> bool
(** TBWF for finite workloads: every timely process finished everything it
    issued. *)

val tbwf_holds_endless :
  before:Workload.stats -> after:Workload.stats -> timely:int list -> bool
(** TBWF for endless workloads: every timely process completed strictly more
    operations in [after] than in [before]. *)

val lock_freedom_holds :
  before:Workload.stats -> after:Workload.stats -> bool
(** Some process completed an operation between the two snapshots. *)

val snapshot : Workload.stats -> Workload.stats
(** Deep copy of the counters, for before/after comparisons. *)

val pp_report : Format.formatter -> process_report -> unit
