open Tbwf_sim
open Tbwf_objects

(* Decided slot values have the shape Pair (op_id, op) with
   op_id = Pair (Int pid, Int sequence-number). *)

type replica = {
  mutable state : Value.t;
  mutable applied : int;  (* next slot to apply *)
  mutable responses : (Value.t * Value.t) list;  (* (op_id, response), recent first *)
}

type t = {
  slots : Consensus.t array;
  spec : Seq_spec.t;
  replicas : replica array;
  sequence : int array;  (* per-pid local proposal counter *)
}

let create rt ~name ~omega ~spec ~slots =
  let n = Runtime.n rt in
  {
    slots =
      Array.init slots (fun k ->
          Consensus.create rt ~name:(Fmt.str "%s.slot[%d]" name k) ~omega);
    spec;
    replicas =
      Array.init n (fun _ ->
          { state = spec.Seq_spec.initial; applied = 0; responses = [] });
    sequence = Array.make n 0;
  }

let apply_decided t replica decided =
  let op_id, op = Value.to_pair decided in
  let state', response = Seq_spec.apply_exn t.spec replica.state op in
  replica.state <- state';
  replica.applied <- replica.applied + 1;
  replica.responses <- (op_id, response) :: replica.responses

let sync t =
  let pid = Runtime.self () in
  let replica = t.replicas.(pid) in
  let continue_sync = ref true in
  while !continue_sync do
    if replica.applied >= Array.length t.slots then continue_sync := false
    else
      match Consensus.read_decision t.slots.(replica.applied) with
      | Some decided -> apply_decided t replica decided
      | None -> continue_sync := false
  done

let submit t op =
  let pid = Runtime.self () in
  let replica = t.replicas.(pid) in
  t.sequence.(pid) <- t.sequence.(pid) + 1;
  let op_id = Value.Pair (Int pid, Int t.sequence.(pid)) in
  let proposal = Value.Pair (op_id, op) in
  let result = ref None in
  while !result = None do
    if replica.applied >= Array.length t.slots then
      failwith "Replicated.submit: log is full";
    (* Propose our operation in the next unapplied slot; the decided value
       may be someone else's operation — apply it and move on. *)
    let decided = Consensus.propose t.slots.(replica.applied) proposal in
    apply_decided t replica decided;
    let decided_id, _ = Value.to_pair decided in
    if Value.equal decided_id op_id then
      result :=
        Some
          (match replica.responses with
          | (_, response) :: _ -> response
          | [] -> assert false)
  done;
  Option.get !result

let local_state t ~pid = t.replicas.(pid).state
let applied t ~pid = t.replicas.(pid).applied
