(** State-machine replication over repeated consensus.

    A bounded log of consensus slots, each deciding one operation of a
    sequential type ({!Tbwf_objects.Seq_spec}). Every process keeps a local
    replica and applies decided slots in order; {!submit} proposes the
    caller's operation in successive slots until one decides it, applying
    the winners of lost slots along the way — the classic multi-consensus
    construction, here driven end-to-end by Ω∆.

    Safety (all replicas apply the same operation sequence, every response
    is the sequential response at its slot) holds in every run; a submit by
    process p terminates when p keeps taking steps and some timely process
    exists (the consensus liveness condition, inherited slot by slot). *)

type t

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  omega:Consensus.Omega_adapter.t ->
  spec:Tbwf_objects.Seq_spec.t ->
  slots:int ->
  t
(** A log of [slots] consensus instances over one Ω∆. All processes must
    share the same [t] (create it before spawning tasks). *)

val submit : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Run one operation through the replicated machine and return its
    sequential response. Must run inside a task. Raises [Failure] if the
    log runs out of slots. *)

val sync : t -> unit
(** Apply every already-decided slot to the caller's replica without
    proposing anything (read-only catch-up). Must run inside a task. *)

val local_state : t -> pid:int -> Tbwf_sim.Value.t
(** [pid]'s replica state (zero-step; reflects the slots that process has
    applied so far). *)

val applied : t -> pid:int -> int
(** Number of slots [pid] has applied. *)
