(** Consensus from Ω∆ and atomic registers.

    The paper's Section 1.2 closes with the observation that implementing
    Ω∆ from abortable registers "implies that one can implement Ω — a
    failure detector which is sufficient to solve consensus — in a system
    with abortable registers and only one timely process". This module makes
    that remark executable: {!Omega_adapter} turns Ω∆ into the classic Ω
    (every correct process competes forever, so Pcandidates = correct
    processes and a timely process is eventually everyone's stable leader),
    and {!propose} runs a shared-memory ballot-based consensus in the style
    of Disk Paxos (Gafni & Lamport) whose liveness needs exactly that
    eventual leader.

    Safety (agreement and validity) holds in every run regardless of
    timeliness; termination for a process p needs p to keep taking steps and
    some timely process to exist. *)

module Omega_adapter : sig
  type t

  val attach : Tbwf_omega.Omega_spec.handle array -> t
  (** Use the handles of an installed Ω∆ implementation as an Ω. *)

  val join : t -> pid:int -> unit
  (** Canonically join the leader competition (Definition 6: waits until
      [pid] is not the current leader, then raises its candidate flag).
      Must run inside one of [pid]'s tasks. *)

  val leave : t -> pid:int -> unit
  (** Withdraw from the competition. Proposers leave once they have
      decided, so an idle process can never hold leadership and starve
      active proposers. *)

  val trusted : t -> pid:int -> int
  (** The process [pid] currently trusts as leader: Ω∆'s output if it names
      someone, [pid] itself while the output is "?". Eventually equal at all
      correct processes when a timely permanent candidate exists. *)
end

type t

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  omega:Omega_adapter.t ->
  t
(** One single-shot consensus instance: a per-process ballot register block
    x[p] = (mbal, bal, input) — single-writer, multi-reader — plus a shared
    decision register. *)

val propose : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Propose a value and return the decided value. Must run inside a task;
    canonically joins the leader competition, runs ballots while trusted
    leader, adopts any decision it observes, and withdraws on return. *)

val decided : t -> Tbwf_sim.Value.t option
(** Zero-step peek at the decision, for tests. *)

val read_decision : t -> Tbwf_sim.Value.t option
(** Read the decision register (a real shared-memory read, two steps);
    [None] while undecided. Must run inside a task. *)
