open Tbwf_sim
open Tbwf_registers
open Tbwf_omega

module Omega_adapter = struct
  type t = { handles : Omega_spec.handle array }

  let attach handles = { handles }

  let join t ~pid = Omega_spec.canonical_join t.handles.(pid)

  let leave t ~pid = Omega_spec.leave t.handles.(pid)

  let trusted t ~pid =
    match !(t.handles.(pid).Omega_spec.leader) with
    | Omega_spec.Leader l -> l
    | Omega_spec.No_leader -> pid
end

(* Ballot register block per process: (mbal, bal, input).
   mbal: highest ballot p has started; bal: highest ballot in which p wrote
   a value; input: that value (Unit when none). *)
type t = {
  n : int;
  blocks : (Value.t * Value.t * Value.t) Atomic_reg.t array;
      (* encoded as ((Int mbal, Int bal), input) through a nested codec *)
  decision : Value.t Atomic_reg.t;
  omega : Omega_adapter.t;
}

let block_codec =
  Codec.triple Codec.value Codec.value Codec.value

let create rt ~name ~omega =
  let n = Runtime.n rt in
  let blocks =
    Array.init n (fun p ->
        Atomic_reg.create rt
          ~name:(Fmt.str "%s.x[%d]" name p)
          ~codec:block_codec
          ~init:(Value.Int 0, Value.Int 0, Value.Unit))
  in
  let decision =
    Atomic_reg.create rt ~name:(Fmt.str "%s.decision" name) ~codec:Codec.value
      ~init:Value.Unit
  in
  { n; blocks; decision; omega }

let decided t =
  match Atomic_reg.peek t.decision with
  | Value.Unit -> None
  | v -> Some v

let read_decision t =
  match Atomic_reg.read t.decision with
  | Value.Unit -> None
  | v -> Some v

(* One ballot attempt by [pid] with ballot number [b]; returns the decided
   value, or None if a higher ballot interfered. Disk-Paxos shape:
   phase 1 announces b and collects the highest accepted value; phase 2
   writes (b, value) and confirms no higher announcement appeared. *)
let attempt t ~pid ~ballot ~my_input ~max_seen =
  let read_block q =
    let mbal_v, bal_v, input = Atomic_reg.read t.blocks.(q) in
    Value.to_int mbal_v, Value.to_int bal_v, input
  in
  let _, my_bal, my_inp = read_block pid in
  Atomic_reg.write t.blocks.(pid)
    (Value.Int ballot, Value.Int my_bal, my_inp);
  (* Phase 1: read everyone; abort on a higher announcement, otherwise adopt
     the value accepted at the highest ballot (or keep our own input). *)
  let adopt = ref my_input in
  let best_bal = ref 0 in
  let interfered = ref false in
  for q = 0 to t.n - 1 do
    let mbal_q, bal_q, input_q = read_block q in
    if mbal_q > ballot then begin
      interfered := true;
      max_seen := max !max_seen mbal_q
    end;
    if bal_q > !best_bal then begin
      best_bal := bal_q;
      adopt := input_q
    end
  done;
  if !interfered then None
  else begin
    (* Phase 2: accept (ballot, value), then confirm. *)
    Atomic_reg.write t.blocks.(pid) (Value.Int ballot, Value.Int ballot, !adopt);
    let confirmed = ref true in
    for q = 0 to t.n - 1 do
      let mbal_q, _, _ = read_block q in
      if mbal_q > ballot then begin
        confirmed := false;
        max_seen := max !max_seen mbal_q
      end
    done;
    if !confirmed then Some !adopt else None
  end

let propose t my_input =
  if Value.equal my_input Value.Unit then
    invalid_arg "Consensus.propose: Unit is reserved for 'no decision'";
  let pid = Runtime.self () in
  Omega_adapter.join t.omega ~pid;
  let max_seen = ref 0 in
  let result = ref None in
  while !result = None do
    (match Atomic_reg.read t.decision with
    | Value.Unit -> ()
    | v -> result := Some v);
    if !result = None then
      if Omega_adapter.trusted t.omega ~pid = pid then begin
        (* Next ballot owned by pid strictly above everything seen. *)
        let round = (!max_seen / t.n) + 1 in
        let ballot = (round * t.n) + pid in
        max_seen := max !max_seen ballot;
        match attempt t ~pid ~ballot ~my_input ~max_seen with
        | Some value ->
          Atomic_reg.write t.decision value;
          result := Some value
        | None -> Runtime.yield ()
      end
      else Runtime.yield ()
  done;
  Omega_adapter.leave t.omega ~pid;
  Option.get !result
