(** Sequential stack: push returns unit, pop returns the top value or the
    sentinel [Str "empty"]. *)

val spec : Seq_spec.t

val push : Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val pop : Tbwf_sim.Value.t
val empty_response : Tbwf_sim.Value.t
