(** Wait-free universal construction from compare-and-swap, with helping —
    the construction behind the paper's §1.2 sentence: "it is well-known
    that any object has a wait-free (and a fortiori TBWF) implementation,
    provided one is allowed to use some strong synchronization primitives
    like compare-and-swap [9]."

    Herlihy-style helping, state-cell formulation: every operation is first
    {e announced} in a per-process register; every attempt to advance the
    state must apply the announced operation of process (version mod n) if
    one is pending, and the winner records (op-id, response) in a fate log
    inside the state. Whoever wins the CAS races, each announced operation
    is applied within at most n + 1 state transitions — so every caller
    returns after boundedly many of its own steps: {e wait-free}, with no
    timeliness assumption at all.

    This is the strong-primitives upper bound that E12 compares the paper's
    weak-primitives TBWF stack against: the per-process guarantee is the
    same (better, even: unconditional), the price is needing CAS instead of
    abortable registers. *)

type t

val create : Tbwf_sim.Runtime.t -> name:string -> spec:Seq_spec.t -> t

val invoke : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Apply an operation and return its sequential response. Completes in a
    bounded number of the caller's own steps. Must run inside a task. *)

val peek_state : t -> Tbwf_sim.Value.t
