(** Sequential read/write register cell over arbitrary values. *)

val spec : init:Tbwf_sim.Value.t -> Seq_spec.t

val read : Tbwf_sim.Value.t
val write : Tbwf_sim.Value.t -> Tbwf_sim.Value.t
