(** Sequential test-and-set bit: [tas] sets the bit and returns its previous
    value; [reset] clears it; [read] returns it. *)

val spec : Seq_spec.t

val tas : Tbwf_sim.Value.t
val reset : Tbwf_sim.Value.t
val read : Tbwf_sim.Value.t
