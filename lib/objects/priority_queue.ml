open Tbwf_sim

let insert prio payload = Value.Pair (Str "insert", Pair (Int prio, payload))
let extract_min = Value.Str "extract-min"
let size = Value.Str "size"
let empty_response = Value.Str "empty"

(* State: list of Pair (Int prio, payload), kept sorted by priority with
   stable insertion (equal priorities keep arrival order). *)
let spec =
  {
    Seq_spec.name = "priority-queue";
    initial = Value.List [];
    apply =
      (fun state op ->
        match state, op with
        | Value.List items, Value.Pair (Str "insert", (Pair (Int prio, _) as entry)) ->
          let rec place = function
            | (Value.Pair (Int p, _) as head) :: rest when p <= prio ->
              head :: place rest
            | rest -> entry :: rest
          in
          Some (Value.List (place items), Value.Unit)
        | Value.List [], Value.Str "extract-min" -> Some (state, empty_response)
        | Value.List (smallest :: rest), Value.Str "extract-min" ->
          Some (Value.List rest, smallest)
        | Value.List items, Value.Str "size" ->
          Some (state, Value.Int (List.length items))
        | _ -> None);
  }
