open Tbwf_sim

type t = {
  name : string;
  initial : Value.t;
  apply : Value.t -> Value.t -> (Value.t * Value.t) option;
}

let apply_exn t state op =
  match t.apply state op with
  | Some result -> result
  | None ->
    invalid_arg
      (Fmt.str "Seq_spec %s: illegal op %a in state %a" t.name Value.pp op
         Value.pp state)

let run_sequential t ops =
  let _, responses =
    List.fold_left
      (fun (state, acc) op ->
        let state', response = apply_exn t state op in
        state', response :: acc)
      (t.initial, []) ops
  in
  List.rev responses
