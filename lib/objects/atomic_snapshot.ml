open Tbwf_sim
open Tbwf_registers

(* Segment contents: (seq, value, embedded view as a List). *)
type t = {
  n : int;
  segments : (Value.t * Value.t * Value.t) Atomic_reg.t array;
}

let segment_codec = Codec.triple Codec.value Codec.value Codec.value

let create rt ~name ~init =
  let n = Runtime.n rt in
  {
    n;
    segments =
      Array.init n (fun i ->
          Atomic_reg.create rt
            ~name:(Fmt.str "%s.seg[%d]" name i)
            ~codec:segment_codec
            ~init:(Value.Int 0, init, Value.List []));
  }

let collect t = Array.init t.n (fun i -> Atomic_reg.read t.segments.(i))

let seq_of (seq, _, _) = Value.to_int seq
let value_of (_, value, _) = value
let view_of (_, _, view) = view

let values_of_collect collect = Array.map value_of collect

(* The scan loop: return on a clean double collect, or borrow the embedded
   view of any segment observed moving twice. Terminates within n+1 rounds:
   each dirty round marks at least one mover, and a second move of the same
   process triggers the borrow. *)
let scan_views t =
  let moved = Array.make t.n 0 in
  let rec round previous =
    let current = collect t in
    let movers =
      List.filter
        (fun i -> seq_of previous.(i) <> seq_of current.(i))
        (List.init t.n Fun.id)
    in
    match movers with
    | [] -> values_of_collect current
    | _ -> (
      let borrowed =
        List.find_map
          (fun i ->
            if moved.(i) >= 1 then
              match view_of current.(i) with
              | Value.List items when List.length items = t.n ->
                Some (Array.of_list items)
              | _ -> None
            else None)
          movers
      in
      match borrowed with
      | Some view -> view
      | None ->
        List.iter (fun i -> moved.(i) <- moved.(i) + 1) movers;
        round current)
  in
  round (collect t)

let scan t = scan_views t

let update t value =
  let pid = Runtime.self () in
  let view = scan_views t in
  let seq, _, _ = Atomic_reg.read t.segments.(pid) in
  Atomic_reg.write t.segments.(pid)
    ( Value.Int (Value.to_int seq + 1),
      value,
      Value.List (Array.to_list view) )

let peek t = Array.map (fun seg -> value_of (Atomic_reg.peek seg)) t.segments
