open Tbwf_sim
open Tbwf_registers

type t = { obj : Shared.t; state : Value.t ref }

let create rt ~name ~init ~transition ~policy
    ?(effect_on_abort = Abort_policy.Effect_random 0.5) () =
  let state = ref init in
  let apply op =
    match transition !state op with
    | Some (state', response) ->
      state := state';
      response
    | None ->
      invalid_arg (Fmt.str "Rmw_cell %s: illegal op %a" name Value.pp op)
  in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "rmw", op) ->
      if Abort_policy.should_abort policy ~contended:ctx.step_contended ctx then begin
        if Abort_policy.write_takes_effect effect_on_abort ctx.rng then
          ignore (apply op);
        Value.Abort
      end
      else apply op
    | Value.Pair (Str "read", _) ->
      if Abort_policy.should_abort policy ~contended:ctx.step_contended ctx then Value.Abort else !state
    | op -> invalid_arg (Fmt.str "Rmw_cell %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  { obj; state }

let rmw t op = Runtime.call t.obj (Value.Pair (Str "rmw", op))
let read t = Runtime.call t.obj Value.read_op
let peek t = !(t.state)
let shared t = t.obj
