(** Direct implementation of a query-abortable object.

    This is the documented substitution for the universal construction of
    reference [2] (see DESIGN.md §2): the TBWF transformation of Figure 7
    relies only on the T_QA interface contract, which this module implements
    as a simulator shared object — operations linearize at their response
    step, abort under the given policy iff their window overlapped another
    operation's, and per-process fate records back the [query] operation.

    An aborted operation takes effect or not according to [effect_on_abort]
    (default: 50/50, the least predictable adversary), and the caller cannot
    tell — exactly the paper's abortable semantics. *)

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  spec:Seq_spec.t ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?effect_on_abort:Tbwf_registers.Abort_policy.write_effect ->
  unit ->
  Qa_intf.t
