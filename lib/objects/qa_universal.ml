open Tbwf_sim
open Tbwf_registers

(* Cell state: Pair (seq_state, List fate_entries) where each entry is
   Pair (Int pid, Pair (op_id, response)) and op_id = Pair (Int pid, Int k). *)

let fate_entry pid op_id response =
  Value.Pair (Int pid, Pair (op_id, response))

let lookup_fate pid entries =
  List.find_map
    (function
      | Value.Pair (Int p, fate) when p = pid -> Some fate
      | _ -> None)
    entries

let drop_fate pid entries =
  List.filter
    (function Value.Pair (Int p, _) when p = pid -> false | _ -> true)
    entries

let create rt ~name ~spec ~policy
    ?(effect_on_abort = Abort_policy.Effect_random 0.5) () =
  let transition state op =
    match state, op with
    | Value.Pair (seq_state, List fates), Value.Pair (op_id, seq_op) -> (
      match spec.Seq_spec.apply seq_state seq_op with
      | None -> None
      | Some (seq_state', response) ->
        let pid =
          match op_id with
          | Value.Pair (Int pid, _) -> pid
          | v -> invalid_arg (Value.to_string v)
        in
        let fates' = fate_entry pid op_id response :: drop_fate pid fates in
        Some (Value.Pair (seq_state', List fates'), response))
    | _ -> None
  in
  let cell =
    Rmw_cell.create rt ~name
      ~init:(Value.Pair (spec.Seq_spec.initial, List []))
      ~transition ~policy ~effect_on_abort ()
  in
  let sequence : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let last_op_id : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let invoke op =
    let pid = Runtime.self () in
    let k = 1 + Option.value (Hashtbl.find_opt sequence pid) ~default:0 in
    Hashtbl.replace sequence pid k;
    let op_id = Value.Pair (Int pid, Int k) in
    Hashtbl.replace last_op_id pid op_id;
    Rmw_cell.rmw cell (Value.Pair (op_id, op))
  in
  let query () =
    let pid = Runtime.self () in
    match Rmw_cell.read cell with
    | Value.Abort -> Value.Abort
    | Value.Pair (_, List fates) -> (
      let mine = Hashtbl.find_opt last_op_id pid in
      match lookup_fate pid fates, mine with
      | Some (Value.Pair (op_id, response)), Some issued
        when Value.equal op_id issued ->
        response
      | _, _ -> Value.Fail)
    | v -> invalid_arg (Fmt.str "Qa_universal %s: bad cell state %a" name Value.pp v)
  in
  let peek_state () =
    match Rmw_cell.peek cell with
    | Value.Pair (seq_state, _) -> seq_state
    | v -> invalid_arg (Value.to_string v)
  in
  { Qa_intf.name; invoke; query; peek_state; view = Universal (Rmw_cell.shared cell) }
