open Tbwf_sim

let write_max v = Value.Pair (Str "write-max", Int v)
let read = Value.read_op

let spec =
  {
    Seq_spec.name = "max-register";
    initial = Value.Int 0;
    apply =
      (fun state op ->
        match state, op with
        | Value.Int cur, Value.Pair (Str "write-max", Int v) ->
          Some (Value.Int (max cur v), Value.Unit)
        | Value.Int cur, Value.Pair (Str "read", _) ->
          Some (state, Value.Int cur)
        | _ -> None);
  }
