(** Sequential FIFO queue: enqueue returns unit, dequeue returns the oldest
    value or the sentinel [Str "empty"]. *)

val spec : Seq_spec.t

val enqueue : Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val dequeue : Tbwf_sim.Value.t
val empty_response : Tbwf_sim.Value.t
