(** Wait-free atomic single-writer snapshot from atomic registers
    (Afek, Attiya, Dolev, Gafni, Merritt, Shavit, JACM 1993).

    One segment per process; [update] overwrites the caller's segment and
    [scan] returns a view of all segments that is {e atomic}: all returned
    views are totally ordered, as if each scan read the whole memory in one
    instant. A further substrate built only from the registers the paper
    allows — used by the test suite as a register-hierarchy exercise and
    available to applications (e.g. collecting the per-process completion
    counters of a TBWF workload consistently).

    The classic double-collect-with-helping construction: a scanner
    collects all segments twice and returns on a clean double collect; a
    segment that moves twice during one scan must contain an embedded view
    taken entirely within that scan, which the scanner can borrow — making
    [scan] (and hence [update], which embeds a scan) wait-free with O(n²)
    register reads. *)

type t

val create :
  Tbwf_sim.Runtime.t -> name:string -> init:Tbwf_sim.Value.t -> t
(** One segment per process of the runtime, each initialized to [init]. *)

val update : t -> Tbwf_sim.Value.t -> unit
(** Overwrite the calling process's segment. Must run inside a task. *)

val scan : t -> Tbwf_sim.Value.t array
(** An atomic view of all segments, indexed by pid. Must run inside a
    task. *)

val peek : t -> Tbwf_sim.Value.t array
(** Zero-step view for tests. *)
