open Tbwf_sim

let inc = Value.Str "inc"
let add delta = Value.Pair (Str "add", Int delta)
let read = Value.read_op

let spec =
  {
    Seq_spec.name = "counter";
    initial = Value.Int 0;
    apply =
      (fun state op ->
        match state, op with
        | Value.Int n, Value.Str "inc" -> Some (Value.Int (n + 1), Value.Int n)
        | Value.Int n, Value.Pair (Str "add", Int delta) ->
          Some (Value.Int (n + delta), Value.Int n)
        | Value.Int n, Value.Pair (Str "read", _) ->
          Some (state, Value.Int n)
        | _ -> None);
  }

let decode_response = Value.to_int
