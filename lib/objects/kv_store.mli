(** Sequential key-value store with string keys.

    put returns the previous binding ([Pair (Str "some", v)] or
    [Str "none"]), get returns the current binding in the same shape,
    delete returns whether a binding was removed, size the number of
    bindings. *)

val spec : Seq_spec.t

val put : string -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val get : string -> Tbwf_sim.Value.t
val delete : string -> Tbwf_sim.Value.t
val size : Tbwf_sim.Value.t

val decode_binding : Tbwf_sim.Value.t -> Tbwf_sim.Value.t option
(** Decode a put/get response into the optional bound value. *)
