open Tbwf_sim
open Tbwf_registers

(* The cell stores Pair (Int version, state): the version strictly
   increases on every update, modelling the fresh-pointer-per-update of
   real CAS constructions (a structural CAS on the bare state would let a
   stale update land whenever the state recurred — benign ABA for
   semantics, but it would hide the construction's unfairness). *)
type t = { cell : Value.t Cas_reg.t; spec : Seq_spec.t }

let create rt ~name ~spec =
  let cell =
    Cas_reg.create rt ~name ~codec:Codec.value
      ~init:(Value.Pair (Int 0, spec.Seq_spec.initial))
  in
  { cell; spec }

let attempt t op =
  let versioned = Cas_reg.read t.cell in
  let version, state = Value.to_pair versioned in
  let state', response = Seq_spec.apply_exn t.spec state op in
  let desired = Value.Pair (Int (Value.to_int version + 1), state') in
  if Cas_reg.cas t.cell ~expected:versioned ~desired then Some response
  else None

let invoke t op =
  let result = ref None in
  while !result = None do
    match attempt t op with
    | Some response -> result := Some response
    | None -> Runtime.yield ()
  done;
  Option.get !result

let try_invoke t op ~attempts =
  let rec go remaining =
    if remaining = 0 then None
    else
      match attempt t op with
      | Some response -> Some response
      | None ->
        Runtime.yield ();
        go (remaining - 1)
  in
  go attempts

let peek_state t = snd (Value.to_pair (Cas_reg.peek t.cell))
