(** Sequential integer set: add and remove return whether they changed the
    set, mem returns membership, size returns the cardinality. *)

val spec : Seq_spec.t

val add : int -> Tbwf_sim.Value.t
val remove : int -> Tbwf_sim.Value.t
val mem : int -> Tbwf_sim.Value.t
val size : Tbwf_sim.Value.t
