(** Sequential max-register: [write_max v] raises the stored value to at
    least [v] and returns unit; [read] returns the maximum written so far.
    Its monotonicity makes it a good target for property-based tests. *)

val spec : Seq_spec.t

val write_max : int -> Tbwf_sim.Value.t
val read : Tbwf_sim.Value.t
