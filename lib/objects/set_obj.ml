open Tbwf_sim

let add x = Value.Pair (Str "add", Int x)
let remove x = Value.Pair (Str "remove", Int x)
let mem x = Value.Pair (Str "mem", Int x)
let size = Value.Str "size"

(* State: sorted list of distinct Int values. *)
let elements = function
  | Value.List items -> List.map Value.to_int items
  | v -> invalid_arg (Value.to_string v)

let of_elements xs = Value.List (List.map (fun x -> Value.Int x) xs)

let spec =
  {
    Seq_spec.name = "set";
    initial = Value.List [];
    apply =
      (fun state op ->
        let xs = elements state in
        match op with
        | Value.Pair (Str "add", Int x) ->
          if List.mem x xs then Some (state, Value.Bool false)
          else Some (of_elements (List.sort compare (x :: xs)), Value.Bool true)
        | Value.Pair (Str "remove", Int x) ->
          if List.mem x xs then
            Some (of_elements (List.filter (fun y -> y <> x) xs), Value.Bool true)
          else Some (state, Value.Bool false)
        | Value.Pair (Str "mem", Int x) -> Some (state, Value.Bool (List.mem x xs))
        | Value.Str "size" -> Some (state, Value.Int (List.length xs))
        | _ -> None);
  }
