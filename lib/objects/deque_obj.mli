(** Sequential double-ended queue — the object of the paper's reference
    [10] (Herlihy, Luchangco, Moir: "Obstruction-free synchronization:
    double-ended queues as an example", ICDCS 2003).

    Pops return the removed value or the sentinel [Str "empty"]. This spec
    is what the TBWF universal construction runs; the direct register-level
    obstruction-free implementation of [10] lives in {!Hlm_deque}. *)

val spec : Seq_spec.t

val push_left : Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val push_right : Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val pop_left : Tbwf_sim.Value.t
val pop_right : Tbwf_sim.Value.t
val empty_response : Tbwf_sim.Value.t
