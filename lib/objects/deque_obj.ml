open Tbwf_sim

let push_left v = Value.Pair (Str "push-left", v)
let push_right v = Value.Pair (Str "push-right", v)
let pop_left = Value.Str "pop-left"
let pop_right = Value.Str "pop-right"
let empty_response = Value.Str "empty"

let spec =
  {
    Seq_spec.name = "deque";
    initial = Value.List [];
    apply =
      (fun state op ->
        match state, op with
        | Value.List items, Value.Pair (Str "push-left", v) ->
          Some (Value.List (v :: items), Value.Unit)
        | Value.List items, Value.Pair (Str "push-right", v) ->
          Some (Value.List (items @ [ v ]), Value.Unit)
        | Value.List [], Value.Str ("pop-left" | "pop-right") ->
          Some (state, empty_response)
        | Value.List (leftmost :: rest), Value.Str "pop-left" ->
          Some (Value.List rest, leftmost)
        | Value.List items, Value.Str "pop-right" -> (
          match List.rev items with
          | rightmost :: rest_rev ->
            Some (Value.List (List.rev rest_rev), rightmost)
          | [] -> None)
        | _ -> None);
  }
