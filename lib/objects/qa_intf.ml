type view =
  | Direct of Tbwf_sim.Shared.t
  | Universal of Tbwf_sim.Shared.t

type t = {
  name : string;
  invoke : Tbwf_sim.Value.t -> Tbwf_sim.Value.t;
  query : unit -> Tbwf_sim.Value.t;
  peek_state : unit -> Tbwf_sim.Value.t;
  view : view;
}
