open Tbwf_sim

let enqueue v = Value.Pair (Str "enqueue", v)
let dequeue = Value.Str "dequeue"
let empty_response = Value.Str "empty"

let spec =
  {
    Seq_spec.name = "queue";
    initial = Value.List [];
    apply =
      (fun state op ->
        match state, op with
        | Value.List items, Value.Pair (Str "enqueue", v) ->
          Some (Value.List (items @ [ v ]), Value.Unit)
        | Value.List [], Value.Str "dequeue" -> Some (state, empty_response)
        | Value.List (oldest :: rest), Value.Str "dequeue" ->
          Some (Value.List rest, oldest)
        | _ -> None);
  }
