(** Sequential object types.

    A type T in the paper's sense: a deterministic sequential specification.
    States, operations and responses are {!Tbwf_sim.Value} values so that
    one universal construction hosts any type; typed front-ends live in the
    individual object modules ({!Counter}, {!Queue_obj}, ...). *)

type t = {
  name : string;
  initial : Tbwf_sim.Value.t;
  apply :
    Tbwf_sim.Value.t ->
    Tbwf_sim.Value.t ->
    (Tbwf_sim.Value.t * Tbwf_sim.Value.t) option;
      (** [apply state op] is [Some (state', response)], or [None] when the
          operation does not belong to the type (a caller bug). *)
}

val apply_exn :
  t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t * Tbwf_sim.Value.t
(** Like [apply] but raises [Invalid_argument] on an illegal operation. *)

val run_sequential : t -> Tbwf_sim.Value.t list -> Tbwf_sim.Value.t list
(** Fold a list of operations from the initial state, returning responses —
    the reference semantics property tests compare against. *)
