open Tbwf_sim
open Tbwf_registers

(* Each array cell holds Pair (tag, Int version) with
   tag = Str "LN" | Str "RN" | Pair (Str "v", value). *)

let ln = Value.Str "LN"
let rn = Value.Str "RN"
let v_tag value = Value.Pair (Str "v", value)

let is_ln = function Value.Str "LN" -> true | _ -> false
let is_rn = function Value.Str "RN" -> true | _ -> false

let tag_of cell = fst (Value.to_pair cell)
let version_of cell = Value.to_int (snd (Value.to_pair cell))
let make_cell tag version = Value.Pair (tag, Value.Int version)

type t = {
  cells : Value.t Cas_reg.t array;  (* length = capacity + 2 sentinels *)
  size : int;
}

let create rt ~name ~capacity =
  if capacity < 2 then invalid_arg "Hlm_deque.create: capacity >= 2";
  let size = capacity + 2 in
  let mid = size / 2 in
  let cells =
    Array.init size (fun i ->
        let tag = if i < mid then ln else rn in
        Cas_reg.create rt
          ~name:(Fmt.str "%s[%d]" name i)
          ~codec:Codec.value ~init:(make_cell tag 0))
  in
  { cells; size }

(* The oracle may return any hint; correctness never depends on it, only
   the number of retries does. We scan for the boundary: for `Right, the
   smallest k with A[k] = RN; for `Left, the largest k with A[k] = LN. *)
let oracle t side =
  match side with
  | `Right ->
    let k = ref (t.size - 1) in
    for i = t.size - 1 downto 0 do
      if is_rn (tag_of (Cas_reg.read t.cells.(i))) then k := i
    done;
    !k
  | `Left ->
    let k = ref 0 in
    for i = 0 to t.size - 1 do
      if is_ln (tag_of (Cas_reg.read t.cells.(i))) then k := i
    done;
    !k

(* One attempt of each operation; `Interfered means a CAS lost a race (or
   the oracle's hint was stale) and the caller should retry. *)

let right_push_once t value =
  let k = oracle t `Right in
  if k = 0 then `Interfered (* stale hint: RN cannot be leftmost *)
  else begin
    let prev = Cas_reg.read t.cells.(k - 1) in
    let cur = Cas_reg.read t.cells.(k) in
    if (not (is_rn (tag_of prev))) && is_rn (tag_of cur) then
      if k = t.size - 1 then `Full
      else if
        Cas_reg.cas t.cells.(k - 1) ~expected:prev
          ~desired:(make_cell (tag_of prev) (version_of prev + 1))
      then
        if
          Cas_reg.cas t.cells.(k) ~expected:cur
            ~desired:(make_cell (v_tag value) (version_of cur + 1))
        then `Ok
        else `Interfered
      else `Interfered
    else `Interfered
  end

let right_pop_once t =
  let k = oracle t `Right in
  if k = 0 then `Interfered
  else begin
    let cur = Cas_reg.read t.cells.(k - 1) in
    let next = Cas_reg.read t.cells.(k) in
    if (not (is_rn (tag_of cur))) && is_rn (tag_of next) then
      if
        is_ln (tag_of cur)
        && Value.equal (Cas_reg.read t.cells.(k - 1)) cur
      then `Empty
      else if
        Cas_reg.cas t.cells.(k) ~expected:next
          ~desired:(make_cell rn (version_of next + 1))
      then
        if
          Cas_reg.cas t.cells.(k - 1) ~expected:cur
            ~desired:(make_cell rn (version_of cur + 1))
        then
          match tag_of cur with
          | Value.Pair (Str "v", value) -> `Value value
          | _ -> `Interfered (* cur was LN: lost the emptiness race *)
        else `Interfered
      else `Interfered
    else `Interfered
  end

let left_push_once t value =
  let k = oracle t `Left in
  if k = t.size - 1 then `Interfered
  else begin
    let prev = Cas_reg.read t.cells.(k + 1) in
    let cur = Cas_reg.read t.cells.(k) in
    if (not (is_ln (tag_of prev))) && is_ln (tag_of cur) then
      if k = 0 then `Full
      else if
        Cas_reg.cas t.cells.(k + 1) ~expected:prev
          ~desired:(make_cell (tag_of prev) (version_of prev + 1))
      then
        if
          Cas_reg.cas t.cells.(k) ~expected:cur
            ~desired:(make_cell (v_tag value) (version_of cur + 1))
        then `Ok
        else `Interfered
      else `Interfered
    else `Interfered
  end

let left_pop_once t =
  let k = oracle t `Left in
  if k = t.size - 1 then `Interfered
  else begin
    let cur = Cas_reg.read t.cells.(k + 1) in
    let next = Cas_reg.read t.cells.(k) in
    if (not (is_ln (tag_of cur))) && is_ln (tag_of next) then
      if
        is_rn (tag_of cur)
        && Value.equal (Cas_reg.read t.cells.(k + 1)) cur
      then `Empty
      else if
        Cas_reg.cas t.cells.(k) ~expected:next
          ~desired:(make_cell ln (version_of next + 1))
      then
        if
          Cas_reg.cas t.cells.(k + 1) ~expected:cur
            ~desired:(make_cell ln (version_of cur + 1))
        then
          match tag_of cur with
          | Value.Pair (Str "v", value) -> `Value value
          | _ -> `Interfered
        else `Interfered
      else `Interfered
    else `Interfered
  end

let rec retry_forever once =
  match once () with
  | `Interfered ->
    Runtime.yield ();
    retry_forever once
  | (`Ok | `Full | `Empty | `Value _) as outcome -> outcome

let bounded ~attempts once =
  let rec go remaining =
    if remaining = 0 then `Interfered
    else
      match once () with
      | `Interfered ->
        Runtime.yield ();
        go (remaining - 1)
      | (`Ok | `Full | `Empty | `Value _) as outcome -> outcome
  in
  go attempts

let right_push t v =
  match retry_forever (fun () -> right_push_once t v) with
  | (`Ok | `Full) as r -> r
  | `Empty | `Value _ -> assert false

let right_pop t =
  match retry_forever (fun () -> right_pop_once t) with
  | (`Empty | `Value _) as r -> r
  | `Ok | `Full -> assert false

let left_push t v =
  match retry_forever (fun () -> left_push_once t v) with
  | (`Ok | `Full) as r -> r
  | `Empty | `Value _ -> assert false

let left_pop t =
  match retry_forever (fun () -> left_pop_once t) with
  | (`Empty | `Value _) as r -> r
  | `Ok | `Full -> assert false

let try_right_push t v ~attempts =
  match bounded ~attempts (fun () -> right_push_once t v) with
  | (`Ok | `Full | `Interfered) as r -> r
  | `Empty | `Value _ -> assert false

let try_right_pop t ~attempts =
  match bounded ~attempts (fun () -> right_pop_once t) with
  | (`Empty | `Value _ | `Interfered) as r -> r
  | `Ok | `Full -> assert false

let try_left_push t v ~attempts =
  match bounded ~attempts (fun () -> left_push_once t v) with
  | (`Ok | `Full | `Interfered) as r -> r
  | `Empty | `Value _ -> assert false

let try_left_pop t ~attempts =
  match bounded ~attempts (fun () -> left_pop_once t) with
  | (`Empty | `Value _ | `Interfered) as r -> r
  | `Ok | `Full -> assert false

let peek_contents t =
  Array.to_list t.cells
  |> List.filter_map (fun cell ->
         match tag_of (Cas_reg.peek cell) with
         | Value.Pair (Str "v", value) -> Some value
         | _ -> None)
