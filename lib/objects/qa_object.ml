open Tbwf_sim
open Tbwf_registers

type fate =
  | Took_effect of Value.t  (** the response the operation earned *)
  | No_effect
  | Nothing_invoked

let create rt ~name ~spec ~policy
    ?(effect_on_abort = Abort_policy.Effect_random 0.5) () =
  let state = ref spec.Seq_spec.initial in
  let fates : (int, fate) Hashtbl.t = Hashtbl.create 16 in
  let fate_of pid =
    Option.value (Hashtbl.find_opt fates pid) ~default:Nothing_invoked
  in
  let apply_op pid op =
    let state', response = Seq_spec.apply_exn spec !state op in
    state := state';
    Hashtbl.replace fates pid (Took_effect response);
    response
  in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "apply", op) ->
      if Abort_policy.should_abort policy ~contended:ctx.step_contended ctx then begin
        if Abort_policy.write_takes_effect effect_on_abort ctx.rng then
          ignore (apply_op ctx.pid op)
        else Hashtbl.replace fates ctx.pid No_effect;
        Value.Abort
      end
      else apply_op ctx.pid op
    | Value.Pair (Str "query", _) ->
      if Abort_policy.should_abort policy ~contended:ctx.step_contended ctx then Value.Abort
      else begin
        match fate_of ctx.pid with
        | Took_effect response -> response
        | No_effect | Nothing_invoked -> Value.Fail
      end
    | op -> invalid_arg (Fmt.str "Qa_object %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  {
    Qa_intf.name;
    invoke = (fun op -> Runtime.call obj (Value.Pair (Str "apply", op)));
    query = (fun () -> Runtime.call obj (Value.Pair (Str "query", Unit)));
    peek_state = (fun () -> !state);
    view = Qa_intf.Direct obj;
  }
