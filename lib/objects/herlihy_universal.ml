open Tbwf_sim
open Tbwf_registers

(* Cell contents: Pair (Int version, Pair (seq_state, fate_log)) with
   fate_log = List of Pair (Int pid, Pair (op_id, response)), one entry per
   process (its latest applied operation). Announce registers hold Unit or
   Pair (op_id, op); op_id = Pair (Int pid, Int k). *)

type t = {
  n : int;
  cell : Value.t Cas_reg.t;
  announce : Value.t Atomic_reg.t array;
  spec : Seq_spec.t;
  sequence : int array;
}

let create rt ~name ~spec =
  let n = Runtime.n rt in
  {
    n;
    cell =
      Cas_reg.create rt ~name ~codec:Codec.value
        ~init:(Value.Pair (Int 0, Pair (spec.Seq_spec.initial, List [])));
    announce =
      Array.init n (fun i ->
          Atomic_reg.create rt
            ~name:(Fmt.str "%s.announce[%d]" name i)
            ~codec:Codec.value ~init:Value.Unit);
    spec;
    sequence = Array.make n 0;
  }

let log_lookup pid log =
  List.find_map
    (function
      | Value.Pair (Int p, entry) when p = pid -> Some (Value.to_pair entry)
      | _ -> None)
    log

let log_store pid op_id response log =
  Value.Pair (Int pid, Pair (op_id, response))
  :: List.filter
       (function Value.Pair (Int p, _) -> p <> pid | _ -> true)
       log

let decompose cell =
  let version, rest = Value.to_pair cell in
  let state, log = Value.to_pair rest in
  Value.to_int version, state, Value.to_list log

(* One attempt: read the cell, decide which announced operation the next
   transition must apply (helping the process at version mod n, if it has a
   pending announcement; otherwise our own), and try to CAS the transition
   in. Failure just means someone else advanced the version. *)
let attempt t ~pid ~op_id ~op =
  let snapshot = Cas_reg.read t.cell in
  let version, state, log = decompose snapshot in
  match log_lookup pid log with
  | Some (applied_id, response) when Value.equal applied_id op_id ->
    `Done response
  | _ ->
    let helped_pid = version mod t.n in
    let announced = Atomic_reg.read t.announce.(helped_pid) in
    let apply_pid, apply_id, apply_op =
      match announced with
      | Value.Pair (id, body) when helped_pid <> pid -> helped_pid, id, body
      | _ -> pid, op_id, op
    in
    let already_applied =
      match log_lookup apply_pid log with
      | Some (logged_id, _) -> Value.equal logged_id apply_id
      | None -> false
    in
    let desired =
      if already_applied then
        (* Stale announcement: just advance the helping pointer. *)
        Value.Pair (Int (version + 1), Pair (state, List log))
      else begin
        let state', response = Seq_spec.apply_exn t.spec state apply_op in
        Value.Pair
          ( Int (version + 1),
            Pair (state', List (log_store apply_pid apply_id response log)) )
      end
    in
    let (_ : bool) = Cas_reg.cas t.cell ~expected:snapshot ~desired in
    `Retry

let invoke t op =
  let pid = Runtime.self () in
  t.sequence.(pid) <- t.sequence.(pid) + 1;
  let op_id = Value.Pair (Int pid, Int t.sequence.(pid)) in
  Atomic_reg.write t.announce.(pid) (Value.Pair (op_id, op));
  let result = ref None in
  while !result = None do
    match attempt t ~pid ~op_id ~op with
    | `Done response -> result := Some response
    | `Retry -> Runtime.yield ()
  done;
  Atomic_reg.write t.announce.(pid) Value.Unit;
  Option.get !result

let peek_state t =
  let _, state, _ = decompose (Cas_reg.peek t.cell) in
  state
