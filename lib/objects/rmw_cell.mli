(** Abortable read-modify-write cell.

    A cell holding a {!Tbwf_sim.Value} state with two operations: [rmw op]
    applies a transition function fixed at creation time, and [read] returns
    the current state. Like an abortable register, any operation whose
    window overlaps another operation's may abort (⊥); an aborted [rmw] may
    or may not have taken effect; solo operations never abort.

    This is the base primitive of {!Qa_universal}. It knows nothing about
    queries or fates — those are built {e on top of} it by storing a fate
    log inside the cell's state. *)

type t

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  init:Tbwf_sim.Value.t ->
  transition:
    (Tbwf_sim.Value.t -> Tbwf_sim.Value.t -> (Tbwf_sim.Value.t * Tbwf_sim.Value.t) option) ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?effect_on_abort:Tbwf_registers.Abort_policy.write_effect ->
  unit ->
  t
(** [transition state op] returns [Some (state', response)] or [None] for an
    illegal op (which raises at the caller). *)

val rmw : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Apply the transition to [op]; returns the response or [Abort]. *)

val read : t -> Tbwf_sim.Value.t
(** Return the current state, or [Abort]. *)

val peek : t -> Tbwf_sim.Value.t

val shared : t -> Tbwf_sim.Shared.t
(** The underlying simulated object, for the compiled backend. *)
