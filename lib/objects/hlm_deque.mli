(** The obstruction-free double-ended queue of Herlihy, Luchangco and Moir
    (ICDCS 2003) — the paper's reference [10] and the original motivation
    for obstruction-freedom.

    A bounded array of CAS cells, each holding a tagged value plus a version
    counter; the array is always of the form LN⁺ v* RN⁺. A right-push bumps
    the version of the rightmost non-RN cell and then CASes the adjacent RN
    cell to the new value (left operations are mirror images); interference
    invalidates one of the two CASes and the operation retries. Every
    operation completes in a bounded number of its own steps once it runs
    without interference — obstruction-freedom — but two operations that
    keep interfering can retry forever, which is exactly the livelock that
    boosting (and TBWF) addresses.

    All operations must run inside a simulator task. *)

type t

val create : Tbwf_sim.Runtime.t -> name:string -> capacity:int -> t
(** [capacity] counts value slots; the boundary starts in the middle.
    Requires [capacity >= 2]. The array is non-circular (the simple version
    of [10]), so values do not shift: each side can push at most into the
    slots between the initial boundary and its own sentinel (≈ capacity/2
    per side unless the other side pops past the boundary). *)

val right_push : t -> Tbwf_sim.Value.t -> [ `Ok | `Full ]
val right_pop : t -> [ `Value of Tbwf_sim.Value.t | `Empty ]
val left_push : t -> Tbwf_sim.Value.t -> [ `Ok | `Full ]
val left_pop : t -> [ `Value of Tbwf_sim.Value.t | `Empty ]

val try_right_push :
  t -> Tbwf_sim.Value.t -> attempts:int -> [ `Ok | `Full | `Interfered ]
val try_right_pop :
  t -> attempts:int -> [ `Value of Tbwf_sim.Value.t | `Empty | `Interfered ]
val try_left_push :
  t -> Tbwf_sim.Value.t -> attempts:int -> [ `Ok | `Full | `Interfered ]
val try_left_pop :
  t -> attempts:int -> [ `Value of Tbwf_sim.Value.t | `Empty | `Interfered ]
(** Bounded-retry variants for experiments that must not block forever
    under contention. *)

val peek_contents : t -> Tbwf_sim.Value.t list
(** Zero-step view of the values currently between the null regions, left
    to right, for tests. *)
