(** Sequential counter type: increments and fetch-and-add, both returning
    the pre-operation value, plus read. *)

val spec : Seq_spec.t

(** {2 Operation encodings} *)

val inc : Tbwf_sim.Value.t
val add : int -> Tbwf_sim.Value.t
val read : Tbwf_sim.Value.t

val decode_response : Tbwf_sim.Value.t -> int
(** All counter responses are integers. *)
