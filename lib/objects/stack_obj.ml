open Tbwf_sim

let push v = Value.Pair (Str "push", v)
let pop = Value.Str "pop"
let empty_response = Value.Str "empty"

let spec =
  {
    Seq_spec.name = "stack";
    initial = Value.List [];
    apply =
      (fun state op ->
        match state, op with
        | Value.List items, Value.Pair (Str "push", v) ->
          Some (Value.List (v :: items), Value.Unit)
        | Value.List [], Value.Str "pop" -> Some (state, empty_response)
        | Value.List (top :: rest), Value.Str "pop" ->
          Some (Value.List rest, top)
        | _ -> None);
  }
