(** Query-abortable objects constructed over an abortable RMW cell.

    A layered implementation of the T_QA interface, in the spirit of the
    universal construction of reference [2] (see DESIGN.md §2 for the
    substitution note): the base primitive ({!Rmw_cell}) offers only
    abortable read-modify-write and read, and knows nothing about queries.

    The construction stores, next to the sequential state, a {e fate log}:
    for every process, the unique id and response of its last operation that
    took effect. Each caller tags operations with a fresh (pid, sequence)
    id; [query] reads the cell and compares the logged id with the caller's
    last-issued id — a match recovers the response, a mismatch proves the
    operation did not take effect (F). This is exactly why an aborted
    operation's fate is always recoverable once a query completes without
    aborting, even though the base cell's aborted RMWs silently may or may
    not apply.

    Wait-free: [invoke] is one RMW, [query] is one read. *)

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  spec:Seq_spec.t ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?effect_on_abort:Tbwf_registers.Abort_policy.write_effect ->
  unit ->
  Qa_intf.t
