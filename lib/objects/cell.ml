open Tbwf_sim

let read = Value.read_op
let write v = Value.write_op v

let spec ~init =
  {
    Seq_spec.name = "cell";
    initial = init;
    apply =
      (fun state op ->
        match op with
        | Value.Pair (Str "read", _) -> Some (state, state)
        | Value.Pair (Str "write", v) -> Some (v, Value.Unit)
        | _ -> None);
  }
