(** The query-abortable object interface T_QA (paper §1.2 footnote 3 and
    §7, after reference [2]).

    An object of type T_QA behaves like one of type T except that:
    - any operation executed concurrently with another may {e abort},
      returning ⊥ ({!Tbwf_sim.Value.Abort}), with or without taking effect;
    - an extra [query] operation tells the calling process the fate of its
      own last non-query operation: the response that operation should have
      returned if it took effect, or F ({!Tbwf_sim.Value.Fail}) if it did
      not. [query] may itself abort.

    Both implementations in this library ({!Qa_object} and {!Qa_universal})
    are wait-free: every call returns after a bounded number of the caller's
    own steps — aborting instead of blocking is exactly what makes the
    universal construction of Figure 7 live. *)

type view =
  | Direct of Tbwf_sim.Shared.t
      (** a {!Qa_object}: [invoke]/[query] are single operations on this
          object ([Pair (Str "apply", op)] / [Pair (Str "query", Unit)]) *)
  | Universal of Tbwf_sim.Shared.t
      (** a {!Qa_universal} over this RMW cell: [invoke] is one
          [Pair (Str "rmw", Pair (op_id, op))] with client-side op-id
          bookkeeping, [query] is one read with a client-side fate lookup *)

(** How the compiled backend ([Tbwf_compiled]) drives this QA object:
    which underlying object to call and what client-side bookkeeping the
    closures perform around the call. *)

type t = {
  name : string;
  invoke : Tbwf_sim.Value.t -> Tbwf_sim.Value.t;
      (** apply a T-operation; returns its response or [Abort]. Must be
          called from inside a task. *)
  query : unit -> Tbwf_sim.Value.t;
      (** fate of the caller's last non-query operation: a response,
          [Fail], or [Abort]. Must be called from inside a task. *)
  peek_state : unit -> Tbwf_sim.Value.t;
      (** zero-step inspection of the current sequential state, for tests *)
  view : view;
      (** backend view: what [invoke]/[query] compile to (see {!view}) *)
}
