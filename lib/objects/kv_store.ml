open Tbwf_sim

let put k v = Value.Pair (Str "put", Pair (Str k, v))
let get k = Value.Pair (Str "get", Str k)
let delete k = Value.Pair (Str "delete", Str k)
let size = Value.Str "size"

let some v = Value.Pair (Str "some", v)
let none = Value.Str "none"

let decode_binding = function
  | Value.Pair (Str "some", v) -> Some v
  | Value.Str "none" -> None
  | v -> invalid_arg (Value.to_string v)

(* State: association list of (Str key, value), most recently put first is
   irrelevant — keys are unique and kept sorted for canonical states. *)
let bindings = function
  | Value.List items ->
    List.map
      (fun item ->
        match item with
        | Value.Pair (Str k, v) -> k, v
        | v -> invalid_arg (Value.to_string v))
      items
  | v -> invalid_arg (Value.to_string v)

let of_bindings bs =
  let sorted = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) bs in
  Value.List (List.map (fun (k, v) -> Value.Pair (Str k, v)) sorted)

let spec =
  {
    Seq_spec.name = "kv-store";
    initial = Value.List [];
    apply =
      (fun state op ->
        let bs = bindings state in
        match op with
        | Value.Pair (Str "put", Pair (Str k, v)) ->
          let previous = List.assoc_opt k bs in
          let bs' = (k, v) :: List.remove_assoc k bs in
          let response = match previous with Some v0 -> some v0 | None -> none in
          Some (of_bindings bs', response)
        | Value.Pair (Str "get", Str k) ->
          let response =
            match List.assoc_opt k bs with Some v -> some v | None -> none
          in
          Some (state, response)
        | Value.Pair (Str "delete", Str k) ->
          if List.mem_assoc k bs then
            Some (of_bindings (List.remove_assoc k bs), Value.Bool true)
          else Some (state, Value.Bool false)
        | Value.Str "size" -> Some (state, Value.Int (List.length bs))
        | _ -> None);
  }
