(** Lock-free universal construction from compare-and-swap.

    The comparison point from §1.2: "any object has a wait-free (and a
    fortiori TBWF) implementation, provided one is allowed to use some
    strong synchronization primitives like compare-and-swap [9]. But such
    primitives can be slow in practice compared to weaker ones such as
    registers."

    This is the classic state-cell construction: read the whole sequential
    state, apply the operation, CAS the cell from old to new; retry on CAS
    failure. It is {e lock-free} (some concurrent operation always wins the
    CAS) but not wait-free (an individual can lose every race) — the
    stepping stone between obstruction-freedom and what the paper achieves
    with far weaker primitives. ABA is harmless here because states are
    compared structurally: an equal state implies an equal future.

    Experiment E12 races it against the HLM deque and the TBWF stack. *)

type t

val create :
  Tbwf_sim.Runtime.t -> name:string -> spec:Seq_spec.t -> t

val invoke : t -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
(** Apply an operation, retrying until the CAS lands. Lock-free. *)

val try_invoke :
  t -> Tbwf_sim.Value.t -> attempts:int -> Tbwf_sim.Value.t option
(** Bounded-retry variant; [None] after [attempts] lost races. *)

val peek_state : t -> Tbwf_sim.Value.t
