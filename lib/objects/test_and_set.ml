open Tbwf_sim

let tas = Value.Str "tas"
let reset = Value.Str "reset"
let read = Value.read_op

let spec =
  {
    Seq_spec.name = "test-and-set";
    initial = Value.Bool false;
    apply =
      (fun state op ->
        match state, op with
        | Value.Bool b, Value.Str "tas" -> Some (Value.Bool true, Value.Bool b)
        | Value.Bool _, Value.Str "reset" ->
          Some (Value.Bool false, Value.Unit)
        | Value.Bool b, Value.Pair (Str "read", _) ->
          Some (state, Value.Bool b)
        | _ -> None);
  }
