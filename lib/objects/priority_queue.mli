(** Sequential min-priority queue.

    [insert prio payload] returns unit; [extract_min] returns
    [Pair (Int prio, payload)] for the smallest priority (FIFO among equal
    priorities) or the sentinel [Str "empty"]; [size] returns the element
    count. *)

val spec : Seq_spec.t

val insert : int -> Tbwf_sim.Value.t -> Tbwf_sim.Value.t
val extract_min : Tbwf_sim.Value.t
val size : Tbwf_sim.Value.t
val empty_response : Tbwf_sim.Value.t
