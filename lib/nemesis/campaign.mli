(** Named fault-injection campaigns with graceful-degradation verdicts.

    A campaign is a fault plan shape (instantiated per run size) plus a
    prediction of which systems violate the TBWF contract under it. Running
    a campaign builds each system's full stack — Ω∆, the query-abortable
    object, one counter client per process — compiles the plan into the
    scheduler/crash/abort hooks, executes to the horizon, and verdicts the
    tail with {!Tbwf_check.Degradation.check}.

    Each catalogue campaign headlines one fault atom, and each keeps a
    slowing control on process 0 so that the baselines — whose registers
    are atomic and therefore blind to the channel-level atoms — have a
    fault to mishandle: the campaigns double as negative controls showing
    the checker rejects boosting-style algorithms. *)

(** {2 Systems under test}

    The catalogue of systems is owned by {!Tbwf_system.System}; the type
    is re-exported (with the equation visible) so campaign code and
    registry code interoperate without conversion. *)

type system = Tbwf_system.System.id =
  | Tbwf_atomic  (** Figs 2–3 Ω∆ over atomic registers + Fig 7 (Thm 11–12, 14) *)
  | Tbwf_abortable  (** Figs 4–6 Ω∆ over abortable registers + Fig 7 (Thm 13) *)
  | Tbwf_universal
      (** as [Tbwf_abortable] but with the query-abortable object itself
          built by the universal QA construction *)
  | Naive_booster  (** min-pid leader, adaptive timeouts, no punishment *)
  | Retry  (** obstruction-free retry, no boosting at all *)

val system_name : system -> string
val system_of_name : string -> (system, string) result
val paper_systems : system list
val baseline_systems : system list
val all_systems : system list

(** {2 Running one plan against one system} *)

type run_result = {
  rr_system : system;
  rr_verdict : Tbwf_check.Degradation.verdict;
  rr_online : Tbwf_check.Degradation.verdict;
      (** the same contract decided incrementally by
          {!Tbwf_check.Degradation.Online} from the sink stream while the
          run executed, without consulting the recorded trace. Equal to
          [rr_verdict] field for field — the differential invariant
          [test/test_nemesis.ml] checks across the whole matrix — and the
          verdict long-horizon runs rely on when trace recording is off *)
  rr_tail_steps : int;
  rr_tail_ops : int array;
      (** measured workload completions per pid over the tail window, from
          the run's telemetry collector — the same numbers the verdict is
          computed from, cited so a verdict is auditable *)
  rr_telemetry : Tbwf_telemetry.Collector.t;
      (** the run's full telemetry collector; [Collector.snapshot] exports
          it as JSON *)
  rr_seconds : float;
      (** wall-clock seconds the cell took (build + run + verdict) — for
          stderr diagnostics only; never part of deterministic output *)
}

val default_seed : int64

val required_tail_ops : n:int -> tail:int -> int
(** The default rate floor for a [tail]-step tail with [n] processes —
    {!Tbwf_check.Degradation.required_tail_ops}, re-exported. The constant
    and its rationale live in one place: the
    {!Tbwf_check.Degradation.tail_rate_denominator} doc comment. *)

val run_plan :
  ?backend:Tbwf_sim.Backend.t ->
  ?substrate:Tbwf_system.System.substrate ->
  ?seed:int64 ->
  ?min_ops:int ->
  ?stream:int * (Tbwf_telemetry.Json.t -> unit) ->
  plan:Fault_plan.t ->
  system:system ->
  unit ->
  run_result
(** Build the system's stack under [plan]'s compiled abort policies, spawn
    one counter client per process, install the plan's crashes, run under
    the plan's policy to the horizon, and check degradation over the tail
    (the last quarter of the horizon, or from the plan's settle step if
    that is later). [backend] selects the execution backend for the
    stack (default reference); verdicts and telemetry are identical
    either way.

    [substrate] (default shared memory) selects what the Ω∆'s registers
    are made of. On a message-passing substrate the plan's network atoms
    compile into the network's event list, the replica count is taken
    from the plan (or from the config for a replica-less plan, which is
    re-made to schedule the replica pids), and the verdict exempts
    clients the plan cuts off from a live replica majority (emergent
    untimeliness — see {!Tbwf_check.Degradation}).

    [stream] = [(every, emit)] arranges one [tbwf-telemetry/v2] record
    per [every]-step window ({!Tbwf_telemetry.Collector.emit_every}),
    each carrying the online checker's running verdict under
    ["verdict"]; the final partial window is flushed before the runtime
    stops. Raises
    [Invalid_argument] for a plan with replica/network atoms on shared
    memory, and (via {!Tbwf_system.System.build}) for message passing on
    the compiled backend. *)

(** {2 The campaign catalogue} *)

type t

val name : t -> string
val summary : t -> string

val headline_atom : t -> string
(** The fault-atom kind this campaign exercises ("slow", "timely",
    "flicker", "crash", "abort-ramp", "staleness"). *)

val expect_fail : t -> system list
val plan : t -> n:int -> horizon:int -> Fault_plan.t

val catalogue : t list
(** Six campaigns, at least one per fault atom; every one expects the
    paper systems to pass and the baselines to fail. *)

val net_replicas : int
(** Replica count the network campaigns are written for (3: the smallest
    cluster with a crash-tolerant majority). *)

val net_catalogue : t list
(** Six message-passing campaigns, at least one per network fault atom
    (partition/heal, drop, delay-ramp, replica crash), each keeping the
    slowdown control. Their plans carry [replicas = net_replicas] and
    require a message-passing substrate to run. *)

val find : string -> t option
(** Searches {!catalogue} then {!net_catalogue}. *)

val dimensions : quick:bool -> int * int
(** [(n, horizon)]: (4, 96k) quick, (6, 480k) full. *)

val net_cost_factor : int
(** How many steps a register operation costs over the quorum emulation
    for every one it costs on shared memory (round-trips, polled on the
    retransmit cadence). Calibrates the message-passing matrix: campaign
    horizons stretch by it and the tail-rate floor divides by it, so
    verdicts measure degradation against the substrate's own pace. *)

val substrate_dimensions :
  ?substrate:Tbwf_system.System.substrate -> quick:bool -> unit -> int * int
(** {!dimensions}, with the horizon scaled by {!net_cost_factor} on a
    message-passing substrate — the dimensions {!run} and {!run_matrix}
    actually use. *)

(** {2 Campaign outcomes} *)

type row = {
  row_system : system;
  row_expected_fail : bool;
  row_result : run_result;
  row_as_expected : bool;
}

type outcome = {
  o_campaign : t;
  o_plan : Fault_plan.t;
  o_rows : row list;
  o_ok : bool;  (** every system behaved as the campaign predicts *)
}

val run :
  ?backend:Tbwf_sim.Backend.t ->
  ?substrate:Tbwf_system.System.substrate ->
  ?quick:bool ->
  ?seed:int64 ->
  ?pool:Tbwf_parallel.Pool.t ->
  ?systems:system list ->
  t ->
  outcome
(** [run campaign] (default [quick:true], all systems) instantiates the
    campaign's plan at {!dimensions} and verdicts every system. [pool]
    runs one task per system (each builds its own stack); rows come back
    in [systems] order regardless of domain count. *)

(** {2 The full matrix} *)

type matrix = {
  m_outcomes : outcome list;  (** one per catalogue campaign, in order *)
  m_ok : bool;
  m_telemetry : Tbwf_telemetry.Collector.t;
      (** all cells' collectors folded with
          {!Tbwf_telemetry.Collector.merge} in cell order — the aggregate
          view of every run in the matrix *)
}

val run_matrix :
  ?backend:Tbwf_sim.Backend.t ->
  ?substrate:Tbwf_system.System.substrate ->
  ?pool:Tbwf_parallel.Pool.t ->
  ?quick:bool ->
  ?seed:int64 ->
  ?systems:system list ->
  unit ->
  matrix
(** Run every catalogue campaign against every system, one pool task per
    (campaign, system) cell, campaign-major. Outcomes regroup in
    catalogue order and the aggregate collector folds in cell order, so
    the matrix — including the merged telemetry snapshot — is
    byte-identical at any domain count.

    With a message-passing [substrate] the matrix gains the network
    axis: the stock campaigns re-run with emergent register timeliness,
    followed by {!net_catalogue} — the E16-style answer to whether TBWF
    graceful degradation survives when register timeliness is emergent
    rather than assumed. *)

val pp_row : Format.formatter -> row -> unit
val pp_outcome : Format.formatter -> outcome -> unit
