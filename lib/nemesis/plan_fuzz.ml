open Tbwf_sim
open Tbwf_registers
open Tbwf_check

let fuzz ?seed ?runs ?pool ?(max_atoms = 3) ~n ~horizon ~scenario
    ~make_runtime () =
  Explore.fuzz_faults ?seed ?runs ?pool
    ~gen_plan:(fun rng -> Fault_plan.gen ~max_atoms rng ~n ~horizon)
    ~shrink_plan:Fault_plan.shrink ~max_steps:horizon ~scenario ~make_runtime
    ()

(* --- the demo scenario ---------------------------------------------------- *)

(* A deliberately buggy writer: it ignores the abort result of an abortable
   write and records the write as done. Solo, the write can never abort —
   the register aborts only under contention — so no schedule alone exposes
   the bug. An [Abort_ramp] atom aborts below the register abstraction,
   making "write went through" a fiction exactly when a plan says so: the
   counterexample needs both fuzzing dimensions, and shrinks to a one-atom
   plan plus a handful of steps. *)

let demo_n = 2
let demo_seed = 0xDE4003EDL

let demo_make_runtime plan () =
  let rt = Runtime.create ~seed:demo_seed ~n:demo_n () in
  Fault_plan.install_crashes plan rt;
  rt

let demo_scenario plan rt =
  let policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Qa
      ~base:Abort_policy.Never
  in
  let reg =
    Abortable_reg.create rt ~name:"demo-reg" ~codec:Codec.int ~init:(-1)
      ~writer:0 ~reader:1 ~policy
      ~write_effect:Abort_policy.Effect_never ()
  in
  let recorded = ref None in
  Runtime.spawn rt ~pid:0 ~name:"buggy-writer" (fun () ->
      let k = ref 0 in
      while true do
        let v = !k in
        let (_ : bool) = Abortable_reg.write reg v in
        (* BUG: the ⊥ result is discarded; an aborted write that did not
           take effect is still recorded as the current value. *)
        recorded := Some v;
        incr k;
        Runtime.yield ()
      done);
  fun () ->
    match !recorded with
    | None -> true
    | Some v -> Abortable_reg.peek reg = v

let demo_replay plan pids =
  let rt = demo_make_runtime plan () in
  let invariant = demo_scenario plan rt in
  let held = ref (invariant ()) in
  List.iter
    (fun pid ->
      if pid >= 0 && Array.exists (fun p -> p = pid) (Runtime.runnable_pids rt)
      then begin
        Runtime.step rt ~pid;
        if not (invariant ()) then held := false
      end)
    pids;
  let fp = Trace.fingerprint (Runtime.trace rt) in
  Runtime.stop rt;
  !held, fp

let demo ?seed ?(runs = 200) ?pool ~horizon () =
  fuzz ?seed ~runs ?pool ~max_atoms:2 ~n:demo_n ~horizon
    ~scenario:demo_scenario ~make_runtime:demo_make_runtime ()
