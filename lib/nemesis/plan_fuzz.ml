open Tbwf_sim
open Tbwf_registers
open Tbwf_check
open Tbwf_system

let fuzz ?seed ?runs ?pool ?(max_atoms = 3) ?(replicas = 0) ~n ~horizon
    ~scenario ~make_runtime () =
  Explore.fuzz_faults ?seed ?runs ?pool
    ~gen_plan:(fun rng -> Fault_plan.gen ~max_atoms ~replicas rng ~n ~horizon)
    ~shrink_plan:Fault_plan.shrink ~max_steps:horizon ~scenario ~make_runtime
    ()

(* --- the demo scenario ---------------------------------------------------- *)

(* A deliberately buggy writer: it ignores the abort result of an abortable
   write and records the write as done. Solo, the write can never abort —
   the register aborts only under contention — so no schedule alone exposes
   the bug. An [Abort_ramp] atom aborts below the register abstraction,
   making "write went through" a fiction exactly when a plan says so: the
   counterexample needs both fuzzing dimensions, and shrinks to a one-atom
   plan plus a handful of steps. *)

let demo_n = 2
let demo_seed = 0xDE4003EDL

let demo_pid_count ?(substrate = System.Shared_memory) plan =
  match substrate with
  | System.Shared_memory -> demo_n
  | System.Message_passing config ->
    demo_n + max config.Tbwf_net.Net.replicas (Fault_plan.replicas plan)

let demo_make_runtime ?substrate plan () =
  let n = demo_pid_count ?substrate plan in
  let rt = Runtime.create ~seed:demo_seed ~n () in
  Fault_plan.install_crashes plan rt;
  rt

let demo_scenario ?(substrate = System.Shared_memory) plan rt =
  let policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Qa
      ~base:Abort_policy.Never
  in
  let reg_write, reg_peek =
    match substrate with
    | System.Shared_memory ->
      let reg =
        Abortable_reg.create rt ~name:"demo-reg" ~codec:Codec.int ~init:(-1)
          ~writer:0 ~reader:1 ~policy
          ~write_effect:Abort_policy.Effect_never ()
      in
      Abortable_reg.write reg, fun () -> Abortable_reg.peek reg
    | System.Message_passing config ->
      let config =
        {
          config with
          Tbwf_net.Net.replicas =
            max config.Tbwf_net.Net.replicas (Fault_plan.replicas plan);
          events =
            config.Tbwf_net.Net.events @ Fault_plan.net_events plan;
        }
      in
      let net = Tbwf_net.Net.create rt ~config in
      let cluster = Mp_reg.Cluster.create rt ~net in
      let reg =
        Mp_reg.abortable cluster ~name:"demo-reg" ~codec:Codec.int ~init:(-1)
          ~writer:0 ~reader:1 ~policy
          ~write_effect:(Some Abort_policy.Effect_never)
      in
      reg.Reg.Abortable.write, reg.Reg.Abortable.peek
  in
  let recorded = ref None in
  Runtime.spawn rt ~pid:0 ~name:"buggy-writer" (fun () ->
      let k = ref 0 in
      while true do
        let v = !k in
        let (_ : bool) = reg_write v in
        (* BUG: the ⊥ result is discarded; an aborted write that did not
           take effect is still recorded as the current value. *)
        recorded := Some v;
        incr k;
        Runtime.yield ()
      done);
  fun () ->
    match !recorded with
    | None -> true
    | Some v -> (
      match substrate with
      | System.Shared_memory -> reg_peek () = v
      (* On message passing a completing quorum write lands at replicas
         before the client records it, so equality would trip on honest
         in-flight states; monotonicity is the invariant that survives —
         and an Effect_never abort recorded as done still violates it. *)
      | System.Message_passing _ -> reg_peek () >= v)

let demo_replay ?substrate plan pids =
  let rt = demo_make_runtime ?substrate plan () in
  let invariant = demo_scenario ?substrate plan rt in
  let held = ref (invariant ()) in
  List.iter
    (fun pid ->
      if pid >= 0 && Array.exists (fun p -> p = pid) (Runtime.runnable_pids rt)
      then begin
        Runtime.step rt ~pid;
        if not (invariant ()) then held := false
      end)
    pids;
  let fp = Trace.fingerprint (Runtime.trace rt) in
  Runtime.stop rt;
  !held, fp

let demo ?seed ?(runs = 200) ?pool ?(substrate = System.Shared_memory)
    ~horizon () =
  let replicas =
    match substrate with
    | System.Shared_memory -> 0
    | System.Message_passing config -> config.Tbwf_net.Net.replicas
  in
  fuzz ?seed ~runs ?pool ~max_atoms:2 ~replicas ~n:demo_n ~horizon
    ~scenario:(demo_scenario ~substrate)
    ~make_runtime:(demo_make_runtime ~substrate) ()
