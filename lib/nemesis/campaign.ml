open Tbwf_sim
open Tbwf_registers
open Tbwf_check
open Tbwf_core
open Tbwf_system

(* --- systems under test -------------------------------------------------- *)

(* The catalogue of systems is the System registry's; re-exported so
   existing pattern matches over [Campaign.system] keep compiling. *)
type system = System.id =
  | Tbwf_atomic
  | Tbwf_abortable
  | Tbwf_universal
  | Naive_booster
  | Retry

let system_name = System.to_string
let system_of_name = System.of_string
let paper_systems = System.paper_systems
let baseline_systems = System.baseline_systems
let all_systems = System.all

(* --- running one plan against one system --------------------------------- *)

type run_result = {
  rr_system : system;
  rr_verdict : Degradation.verdict;
  rr_tail_steps : int;
  rr_tail_ops : int array;
      (* measured workload completions per pid over the tail, from the
         attached telemetry collector *)
  rr_telemetry : Tbwf_telemetry.Collector.t;
}

let default_seed = 0x4E454D45L (* "NEME" *)

(* The rate floor and its rationale live with the checker; see the
   [Tbwf_check.Degradation.tail_rate_denominator] doc comment. *)
let required_tail_ops = Degradation.required_tail_ops

let run_plan ?backend ?(seed = default_seed) ?min_ops ~plan ~system () =
  let n = Fault_plan.n plan in
  let horizon = Fault_plan.horizon plan in
  (* The plan's channel-level atoms compile into the abort policies of the
     registers they target; everything else is the registry's stock stack
     (one counter client per process, telemetry attached). *)
  let qa_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Qa
      ~base:Abort_policy.Always
  in
  let mesh_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Omega_mesh
      ~base:Abort_policy.Always
  in
  let stack =
    System.build ?backend ~seed ~qa_policy ~mesh_policy ~telemetry:true ~n
      system
  in
  let rt = stack.System.rt in
  let telemetry = Option.get stack.System.telemetry in
  let stats = stack.System.stats in
  Fault_plan.install_crashes plan rt;
  let policy = Fault_plan.policy plan in
  (* Tail = the last quarter of the horizon, pushed later if the plan
     settles later than that: the contract is "keeps progressing after the
     last fault", and the tail must leave the recovered system room to
     demonstrate it. *)
  let snap = max (Fault_plan.settle_step plan) (horizon - (horizon / 4)) in
  Runtime.run rt ~policy ~steps:snap;
  let completed_before = Array.copy stats.Workload.completed in
  let measured_before = Tbwf_telemetry.Collector.app_completed telemetry in
  Runtime.run rt ~policy ~steps:(horizon - snap);
  let completed_after = Array.copy stats.Workload.completed in
  let measured_after = Tbwf_telemetry.Collector.app_completed telemetry in
  let prediction =
    { (Fault_plan.prediction plan) with Degradation.pred_from = snap }
  in
  let min_ops =
    match min_ops with
    | Some m -> m
    | None -> required_tail_ops ~n ~tail:(horizon - snap)
  in
  let verdict =
    Degradation.check ~min_ops ~prediction ~trace:(Runtime.trace rt)
      ~completed_before ~completed_after ()
  in
  Runtime.stop rt;
  {
    rr_system = system;
    rr_verdict = verdict;
    rr_tail_steps = horizon - snap;
    rr_tail_ops =
      Array.init n (fun pid -> measured_after.(pid) - measured_before.(pid));
    rr_telemetry = telemetry;
  }

(* --- the campaign catalogue ---------------------------------------------- *)

type t = {
  c_name : string;
  c_summary : string;
  c_atom : string;
  c_plan : n:int -> horizon:int -> Fault_plan.t;
  c_expect_fail : system list;
}

let name c = c.c_name
let summary c = c.c_summary
let headline_atom c = c.c_atom
let expect_fail c = c.c_expect_fail
let plan c ~n ~horizon = c.c_plan ~n ~horizon

(* E2's proven deceleration: the naive booster's doubling timeout overtakes
   ×1.15 gap growth and trusts the process through ever-longer waits, while
   TBWF's +1 adaptation keeps suspecting and punishing it. *)
let slow ~pid ~at = Fault_plan.Slow { pid; at; gap = 60; growth = 1.15 }

(* Every campaign keeps a timeliness fault on process 0 from step 0: the
   naive booster's registers are atomic and its monitors ignore abort
   atoms, so a campaign whose only faults live below the register
   abstraction could not distinguish graceful degradation from boosting at
   all. The control makes process 0 non-timely in every campaign, which is
   exactly the fault class the baselines mishandle (E2), while the
   headline atom stresses the paper algorithms in its own way. The control
   starts at step 0 — by the time the tail window opens, the decelerating
   gap is so large that the booster's suspicion windows have become
   vanishingly rare, which is what makes its trickle measurably distinct
   from a timely process's sustained rate. *)
let catalogue =
  [
    {
      c_name = "slowdown";
      c_summary =
        "process 0 decelerates forever from the start; every other process \
         must keep completing operations (the paper's headline scenario, \
         as E2)";
      c_atom = "slow";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon [ slow ~pid:0 ~at:0 ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "gst";
      c_summary =
        "processes 1..n-1 flicker from the start and become timely at \
         their own GST (h/2); process 0 decelerates forever and never \
         stabilizes — a per-process global stabilization time (as E14)";
      c_atom = "timely";
      c_plan =
        (fun ~n ~horizon ->
          (* Constant-duty flicker (growth 1.0): the observers stay
             intermittent pre-GST but their clocks keep running, so the
             pre-GST phase exercises recovery rather than freezing the
             whole system. *)
          let flicker pid =
            Fault_plan.Flicker
              {
                pid;
                at = 0;
                active = 80;
                sleep = 200 + (40 * pid);
                growth = 1.0;
              }
          in
          let gst pid =
            Fault_plan.Timely { pid; at = horizon / 2; period = n + 1 }
          in
          Fault_plan.make ~n ~horizon
            (slow ~pid:0 ~at:0
            :: List.concat_map
                 (fun pid -> [ flicker pid; gst pid ])
                 (List.init (n - 1) (fun i -> i + 1))));
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "flicker";
      c_summary =
        "process 0 flickers from the start with geometrically growing \
         sleeps — intermittent timeliness that keeps luring boosters into \
         re-trusting it (as E9)";
      c_atom = "flicker";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              Fault_plan.Flicker
                {
                  pid = 0;
                  at = 0;
                  active = 40;
                  sleep = 200;
                  growth = 1.2;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "crash-storm";
      c_summary =
        "process 0 decelerates from the start, then process 1 crashes at \
         5h/8: the survivors must absorb the crash and keep completing \
         while the decelerating process still poisons boosters";
      c_atom = "crash";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Crash { pid = 1; at = 5 * horizon / 8 };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "abort-ramp";
      c_summary =
        "operations on the query-abortable object abort with probability \
         ramping 0.5 to 0.9 over [h/4, 3h/4), then the storm lifts; plus \
         the slowdown control on process 0";
      c_atom = "abort-ramp";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Abort_ramp
                {
                  target = Fault_plan.Qa;
                  from = horizon / 4;
                  until = 3 * horizon / 4;
                  rate0 = 0.5;
                  rate1 = 0.9;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "staleness";
      c_summary =
        "heartbeat writes into the Ω mesh are lost over [h/4, 3h/4) — \
         every process looks crashed to every other — then delivery \
         resumes; plus the slowdown control on process 0";
      c_atom = "staleness";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Staleness
                { from = horizon / 4; until = 3 * horizon / 4 };
            ]);
      c_expect_fail = baseline_systems;
    };
  ]

let find name =
  List.find_opt (fun c -> String.equal c.c_name name) catalogue

(* --- running a campaign --------------------------------------------------- *)

type row = {
  row_system : system;
  row_expected_fail : bool;
  row_result : run_result;
  row_as_expected : bool;
}

type outcome = {
  o_campaign : t;
  o_plan : Fault_plan.t;
  o_rows : row list;
  o_ok : bool;  (** every system behaved as the campaign predicts *)
}

let dimensions ~quick = if quick then 4, 96_000 else 6, 480_000

let row_of_result campaign system result =
  let expected_fail = List.mem system campaign.c_expect_fail in
  let holds = result.rr_verdict.Degradation.holds in
  {
    row_system = system;
    row_expected_fail = expected_fail;
    row_result = result;
    row_as_expected = (if expected_fail then not holds else holds);
  }

(* Fan a list of independent cell tasks out over [pool] (each task builds
   its own stack via [run_plan], so nothing is shared); results come back
   in task order either way. *)
let map_cells ?pool f cells =
  match pool with
  | Some pool when Tbwf_parallel.Pool.domains pool > 1 ->
    Tbwf_parallel.Pool.map pool (Array.of_list cells) f |> Array.to_list
  | _ -> List.map f cells

let run ?backend ?(quick = true) ?seed ?pool ?(systems = all_systems)
    campaign =
  let n, horizon = dimensions ~quick in
  let plan = campaign.c_plan ~n ~horizon in
  let rows =
    map_cells ?pool
      (fun system ->
        row_of_result campaign system
          (run_plan ?backend ?seed ~plan ~system ()))
      systems
  in
  {
    o_campaign = campaign;
    o_plan = plan;
    o_rows = rows;
    o_ok = List.for_all (fun r -> r.row_as_expected) rows;
  }

(* --- the full campaign × system matrix ------------------------------------ *)

type matrix = {
  m_outcomes : outcome list;
  m_ok : bool;
  m_telemetry : Tbwf_telemetry.Collector.t;
}

let run_matrix ?backend ?pool ?(quick = true) ?seed
    ?(systems = all_systems) () =
  let n, horizon = dimensions ~quick in
  if systems = [] then invalid_arg "Campaign.run_matrix: no systems";
  (* One task per (campaign, system) cell, campaign-major — finer-grained
     than pooling [run] per campaign, so a slow cell doesn't serialize its
     whole campaign. Regrouping walks the same order, and the aggregate
     collector folds in that order too, so the matrix is byte-identical at
     any domain count. *)
  let cells =
    List.concat_map
      (fun campaign ->
        let plan = campaign.c_plan ~n ~horizon in
        List.map (fun system -> campaign, plan, system) systems)
      catalogue
  in
  let results =
    map_cells ?pool
      (fun (_, plan, system) -> run_plan ?backend ?seed ~plan ~system ())
      cells
  in
  let rows =
    List.map2 (fun (c, _, s) r -> c, row_of_result c s r) cells results
  in
  let outcomes =
    List.map
      (fun campaign ->
        let c_rows =
          List.filter_map
            (fun (c, row) ->
              if c.c_name = campaign.c_name then Some row else None)
            rows
        in
        {
          o_campaign = campaign;
          o_plan = campaign.c_plan ~n ~horizon;
          o_rows = c_rows;
          o_ok = List.for_all (fun r -> r.row_as_expected) c_rows;
        })
      catalogue
  in
  let telemetry =
    List.map (fun r -> r.rr_telemetry) results
    |> Tbwf_telemetry.Collector.merge_all
  in
  {
    m_outcomes = outcomes;
    m_ok = List.for_all (fun o -> o.o_ok) outcomes;
    m_telemetry = telemetry;
  }

let pp_row fmt r =
  let v = r.row_result.rr_verdict in
  Fmt.pf fmt
    "%-16s %-6s expected %-6s %s  min tail ops %a  measured tail ops/pid %a  \
     leader epochs %d"
    (system_name r.row_system)
    (if v.Degradation.holds then "holds" else "FAILS")
    (if r.row_expected_fail then "FAILS" else "holds")
    (if r.row_as_expected then "[ok]" else "[UNEXPECTED]")
    Fmt.(option ~none:(any "-") int)
    (Degradation.min_timely_tail_ops v)
    Fmt.(brackets (array ~sep:comma int))
    r.row_result.rr_tail_ops
    (Tbwf_telemetry.Collector.leader_epochs r.row_result.rr_telemetry)

let pp_outcome fmt o =
  Fmt.pf fmt "campaign %s (%s atom): %s@,%a@,plan:@,%a"
    o.o_campaign.c_name o.o_campaign.c_atom
    (if o.o_ok then "as predicted" else "NOT as predicted")
    Fmt.(list ~sep:cut pp_row)
    o.o_rows Fault_plan.pp o.o_plan
