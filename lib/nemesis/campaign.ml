open Tbwf_sim
open Tbwf_registers
open Tbwf_check
open Tbwf_core
open Tbwf_system

(* --- systems under test -------------------------------------------------- *)

(* The catalogue of systems is the System registry's; re-exported so
   existing pattern matches over [Campaign.system] keep compiling. *)
type system = System.id =
  | Tbwf_atomic
  | Tbwf_abortable
  | Tbwf_universal
  | Naive_booster
  | Retry

let system_name = System.to_string
let system_of_name = System.of_string
let paper_systems = System.paper_systems
let baseline_systems = System.baseline_systems
let all_systems = System.all

(* --- running one plan against one system --------------------------------- *)

type run_result = {
  rr_system : system;
  rr_verdict : Degradation.verdict;
  rr_online : Degradation.verdict;
      (* the same contract decided incrementally by [Degradation.Online]
         from the sink stream while the run executed; equal to
         [rr_verdict] field for field (the differential invariant) *)
  rr_tail_steps : int;
  rr_tail_ops : int array;
      (* measured workload completions per pid over the tail, from the
         attached telemetry collector *)
  rr_telemetry : Tbwf_telemetry.Collector.t;
  rr_seconds : float;  (* wall-clock seconds this cell took to run *)
}

let default_seed = 0x4E454D45L (* "NEME" *)

(* The rate floor and its rationale live with the checker; see the
   [Tbwf_check.Degradation.tail_rate_denominator] doc comment. *)
let required_tail_ops = Degradation.required_tail_ops

(* A register operation over the quorum emulation costs round-trips —
   two phases of (send to all, await a majority, polled on a retransmit
   cadence) — where a shared-memory operation costs one step. The
   substrate cost factor feeds both knobs that calibrate verdicts to the
   substrate: campaign horizons stretch by it (so tails hold enough
   completions to separate degradation from noise) and the rate floor
   divides by it (the guarantee is "keeps completing ops at the
   substrate's own pace", not at shared memory's). *)
let net_cost_factor = 4

let net_required_tail_ops ~n ~tail =
  max 2 (required_tail_ops ~n ~tail / net_cost_factor)

(* Align a plan and a substrate choice: on message passing the plan must
   know the replica count (its compiled policy schedules the replica
   server pids; its prediction carries the emergent-timeliness picture),
   and the network config must carry the plan's network atoms as
   events. A plan written for replicas cannot run on shared memory. *)
let align_substrate ?substrate plan =
  match substrate with
  | None | Some System.Shared_memory ->
    if Fault_plan.replicas plan > 0 then
      invalid_arg
        "Campaign.run_plan: plan has network/replica atoms; run it on a          message-passing substrate"
    else System.Shared_memory, plan
  | Some (System.Message_passing config) ->
    let plan =
      if Fault_plan.replicas plan > 0 then plan
      else
        Fault_plan.make
          ~replicas:config.Tbwf_net.Net.replicas
          ~n:(Fault_plan.n plan) ~horizon:(Fault_plan.horizon plan)
          (Fault_plan.atoms plan)
    in
    let config =
      {
        config with
        Tbwf_net.Net.replicas = Fault_plan.replicas plan;
        events = config.Tbwf_net.Net.events @ Fault_plan.net_events plan;
      }
    in
    System.Message_passing config, plan

let run_plan ?backend ?substrate ?(seed = default_seed) ?min_ops ?stream
    ~plan ~system () =
  let substrate, plan = align_substrate ?substrate plan in
  let n = Fault_plan.n plan in
  let horizon = Fault_plan.horizon plan in
  (* The plan's channel-level atoms compile into the abort policies of the
     registers they target; everything else is the registry's stock stack
     (one counter client per process, telemetry attached). *)
  let qa_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Qa
      ~base:Abort_policy.Always
  in
  let mesh_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Omega_mesh
      ~base:Abort_policy.Always
  in
  let start = Unix.gettimeofday () in
  let stack =
    System.build ?backend ~substrate ~seed ~qa_policy ~mesh_policy
      ~telemetry:true ~n system
  in
  let rt = stack.System.rt in
  let telemetry = Option.get stack.System.telemetry in
  let stats = stack.System.stats in
  Fault_plan.install_crashes plan rt;
  let policy = Fault_plan.policy plan in
  (* Tail = the last quarter of the horizon, pushed later if the plan
     settles later than that: the contract is "keeps progressing after the
     last fault", and the tail must leave the recovered system room to
     demonstrate it. *)
  let snap = max (Fault_plan.settle_step plan) (horizon - (horizon / 4)) in
  let prediction =
    { (Fault_plan.prediction plan) with Degradation.pred_from = snap }
  in
  let min_ops =
    match min_ops with
    | Some m -> m
    | None -> (
      match substrate with
      | System.Shared_memory -> required_tail_ops ~n ~tail:(horizon - snap)
      | System.Message_passing _ ->
        net_required_tail_ops ~n ~tail:(horizon - snap))
  in
  (* The tail boundary and floor are plan-derived, so the online checker
     can be armed before the first step; it shares the run's event stream
     with the collector through a tee. *)
  let online = Degradation.Online.create ~min_ops prediction in
  Runtime.set_sink rt
    (Sink.tee
       (Tbwf_telemetry.Collector.sink telemetry)
       (Degradation.Online.sink online));
  (* Streaming: one v2 record per [every]-step window, each carrying the
     online checker's verdict so far. The collector's sink runs first in
     the tee, so at emission time the checker has consumed exactly the
     steps the record covers. *)
  (match stream with
  | None -> ()
  | Some (every, emit) ->
    Tbwf_telemetry.Collector.emit_every telemetry ~every
      ~extra:(fun ~window:_ ->
        [
          ( "verdict",
            Degradation.verdict_json (Degradation.Online.verdict online) );
        ])
      emit);
  Runtime.run rt ~policy ~steps:snap;
  let completed_before = Array.copy stats.Workload.completed in
  let measured_before = Tbwf_telemetry.Collector.app_completed telemetry in
  Runtime.run rt ~policy ~steps:(horizon - snap);
  let completed_after = Array.copy stats.Workload.completed in
  let measured_after = Tbwf_telemetry.Collector.app_completed telemetry in
  let verdict =
    Degradation.check ~min_ops ~prediction ~trace:(Runtime.trace rt)
      ~completed_before ~completed_after ()
  in
  if stream <> None then Tbwf_telemetry.Collector.stream_flush telemetry;
  Runtime.stop rt;
  {
    rr_system = system;
    rr_verdict = verdict;
    rr_online = Degradation.Online.verdict online;
    rr_tail_steps = horizon - snap;
    rr_tail_ops =
      Array.init n (fun pid -> measured_after.(pid) - measured_before.(pid));
    rr_telemetry = telemetry;
    rr_seconds = Unix.gettimeofday () -. start;
  }

(* --- the campaign catalogue ---------------------------------------------- *)

type t = {
  c_name : string;
  c_summary : string;
  c_atom : string;
  c_plan : n:int -> horizon:int -> Fault_plan.t;
  c_expect_fail : system list;
}

let name c = c.c_name
let summary c = c.c_summary
let headline_atom c = c.c_atom
let expect_fail c = c.c_expect_fail
let plan c ~n ~horizon = c.c_plan ~n ~horizon

(* E2's proven deceleration: the naive booster's doubling timeout overtakes
   ×1.15 gap growth and trusts the process through ever-longer waits, while
   TBWF's +1 adaptation keeps suspecting and punishing it. *)
let slow ~pid ~at = Fault_plan.Slow { pid; at; gap = 60; growth = 1.15 }

(* Every campaign keeps a timeliness fault on process 0 from step 0: the
   naive booster's registers are atomic and its monitors ignore abort
   atoms, so a campaign whose only faults live below the register
   abstraction could not distinguish graceful degradation from boosting at
   all. The control makes process 0 non-timely in every campaign, which is
   exactly the fault class the baselines mishandle (E2), while the
   headline atom stresses the paper algorithms in its own way. The control
   starts at step 0 — by the time the tail window opens, the decelerating
   gap is so large that the booster's suspicion windows have become
   vanishingly rare, which is what makes its trickle measurably distinct
   from a timely process's sustained rate. *)
let catalogue =
  [
    {
      c_name = "slowdown";
      c_summary =
        "process 0 decelerates forever from the start; every other process \
         must keep completing operations (the paper's headline scenario, \
         as E2)";
      c_atom = "slow";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon [ slow ~pid:0 ~at:0 ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "gst";
      c_summary =
        "processes 1..n-1 flicker from the start and become timely at \
         their own GST (h/2); process 0 decelerates forever and never \
         stabilizes — a per-process global stabilization time (as E14)";
      c_atom = "timely";
      c_plan =
        (fun ~n ~horizon ->
          (* Constant-duty flicker (growth 1.0): the observers stay
             intermittent pre-GST but their clocks keep running, so the
             pre-GST phase exercises recovery rather than freezing the
             whole system. *)
          let flicker pid =
            Fault_plan.Flicker
              {
                pid;
                at = 0;
                active = 80;
                sleep = 200 + (40 * pid);
                growth = 1.0;
              }
          in
          let gst pid =
            Fault_plan.Timely { pid; at = horizon / 2; period = n + 1 }
          in
          Fault_plan.make ~n ~horizon
            (slow ~pid:0 ~at:0
            :: List.concat_map
                 (fun pid -> [ flicker pid; gst pid ])
                 (List.init (n - 1) (fun i -> i + 1))));
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "flicker";
      c_summary =
        "process 0 flickers from the start with geometrically growing \
         sleeps — intermittent timeliness that keeps luring boosters into \
         re-trusting it (as E9)";
      c_atom = "flicker";
      c_plan =
        (fun ~n ~horizon ->
          (* The flicker's cycle lengths scale with the horizon (40 and
             200 at the quick 96k), so the shape is self-similar at any
             dimensions — in particular the stretched message-passing
             horizons keep the tail inside the same flicker regime. *)
          Fault_plan.make ~n ~horizon
            [
              Fault_plan.Flicker
                {
                  pid = 0;
                  at = 0;
                  active = max 1 (horizon / 2_400);
                  sleep = max 1 (horizon / 480);
                  growth = 1.2;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "crash-storm";
      c_summary =
        "process 0 decelerates from the start, then process 1 crashes at \
         5h/8: the survivors must absorb the crash and keep completing \
         while the decelerating process still poisons boosters";
      c_atom = "crash";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Crash { pid = 1; at = 5 * horizon / 8 };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "abort-ramp";
      c_summary =
        "operations on the query-abortable object abort with probability \
         ramping 0.5 to 0.9 over [h/4, 3h/4), then the storm lifts; plus \
         the slowdown control on process 0";
      c_atom = "abort-ramp";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Abort_ramp
                {
                  target = Fault_plan.Qa;
                  from = horizon / 4;
                  until = 3 * horizon / 4;
                  rate0 = 0.5;
                  rate1 = 0.9;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "staleness";
      c_summary =
        "heartbeat writes into the Ω mesh are lost over [h/4, 3h/4) — \
         every process looks crashed to every other — then delivery \
         resumes; plus the slowdown control on process 0";
      c_atom = "staleness";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Staleness
                { from = horizon / 4; until = 3 * horizon / 4 };
            ]);
      c_expect_fail = baseline_systems;
    };
  ]

(* --- the network campaigns ------------------------------------------------ *)

(* Message-passing-substrate campaigns: same slowdown control on process
   0, plus a network headline atom. Each is designed so the final regime
   leaves every surviving client either quorate (a live majority of
   replicas behind timely links — its guarantee must hold) or provably
   cut off (exempt). *)
let net_replicas = 3

let net_catalogue =
  [
    {
      c_name = "net-partition-heal";
      c_summary =
        "a partition isolates replica 0 over [h/4, h/2), then heals: a          transient minority cut that retransmissions must ride out; plus          the slowdown control on process 0";
      c_atom = "partition";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Partition
                { at = horizon / 4; side = [ Fault_plan.Replica 0 ] };
              Fault_plan.Heal { at = horizon / 2 };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "net-minority-partition";
      c_summary =
        "from h/2, replica 2 is partitioned away forever: a persistent          minority cut — quorums keep forming on the majority side, so          every timely client stays quorate; plus the slowdown control";
      c_atom = "partition";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Partition
                { at = horizon / 2; side = [ Fault_plan.Replica 2 ] };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "net-client-cut";
      c_summary =
        "from h/2, client 1 is partitioned away from everyone forever:          its register operations stall on quorums (exempt — emergent          untimeliness), while every other client must keep its          guarantee; plus the slowdown control";
      c_atom = "partition";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Partition
                { at = horizon / 2; side = [ Fault_plan.Client 1 ] };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "net-delay-ramp";
      c_summary =
        "every link's latency ramps up by 0 to 3 extra steps from h/4 to          the horizon — registers get slower but stay timely, the          graceful half of emergent timeliness; plus the slowdown control";
      c_atom = "delay-ramp";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Delay_ramp
                {
                  from = horizon / 4;
                  until = horizon;
                  extra0 = 0.0;
                  extra1 = 3.0;
                  node = None;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "net-drop-storm";
      c_summary =
        "messages drop with probability ramping 0.3 to 0.8 over [h/4,          3h/4), then the storm lifts — retransmissions carry the quorums          through; plus the slowdown control";
      c_atom = "drop";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Drop
                {
                  from = horizon / 4;
                  until = 3 * horizon / 4;
                  rate0 = 0.3;
                  rate1 = 0.8;
                  node = None;
                };
            ]);
      c_expect_fail = baseline_systems;
    };
    {
      c_name = "net-replica-crash";
      c_summary =
        "replica 2 crashes at 3h/8: a minority crash the ABD emulation          tolerates by construction — quorums shrink to the live          majority; plus the slowdown control";
      c_atom = "crash-replica";
      c_plan =
        (fun ~n ~horizon ->
          Fault_plan.make ~replicas:net_replicas ~n ~horizon
            [
              slow ~pid:0 ~at:0;
              Fault_plan.Crash_replica { r = 2; at = 3 * horizon / 8 };
            ]);
      c_expect_fail = baseline_systems;
    };
  ]

let find name =
  List.find_opt
    (fun c -> String.equal c.c_name name)
    (catalogue @ net_catalogue)

(* --- running a campaign --------------------------------------------------- *)

type row = {
  row_system : system;
  row_expected_fail : bool;
  row_result : run_result;
  row_as_expected : bool;
}

type outcome = {
  o_campaign : t;
  o_plan : Fault_plan.t;
  o_rows : row list;
  o_ok : bool;  (** every system behaved as the campaign predicts *)
}

let dimensions ~quick = if quick then 4, 96_000 else 6, 480_000

let substrate_dimensions ?substrate ~quick () =
  let n, horizon = dimensions ~quick in
  match substrate with
  | None | Some System.Shared_memory -> n, horizon
  | Some (System.Message_passing _) -> n, horizon * net_cost_factor

let row_of_result campaign system result =
  let expected_fail = List.mem system campaign.c_expect_fail in
  let holds = result.rr_verdict.Degradation.holds in
  {
    row_system = system;
    row_expected_fail = expected_fail;
    row_result = result;
    row_as_expected = (if expected_fail then not holds else holds);
  }

(* Fan a list of independent cell tasks out over [pool] (each task builds
   its own stack via [run_plan], so nothing is shared); results come back
   in task order either way. *)
let map_cells ?pool f cells =
  match pool with
  | Some pool when Tbwf_parallel.Pool.domains pool > 1 ->
    Tbwf_parallel.Pool.map pool (Array.of_list cells) f |> Array.to_list
  | _ -> List.map f cells

let run ?backend ?substrate ?(quick = true) ?seed ?pool
    ?(systems = all_systems) campaign =
  let n, horizon = substrate_dimensions ?substrate ~quick () in
  let plan = campaign.c_plan ~n ~horizon in
  let rows =
    map_cells ?pool
      (fun system ->
        row_of_result campaign system
          (run_plan ?backend ?substrate ?seed ~plan ~system ()))
      systems
  in
  {
    o_campaign = campaign;
    o_plan = plan;
    o_rows = rows;
    o_ok = List.for_all (fun r -> r.row_as_expected) rows;
  }

(* --- the full campaign × system matrix ------------------------------------ *)

type matrix = {
  m_outcomes : outcome list;
  m_ok : bool;
  m_telemetry : Tbwf_telemetry.Collector.t;
}

let run_matrix ?backend ?substrate ?pool ?(quick = true) ?seed
    ?(systems = all_systems) () =
  let n, horizon = substrate_dimensions ?substrate ~quick () in
  if systems = [] then invalid_arg "Campaign.run_matrix: no systems";
  (* On message passing the matrix gains the network axis: the stock
     campaigns re-run over emergent-timeliness registers, plus the
     network campaigns proper. Shared memory keeps the historical
     matrix exactly. *)
  let matrix_catalogue =
    match substrate with
    | None | Some System.Shared_memory -> catalogue
    | Some (System.Message_passing _) -> catalogue @ net_catalogue
  in
  (* One task per (campaign, system) cell, campaign-major — finer-grained
     than pooling [run] per campaign, so a slow cell doesn't serialize its
     whole campaign. Regrouping walks the same order, and the aggregate
     collector folds in that order too, so the matrix is byte-identical at
     any domain count. *)
  let cells =
    List.concat_map
      (fun campaign ->
        let plan = campaign.c_plan ~n ~horizon in
        List.map (fun system -> campaign, plan, system) systems)
      matrix_catalogue
  in
  let results =
    map_cells ?pool
      (fun (_, plan, system) ->
        run_plan ?backend ?substrate ?seed ~plan ~system ())
      cells
  in
  let rows =
    List.map2 (fun (c, _, s) r -> c, row_of_result c s r) cells results
  in
  let outcomes =
    List.map
      (fun campaign ->
        let c_rows =
          List.filter_map
            (fun (c, row) ->
              if c.c_name = campaign.c_name then Some row else None)
            rows
        in
        {
          o_campaign = campaign;
          o_plan = campaign.c_plan ~n ~horizon;
          o_rows = c_rows;
          o_ok = List.for_all (fun r -> r.row_as_expected) c_rows;
        })
      matrix_catalogue
  in
  let telemetry =
    List.map (fun r -> r.rr_telemetry) results
    |> Tbwf_telemetry.Collector.merge_all
  in
  {
    m_outcomes = outcomes;
    m_ok = List.for_all (fun o -> o.o_ok) outcomes;
    m_telemetry = telemetry;
  }

let pp_row fmt r =
  let v = r.row_result.rr_verdict in
  Fmt.pf fmt
    "%-16s %-6s expected %-6s %s  min tail ops %a  measured tail ops/pid %a  \
     leader epochs %d"
    (system_name r.row_system)
    (if v.Degradation.holds then "holds" else "FAILS")
    (if r.row_expected_fail then "FAILS" else "holds")
    (if r.row_as_expected then "[ok]" else "[UNEXPECTED]")
    Fmt.(option ~none:(any "-") int)
    (Degradation.min_timely_tail_ops v)
    Fmt.(brackets (array ~sep:comma int))
    r.row_result.rr_tail_ops
    (Tbwf_telemetry.Collector.leader_epochs r.row_result.rr_telemetry)

let pp_outcome fmt o =
  Fmt.pf fmt "campaign %s (%s atom): %s@,%a@,plan:@,%a"
    o.o_campaign.c_name o.o_campaign.c_atom
    (if o.o_ok then "as predicted" else "NOT as predicted")
    Fmt.(list ~sep:cut pp_row)
    o.o_rows Fault_plan.pp o.o_plan
