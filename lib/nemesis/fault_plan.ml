open Tbwf_sim
open Tbwf_registers

type target = Qa | Omega_mesh

let target_name = function Qa -> "qa" | Omega_mesh -> "omega-mesh"

let target_of_name = function
  | "qa" -> Ok Qa
  | "omega-mesh" -> Ok Omega_mesh
  | s -> Error (Fmt.str "bad target %S (want qa | omega-mesh)" s)

type node = Client of int | Replica of int

let node_name = function
  | Client i -> Fmt.str "c%d" i
  | Replica j -> Fmt.str "r%d" j

let node_of_name s =
  if String.length s < 2 then Error (Fmt.str "bad node %S" s)
  else
    let num = String.sub s 1 (String.length s - 1) in
    match s.[0], int_of_string_opt num with
    | 'c', Some i -> Ok (Client i)
    | 'r', Some j -> Ok (Replica j)
    | _ -> Error (Fmt.str "bad node %S (want c<i> | r<j>)" s)

type atom =
  | Crash of { pid : int; at : int }
  | Retire of { pid : int; at : int }
  | Slow of { pid : int; at : int; gap : int; growth : float }
  | Timely of { pid : int; at : int; period : int }
  | Flicker of { pid : int; at : int; active : int; sleep : int; growth : float }
  | Abort_ramp of {
      target : target;
      from : int;
      until : int;
      rate0 : float;
      rate1 : float;
    }
  | Staleness of { from : int; until : int }
  | Partition of { at : int; side : node list }
  | Heal of { at : int }
  | Delay_ramp of {
      from : int;
      until : int;
      extra0 : float;
      extra1 : float;
      node : node option;
    }
  | Drop of {
      from : int;
      until : int;
      rate0 : float;
      rate1 : float;
      node : node option;
    }
  | Crash_replica of { r : int; at : int }
  | Unknown of { line : string }

type t = { n : int; replicas : int; horizon : int; atoms : atom list }

let magic = "tbwf-plan"
let version = "v1"
let version2 = "v2"

let known_kinds =
  [
    "crash"; "retire"; "slow"; "timely"; "flicker"; "abort-ramp"; "staleness";
    "partition"; "heal"; "delay-ramp"; "drop"; "crash-replica";
  ]

(* v2 constructs (and a positive replica count) force the v2 header;
   plans built from v1 atoms alone keep serializing byte-identically to
   the historical format. *)
let is_v2_atom = function
  | Retire _ | Partition _ | Heal _ | Delay_ramp _ | Drop _ | Crash_replica _
  | Unknown _ ->
    true
  | Crash _ | Slow _ | Timely _ | Flicker _ | Abort_ramp _ | Staleness _ ->
    false

let plan_version t =
  if t.replicas > 0 || List.exists is_v2_atom t.atoms then version2
  else version

(* --- validation ---------------------------------------------------------- *)

let validate_atom ~n ~replicas ~horizon atom =
  let check cond msg = if cond then Ok () else Error msg in
  let pid_ok pid = check (pid >= 0 && pid < n) (Fmt.str "pid %d out of range" pid) in
  let step_ok at = check (at >= 0 && at <= horizon) (Fmt.str "step %d outside horizon" at) in
  let rate_ok r = check (r >= 0.0 && r <= 1.0) (Fmt.str "rate %g outside [0,1]" r) in
  let node_ok = function
    | Client i -> pid_ok i
    | Replica j ->
      check (j >= 0 && j < replicas) (Fmt.str "replica %d out of range" j)
  in
  let net_ok = check (replicas > 0) "network atom needs replicas > 0" in
  let ( let* ) = Result.bind in
  match atom with
  | Crash { pid; at } ->
    let* () = pid_ok pid in
    step_ok at
  | Retire { pid; at } ->
    let* () = pid_ok pid in
    step_ok at
  | Slow { pid; at; gap; growth } ->
    let* () = pid_ok pid in
    let* () = step_ok at in
    let* () = check (gap >= 1) "slow: gap must be >= 1" in
    check (growth >= 1.0) "slow: growth must be >= 1.0"
  | Timely { pid; at; period } ->
    let* () = pid_ok pid in
    let* () = step_ok at in
    check (period >= 1) "timely: period must be >= 1"
  | Flicker { pid; at; active; sleep; growth } ->
    let* () = pid_ok pid in
    let* () = step_ok at in
    let* () = check (active >= 1 && sleep >= 1) "flicker: phases must be >= 1" in
    check (growth >= 1.0) "flicker: growth must be >= 1.0"
  | Abort_ramp { target = _; from; until; rate0; rate1 } ->
    let* () = step_ok from in
    let* () = step_ok until in
    let* () = check (from <= until) "abort-ramp: from > until" in
    let* () = rate_ok rate0 in
    rate_ok rate1
  | Staleness { from; until } ->
    let* () = step_ok from in
    let* () = step_ok until in
    check (from <= until) "staleness: from > until"
  | Partition { at; side } ->
    let* () = net_ok in
    let* () = step_ok at in
    let* () = check (side <> []) "partition: empty side" in
    List.fold_left
      (fun acc node -> let* () = acc in node_ok node)
      (Ok ()) side
  | Heal { at } ->
    let* () = net_ok in
    step_ok at
  | Delay_ramp { from; until; extra0; extra1; node } ->
    let* () = net_ok in
    let* () = step_ok from in
    let* () = step_ok until in
    let* () = check (from <= until) "delay-ramp: from > until" in
    let* () = check (extra0 >= 0.0 && extra1 >= 0.0) "delay-ramp: negative extra" in
    (match node with None -> Ok () | Some node -> node_ok node)
  | Drop { from; until; rate0; rate1; node } ->
    let* () = net_ok in
    let* () = step_ok from in
    let* () = step_ok until in
    let* () = check (from <= until) "drop: from > until" in
    let* () = rate_ok rate0 in
    let* () = rate_ok rate1 in
    (match node with None -> Ok () | Some node -> node_ok node)
  | Crash_replica { r; at } ->
    let* () = net_ok in
    let* () =
      check (r >= 0 && r < replicas) (Fmt.str "replica %d out of range" r)
    in
    step_ok at
  | Unknown { line } ->
    (* A future atom kind carried through verbatim: it must survive a
       to_string/of_string round trip unchanged, so reject lines that the
       parser would strip or reinterpret as a known kind. *)
    let* () = check (String.trim line = line && line <> "") "unknown: bad line" in
    let* () = check (line.[0] <> '#') "unknown: comment line" in
    (match String.split_on_char ' ' line with
    | kind :: _ when List.mem kind known_kinds ->
      Error (Fmt.str "unknown: %S is a known kind" kind)
    | _ -> Ok ())

let make ?(replicas = 0) ~n ~horizon atoms =
  if n < 1 then invalid_arg "Fault_plan.make: need at least one process";
  if replicas < 0 then invalid_arg "Fault_plan.make: replicas must be >= 0";
  if horizon < 1 then invalid_arg "Fault_plan.make: horizon must be >= 1";
  List.iter
    (fun atom ->
      match validate_atom ~n ~replicas ~horizon atom with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Fault_plan.make: " ^ msg))
    atoms;
  { n; replicas; horizon; atoms }

let n t = t.n
let replicas t = t.replicas
let horizon t = t.horizon
let atoms t = t.atoms
let equal (a : t) (b : t) = a = b

(* --- serialization ------------------------------------------------------- *)

let float_str f = Fmt.str "%.12g" f

let atom_to_string = function
  | Crash { pid; at } -> Fmt.str "crash pid=%d at=%d" pid at
  | Retire { pid; at } -> Fmt.str "retire pid=%d at=%d" pid at
  | Slow { pid; at; gap; growth } ->
    Fmt.str "slow pid=%d at=%d gap=%d growth=%s" pid at gap (float_str growth)
  | Timely { pid; at; period } ->
    Fmt.str "timely pid=%d at=%d period=%d" pid at period
  | Flicker { pid; at; active; sleep; growth } ->
    Fmt.str "flicker pid=%d at=%d active=%d sleep=%d growth=%s" pid at active
      sleep (float_str growth)
  | Abort_ramp { target; from; until; rate0; rate1 } ->
    Fmt.str "abort-ramp target=%s from=%d until=%d rate0=%s rate1=%s"
      (target_name target) from until (float_str rate0) (float_str rate1)
  | Staleness { from; until } -> Fmt.str "staleness from=%d until=%d" from until
  | Partition { at; side } ->
    Fmt.str "partition at=%d side=%s" at
      (String.concat "," (List.map node_name side))
  | Heal { at } -> Fmt.str "heal at=%d" at
  | Delay_ramp { from; until; extra0; extra1; node } ->
    Fmt.str "delay-ramp from=%d until=%d extra0=%s extra1=%s%s" from until
      (float_str extra0) (float_str extra1)
      (match node with
      | None -> ""
      | Some node -> Fmt.str " node=%s" (node_name node))
  | Drop { from; until; rate0; rate1; node } ->
    Fmt.str "drop from=%d until=%d rate0=%s rate1=%s%s" from until
      (float_str rate0) (float_str rate1)
      (match node with
      | None -> ""
      | Some node -> Fmt.str " node=%s" (node_name node))
  | Crash_replica { r; at } -> Fmt.str "crash-replica r=%d at=%d" r at
  | Unknown { line } -> line

let to_string t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (if t.replicas > 0 then
       Fmt.str "%s %s n=%d horizon=%d replicas=%d\n" magic (plan_version t)
         t.n t.horizon t.replicas
     else
       Fmt.str "%s %s n=%d horizon=%d\n" magic (plan_version t) t.n t.horizon);
  List.iter
    (fun atom ->
      Buffer.add_string buf (atom_to_string atom);
      Buffer.add_char buf '\n')
    t.atoms;
  Buffer.contents buf

let pp fmt t = Fmt.string fmt (to_string t)

let fields_of line =
  String.split_on_char ' ' line
  |> List.filter (fun f -> String.length f > 0)
  |> List.filter_map (fun f ->
         match String.index_opt f '=' with
         | Some i ->
           Some (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
         | None -> None)

let field assoc key parse =
  match List.assoc_opt key assoc with
  | None -> Error (Fmt.str "missing %s= field" key)
  | Some s ->
    (match parse s with
    | Some v -> Ok v
    | None -> Error (Fmt.str "bad %s= field %S" key s))

let int_field assoc key = field assoc key int_of_string_opt
let float_field assoc key = field assoc key float_of_string_opt

let atom_of_string ~v2 line =
  let ( let* ) = Result.bind in
  let node_field assoc key =
    match List.assoc_opt key assoc with
    | None -> Ok None
    | Some s -> Result.map Option.some (node_of_name s)
  in
  match String.split_on_char ' ' line with
  | [] -> Error "empty atom line"
  | kind :: _ ->
    let assoc = fields_of line in
    (match kind with
    | "crash" ->
      let* pid = int_field assoc "pid" in
      let* at = int_field assoc "at" in
      Ok (Crash { pid; at })
    | "retire" ->
      let* pid = int_field assoc "pid" in
      let* at = int_field assoc "at" in
      Ok (Retire { pid; at })
    | "slow" ->
      let* pid = int_field assoc "pid" in
      let* at = int_field assoc "at" in
      let* gap = int_field assoc "gap" in
      let* growth = float_field assoc "growth" in
      Ok (Slow { pid; at; gap; growth })
    | "timely" ->
      let* pid = int_field assoc "pid" in
      let* at = int_field assoc "at" in
      let* period = int_field assoc "period" in
      Ok (Timely { pid; at; period })
    | "flicker" ->
      let* pid = int_field assoc "pid" in
      let* at = int_field assoc "at" in
      let* active = int_field assoc "active" in
      let* sleep = int_field assoc "sleep" in
      let* growth = float_field assoc "growth" in
      Ok (Flicker { pid; at; active; sleep; growth })
    | "abort-ramp" ->
      let* target = Result.bind (field assoc "target" Option.some) target_of_name in
      let* from = int_field assoc "from" in
      let* until = int_field assoc "until" in
      let* rate0 = float_field assoc "rate0" in
      let* rate1 = float_field assoc "rate1" in
      Ok (Abort_ramp { target; from; until; rate0; rate1 })
    | "staleness" ->
      let* from = int_field assoc "from" in
      let* until = int_field assoc "until" in
      Ok (Staleness { from; until })
    | "partition" ->
      let* at = int_field assoc "at" in
      let* side =
        match List.assoc_opt "side" assoc with
        | None -> Error "missing side= field"
        | Some s ->
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              let* node = node_of_name name in
              Ok (node :: acc))
            (Ok [])
            (String.split_on_char ',' s)
          |> Result.map List.rev
      in
      Ok (Partition { at; side })
    | "heal" ->
      let* at = int_field assoc "at" in
      Ok (Heal { at })
    | "delay-ramp" ->
      let* from = int_field assoc "from" in
      let* until = int_field assoc "until" in
      let* extra0 = float_field assoc "extra0" in
      let* extra1 = float_field assoc "extra1" in
      let* node = node_field assoc "node" in
      Ok (Delay_ramp { from; until; extra0; extra1; node })
    | "drop" ->
      let* from = int_field assoc "from" in
      let* until = int_field assoc "until" in
      let* rate0 = float_field assoc "rate0" in
      let* rate1 = float_field assoc "rate1" in
      let* node = node_field assoc "node" in
      Ok (Drop { from; until; rate0; rate1; node })
    | "crash-replica" ->
      let* r = int_field assoc "r" in
      let* at = int_field assoc "at" in
      Ok (Crash_replica { r; at })
    | kind ->
      (* Forward compatibility (v2 onward): an unrecognized atom kind is
         carried verbatim, so editing, shrinking and re-serializing a
         plan from a newer writer never silently drops its atoms. *)
      if v2 then Ok (Unknown { line })
      else Error (Fmt.str "unknown fault atom %S" kind))

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty plan"
  | header :: body ->
    let* n, replicas, horizon, v2 =
      match String.split_on_char ' ' header with
      | m :: v :: _
        when String.equal m magic
             && (String.equal v version || String.equal v version2) ->
        let assoc = fields_of header in
        let* n = int_field assoc "n" in
        let* horizon = int_field assoc "horizon" in
        let* replicas =
          match List.assoc_opt "replicas" assoc with
          | None -> Ok 0
          | Some s ->
            (match int_of_string_opt s with
            | Some r when r >= 0 -> Ok r
            | Some _ | None -> Error (Fmt.str "bad replicas= field %S" s))
        in
        if n < 1 then Error "bad n= field"
        else if horizon < 1 then Error "bad horizon= field"
        else if replicas > 0 && not (String.equal v version2) then
          Error "replicas= needs a v2 header"
        else Ok (n, replicas, horizon, String.equal v version2)
      | m :: v :: _ ->
        Error
          (Fmt.str "bad header %S %S (want %S %s|%s)" m v magic version
             version2)
      | _ -> Error "bad header line"
    in
    let* atoms =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          let* atom = atom_of_string ~v2 line in
          let* () = validate_atom ~n ~replicas ~horizon atom in
          Ok (atom :: acc))
        (Ok []) body
    in
    Ok { n; replicas; horizon; atoms = List.rev atoms }

(* --- prediction ---------------------------------------------------------- *)

let crashed_pids t =
  List.filter_map (function Crash { pid; _ } -> Some pid | _ -> None) t.atoms
  |> List.sort_uniq compare

let retired_pids t =
  List.filter_map (function Retire { pid; _ } -> Some pid | _ -> None) t.atoms
  |> List.sort_uniq compare

let crashed_replicas t =
  List.filter_map
    (function Crash_replica { r; _ } -> Some r | _ -> None)
    t.atoms
  |> List.sort_uniq compare

let node_pid t = function Client i -> i | Replica j -> t.n + j

(* The last schedule-affecting atom of [pid]'s timeline decides its final
   regime; crashes trump everything. *)
let timeline_atoms t pid =
  List.filter
    (function
      | Slow { pid = p; _ } | Timely { pid = p; _ } | Flicker { pid = p; _ } ->
        p = pid
      | Crash _ | Retire _ | Abort_ramp _ | Staleness _ | Partition _ | Heal _
      | Delay_ramp _ | Drop _ | Crash_replica _ | Unknown _ ->
        false)
    t.atoms
  |> List.stable_sort
       (fun a b ->
         let at = function
           | Slow { at; _ } | Timely { at; _ } | Flicker { at; _ } -> at
           | Crash _ | Retire _ | Abort_ramp _ | Staleness _ | Partition _
           | Heal _ | Delay_ramp _ | Drop _ | Crash_replica _ | Unknown _ ->
             assert false
         in
         compare (at a) (at b))

let predicted_timely t =
  let crashed = crashed_pids t in
  let retired = retired_pids t in
  List.init t.n Fun.id
  |> List.filter (fun pid ->
         (not (List.mem pid crashed))
         && (not (List.mem pid retired))
         &&
         match List.rev (timeline_atoms t pid) with
         | [] | Timely _ :: _ -> true
         | (Slow _ | Flicker _) :: _ -> false
         | ( Crash _ | Retire _ | Abort_ramp _ | Staleness _ | Partition _
           | Heal _ | Delay_ramp _ | Drop _ | Crash_replica _ | Unknown _ )
           :: _ ->
           assert false)

let settle_step t =
  let atom_settle = function
    | Crash { at; _ } | Retire { at; _ } | Slow { at; _ } | Timely { at; _ }
    | Flicker { at; _ } ->
      at
    | Staleness { until; _ } -> until
    | Abort_ramp { from; until; _ } | Delay_ramp { from; until; _ }
    | Drop { from; until; _ } ->
      (* A ramp that persists to the horizon never settles; its steady
         regime starts at onset. A windowed burst settles when it ends. *)
      if until >= t.horizon then from else until
    | Partition { at; _ } | Heal { at; _ } | Crash_replica { at; _ } -> at
    | Unknown _ -> 0
  in
  List.fold_left (fun acc atom -> max acc (atom_settle atom)) 0 t.atoms
  |> min t.horizon

let timeliness_bound t = 4 * (t.n + t.replicas + 1)

(* --- emergent timeliness -------------------------------------------------- *)

(* Final network regime, in the same last-atom-wins spirit as
   [predicted_timely]: the last partition/heal decides the cut, a drop
   window persisting to the horizon with a nonzero landing rate makes its
   links lossy forever (untimely), while a pure delay ramp leaves links
   timely — slower, but bounded per message, which is exactly the graceful
   half of the degradation story. *)
let final_partition t =
  List.filter (function Partition _ | Heal _ -> true | _ -> false) t.atoms
  |> List.stable_sort
       (fun a b ->
         let at = function
           | Partition { at; _ } | Heal { at; _ } -> at
           | _ -> assert false
         in
         compare (at a) (at b))
  |> List.fold_left
       (fun acc atom ->
         match atom with
         | Partition { side; _ } -> Some (List.map (node_pid t) side)
         | Heal _ -> None
         | _ -> acc)
       None

let emergent t =
  if t.replicas = 0 then None
  else
    let side = final_partition t in
    let cut a b =
      match side with
      | None -> false
      | Some side -> List.mem a side <> List.mem b side
    in
    let lossy a b =
      List.exists
        (function
          | Drop { until; rate1; node; _ } ->
            until >= t.horizon && rate1 > 0.0
            && (match node with
               | None -> true
               | Some p ->
                 let p = node_pid t p in
                 p = a || p = b)
          | _ -> false)
        t.atoms
    in
    let dead = crashed_replicas t in
    let live =
      List.filter
        (fun r -> not (List.mem r dead))
        (List.init t.replicas Fun.id)
    in
    let reach c =
      List.filter
        (fun r ->
          let rp = t.n + r in
          (not (cut c rp)) && not (lossy c rp))
        live
    in
    Some
      {
        Tbwf_check.Degradation.em_replicas = t.replicas;
        em_live = live;
        em_reach = List.init t.n (fun c -> c, reach c);
      }

let prediction t =
  {
    Tbwf_check.Degradation.pred_n = t.n;
    pred_timely = predicted_timely t;
    pred_from = settle_step t;
    pred_bound = timeliness_bound t;
    pred_emergent = emergent t;
  }

(* --- compilation --------------------------------------------------------- *)

(* Baseline regime: a strict rotation with one spare step per round
   (period n+replicas+1 over n+replicas offsets), so soft participants —
   awake flickering processes — still get scheduled without disturbing
   anyone's bound. Replica server pids ride in the same rotation. *)
let base_pattern t pid =
  Policy.Every { period = t.n + t.replicas + 1; offset = pid }

let pattern_of_atom t = function
  | Slow { gap; growth; _ } ->
    (* Burst sized like Scenario.degraded_policy: enough steps per visit
       that every multiplexed task (election loop, monitors, client) gets
       at least one, so the process never looks willingly inactive. *)
    Policy.Slowing { initial_gap = gap; growth; burst = 8 * t.n }
  | Timely { period; pid; _ } -> Policy.Every { period; offset = pid mod period }
  | Flicker { active; sleep; growth; _ } -> Policy.Flicker { active; sleep; growth }
  | Crash _ | Retire _ | Abort_ramp _ | Staleness _ | Partition _ | Heal _
  | Delay_ramp _ | Drop _ | Crash_replica _ | Unknown _ ->
    assert false

let pattern t pid =
  List.fold_left
    (fun before atom ->
      let at =
        match atom with
        | Slow { at; _ } | Timely { at; _ } | Flicker { at; _ } -> at
        | Crash _ | Retire _ | Abort_ramp _ | Staleness _ | Partition _
        | Heal _ | Delay_ramp _ | Drop _ | Crash_replica _ | Unknown _ ->
          assert false
      in
      Policy.Switch_at (at, before, pattern_of_atom t atom))
    (base_pattern t pid) (timeline_atoms t pid)

let policy ?(name = "nemesis") t =
  Policy.of_patterns ~name
    (List.init (t.n + t.replicas) (fun pid -> pid, pattern t pid))

let install_crashes t rt =
  List.iter
    (function
      | Crash { pid; at } -> Runtime.crash_at rt ~pid ~step:at
      | Retire { pid; at } -> Runtime.retire ~at rt ~pid
      | Crash_replica { r; at } ->
        (* Replica server pids sit after the clients; the caller is
           responsible for sizing the runtime n + replicas wide. *)
        Runtime.crash_at rt ~pid:(t.n + r) ~step:at
      | Slow _ | Timely _ | Flicker _ | Abort_ramp _ | Staleness _
      | Partition _ | Heal _ | Delay_ramp _ | Drop _ | Unknown _ ->
        ())
    t.atoms

let net_events t =
  List.filter_map
    (function
      | Partition { at; side } ->
        Some
          (Tbwf_net.Net.Ev_partition { at; side = List.map (node_pid t) side })
      | Heal { at } -> Some (Tbwf_net.Net.Ev_heal { at })
      | Delay_ramp { from; until; extra0; extra1; node } ->
        Some
          (Tbwf_net.Net.Ev_delay
             {
               from_ = from;
               until;
               extra0;
               extra1;
               node = Option.map (node_pid t) node;
             })
      | Drop { from; until; rate0; rate1; node } ->
        Some
          (Tbwf_net.Net.Ev_drop
             {
               from_ = from;
               until;
               rate0;
               rate1;
               node = Option.map (node_pid t) node;
             })
      | Crash _ | Retire _ | Slow _ | Timely _ | Flicker _ | Abort_ramp _
      | Staleness _ | Crash_replica _ | Unknown _ ->
        None)
    t.atoms

let ramp_rate ~from ~until ~rate0 ~rate1 step =
  if step < from || step >= until then 0.0
  else if until <= from then rate1
  else
    rate0 +. ((rate1 -. rate0) *. float_of_int (step - from)
              /. float_of_int (until - from))

let abort_policy t ~target ~base =
  let ramps =
    List.filter_map
      (function
        | Abort_ramp { target = tg; from; until; rate0; rate1 } when tg = target
          ->
          Some (fun (ctx : Shared.ctx) ->
              let rate =
                ramp_rate ~from ~until ~rate0 ~rate1 ctx.respond_step
              in
              rate > 0.0 && Rng.bool ctx.rng rate)
        | Staleness { from; until } when target = Omega_mesh ->
          (* A message-staleness burst: writes into the mesh are lost in
             flight (abort; whether the value still lands is the
             register's write_effect, as for any abort), so readers keep
             seeing stale heartbeats. Reads are untouched: the paper's ⊥
             convention already covers aborted reads. *)
          Some (fun (ctx : Shared.ctx) ->
              ctx.respond_step >= from && ctx.respond_step < until
              && Value.is_write ctx.op)
        | Crash _ | Retire _ | Slow _ | Timely _ | Flicker _ | Abort_ramp _
        | Staleness _ | Partition _ | Heal _ | Delay_ramp _ | Drop _
        | Crash_replica _ | Unknown _ ->
          None)
      t.atoms
  in
  match ramps with
  | [] -> base
  | fs ->
    Abort_policy.Any
      (base :: List.map (fun f -> Abort_policy.Unconditional f) fs)

(* --- generation and shrinking -------------------------------------------- *)

let gen ?(max_atoms = 3) ?(replicas = 0) rng ~n ~horizon =
  let grid_step () = horizon * (1 + Rng.int rng 6) / 8 in
  let pick a = a.(Rng.int rng (Array.length a)) in
  let gen_node () =
    if Rng.bool rng 0.5 then Client (Rng.int rng n)
    else Replica (Rng.int rng replicas)
  in
  let gen_net_atom () =
    match Rng.int rng 4 with
    | 0 ->
      let side =
        if Rng.bool rng 0.5 then [ gen_node () ]
        else [ Client (Rng.int rng n); Replica (Rng.int rng replicas) ]
      in
      Partition { at = grid_step (); side = List.sort_uniq compare side }
    | 1 -> Heal { at = grid_step () }
    | 2 ->
      let a = grid_step () and b = grid_step () in
      Drop
        {
          from = min a b;
          until = max a b;
          rate0 = pick [| 0.0; 0.25 |];
          rate1 = pick [| 0.5; 0.9 |];
          node = (if Rng.bool rng 0.5 then Some (gen_node ()) else None);
        }
    | _ ->
      let a = grid_step () and b = grid_step () in
      Delay_ramp
        {
          from = min a b;
          until = max a b;
          extra0 = 0.0;
          extra1 = pick [| 2.0; 5.0; 10.0 |];
          node = (if Rng.bool rng 0.5 then Some (gen_node ()) else None);
        }
  in
  let gen_atom () =
    if replicas > 0 && Rng.bool rng 0.4 then
      if Rng.bool rng 0.2 then
        Crash_replica { r = Rng.int rng replicas; at = grid_step () }
      else gen_net_atom ()
    else
    match Rng.int rng 6 with
    | 0 -> Crash { pid = Rng.int rng n; at = grid_step () }
    | 1 ->
      Slow
        {
          pid = Rng.int rng n;
          at = grid_step ();
          gap = pick [| 20; 40; 80 |];
          growth = pick [| 1.05; 1.15; 1.3 |];
        }
    | 2 -> Timely { pid = Rng.int rng n; at = grid_step (); period = n + 1 }
    | 3 ->
      Flicker
        {
          pid = Rng.int rng n;
          at = grid_step ();
          active = pick [| 40; 80 |];
          sleep = pick [| 100; 200 |];
          growth = pick [| 1.1; 1.3 |];
        }
    | 4 ->
      let a = grid_step () and b = grid_step () in
      Abort_ramp
        {
          target = pick [| Qa; Omega_mesh |];
          from = min a b;
          until = max a b;
          rate0 = pick [| 0.0; 0.25; 0.5 |];
          rate1 = pick [| 0.5; 0.75; 0.95 |];
        }
    | _ ->
      let a = grid_step () and b = grid_step () in
      Staleness { from = min a b; until = max a b }
  in
  let count = 1 + Rng.int rng (max 1 max_atoms) in
  make ~replicas ~n ~horizon (List.init count (fun _ -> gen_atom ()))

let shrink ~fails t =
  if t.atoms = [] then t
  else begin
    let rebuild atoms = { t with atoms } in
    let atoms' =
      Tbwf_check.Shrink.ddmin
        ~fails:(fun atoms -> fails (rebuild atoms))
        t.atoms
    in
    rebuild atoms'
  end
