(** Declarative, composable fault plans.

    A fault plan is the nemesis's script: a set of {!atom}s over a fixed
    process count [n] and step budget [horizon], each atom an independent
    fault the plan injects at a given step (or over a given window). Plans
    are pure data — deterministic to compile, cheap to serialize
    ({!to_string}/{!of_string} round-trip through a compact text format in
    the style of {!Tbwf_sim.Schedule}), and shrinkable atom-by-atom — so a
    campaign, a fuzzer counterexample, and a regression test are all the
    same object.

    Compilation targets the hooks the simulator already has:
    schedule-affecting atoms ([Slow], [Timely], [Flicker]) compile to a
    {!Tbwf_sim.Policy} built from [Switch_at] chains over a timely base
    rotation; [Crash] compiles to {!Tbwf_sim.Runtime.crash_at}; the
    channel-level atoms ([Abort_ramp], [Staleness]) compile to an
    {!Tbwf_registers.Abort_policy} wrapper. A plan also predicts its own
    outcome ({!prediction}): which processes remain timely once the last
    fault lands — the input to {!Tbwf_check.Degradation.check}. *)

(** Which register family a channel-level atom targets. *)
type target =
  | Qa  (** the query-abortable object the clients operate on *)
  | Omega_mesh  (** the abortable heartbeat/message mesh under Ω∆ *)

val target_name : target -> string
val target_of_name : string -> (target, string) result

(** A network endpoint, for the v2 network atoms: client [c<i>] (pid [i])
    or replica server [r<j>] (pid [n + j] in a message-passing runtime). *)
type node = Client of int | Replica of int

val node_name : node -> string
val node_of_name : string -> (node, string) result

type atom =
  | Crash of { pid : int; at : int }
      (** the process halts forever at step [at]; any in-flight operation
          is resolved by the runtime's crash semantics *)
  | Retire of { pid : int; at : int }
      (** v2: the process gracefully leaves the membership at step [at]
          ({!Tbwf_sim.Runtime.retire}): its in-flight operation is
          resolved like a crash's, but the departure emits
          [Sink.Retire] — a planned leave, not a failure. The pid is
          excluded from the plan's timely prediction. *)
  | Slow of { pid : int; at : int; gap : int; growth : float }
      (** from [at], the process's scheduling gap starts at [gap] and
          grows by [growth] each visit — a decelerating process, the
          paper's canonical way to lose timeliness forever *)
  | Timely of { pid : int; at : int; period : int }
      (** from [at], the process is scheduled every [period] steps —
          restores timeliness (a per-process GST) *)
  | Flicker of { pid : int; at : int; active : int; sleep : int; growth : float }
      (** from [at], the process alternates bursts of activity with
          growing sleeps — intermittently timely, eventually not *)
  | Abort_ramp of {
      target : target;
      from : int;
      until : int;
      rate0 : float;
      rate1 : float;
    }
      (** over \[[from], [until]), operations on [target] registers abort
          with probability ramping linearly from [rate0] to [rate1],
          drawn from the runtime's object stream — faults below the
          register abstraction, hence unconditional on contention *)
  | Staleness of { from : int; until : int }
      (** over \[[from], [until]), writes into the Ω heartbeat mesh abort:
          heartbeats are lost in flight and readers keep seeing stale
          values. Reads are untouched ([Omega_mesh]-only by construction). *)
  | Partition of { at : int; side : node list }
      (** v2: from [at], the network is split into [side] and everyone
          else; messages crossing the cut are dropped at send time
          (in-flight messages still deliver). Replaces any earlier cut. *)
  | Heal of { at : int }
      (** v2: from [at], no partition is in effect *)
  | Delay_ramp of {
      from : int;
      until : int;
      extra0 : float;
      extra1 : float;
      node : node option;
    }
      (** v2: over \[[from], [until]), extra per-message latency ramping
          linearly from [extra0] to [extra1] steps on links touching
          [node] ([None] = all links). Delay alone never revokes
          timeliness in the final regime — latency stays bounded. *)
  | Drop of {
      from : int;
      until : int;
      rate0 : float;
      rate1 : float;
      node : node option;
    }
      (** v2: over \[[from], [until]), messages on links touching [node]
          ([None] = all links) are lost with probability ramping from
          [rate0] to [rate1], drawn from the object stream. A drop window
          persisting to the horizon with [rate1 > 0] makes its links
          untimely in the final regime. *)
  | Crash_replica of { r : int; at : int }
      (** v2: replica server [r] (pid [n + r]) halts forever at [at] *)
  | Unknown of { line : string }
      (** an atom kind this version does not know, carried verbatim: v2+
          plans from newer writers parse, shrink, and re-serialize without
          silently dropping atoms. Compiles to nothing. *)

type t

val make : ?replicas:int -> n:int -> horizon:int -> atom list -> t
(** Validates every atom against [n], [replicas] (default 0; network
    atoms require [replicas > 0]) and [horizon]; raises
    [Invalid_argument] with the offending atom's complaint. *)

val n : t -> int

val replicas : t -> int
(** Replica count of the message-passing substrate the plan targets;
    0 for a shared-memory plan. *)

val horizon : t -> int
val atoms : t -> atom list
val equal : t -> t -> bool

(** {2 Serialization}

    Header [tbwf-plan v1 n=<n> horizon=<h>], then one [key=value] line per
    atom. Blank lines and [#] comments are ignored on input; floats are
    printed with enough digits ([%.12g]) that
    [of_string (to_string p) = Ok p].

    Plans whose atoms all predate v2 (and with [replicas = 0]) serialize
    with the historical [v1] header, byte-identically to earlier
    releases. A positive replica count or any v2/unknown atom switches
    the header to [tbwf-plan v2 n=<n> horizon=<h> replicas=<m>] (the
    [replicas=] field appears only when positive). [of_string] accepts
    both; under a [v2] header an unrecognized atom kind parses as
    {!Unknown} instead of an error, so future atoms round-trip. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit

(** {2 Prediction} *)

val predicted_timely : t -> int list
(** Pids expected to be timely in the tail: not crashed, not retired,
    and the last schedule-affecting atom on their timeline (if any) is
    [Timely]. *)

val settle_step : t -> int
(** The step after which no further fault changes the system's regime:
    max over atoms of their onset (point atoms) or end (windowed atoms,
    except a ramp that persists to the horizon, which settles at onset).
    The degradation checker examines the tail from here. *)

val timeliness_bound : t -> int
(** The scheduling-gap bound the compiled policy delivers for timely
    processes: [4 * (n + replicas + 1)] — the base rotation has period
    [n + replicas + 1], and soft steps granted to flickering processes
    can displace a hard claim by at most a constant factor (see
    {!Tbwf_sim.Policy}). *)

val emergent : t -> Tbwf_check.Degradation.emergent option
(** The emergent-timeliness picture on a message-passing substrate
    ([None] when [replicas = 0]): which replicas the plan leaves alive in
    the final regime, and which of them each client reaches over timely
    links — the last [Partition]/[Heal] decides the cut, a [Drop] window
    persisting to the horizon with [rate1 > 0] makes its links untimely,
    and [Delay_ramp] never does. *)

val prediction : t -> Tbwf_check.Degradation.prediction

(** {2 Compilation} *)

val policy : ?name:string -> t -> Tbwf_sim.Policy.t
(** The scheduling policy over all [n + replicas] pids: every pid starts
    on a timely base rotation [Every {period = n + replicas + 1; offset =
    pid}] (the spare step per round lets soft-claim patterns run),
    overridden by [Switch_at] chains built from the pid's
    [Slow]/[Timely]/[Flicker] atoms in onset order. Replica server pids
    stay on the base rotation. *)

val install_crashes : t -> Tbwf_sim.Runtime.t -> unit
(** Registers every [Crash] atom via {!Tbwf_sim.Runtime.crash_at}, every
    [Retire] atom via {!Tbwf_sim.Runtime.retire}, and every
    [Crash_replica {r; _}] as pid [n + r] — the runtime must be
    [n + replicas] processes wide when the plan has replica atoms. *)

val net_events : t -> Tbwf_net.Net.event list
(** The plan's network atoms compiled to network events (nodes resolved
    to pids), in atom order, for {!Tbwf_net.Net.config}. Empty for a
    shared-memory plan. *)

val abort_policy :
  t ->
  target:target ->
  base:Tbwf_registers.Abort_policy.t ->
  Tbwf_registers.Abort_policy.t
(** Wraps [base] with the plan's channel-level atoms for [target]:
    [Any [base; Unconditional ramp; ...]]. Ramps draw from the context's
    (object-stream) rng at the interpolated rate; staleness bursts abort
    mesh writes deterministically. Returns [base] unchanged if no atom
    targets [target]. *)

(** {2 Generation and shrinking} *)

val gen :
  ?max_atoms:int -> ?replicas:int -> Tbwf_sim.Rng.t -> n:int -> horizon:int -> t
(** Random plan with 1..[max_atoms] (default 3) atoms, parameters drawn
    from tidy grids (onsets on eighths of the horizon, a few gap/growth/
    rate values) so that shrunk counterexamples stay human-readable. With
    [replicas > 0] (default 0) the pool includes the network atoms and
    replica crashes. *)

val shrink : fails:(t -> bool) -> t -> t
(** Delta-debugs the atom list with {!Tbwf_check.Shrink.ddmin}: returns a
    plan with a 1-minimal subset of atoms on which [fails] still holds
    ([fails t] must hold on entry; the result may equal [t]). *)
