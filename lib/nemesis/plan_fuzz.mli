(** Fuzzing (schedule, fault-plan) pairs.

    {!fuzz} specializes {!Tbwf_check.Explore.fuzz_faults} to
    {!Fault_plan}: plans are drawn with {!Fault_plan.gen} from the
    fuzzer's own seeded stream and shrunk with {!Fault_plan.shrink}, so a
    counterexample is a minimal (pid schedule, plan) pair — both halves
    serializable ({!Tbwf_sim.Schedule}, {!Fault_plan.to_string}) and
    replayable byte-for-byte.

    {!demo} runs the harness against a deliberately planted bug: a writer
    that ignores an abortable write's ⊥ and records the write as done.
    The register only aborts under contention, and the demo writer runs
    alone — so the bug is unreachable by schedule fuzzing and surfaces
    exactly when a fuzzed plan carries an [Abort_ramp] atom: the
    counterexample genuinely needs both dimensions. *)

val fuzz :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  ?max_atoms:int ->
  n:int ->
  horizon:int ->
  scenario:(Fault_plan.t -> Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(Fault_plan.t -> unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  Fault_plan.t Tbwf_check.Explore.fault_fuzz_outcome

val demo_n : int
val demo_make_runtime : Fault_plan.t -> unit -> Tbwf_sim.Runtime.t
val demo_scenario : Fault_plan.t -> Tbwf_sim.Runtime.t -> unit -> bool

val demo :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  horizon:int ->
  unit ->
  Fault_plan.t Tbwf_check.Explore.fault_fuzz_outcome
(** Fuzz the planted-bug scenario; with the default seed and [runs] it
    finds, shrinks, and returns a (schedule, one-atom-plan) pair. *)

val demo_replay : Fault_plan.t -> int list -> bool * string
(** Replay the whole pid schedule against the demo scenario under [plan]
    (not stopping at a violation) and return whether the invariant held
    throughout, plus the run's {!Tbwf_sim.Trace.fingerprint} — equal
    fingerprints across replays are the byte-identical-replay guarantee. *)
