(** Fuzzing (schedule, fault-plan) pairs.

    {!fuzz} specializes {!Tbwf_check.Explore.fuzz_faults} to
    {!Fault_plan}: plans are drawn with {!Fault_plan.gen} from the
    fuzzer's own seeded stream and shrunk with {!Fault_plan.shrink}, so a
    counterexample is a minimal (pid schedule, plan) pair — both halves
    serializable ({!Tbwf_sim.Schedule}, {!Fault_plan.to_string}) and
    replayable byte-for-byte.

    {!demo} runs the harness against a deliberately planted bug: a writer
    that ignores an abortable write's ⊥ and records the write as done.
    The register only aborts under contention, and the demo writer runs
    alone — so the bug is unreachable by schedule fuzzing and surfaces
    exactly when a fuzzed plan carries an [Abort_ramp] atom: the
    counterexample genuinely needs both dimensions. *)

val fuzz :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  ?max_atoms:int ->
  ?replicas:int ->
  n:int ->
  horizon:int ->
  scenario:(Fault_plan.t -> Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(Fault_plan.t -> unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  Fault_plan.t Tbwf_check.Explore.fault_fuzz_outcome
(** [replicas] (default 0) is forwarded to {!Fault_plan.gen}: positive,
    the drawn plans include network atoms and replica crashes, and shrink
    kind-agnostically — unknown/future atom kinds ride through ddmin and
    re-serialization untouched rather than being silently dropped. *)

val demo_n : int

val demo_pid_count :
  ?substrate:Tbwf_system.System.substrate -> Fault_plan.t -> int
(** Pids in the demo runtime under [plan]: [demo_n] clients, plus the
    replica server pids on message passing — the [n] a witness schedule
    over the demo scenario must be validated against. *)

val demo_make_runtime :
  ?substrate:Tbwf_system.System.substrate ->
  Fault_plan.t ->
  unit ->
  Tbwf_sim.Runtime.t

val demo_scenario :
  ?substrate:Tbwf_system.System.substrate ->
  Fault_plan.t ->
  Tbwf_sim.Runtime.t ->
  unit ->
  bool
(** The planted-bug scenario on either substrate. On shared memory the
    invariant is [peek = recorded]; on message passing a completing
    quorum write lands at the replicas before the client records it, so
    the invariant is the monotone [peek >= recorded] — which an
    [Effect_never] abort recorded as done still violates. *)

val demo :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  ?substrate:Tbwf_system.System.substrate ->
  horizon:int ->
  unit ->
  Fault_plan.t Tbwf_check.Explore.fault_fuzz_outcome
(** Fuzz the planted-bug scenario; with the default seed and [runs] it
    finds, shrinks, and returns a (schedule, one-atom-plan) pair. *)

val demo_replay :
  ?substrate:Tbwf_system.System.substrate ->
  Fault_plan.t ->
  int list ->
  bool * string
(** Replay the whole pid schedule against the demo scenario under [plan]
    (not stopping at a violation) and return whether the invariant held
    throughout, plus the run's {!Tbwf_sim.Trace.fingerprint} — equal
    fingerprints across replays are the byte-identical-replay guarantee. *)
