(* Peak-RSS diagnostics for the long-running CLIs. Strictly stderr
   material: the value is a property of the host process, not of the
   simulation, so it must never enter a deterministic artifact. *)

let parse_kb line =
  (* "VmHWM:     12345 kB" *)
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let digits =
      String.to_seq rest
      |> Seq.filter (fun ch -> ch >= '0' && ch <= '9')
      |> String.of_seq
    in
    int_of_string_opt digits

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then
          parse_kb line
        else scan ()
    in
    let v = scan () in
    close_in ic;
    v
