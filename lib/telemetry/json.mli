(** A minimal JSON tree with a deterministic printer.

    The repo deliberately avoids external JSON dependencies; telemetry
    snapshots need only construction and printing. Printing is canonical
    — object fields keep construction order, floats go through ["%.12g"]
    (integers as ["%.1f"]), compact mode has no whitespace — so equal
    trees print to equal strings and snapshots compare byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact canonical rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, newline-terminated. *)

val of_string : string -> (t, string) result
(** Parse standard JSON (the printer's output is a subset). Numbers
    containing ['.'], ['e'] or ['E'] become [Float], the rest [Int].
    Bench baseline checks and committed-snapshot readers use this;
    it is a strict whole-document parse, [Error] carries an offset. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj], [None] otherwise. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] only. *)

val schema_paths : t -> string list
(** The document's schema: the sorted, deduplicated set of its key paths,
    each tagged with the value's type (["steps.total: int"]). Array
    elements share the path ["key[]"], and an array also contributes its
    own ["key: array"] line so the schema stays stable when it happens to
    be empty. CI pins snapshot schemas against committed goldens. *)

val schema_string : t -> string
(** {!schema_paths} joined with newlines, newline-terminated. *)
