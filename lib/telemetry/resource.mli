(** Host-process resource diagnostics for CLI stderr reporting. *)

val peak_rss_kb : unit -> int option
(** The process's peak resident set (VmHWM) in kB, read from
    [/proc/self/status]; [None] where procfs is unavailable. Host
    state, not simulation state — report it on stderr only, never in a
    deterministic artifact. *)
