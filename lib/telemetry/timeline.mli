(** ASCII progress/leader timeline.

    One column per step window, one row per process plus a leader row.
    The leader row shows the self-announced leader in effect at the end
    of each window (['?'] before the first handoff). Process rows show
    completed-app-op density per window on the ramp [" .:-=+*#%@"]:
    [' '] is zero, ['@'] the busiest window of the whole run; an ['X']
    marks the window in which the process crashed (blank afterwards).
    Wide runs are re-bucketed so the chart fits the requested width. *)

type t = {
  columns : int;
  steps_per_col : int;  (** simulation steps represented by one column *)
  leader_row : string;
  pid_rows : string array;
  max_cell : int;  (** completions behind the densest cell *)
}

val build : ?width:int -> Collector.t -> t
(** [width] defaults to 72 columns. *)

val pp : Format.formatter -> t -> unit
val render : ?width:int -> Collector.t -> string
