(* The per-runtime telemetry collector.

   [attach rt] builds a collector sized for the runtime and installs its
   sink; from then on every step, operation and signal feeds the
   aggregates below. Everything is keyed by the simulator's step counter
   and updated in event order, so the collector is exactly as
   deterministic as the run itself: same (seed, policy, code) ⇒
   byte-identical {!snapshot}.

   The headline series is [app_ops]: workload-level operation completions
   ([Sink.Op_complete], one per full [Tbwf.invoke] round trip) bucketed
   into step windows per process. This is the measured form of the
   paper's per-process rate — the quantity the degradation checker
   verdicts and E1's table report — and it equals
   [Workload.stats.completed] by construction, for every system
   including ones whose query-abortable object is itself built from many
   register calls. *)

open Tbwf_sim

type leader_event = { le_step : int; le_leader : int }

(* Periodic JSONL streaming state (see [emit_every]): the id of the
   stream window currently accumulating, plus the cumulative values at
   the last emit so each record can carry deltas. *)
type stream = {
  st_every : int;
  st_emit : Json.t -> unit;
  st_extra : window:int -> (string * Json.t) list;
  mutable st_window : int;  (* stream-window id being accumulated *)
  mutable st_completed : int;  (* total app completions at last emit *)
  mutable st_epochs : int;
  mutable st_steps : int;
  mutable st_net_sent : int;
  mutable st_net_dropped : int;
}

(* In bounded ([retain]) mode, timestamped event lists keep only this
   many most-recent entries; the counts ([epochs], crash totals) stay
   exact. *)
let retained_events = 256

type t = {
  n : int;
  window : int;
  retain : int option;
  mutable stream : stream option;
  registry : Metrics.t;  (* extension point for caller-defined metrics *)
  spans : Span.t;
  app_ops : Series.t;
  steps_per_pid : int array;
  steps_by_layer : int array array;  (* pid x layer *)
  mutable idle_steps : int;
  mutable total_steps : int;
  mutable last_step : int;
  invokes : int array;
  responds : int array;
  aborts : int array;  (* Abort results, any layer *)
  fails : int array;  (* Fail results, any layer *)
  app_completed : int array;  (* workload-level Op_complete per pid *)
  mutable register_abort_decisions : int;
  leader_changes : int array;  (* view changes per observer *)
  mutable current_leader : int option;  (* last self-announced leader *)
  mutable handoffs : leader_event list;  (* reverse chronological *)
  mutable handoffs_len : int;
  mutable epochs : int;
  mutable suspicion_flips : int;
  suspected_counts : int array;  (* times pid became suspected by someone *)
  mutable crashes : (int * int) list;  (* (step, pid), reverse *)
  mutable crashes_len : int;
  mutable n_crashes : int;  (* exact even when [crashes] is truncated *)
  mutable n_retires : int;  (* graceful leaves; kept out of snapshot v1 *)
  mutable net_sent : int;  (* messages admitted by the simulated network *)
  mutable net_dropped : int;  (* of which lost (partition cut or loss draw) *)
  net_latency : Hist.t;  (* assigned one-way delays of delivered messages *)
}

let create ?(window = 1024) ?retain ~n () =
  {
    n;
    window;
    retain;
    stream = None;
    registry = Metrics.create ();
    spans = Span.create ~n;
    app_ops = Series.create ~window ?retain ~n ();
    steps_per_pid = Array.make n 0;
    steps_by_layer = Array.make_matrix n Sink.n_layers 0;
    idle_steps = 0;
    total_steps = 0;
    last_step = -1;
    invokes = Array.make n 0;
    responds = Array.make n 0;
    aborts = Array.make n 0;
    fails = Array.make n 0;
    app_completed = Array.make n 0;
    register_abort_decisions = 0;
    leader_changes = Array.make n 0;
    current_leader = None;
    handoffs = [];
    handoffs_len = 0;
    epochs = 0;
    suspicion_flips = 0;
    suspected_counts = Array.make n 0;
    crashes = [];
    crashes_len = 0;
    n_crashes = 0;
    n_retires = 0;
    net_sent = 0;
    net_dropped = 0;
    net_latency = Hist.create ();
  }

(* Keep an event list bounded in [retain] mode: newest-first truncation,
   amortized O(1) via the 2× slack. Counts stay exact; only the
   per-event detail beyond [retained_events] entries is dropped. The
   same cap applies after a merge — a fan-out fold over many retained
   collectors must stay as bounded as any one of them. *)
let truncate_events ~retain len list =
  if retain <> None && len > 2 * retained_events then
    List.filteri (fun i _ -> i < retained_events) list, retained_events
  else list, len

(* --- the v2 stream ------------------------------------------------------- *)

let stream_schema_version = "tbwf-telemetry/v2"

let int_array a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Int v))

(* One stream record covering window [w] (steps [w·every, (w+1)·every)).
   Counters are cumulative as of emission time with a [delta] since the
   previous record, tails are the cumulative per-layer sketches — all
   derived from event-ordered state, so the stream is byte-identical
   under replay and at any [--jobs]. *)
let stream_record t s ~w =
  let completed_total = Array.fold_left ( + ) 0 t.app_completed in
  let record =
    Json.Obj
      ([
         "schema", Json.Str stream_schema_version;
         "window", Json.Int w;
         "from_step", Json.Int (w * s.st_every);
         "to_step", Json.Int (((w + 1) * s.st_every) - 1);
         ( "steps",
           Json.Obj
             [
               "total", Json.Int t.total_steps;
               "delta", Json.Int (t.total_steps - s.st_steps);
               "idle", Json.Int t.idle_steps;
             ] );
         ( "ops",
           Json.Obj
             [
               "completed", int_array t.app_completed;
               "completed_total", Json.Int completed_total;
               "delta", Json.Int (completed_total - s.st_completed);
             ] );
         ( "tails",
           Json.Obj
             (List.map
                (fun layer ->
                  ( Sink.layer_name layer,
                    Quantile.to_json (Span.tail_of t.spans layer) ))
                Sink.layers) );
         ( "leader",
           Json.Obj
             [
               "epochs", Json.Int t.epochs;
               "delta", Json.Int (t.epochs - s.st_epochs);
               ( "current",
                 match t.current_leader with
                 | Some l -> Json.Int l
                 | None -> Json.Null );
             ] );
         ( "net",
           Json.Obj
             [
               "sent", Json.Int t.net_sent;
               "sent_delta", Json.Int (t.net_sent - s.st_net_sent);
               "dropped", Json.Int t.net_dropped;
               "dropped_delta", Json.Int (t.net_dropped - s.st_net_dropped);
             ] );
       ]
      @ s.st_extra ~window:w)
  in
  s.st_steps <- t.total_steps;
  s.st_completed <- completed_total;
  s.st_epochs <- t.epochs;
  s.st_net_sent <- t.net_sent;
  s.st_net_dropped <- t.net_dropped;
  s.st_emit record

(* Emit every stream window up to but excluding the one containing
   [step]. Called from [on_step] — the runtime emits [on_step] before any
   operation or signal of that step, so when the first step of a new
   window arrives, every event of the previous windows has been folded. *)
let stream_roll t s ~step =
  let target = step / s.st_every in
  while s.st_window < target do
    stream_record t s ~w:s.st_window;
    s.st_window <- s.st_window + 1
  done

let on_step t ~step ~pid ~layer =
  (match t.stream with
  | Some s when step >= (s.st_window + 1) * s.st_every -> stream_roll t s ~step
  | _ -> ());
  t.total_steps <- t.total_steps + 1;
  t.last_step <- step;
  if pid < 0 then t.idle_steps <- t.idle_steps + 1
  else if pid < t.n then begin
    t.steps_per_pid.(pid) <- t.steps_per_pid.(pid) + 1;
    let row = t.steps_by_layer.(pid) in
    let l = Sink.layer_index layer in
    row.(l) <- row.(l) + 1
  end

let on_invoke t ~step ~pid ~layer:_ ~obj_id ~obj_name:_ ~op:_ =
  if pid >= 0 && pid < t.n then begin
    t.invokes.(pid) <- t.invokes.(pid) + 1;
    Span.on_invoke t.spans ~pid ~obj_id ~step
  end

let on_respond t ~step ~pid ~layer ~obj_id ~obj_name:_ ~op:_ ~result =
  if pid >= 0 && pid < t.n then begin
    t.responds.(pid) <- t.responds.(pid) + 1;
    let aborted = Value.equal result Value.Abort in
    if aborted then t.aborts.(pid) <- t.aborts.(pid) + 1;
    let failed = Value.equal result Value.Fail in
    if failed then t.fails.(pid) <- t.fails.(pid) + 1;
    Span.on_respond t.spans ~pid ~layer ~obj_id ~step ~aborted
  end

let on_signal t ~step ~pid signal =
  match signal with
  | Sink.Abort_decision _ ->
    t.register_abort_decisions <- t.register_abort_decisions + 1
  | Sink.Leader_view { leader } ->
    if pid >= 0 && pid < t.n then
      t.leader_changes.(pid) <- t.leader_changes.(pid) + 1;
    (* A leadership epoch boundary is a *self*-announcement by a process
       other than the current epoch's leader: pid now believes pid leads.
       Other view changes (followers catching up, views dropping to "?")
       are churn within an epoch. *)
    (match leader with
    | Some l when l = pid && t.current_leader <> Some l ->
      t.current_leader <- Some l;
      t.epochs <- t.epochs + 1;
      let handoffs, len =
        truncate_events ~retain:t.retain (t.handoffs_len + 1)
          ({ le_step = step; le_leader = l } :: t.handoffs)
      in
      t.handoffs <- handoffs;
      t.handoffs_len <- len
    | Some _ | None -> ())
  | Sink.Suspicion_flip { watched; suspected } ->
    t.suspicion_flips <- t.suspicion_flips + 1;
    if suspected && watched >= 0 && watched < t.n then
      t.suspected_counts.(watched) <- t.suspected_counts.(watched) + 1
  | Sink.Crash { pid = crashed } ->
    t.n_crashes <- t.n_crashes + 1;
    let crashes, len =
      truncate_events ~retain:t.retain (t.crashes_len + 1)
        ((step, crashed) :: t.crashes)
    in
    t.crashes <- crashes;
    t.crashes_len <- len
  | Sink.Retire _ -> t.n_retires <- t.n_retires + 1
  | Sink.Op_complete ->
    if pid >= 0 && pid < t.n then begin
      t.app_completed.(pid) <- t.app_completed.(pid) + 1;
      Series.bump t.app_ops ~pid ~step
    end
  | Sink.Message { src = _; dst = _; latency; dropped } ->
    t.net_sent <- t.net_sent + 1;
    if dropped then t.net_dropped <- t.net_dropped + 1
    else Hist.observe t.net_latency latency

let sink t =
  {
    Sink.active = true;
    on_step = (fun ~step ~pid ~layer -> on_step t ~step ~pid ~layer);
    on_invoke =
      (fun ~step ~pid ~layer ~obj_id ~obj_name ~op ->
        on_invoke t ~step ~pid ~layer ~obj_id ~obj_name ~op);
    on_respond =
      (fun ~step ~pid ~layer ~obj_id ~obj_name ~op ~result ->
        on_respond t ~step ~pid ~layer ~obj_id ~obj_name ~op ~result);
    on_signal = (fun ~step ~pid s -> on_signal t ~step ~pid s);
  }

let attach ?window ?retain rt =
  let t = create ?window ?retain ~n:(Runtime.n rt) () in
  Runtime.set_sink rt (sink t);
  t

(* --- streaming control --------------------------------------------------- *)

let emit_every t ~every ?(extra = fun ~window:_ -> []) emit =
  if every < 1 then invalid_arg "Collector.emit_every: every must be positive";
  t.stream <-
    Some
      {
        st_every = every;
        st_emit = emit;
        st_extra = extra;
        st_window = 0;
        st_completed = 0;
        st_epochs = 0;
        st_steps = 0;
        st_net_sent = 0;
        st_net_dropped = 0;
      }

let stream_flush t =
  match t.stream with
  | None -> ()
  | Some s ->
    (* Emit every window through the one containing the last folded step
       (a final partial window included), then detach the stream. *)
    if t.last_step >= 0 then begin
      let final = t.last_step / s.st_every in
      while s.st_window <= final do
        stream_record t s ~w:s.st_window;
        s.st_window <- s.st_window + 1
      done
    end;
    t.stream <- None

(* --- merging -------------------------------------------------------------- *)

(* Combine the collectors of independent finished runs — the fan-out
   aggregation path: each parallel task attaches its own collector to its
   own runtime, and the merged view is folded afterwards in canonical
   task order. All aggregates combine commutatively (sums, bucket-wise
   histogram merges, cell-wise series merges); the event lists (handoffs,
   crashes) interleave by step with ties broken by argument order, so a
   left fold over tasks in index order is order-fixed: any domain count
   produces the same merged collector. Run-local cursor state
   (current-epoch leader, last step) does not survive a merge. *)
let merge a b =
  if a.n <> b.n then invalid_arg "Collector.merge: process counts differ";
  if a.window <> b.window then
    invalid_arg "Collector.merge: window sizes differ";
  if a.retain <> b.retain then
    invalid_arg "Collector.merge: retentions differ";
  let sum_arrays x y = Array.init a.n (fun i -> x.(i) + y.(i)) in
  (* Chronological merge of two step-sorted event lists; on equal steps
     [xs]'s events come first, so merge order is fixed by argument order,
     not by which domain produced which list. *)
  let merge_events step xs ys =
    let rec go acc xs ys =
      match xs, ys with
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs', y :: ys' ->
        if step x <= step y then go (x :: acc) xs' ys
        else go (y :: acc) xs ys'
    in
    go [] xs ys
  in
  let handoffs, handoffs_len =
    truncate_events ~retain:a.retain
      (a.handoffs_len + b.handoffs_len)
      (List.rev
         (merge_events
            (fun ev -> ev.le_step)
            (List.rev a.handoffs) (List.rev b.handoffs)))
  in
  let crashes, crashes_len =
    truncate_events ~retain:a.retain
      (a.crashes_len + b.crashes_len)
      (List.rev (merge_events fst (List.rev a.crashes) (List.rev b.crashes)))
  in
  {
    n = a.n;
    window = a.window;
    retain = a.retain;
    stream = None;
    registry = Metrics.merge a.registry b.registry;
    spans = Span.merge a.spans b.spans;
    app_ops = Series.merge a.app_ops b.app_ops;
    steps_per_pid = sum_arrays a.steps_per_pid b.steps_per_pid;
    steps_by_layer =
      Array.init a.n (fun pid ->
          Array.init Sink.n_layers (fun l ->
              a.steps_by_layer.(pid).(l) + b.steps_by_layer.(pid).(l)));
    idle_steps = a.idle_steps + b.idle_steps;
    total_steps = a.total_steps + b.total_steps;
    last_step = max a.last_step b.last_step;
    invokes = sum_arrays a.invokes b.invokes;
    responds = sum_arrays a.responds b.responds;
    aborts = sum_arrays a.aborts b.aborts;
    fails = sum_arrays a.fails b.fails;
    app_completed = sum_arrays a.app_completed b.app_completed;
    register_abort_decisions =
      a.register_abort_decisions + b.register_abort_decisions;
    leader_changes = sum_arrays a.leader_changes b.leader_changes;
    current_leader = None;
    handoffs;
    handoffs_len;
    epochs = a.epochs + b.epochs;
    suspicion_flips = a.suspicion_flips + b.suspicion_flips;
    suspected_counts = sum_arrays a.suspected_counts b.suspected_counts;
    crashes;
    crashes_len;
    n_crashes = a.n_crashes + b.n_crashes;
    n_retires = a.n_retires + b.n_retires;
    net_sent = a.net_sent + b.net_sent;
    net_dropped = a.net_dropped + b.net_dropped;
    net_latency = Hist.merge a.net_latency b.net_latency;
  }

let merge_all = function
  | [] -> invalid_arg "Collector.merge_all: empty list"
  | first :: rest -> List.fold_left merge first rest

(* --- accessors ----------------------------------------------------------- *)

let n t = t.n
let window t = t.window
let retain t = t.retain
let registry t = t.registry
let spans t = t.spans
let app_ops t = t.app_ops
let total_steps t = t.total_steps
let idle_steps t = t.idle_steps
let steps_per_pid t = Array.copy t.steps_per_pid
let layer_steps t ~pid layer = t.steps_by_layer.(pid).(Sink.layer_index layer)
let app_completed t = Array.copy t.app_completed
let aborts t = Array.copy t.aborts
let leader_epochs t = t.epochs
let leader_changes t = Array.copy t.leader_changes
let handoffs t = List.rev t.handoffs
let suspicion_flips t = t.suspicion_flips
let crashes t = List.rev t.crashes
let crash_count t = t.n_crashes
let retire_count t = t.n_retires
let register_abort_decisions t = t.register_abort_decisions
let net_sent t = t.net_sent
let net_dropped t = t.net_dropped
let net_latency t = t.net_latency

(* Leader (by self-announcement) in effect at the end of each window,
   [None] before the first handoff — the timeline CLI's leader row. *)
let leader_by_window t =
  let windows = Series.windows t.app_ops in
  let events = List.rev t.handoffs in
  let out = Array.make windows None in
  let rec go current events w =
    if w < windows then begin
      let limit = (w + 1) * t.window in
      let rec advance current = function
        | ev :: rest when ev.le_step < limit -> advance (Some ev.le_leader) rest
        | rest -> current, rest
      in
      let current, rest = advance current events in
      out.(w) <- current;
      go current rest (w + 1)
    end
  in
  go None events 0;
  out

(* --- snapshot ------------------------------------------------------------ *)

let schema_version = "tbwf-telemetry/v1"

let snapshot t =
  Json.Obj
    [
      "schema", Json.Str schema_version;
      "n", Json.Int t.n;
      "window", Json.Int t.window;
      ( "steps",
        Json.Obj
          [
            "total", Json.Int t.total_steps;
            "idle", Json.Int t.idle_steps;
            "per_pid", int_array t.steps_per_pid;
            ( "attribution",
              Json.Arr
                (List.init t.n (fun pid ->
                     Json.Obj
                       (("pid", Json.Int pid)
                       :: List.map
                            (fun layer ->
                              ( Sink.layer_name layer,
                                Json.Int (layer_steps t ~pid layer) ))
                            Sink.layers))) );
          ] );
      ( "ops",
        Json.Obj
          [
            "invokes", int_array t.invokes;
            "responds", int_array t.responds;
            "aborts", int_array t.aborts;
            "fails", int_array t.fails;
            "app_completed", int_array t.app_completed;
            "register_abort_decisions", Json.Int t.register_abort_decisions;
          ] );
      "rates", Series.to_json t.app_ops;
      "spans", Span.to_json t.spans;
      ( "leader",
        Json.Obj
          [
            "epochs", Json.Int t.epochs;
            "changes", int_array t.leader_changes;
            ( "handoffs",
              Json.Arr
                (List.rev_map
                   (fun ev ->
                     Json.Obj
                       [
                         "step", Json.Int ev.le_step;
                         "leader", Json.Int ev.le_leader;
                       ])
                   t.handoffs) );
          ] );
      ( "suspicion",
        Json.Obj
          [
            "flips", Json.Int t.suspicion_flips;
            "suspected_counts", int_array t.suspected_counts;
          ] );
      ( "crashes",
        Json.Arr
          (List.rev_map
             (fun (step, pid) ->
               Json.Obj [ "step", Json.Int step; "pid", Json.Int pid ])
             t.crashes) );
      ( "net",
        Json.Obj
          [
            "sent", Json.Int t.net_sent;
            "dropped", Json.Int t.net_dropped;
            "latency", Hist.to_json t.net_latency;
          ] );
      "custom", Metrics.to_json t.registry;
    ]

let snapshot_string t = Json.to_string (snapshot t)

(* --- human summary ------------------------------------------------------- *)

let pp_summary fmt t =
  Fmt.pf fmt "steps        %d total, %d idle@." t.total_steps t.idle_steps;
  Fmt.pf fmt "%-4s %9s %9s %9s %9s %9s %9s %9s@." "pid" "steps" "app" "omega"
    "monitor" "invokes" "aborts" "app-ops";
  for pid = 0 to t.n - 1 do
    Fmt.pf fmt "p%-3d %9d %9d %9d %9d %9d %9d %9d@." pid t.steps_per_pid.(pid)
      (layer_steps t ~pid Sink.App)
      (layer_steps t ~pid Sink.Omega)
      (layer_steps t ~pid Sink.Monitor)
      t.invokes.(pid) t.aborts.(pid) t.app_completed.(pid)
  done;
  Fmt.pf fmt "app latency  %a@." Hist.pp (Span.latency_of t.spans Sink.App);
  Fmt.pf fmt "leader       %d epochs, view changes per pid %a@." t.epochs
    Fmt.(brackets (array ~sep:comma int))
    t.leader_changes;
  Fmt.pf fmt "suspicion    %d flips@." t.suspicion_flips;
  Fmt.pf fmt "reg aborts   %d decisions@." t.register_abort_decisions;
  if t.net_sent > 0 then
    Fmt.pf fmt "net          %d msgs, %d dropped, latency %a@." t.net_sent
      t.net_dropped Hist.pp t.net_latency;
  match List.rev t.crashes with
  | [] -> ()
  | crashes ->
    Fmt.pf fmt "crashes      %a@."
      Fmt.(list ~sep:comma (pair ~sep:(any "@@") int int))
      (List.map (fun (s, p) -> p, s) crashes)
