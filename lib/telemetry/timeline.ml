(* ASCII progress/leader timeline.

   One column per step window, one row per process plus a leader row:

     leader  ????00000000333333333333
     p0      @@@@@@@@  ..          X
     p1      @@@@@@@@@@@@@@@@@@@@@@@@
     ...

   The leader row shows the self-announced leader in effect at the end of
   each window ('?' before the first handoff). Process rows show
   completed-app-op density per window on the ramp [ .:-=+*#%@]: ' ' is
   zero, '@' is the busiest window of the whole run; an 'X' marks the
   window in which the process crashed. Wide runs are re-bucketed so the
   chart fits in [width] columns. *)

let ramp = " .:-=+*#%@"

type t = {
  columns : int;
  steps_per_col : int;  (* simulation steps represented by one column *)
  leader_row : string;
  pid_rows : string array;
  max_cell : int;  (* completions behind the densest cell *)
}

let densify cell max_cell =
  if cell <= 0 then ' '
  else begin
    let levels = String.length ramp - 1 in
    (* Nonzero cells never render as ' ': index 1..levels. *)
    let idx = 1 + (cell - 1) * (levels - 1) / max 1 (max_cell - 1) in
    ramp.[min levels idx]
  end

let build ?(width = 72) collector =
  let series = Collector.app_ops collector in
  let n = Collector.n collector in
  let window = Collector.window collector in
  let windows = max 1 (Series.windows series) in
  let per_col = (windows + width - 1) / width in
  let columns = (windows + per_col - 1) / per_col in
  let cell pid col =
    let row = Series.row series ~pid in
    let acc = ref 0 in
    for w = col * per_col to min windows (Array.length row) - 1 do
      if w < (col + 1) * per_col then acc := !acc + row.(w)
    done;
    !acc
  in
  let max_cell = ref 1 in
  for pid = 0 to n - 1 do
    for col = 0 to columns - 1 do
      max_cell := max !max_cell (cell pid col)
    done
  done;
  let crash_col =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (step, pid) ->
        if not (Hashtbl.mem tbl pid) then
          Hashtbl.replace tbl pid (step / window / per_col))
      (Collector.crashes collector);
    tbl
  in
  let pid_rows =
    Array.init n (fun pid ->
        String.init columns (fun col ->
            match Hashtbl.find_opt crash_col pid with
            | Some c when col = c -> 'X'
            | Some c when col > c -> ' '
            | _ -> densify (cell pid col) !max_cell))
  in
  let leaders = Collector.leader_by_window collector in
  let leader_row =
    String.init columns (fun col ->
        (* Leader in effect at the end of the last window of this column. *)
        let w = min (Array.length leaders - 1) (((col + 1) * per_col) - 1) in
        match if w < 0 then None else leaders.(w) with
        | None -> '?'
        | Some l when l < 10 -> Char.chr (Char.code '0' + l)
        | Some l -> Char.chr (Char.code 'a' + ((l - 10) mod 26)))
  in
  {
    columns;
    steps_per_col = per_col * window;
    leader_row;
    pid_rows;
    max_cell = !max_cell;
  }

let pp fmt t =
  Fmt.pf fmt "one column = %d steps; '@@' = %d app ops/column@." t.steps_per_col
    t.max_cell;
  Fmt.pf fmt "%-7s %s@." "leader" t.leader_row;
  Array.iteri (fun pid row -> Fmt.pf fmt "p%-6d %s@." pid row) t.pid_rows

let render ?width collector = Fmt.str "%a" pp (build ?width collector)
