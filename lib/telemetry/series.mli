(** Windowed per-pid rate series: a grid of counters, one row per pid,
    one column per window of [window] consecutive steps. This is the
    empirical lens of the paper's rate claims — a timely process shows a
    bounded number of completions in every window of the tail, an
    untimely one's row decays towards zero. *)

type t

val create : ?window:int -> ?retain:int -> n:int -> unit -> t
(** [window] defaults to 1024 steps; raises [Invalid_argument] if < 1.
    [retain] bounds live memory: only the most recent [retain] windows
    keep per-window cells (a ring buffer); older windows fold into
    per-pid evicted totals, so {!total}/{!totals} stay exact while
    {!row} reads zero before {!first_kept} and {!tail_total} is exact
    only from {!first_kept} on. Omitted = unbounded (the default, and
    the only mode whose {!to_json} reproduces every window). *)

val window : t -> int
val windows : t -> int
(** 1 + the highest window index touched so far. *)

val retain : t -> int option
val first_kept : t -> int
(** Lowest window index whose per-window cell is still stored; [0] in
    unbounded mode. *)

val window_of_step : t -> int -> int

val bump : t -> pid:int -> step:int -> unit
(** Count one event for [pid] in the window containing [step].
    Out-of-range pids are ignored. *)

val merge : t -> t -> t
(** Fresh series with cell-wise summed counts (commutative, associative).
    Raises [Invalid_argument] if the process counts, window sizes or
    retentions differ. In bounded mode the merged ring starts at the
    later [first_kept]; cells only one side still held fold into the
    evicted totals. *)

val copy : t -> t
(** Independent deep copy. *)

val row : t -> pid:int -> int array
(** Per-window counts for [pid], zero-padded to {!windows} columns. *)

val total : t -> pid:int -> int
val totals : t -> int array

val tail_total : t -> pid:int -> from_window:int -> int
(** Events in windows [from_window, windows) — the tail rate. *)

val mean_per_window : t -> pid:int -> float
val to_json : t -> Json.t
