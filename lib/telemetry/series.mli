(** Windowed per-pid rate series: a grid of counters, one row per pid,
    one column per window of [window] consecutive steps. This is the
    empirical lens of the paper's rate claims — a timely process shows a
    bounded number of completions in every window of the tail, an
    untimely one's row decays towards zero. *)

type t

val create : ?window:int -> n:int -> unit -> t
(** [window] defaults to 1024 steps; raises [Invalid_argument] if < 1. *)

val window : t -> int
val windows : t -> int
(** 1 + the highest window index touched so far. *)

val window_of_step : t -> int -> int

val bump : t -> pid:int -> step:int -> unit
(** Count one event for [pid] in the window containing [step].
    Out-of-range pids are ignored. *)

val merge : t -> t -> t
(** Fresh series with cell-wise summed counts (commutative, associative).
    Raises [Invalid_argument] if the process counts or window sizes
    differ. *)

val copy : t -> t
(** Independent deep copy. *)

val row : t -> pid:int -> int array
(** Per-window counts for [pid], zero-padded to {!windows} columns. *)

val total : t -> pid:int -> int
val totals : t -> int array

val tail_total : t -> pid:int -> from_window:int -> int
(** Events in windows [from_window, windows) — the tail rate. *)

val mean_per_window : t -> pid:int -> float
val to_json : t -> Json.t
