(* A small named-metrics registry: counters, gauges, log₂ histograms and
   windowed rate series, looked up by name. The built-in collector keeps
   its hot-path metrics in dedicated fields; the registry is the extension
   point for experiments and campaigns that want to attach their own
   numbers to the same snapshot. Snapshots list metrics sorted by name, so
   registration order never leaks into the output. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Hist.t
  | Series of Series.t

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 32 }

let find_or_add t name build destructure =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> (
    match destructure m with
    | Some v -> v
    | None ->
      invalid_arg (Fmt.str "Metrics: %S already registered with another type" name))
  | None ->
    let v, m = build () in
    Hashtbl.replace t.metrics name m;
    v

let counter t name =
  find_or_add t name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      c, Counter c)
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  find_or_add t name
    (fun () ->
      let g = { g_name = name; g_value = 0 } in
      g, Gauge g)
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  find_or_add t name
    (fun () ->
      let h = Hist.create () in
      h, Histogram h)
    (function Histogram h -> Some h | _ -> None)

let series t name ~n ?window () =
  find_or_add t name
    (fun () ->
      let s = Series.create ?window ~n () in
      s, Series s)
    (function Series s -> Some s | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

(* Union by name; same-name metrics combine additively (counters and
   gauges sum, histograms and series merge cell-wise). A name registered
   with different types on the two sides is a caller bug, as in
   [find_or_add]. *)
let merge a b =
  let t = create () in
  let copy_from src =
    Hashtbl.iter
      (fun name m ->
        match Hashtbl.find_opt t.metrics name, m with
        | None, Counter c ->
          Hashtbl.replace t.metrics name
            (Counter { c_name = name; c_value = c.c_value })
        | None, Gauge g ->
          Hashtbl.replace t.metrics name
            (Gauge { g_name = name; g_value = g.g_value })
        | None, Histogram h ->
          Hashtbl.replace t.metrics name (Histogram (Hist.merge h (Hist.create ())))
        | None, Series s -> Hashtbl.replace t.metrics name (Series (Series.copy s))
        | Some (Counter dst), Counter c -> dst.c_value <- dst.c_value + c.c_value
        | Some (Gauge dst), Gauge g -> dst.g_value <- dst.g_value + g.g_value
        | Some (Histogram dst), Histogram h ->
          Hashtbl.replace t.metrics name (Histogram (Hist.merge dst h))
        | Some (Series dst), Series s ->
          Hashtbl.replace t.metrics name (Series (Series.merge dst s))
        | Some _, _ ->
          invalid_arg
            (Fmt.str "Metrics.merge: %S registered with different types" name))
      src.metrics
  in
  copy_from a;
  copy_from b;
  t

let to_json t =
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.metrics []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, m) ->
           ( name,
             match m with
             | Counter c -> Json.Int c.c_value
             | Gauge g -> Json.Int g.g_value
             | Histogram h -> Hist.to_json h
             | Series s -> Series.to_json s ))
  in
  Json.Obj entries
