(** The per-runtime telemetry collector.

    {!attach} builds a collector sized for the runtime and installs its
    sink; from then on every step, operation and signal feeds the
    aggregates. Everything is keyed by the simulator's step counter and
    updated in event order, so the collector is exactly as deterministic
    as the run itself: same (seed, policy, code) ⇒ byte-identical
    {!snapshot}.

    The headline series is {!app_ops}: workload-level operation
    completions ([Sink.Op_complete], one per full [Tbwf.invoke] round
    trip) bucketed into step windows per process. This is the measured
    form of the paper's per-process rate, and it equals
    [Workload.stats.completed] by construction — for every system,
    including ones whose query-abortable object is itself built from
    many register calls. *)

open Tbwf_sim

type t

type leader_event = { le_step : int; le_leader : int }

val create : ?window:int -> ?retain:int -> n:int -> unit -> t
(** A detached collector ([window] defaults to 1024 steps); feed it by
    installing {!sink} yourself, or use {!attach}. [retain] bounds live
    memory for long-horizon runs: the rate series keeps only the most
    recent [retain] windows (see {!Series.create}) and the timestamped
    event lists (handoffs, crashes) keep only their most recent entries
    — all counts stay exact. *)

val sink : t -> Sink.t

val attach : ?window:int -> ?retain:int -> Runtime.t -> t
(** [create] sized for the runtime + [Runtime.set_sink]. *)

(** {2 Streaming}

    Periodic JSONL snapshots while the run is still going: one record
    (schema {!stream_schema_version}) per stream window of [every]
    steps, each carrying cumulative counters with deltas, the per-layer
    completion-time tail sketches, leader-epoch churn and the net
    section. Records derive from event-ordered state only, so the
    stream is byte-identical under replay and any fan-out. *)

val stream_schema_version : string
(** ["tbwf-telemetry/v2"]. *)

val emit_every :
  t ->
  every:int ->
  ?extra:(window:int -> (string * Json.t) list) ->
  (Json.t -> unit) ->
  unit
(** [emit_every t ~every f] arranges for [f record] to be called once
    per [every]-step window, at the first step of the following window
    (so a record always covers a completed window). [extra] appends
    caller fields to each record — the hook online checkers use to
    attach running verdicts without the telemetry layer depending on
    [lib/check]. Raises [Invalid_argument] if [every < 1]. *)

val stream_flush : t -> unit
(** Emit the record of the final (possibly partial) window and detach
    the stream. Call once after the run; no-op if no stream is set. *)

(** {2 Merging}

    Fan-out aggregation: each parallel task attaches its own collector to
    its own runtime; afterwards the per-task collectors fold into one
    merged view in canonical task order. *)

val merge : t -> t -> t
(** Fresh collector combining two finished runs' aggregates: counters and
    arrays sum, histograms merge bucket-wise, rate series merge
    cell-wise, and event lists (handoffs, crashes) interleave by step
    with ties broken left-first — commutative up to those ties, so a left
    fold in task-index order is order-fixed and domain-count-independent.
    In [retain] mode the merged event lists are re-truncated to the most
    recent entries (counts stay exact), so folding thousands of retained
    collectors stays as memory-bounded as any one of them. Run-local
    cursor state (current epoch leader, stream state) does not survive.
    Raises [Invalid_argument] if [n], [window] or retention differ. *)

val merge_all : t list -> t
(** Left fold of {!merge}; raises [Invalid_argument] on the empty list. *)

(** {2 Accessors} *)

val n : t -> int
val window : t -> int
val retain : t -> int option

val registry : t -> Metrics.t
(** Caller-defined metrics, exported under ["custom"]. *)

val spans : t -> Span.t
val app_ops : t -> Series.t
val total_steps : t -> int
val idle_steps : t -> int
val steps_per_pid : t -> int array
val layer_steps : t -> pid:int -> Sink.layer -> int
val app_completed : t -> int array
val aborts : t -> int array

val leader_epochs : t -> int
(** Epoch boundaries: *self*-announcements changing hands — pid [l]
    announced a view naming itself while the current epoch's leader was
    someone else. Follower churn within an epoch does not count. *)

val leader_changes : t -> int array
(** Leader-view changes per observer (any change, including churn). *)

val handoffs : t -> leader_event list
(** Epoch boundaries in chronological order. *)

val leader_by_window : t -> int option array
(** Self-announced leader in effect at the end of each {!app_ops}
    window, [None] before the first handoff — the timeline's leader
    row. *)

val suspicion_flips : t -> int
val crashes : t -> (int * int) list
(** [(step, pid)] in chronological order (the most recent entries only
    in [retain] mode — {!crash_count} stays exact). *)

val crash_count : t -> int

val retire_count : t -> int
(** Graceful membership leaves ({!Tbwf_sim.Sink.Retire}) observed so far.
    Deliberately not part of the [tbwf-telemetry/v1] snapshot — churn
    aggregates live in the world layer's [tbwf-world/v1] schema. *)

val register_abort_decisions : t -> int

val net_sent : t -> int
(** Messages admitted by the simulated network ({!Tbwf_sim.Sink.Message}
    signals); 0 on shared-memory runs. *)

val net_dropped : t -> int
(** Of {!net_sent}, how many were lost (partition cut or loss draw). *)

val net_latency : t -> Hist.t
(** Assigned one-way delays of the delivered messages, in steps. *)

(** {2 Output} *)

val schema_version : string

val snapshot : t -> Json.t
(** The full deterministic snapshot (schema {!schema_version}). *)

val snapshot_string : t -> string
val pp_summary : Format.formatter -> t -> unit
