(* Windowed per-pid rate series: a grid of counters, one row per pid, one
   column per window of [window] consecutive steps. This is the empirical
   lens of the paper's rate claims — a timely process shows a bounded
   number of completions in every window of the tail, an untimely one's
   row decays towards zero. *)

type t = {
  window : int;
  n : int;
  mutable rows : int array array;  (* pid -> per-window counts *)
  mutable windows : int;  (* 1 + highest window index touched *)
}

let create ?(window = 1024) ~n () =
  if window < 1 then invalid_arg "Series.create: window must be positive";
  {
    window;
    n;
    rows = Array.init n (fun _ -> Array.make 16 0);
    windows = 0;
  }

let window t = t.window
let windows t = t.windows
let window_of_step t step = step / t.window

let bump t ~pid ~step =
  if pid >= 0 && pid < t.n then begin
    let w = step / t.window in
    let row = t.rows.(pid) in
    let row =
      if w < Array.length row then row
      else begin
        let bigger = Array.make (max (2 * Array.length row) (w + 1)) 0 in
        Array.blit row 0 bigger 0 (Array.length row);
        t.rows.(pid) <- bigger;
        bigger
      end
    in
    row.(w) <- row.(w) + 1;
    if w + 1 > t.windows then t.windows <- w + 1
  end

(* Cell-wise sum over the pid × window grid. Both series must have been
   built against the same process count and window size — merging rates
   bucketed on different step grids would be meaningless. *)
let merge a b =
  if a.n <> b.n then invalid_arg "Series.merge: process counts differ";
  if a.window <> b.window then invalid_arg "Series.merge: window sizes differ";
  let windows = max a.windows b.windows in
  let cell row w = if w < Array.length row then row.(w) else 0 in
  {
    window = a.window;
    n = a.n;
    rows =
      Array.init a.n (fun pid ->
          Array.init (max 16 windows) (fun w ->
              cell a.rows.(pid) w + cell b.rows.(pid) w));
    windows;
  }

let copy t =
  {
    window = t.window;
    n = t.n;
    rows = Array.map Array.copy t.rows;
    windows = t.windows;
  }

let row t ~pid =
  (* Rows grow lazily per pid; pad with zeros up to the global width. *)
  let row = t.rows.(pid) in
  Array.init t.windows (fun w -> if w < Array.length row then row.(w) else 0)

let total t ~pid = Array.fold_left ( + ) 0 t.rows.(pid)

let totals t = Array.init t.n (fun pid -> total t ~pid)

(* Completions in windows [from_window, windows), i.e. the tail rate. *)
let tail_total t ~pid ~from_window =
  let acc = ref 0 in
  let row = t.rows.(pid) in
  for w = max 0 from_window to min t.windows (Array.length row) - 1 do
    acc := !acc + row.(w)
  done;
  !acc

let mean_per_window t ~pid =
  if t.windows = 0 then 0.0
  else float_of_int (total t ~pid) /. float_of_int t.windows

let to_json t =
  Json.Obj
    [
      "window", Json.Int t.window;
      "windows", Json.Int t.windows;
      ( "per_pid",
        Json.Arr
          (List.init t.n (fun pid ->
               Json.Arr
                 (Array.to_list (row t ~pid) |> List.map (fun c -> Json.Int c))))
      );
      ( "totals",
        Json.Arr (Array.to_list (totals t) |> List.map (fun c -> Json.Int c)) );
      ( "mean_per_window",
        Json.Arr (List.init t.n (fun pid -> Json.Float (mean_per_window t ~pid)))
      );
    ]
