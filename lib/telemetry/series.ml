(* Windowed per-pid rate series: a grid of counters, one row per pid, one
   column per window of [window] consecutive steps. This is the empirical
   lens of the paper's rate claims — a timely process shows a bounded
   number of completions in every window of the tail, an untimely one's
   row decays towards zero.

   Unbounded by default (rows grow with the run — fine for bounded
   experiment horizons), or bounded with [?retain]: a ring of the most
   recent [retain] windows per pid, older cells folded into a per-pid
   evicted total so [total]/[totals] stay exact while live memory is
   O(n · retain) regardless of horizon. *)

type t = {
  window : int;
  n : int;
  retain : int option;
  mutable rows : int array array;
      (* pid -> per-window counts. Unbounded mode: index = window id,
         grown by doubling. Bounded mode: a ring of [retain] slots,
         window w lives at slot [w mod retain]. *)
  mutable windows : int;  (* 1 + highest window index touched *)
  mutable first_kept : int;  (* bounded mode: lowest window still in ring *)
  evicted : int array;  (* bounded mode: per-pid counts rolled out *)
}

let create ?(window = 1024) ?retain ~n () =
  if window < 1 then invalid_arg "Series.create: window must be positive";
  (match retain with
  | Some r when r < 1 -> invalid_arg "Series.create: retain must be positive"
  | _ -> ());
  let width = match retain with Some r -> r | None -> 16 in
  {
    window;
    n;
    retain;
    rows = Array.init n (fun _ -> Array.make width 0);
    windows = 0;
    first_kept = 0;
    evicted = Array.make n 0;
  }

let window t = t.window
let windows t = t.windows
let retain t = t.retain
let first_kept t = match t.retain with None -> 0 | Some _ -> t.first_kept
let window_of_step t step = step / t.window

(* Roll the ring forward so window [w] fits: fold every window that falls
   off the back into the evicted totals. At most [retain] slots need
   touching however far the run jumps. *)
let evict_upto t r ~w =
  let new_first = w - r + 1 in
  if new_first > t.first_kept then begin
    let from = t.first_kept in
    let upto = min (new_first - 1) (from + r - 1) in
    for pid = 0 to t.n - 1 do
      let row = t.rows.(pid) in
      let acc = ref 0 in
      for ww = from to upto do
        let slot = ww mod r in
        acc := !acc + row.(slot);
        row.(slot) <- 0
      done;
      t.evicted.(pid) <- t.evicted.(pid) + !acc
    done;
    (* Slots for windows in (upto, new_first) were never touched (the run
       jumped more than [retain] windows at once) and are already zero. *)
    t.first_kept <- new_first
  end

let bump t ~pid ~step =
  if pid >= 0 && pid < t.n then begin
    let w = step / t.window in
    (match t.retain with
    | None ->
      let row = t.rows.(pid) in
      let row =
        if w < Array.length row then row
        else begin
          let bigger = Array.make (max (2 * Array.length row) (w + 1)) 0 in
          Array.blit row 0 bigger 0 (Array.length row);
          t.rows.(pid) <- bigger;
          bigger
        end
      in
      row.(w) <- row.(w) + 1
    | Some r ->
      if w < t.first_kept then
        (* Behind the ring (can't happen with a monotone step stream);
           count it as already evicted so totals stay exact. *)
        t.evicted.(pid) <- t.evicted.(pid) + 1
      else begin
        evict_upto t r ~w;
        let slot = w mod r in
        t.rows.(pid).(slot) <- t.rows.(pid).(slot) + 1
      end);
    if w + 1 > t.windows then t.windows <- w + 1
  end

(* Cell value of window [w] for [pid], 0 outside the stored range. *)
let cell t ~pid ~w =
  match t.retain with
  | None ->
    let row = t.rows.(pid) in
    if w >= 0 && w < Array.length row then row.(w) else 0
  | Some r ->
    if w >= t.first_kept && w < t.first_kept + r then t.rows.(pid).(w mod r)
    else 0

(* Cell-wise sum over the pid × window grid. Both series must have been
   built against the same process count, window size and retention —
   merging rates bucketed on different step grids would be meaningless.
   In bounded mode the merged ring starts at the later of the two
   [first_kept] marks; cells only one side still holds fold into the
   evicted totals, exactly as time itself would have evicted them. *)
let merge a b =
  if a.n <> b.n then invalid_arg "Series.merge: process counts differ";
  if a.window <> b.window then invalid_arg "Series.merge: window sizes differ";
  if a.retain <> b.retain then invalid_arg "Series.merge: retentions differ";
  let windows = max a.windows b.windows in
  match a.retain with
  | None ->
    {
      window = a.window;
      n = a.n;
      retain = None;
      rows =
        Array.init a.n (fun pid ->
            Array.init (max 16 windows) (fun w ->
                cell a ~pid ~w + cell b ~pid ~w));
      windows;
      first_kept = 0;
      evicted = Array.make a.n 0;
    }
  | Some r ->
    let first_kept = max a.first_kept b.first_kept in
    let rows = Array.init a.n (fun _ -> Array.make r 0) in
    let evicted = Array.make a.n 0 in
    let side_evicted (s : t) pid =
      let acc = ref s.evicted.(pid) in
      for w = s.first_kept to first_kept - 1 do
        acc := !acc + cell s ~pid ~w
      done;
      !acc
    in
    for pid = 0 to a.n - 1 do
      evicted.(pid) <- side_evicted a pid + side_evicted b pid;
      for w = first_kept to min windows (first_kept + r) - 1 do
        rows.(pid).(w mod r) <- cell a ~pid ~w + cell b ~pid ~w
      done
    done;
    { window = a.window; n = a.n; retain = Some r; rows; windows; first_kept;
      evicted }

let copy t =
  {
    window = t.window;
    n = t.n;
    retain = t.retain;
    rows = Array.map Array.copy t.rows;
    windows = t.windows;
    first_kept = t.first_kept;
    evicted = Array.copy t.evicted;
  }

let row t ~pid =
  (* Zero-padded to the global width; in bounded mode evicted windows
     read as zero (their counts live only in the totals). *)
  Array.init t.windows (fun w -> cell t ~pid ~w)

let total t ~pid =
  Array.fold_left ( + ) 0 t.rows.(pid)
  + (match t.retain with None -> 0 | Some _ -> t.evicted.(pid))

let totals t = Array.init t.n (fun pid -> total t ~pid)

(* Completions in windows [from_window, windows), i.e. the tail rate.
   Bounded mode: exact as long as [from_window ≥ first_kept] — callers
   must retain at least their tail. *)
let tail_total t ~pid ~from_window =
  let acc = ref 0 in
  for w = max 0 from_window to t.windows - 1 do
    acc := !acc + cell t ~pid ~w
  done;
  !acc

let mean_per_window t ~pid =
  if t.windows = 0 then 0.0
  else float_of_int (total t ~pid) /. float_of_int t.windows

let to_json t =
  Json.Obj
    [
      "window", Json.Int t.window;
      "windows", Json.Int t.windows;
      ( "per_pid",
        Json.Arr
          (List.init t.n (fun pid ->
               Json.Arr
                 (Array.to_list (row t ~pid) |> List.map (fun c -> Json.Int c))))
      );
      ( "totals",
        Json.Arr (Array.to_list (totals t) |> List.map (fun c -> Json.Int c)) );
      ( "mean_per_window",
        Json.Arr (List.init t.n (fun pid -> Json.Float (mean_per_window t ~pid)))
      );
    ]
