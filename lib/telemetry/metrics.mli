(** A small named-metrics registry: counters, gauges, log₂ histograms and
    windowed rate series, looked up by name. The built-in collector keeps
    its hot-path metrics in dedicated fields; the registry is the
    extension point for experiments and campaigns that attach their own
    numbers to the same snapshot. Snapshots list metrics sorted by name,
    so registration order never leaks into the output. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Find or register. Raises [Invalid_argument] if the name is already
    registered with a different metric type (likewise below). *)

val gauge : t -> string -> gauge
val histogram : t -> string -> Hist.t
val series : t -> string -> n:int -> ?window:int -> unit -> Series.t

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val merge : t -> t -> t
(** Fresh registry holding the union by name: counters and gauges sum,
    histograms and series merge cell-wise; metrics present on one side
    only are copied. Raises [Invalid_argument] if a name is registered
    with different metric types on the two sides. *)

val to_json : t -> Json.t
