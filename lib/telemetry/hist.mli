(** Log₂-bucket histogram for step-valued observations (latencies, streak
    lengths). Bucket 0 holds the value 0; bucket [i] (i ≥ 1) holds values
    in [2^(i-1), 2^i - 1]. Observation order does not matter, so
    snapshots of replayed runs are identical. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one observation; negative values clamp to 0. *)

val merge : t -> t -> t
(** Fresh histogram equal to one that observed both inputs' streams —
    bucket-wise sum, so commutative and associative. *)

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_lo : int -> int
(** Smallest value belonging to a bucket. *)

val count : t -> int
val mean : t -> float

val quantile_bound : t -> float -> int
(** [quantile_bound t q] is an upper bound on the [q]-quantile, exact to
    within a power of two (and never above the observed maximum). *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
