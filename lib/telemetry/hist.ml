(* Log₂-bucket histogram for step-valued observations (latencies, streak
   lengths). Bucket 0 holds the value 0; bucket i (i ≥ 1) holds values in
   [2^(i-1), 2^i - 1]. 32 buckets cover every latency a simulated run can
   produce. Observation order does not matter, so snapshots of replayed
   runs are identical. *)

let n_buckets = 32

type t = {
  mutable count : int;
  mutable sum : int;
  mutable max : int;
  buckets : int array;
}

let create () = { count = 0; sum = 0; max = 0; buckets = Array.make n_buckets 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (n_buckets - 1) (bits 0 v)
  end

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)

let observe t v =
  let v = max v 0 in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max then t.max <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

(* Bucket-wise sum: observation order never mattered, so merging is
   commutative and associative and a merged histogram equals one that
   observed both streams. *)
let merge a b =
  {
    count = a.count + b.count;
    sum = a.sum + b.sum;
    max = max a.max b.max;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let count t = t.count
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Smallest observed-bucket upper bound covering ≥ q of the observations —
   a coarse quantile, exact to within a power of two. *)
let quantile_bound t q =
  if t.count = 0 then 0
  else begin
    let target = int_of_float (Float.of_int t.count *. q) in
    let acc = ref 0 in
    let result = ref t.max in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc > target then begin
           result := (if i = 0 then 0 else (1 lsl i) - 1);
           raise Exit
         end
       done
     with Exit -> ());
    min !result t.max
  end

let to_json t =
  let buckets =
    Array.to_list t.buckets
    |> List.mapi (fun i n -> i, n)
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) ->
           Json.Obj [ "lo", Json.Int (bucket_lo i); "n", Json.Int n ])
  in
  Json.Obj
    [
      "count", Json.Int t.count;
      "sum", Json.Int t.sum;
      "max", Json.Int t.max;
      "mean", Json.Float (mean t);
      "p50", Json.Int (quantile_bound t 0.5);
      "p99", Json.Int (quantile_bound t 0.99);
      "buckets", Json.Arr buckets;
    ]

let pp fmt t =
  if t.count = 0 then Fmt.string fmt "no observations"
  else
    Fmt.pf fmt "n=%d mean=%.1f p50≤%d p99≤%d max=%d" t.count (mean t)
      (quantile_bound t 0.5) (quantile_bound t 0.99) t.max
