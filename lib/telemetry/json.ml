(* A minimal JSON tree with a deterministic printer.

   The repo deliberately avoids external JSON dependencies; telemetry
   snapshots need only construction and printing. Printing is canonical —
   object fields keep their construction order, floats go through "%.12g",
   no whitespace in compact mode — so equal trees print to equal strings
   and snapshots can be compared byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  write buf t;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write buf v
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        write_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_string_pretty t =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- schema -------------------------------------------------------------- *)

(* The schema of a snapshot is the sorted set of its key paths, each tagged
   with the value's type. Array elements share the path "key[]" — every
   element contributes, so heterogeneous arrays surface as multiple lines —
   and an array also contributes its own "key: array" line, which keeps the
   schema stable when an array happens to be empty. CI pins this against a
   committed golden file to catch accidental export drift. *)
let schema_paths t =
  let tbl = Hashtbl.create 64 in
  let add path tag = Hashtbl.replace tbl (path ^ ": " ^ tag) () in
  let rec go path = function
    | Null -> add path "null"
    | Bool _ -> add path "bool"
    | Int _ -> add path "int"
    | Float _ -> add path "float"
    | Str _ -> add path "string"
    | Arr items ->
      add path "array";
      List.iter (go (path ^ "[]")) items
    | Obj fields ->
      add path "object";
      List.iter
        (fun (k, v) ->
          let sub = if path = "" then k else path ^ "." ^ k in
          go sub v)
        fields
  in
  go "" t;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort String.compare

let schema_string t = String.concat "\n" (schema_paths t) ^ "\n"
