(* A minimal JSON tree with a deterministic printer.

   The repo deliberately avoids external JSON dependencies; telemetry
   snapshots need only construction and printing. Printing is canonical —
   object fields keep their construction order, floats go through "%.12g",
   no whitespace in compact mode — so equal trees print to equal strings
   and snapshots can be compared byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  write buf t;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write buf v
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        write_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_string_pretty t =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

(* A recursive-descent parser for the same dependency-free reasons as the
   printer. It accepts standard JSON (the printer's output is a subset);
   numbers with a '.', 'e' or 'E' become [Float], the rest [Int]. Consumers
   are round-trip readers of our own documents — bench baselines, committed
   snapshots — so there is no streaming, no byte-offset error recovery,
   just a position in the error message. *)

exception Parse_error of string

let of_string text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (* Escapes we emit are < 0x20; decode the BMP point as UTF-8 so
             foreign documents at least round-trip printable text. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          k, v
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* --- schema -------------------------------------------------------------- *)

(* The schema of a snapshot is the sorted set of its key paths, each tagged
   with the value's type. Array elements share the path "key[]" — every
   element contributes, so heterogeneous arrays surface as multiple lines —
   and an array also contributes its own "key: array" line, which keeps the
   schema stable when an array happens to be empty. CI pins this against a
   committed golden file to catch accidental export drift. *)
let schema_paths t =
  let tbl = Hashtbl.create 64 in
  let add path tag = Hashtbl.replace tbl (path ^ ": " ^ tag) () in
  let rec go path = function
    | Null -> add path "null"
    | Bool _ -> add path "bool"
    | Int _ -> add path "int"
    | Float _ -> add path "float"
    | Str _ -> add path "string"
    | Arr items ->
      add path "array";
      List.iter (go (path ^ "[]")) items
    | Obj fields ->
      add path "object";
      List.iter
        (fun (k, v) ->
          let sub = if path = "" then k else path ^ "." ^ k in
          go sub v)
        fields
  in
  go "" t;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort String.compare

let schema_string t = String.concat "\n" (schema_paths t) ^ "\n"
