(** Operation-span tracing.

    The runtime's invoke/respond events pair up into {e spans}: one span
    per shared-object operation, from its invocation step to its
    response step. The tracer aggregates spans as they close — per-layer
    latency histograms, abort/retry streaks per process, and contention
    windows (maximal periods during which an object had two or more
    operations in flight). Everything is derived from the event stream
    in event order, so a replayed schedule produces an identical
    aggregate. *)

open Tbwf_sim

type t

val create : n:int -> t

val on_invoke : t -> pid:int -> obj_id:int -> step:int -> unit

val on_respond :
  t -> pid:int -> layer:Sink.layer -> obj_id:int -> step:int ->
  aborted:bool -> unit
(** Closes [pid]'s newest open span on [obj_id]; a respond whose invoke
    was never seen (sink attached mid-operation) is silently ignored.
    [aborted] feeds the per-process abort-streak histogram: a streak
    closes (and its length is observed) at the first non-aborted
    response. *)

val completed : t -> int
val latency_of : t -> Sink.layer -> Hist.t

val tail_of : t -> Sink.layer -> Quantile.t
(** Per-layer completion-time quantile sketch (p50/p99/p999 tails over
    the same spans {!latency_of} histograms). *)

val merge : t -> t -> t
(** Fresh tracer holding both inputs' closed-span aggregates (latency and
    streak histograms summed bucket-wise, totals added). In-flight state
    — open spans, running abort streaks — is dropped: merge is meant for
    finished, independent runs. Raises [Invalid_argument] if the process
    counts differ. *)

val to_json : t -> Json.t
