(* Operation-span tracing.

   The runtime's invoke/respond events pair up into {e spans}: one span per
   shared-object operation, from its invocation step to its response step.
   The tracer aggregates spans as they close — per-layer latency
   histograms, abort/retry streaks per process, and contention windows
   (maximal periods during which an object had two or more operations in
   flight). Everything is derived from the event stream in event order, so
   a replayed schedule produces an identical aggregate. *)

open Tbwf_sim

type open_span = {
  os_obj : int;
  os_invoke : int;
  mutable os_contended : bool;
}

(* A well-formed run closes every span it opens, but a sink attached
   mid-run (or a workload that dies between invoke and respond) can leak
   open spans; capping the per-pid list keeps the tracer memory-bounded
   on arbitrarily long runs. 256 in-flight ops per process is far beyond
   anything a real stack issues. *)
let max_open_spans = 256

type t = {
  n : int;
  latency : Hist.t array;  (* indexed by Sink.layer_index *)
  tails : Quantile.t array;  (* per-layer completion-time sketch *)
  open_spans : open_span list array;  (* per pid, newest first *)
  open_len : int array;  (* per pid, length of [open_spans.(pid)] *)
  (* obj_id is the runtime's dense sequential object id, so the
     per-object in-flight state lives in flat arrays grown on demand —
     this is the sink's hot path (two updates per register operation)
     and a hash table here costs an allocation per call. *)
  mutable open_count : int array;  (* obj_id -> in-flight spans *)
  mutable in_window : bool array;  (* obj_id -> contention window open *)
  abort_streak : int array;  (* per pid, current run of Abort results *)
  streaks : Hist.t;  (* lengths of completed abort streaks *)
  mutable completed : int;
  mutable contended_spans : int;
  mutable contention_windows : int;
}

let initial_objs = 64

let create ~n =
  {
    n;
    latency = Array.init Sink.n_layers (fun _ -> Hist.create ());
    tails = Array.init Sink.n_layers (fun _ -> Quantile.create ());
    open_spans = Array.make n [];
    open_len = Array.make n 0;
    open_count = Array.make initial_objs 0;
    in_window = Array.make initial_objs false;
    abort_streak = Array.make n 0;
    streaks = Hist.create ();
    completed = 0;
    contended_spans = 0;
    contention_windows = 0;
  }

let ensure_obj t obj_id =
  if obj_id >= Array.length t.open_count then begin
    let cap = max (2 * Array.length t.open_count) (obj_id + 1) in
    let open_count = Array.make cap 0 in
    Array.blit t.open_count 0 open_count 0 (Array.length t.open_count);
    t.open_count <- open_count;
    let in_window = Array.make cap false in
    Array.blit t.in_window 0 in_window 0 (Array.length t.in_window);
    t.in_window <- in_window
  end

let on_invoke t ~pid ~obj_id ~step =
  if pid >= 0 && pid < t.n && obj_id >= 0 then begin
    ensure_obj t obj_id;
    let sp = { os_obj = obj_id; os_invoke = step; os_contended = false } in
    let opens = t.open_count.(obj_id) + 1 in
    t.open_count.(obj_id) <- opens;
    let existing = t.open_spans.(pid) in
    let existing =
      if t.open_len.(pid) >= max_open_spans then begin
        t.open_len.(pid) <- max_open_spans - 1;
        List.filteri (fun i _ -> i < max_open_spans - 1) existing
      end
      else existing
    in
    t.open_spans.(pid) <- sp :: existing;
    t.open_len.(pid) <- t.open_len.(pid) + 1;
    if opens >= 2 then begin
      (* Everyone currently in flight on this object is contended. *)
      Array.iter
        (List.iter (fun other ->
             if other.os_obj = obj_id then other.os_contended <- true))
        t.open_spans;
      if not t.in_window.(obj_id) then begin
        t.in_window.(obj_id) <- true;
        t.contention_windows <- t.contention_windows + 1
      end
    end
  end

let on_respond t ~pid ~layer ~obj_id ~step ~aborted =
  if pid >= 0 && pid < t.n then begin
    (* Close the newest open span of [pid] on this object; skip silently if
       the sink was attached mid-operation and the invoke was never seen. *)
    let rec split acc = function
      | [] -> None
      | sp :: rest when sp.os_obj = obj_id ->
        Some (sp, List.rev_append acc rest)
      | sp :: rest -> split (sp :: acc) rest
    in
    (match split [] t.open_spans.(pid) with
    | None -> ()
    | Some (sp, rest) ->
      t.open_spans.(pid) <- rest;
      t.open_len.(pid) <- t.open_len.(pid) - 1;
      t.completed <- t.completed + 1;
      Hist.observe t.latency.(Sink.layer_index layer) (step - sp.os_invoke);
      Quantile.observe t.tails.(Sink.layer_index layer) (step - sp.os_invoke);
      if sp.os_contended then t.contended_spans <- t.contended_spans + 1;
      ensure_obj t obj_id;
      let opens = max 0 (t.open_count.(obj_id) - 1) in
      t.open_count.(obj_id) <- opens;
      if opens = 0 then t.in_window.(obj_id) <- false);
    if aborted then t.abort_streak.(pid) <- t.abort_streak.(pid) + 1
    else if t.abort_streak.(pid) > 0 then begin
      Hist.observe t.streaks t.abort_streak.(pid);
      t.abort_streak.(pid) <- 0
    end
  end

(* Merge the closed-span aggregates of two tracers (latency histograms,
   completed streaks, contention totals). In-flight state — open spans and
   running abort streaks — is per-run and deliberately dropped: merging is
   for fan-out over independent runs, each of which has already finished. *)
let merge a b =
  if a.n <> b.n then invalid_arg "Span.merge: process counts differ";
  {
    n = a.n;
    latency = Array.init Sink.n_layers (fun i -> Hist.merge a.latency.(i) b.latency.(i));
    tails = Array.init Sink.n_layers (fun i -> Quantile.merge a.tails.(i) b.tails.(i));
    open_spans = Array.make a.n [];
    open_len = Array.make a.n 0;
    open_count = Array.make initial_objs 0;
    in_window = Array.make initial_objs false;
    abort_streak = Array.make a.n 0;
    streaks = Hist.merge a.streaks b.streaks;
    completed = a.completed + b.completed;
    contended_spans = a.contended_spans + b.contended_spans;
    contention_windows = a.contention_windows + b.contention_windows;
  }

let latency_of t layer = t.latency.(Sink.layer_index layer)
let tail_of t layer = t.tails.(Sink.layer_index layer)
let completed t = t.completed

let to_json t =
  Json.Obj
    [
      "completed", Json.Int t.completed;
      ( "latency",
        Json.Obj
          (List.map
             (fun layer ->
               Sink.layer_name layer, Hist.to_json (latency_of t layer))
             Sink.layers) );
      ( "tails",
        Json.Obj
          (List.map
             (fun layer ->
               Sink.layer_name layer, Quantile.to_json (tail_of t layer))
             Sink.layers) );
      "abort_streaks", Hist.to_json t.streaks;
      ( "open_abort_streaks",
        Json.Arr (Array.to_list t.abort_streak |> List.map (fun s -> Json.Int s))
      );
      ( "contention",
        Json.Obj
          [
            "windows", Json.Int t.contention_windows;
            "contended_spans", Json.Int t.contended_spans;
          ] );
    ]
