(* Operation-span tracing.

   The runtime's invoke/respond events pair up into {e spans}: one span per
   shared-object operation, from its invocation step to its response step.
   The tracer aggregates spans as they close — per-layer latency
   histograms, abort/retry streaks per process, and contention windows
   (maximal periods during which an object had two or more operations in
   flight). Everything is derived from the event stream in event order, so
   a replayed schedule produces an identical aggregate. *)

open Tbwf_sim

type open_span = {
  os_obj : int;
  os_invoke : int;
  mutable os_contended : bool;
}

type t = {
  n : int;
  latency : Hist.t array;  (* indexed by Sink.layer_index *)
  open_spans : open_span list array;  (* per pid, newest first *)
  open_count : (int, int) Hashtbl.t;  (* obj_id -> in-flight spans *)
  in_window : (int, bool) Hashtbl.t;  (* obj_id -> contention window open *)
  abort_streak : int array;  (* per pid, current run of Abort results *)
  streaks : Hist.t;  (* lengths of completed abort streaks *)
  mutable completed : int;
  mutable contended_spans : int;
  mutable contention_windows : int;
}

let create ~n =
  {
    n;
    latency = Array.init Sink.n_layers (fun _ -> Hist.create ());
    open_spans = Array.make n [];
    open_count = Hashtbl.create 64;
    in_window = Hashtbl.create 64;
    abort_streak = Array.make n 0;
    streaks = Hist.create ();
    completed = 0;
    contended_spans = 0;
    contention_windows = 0;
  }

let opens_of t obj_id =
  Option.value (Hashtbl.find_opt t.open_count obj_id) ~default:0

let on_invoke t ~pid ~obj_id ~step =
  if pid >= 0 && pid < t.n then begin
    let sp = { os_obj = obj_id; os_invoke = step; os_contended = false } in
    let opens = opens_of t obj_id + 1 in
    Hashtbl.replace t.open_count obj_id opens;
    t.open_spans.(pid) <- sp :: t.open_spans.(pid);
    if opens >= 2 then begin
      (* Everyone currently in flight on this object is contended. *)
      Array.iter
        (List.iter (fun other ->
             if other.os_obj = obj_id then other.os_contended <- true))
        t.open_spans;
      if not (Option.value (Hashtbl.find_opt t.in_window obj_id) ~default:false)
      then begin
        Hashtbl.replace t.in_window obj_id true;
        t.contention_windows <- t.contention_windows + 1
      end
    end
  end

let on_respond t ~pid ~layer ~obj_id ~step ~aborted =
  if pid >= 0 && pid < t.n then begin
    (* Close the newest open span of [pid] on this object; skip silently if
       the sink was attached mid-operation and the invoke was never seen. *)
    let rec split acc = function
      | [] -> None
      | sp :: rest when sp.os_obj = obj_id ->
        Some (sp, List.rev_append acc rest)
      | sp :: rest -> split (sp :: acc) rest
    in
    (match split [] t.open_spans.(pid) with
    | None -> ()
    | Some (sp, rest) ->
      t.open_spans.(pid) <- rest;
      t.completed <- t.completed + 1;
      Hist.observe t.latency.(Sink.layer_index layer) (step - sp.os_invoke);
      if sp.os_contended then t.contended_spans <- t.contended_spans + 1;
      let opens = max 0 (opens_of t obj_id - 1) in
      Hashtbl.replace t.open_count obj_id opens;
      if opens = 0 then Hashtbl.replace t.in_window obj_id false);
    if aborted then t.abort_streak.(pid) <- t.abort_streak.(pid) + 1
    else if t.abort_streak.(pid) > 0 then begin
      Hist.observe t.streaks t.abort_streak.(pid);
      t.abort_streak.(pid) <- 0
    end
  end

(* Merge the closed-span aggregates of two tracers (latency histograms,
   completed streaks, contention totals). In-flight state — open spans and
   running abort streaks — is per-run and deliberately dropped: merging is
   for fan-out over independent runs, each of which has already finished. *)
let merge a b =
  if a.n <> b.n then invalid_arg "Span.merge: process counts differ";
  {
    n = a.n;
    latency = Array.init Sink.n_layers (fun i -> Hist.merge a.latency.(i) b.latency.(i));
    open_spans = Array.make a.n [];
    open_count = Hashtbl.create 64;
    in_window = Hashtbl.create 64;
    abort_streak = Array.make a.n 0;
    streaks = Hist.merge a.streaks b.streaks;
    completed = a.completed + b.completed;
    contended_spans = a.contended_spans + b.contended_spans;
    contention_windows = a.contention_windows + b.contention_windows;
  }

let latency_of t layer = t.latency.(Sink.layer_index layer)
let completed t = t.completed

let to_json t =
  Json.Obj
    [
      "completed", Json.Int t.completed;
      ( "latency",
        Json.Obj
          (List.map
             (fun layer ->
               Sink.layer_name layer, Hist.to_json (latency_of t layer))
             Sink.layers) );
      "abort_streaks", Hist.to_json t.streaks;
      ( "open_abort_streaks",
        Json.Arr (Array.to_list t.abort_streak |> List.map (fun s -> Json.Int s))
      );
      ( "contention",
        Json.Obj
          [
            "windows", Json.Int t.contention_windows;
            "contended_spans", Json.Int t.contended_spans;
          ] );
    ]
