(** Deterministic mergeable quantile sketch.

    Fixed-layout log-linear histogram (HDR style): values 0..15 are
    tracked exactly, larger values fall into 16 linear sub-buckets per
    power-of-two range, so every reported quantile is an upper bound on
    the true quantile with relative error at most 1/16 (6.25%). The
    sketch is seed-free and fixed-size (≤ {!n_buckets} counters);
    observation order never matters, and {!merge} is exact element-wise
    addition — associative and commutative — so sketches are byte-stable
    under {!Collector.merge}'s canonical-order fan-out. *)

type t

val n_buckets : int

val create : unit -> t

val observe : t -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val count : t -> int
val max_value : t -> int
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] is the smallest bucket upper bound covering at least
    [⌈q·count⌉] observations, clamped to the observed maximum; [0] when
    empty. *)

val p50 : t -> int
val p99 : t -> int
val p999 : t -> int

val merge : t -> t -> t
(** Fresh sketch holding both inputs' observations. Exactly associative
    and commutative. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
