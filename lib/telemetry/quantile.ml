(* Deterministic mergeable quantile sketch for step-valued observations.

   HDR-histogram-style log-linear buckets: values 0..15 are exact; a
   value v ≥ 16 lands in one of 16 linear sub-buckets of its power-of-two
   range [2^k, 2^(k+1)), so any reported quantile is an upper bound with
   relative error ≤ 1/16 (6.25%). The layout is fixed (no seeds, no
   adaptive compaction), so observation order never matters and merging
   is exact element-wise addition — a merged sketch is byte-identical to
   one that observed both streams in any order, which is what
   [Collector.merge]'s canonical-order fan-out contract needs. *)

let sub_bits = 4
let subs = 1 lsl sub_bits (* 16 linear sub-buckets per power of two *)

(* Exponents 4..61 cover every OCaml int the simulator can produce. *)
let n_buckets = subs + ((61 - sub_bits + 1) * subs)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable max : int;
  buckets : int array;
}

let create () = { count = 0; sum = 0; max = 0; buckets = Array.make n_buckets 0 }

let log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_of v =
  if v < subs then v
  else begin
    let k = log2 v in
    subs + ((k - sub_bits) * subs) + ((v lsr (k - sub_bits)) - subs)
  end

(* Largest value mapping to bucket [i] — the bound a quantile reports. *)
let bucket_hi i =
  if i < subs then i
  else begin
    let k = sub_bits + ((i - subs) / subs) in
    let sub = (i - subs) mod subs in
    ((subs + sub + 1) lsl (k - sub_bits)) - 1
  end

let observe t v =
  let v = max v 0 in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max then t.max <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let max_value t = t.max

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Smallest bucket upper bound covering at least ⌈q·count⌉ observations,
   clamped to the observed maximum. Exact for values < 16, within 1/16
   relative error above. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      min t.count (max 1 r)
    in
    let acc = ref 0 in
    let result = ref t.max in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           result := bucket_hi i;
           raise Exit
         end
       done
     with Exit -> ());
    min !result t.max
  end

let p50 t = quantile t 0.5
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

(* Element-wise sum: exactly associative and commutative, so any merge
   tree over the same multiset of observations yields the same sketch. *)
let merge a b =
  {
    count = a.count + b.count;
    sum = a.sum + b.sum;
    max = max a.max b.max;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let equal a b =
  a.count = b.count && a.sum = b.sum && a.max = b.max
  && Array.for_all2 ( = ) a.buckets b.buckets

let to_json t =
  Json.Obj
    [
      "count", Json.Int t.count;
      "max", Json.Int t.max;
      "mean", Json.Float (mean t);
      "p50", Json.Int (p50 t);
      "p99", Json.Int (p99 t);
      "p999", Json.Int (p999 t);
    ]

let pp fmt t =
  if t.count = 0 then Fmt.string fmt "no observations"
  else
    Fmt.pf fmt "n=%d p50≤%d p99≤%d p999≤%d max=%d" t.count (p50 t) (p99 t)
      (p999 t) t.max
