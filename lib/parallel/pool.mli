(** A dependency-free OCaml 5 [Domain] pool for run-level fan-out.

    The repo's workloads — nemesis campaign cells, (schedule, fault-plan)
    fuzz batches, explore root branches, the experiment registry — are
    independent seeded simulations. The pool runs them across domains
    with chunked work distribution and merges results in {e canonical
    task order}: output is byte-identical for any domain count, and one
    domain bypasses domains entirely (a plain sequential loop).

    Determinism contract: tasks must not share mutable state (each builds
    its own runtime/stack) and must be pure functions of their input —
    then [map] over [d] domains equals [map] over 1 domain, slot for
    slot. The simulation {e inside} each task stays single-threaded; the
    parallelism lives strictly between runs. See docs/PARALLELISM.md. *)

type t

type error = {
  task : int;  (** index of the failed task *)
  message : string;  (** [Printexc.to_string] of the escaped exception *)
  backtrace : string;
}

exception Task_failed of error list
(** Raised by the non-[try_] mappers after {e all} tasks finished, listing
    every failed task in index order: one raising task never kills the
    pool or the other tasks. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())], at least 1. *)

val create : ?domains:int -> unit -> t
(** [domains] defaults to {!default_domains}; clamped to [1, 64]. *)

val domains : t -> int

val run : t -> tasks:int -> (int -> 'a) -> ('a, error) result array
(** [run t ~tasks f] evaluates [f i] for [i] in [0, tasks) across the
    pool's domains and returns the results indexed by task. *)

val map : t -> 'b array -> ('b -> 'a) -> 'a array
(** [map t xs f] is [Array.map f xs] distributed over the pool. Raises
    {!Task_failed} (after all tasks completed) if any task raised. *)

val try_map : t -> 'b array -> ('b -> 'a) -> ('a, error) result array

val map_seeded : t -> int64 array -> (int64 -> 'a) -> 'a array
(** {!map} specialized to seed arrays — the canonical shape: derive one
    seed per task with {!Tbwf_sim.Rng.task_seeds}, fan out, merge in seed
    order. *)

val try_map_seeded :
  t -> int64 array -> (int64 -> 'a) -> ('a, error) result array
