(* A dependency-free OCaml 5 domain pool for run-level fan-out.

   Every parallel workload in this repo is embarrassingly parallel at the
   run level: independent seeded simulations (campaign cells, fuzz
   batches, explore root branches, experiments) that never share a
   runtime. The pool distributes the task indices over domains in chunks
   claimed from one atomic counter, captures per-task exceptions (a
   failed cell reports against its index, it does not kill the pool), and
   writes every result into the task's own slot of a preallocated array —
   so the output order is the canonical task order no matter which domain
   finished first, and the result is byte-identical for any domain count.

   One domain (or one task) bypasses domains entirely: the sequential
   path is a plain loop, with no spawn, no atomics and no join, so
   [~domains:1] reproduces single-threaded behaviour exactly.

   Each map call spawns its (at most [domains - 1]) worker domains
   afresh and joins them before returning. Runs here last milliseconds to
   minutes, so spawn cost is noise; keeping domains scoped to one call
   means an exception can never leak a wedged worker. *)

type t = { domains : int }

type error = { task : int; message : string; backtrace : string }

exception Task_failed of error list

let () =
  Printexc.register_printer (function
    | Task_failed errors ->
      Some
        (Printf.sprintf "Pool.Task_failed [%s]"
           (String.concat "; "
              (List.map
                 (fun e -> Printf.sprintf "task %d: %s" e.task e.message)
                 errors)))
    | _ -> None)

(* Leave headroom above the machine: hyper-oversubscribing domains only
   thrashes minor heaps. The default follows the runtime's
   recommendation, capped so CI boxes with huge core counts don't spawn
   a domain army for five tasks. *)
let max_domains = 64
let default_cap = 8

let default_domains () =
  max 1 (min default_cap (Domain.recommended_domain_count ()))

let create ?domains () =
  let d = match domains with Some d -> d | None -> default_domains () in
  { domains = max 1 (min max_domains d) }

let domains t = t.domains

let capture_error task exn =
  {
    task;
    message = Printexc.to_string exn;
    backtrace = Printexc.get_backtrace ();
  }

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    let exec i =
      results.(i) <-
        Some (try Ok (f i) with exn -> Error (capture_error i exn))
    in
    let d = min t.domains tasks in
    if d <= 1 then
      for i = 0 to tasks - 1 do
        exec i
      done
    else begin
      (* Chunked self-scheduling: ~4 chunks per domain balances load
         without contending on the counter once per task. Chunks are
         claimed dynamically but land in fixed slots, so distribution
         order never shows in the output. *)
      let chunk = max 1 ((tasks + (4 * d) - 1) / (4 * d)) in
      let next = Atomic.make 0 in
      let worker () =
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= tasks then continue := false
          else
            for i = lo to min tasks (lo + chunk) - 1 do
              exec i
            done
        done
      in
      let workers = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join workers
    end;
    Array.map
      (function Some r -> r | None -> assert false (* every slot filled *))
      results
  end

let errors_of results =
  Array.to_list results
  |> List.filter_map (function Error e -> Some e | Ok _ -> None)

let force results =
  match errors_of results with
  | [] -> Array.map (function Ok v -> v | Error _ -> assert false) results
  | errors -> raise (Task_failed errors)

let try_map t xs f = run t ~tasks:(Array.length xs) (fun i -> f xs.(i))
let map t xs f = force (try_map t xs f)
let try_map_seeded t seeds f = try_map t seeds f
let map_seeded t seeds f = map t seeds f
