(* Delta debugging (Zeller & Hildebrandt's ddmin, list specialization):
   given a failing input list, repeatedly try keeping only a chunk or
   deleting a chunk, at finer and finer granularity, until no single
   element can be removed without the failure disappearing. *)

let chunks ~granularity items =
  let len = List.length items in
  let size = max 1 ((len + granularity - 1) / granularity) in
  let rec split acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if n = size then split (List.rev current :: acc) [ x ] 1 rest
      else split acc (x :: current) (n + 1) rest
  in
  split [] [] 0 items

let ddmin ?(max_tests = 10_000) ~fails items =
  let tests = ref 0 in
  let fails candidate =
    incr tests;
    !tests <= max_tests && fails candidate
  in
  let rec reduce granularity items =
    let len = List.length items in
    if len <= 1 || granularity > len then items
    else begin
      let parts = chunks ~granularity items in
      (* Try each complement (input minus one chunk). *)
      let rec try_complements before = function
        | [] -> None
        | chunk :: after ->
          let candidate = List.concat (List.rev_append before after) in
          if candidate <> [] && fails candidate then Some candidate
          else try_complements (chunk :: before) after
      in
      (* Try each chunk alone (only worthwhile at granularity 2, where a
         chunk is half the input — classic ddmin "reduce to subset"). *)
      let rec try_subsets = function
        | [] -> None
        | chunk :: rest ->
          if List.length chunk < len && chunk <> [] && fails chunk then
            Some chunk
          else try_subsets rest
      in
      match try_subsets parts with
      | Some smaller -> reduce 2 smaller
      | None ->
        (match try_complements [] parts with
        | Some smaller -> reduce (max 2 (granularity - 1)) smaller
        | None ->
          if granularity >= len then items
          else reduce (min len (2 * granularity)) items)
    end
  in
  let reduced = if fails items then reduce 2 items else items in
  (* Final 1-minimality pass: drop single elements until a fixpoint. *)
  let rec one_pass items =
    let rec try_drop before = function
      | [] -> None
      | x :: after ->
        let candidate = List.rev_append before after in
        if candidate <> [] && fails candidate then Some candidate
        else try_drop (x :: before) after
    in
    match try_drop [] items with
    | Some smaller -> one_pass smaller
    | None -> items
  in
  one_pass reduced
