(** Counterexample shrinking by delta debugging.

    Used by {!Explore.fuzz} to reduce a failing schedule to a minimal one:
    the predicate re-executes the candidate schedule from scratch (runs are
    deterministic, so re-testing is exact, not statistical). *)

val ddmin : ?max_tests:int -> fails:('a list -> bool) -> 'a list -> 'a list
(** [ddmin ~fails items] returns a sublist of [items] (same relative
    order) on which [fails] still holds, such that removing any single
    remaining element makes [fails] false — Zeller's 1-minimality. If
    [fails items] is false, returns [items] unchanged. [max_tests]
    (default 10 000) bounds the number of predicate evaluations; on
    exhaustion the best list found so far is returned. *)
