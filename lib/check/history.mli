(** Operation histories extracted from run traces. *)

type op = {
  pid : int;
  op : Tbwf_sim.Value.t;
  result : Tbwf_sim.Value.t;
  invoke : int;  (** invocation step *)
  respond : int;  (** response step; [respond > invoke] always holds *)
}

val pp_op : Format.formatter -> op -> unit

val complete_ops : Tbwf_sim.Trace.t -> obj_name:string -> op list
(** All completed operations on the named object, in response order.
    Operations left pending at the end of the run are dropped (they are
    unconstrained for linearizability of the complete part). *)
