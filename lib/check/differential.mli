(** Differential verification of the two execution backends.

    The simulator's determinism contract (see {!Tbwf_sim.Backend}) is that
    the reference effects runtime and the compiled machine backend are
    observationally byte-identical: same {!Tbwf_sim.Trace.fingerprint},
    same telemetry snapshot, for every (system, seed, policy, fault
    configuration). This module runs the same stack once per backend and
    compares the observations, reporting the first divergent line when the
    contract is broken so a regression points at a step, not just a
    digest mismatch.

    Fault-plan differentials (nemesis campaigns) compose through
    [configure] — install crashes and pass the plan's abort policies —
    since this library sits below [Tbwf_nemesis] in the dependency
    order. *)

open Tbwf_sim

type observation = {
  fingerprint : string;  (** {!Trace.fingerprint} of the finished run *)
  telemetry : string option;
      (** {!Tbwf_telemetry.Collector.snapshot_string}, when a collector
          was attached *)
}

val observe :
  ?backend:Backend.t ->
  ?seed:int64 ->
  ?telemetry:bool ->
  ?qa_policy:Tbwf_registers.Abort_policy.t ->
  ?mesh_policy:Tbwf_registers.Abort_policy.t ->
  ?configure:(Tbwf_system.System.stack -> unit) ->
  ?policy:(unit -> Policy.t) ->
  ?steps:int ->
  n:int ->
  Tbwf_system.System.id ->
  observation
(** Build the system on [backend] (default [Reference]), apply
    [configure] (default nothing — use it to install crashes or record
    extra probes), run [steps] (default 4000) under a fresh [policy]
    (default round-robin) and return the run's observation. [policy] is a
    thunk because policies are stateful: each backend must get its own. *)

type verdict =
  | Agree
  | Diverge of {
      field : string;  (** ["fingerprint"] or ["telemetry"] *)
      line : int;  (** 1-based line of first difference *)
      reference : string;  (** that line on the reference backend *)
      compiled : string;  (** that line on the compiled backend *)
    }

val compare_observations : observation -> observation -> verdict
(** [compare_observations reference compiled]. *)

val check :
  ?seed:int64 ->
  ?telemetry:bool ->
  ?qa_policy:Tbwf_registers.Abort_policy.t ->
  ?mesh_policy:Tbwf_registers.Abort_policy.t ->
  ?configure:(Tbwf_system.System.stack -> unit) ->
  ?policy:(unit -> Policy.t) ->
  ?steps:int ->
  n:int ->
  Tbwf_system.System.id ->
  verdict
(** Run the same configuration on both backends and compare. *)

val pp_verdict : Format.formatter -> verdict -> unit
