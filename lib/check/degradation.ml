open Tbwf_sim

type emergent = {
  em_replicas : int;
  em_live : int list;
  em_reach : (int * int list) list;
}

type prediction = {
  pred_n : int;
  pred_timely : int list;
  pred_from : int;
  pred_bound : int;
  pred_emergent : emergent option;
}

let emergent_majority em = (em.em_replicas / 2) + 1

let emergent_quorate em pid =
  match List.assoc_opt pid em.em_reach with
  | None -> false
  | Some rs -> List.length rs >= emergent_majority em

type process_verdict = {
  dv_pid : int;
  dv_predicted_timely : bool;
  dv_quorate : bool option;
  dv_sched_timely : bool option;
  dv_tail_ops : int;
  dv_tail_steps : int;
  dv_ok : bool;
}

type verdict = {
  holds : bool;
  from_step : int;
  processes : process_verdict list;
}

let tail_rate_denominator = 1_500

let required_tail_ops ~n ~tail = max 2 (tail / (tail_rate_denominator * (n + 1)))

let tail_steps trace ~pid ~from_step =
  let len = Trace.length trace in
  let count = ref 0 in
  for i = from_step to len - 1 do
    if Trace.pid_at trace i = pid then incr count
  done;
  !count

let check ?(min_ops = 1) ?(require_sched_timely = true) ~prediction ~trace
    ~completed_before ~completed_after () =
  let p = prediction in
  if Array.length completed_before <> p.pred_n
     || Array.length completed_after <> p.pred_n
  then invalid_arg "Degradation.check: completed arrays must have length n";
  let processes =
    List.init p.pred_n (fun pid ->
        (* On a message-passing substrate the process's register
           timeliness is emergent: a timely schedule is not enough, it
           must also reach a live majority of replicas over timely
           links, or its quorum operations legitimately stall. *)
        let quorate =
          Option.map (fun em -> emergent_quorate em pid) p.pred_emergent
        in
        let predicted_timely =
          List.mem pid p.pred_timely && quorate <> Some false
        in
        let tail_ops = completed_after.(pid) - completed_before.(pid) in
        let steps = tail_steps trace ~pid ~from_step:p.pred_from in
        if not predicted_timely then
          (* Exempt: the plan withdrew this process's guarantee (crashed or
             made untimely). It may stall; nothing to check. *)
          {
            dv_pid = pid;
            dv_predicted_timely = false;
            dv_quorate = quorate;
            dv_sched_timely = None;
            dv_tail_ops = tail_ops;
            dv_tail_steps = steps;
            dv_ok = true;
          }
        else begin
          let sched_timely =
            Timeliness.timely trace ~n:p.pred_n ~p:pid ~from_step:p.pred_from
              ~bound:p.pred_bound
          in
          let ok =
            tail_ops >= min_ops
            && ((not require_sched_timely) || sched_timely)
          in
          {
            dv_pid = pid;
            dv_predicted_timely = true;
            dv_quorate = quorate;
            dv_sched_timely = Some sched_timely;
            dv_tail_ops = tail_ops;
            dv_tail_steps = steps;
            dv_ok = ok;
          }
        end)
  in
  {
    holds = List.for_all (fun v -> v.dv_ok) processes;
    from_step = p.pred_from;
    processes;
  }

module Online = struct
  (* The same contract, decided incrementally from the sink stream instead
     of post-hoc from the recorded trace. The gap bookkeeping mirrors
     [Timeliness.max_gap] move for move: [cur.(p).(q)] counts q's steps
     since p's last step (or since the tail boundary if p has not stepped
     yet), [big.(p).(q)] holds the largest already-flushed gap, and a step
     by p flushes its whole row. The verdict is then assembled with
     exactly [check]'s logic, so for any finished run
     [verdict t = check ~prediction ~trace ...] field for field — the
     differential test in [test/test_nemesis.ml] enforces this across the
     full campaign × system matrix on both substrates. *)

  type t = {
    o_prediction : prediction;
    o_min_ops : int;
    o_require_sched_timely : bool;
    o_completed : int array;  (* per-pid completions, whole run *)
    mutable o_before : int array option;
        (* [o_completed] snapshotted at the first event with
           step ≥ pred_from — the online analogue of [completed_before] *)
    o_own_steps : int array;  (* per-pid own steps in the tail *)
    o_cur : int array array;  (* o_cur.(p).(q): q steps since p last stepped *)
    o_big : int array array;  (* largest flushed gap per (p, q) pair *)
    o_stepped : bool array;  (* has p stepped in the tail at all? *)
  }

  let create ?(min_ops = 1) ?(require_sched_timely = true) prediction =
    let n = prediction.pred_n in
    {
      o_prediction = prediction;
      o_min_ops = min_ops;
      o_require_sched_timely = require_sched_timely;
      o_completed = Array.make n 0;
      o_before = None;
      o_own_steps = Array.make n 0;
      o_cur = Array.init n (fun _ -> Array.make n 0);
      o_big = Array.init n (fun _ -> Array.make n 0);
      o_stepped = Array.make n false;
    }

  (* Snapshot the tail boundary the moment any event at or past
     [pred_from] arrives. The runtime emits [on_step] before the step's
     own invokes/responds/signals, so the first such event is the
     boundary step itself — but every handler guards, in case a sink is
     fed a partial stream. *)
  let roll t ~step =
    if t.o_before = None && step >= t.o_prediction.pred_from then
      t.o_before <- Some (Array.copy t.o_completed)

  let on_step t ~step ~pid =
    roll t ~step;
    let n = t.o_prediction.pred_n in
    if step >= t.o_prediction.pred_from && pid >= 0 && pid < n then begin
      t.o_own_steps.(pid) <- t.o_own_steps.(pid) + 1;
      (* This step widens every other process's current gap... *)
      for p = 0 to n - 1 do
        if p <> pid then t.o_cur.(p).(pid) <- t.o_cur.(p).(pid) + 1
      done;
      (* ...and flushes [pid]'s own row, exactly like [max_gap]'s
         p-step case. *)
      let cur = t.o_cur.(pid) and big = t.o_big.(pid) in
      for q = 0 to n - 1 do
        if q <> pid then begin
          if cur.(q) > big.(q) then big.(q) <- cur.(q);
          cur.(q) <- 0
        end
      done;
      t.o_stepped.(pid) <- true
    end

  let on_signal t ~step ~pid signal =
    roll t ~step;
    match signal with
    | Sink.Op_complete ->
      if pid >= 0 && pid < t.o_prediction.pred_n then
        t.o_completed.(pid) <- t.o_completed.(pid) + 1
    | _ -> ()

  let sink t =
    {
      Sink.active = true;
      on_step = (fun ~step ~pid ~layer:_ -> on_step t ~step ~pid);
      on_invoke =
        (fun ~step ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ ->
          roll t ~step);
      on_respond =
        (fun ~step ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ ~result:_ ->
          roll t ~step);
      on_signal = (fun ~step ~pid s -> on_signal t ~step ~pid s);
    }

  (* [Timeliness.q_timely] replayed over the matrices: the final flush is
     [max big cur]; a p that never stepped yields the vacuous [Some 0]
     only if q never stepped either (its current gap is still 0). *)
  let pair_timely t ~p ~q =
    if t.o_stepped.(p) then
      max t.o_big.(p).(q) t.o_cur.(p).(q) <= t.o_prediction.pred_bound
    else t.o_cur.(p).(q) = 0

  let sched_timely t ~pid =
    let n = t.o_prediction.pred_n in
    let ok = ref true in
    for q = 0 to n - 1 do
      if q <> pid && not (pair_timely t ~p:pid ~q) then ok := false
    done;
    !ok

  let verdict t =
    let p = t.o_prediction in
    let before =
      (* No event ever reached the tail: the tail is empty and the
         boundary counters are simply the final counters. *)
      match t.o_before with Some b -> b | None -> t.o_completed
    in
    let processes =
      List.init p.pred_n (fun pid ->
          let quorate =
            Option.map (fun em -> emergent_quorate em pid) p.pred_emergent
          in
          let predicted_timely =
            List.mem pid p.pred_timely && quorate <> Some false
          in
          let tail_ops = t.o_completed.(pid) - before.(pid) in
          let steps = t.o_own_steps.(pid) in
          if not predicted_timely then
            {
              dv_pid = pid;
              dv_predicted_timely = false;
              dv_quorate = quorate;
              dv_sched_timely = None;
              dv_tail_ops = tail_ops;
              dv_tail_steps = steps;
              dv_ok = true;
            }
          else begin
            let sched_timely = sched_timely t ~pid in
            let ok =
              tail_ops >= t.o_min_ops
              && ((not t.o_require_sched_timely) || sched_timely)
            in
            {
              dv_pid = pid;
              dv_predicted_timely = true;
              dv_quorate = quorate;
              dv_sched_timely = Some sched_timely;
              dv_tail_ops = tail_ops;
              dv_tail_steps = steps;
              dv_ok = ok;
            }
          end)
    in
    {
      holds = List.for_all (fun v -> v.dv_ok) processes;
      from_step = p.pred_from;
      processes;
    }
end

let timely_tail_ops verdict =
  List.filter_map
    (fun v -> if v.dv_predicted_timely then Some v.dv_tail_ops else None)
    verdict.processes

let min_timely_tail_ops verdict =
  match timely_tail_ops verdict with
  | [] -> None
  | ops -> Some (List.fold_left min max_int ops)

module Json = Tbwf_telemetry.Json

let process_json v =
  let opt_bool = function None -> Json.Null | Some b -> Json.Bool b in
  Json.Obj
    [
      "pid", Json.Int v.dv_pid;
      "predicted_timely", Json.Bool v.dv_predicted_timely;
      "quorate", opt_bool v.dv_quorate;
      "sched_timely", opt_bool v.dv_sched_timely;
      "tail_ops", Json.Int v.dv_tail_ops;
      "tail_steps", Json.Int v.dv_tail_steps;
      "ok", Json.Bool v.dv_ok;
    ]

let verdict_json verdict =
  Json.Obj
    [
      "holds", Json.Bool verdict.holds;
      "from_step", Json.Int verdict.from_step;
      "processes", Json.Arr (List.map process_json verdict.processes);
    ]

let pp_process fmt v =
  Fmt.pf fmt "p%d %s: %d ops in %d own steps of the tail%s%s" v.dv_pid
    (if v.dv_predicted_timely then
       match v.dv_quorate with
       | Some true -> "timely+quorate"
       | Some false | None -> "timely "
     else
       match v.dv_quorate with
       | Some false -> "exempt(no-quorum)"
       | Some true | None -> "exempt ")
    v.dv_tail_ops v.dv_tail_steps
    (match v.dv_sched_timely with
    | Some false -> " [schedule not timely!]"
    | Some true | None -> "")
    (if v.dv_ok then "" else " FAIL")

let pp_verdict fmt verdict =
  Fmt.pf fmt "degradation contract %s from step %d@."
    (if verdict.holds then "HOLDS" else "VIOLATED")
    verdict.from_step;
  List.iter (fun v -> Fmt.pf fmt "  %a@." pp_process v) verdict.processes
