open Tbwf_sim

type emergent = {
  em_replicas : int;
  em_live : int list;
  em_reach : (int * int list) list;
}

type prediction = {
  pred_n : int;
  pred_timely : int list;
  pred_from : int;
  pred_bound : int;
  pred_emergent : emergent option;
}

let emergent_majority em = (em.em_replicas / 2) + 1

let emergent_quorate em pid =
  match List.assoc_opt pid em.em_reach with
  | None -> false
  | Some rs -> List.length rs >= emergent_majority em

type process_verdict = {
  dv_pid : int;
  dv_predicted_timely : bool;
  dv_quorate : bool option;
  dv_sched_timely : bool option;
  dv_tail_ops : int;
  dv_tail_steps : int;
  dv_ok : bool;
}

type verdict = {
  holds : bool;
  from_step : int;
  processes : process_verdict list;
}

let tail_rate_denominator = 1_500

let required_tail_ops ~n ~tail = max 2 (tail / (tail_rate_denominator * (n + 1)))

let tail_steps trace ~pid ~from_step =
  let len = Trace.length trace in
  let count = ref 0 in
  for i = from_step to len - 1 do
    if Trace.pid_at trace i = pid then incr count
  done;
  !count

let check ?(min_ops = 1) ?(require_sched_timely = true) ~prediction ~trace
    ~completed_before ~completed_after () =
  let p = prediction in
  if Array.length completed_before <> p.pred_n
     || Array.length completed_after <> p.pred_n
  then invalid_arg "Degradation.check: completed arrays must have length n";
  let processes =
    List.init p.pred_n (fun pid ->
        (* On a message-passing substrate the process's register
           timeliness is emergent: a timely schedule is not enough, it
           must also reach a live majority of replicas over timely
           links, or its quorum operations legitimately stall. *)
        let quorate =
          Option.map (fun em -> emergent_quorate em pid) p.pred_emergent
        in
        let predicted_timely =
          List.mem pid p.pred_timely && quorate <> Some false
        in
        let tail_ops = completed_after.(pid) - completed_before.(pid) in
        let steps = tail_steps trace ~pid ~from_step:p.pred_from in
        if not predicted_timely then
          (* Exempt: the plan withdrew this process's guarantee (crashed or
             made untimely). It may stall; nothing to check. *)
          {
            dv_pid = pid;
            dv_predicted_timely = false;
            dv_quorate = quorate;
            dv_sched_timely = None;
            dv_tail_ops = tail_ops;
            dv_tail_steps = steps;
            dv_ok = true;
          }
        else begin
          let sched_timely =
            Timeliness.timely trace ~n:p.pred_n ~p:pid ~from_step:p.pred_from
              ~bound:p.pred_bound
          in
          let ok =
            tail_ops >= min_ops
            && ((not require_sched_timely) || sched_timely)
          in
          {
            dv_pid = pid;
            dv_predicted_timely = true;
            dv_quorate = quorate;
            dv_sched_timely = Some sched_timely;
            dv_tail_ops = tail_ops;
            dv_tail_steps = steps;
            dv_ok = ok;
          }
        end)
  in
  {
    holds = List.for_all (fun v -> v.dv_ok) processes;
    from_step = p.pred_from;
    processes;
  }

let timely_tail_ops verdict =
  List.filter_map
    (fun v -> if v.dv_predicted_timely then Some v.dv_tail_ops else None)
    verdict.processes

let min_timely_tail_ops verdict =
  match timely_tail_ops verdict with
  | [] -> None
  | ops -> Some (List.fold_left min max_int ops)

let pp_process fmt v =
  Fmt.pf fmt "p%d %s: %d ops in %d own steps of the tail%s%s" v.dv_pid
    (if v.dv_predicted_timely then
       match v.dv_quorate with
       | Some true -> "timely+quorate"
       | Some false | None -> "timely "
     else
       match v.dv_quorate with
       | Some false -> "exempt(no-quorum)"
       | Some true | None -> "exempt ")
    v.dv_tail_ops v.dv_tail_steps
    (match v.dv_sched_timely with
    | Some false -> " [schedule not timely!]"
    | Some true | None -> "")
    (if v.dv_ok then "" else " FAIL")

let pp_verdict fmt verdict =
  Fmt.pf fmt "degradation contract %s from step %d@."
    (if verdict.holds then "HOLDS" else "VIOLATED")
    verdict.from_step;
  List.iter (fun v -> Fmt.pf fmt "  %a@." pp_process v) verdict.processes
