open Tbwf_sim
module System = Tbwf_system.System

type observation = {
  fingerprint : string;
  telemetry : string option;
}

let observe ?(backend = Backend.Reference) ?seed ?(telemetry = false)
    ?qa_policy ?mesh_policy ?(configure = fun (_ : System.stack) -> ())
    ?(policy = fun () -> Policy.round_robin ()) ?(steps = 4_000) ~n id =
  let stack =
    System.build ~backend ?seed ?qa_policy ?mesh_policy ~telemetry ~n id
  in
  configure stack;
  let rt = stack.System.rt in
  Runtime.run rt ~policy:(policy ()) ~steps;
  Runtime.stop rt;
  {
    fingerprint = Trace.fingerprint (Runtime.trace rt);
    telemetry =
      Option.map Tbwf_telemetry.Collector.snapshot_string
        stack.System.telemetry;
  }

type verdict =
  | Agree
  | Diverge of {
      field : string;
      line : int;
      reference : string;
      compiled : string;
    }

(* First differing line, so a broken contract names the step or snapshot
   field where the backends part ways instead of just "digests differ". *)
let first_diff ~field a b =
  if String.equal a b then Agree
  else begin
    let la = String.split_on_char '\n' a in
    let lb = String.split_on_char '\n' b in
    let rec walk i la lb =
      match la, lb with
      | [], [] -> Agree
      | x :: la', y :: lb' ->
        if String.equal x y then walk (i + 1) la' lb'
        else Diverge { field; line = i; reference = x; compiled = y }
      | x :: _, [] ->
        Diverge { field; line = i; reference = x; compiled = "<end>" }
      | [], y :: _ ->
        Diverge { field; line = i; reference = "<end>"; compiled = y }
    in
    walk 1 la lb
  end

let compare_observations reference compiled =
  match first_diff ~field:"fingerprint" reference.fingerprint
          compiled.fingerprint
  with
  | Diverge _ as d -> d
  | Agree -> (
    match reference.telemetry, compiled.telemetry with
    | Some a, Some b -> first_diff ~field:"telemetry" a b
    | None, None -> Agree
    | Some _, None ->
      Diverge
        {
          field = "telemetry";
          line = 0;
          reference = "<collector attached>";
          compiled = "<no collector>";
        }
    | None, Some _ ->
      Diverge
        {
          field = "telemetry";
          line = 0;
          reference = "<no collector>";
          compiled = "<collector attached>";
        })

let check ?seed ?telemetry ?qa_policy ?mesh_policy ?configure ?policy ?steps
    ~n id =
  let run backend =
    observe ~backend ?seed ?telemetry ?qa_policy ?mesh_policy ?configure
      ?policy ?steps ~n id
  in
  compare_observations (run Backend.Reference) (run Backend.Compiled)

let pp_verdict fmt = function
  | Agree -> Fmt.string fmt "backends agree"
  | Diverge { field; line; reference; compiled } ->
    Fmt.pf fmt "backends diverge in %s at line %d:@ reference: %s@ compiled: %s"
      field line reference compiled
