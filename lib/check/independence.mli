(** Step independence for partial-order reduction.

    Exhaustive exploration only needs to distinguish schedules up to
    commuting adjacent independent steps (Mazurkiewicz traces): if two
    steps of different processes touch disjoint sets of shared objects — or
    only read the objects they share — executing them in either order
    reaches the same state, so only one order needs exploring.

    Footprints are {e observed}, not predicted: the explorer executes a
    step, reads the operation events it recorded in the trace
    ({!Tbwf_sim.Trace.ops_from}), and classifies them with
    {!Tbwf_registers.Footprint}. Because a process's next action is a
    function of its local state alone, the footprint observed for a
    process's next step stays valid at every state where that process has
    not moved — the property sleep sets rely on. A step that recorded no
    operation events (a pure local step: yield, task completion) has the
    empty footprint and commutes with everything. *)

type access = { obj_id : int; kind : Tbwf_registers.Footprint.kind }

type footprint = access list
(** Sorted by [obj_id], at most one access per object, write dominating. *)

val empty : footprint

val of_events : Tbwf_sim.Trace.op_event list -> footprint
(** Footprint of one step, from the trace events that step recorded. *)

val commute : footprint -> footprint -> bool
(** True iff no shared object with a write on either side. Commuting steps
    are independent: they can be swapped without changing the run. *)

val pp : Format.formatter -> footprint -> unit
