open Tbwf_sim

type spec = {
  initial : Value.t;
  apply : Value.t -> Value.t -> (Value.t * Value.t) option;
}

let register_spec ~init =
  {
    initial = init;
    apply =
      (fun state op ->
        match op with
        | Value.Pair (Str "read", _) -> Some (state, state)
        | Value.Pair (Str "write", v) -> Some (v, Value.Unit)
        | _ -> None);
  }

let counter_spec =
  {
    initial = Value.Int 0;
    apply =
      (fun state op ->
        match state, op with
        | Value.Int n, Value.Str "inc" -> Some (Value.Int (n + 1), Value.Int n)
        | Value.Int _, Value.Pair (Str "read", _) -> Some (state, state)
        | _ -> None);
  }

(* Depth-first search over linearization prefixes with memoization on
   (remaining-operation set, sequential state). An operation is a candidate
   for the next linearization slot iff no remaining operation precedes it in
   real time (responded before its invocation). *)
let check spec history =
  let ops = Array.of_list history in
  let count = Array.length ops in
  if count > 62 then
    invalid_arg "Linearizability.check: history too long (max 62 ops)";
  let full_mask = if count = 64 then -1 else (1 lsl count) - 1 in
  let seen : (int * Value.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let precedes a b = ops.(a).History.respond < ops.(b).History.invoke in
  let rec search remaining state =
    if remaining = 0 then true
    else if Hashtbl.mem seen (remaining, state) then false
    else begin
      Hashtbl.replace seen (remaining, state) ();
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < count do
        let candidate = !i in
        incr i;
        if remaining land (1 lsl candidate) <> 0 then begin
          let minimal = ref true in
          for j = 0 to count - 1 do
            if
              j <> candidate
              && remaining land (1 lsl j) <> 0
              && precedes j candidate
            then minimal := false
          done;
          if !minimal then
            match spec.apply state ops.(candidate).History.op with
            | Some (state', result)
              when Value.equal result ops.(candidate).History.result ->
              if search (remaining land lnot (1 lsl candidate)) state' then
                found := true
            | Some _ | None -> ()
        end
      done;
      !found
    end
  in
  search full_mask spec.initial
