(** A Wing–Gong linearizability checker for small histories.

    Searches for a total order of the completed operations that (a) respects
    real-time precedence (op A before op B whenever A responded before B was
    invoked) and (b) is legal for the given sequential specification.
    Exponential in the worst case; intended for the short histories the test
    suite generates (tens of operations). *)

type spec = {
  initial : Tbwf_sim.Value.t;  (** initial sequential state *)
  apply :
    Tbwf_sim.Value.t ->
    Tbwf_sim.Value.t ->
    (Tbwf_sim.Value.t * Tbwf_sim.Value.t) option;
      (** [apply state op] is [Some (state', result)], or [None] if [op] is
          not applicable in [state] *)
}

val register_spec : init:Tbwf_sim.Value.t -> spec
(** Sequential read/write register: a read returns the last written value. *)

val counter_spec : spec
(** Sequential counter: op [Str "inc"] returns the pre-increment value;
    [read] returns the current value. *)

val check : spec -> History.op list -> bool
(** True iff the history is linearizable with respect to [spec]. *)
