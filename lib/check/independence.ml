open Tbwf_sim
open Tbwf_registers

type access = { obj_id : int; kind : Footprint.kind }

(* A step's footprint: the accesses it performed, deduplicated with writes
   dominating reads per object. Kept as a small sorted list — steps touch
   at most a handful of objects (typically a respond plus the next invoke). *)
type footprint = access list

let empty = []

let add footprint access =
  let rec insert = function
    | [] -> [ access ]
    | a :: rest when a.obj_id = access.obj_id ->
      let kind =
        match a.kind, access.kind with
        | Footprint.Read, Footprint.Read -> Footprint.Read
        | _ -> Footprint.Write
      in
      { a with kind } :: rest
    | a :: rest when a.obj_id < access.obj_id -> a :: insert rest
    | rest -> access :: rest
  in
  insert footprint

let of_events events =
  List.fold_left
    (fun acc (ev : Trace.op_event) ->
      add acc
        {
          obj_id = ev.Trace.obj_id;
          kind = Footprint.kind_of_event ~phase:ev.Trace.phase ev.Trace.op;
        })
    empty events

(* Two footprints commute iff no object is shared with a write on either
   side — i.e. steps touching different registers, or both merely reading
   the registers they share, can be swapped without changing any state. *)
let commute a b =
  let conflict x y =
    x.obj_id = y.obj_id
    && not (x.kind = Footprint.Read && y.kind = Footprint.Read)
  in
  not (List.exists (fun x -> List.exists (conflict x) b) a)

let pp fmt footprint =
  Fmt.pf fmt "{%a}"
    (Fmt.list ~sep:(Fmt.any ",")
       (fun fmt a -> Fmt.pf fmt "%d%a" a.obj_id Footprint.pp_kind a.kind))
    footprint
