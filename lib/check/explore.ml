open Tbwf_sim

type outcome = { schedules : int; violation : int list option }

(* Execute one script on a fresh runtime: set up the scenario, run under
   the script policy, evaluate the invariant, and report the branching
   factors observed (number of runnable choices at each scripted step). *)
let run_script ~max_steps ~scenario ~make_runtime script =
  let rt = make_runtime () in
  let invariant = scenario rt in
  let policy = Policy.of_script script in
  Runtime.run rt ~policy ~steps:max_steps;
  let branching = Policy.branching_of_script policy in
  let holds = invariant () in
  Runtime.stop rt;
  holds, branching

(* Depth-first search over choice scripts. Every prefix is itself executed
   and checked (so the invariant must be a safety predicate, true in every
   reachable state, not only at quiescence). A prefix is extended when the
   run consumed all its choices and still had runnable tasks — detected by
   probing with one extra choice and seeing whether it gets used. *)
let exhaustive ?(max_schedules = 200_000) ~max_steps ~scenario ~make_runtime () =
  let schedules = ref 0 in
  let violation = ref None in
  let rec explore prefix =
    if !violation = None then begin
      incr schedules;
      if !schedules > max_schedules then
        failwith "Explore.exhaustive: schedule budget exceeded";
      let script = List.rev prefix in
      let holds, branching =
        run_script ~max_steps ~scenario ~make_runtime script
      in
      if not holds then violation := Some script
      else if
        List.length branching = List.length script
        && List.length script < max_steps
      then begin
        let holds', branching' =
          run_script ~max_steps ~scenario ~make_runtime (script @ [ 0 ])
        in
        if List.length branching' > List.length script then
          if not holds' then violation := Some (script @ [ 0 ])
          else begin
            let k = List.nth branching' (List.length script) in
            for c = 0 to k - 1 do
              explore (c :: prefix)
            done
          end
      end
    end
  in
  explore [];
  { schedules = !schedules; violation = !violation }
