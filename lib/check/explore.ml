open Tbwf_sim

type outcome = {
  schedules : int;
  violation : int list option;
  exhausted : bool;
}

type fuzz_outcome = {
  fuzz_runs : int;
  counterexample : int list option;
  shrunk_from : int option;
  exhausted_batch : (int * int64) option;
}

(* --- replay ------------------------------------------------------------- *)

let replay_checked ~max_steps ~scenario ~make_runtime pids =
  let rt = make_runtime () in
  let invariant = scenario rt in
  let ok = ref (invariant ()) in
  let steps = ref 0 in
  let mismatches = ref 0 in
  List.iter
    (fun pid ->
      if !ok && !steps < max_steps then begin
        let runnable = Runtime.runnable_pids rt in
        if pid >= 0 && Array.exists (fun p -> p = pid) runnable then begin
          Runtime.step rt ~pid;
          incr steps;
          if not (invariant ()) then ok := false
        end
        else if pid >= 0 then incr mismatches
      end)
    pids;
  Runtime.stop rt;
  !ok, !mismatches

let replay ~max_steps ~scenario ~make_runtime pids =
  fst (replay_checked ~max_steps ~scenario ~make_runtime pids)

(* --- incremental DFS with sleep-set partial-order reduction -------------- *)

module IntMap = Map.Make (Int)

(* One level of the DFS stack: the choice point reached after executing the
   [f_cur] branches of all shallower frames. [f_sleep] is fixed when the
   frame is created (inherited from the parent per the sleep-set rule);
   [f_done] accumulates fully-explored sibling branches together with their
   observed access footprints. *)
type frame = {
  f_runnable : int array;
  f_sleep : Independence.footprint IntMap.t;
  mutable f_done : (int * Independence.footprint) list;
  mutable f_cur : int;
  mutable f_cur_fp : Independence.footprint;
}

(* The full DFS, optionally restricted to one root branch: [root = Some
   (pid, prior)] pins the depth-0 frame to [pid] with the footprints of
   the already-explored earlier root branches pre-seeded as its [f_done]
   — exactly the state the sequential search has when it starts that
   branch's subtree, which is what makes the root-split parallel search
   below explore the same reduced tree, branch for branch. *)
let exhaustive_dfs ?(max_schedules = 200_000) ?(por = true) ?root ~max_steps
    ~scenario ~make_runtime () =
  if max_steps < 1 then invalid_arg "Explore.exhaustive: max_steps < 1";
  let schedules = ref 0 in
  let violation = ref None in
  let exhausted = ref true in
  let stack : frame option array = Array.make max_steps None in
  let stack_len = ref 0 in
  let frame d =
    match stack.(d) with Some f -> f | None -> assert false
  in
  (match root with
  | None -> ()
  | Some (pid, prior) ->
    stack.(0) <-
      Some
        {
          f_runnable = [| pid |];
          f_sleep = IntMap.empty;
          f_done = prior;
          f_cur = pid;
          f_cur_fp = Independence.empty;
        };
    stack_len := 1);
  (* Sleep set for the state reached by executing [f.f_cur] from [f]'s
     state: processes whose pending step is independent of every step taken
     since they were put to sleep stay asleep — exploring them here would
     only permute commuting steps of an already-explored schedule. *)
  let child_sleep d =
    if (not por) || d = 0 then IntMap.empty
    else begin
      let p = frame (d - 1) in
      let merged =
        List.fold_left
          (fun m (pid, fp) -> IntMap.add pid fp m)
          p.f_sleep p.f_done
      in
      IntMap.filter
        (fun _ fp -> Independence.commute fp p.f_cur_fp)
        merged
    end
  in
  (* Execute one complete schedule: replay the branch recorded in each
     stack frame, then extend depth-first (always picking the smallest
     non-sleeping runnable pid) until quiescence, the step bound, or a
     fully-slept state. The invariant is evaluated after every step, so a
     single execution checks every prefix of the schedule — this is what
     makes the DFS incremental compared to running each prefix as its own
     schedule. *)
  let execute () =
    incr schedules;
    let rt = make_runtime () in
    let invariant = scenario rt in
    let trace = Runtime.trace rt in
    let fail () = violation := Some (Trace.schedule trace) in
    let stop_run = ref false in
    if not (invariant ()) then begin
      fail ();
      stop_run := true
    end;
    let depth = ref 0 in
    (* replay the committed prefix *)
    while (not !stop_run) && !depth < !stack_len do
      let f = frame !depth in
      let mark = Trace.n_ops trace in
      Runtime.step rt ~pid:f.f_cur;
      f.f_cur_fp <- Independence.of_events (Trace.ops_from trace mark);
      incr depth;
      if not (invariant ()) then begin
        fail ();
        stop_run := true
      end
    done;
    (* extend to a maximal schedule *)
    while (not !stop_run) && !depth < max_steps do
      let runnable = Runtime.runnable_pids rt in
      if Array.length runnable = 0 then stop_run := true
      else begin
        let sleep = child_sleep !depth in
        match
          Array.to_list runnable
          |> List.find_opt (fun pid -> not (IntMap.mem pid sleep))
        with
        | None -> stop_run := true (* every enabled step is asleep *)
        | Some pid ->
          let f =
            {
              f_runnable = runnable;
              f_sleep = sleep;
              f_done = [];
              f_cur = pid;
              f_cur_fp = Independence.empty;
            }
          in
          stack.(!depth) <- Some f;
          stack_len := !depth + 1;
          let mark = Trace.n_ops trace in
          Runtime.step rt ~pid;
          f.f_cur_fp <- Independence.of_events (Trace.ops_from trace mark);
          incr depth;
          if not (invariant ()) then begin
            fail ();
            stop_run := true
          end
      end
    done;
    Runtime.stop rt
  in
  (* Move the deepest frame to its next unexplored branch, popping frames
     whose branches are all explored or asleep. *)
  let rec backtrack () =
    if !stack_len = 0 then false
    else begin
      let f = frame (!stack_len - 1) in
      f.f_done <- (f.f_cur, f.f_cur_fp) :: f.f_done;
      let next =
        Array.to_list f.f_runnable
        |> List.find_opt (fun pid ->
               (not (List.mem_assoc pid f.f_done))
               && not (IntMap.mem pid f.f_sleep))
      in
      match next with
      | Some pid ->
        f.f_cur <- pid;
        true
      | None ->
        stack.(!stack_len - 1) <- None;
        stack_len := !stack_len - 1;
        backtrack ()
    end
  in
  let continue_search = ref true in
  while !continue_search && !violation = None do
    if !schedules >= max_schedules then begin
      exhausted := false;
      continue_search := false
    end
    else begin
      execute ();
      if !violation = None then continue_search := backtrack ()
    end
  done;
  { schedules = !schedules; violation = !violation; exhausted = !exhausted }

(* --- root-split parallel exploration -------------------------------------- *)

(* Merge per-root-branch outcomes into the sequential search's outcome.
   The sequential DFS explores branch 0's subtree to completion, then
   branch 1's, and so on, counting schedules globally against
   [max_schedules] and stopping at the first violation. Each parallel
   branch task ran the same subtree with the full budget, so replaying
   the branch order with a simulated global budget reproduces the
   sequential outcome exactly — including which violation wins (lowest
   branch, not first-to-finish) — except when the budget bites partway
   through a branch, where the merged outcome is clamped to the
   sequential one (budget reached, no violation, not exhausted). *)
let merge_root_outcomes ~max_schedules outcomes =
  let nb = Array.length outcomes in
  let rec go b acc all_exhausted =
    if b >= nb then
      { schedules = acc; violation = None; exhausted = all_exhausted }
    else begin
      let o = outcomes.(b) in
      let remaining = max_schedules - acc in
      match o.violation with
      | Some _ when o.schedules <= remaining ->
        (* the sequential search reaches this branch's violating schedule
           before the budget: it stops right there *)
        { schedules = acc + o.schedules; violation = o.violation;
          exhausted = true }
      | _ ->
        if o.schedules < remaining then
          go (b + 1) (acc + o.schedules) (all_exhausted && o.exhausted)
        else if
          b = nb - 1 && o.schedules = remaining && o.exhausted
          && o.violation = None
        then
          (* the whole tree finishes exactly at the budget; the sequential
             explorer only notices the budget when work remains *)
          { schedules = acc + o.schedules; violation = None;
            exhausted = all_exhausted }
        else
          (* budget reached partway: the sequential search stops at
             [max_schedules] schedules without reaching a violation *)
          { schedules = max_schedules; violation = None; exhausted = false }
    end
  in
  go 0 0 true

(* Footprint of taking [pid]'s first step from the initial state — the
   value the sequential DFS records into the root frame's [f_done] when
   it finishes that branch (the first step of a branch is deterministic,
   so precomputing it from a probe run observes the identical value). *)
let root_footprint ~scenario ~make_runtime pid =
  let rt = make_runtime () in
  let (_ : unit -> bool) = scenario rt in
  let trace = Runtime.trace rt in
  let mark = Trace.n_ops trace in
  Runtime.step rt ~pid;
  let fp = Independence.of_events (Trace.ops_from trace mark) in
  Runtime.stop rt;
  fp

let exhaustive ?max_schedules ?por ?pool ~max_steps ~scenario ~make_runtime ()
    =
  let sequential () =
    exhaustive_dfs ?max_schedules ?por ~max_steps ~scenario ~make_runtime ()
  in
  match pool with
  | None -> sequential ()
  | Some pool when Tbwf_parallel.Pool.domains pool <= 1 -> sequential ()
  | Some pool ->
    (* Probe the initial state: the root branches are the runnable pids
       in array order, exactly the branches the root frame of the
       sequential DFS iterates. *)
    let rt = make_runtime () in
    let invariant = scenario rt in
    let initially_ok = invariant () in
    let roots = Runtime.runnable_pids rt in
    Runtime.stop rt;
    if (not initially_ok) || Array.length roots <= 1 then sequential ()
    else begin
      let fps =
        Array.map (fun pid -> root_footprint ~scenario ~make_runtime pid) roots
      in
      let branch b =
        let prior =
          List.init b (fun i -> roots.(i), fps.(i))
        in
        exhaustive_dfs ?max_schedules ?por ~root:(roots.(b), prior)
          ~max_steps ~scenario ~make_runtime ()
      in
      let outcomes =
        Tbwf_parallel.Pool.map pool
          (Array.init (Array.length roots) Fun.id)
          branch
      in
      merge_root_outcomes
        ~max_schedules:(Option.value max_schedules ~default:200_000)
        outcomes
    end

(* --- the pre-reduction explorer, kept as the baseline -------------------- *)

(* Execute one script on a fresh runtime: set up the scenario, run under
   the script policy, evaluate the invariant, and report the branching
   factors observed plus the pid schedule actually followed. *)
let run_script ~max_steps ~scenario ~make_runtime script =
  let rt = make_runtime () in
  let invariant = scenario rt in
  let policy = Policy.of_script script in
  Runtime.run rt ~policy ~steps:max_steps;
  let branching = Policy.branching_of_script policy in
  let sched =
    (* the scripted steps come first; everything after is idle padding *)
    List.filteri
      (fun i _ -> i < List.length branching)
      (Trace.schedule (Runtime.trace rt))
  in
  let holds = invariant () in
  Runtime.stop rt;
  holds, branching, sched

exception Budget

(* Depth-first search over choice scripts, exactly as this module worked
   before partial-order reduction: every prefix is executed from scratch as
   its own schedule, and extension is detected by probing with one extra
   choice. Kept as the comparison baseline for the reduction (E15) and for
   invariants that a reduced search is not sound for (see the mli). *)
let exhaustive_naive ?(max_schedules = 200_000) ~max_steps ~scenario
    ~make_runtime () =
  let schedules = ref 0 in
  let violation = ref None in
  let exhausted = ref true in
  let run script =
    if !schedules >= max_schedules then begin
      exhausted := false;
      raise Budget
    end;
    incr schedules;
    run_script ~max_steps ~scenario ~make_runtime script
  in
  let rec explore prefix =
    if !violation = None then begin
      let script = List.rev prefix in
      let holds, branching, sched = run script in
      if not holds then violation := Some sched
      else if
        List.length branching = List.length script
        && List.length script < max_steps
      then begin
        let holds', branching', sched' = run (script @ [ 0 ]) in
        if List.length branching' > List.length script then
          if not holds' then violation := Some sched'
          else begin
            let k = List.nth branching' (List.length script) in
            for c = 0 to k - 1 do
              explore (c :: prefix)
            done
          end
      end
    end
  in
  (try explore [] with Budget -> ());
  { schedules = !schedules; violation = !violation; exhausted = !exhausted }

(* --- random-schedule fuzzing with shrinking ------------------------------ *)

(* Runs per fuzz batch. Fuzzing is partitioned into fixed-size batches,
   batch [k] drawing from its own stream seeded [Rng.task_seed ~master k]
   — never from a shared stream — so each batch's schedules are a pure
   function of (master seed, k) and the partition is the same at every
   job count. The reported outcome is always that of the lowest-index
   witnessing batch, counting every run up to and including the witness:
   a pool merely runs later batches speculatively. *)
let fuzz_batch_runs = 25

let fuzz_n_batches runs =
  if runs < 0 then invalid_arg "Explore.fuzz: runs < 0";
  (runs + fuzz_batch_runs - 1) / fuzz_batch_runs

let fuzz_batch_size ~runs k = min fuzz_batch_runs (runs - (k * fuzz_batch_runs))

(* Walk batch results in index order, early-stopping at the first
   witness. [run_batch k] returns (runs executed, witness if any). *)
let fuzz_select ?pool ~runs run_batch =
  let n_batches = fuzz_n_batches runs in
  let executed = ref 0 in
  let witness = ref None in
  let consume (e, w) =
    executed := !executed + e;
    match w with
    | Some _ ->
      witness := w;
      raise Exit
    | None -> ()
  in
  (try
     match pool with
     | Some pool when Tbwf_parallel.Pool.domains pool > 1 && n_batches > 1 ->
       Tbwf_parallel.Pool.map pool (Array.init n_batches Fun.id) run_batch
       |> Array.iter consume
     | _ ->
       for k = 0 to n_batches - 1 do
         consume (run_batch k)
       done
   with Exit -> ());
  !executed, !witness

let fuzz ?(seed = 0x5EED5EEDL) ?(runs = 1_000) ?pool ~max_steps ~scenario
    ~make_runtime () =
  let run_batch k =
    let rng = Rng.create (Rng.task_seed ~master:seed k) in
    let count = fuzz_batch_size ~runs k in
    let witness = ref None in
    let executed = ref 0 in
    while !witness = None && !executed < count do
      incr executed;
      let rt = make_runtime () in
      let invariant = scenario rt in
      let sched = ref [] in
      let steps = ref 0 in
      let stop_run = ref (not (invariant ())) in
      if !stop_run then witness := Some [];
      while (not !stop_run) && !steps < max_steps do
        let runnable = Runtime.runnable_pids rt in
        if Array.length runnable = 0 then stop_run := true
        else begin
          let pid = runnable.(Rng.int rng (Array.length runnable)) in
          Runtime.step rt ~pid;
          sched := pid :: !sched;
          incr steps;
          if not (invariant ()) then begin
            witness := Some (List.rev !sched);
            stop_run := true
          end
        end
      done;
      Runtime.stop rt
    done;
    !executed, !witness
  in
  let executed, witness = fuzz_select ?pool ~runs run_batch in
  match witness with
  | None ->
    (* Budget exhausted without a witness: record the batch that was in
       flight (the last one, by the in-order selection contract) and its
       derived stream seed, so a longer or cross-backend re-run can pick
       up the search from exactly this stream instead of restarting the
       whole partition blind. *)
    let exhausted_batch =
      let n_batches = fuzz_n_batches runs in
      if n_batches = 0 then None
      else
        let k = n_batches - 1 in
        Some (k, Rng.task_seed ~master:seed k)
    in
    {
      fuzz_runs = executed;
      counterexample = None;
      shrunk_from = None;
      exhausted_batch;
    }
  | Some pids ->
    let fails candidate =
      not (replay ~max_steps ~scenario ~make_runtime candidate)
    in
    let minimal = if pids = [] then [] else Shrink.ddmin ~fails pids in
    {
      fuzz_runs = executed;
      counterexample = Some minimal;
      shrunk_from = Some (List.length pids);
      exhausted_batch = None;
    }

(* --- fuzzing schedules *and* fault plans --------------------------------- *)

type 'plan fault_fuzz_outcome = {
  plan_runs : int;
  plan_counterexample : (int list * 'plan) option;
  plan_shrunk_from : int option;
}

let fuzz_faults ?(seed = 0x5EED5EEDL) ?(runs = 1_000) ?pool ~gen_plan
    ~shrink_plan ~max_steps ~scenario ~make_runtime () =
  let run_batch k =
    let rng = Rng.create (Rng.task_seed ~master:seed k) in
    let count = fuzz_batch_size ~runs k in
    let witness = ref None in
    let executed = ref 0 in
    while !witness = None && !executed < count do
      incr executed;
      let plan = gen_plan rng in
      let rt = make_runtime plan () in
      let invariant = scenario plan rt in
      let sched = ref [] in
      let steps = ref 0 in
      let stop_run = ref (not (invariant ())) in
      if !stop_run then witness := Some ([], plan);
      while (not !stop_run) && !steps < max_steps do
        let runnable = Runtime.runnable_pids rt in
        if Array.length runnable = 0 then stop_run := true
        else begin
          let pid = runnable.(Rng.int rng (Array.length runnable)) in
          Runtime.step rt ~pid;
          sched := pid :: !sched;
          incr steps;
          if not (invariant ()) then begin
            witness := Some (List.rev !sched, plan);
            stop_run := true
          end
        end
      done;
      Runtime.stop rt
    done;
    !executed, !witness
  in
  let executed, witness = fuzz_select ?pool ~runs run_batch in
  match witness with
  | None ->
    { plan_runs = executed; plan_counterexample = None; plan_shrunk_from = None }
  | Some (pids, plan) ->
    (* Alternate dimensions: shrink the schedule under the found plan,
       then the plan under the shrunk schedule, then the schedule once
       more under the shrunk plan — each shrink can only enable the other,
       and one extra round suffices for the small plans we generate. *)
    let fails_with plan candidate =
      not
        (replay ~max_steps ~scenario:(scenario plan)
           ~make_runtime:(make_runtime plan) candidate)
    in
    let sched1 =
      if pids = [] then [] else Shrink.ddmin ~fails:(fails_with plan) pids
    in
    let plan' = shrink_plan ~fails:(fun p -> fails_with p sched1) plan in
    let sched2 =
      if sched1 = [] then []
      else Shrink.ddmin ~fails:(fails_with plan') sched1
    in
    {
      plan_runs = executed;
      plan_counterexample = Some (sched2, plan');
      plan_shrunk_from = Some (List.length pids);
    }
