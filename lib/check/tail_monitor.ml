(* Windowed completion-rate monitor: the streaming form of the tail-rate
   floor. Where [Degradation] verdicts one tail against one prediction,
   this watches the whole run as a sequence of fixed-size step windows
   and records, per process, whether each closed window met a
   completions floor — the signal long soak runs stream out alongside
   the telemetry records. O(n) memory regardless of horizon. *)

open Tbwf_sim
module Json = Tbwf_telemetry.Json

type t = {
  n : int;
  window : int;  (* steps per window *)
  floor : int;  (* completions a window must reach to count as ok *)
  watch : int list;  (* pids whose windows count towards the verdict *)
  current : int array;  (* completions in the accumulating window *)
  last : int array;  (* completions in the last closed window *)
  min_rate : int array;  (* per-pid minimum over closed windows *)
  ok_windows : int array;  (* per-pid closed windows meeting the floor *)
  mutable cw : int;  (* index of the accumulating window *)
  mutable closed : int;  (* number of closed windows *)
}

let create ?(floor = 1) ?(watch : int list option) ~n ~window () =
  if window < 1 then invalid_arg "Tail_monitor.create: window must be positive";
  if floor < 0 then invalid_arg "Tail_monitor.create: floor must be >= 0";
  let watch = match watch with Some w -> w | None -> List.init n Fun.id in
  {
    n;
    window;
    floor;
    watch;
    current = Array.make n 0;
    last = Array.make n 0;
    min_rate = Array.make n max_int;
    ok_windows = Array.make n 0;
    cw = 0;
    closed = 0;
  }

let close_window t =
  for pid = 0 to t.n - 1 do
    let c = t.current.(pid) in
    t.last.(pid) <- c;
    if c < t.min_rate.(pid) then t.min_rate.(pid) <- c;
    if c >= t.floor then t.ok_windows.(pid) <- t.ok_windows.(pid) + 1;
    t.current.(pid) <- 0
  done;
  t.closed <- t.closed + 1;
  t.cw <- t.cw + 1

(* Close every window that ends at or before [step]'s window. The runtime
   emits [on_step] before the step's signals, so by the time a window's
   first [Op_complete] arrives the previous window is already closed. *)
let roll t ~step =
  let w = step / t.window in
  while t.cw < w do
    close_window t
  done

let on_signal t ~step ~pid signal =
  roll t ~step;
  match signal with
  | Sink.Op_complete ->
    if pid >= 0 && pid < t.n then t.current.(pid) <- t.current.(pid) + 1
  | _ -> ()

let sink t =
  {
    Sink.active = true;
    on_step = (fun ~step ~pid:_ ~layer:_ -> roll t ~step);
    on_invoke =
      (fun ~step ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ -> roll t ~step);
    on_respond =
      (fun ~step ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ ~result:_ ->
        roll t ~step);
    on_signal = (fun ~step ~pid s -> on_signal t ~step ~pid s);
  }

let n t = t.n
let window t = t.window
let floor t = t.floor
let closed_windows t = t.closed
let last_rates t = Array.copy t.last
let current_rates t = Array.copy t.current
let ok_windows t = Array.copy t.ok_windows
let min_rate t ~pid = if t.closed = 0 then None else Some t.min_rate.(pid)

(* A watched pid is ok iff every closed window met the floor. Before any
   window closes the verdict is vacuously true. *)
let pid_ok t ~pid = t.ok_windows.(pid) = t.closed
let ok t = List.for_all (fun pid -> pid_ok t ~pid) t.watch

let to_json t =
  let ints a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Int v)) in
  Json.Obj
    [
      "window", Json.Int t.window;
      "floor", Json.Int t.floor;
      "watch", Json.Arr (List.map (fun p -> Json.Int p) t.watch);
      "closed", Json.Int t.closed;
      "last", ints t.last;
      "ok_windows", ints t.ok_windows;
      ( "min_rate",
        Json.Arr
          (List.init t.n (fun pid ->
               match min_rate t ~pid with
               | None -> Json.Null
               | Some r -> Json.Int r)) );
      "ok", Json.Bool (ok t);
    ]
