(** Schedule exploration: exhaustive search with partial-order reduction,
    random fuzzing with shrinking, and deterministic replay.

    The paper's definitions and theorems quantify over {e all} schedules,
    so the simulator's determinism is leveraged three ways:

    - {!exhaustive} enumerates every interleaving of a small scenario up to
      [max_steps], pruned by sleep-set partial-order reduction: two steps
      of different processes that touch disjoint registers — or only read
      the registers they share — commute, so only one of their orders is
      explored (see {!Independence}). The invariant is evaluated after
      {e every} step of every executed schedule, so it must be a safety
      predicate (true in every reachable state), and a violation witness is
      a prefix of some schedule.
    - {!fuzz} samples random schedules from a seeded generator — the bug
      hunter for scenarios too large to exhaust — and shrinks any failing
      schedule to a 1-minimal counterexample by delta debugging
      ({!Shrink.ddmin}).
    - {!replay} re-executes a pid schedule deterministically, which is how
      witnesses are validated, shrunk, and committed as regression tests
      (serialize them with {!Tbwf_sim.Schedule}).

    Witness schedules are pid-per-step lists as recorded by
    {!Tbwf_sim.Trace.schedule}.

    {2 Soundness of the reduction}

    Sleep sets preserve every schedule up to commuting adjacent independent
    steps, and the independence relation is conservative (observed register
    footprints; invocations count as writes), so any invariant that is a
    function of shared-object state or of per-object operation histories —
    linearizability, value-domain safety, occupancy counters implemented as
    shared objects — is checked as exhaustively as without reduction. An
    invariant that observes {e purely local} state which shared-object
    footprints do not protect (e.g. a plain [ref] mutated by two processes)
    can in principle be missed between two commuting steps: route such
    observations through a shared object, or use [~por:false] /
    {!exhaustive_naive}. *)

type outcome = {
  schedules : int;  (** complete schedule executions *)
  violation : int list option;
      (** a witness pid schedule that falsified the invariant, if any;
          replayable with {!replay} and serializable with
          {!Tbwf_sim.Schedule} *)
  exhausted : bool;
      (** [true] iff the search space was fully covered; [false] means the
          [max_schedules] budget was hit first, so the absence of a
          violation is inconclusive *)
}

val exhaustive :
  ?max_schedules:int ->
  ?por:bool ->
  ?pool:Tbwf_parallel.Pool.t ->
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  outcome
(** [exhaustive ~max_steps ~scenario ~make_runtime ()] runs [scenario rt]
    to set up tasks on a fresh runtime per schedule; the returned thunk is
    the invariant, evaluated after every step. Depth-first search over the
    tree of per-step pid choices; each executed schedule is maximal (all
    tasks finished, or [max_steps] reached), and — unlike the
    pre-reduction explorer — covers all of its own prefixes in a single
    execution instead of re-running each prefix from scratch.

    [por] (default [true]) enables sleep-set partial-order reduction.
    Exploration stops at the first violation (with the witness), or once
    [max_schedules] (default 200 000) schedules have been executed, in
    which case [exhausted] is [false] and [violation] reflects only the
    covered part — exceeding the budget is reported, never raised.

    [pool] fans the search out over the initial state's runnable
    processes: each root branch explores its own subtree on its own
    domain (each schedule still builds its own runtime, so tasks share
    nothing), with earlier branches' first-step footprints pre-seeded so
    every branch prunes exactly as the sequential search would. Outcomes
    merge in branch order under a simulated global budget, so the result
    is identical to the sequential search — same [schedules], same
    winning [violation] — except that when the budget cuts off partway
    through a branch the merged outcome is the budget-reached one. A
    one-domain pool (or a single root branch) falls back to the
    sequential search. *)

val exhaustive_naive :
  ?max_schedules:int ->
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  outcome
(** The pre-reduction algorithm, kept as the baseline the reduction is
    measured against (experiment E15) and as the fallback for invariants
    outside the reduced search's soundness class: every prefix is executed
    from scratch as its own schedule, so [schedules] counts one execution
    per prefix plus one probe per extension. Same outcome contract as
    {!exhaustive}, including the budget behaviour. *)

type fuzz_outcome = {
  fuzz_runs : int;  (** schedules executed, counting the failing one *)
  counterexample : int list option;
      (** minimal failing pid schedule, if a violation was found *)
  shrunk_from : int option;
      (** length of the original failing schedule before shrinking *)
  exhausted_batch : (int * int64) option;
      (** [Some (k, task_seed)] iff the run budget was exhausted without a
          witness: the index of the batch in flight when the budget ran
          out and its {!Tbwf_sim.Rng.task_seed}-derived stream seed. A
          partial outcome is thereby replayable — a follow-up fuzz (same
          or other execution backend) can resume from exactly that
          stream. [None] when a counterexample was found. *)
}

val fuzz_batch_runs : int
(** Runs per fuzz batch (25). Fuzzing is partitioned into fixed-size
    batches, batch [k] drawing from its own stream seeded
    [Rng.task_seed ~master:seed k] — the partition is identical at every
    job count, which is what makes pooled fuzzing byte-identical to
    sequential fuzzing. *)

val fuzz :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  fuzz_outcome
(** Execute up to [runs] (default 1000) random schedules of at most
    [max_steps] steps each, choosing uniformly among runnable processes
    with a generator seeded per batch from [seed] (fuzzing is itself
    deterministic: same seed, same schedules). On the first invariant
    violation the failing schedule is shrunk with {!Shrink.ddmin} to a
    schedule on which the violation still reproduces and no single step
    can be removed.

    [pool] runs the {!fuzz_batch_runs}-sized batches across domains; the
    reported outcome is always that of the lowest-index witnessing batch
    (counting runs up to and including the witness), so the result is the
    same at any job count — a pool merely runs later batches
    speculatively. *)

val replay :
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  int list ->
  bool
(** [replay ~max_steps ~scenario ~make_runtime pids] re-executes a pid
    schedule on a fresh runtime, checking the invariant after every step;
    [true] iff it held throughout. Entries whose pid is not currently
    runnable (finished, crashed — or made meaningless by shrinking) are
    skipped, which keeps every sublist of a schedule executable: exactly
    what {!Shrink.ddmin} needs. *)

val replay_checked :
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  int list ->
  bool * int
(** Like {!replay}, but also counts mismatched entries — recorded non-idle
    pids that were not runnable and so were skipped. A committed
    counterexample replayed against drifted code should report its
    mismatch count rather than silently checking a different schedule;
    a faithful replay reports 0. *)

(** {2 Fuzzing schedules and fault plans together}

    A run under fault injection is a function of (seed, schedule, fault
    plan), so counterexample search gains a second dimension: the plan.
    {!fuzz_faults} is {!fuzz} generalized over an abstract plan type —
    each run draws a fresh plan from [gen_plan] (using the fuzzer's own
    seeded stream, so plan drawing is as deterministic as schedule
    drawing), builds the runtime and scenario {e for that plan} (the plan
    decides crash injections and abort policies at construction time), and
    random-walks schedules as before. A failing (schedule, plan) pair is
    shrunk in both dimensions: schedule by {!Shrink.ddmin}, plan by the
    caller's [shrink_plan] (typically ddmin over the plan's atoms), then
    the schedule once more under the smaller plan. *)

type 'plan fault_fuzz_outcome = {
  plan_runs : int;  (** (schedule, plan) pairs executed *)
  plan_counterexample : (int list * 'plan) option;
      (** shrunk failing pair, if a violation was found *)
  plan_shrunk_from : int option;
      (** schedule length before shrinking *)
}

val fuzz_faults :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  gen_plan:(Tbwf_sim.Rng.t -> 'plan) ->
  shrink_plan:(fails:('plan -> bool) -> 'plan -> 'plan) ->
  max_steps:int ->
  scenario:('plan -> Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:('plan -> unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  'plan fault_fuzz_outcome
(** [shrink_plan ~fails plan] must return a (possibly equal) plan on which
    [fails] still holds — {!Tbwf_nemesis.Fault_plan.shrink} is the
    intended implementation. Everything else is as {!fuzz}, including the
    batched generator streams and [pool]: each batch draws its plans and
    schedules from its own seeded stream. *)
