(** Exhaustive schedule exploration (bounded model checking).

    For small scenarios — a few processes, a handful of operations — the
    simulator's determinism makes it cheap to enumerate {e every}
    interleaving: a schedule is a script of choice indices
    ({!Tbwf_sim.Policy.of_script}), and each script is explored by
    re-executing the scenario from scratch (runs are pure functions of the
    script). Depth-first search over scripts visits every schedule up to
    [max_steps], so an invariant checked here holds for {e all} schedules
    of the scenario, not just sampled ones.

    The test suite uses this to verify, over every interleaving:
    solo-operations-never-abort, register linearizability, and
    query-abortable fate recovery. Complexity is the product of branching
    factors (≈ runnable-process count per step): keep scenarios to 2–3
    processes and ≲ 20 steps. *)

type outcome = {
  schedules : int;  (** interleavings explored *)
  violation : int list option;
      (** a witness script that falsified the invariant, if any *)
}

val exhaustive :
  ?max_schedules:int ->
  max_steps:int ->
  scenario:(Tbwf_sim.Runtime.t -> unit -> bool) ->
  make_runtime:(unit -> Tbwf_sim.Runtime.t) ->
  unit ->
  outcome
(** [exhaustive ~max_steps ~scenario ~make_runtime ()] runs
    [scenario rt] to set up tasks on a fresh runtime per schedule; the
    returned thunk is the invariant, evaluated after the run. Exploration
    stops early (with the witness) on the first violation, or after
    [max_schedules] (default 200 000 — a safety valve, exceeding it raises
    [Failure] so a too-large scenario cannot silently pass). Schedules end
    when all tasks finish or [max_steps] choices have been made. *)
