(** Windowed completion-rate monitor: the streaming form of the
    tail-rate floor.

    Where {!Degradation} verdicts one tail against one plan prediction,
    this watches the whole run as a sequence of fixed-size step windows
    and records, per process, whether each {e closed} window met a
    completions floor. Long soak runs stream its {!to_json} alongside
    each telemetry record; a process that degrades shows up as a window
    under the floor the moment it happens, not at end of run. O(n)
    memory regardless of horizon, and as deterministic as the event
    stream feeding it. *)

type t

val create : ?floor:int -> ?watch:int list -> n:int -> window:int -> unit -> t
(** [window] is in steps; [floor] (default 1) is the completions a
    closed window must reach to count as ok; [watch] (default all pids)
    restricts whose windows feed the aggregate {!ok} — pass the plan's
    predicted-timely set to mirror the degradation contract's exemption
    of untimely processes. Raises [Invalid_argument] if [window < 1] or
    [floor < 0]. *)

val sink : t -> Tbwf_sim.Sink.t
(** Feed the monitor from a run; compose with other observers via
    [Sink.tee]. A window closes when the first event of a later window
    arrives; call sites only need [on_step] and [Op_complete]. *)

val n : t -> int
val window : t -> int
val floor : t -> int

val closed_windows : t -> int
val last_rates : t -> int array
(** Per-pid completions in the most recently closed window (zeros before
    the first close). *)

val current_rates : t -> int array
(** Per-pid completions in the still-accumulating window. *)

val ok_windows : t -> int array
(** Per-pid count of closed windows that met the floor. *)

val min_rate : t -> pid:int -> int option
(** Minimum completions over closed windows; [None] before the first
    window closes. *)

val pid_ok : t -> pid:int -> bool
(** Every closed window met the floor (vacuously true at zero closed). *)

val ok : t -> bool
(** {!pid_ok} over the watched set. *)

val to_json : t -> Tbwf_telemetry.Json.t
