(** The TBWF graceful-degradation contract, checked against a run.

    A fault plan ({!Tbwf_nemesis.Fault_plan}) predicts, for each process,
    whether it is still timely once the plan's last schedule-affecting
    fault has been injected. The paper's contract (Definition 3 plus
    Theorems 7–15) is then:

    - every process the plan predicts timely keeps completing operations
      in the tail of the run — its guarantee survives other processes'
      faults untouched;
    - processes the plan made untimely (or crashed) may stall, but that is
      {e all} that may happen: their faults never revoke anyone else's
      guarantee.

    This module is deliberately plan-agnostic: it consumes a bare
    {!prediction} (who is timely, from when, with what bound), a trace,
    and per-process completed-operation counters snapshotted at the tail
    boundary, so it sits below the nemesis library and any workload type.
    Gracefully-degrading algorithms must satisfy the verdict under every
    plan; boosting-style baselines are expected to violate it under plans
    that make some process non-timely — the negative control that shows
    the checker has teeth. *)

type emergent = {
  em_replicas : int;  (** replica count of the message-passing substrate *)
  em_live : int list;
      (** replicas the plan leaves uncrashed in the final regime *)
  em_reach : (int * int list) list;
      (** per client pid: which live replicas it reaches over links the
          plan leaves timely in the final regime (no partition cut, no
          persistent message loss; a pure delay ramp keeps a link
          timely — slower but bounded, the graceful half of the story) *)
}

type prediction = {
  pred_n : int;  (** process count *)
  pred_timely : int list;
      (** pids the plan predicts remain timely after [pred_from] *)
  pred_from : int;
      (** settle step: the last injected schedule-affecting fault; the
          checked tail is every step from here on *)
  pred_bound : int;
      (** timeliness bound the compiled plan is expected to deliver for
          the predicted-timely processes (Definition 1's gap bound) *)
  pred_emergent : emergent option;
      (** [None] on shared memory (register timeliness is intrinsic).
          [Some _] on a message-passing substrate: register timeliness is
          {e emergent} from link timeliness to a live replica majority,
          and a schedule-timely client that cannot reach a quorum is
          exempt rather than guaranteed *)
}

val emergent_majority : emergent -> int
(** [em_replicas/2 + 1]. *)

val emergent_quorate : emergent -> int -> bool
(** Does this client reach at least a majority of live replicas over
    timely links? *)

type process_verdict = {
  dv_pid : int;
  dv_predicted_timely : bool;
      (** plan-predicted timely {e and} (on a message-passing substrate)
          quorate — the guarantee actually in force *)
  dv_quorate : bool option;
      (** [None] on shared memory; on message passing, whether the client
          reaches a live replica majority over timely links *)
  dv_sched_timely : bool option;
      (** for predicted-timely processes: did the executed schedule
          actually keep the process timely in the tail (sanity check on
          the plan compiler)? [None] for exempt processes *)
  dv_tail_ops : int;  (** operations completed in the tail *)
  dv_tail_steps : int;  (** own steps taken in the tail *)
  dv_ok : bool;
}

type verdict = {
  holds : bool;  (** all predicted-timely processes made their contract *)
  from_step : int;
  processes : process_verdict list;
}

val tail_rate_denominator : int
(** [= 1_500]. The single authoritative statement of the default tail-rate
    floor: a predicted-timely process must complete at least one operation
    per [tail_rate_denominator × (n+1)] tail steps (and never fewer than
    2 in total; see {!required_tail_ops}). The graceful-degradation
    predicate demands a {e rate}, not bare non-zero progress: a booster
    that trusts a decelerating process forever still trickles the odd
    operation through a suspicion window — roughly one per doubling of the
    growing gap, geometrically rarer over time — while every TBWF system
    sustains about one operation per 1.5(n+1)k steps per timely process or
    better. At the nemesis catalogue's dimensions the paper systems
    complete 10–76 tail ops per timely process and the naive booster at
    most 1–2, so this floor separates the two populations with margin on
    both sides. [Tbwf_nemesis.Campaign.required_tail_ops] re-exports the
    derived floor; both cite this comment as the constant's home. *)

val required_tail_ops : n:int -> tail:int -> int
(** [max 2 (tail / (tail_rate_denominator * (n + 1)))] — the default
    [min_ops] for a [tail]-step tail with [n] processes. See
    {!tail_rate_denominator} for the rationale. *)

val check :
  ?min_ops:int ->
  ?require_sched_timely:bool ->
  prediction:prediction ->
  trace:Tbwf_sim.Trace.t ->
  completed_before:int array ->
  completed_after:int array ->
  unit ->
  verdict
(** [check ~prediction ~trace ~completed_before ~completed_after ()]
    verdicts one finished run. [completed_before] is the per-pid
    completed-operation counter snapshotted at [pred_from];
    [completed_after] at the end of the run. A predicted-timely process is
    ok iff it completed at least [min_ops] (default 1) operations in the
    tail and (unless [require_sched_timely] is [false]) the executed
    schedule kept it timely with bound [pred_bound] — a failed schedule
    sanity check means the {e plan compilation} is at fault, not the
    algorithm, and is reported via [dv_sched_timely] so it is never
    mistaken for an algorithm violation. Raises [Invalid_argument] if the
    counter arrays do not have length [pred_n]. *)

(** {2 Online checking}

    The same contract decided incrementally from the event stream, for
    runs too long to keep a trace of. An {!Online.t} consumes the sink
    stream as the run executes — O(n²) memory in the process count,
    independent of the horizon — and its {!Online.verdict} is field-for-
    field equal to what {!check} would return on the finished run's
    trace: the gap bookkeeping replicates [Timeliness.max_gap] (including
    the vacuous never-stepped case) and the verdict assembly replicates
    {!check} verbatim. The differential test in [test/test_nemesis.ml]
    enforces the equality across the full campaign × system matrix on
    both substrates. *)

module Online : sig
  type t

  val create : ?min_ops:int -> ?require_sched_timely:bool -> prediction -> t
  (** Same defaults and meaning as the corresponding {!check}
      arguments. The tail boundary is [prediction.pred_from]: events
      before it only accumulate the pre-tail completion counters. *)

  val sink : t -> Tbwf_sim.Sink.t
  (** Install with [Runtime.set_sink], or compose with a collector's
      sink via [Sink.tee] — the checker only reads [on_step] and
      [Op_complete] signals, every other callback just arms the tail
      boundary. *)

  val verdict : t -> verdict
  (** The verdict over everything consumed so far. Non-destructive: safe
      to call per stream window for running verdicts and again at the
      end of the run. *)
end

val min_timely_tail_ops : verdict -> int option
(** Minimum tail operations over predicted-timely processes; [None] if the
    plan predicts nobody timely. *)

val process_json : process_verdict -> Tbwf_telemetry.Json.t
val verdict_json : verdict -> Tbwf_telemetry.Json.t
(** Canonical JSON rendering of a verdict — what the streaming telemetry
    records and the soak CLI embed. *)

val pp_verdict : Format.formatter -> verdict -> unit
