open Tbwf_sim

type op = {
  pid : int;
  op : Value.t;
  result : Value.t;
  invoke : int;
  respond : int;
}

let pp_op fmt o =
  Fmt.pf fmt "p%d:%a->%a@[%d,%d]" o.pid Value.pp o.op Value.pp o.result
    o.invoke o.respond

(* Processes are sequential, so per (pid, object) at most one operation is
   in flight: pair each respond with the pid's pending invoke. *)
let complete_ops trace ~obj_name =
  let pending : (int, int * Value.t) Hashtbl.t = Hashtbl.create 16 in
  let completed = ref [] in
  Trace.iter_ops trace (fun ev ->
      if String.equal ev.Trace.obj_name obj_name then
        match ev.phase with
        | `Invoke -> Hashtbl.replace pending ev.pid (ev.step, ev.op)
        | `Respond result ->
          (match Hashtbl.find_opt pending ev.pid with
          | Some (invoke, op) ->
            Hashtbl.remove pending ev.pid;
            completed :=
              { pid = ev.pid; op; result; invoke; respond = ev.step }
              :: !completed
          | None -> () (* response without a recorded invoke: ignore *)));
  List.rev !completed
