(** First-class register handles and register factories.

    The algorithm layers (activity monitors, the Ω∆ implementations, the
    naive baselines) only ever use a register through its operations:
    read, write, and — for analyses — peek. This module reifies that
    usage as a handle record, so the {e same} algorithm code runs over
    shared-memory registers ({!Atomic_reg}/{!Abortable_reg}) or over the
    message-passing emulations ({!Mp_reg}) depending on which {!factory}
    wired it.

    A factory is the substrate: {!shared_factory} yields handles backed by
    the simulator's shared objects (byte-identical to the pre-factory
    wiring — same object names, same creation order), and
    [Mp_reg.factory] yields handles backed by replicated server state
    reached over the simulated network.

    {2 Compiled-backend access}

    Shared-memory handles additionally expose the underlying simulated
    object and the codec closures ([obj]/[enc]/[dec]), which is what the
    compiled backend's machines use to issue raw operations. Handles from
    a message-passing factory have [obj = None]: there are no compiled
    machines for the substrate ([System.build] rejects that combination
    up front), so {!obj_exn} is safe wherever machines run. *)

type 'a t = {
  name : string;
  read : unit -> 'a;  (** inside-task; two steps (shared-memory) or a
                          quorum round trip (message-passing) *)
  write : 'a -> unit;
  peek : unit -> 'a;
      (** zero-step inspection for analyses and tests; over
          message-passing this is the max-tag value across replicas *)
  obj : Tbwf_sim.Shared.t option;
  enc : 'a -> Tbwf_sim.Value.t;
  dec : Tbwf_sim.Value.t -> 'a;
}

val obj_exn : 'a t -> Tbwf_sim.Shared.t
(** The underlying shared object; raises [Invalid_argument] on a
    message-passing handle. *)

(** Abortable handles, mirroring {!Abortable_reg}'s interface. *)
module Abortable : sig
  type 'a t = {
    name : string;
    read : unit -> 'a option;  (** [None] is ⊥: the read aborted *)
    write : 'a -> bool;  (** [false] is ⊥: aborted, may have taken effect *)
    peek : unit -> 'a;
    obj : Tbwf_sim.Shared.t option;
    enc : 'a -> Tbwf_sim.Value.t;
    dec : Tbwf_sim.Value.t -> 'a;
  }

  val obj_exn : 'a t -> Tbwf_sim.Shared.t
end

(** What the register is used as. Shared-memory registers are MWMR
    anyway, so the shared factory ignores this; the message-passing
    factory maps [Mwmr] to the two-phase ABD atomic emulation and [Swmr]
    to the one-phase time-efficient regular emulation (sound because a
    single-writer user never needs reads-from-reads atomicity). *)
type kind = Mwmr | Swmr of { writer : int }

type factory = {
  mk_reg :
    'a.
    kind:kind ->
    name:string ->
    codec:'a Codec.t ->
    init:'a ->
    'a t;
  mk_areg :
    'a.
    name:string ->
    codec:'a Codec.t ->
    init:'a ->
    writer:int ->
    reader:int ->
    policy:Abort_policy.t ->
    write_effect:Abort_policy.write_effect option ->
    'a Abortable.t;
      (** [write_effect None] means the register's own default
          ([Effect_random 0.5]) *)
}

val of_atomic : 'a Atomic_reg.t -> 'a t
val of_abortable : 'a Abortable_reg.t -> 'a Abortable.t

val shared_factory : Tbwf_sim.Runtime.t -> factory
(** Handles over {!Atomic_reg.create} / {!Abortable_reg.create}: the
    default substrate, bit-for-bit the historical wiring. *)
