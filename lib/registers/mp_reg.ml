(* Message-passing register emulations: ABD atomic and time-efficient
   regular registers over the simulated network, plus the client-side
   abortable adapter. See mp_reg.mli for semantics. *)

open Tbwf_sim
module Net = Tbwf_net.Net

type reg_kind = K_atomic | K_regular

type spec = { rkind : reg_kind; rname : string; rinit : Value.t }

(* Per-replica per-register state. Atomic registers use (ts, wid, v);
   regular registers use (sn, v). Unused fields stay at their inits. *)
type rstate = {
  mutable ts : int;
  mutable wid : int;
  mutable sn : int;
  mutable v : Value.t;
}

module Cluster = struct
  type t = {
    rt : Runtime.t;
    net : Net.t;
    specs : (int, spec) Hashtbl.t;
    states : (int, rstate) Hashtbl.t array;  (* one table per replica *)
    mutable next_rid : int;
  }

  let net t = t.net

  let state t ~r ~rid =
    match Hashtbl.find_opt t.states.(r) rid with
    | Some s -> s
    | None ->
      let spec = Hashtbl.find t.specs rid in
      let s = { ts = 0; wid = -1; sn = 0; v = spec.rinit } in
      Hashtbl.add t.states.(r) rid s;
      s

  (* Request handling at replica [r]. Every handler is idempotent (tag
     and sequence updates are monotonic), so retransmitted requests are
     harmless. *)
  let process t ~r payload =
    let open Value in
    match payload with
    | List [ Str "aq"; Int rid ] ->
      let s = state t ~r ~rid in
      List [ Str "aqr"; Int rid; Int s.ts; Int s.wid; s.v ]
    | List [ Str "aw"; Int rid; Int ts; Int wid; v ] ->
      let s = state t ~r ~rid in
      if (ts, wid) > (s.ts, s.wid) then begin
        s.ts <- ts;
        s.wid <- wid;
        s.v <- v
      end;
      List [ Str "awr"; Int rid ]
    | List [ Str "rw"; Int rid; Int sn; v ] ->
      let s = state t ~r ~rid in
      if sn > s.sn then begin
        s.sn <- sn;
        s.v <- v
      end;
      List [ Str "rwr"; Int rid; Int sn ]
    | List [ Str "rq"; Int rid ] ->
      let s = state t ~r ~rid in
      List [ Str "rqr"; Int rid; Int s.sn; s.v ]
    | _ -> Fail

  let server t ~r () =
    while true do
      let msgs = Net.poll t.net ~key:Net.catch_all in
      List.iter
        (fun (src, key, payload) ->
          Net.send t.net ~dst:src ~key (process t ~r payload))
        msgs
    done

  let create rt ~net =
    let replicas = (Net.config net).Net.replicas in
    let t =
      {
        rt;
        net;
        specs = Hashtbl.create 16;
        states = Array.init replicas (fun _ -> Hashtbl.create 16);
        next_rid = 0;
      }
    in
    for r = 0 to replicas - 1 do
      Runtime.spawn ~layer:Sink.Other rt
        ~pid:(Net.replica_pid net r)
        ~name:(Fmt.str "replica[%d]" r)
        (server t ~r)
    done;
    t
end

let alloc (cl : Cluster.t) rkind rname rinit =
  let rid = cl.Cluster.next_rid in
  cl.Cluster.next_rid <- rid + 1;
  Hashtbl.add cl.Cluster.specs rid { rkind; rname; rinit };
  rid

(* Broadcast [request] under a fresh key and block (polling, with
   retransmission to silent replicas) until a majority of distinct
   replicas answered with something [decode] accepts. Returns the
   accepted replies, one slot per replica. *)
let quorum (cl : Cluster.t) ~request ~decode =
  let net = cl.Cluster.net in
  let config = Net.config net in
  let replicas = config.Net.replicas in
  let me = Runtime.self () in
  let key = Net.fresh_key net ~pid:me in
  let replies = Array.make replicas None in
  let count = ref 0 in
  let broadcast ~missing_only =
    for r = 0 to replicas - 1 do
      if (not missing_only) || replies.(r) = None then
        Net.send net ~dst:(Net.replica_pid net r) ~key request
    done
  in
  broadcast ~missing_only:false;
  let polls = ref 0 in
  while !count < Net.majority config do
    List.iter
      (fun (src, _key, payload) ->
        let r = src - Net.n_clients net in
        if r >= 0 && r < replicas && replies.(r) = None then
          match decode payload with
          | Some x ->
            replies.(r) <- Some x;
            incr count
          | None -> ())
      (Net.poll net ~key);
    incr polls;
    if !count < Net.majority config && !polls mod config.Net.retransmit_every = 0
    then broadcast ~missing_only:true
  done;
  replies

let fold_replies replies ~init ~f =
  Array.fold_left
    (fun acc reply -> match reply with Some x -> f acc x | None -> acc)
    init replies

(* --- ABD-style MWMR atomic ------------------------------------------------ *)

let atomic cl ~name ~codec ~init =
  let rid = alloc cl K_atomic name (codec.Codec.enc init) in
  let open Value in
  let decode_query = function
    | List [ Str "aqr"; Int rid'; Int ts; Int wid; v ] when rid' = rid ->
      Some (ts, wid, v)
    | _ -> None
  in
  let decode_ack = function
    | List [ Str "awr"; Int rid' ] when rid' = rid -> Some ()
    | _ -> None
  in
  let query () =
    let replies = quorum cl ~request:(List [ Str "aq"; Int rid ]) ~decode:decode_query in
    fold_replies replies
      ~init:(0, -1, codec.Codec.enc init)
      ~f:(fun (ts, wid, v) (ts', wid', v') ->
        if (ts', wid') > (ts, wid) then (ts', wid', v') else (ts, wid, v))
  in
  let update (ts, wid, v) =
    ignore
      (quorum cl
         ~request:(List [ Str "aw"; Int rid; Int ts; Int wid; v ])
         ~decode:decode_ack)
  in
  let read () =
    (* phase 1: highest tag from a majority; phase 2: write it back, so
       no later read can observe an older tag *)
    let (_, _, v) as tag = query () in
    update tag;
    codec.Codec.dec v
  in
  let write x =
    let ts, _, _ = query () in
    update (ts + 1, Runtime.self (), codec.Codec.enc x)
  in
  let peek () =
    let replicas = (Net.config cl.Cluster.net).Net.replicas in
    let best = ref (0, -1, codec.Codec.enc init) in
    for r = 0 to replicas - 1 do
      match Hashtbl.find_opt cl.Cluster.states.(r) rid with
      | Some s ->
        let ts, wid, _ = !best in
        if (s.ts, s.wid) > (ts, wid) then best := (s.ts, s.wid, s.v)
      | None -> ()
    done;
    let _, _, v = !best in
    codec.Codec.dec v
  in
  {
    Reg.name;
    read;
    write;
    peek;
    obj = None;
    enc = codec.Codec.enc;
    dec = codec.Codec.dec;
  }

(* --- time-efficient SWMR regular ----------------------------------------- *)

let regular cl ~name ~codec ~init ~writer =
  let rid = alloc cl K_regular name (codec.Codec.enc init) in
  let open Value in
  let next_sn = ref 0 in
  let decode_ack = function
    | List [ Str "rwr"; Int rid'; Int _sn ] when rid' = rid -> Some ()
    | _ -> None
  in
  let decode_read = function
    | List [ Str "rqr"; Int rid'; Int sn; v ] when rid' = rid -> Some (sn, v)
    | _ -> None
  in
  let write x =
    if Runtime.self () <> writer then
      invalid_arg (Printf.sprintf "Mp_reg %s: pid %d is not the writer" name
                     (Runtime.self ()));
    incr next_sn;
    ignore
      (quorum cl
         ~request:(List [ Str "rw"; Int rid; Int !next_sn; codec.Codec.enc x ])
         ~decode:decode_ack)
  in
  let read () =
    let replies = quorum cl ~request:(List [ Str "rq"; Int rid ]) ~decode:decode_read in
    let _, v =
      fold_replies replies
        ~init:(0, codec.Codec.enc init)
        ~f:(fun (sn, v) (sn', v') -> if sn' > sn then (sn', v') else (sn, v))
    in
    codec.Codec.dec v
  in
  let peek () =
    let replicas = (Net.config cl.Cluster.net).Net.replicas in
    let best = ref (0, codec.Codec.enc init) in
    for r = 0 to replicas - 1 do
      match Hashtbl.find_opt cl.Cluster.states.(r) rid with
      | Some s ->
        let sn, _ = !best in
        if s.sn > sn then best := (s.sn, s.v)
      | None -> ()
    done;
    codec.Codec.dec (snd !best)
  in
  {
    Reg.name;
    read;
    write;
    peek;
    obj = None;
    enc = codec.Codec.enc;
    dec = codec.Codec.dec;
  }

(* --- SWSR abortable adapter ----------------------------------------------- *)

let abortable cl ~name ~codec ~init ~writer ~reader ~policy ~write_effect =
  let rt = cl.Cluster.rt in
  let base = regular cl ~name ~codec ~init ~writer in
  let write_effect =
    Option.value write_effect ~default:(Abort_policy.Effect_random 0.5)
  in
  (* The abort is decided before any message leaves: synthesize a solo
     context at the current step, so Unconditional fault policies (which
     key on respond_step and the object stream) behave exactly as on
     shared memory, while contention-gated policies never fire (legal —
     aborting is a permission, not an obligation). *)
  let decide op =
    let step = Runtime.now rt in
    let ctx =
      {
        Shared.pid = Runtime.self ();
        invoke_step = step;
        respond_step = step;
        overlapped = false;
        overlap_ops = [];
        step_contended = false;
        pending_others = 0;
        rng = Runtime.obj_rng rt;
        op;
      }
    in
    Abort_policy.should_abort policy ~contended:false ctx
  in
  let signal_abort ~is_write =
    if Runtime.telemetry_active rt then
      Runtime.signal rt ~pid:(Runtime.self ())
        (Sink.Abort_decision { obj_name = name; is_write })
  in
  let write x =
    if Runtime.self () <> writer then
      invalid_arg (Printf.sprintf "Mp_reg %s: pid %d is not the writer" name
                     (Runtime.self ()));
    if decide (Value.write_op (codec.Codec.enc x)) then begin
      signal_abort ~is_write:true;
      if Abort_policy.write_takes_effect write_effect (Runtime.obj_rng rt) then
        base.Reg.write x;
      false
    end
    else begin
      base.Reg.write x;
      true
    end
  in
  let read () =
    if Runtime.self () <> reader then
      invalid_arg (Printf.sprintf "Mp_reg %s: pid %d is not the reader" name
                     (Runtime.self ()));
    if decide Value.read_op then begin
      signal_abort ~is_write:false;
      None
    end
    else Some (base.Reg.read ())
  in
  {
    Reg.Abortable.name;
    read;
    write;
    peek = base.Reg.peek;
    obj = None;
    enc = codec.Codec.enc;
    dec = codec.Codec.dec;
  }

let factory cl =
  {
    Reg.mk_reg =
      (fun ~kind ~name ~codec ~init ->
        match kind with
        | Reg.Mwmr -> atomic cl ~name ~codec ~init
        | Reg.Swmr { writer } -> regular cl ~name ~codec ~init ~writer);
    mk_areg =
      (fun ~name ~codec ~init ~writer ~reader ~policy ~write_effect ->
        abortable cl ~name ~codec ~init ~writer ~reader ~policy ~write_effect);
  }
