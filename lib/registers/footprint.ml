open Tbwf_sim

type kind = Read | Write

let pp_kind fmt = function
  | Read -> Fmt.string fmt "R"
  | Write -> Fmt.string fmt "W"

(* Register families keep the operation's nature in the op value itself
   ("read"/"write"/"cas"/"rmw" tags), so the classification is shared-state
   free. Anything we cannot positively identify as a pure read is a write. *)
let kind_of_op op =
  if Value.is_read op then Read else Write

let kind_of_event ~phase op =
  match phase with
  | `Invoke ->
    (* Invocations mutate the object's overlap bookkeeping (pending sets,
       event counters), which contention-sensitive responders — abortable
       registers, query-abortable objects — observe. An invocation is
       therefore a write access even for a read operation. *)
    Write
  | `Respond _ -> kind_of_op op
