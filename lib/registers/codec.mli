(** Bidirectional encodings between typed register contents and the
    simulator's {!Tbwf_sim.Value} wire type. *)

type 'a t = {
  enc : 'a -> Tbwf_sim.Value.t;
  dec : Tbwf_sim.Value.t -> 'a;
}

val int : int t
val bool : bool t
val string : string t
val unit : unit t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val value : Tbwf_sim.Value.t t
(** Identity codec, for registers that store raw values. *)
