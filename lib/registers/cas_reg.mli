(** Multi-writer multi-reader registers with compare-and-swap.

    The paper's §1.2 recalls that any object has a wait-free implementation
    from strong primitives like compare-and-swap [9], and the boosting
    baseline of [11] uses CAS; this register type is the substrate for those
    comparison points (the obstruction-free deque of reference [10] in
    {!Tbwf_objects.Hlm_deque} and the lock-free universal construction in
    {!Tbwf_objects.Cas_universal}). The TBWF stack itself never touches it. *)

type 'a t

val create :
  Tbwf_sim.Runtime.t -> name:string -> codec:'a Codec.t -> init:'a -> 'a t

val read : 'a t -> 'a

val write : 'a t -> 'a -> unit

val cas : 'a t -> expected:'a -> desired:'a -> bool
(** Atomically: if the current contents equals [expected] (structurally),
    replace it with [desired] and return true; otherwise return false.
    Linearizes at the response step like every simulated operation. *)

val peek : 'a t -> 'a
val metrics : _ t -> Metrics.t
(** [writes] counts successful CAS too; failed CAS counts as a read. *)
