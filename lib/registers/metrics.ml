type t = {
  mutable reads : int;
  mutable writes : int;
  mutable read_aborts : int;
  mutable write_aborts : int;
}

let create () = { reads = 0; writes = 0; read_aborts = 0; write_aborts = 0 }

let total_ops t = t.reads + t.writes + t.read_aborts + t.write_aborts

let abort_rate t =
  let total = total_ops t in
  if total = 0 then 0.0
  else float_of_int (t.read_aborts + t.write_aborts) /. float_of_int total

let pp fmt t =
  Fmt.pf fmt "reads=%d writes=%d read-aborts=%d write-aborts=%d" t.reads
    t.writes t.read_aborts t.write_aborts
