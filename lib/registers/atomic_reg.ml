open Tbwf_sim

type 'a t = {
  obj : Shared.t;
  codec : 'a Codec.t;
  cell : Value.t ref;
  metrics : Metrics.t;
}

let create rt ~name ~codec ~init =
  let metrics = Metrics.create () in
  let cell = ref (codec.Codec.enc init) in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "write", v) ->
      cell := v;
      metrics.writes <- metrics.writes + 1;
      Value.Unit
    | Value.Pair (Str "read", _) ->
      metrics.reads <- metrics.reads + 1;
      !cell
    | op -> invalid_arg (Fmt.str "Atomic_reg %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  { obj; codec; cell; metrics }

let read t =
  let result = Runtime.call t.obj Value.read_op in
  t.codec.Codec.dec result

let write t v =
  let (_ : Value.t) = Runtime.call t.obj (Value.write_op (t.codec.Codec.enc v)) in
  ()

let peek t = t.codec.Codec.dec !(t.cell)
let metrics t = t.metrics
let name t = t.obj.Shared.name
let shared t = t.obj
let encode t v = t.codec.Codec.enc v
let decode t v = t.codec.Codec.dec v
