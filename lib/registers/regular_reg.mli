(** Regular registers (Lamport).

    A read that does not overlap any write returns the last written value.
    A read that overlaps writes returns either the register's pre-read value
    or the value of one of the overlapping writes; the adversary picks.
    Included for completeness of the register hierarchy exercised by the
    test suite. *)

type 'a t

val create :
  Tbwf_sim.Runtime.t -> name:string -> codec:'a Codec.t -> init:'a -> 'a t

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit
val peek : 'a t -> 'a
val metrics : _ t -> Metrics.t
