(** Per-register operation counters, used by the write-efficiency and
    abort-rate experiments. *)

type t = {
  mutable reads : int;
  mutable writes : int;  (** write responses that took effect *)
  mutable read_aborts : int;
  mutable write_aborts : int;  (** aborted writes, whether or not they took effect *)
}

val create : unit -> t
val total_ops : t -> int
val abort_rate : t -> float
(** Fraction of operations that aborted; 0 when no operation ran. *)

val pp : Format.formatter -> t -> unit
