open Tbwf_sim

type 'a t = {
  obj : Shared.t;
  codec : 'a Codec.t;
  cell : Value.t ref;
  metrics : Metrics.t;
}

let create rt ~name ~codec ~init ~arbitrary =
  let metrics = Metrics.create () in
  let cell = ref (codec.Codec.enc init) in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "write", v) ->
      cell := v;
      metrics.writes <- metrics.writes + 1;
      Value.Unit
    | Value.Pair (Str "read", _) ->
      metrics.reads <- metrics.reads + 1;
      if List.exists Value.is_write ctx.overlap_ops then
        codec.Codec.enc (arbitrary ctx.rng)
      else !cell
    | op -> invalid_arg (Fmt.str "Safe_reg %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  { obj; codec; cell; metrics }

let read t = t.codec.Codec.dec (Runtime.call t.obj Value.read_op)

let write t v =
  let (_ : Value.t) = Runtime.call t.obj (Value.write_op (t.codec.Codec.enc v)) in
  ()

let peek t = t.codec.Codec.dec !(t.cell)
let metrics t = t.metrics
