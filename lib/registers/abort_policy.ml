open Tbwf_sim

type t =
  | Never
  | Always
  | Random of float
  | Adversarial of (Shared.ctx -> bool)

type write_effect =
  | Effect_never
  | Effect_always
  | Effect_random of float

let should_abort policy ~contended (ctx : Shared.ctx) =
  if not contended then false
  else
    match policy with
    | Never -> false
    | Always -> true
    | Random p -> Rng.bool ctx.rng p
    | Adversarial f -> f ctx

let write_takes_effect effect rng =
  match effect with
  | Effect_never -> false
  | Effect_always -> true
  | Effect_random p -> Rng.bool rng p

let pp fmt = function
  | Never -> Fmt.string fmt "never"
  | Always -> Fmt.string fmt "always-on-overlap"
  | Random p -> Fmt.pf fmt "random(%.2f)" p
  | Adversarial _ -> Fmt.string fmt "adversarial"
