open Tbwf_sim

type t =
  | Never
  | Always
  | Random of float
  | Adversarial of (Shared.ctx -> bool)
  | Unconditional of (Shared.ctx -> bool)
  | Any of t list

type write_effect =
  | Effect_never
  | Effect_always
  | Effect_random of float

let rec should_abort policy ~contended (ctx : Shared.ctx) =
  match policy with
  | Unconditional f -> f ctx
  | Any policies ->
    List.exists (fun p -> should_abort p ~contended ctx) policies
  | (Never | Always | Random _ | Adversarial _) as policy ->
    if not contended then false
    else begin
      match policy with
      | Never -> false
      | Always -> true
      | Random p -> Rng.bool ctx.rng p
      | Adversarial f -> f ctx
      | Unconditional _ | Any _ -> assert false
    end

let write_takes_effect effect rng =
  match effect with
  | Effect_never -> false
  | Effect_always -> true
  | Effect_random p -> Rng.bool rng p

let rec pp fmt = function
  | Never -> Fmt.string fmt "never"
  | Always -> Fmt.string fmt "always-on-overlap"
  | Random p -> Fmt.pf fmt "random(%.2f)" p
  | Adversarial _ -> Fmt.string fmt "adversarial"
  | Unconditional _ -> Fmt.string fmt "unconditional"
  | Any policies -> Fmt.pf fmt "any[%a]" Fmt.(list ~sep:comma pp) policies
