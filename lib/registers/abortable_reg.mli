(** Single-writer single-reader abortable registers (paper Section 6, after
    the spec of [2]).

    An abortable register behaves like an atomic register except that an
    operation that is concurrent with another operation on the same register
    may abort, returning ⊥. An aborted read conveys no value. An aborted
    write may or may not take effect, and the writer cannot tell which.
    Operations that run solo (no overlapping operation) never abort.

    The register is single-writer single-reader: only the designated writer
    may write and only the designated reader may read; violations raise
    [Invalid_argument] (they are bugs in the algorithm, not legal runs). *)

type 'a t

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  codec:'a Codec.t ->
  init:'a ->
  writer:int ->
  reader:int ->
  policy:Abort_policy.t ->
  ?write_effect:Abort_policy.write_effect ->
  unit ->
  'a t
(** [write_effect] defaults to [Effect_random 0.5]: each aborted write takes
    effect with probability 1/2, the least predictable adversary. *)

val read : 'a t -> 'a option
(** [None] is ⊥: the read aborted. Caller must be the designated reader. *)

val write : 'a t -> 'a -> bool
(** [false] is ⊥: the write aborted and may or may not have taken effect.
    Caller must be the designated writer. *)

val peek : 'a t -> 'a
(** Zero-step inspection for tests and analyses. *)

val metrics : _ t -> Metrics.t
val name : _ t -> string

(** {2 Compiled-backend access}

    As for {!Atomic_reg}: the compiled backend issues operations on the
    underlying object directly and decodes results itself ([Value.Abort]
    marks an aborted operation). *)

val shared : _ t -> Tbwf_sim.Shared.t
val encode : 'a t -> 'a -> Tbwf_sim.Value.t
val decode : 'a t -> Tbwf_sim.Value.t -> 'a
