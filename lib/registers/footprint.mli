(** Access-footprint reporting.

    Classifies shared-object accesses as reads or writes for the schedule
    explorer's independence relation ({!Tbwf_check.Independence}): two
    steps of different processes commute iff they touch disjoint objects,
    or every object they share is only {e read} by both.

    The classification is deliberately conservative in two places:

    - an operation not positively identifiable as a read (["inc"], ["cas"],
      ["rmw"], …) counts as a write, even if it happens not to change the
      state this time;
    - an {e invocation} event always counts as a write, because invoking
      updates the object's overlap bookkeeping, which abortable registers
      and query-abortable objects branch on at response time.

    Conservatism only costs reduction (fewer schedules pruned), never
    soundness. *)

type kind = Read | Write

val pp_kind : Format.formatter -> kind -> unit

val kind_of_op : Tbwf_sim.Value.t -> kind
(** [Read] iff the op is a register/object read ({!Tbwf_sim.Value.is_read}). *)

val kind_of_event :
  phase:[ `Invoke | `Respond of Tbwf_sim.Value.t ] ->
  Tbwf_sim.Value.t ->
  kind
(** Classify one trace event: invocations are writes (see above); responses
    are classified by their operation. *)
