(* First-class register handles and register factories. See reg.mli. *)

type 'a t = {
  name : string;
  read : unit -> 'a;
  write : 'a -> unit;
  peek : unit -> 'a;
  obj : Tbwf_sim.Shared.t option;
  enc : 'a -> Tbwf_sim.Value.t;
  dec : Tbwf_sim.Value.t -> 'a;
}

let obj_exn h =
  match h.obj with
  | Some obj -> obj
  | None ->
    invalid_arg
      (Printf.sprintf "Reg.obj_exn: %s is a message-passing register" h.name)

module Abortable = struct
  type 'a t = {
    name : string;
    read : unit -> 'a option;
    write : 'a -> bool;
    peek : unit -> 'a;
    obj : Tbwf_sim.Shared.t option;
    enc : 'a -> Tbwf_sim.Value.t;
    dec : Tbwf_sim.Value.t -> 'a;
  }

  let obj_exn h =
    match h.obj with
    | Some obj -> obj
    | None ->
      invalid_arg
        (Printf.sprintf "Reg.Abortable.obj_exn: %s is a message-passing \
                         register" h.name)
end

type kind = Mwmr | Swmr of { writer : int }

type factory = {
  mk_reg :
    'a. kind:kind -> name:string -> codec:'a Codec.t -> init:'a -> 'a t;
  mk_areg :
    'a.
    name:string ->
    codec:'a Codec.t ->
    init:'a ->
    writer:int ->
    reader:int ->
    policy:Abort_policy.t ->
    write_effect:Abort_policy.write_effect option ->
    'a Abortable.t;
}

let of_atomic reg =
  {
    name = Atomic_reg.name reg;
    read = (fun () -> Atomic_reg.read reg);
    write = (fun v -> Atomic_reg.write reg v);
    peek = (fun () -> Atomic_reg.peek reg);
    obj = Some (Atomic_reg.shared reg);
    enc = Atomic_reg.encode reg;
    dec = Atomic_reg.decode reg;
  }

let of_abortable reg =
  {
    Abortable.name = Abortable_reg.name reg;
    read = (fun () -> Abortable_reg.read reg);
    write = (fun v -> Abortable_reg.write reg v);
    peek = (fun () -> Abortable_reg.peek reg);
    obj = Some (Abortable_reg.shared reg);
    enc = Abortable_reg.encode reg;
    dec = Abortable_reg.decode reg;
  }

let shared_factory rt =
  {
    mk_reg =
      (fun ~kind:_ ~name ~codec ~init ->
        of_atomic (Atomic_reg.create rt ~name ~codec ~init));
    mk_areg =
      (fun ~name ~codec ~init ~writer ~reader ~policy ~write_effect ->
        of_abortable
          (Abortable_reg.create rt ~name ~codec ~init ~writer ~reader ~policy
             ?write_effect ()));
  }
