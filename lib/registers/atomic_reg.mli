(** Multi-writer multi-reader atomic registers.

    Each operation linearizes at its response step, which lies strictly
    inside its invocation/response window, so every history produced by this
    implementation is linearizable (the test suite checks this with the
    Wing–Gong checker in [Tbwf_check]). *)

type 'a t

val create :
  Tbwf_sim.Runtime.t -> name:string -> codec:'a Codec.t -> init:'a -> 'a t

val read : 'a t -> 'a
(** Must be called from inside a task; costs the task two steps. *)

val write : 'a t -> 'a -> unit
(** Must be called from inside a task; costs the task two steps. *)

val peek : 'a t -> 'a
(** Zero-step inspection of the current contents, for analyses and tests —
    never used by algorithm code. *)

val metrics : _ t -> Metrics.t
val name : _ t -> string

(** {2 Compiled-backend access}

    The compiled backend ([Tbwf_compiled]) performs register operations as
    raw machine actions instead of going through {!read}/{!write} (which
    suspend with effects). It needs the underlying object and the codec. *)

val shared : _ t -> Tbwf_sim.Shared.t
(** The underlying simulated object. *)

val encode : 'a t -> 'a -> Tbwf_sim.Value.t
val decode : 'a t -> Tbwf_sim.Value.t -> 'a
