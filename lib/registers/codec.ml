open Tbwf_sim

type 'a t = { enc : 'a -> Value.t; dec : Value.t -> 'a }

let int = { enc = (fun i -> Value.Int i); dec = Value.to_int }
let bool = { enc = (fun b -> Value.Bool b); dec = Value.to_bool }

let string =
  {
    enc = (fun s -> Value.Str s);
    dec = (function Value.Str s -> s | v -> invalid_arg (Value.to_string v));
  }

let unit =
  {
    enc = (fun () -> Value.Unit);
    dec = (function Value.Unit -> () | v -> invalid_arg (Value.to_string v));
  }

let pair a b =
  {
    enc = (fun (x, y) -> Value.Pair (a.enc x, b.enc y));
    dec =
      (fun v ->
        let x, y = Value.to_pair v in
        a.dec x, b.dec y);
  }

let triple a b c =
  {
    enc = (fun (x, y, z) -> Value.Pair (a.enc x, Value.Pair (b.enc y, c.enc z)));
    dec =
      (fun v ->
        let x, yz = Value.to_pair v in
        let y, z = Value.to_pair yz in
        a.dec x, b.dec y, c.dec z);
  }

let list a =
  {
    enc = (fun xs -> Value.List (List.map a.enc xs));
    dec = (fun v -> List.map a.dec (Value.to_list v));
  }

let value = { enc = Fun.id; dec = Fun.id }
