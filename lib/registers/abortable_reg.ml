open Tbwf_sim

type 'a t = {
  obj : Shared.t;
  codec : 'a Codec.t;
  cell : Value.t ref;
  writer : int;
  reader : int;
  metrics : Metrics.t;
}

let create rt ~name ~codec ~init ~writer ~reader ~policy
    ?(write_effect = Abort_policy.Effect_random 0.5) () =
  let metrics = Metrics.create () in
  let cell = ref (codec.Codec.enc init) in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "write", v) ->
      if ctx.pid <> writer then
        invalid_arg
          (Fmt.str "Abortable_reg %s: pid %d is not the writer (%d)" name
             ctx.pid writer);
      if Abort_policy.should_abort policy ~contended:ctx.overlapped ctx then begin
        metrics.write_aborts <- metrics.write_aborts + 1;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid:ctx.pid
            (Sink.Abort_decision { obj_name = name; is_write = true });
        if Abort_policy.write_takes_effect write_effect ctx.rng then cell := v;
        Value.Abort
      end
      else begin
        cell := v;
        metrics.writes <- metrics.writes + 1;
        Value.Unit
      end
    | Value.Pair (Str "read", _) ->
      if ctx.pid <> reader then
        invalid_arg
          (Fmt.str "Abortable_reg %s: pid %d is not the reader (%d)" name
             ctx.pid reader);
      if Abort_policy.should_abort policy ~contended:ctx.overlapped ctx then begin
        metrics.read_aborts <- metrics.read_aborts + 1;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid:ctx.pid
            (Sink.Abort_decision { obj_name = name; is_write = false });
        Value.Abort
      end
      else begin
        metrics.reads <- metrics.reads + 1;
        !cell
      end
    | op -> invalid_arg (Fmt.str "Abortable_reg %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  { obj; codec; cell; writer; reader; metrics }

let read t =
  match Runtime.call t.obj Value.read_op with
  | Value.Abort -> None
  | v -> Some (t.codec.Codec.dec v)

let write t v =
  match Runtime.call t.obj (Value.write_op (t.codec.Codec.enc v)) with
  | Value.Abort -> false
  | _ -> true

let peek t = t.codec.Codec.dec !(t.cell)
let metrics t = t.metrics
let name t = t.obj.Shared.name
let shared t = t.obj
let encode t v = t.codec.Codec.enc v
let decode t v = t.codec.Codec.dec v
