(** Safe registers (Lamport).

    A read that does not overlap any write returns the last written value.
    A read that overlaps a write may return {e any} value of the register's
    domain — the adversary (here, the run's RNG through [arbitrary]) picks.
    Writes always take effect; this is the sense in which even safe
    registers are stronger than abortable registers (a write on an abortable
    register can abort without taking effect).

    Included for the paper's comparison (§1.2, footnote 2); the TBWF stack
    itself never uses safe registers. *)

type 'a t

val create :
  Tbwf_sim.Runtime.t ->
  name:string ->
  codec:'a Codec.t ->
  init:'a ->
  arbitrary:(Tbwf_sim.Rng.t -> 'a) ->
  'a t

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit
val peek : 'a t -> 'a
val metrics : _ t -> Metrics.t
