open Tbwf_sim

type 'a t = {
  obj : Shared.t;
  codec : 'a Codec.t;
  cell : Value.t ref;
  metrics : Metrics.t;
}

let create rt ~name ~codec ~init =
  let metrics = Metrics.create () in
  let cell = ref (codec.Codec.enc init) in
  let respond (ctx : Shared.ctx) =
    match ctx.op with
    | Value.Pair (Str "write", v) ->
      cell := v;
      metrics.writes <- metrics.writes + 1;
      Value.Unit
    | Value.Pair (Str "read", _) ->
      metrics.reads <- metrics.reads + 1;
      let concurrent_writes =
        List.filter_map
          (function Value.Pair (Str "write", v) -> Some v | _ -> None)
          ctx.overlap_ops
      in
      (* The current contents is always legal: it is either the pre-read
         value (no overlapping write responded yet) or the value of an
         overlapping write. Overlapping writes' values are legal too. *)
      let candidates = Array.of_list (!cell :: concurrent_writes) in
      Rng.pick ctx.rng candidates
    | op -> invalid_arg (Fmt.str "Regular_reg %s: bad op %a" name Value.pp op)
  in
  let obj = Runtime.register_object rt ~name ~respond in
  { obj; codec; cell; metrics }

let read t = t.codec.Codec.dec (Runtime.call t.obj Value.read_op)

let write t v =
  let (_ : Value.t) = Runtime.call t.obj (Value.write_op (t.codec.Codec.enc v)) in
  ()

let peek t = t.codec.Codec.dec !(t.cell)
let metrics t = t.metrics
