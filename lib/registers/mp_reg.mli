(** Message-passing register emulations over {!Tbwf_net.Net}.

    A {!Cluster.t} runs one server task per replica (pids
    [n_clients .. n_clients+replicas-1]); every register allocated from
    the cluster is a slice of each replica's state, multiplexed over the
    replica's inbox by register id. Registers tolerate a {e minority} of
    replica crashes: an operation completes once a majority of replicas
    answered, and blocks (retransmitting) while no live majority is
    reachable — which is precisely how the fault surface below the
    register abstraction becomes visible to the TBWF layers above it.

    Three emulations:

    - {!atomic}: MWMR atomic, ABD-style. Reads are two-phase (query the
      highest [(ts, wid)] tag from a majority, then write it back to a
      majority before returning, so a later read can never observe an
      older value); writes query the highest timestamp, then write
      [(ts+1, self)] to a majority.
    - {!regular}: SWMR regular, the time-efficient variant (after
      Mostéfaoui–Raynal): the unique writer numbers its writes locally,
      so writes and reads are both single-phase — half the round trips,
      at the cost of regular (not atomic) semantics, which is exactly
      what single-writer heartbeat-style users need.
    - {!abortable}: SWSR abortable over {!regular}. The abort decision is
      made client-side, before any message leaves: contention-gated
      policies ([Always]/[Random]/...) never fire here because a quorum
      emulation serializes at the replicas rather than detecting overlap
      — aborting is a permission, not an obligation, so this is a legal
      implementation of the spec — while [Unconditional] fault-injection
      policies (abort ramps, staleness windows) fire exactly as they do
      on shared memory. An aborted write that "takes effect" performs
      the full quorum write and still reports ⊥.

    Determinism: client-side draws (abort decisions, write effects) come
    from the runtime's object stream at the deciding task's current step;
    all network draws happen inside inbox responds. Both are fixed by the
    schedule, so runs replay byte-identically. *)

module Cluster : sig
  type t

  val create : Tbwf_sim.Runtime.t -> net:Tbwf_net.Net.t -> t
  (** Spawn one server task per replica ("replica[r]", layer
      {!Tbwf_sim.Sink.Other}) and return the allocation handle. Call
      after [Net.create], before spawning clients. *)

  val net : t -> Tbwf_net.Net.t
end

val atomic :
  Cluster.t -> name:string -> codec:'a Codec.t -> init:'a -> 'a Reg.t

val regular :
  Cluster.t ->
  name:string ->
  codec:'a Codec.t ->
  init:'a ->
  writer:int ->
  'a Reg.t
(** Only [writer] may write (checked); anyone may read. *)

val abortable :
  Cluster.t ->
  name:string ->
  codec:'a Codec.t ->
  init:'a ->
  writer:int ->
  reader:int ->
  policy:Abort_policy.t ->
  write_effect:Abort_policy.write_effect option ->
  'a Reg.Abortable.t

val factory : Cluster.t -> Reg.factory
(** [Mwmr ↦ atomic], [Swmr ↦ regular], abortable as above: the
    message-passing substrate for [System.build]. *)
