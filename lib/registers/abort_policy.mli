(** Abort policies for abortable registers and query-abortable objects.

    The paper's abortable register spec says only that operations accessed
    concurrently {e may} abort; the adversary decides which. A policy
    resolves that choice per operation, and also whether an aborted write
    nevertheless takes effect (the spec allows either, and the writer
    cannot tell). *)

type t =
  | Never  (** no operation ever aborts (degenerates to atomic) *)
  | Always  (** every overlapped operation aborts — the harshest adversary *)
  | Random of float  (** an overlapped operation aborts with this probability *)
  | Adversarial of (Tbwf_sim.Shared.ctx -> bool)
      (** full custom control: return true to abort this overlapped op *)

type write_effect =
  | Effect_never  (** aborted writes never take effect *)
  | Effect_always  (** aborted writes always take effect *)
  | Effect_random of float  (** aborted writes take effect with this probability *)

val should_abort : t -> contended:bool -> Tbwf_sim.Shared.ctx -> bool
(** Decide an operation's fate. [contended] is the caller's notion of
    concurrency (registers pass [ctx.overlapped], query-abortable objects
    pass [ctx.step_contended]); a non-contended operation never aborts,
    regardless of the policy: solo operations always succeed. *)

val write_takes_effect : write_effect -> Tbwf_sim.Rng.t -> bool

val pp : Format.formatter -> t -> unit
