(** Abort policies for abortable registers and query-abortable objects.

    The paper's abortable register spec says only that operations accessed
    concurrently {e may} abort; the adversary decides which. A policy
    resolves that choice per operation, and also whether an aborted write
    nevertheless takes effect (the spec allows either, and the writer
    cannot tell). *)

type t =
  | Never  (** no operation ever aborts (degenerates to atomic) *)
  | Always  (** every overlapped operation aborts — the harshest adversary *)
  | Random of float
      (** an overlapped operation aborts with this probability, drawn from
          the runtime's seeded object stream ([ctx.rng], which is
          {!Tbwf_sim.Runtime.obj_rng}) — never from ambient randomness, so
          abort sequences are reproducible from the runtime seed alone *)
  | Adversarial of (Tbwf_sim.Shared.ctx -> bool)
      (** full custom control: return true to abort this overlapped op *)
  | Unconditional of (Tbwf_sim.Shared.ctx -> bool)
      (** consulted on {e every} operation, contended or not. This steps
          outside the paper's register spec (solo operations succeed) on
          purpose: it models faults {e below} the register abstraction —
          in the paper's message-passing implementation of abortable
          registers, a slow or lossy channel surfaces exactly as an abort —
          and is how fault-injection campaigns ({!Tbwf_nemesis}) express
          abort-rate ramps and staleness bursts *)
  | Any of t list
      (** abort iff any sub-policy says abort: composes a base adversary
          with injected fault atoms *)

type write_effect =
  | Effect_never  (** aborted writes never take effect *)
  | Effect_always  (** aborted writes always take effect *)
  | Effect_random of float  (** aborted writes take effect with this probability *)

val should_abort : t -> contended:bool -> Tbwf_sim.Shared.ctx -> bool
(** Decide an operation's fate. [contended] is the caller's notion of
    concurrency (registers pass [ctx.overlapped], query-abortable objects
    pass [ctx.step_contended]); a non-contended operation never aborts
    under the spec-level policies ([Never]/[Always]/[Random]/[Adversarial])
    — solo operations always succeed. Only [Unconditional] (a modelled
    fault below the register) can abort a solo operation. *)

val write_takes_effect : write_effect -> Tbwf_sim.Rng.t -> bool

val pp : Format.formatter -> t -> unit
