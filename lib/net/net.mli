(** Deterministic simulated message-passing network.

    The network is a library on top of the step simulator: every node
    (process) owns one {e inbox} shared object, a [send] is an operation on
    the destination's inbox and a [poll] is an operation on the sender's
    own inbox. Because message admission, loss, latency and delivery all
    happen inside shared-object [respond] functions, they are ordered by
    response steps and draw randomness from the runtime's {e object}
    stream — so a run over the network is a pure function of (seed,
    policy, config), replays byte-identically under [Policy.replay], and
    is oblivious to how many domains fan independent runs out.

    {2 Fault model}

    The config carries a timeline of network events:

    - {e partitions} cut all links between a pid set and its complement;
      a later heal restores them. A cut link drops messages {e at send
      time}; messages already in flight when a partition starts still
      deliver (they left the sender before the cut).
    - {e drop windows} lose each message crossing a matching link with a
      probability interpolated linearly across the window.
    - {e delay windows} add interpolated extra latency to matching links
      without losing anything — the graceful-degradation regime: links
      stay timely in the eventual sense, just slower.

    Baseline latency is [base_latency] plus a uniform draw in
    [0..jitter], so message reordering arises naturally.

    {2 Determinism contract}

    Per accepted [send] the inbox draws, in this order: the jitter draw
    (iff [jitter > 0]) and the loss draw (iff the combined drop rate at
    that step is positive). Both conditions are pure functions of the
    config and the response step, so the object stream's consumption —
    and hence every later draw in the run — depends only on the response
    order, which a replayed schedule fixes. *)

(** One timeline entry. Steps are runtime step numbers. *)
type event =
  | Ev_partition of { at : int; side : int list }
      (** from step [at], cut every link between [side] and its
          complement (pids, clients and replicas alike) *)
  | Ev_heal of { at : int }  (** from step [at], no partition *)
  | Ev_delay of {
      from_ : int;
      until : int;
      extra0 : float;
      extra1 : float;
      node : int option;
          (** [None] = all links; [Some p] = links touching pid [p] *)
    }
      (** extra latency interpolated [extra0 → extra1] over
          [[from_, until)] *)
  | Ev_drop of {
      from_ : int;
      until : int;
      rate0 : float;
      rate1 : float;
      node : int option;
    }
      (** loss probability interpolated [rate0 → rate1] over
          [[from_, until)] *)

type config = {
  replicas : int;  (** server replicas (pids n..n+replicas-1) *)
  base_latency : int;  (** minimum one-way delivery delay, in steps *)
  jitter : int;  (** uniform extra delay in [0..jitter] *)
  retransmit_every : int;
      (** client retransmit cadence, in polls, used by [Mp_reg] *)
  events : event list;
}

val default_config : config
(** 3 replicas, base latency 3, jitter 2, retransmit every 12 polls, no
    events. *)

val majority : config -> int
(** [replicas/2 + 1] — the quorum size of the register emulations. *)

val validate_config : config -> (unit, string) result

(** {2 Pure timeline queries}

    Used by the emergent-timeliness predictor as well as by the transport
    itself; events are applied in time order ([at] / window start),
    stably, so same-step events resolve in list order. *)

val cut_at : config -> at:int -> int -> int -> bool
(** [cut_at config ~at a b] — is the link between pids [a] and [b] cut by
    the partition in force at step [at]? *)

val drop_rate_at : config -> at:int -> int -> int -> float
(** Combined loss probability on a link at a step (independent-draw
    combination of every active matching drop window, clamped to
    [[0,1]]). *)

val extra_delay_at : config -> at:int -> int -> int -> int
(** Summed interpolated extra latency on a link at a step, rounded. *)

(** {2 Transport} *)

type t

val create : Tbwf_sim.Runtime.t -> config:config -> t
(** Register one inbox object per pid ("inbox[0]", "inbox[1]", ...), in
    pid order. Call once, before any other objects whose creation order
    matters have been registered, so object ids stay stable. *)

val config : t -> config

val n_clients : t -> int
(** [Runtime.n rt - config.replicas]: client pids are [0..n_clients-1]. *)

val replica_pid : t -> int -> int
(** [replica_pid t r = n_clients t + r]. *)

val fresh_key : t -> pid:int -> int
(** Next demux key for [pid]'s operations — monotonic per pid, local
    (consumes no steps and no randomness). *)

val catch_all : int
(** The poll key ([-1]) that matches every message — what replica server
    loops poll with. *)

(** {2 Inside-task API} *)

val send : t -> dst:int -> key:int -> Tbwf_sim.Value.t -> unit
(** Post [payload] to [dst]'s inbox (one shared-object call, two steps).
    Loss, latency and partitions are decided at the call's response step.
    Replies echo the request's [key]. *)

val poll : t -> key:int -> (int * int * Tbwf_sim.Value.t) list
(** Deliver the caller's due messages ([(src, key, payload)] triples,
    delivery order, ties in send order). With a non-negative [key], only
    messages for exactly that key are returned, and delivered messages
    for {e older} keys are discarded — replies that straggled in after
    their operation completed. With {!catch_all}, everything due is
    returned. One shared-object call, two steps. *)
