(* Deterministic simulated message-passing network. See net.mli for the
   model and the determinism contract. *)

open Tbwf_sim

type event =
  | Ev_partition of { at : int; side : int list }
  | Ev_heal of { at : int }
  | Ev_delay of {
      from_ : int;
      until : int;
      extra0 : float;
      extra1 : float;
      node : int option;
    }
  | Ev_drop of {
      from_ : int;
      until : int;
      rate0 : float;
      rate1 : float;
      node : int option;
    }

type config = {
  replicas : int;
  base_latency : int;
  jitter : int;
  retransmit_every : int;
  events : event list;
}

let default_config =
  {
    replicas = 3;
    base_latency = 3;
    jitter = 2;
    retransmit_every = 12;
    events = [];
  }

let majority config = (config.replicas / 2) + 1

let validate_event = function
  | Ev_partition { at; side } ->
    if at < 0 then Error "partition: at < 0"
    else if side = [] then Error "partition: empty side"
    else Ok ()
  | Ev_heal { at } -> if at < 0 then Error "heal: at < 0" else Ok ()
  | Ev_delay { from_; until; extra0; extra1; _ } ->
    if from_ < 0 || until < from_ then Error "delay: bad window"
    else if extra0 < 0. || extra1 < 0. then Error "delay: negative extra"
    else Ok ()
  | Ev_drop { from_; until; rate0; rate1; _ } ->
    if from_ < 0 || until < from_ then Error "drop: bad window"
    else if rate0 < 0. || rate0 > 1. || rate1 < 0. || rate1 > 1. then
      Error "drop: rate outside [0,1]"
    else Ok ()

let validate_config config =
  if config.replicas < 1 then Error "config: replicas < 1"
  else if config.base_latency < 1 then Error "config: base_latency < 1"
  else if config.jitter < 0 then Error "config: jitter < 0"
  else if config.retransmit_every < 1 then Error "config: retransmit_every < 1"
  else
    List.fold_left
      (fun acc ev -> match acc with Error _ -> acc | Ok () -> validate_event ev)
      (Ok ()) config.events

(* --- pure timeline queries ------------------------------------------------ *)

let event_time = function
  | Ev_partition { at; _ } | Ev_heal { at } -> at
  | Ev_delay { from_; _ } | Ev_drop { from_; _ } -> from_

let sorted_events config =
  List.stable_sort (fun a b -> compare (event_time a) (event_time b))
    config.events

(* Last partition/heal with [at' <= at] wins (events pre-sorted by time,
   stably, so same-step entries resolve in list order). *)
let partition_side events ~at =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Ev_partition { at = t; side } when t <= at -> Some side
      | Ev_heal { at = t } when t <= at -> None
      | _ -> acc)
    None events

let link_matches node a b =
  match node with None -> true | Some p -> p = a || p = b

let interp ~from_ ~until ~v0 ~v1 at =
  if until <= from_ then v1
  else
    v0
    +. (v1 -. v0)
       *. float_of_int (at - from_)
       /. float_of_int (until - from_)

let cut_in events ~at a b =
  match partition_side events ~at with
  | None -> false
  | Some side -> List.mem a side <> List.mem b side

let drop_rate_in events ~at a b =
  let survive =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Ev_drop { from_; until; rate0; rate1; node }
          when from_ <= at && at < until && link_matches node a b ->
          let r =
            Float.min 1. (Float.max 0. (interp ~from_ ~until ~v0:rate0 ~v1:rate1 at))
          in
          acc *. (1. -. r)
        | _ -> acc)
      1. events
  in
  1. -. survive

let extra_delay_in events ~at a b =
  let extra =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Ev_delay { from_; until; extra0; extra1; node }
          when from_ <= at && at < until && link_matches node a b ->
          acc +. Float.max 0. (interp ~from_ ~until ~v0:extra0 ~v1:extra1 at)
        | _ -> acc)
      0. events
  in
  int_of_float (Float.round extra)

let cut_at config ~at a b = cut_in (sorted_events config) ~at a b
let drop_rate_at config ~at a b = drop_rate_in (sorted_events config) ~at a b

let extra_delay_at config ~at a b =
  extra_delay_in (sorted_events config) ~at a b

(* --- transport ------------------------------------------------------------ *)

type msg = {
  delivery : int;
  seq : int;  (** global send order, the delivery tie-break *)
  src : int;
  key : int;
  payload : Value.t;
}

type t = {
  rt : Runtime.t;
  config : config;
  events : event list;  (** sorted by time *)
  inboxes : Shared.t array;
  queues : msg list ref array;  (** pending per destination *)
  seq : int ref;
  keys : int array;  (** per-pid fresh-key counters *)
}

let catch_all = -1

let msg_order a b = compare (a.delivery, a.seq) (b.delivery, b.seq)

(* The inbox object of [dst]. "post" admits a message from ctx.pid: the
   loss/latency decisions happen here, at the send's response step, off
   the object rng — see the determinism contract in net.mli. "poll"
   returns (and removes) the due messages for a demux key. *)
let inbox_respond rt config events queues seq ~dst ctx =
  match ctx.Shared.op with
  | Value.Pair (Value.Str "post", Value.Pair (Value.Int key, payload)) ->
    let src = ctx.Shared.pid in
    let at = ctx.Shared.respond_step in
    let jitter =
      if config.jitter > 0 then Rng.int ctx.Shared.rng (config.jitter + 1)
      else 0
    in
    let extra = extra_delay_in events ~at src dst in
    let latency = max 1 (config.base_latency + jitter + extra) in
    let rate = drop_rate_in events ~at src dst in
    let lost =
      (* fixed draw order: jitter above, then the loss draw *)
      cut_in events ~at src dst
      || (rate > 0. && Rng.bool ctx.Shared.rng rate)
    in
    if Runtime.telemetry_active rt then
      Runtime.signal rt ~pid:src
        (Sink.Message { src; dst; latency; dropped = lost });
    if not lost then begin
      incr seq;
      queues.(dst) :=
        { delivery = at + latency; seq = !seq; src; key; payload }
        :: !(queues.(dst))
    end;
    Value.Unit
  | Value.Pair (Value.Str "poll", Value.Int key) ->
    let at = ctx.Shared.respond_step in
    (* Remove everything due for this key or an older one; stale-key
       messages (replies to operations that already completed) are
       discarded, which is the queue's garbage collection. *)
    let due, rest =
      List.partition
        (fun m -> m.delivery <= at && (key = catch_all || m.key <= key))
        !(queues.(dst))
    in
    queues.(dst) := rest;
    let due = List.filter (fun m -> key = catch_all || m.key = key) due in
    let due = List.sort msg_order due in
    Value.List
      (List.map
         (fun m ->
           Value.Pair (Value.Int m.src, Value.Pair (Value.Int m.key, m.payload)))
         due)
  | _ -> Value.Fail

let create rt ~config =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.create: " ^ msg));
  let nodes = Runtime.n rt in
  if config.replicas >= nodes then
    invalid_arg "Net.create: replicas >= Runtime.n (no client pids left)";
  let events = sorted_events config in
  let queues = Array.init nodes (fun _ -> ref []) in
  let seq = ref 0 in
  let inboxes =
    Array.init nodes (fun dst ->
        Runtime.register_object rt
          ~name:(Fmt.str "inbox[%d]" dst)
          ~respond:(inbox_respond rt config events queues seq ~dst))
  in
  { rt; config; events; inboxes; queues; seq; keys = Array.make nodes 0 }

let config t = t.config
let n_clients t = Runtime.n t.rt - t.config.replicas
let replica_pid t r = n_clients t + r

let fresh_key t ~pid =
  let k = t.keys.(pid) in
  t.keys.(pid) <- k + 1;
  k

let send t ~dst ~key payload =
  ignore
    (Runtime.call t.inboxes.(dst)
       (Value.Pair (Value.Str "post", Value.Pair (Value.Int key, payload))))

let poll t ~key =
  let me = Runtime.self () in
  match
    Runtime.call t.inboxes.(me) (Value.Pair (Value.Str "poll", Value.Int key))
  with
  | Value.List msgs ->
    List.map
      (fun m ->
        match m with
        | Value.Pair (Value.Int src, Value.Pair (Value.Int k, payload)) ->
          (src, k, payload)
        | _ -> assert false)
      msgs
  | _ -> assert false
