(** Ω∆ from abortable registers only — paper Section 6, Figure 6
    (Theorem 13).

    Candidates exchange two kinds of information over SWSR abortable
    registers: eventually-stable values (their own counters and punishments,
    via {!Msg_channel}) and liveness (via the two-register {!Heartbeat}).
    Each candidate picks as leader the process with the smallest (counter,
    pid) among those it currently considers timely. Punishing q means asking
    q — through the message channel — to raise its own counter above the
    punisher's current leader's counter; a process that (re)joins the
    competition self-punishes the same way, which keeps repeatedly-joining
    candidates from destabilizing the election without making its own
    counter change forever (a counter that kept changing could never be
    propagated by the message channel).

    A process stops sending heartbeats to any q it cannot write to
    ([writeDone[q]] = false): if q keeps considering p active, q eventually
    learns p's final counter — the consistency property the correctness
    argument hinges on. *)

type t = {
  handles : Omega_spec.handle array;
  msg_registers :
    Msg_channel.payload Tbwf_registers.Reg.Abortable.t option array array;
  hb_mesh : Heartbeat.mesh;
}

val install :
  ?factory:Tbwf_registers.Reg.factory ->
  ?n:int ->
  Tbwf_sim.Runtime.t ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?write_effect:Tbwf_registers.Abort_policy.write_effect ->
  unit ->
  t
(** Create all abortable registers (3 per ordered pair of processes) and
    spawn each process's Ω∆ main task. [policy] governs when concurrent
    register operations abort. [factory] selects the register substrate
    and [n] restricts the election to processes 0..n-1, as in
    {!Omega_registers.install}. *)
