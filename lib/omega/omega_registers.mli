(** Ω∆ from activity monitors and atomic registers — paper Section 5.2,
    Figure 3 (Theorems 11–12).

    Each candidate process maintains, for every process q, a shared counter
    [CounterRegister[q]] of how many times q was considered "bad" for
    leadership: q increments its own counter whenever it (re)joins the
    competition (the self-punishment that keeps repeated candidates from
    destabilizing the election), and any candidate p increments
    [CounterRegister[q]] when its activity monitor A(p,q) suspects q of not
    being p-timely. Candidates pick as leader the active process with the
    lexicographically smallest (counter, pid), and advertise activity to
    others only while they consider themselves the leader — which makes the
    implementation write-efficient: eventually only the leader (and
    repeatedly joining candidates) write to shared registers. *)

type t = {
  handles : Omega_spec.handle array;  (** indexed by pid *)
  monitors : Tbwf_monitor.Activity_monitor.t option array array;
      (** [monitors.(p).(q)] is A(p,q); [None] on the diagonal *)
  counters : int Tbwf_registers.Reg.t array;
      (** [CounterRegister[q]], multi-writer atomic (a handle: backed by a
          shared object or by the ABD emulation, per the wiring factory) *)
}

val install :
  ?self_punishment:bool ->
  ?factory:Tbwf_registers.Reg.factory ->
  ?n:int ->
  Tbwf_sim.Runtime.t ->
  t
(** Create the full monitor mesh and counter registers, and spawn each
    process's Ω∆ main task. Every process starts as a non-candidate.

    [self_punishment] (default true) enables Figure 3's lines 7–8: a
    process increments its own counter every time it (re)joins the
    competition. Disabling it is the ablation of experiment E11 — the
    paper notes that without it a repeatedly-joining process with the
    smallest counter makes leadership oscillate forever.

    [factory] selects the register substrate (default:
    {!Tbwf_registers.Reg.shared_factory}); [n] restricts the election to
    processes 0..n-1 (default: all of the runtime's processes — pass it
    when the runtime also hosts replica server pids that take no part in
    the election). *)
