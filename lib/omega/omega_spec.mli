(** The dynamic leader elector Ω∆ — specification side (paper Section 4).

    Each process [p] interacts with Ω∆ through two local variables:
    [candidate] (input: does p currently compete for leadership?) and
    [leader] (output: who Ω∆ thinks the leader is, or "?" when it offers no
    information). Definition 5 requires that if some timely process is a
    permanent candidate, a timely (permanent or repeated) candidate ℓ is
    eventually elected: ℓ sees itself, permanent candidates see ℓ, repeated
    candidates see ℓ or ?, and non-candidates eventually see ?. *)

type view = Leader of int | No_leader  (** [No_leader] is the paper's "?" *)

val pp_view : Format.formatter -> view -> unit
val equal_view : view -> view -> bool

type handle = {
  pid : int;
  candidate : bool ref;  (** Ω∆ input, written by the application *)
  leader : view ref;  (** Ω∆ output, written by the Ω∆ implementation *)
}

val make_handle : pid:int -> handle

val set_view : Tbwf_sim.Runtime.t -> handle -> view -> unit
(** [set_view rt h v] updates [h.leader] to [v], emitting a telemetry
    {!Tbwf_sim.Sink.Leader_view} signal when the view actually changes.
    Ω∆ implementations route every [leader :=] assignment through this. *)

(** {2 Canonical use (Definition 6)}

    After setting [candidate] to false, a canonical user waits until
    [leader ≠ p] before setting [candidate] to true again. Theorem 7 then
    guarantees the elected leader is a timely {e permanent} candidate. *)

val canonical_join : handle -> unit
(** Wait (inside a task) until [leader <> Leader pid], then set
    [candidate := true]. *)

val leave : handle -> unit
(** Set [candidate := false]. *)

(** {2 Run classification and property checking}

    Experiments sample every handle between run segments and evaluate
    Definition 5 / Theorem 7 on the samples. *)

type sample = {
  at_step : int;
  views : view array;  (** indexed by pid *)
  candidacies : bool array;  (** indexed by pid *)
}

val take_sample : at_step:int -> handle array -> sample

type verdict = {
  elected : int option;
      (** the stable leader over the checked suffix, if any *)
  violations : string list;  (** human-readable property violations *)
}

val check_election :
  samples:sample list ->
  suffix:int ->
  pcandidates:int list ->
  rcandidates:int list ->
  ncandidates:int list ->
  timely:int list ->
  crashed:int list ->
  ?lagging:int list ->
  unit ->
  verdict
(** Evaluate Definition 5 (with the Theorem 7 strengthening that the elected
    leader is in Pcandidates ∩ Timely when the use is canonical — pass the
    expected classes accordingly) over the last [suffix] samples:
    - property 1(a): some ℓ ∈ pcandidates ∩ timely has [views.(ℓ) = Leader ℓ]
      throughout the suffix;
    - property 1(b): every p ∈ pcandidates has [views.(p) = Leader ℓ]
      throughout the suffix;
    - property 1(c): every p ∈ rcandidates has [views.(p) ∈ {?, Leader ℓ}]
      throughout the suffix;
    - property 2: every p ∈ ncandidates has [views.(p) = ?] throughout.
    If [pcandidates ∩ timely] is empty, only property 2 is checked.

    [lagging] processes (typically the non-timely ones) are exempt from the
    view-settling checks 1(b), 1(c) and 2: the paper's properties quantify
    over infinite suffixes, and a correct-but-arbitrarily-slow process can
    hold a stale view at every finite sampling point while still satisfying
    them in the limit. They are still barred from being elected unless
    timely, via 1(a). *)
