(** Communicating the final value of a variable that eventually stops
    changing, over abortable registers — paper Section 6, Figure 4.

    Writer side: whenever its message for q changes, p repeatedly writes it
    to the SWSR abortable register MsgRegister[p,q] until a write succeeds.
    Reader side: q polls MsgRegister[p,q], doubling down on patience
    (incrementing its read timeout) whenever a read aborts or returns an
    unchanged value — so that if p is q-timely, q eventually reads so rarely
    that p writes solo and succeeds.

    The guarantee (used by the Ω∆ proof) is only: if p is q-timely, keeps
    calling {!write_msgs}, and its message to q stops changing, then q
    eventually holds that final value in [prev_msg_from]. *)

type payload = int * int
(** Figure 6 sends (counter[p], actrTo[q]) pairs. *)

type t
(** Per-process channel endpoint state (both writer and reader sides). *)

val registers :
  ?factory:Tbwf_registers.Reg.factory ->
  Tbwf_sim.Runtime.t ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?write_effect:Tbwf_registers.Abort_policy.write_effect ->
  n:int ->
  unit ->
  payload Tbwf_registers.Reg.Abortable.t option array array
(** [registers rt ~policy ~n ()] creates the full mesh: element [(p).(q)]
    is MsgRegister[p,q] (written by p, read by q); [None] on the diagonal. *)

val create :
  me:int ->
  registers:payload Tbwf_registers.Reg.Abortable.t option array array ->
  t
(** Fresh per-process state for process [me] over a shared register mesh. *)

val write_msgs : t -> payload array -> bool array
(** Figure 4, [WriteMsgs(msgTo)]: try to propagate [msgTo.(q)] to every
    q ≠ me; returns [prevWriteDone] — whether the latest value for q has
    been written successfully. Costs register-write steps only for entries
    that still need writing. *)

val read_msgs : t -> payload array
(** Figure 4, [ReadMsgs()]: poll peers' registers per the adaptive timeout;
    returns [prevMsgFrom] — the last successfully read payload from each
    peer (the array is the internal state; do not mutate). *)
