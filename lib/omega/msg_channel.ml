open Tbwf_registers

type payload = int * int

type t = {
  me : int;
  regs : payload Reg.Abortable.t option array array;
  n : int;
  msg_curr : payload array;
  prev_write_done : bool array;
  prev_msg_from : payload array;
  read_timer : int array;
  read_timeout : int array;
}

let registers ?factory rt ~policy ?write_effect ~n () =
  let factory =
    match factory with Some f -> f | None -> Reg.shared_factory rt
  in
  Array.init n (fun p ->
      Array.init n (fun q ->
          if p = q then None
          else
            Some
              (factory.Reg.mk_areg
                 ~name:(Fmt.str "Msg[%d->%d]" p q)
                 ~codec:(Codec.pair Codec.int Codec.int)
                 ~init:(0, 0) ~writer:p ~reader:q ~policy ~write_effect)))

let create ~me ~registers =
  let n = Array.length registers in
  {
    me;
    regs = registers;
    n;
    msg_curr = Array.make n (0, 0);
    prev_write_done = Array.make n true;
    prev_msg_from = Array.make n (0, 0);
    read_timer = Array.make n 1;
    read_timeout = Array.make n 1;
  }

let write_msgs t msg_to =
  for q = 0 to t.n - 1 do
    if q <> t.me then
      if (not t.prev_write_done.(q)) || t.msg_curr.(q) <> msg_to.(q) then begin
        if t.prev_write_done.(q) then t.msg_curr.(q) <- msg_to.(q);
        let reg = Option.get t.regs.(t.me).(q) in
        t.prev_write_done.(q) <- reg.Reg.Abortable.write t.msg_curr.(q)
      end
  done;
  t.prev_write_done

let read_msgs t =
  for q = 0 to t.n - 1 do
    if q <> t.me then begin
      if t.read_timer.(q) >= 1 then t.read_timer.(q) <- t.read_timer.(q) - 1;
      if t.read_timer.(q) = 0 then begin
        t.read_timer.(q) <- t.read_timeout.(q);
        let reg = Option.get t.regs.(q).(t.me) in
        match reg.Reg.Abortable.read () with
        | None -> t.read_timeout.(q) <- t.read_timeout.(q) + 1
        | Some v when v = t.prev_msg_from.(q) ->
          t.read_timeout.(q) <- t.read_timeout.(q) + 1
        | Some v ->
          t.prev_msg_from.(q) <- v;
          t.read_timeout.(q) <- 1
      end
    end
  done;
  t.prev_msg_from
