(** Communicating a heartbeat over abortable registers — paper Section 6,
    Figure 5.

    A single abortable heartbeat register is not enough: all of the reader's
    reads may abort (which proves the writer is alive but not that it is
    timely — the writer might take ever longer to complete each write). The
    paper's fix is two registers written in alternation: the reader deems
    the writer timely only if {e both} reads abort-or-advance. A writer that
    stalls inside one write leaves the other register unchanged and
    non-aborting, which the reader detects.

    [receive] maintains the reader's [active_set]: the set of processes the
    reader currently considers timely with respect to itself. *)

type t
(** Per-process heartbeat endpoint state. *)

type mesh = {
  hb1 : int Tbwf_registers.Reg.Abortable.t option array array;
  hb2 : int Tbwf_registers.Reg.Abortable.t option array array;
      (** element [(p).(q)] is written by p and read by q; [None] on the
          diagonal *)
}

val registers :
  ?factory:Tbwf_registers.Reg.factory ->
  Tbwf_sim.Runtime.t ->
  policy:Tbwf_registers.Abort_policy.t ->
  ?write_effect:Tbwf_registers.Abort_policy.write_effect ->
  n:int ->
  unit ->
  mesh

val create : me:int -> mesh:mesh -> t
(** Fresh state; the initial active set is [{me}]. *)

val send : t -> dest:bool array -> unit
(** Figure 5, [SendHeartbeat(dest)]: bump the send counter and write it to
    both heartbeat registers of every q with [dest.(q)] (results ignored —
    an aborted heartbeat write is itself a sign of life for the reader). *)

val receive : t -> bool array
(** Figure 5, [ReceiveHeartbeat()]: poll peers per the adaptive timeout and
    update membership; returns the active-set array (internal state; do not
    mutate). Element [me] is always true. *)
