open Tbwf_sim
open Tbwf_registers
open Tbwf_monitor

type t = {
  handles : Omega_spec.handle array;
  monitors : Activity_monitor.t option array array;
  counters : int Reg.t array;
}

(* Figure 3, main code for process p. *)
let omega_loop ~self_punishment rt t p n =
  let handle = t.handles.(p) in
  let monitor q = Option.get t.monitors.(p).(q) in
  (* ACTIVE-FOR[q] at p is the input of A(q,p): "is p active for q?". *)
  let active_for q = (Option.get t.monitors.(q).(p)).Activity_monitor.active_for in
  let others = List.filter (fun q -> q <> p) (List.init n Fun.id) in
  let status = Array.make n Activity_monitor.Unknown in
  let fault_cntr = Array.make n 0 in
  let max_fault_cntr = Array.make n 0 in
  let counter = Array.make n 0 in
  while true do
    Omega_spec.set_view rt handle Omega_spec.No_leader;
    List.iter (fun q -> (monitor q).Activity_monitor.monitoring := false) others;
    List.iter (fun q -> active_for q := false) others;
    Runtime.await (fun () -> !(handle.Omega_spec.candidate));
    List.iter (fun q -> (monitor q).Activity_monitor.monitoring := true) others;
    if self_punishment then begin
      counter.(p) <- t.counters.(p).Reg.read ();
      t.counters.(p).Reg.write (counter.(p) + 1)
    end;
    while !(handle.Omega_spec.candidate) do
      (* Consult each activity monitor until it offers an estimate. *)
      List.iter
        (fun q ->
          let mon = monitor q in
          Runtime.await (fun () ->
              not
                (Activity_monitor.equal_status
                   !(mon.Activity_monitor.status)
                   Activity_monitor.Unknown));
          status.(q) <- !(mon.Activity_monitor.status);
          fault_cntr.(q) <- !(mon.Activity_monitor.fault_cntr))
        others;
      status.(p) <- Activity_monitor.Active;
      for q = 0 to n - 1 do
        counter.(q) <- t.counters.(q).Reg.read ()
      done;
      (* leader := ℓ with (counter ℓ, ℓ) minimal over the active set. *)
      let leader = ref p in
      for q = 0 to n - 1 do
        if
          Activity_monitor.equal_status status.(q) Activity_monitor.Active
          && (counter.(q), q) < (counter.(!leader), !leader)
        then leader := q
      done;
      Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
      let am_leader = !leader = p in
      List.iter (fun q -> active_for q := am_leader) others;
      (* Punish processes whose monitor reported new timeliness faults. *)
      List.iter
        (fun q ->
          if fault_cntr.(q) > max_fault_cntr.(q) then begin
            t.counters.(q).Reg.write (counter.(q) + 1);
            max_fault_cntr.(q) <- fault_cntr.(q)
          end)
        others
    done
  done

let install ?(self_punishment = true) ?factory ?n rt =
  let n = match n with Some n -> n | None -> Runtime.n rt in
  let factory =
    match factory with Some f -> f | None -> Reg.shared_factory rt
  in
  let monitors =
    Array.init n (fun p ->
        Array.init n (fun q ->
            if p = q then None
            else Some (Activity_monitor.install ~factory rt ~p ~q)))
  in
  let counters =
    Array.init n (fun q ->
        factory.Reg.mk_reg ~kind:Reg.Mwmr
          ~name:(Fmt.str "Counter[%d]" q)
          ~codec:Codec.int ~init:0)
  in
  let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
  let t = { handles; monitors; counters } in
  for p = 0 to n - 1 do
    Runtime.spawn ~layer:Sink.Omega rt ~pid:p ~name:(Fmt.str "omega[%d]" p)
      (fun () -> omega_loop ~self_punishment rt t p n)
  done;
  t
