open Tbwf_sim

type view = Leader of int | No_leader

let pp_view fmt = function
  | Leader p -> Fmt.pf fmt "leader(%d)" p
  | No_leader -> Fmt.string fmt "?"

let equal_view a b =
  match a, b with
  | Leader x, Leader y -> x = y
  | No_leader, No_leader -> true
  | (Leader _ | No_leader), _ -> false

type handle = { pid : int; candidate : bool ref; leader : view ref }

let make_handle ~pid = { pid; candidate = ref false; leader = ref No_leader }

(* Update [h]'s leader view, emitting a telemetry signal on actual changes.
   All Ω∆ implementations route their [leader :=] assignments through this
   so leader churn is observable with zero cost when telemetry is off. *)
let set_view rt h v =
  if not (equal_view !(h.leader) v) then begin
    if Runtime.telemetry_active rt then
      Runtime.signal rt ~pid:h.pid
        (Sink.Leader_view
           { leader = (match v with Leader l -> Some l | No_leader -> None) });
    h.leader := v
  end

let canonical_join h =
  Runtime.await (fun () -> not (equal_view !(h.leader) (Leader h.pid)));
  h.candidate := true

let leave h = h.candidate := false

type sample = {
  at_step : int;
  views : view array;
  candidacies : bool array;
}

let take_sample ~at_step handles =
  {
    at_step;
    views = Array.map (fun h -> !(h.leader)) handles;
    candidacies = Array.map (fun h -> !(h.candidate)) handles;
  }

type verdict = { elected : int option; violations : string list }

let last_n n samples =
  let len = List.length samples in
  if len <= n then samples else List.filteri (fun i _ -> i >= len - n) samples

let check_election ~samples ~suffix ~pcandidates ~rcandidates ~ncandidates
    ~timely ~crashed ?(lagging = []) () =
  let tail = last_n suffix samples in
  let violations = ref [] in
  let violation fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  if tail = [] then violation "no samples to check";
  let throughout pred = List.for_all pred tail in
  let settling p = not (List.mem p lagging) in
  let live_of class_members =
    List.filter
      (fun p -> (not (List.mem p crashed)) && settling p)
      class_members
  in
  let live_p = live_of pcandidates in
  let live_r = live_of rcandidates in
  let live_n = live_of ncandidates in
  let timely_pcands = List.filter (fun p -> List.mem p timely) live_p in
  (* Property 2 holds unconditionally. *)
  List.iter
    (fun p ->
      if not (throughout (fun s -> equal_view s.views.(p) No_leader)) then
        violation "property 2: ncandidate %d does not settle on ?" p)
    live_n;
  let elected =
    if timely_pcands = [] then None
    else begin
      (* Find the ℓ satisfying 1(a): stable self-leadership, timely, and a
         permanent or repeated candidate. *)
      let stable_self ell =
        throughout (fun s -> equal_view s.views.(ell) (Leader ell))
      in
      let eligible =
        List.filter (fun ell -> List.mem ell timely) (live_p @ live_r)
      in
      match List.filter stable_self eligible with
      | [] ->
        violation
          "property 1(a): no timely candidate stably elects itself (timely \
           pcandidates: %a)"
          Fmt.(list ~sep:comma int)
          timely_pcands;
        None
      | [ ell ] -> Some ell
      | ells ->
        violation "multiple stable self-leaders: %a"
          Fmt.(list ~sep:comma int)
          ells;
        None
    end
  in
  (match elected with
  | None -> ()
  | Some ell ->
    List.iter
      (fun p ->
        if not (throughout (fun s -> equal_view s.views.(p) (Leader ell)))
        then violation "property 1(b): pcandidate %d does not settle on %d" p ell)
      live_p;
    List.iter
      (fun p ->
        let ok s =
          equal_view s.views.(p) (Leader ell)
          || equal_view s.views.(p) No_leader
        in
        if not (throughout ok) then
          violation "property 1(c): rcandidate %d leaves {?, leader %d}" p ell)
      live_r);
  { elected; violations = List.rev !violations }
