open Tbwf_registers

type mesh = {
  hb1 : int Reg.Abortable.t option array array;
  hb2 : int Reg.Abortable.t option array array;
}

type t = {
  me : int;
  mesh : mesh;
  n : int;
  mutable hb_send_counter : int;
  hb_timeout : int array;
  hb_timer : int array;
  (* [None] records an aborted read (the paper's ⊥). *)
  prev_hb1 : int option array;
  prev_hb2 : int option array;
  cur_hb1 : int option array;
  cur_hb2 : int option array;
  active_set : bool array;
}

let registers ?factory rt ~policy ?write_effect ~n () =
  let factory =
    match factory with Some f -> f | None -> Reg.shared_factory rt
  in
  let make tag p q =
    factory.Reg.mk_areg
      ~name:(Fmt.str "Hb%s[%d->%d]" tag p q)
      ~codec:Codec.int ~init:0 ~writer:p ~reader:q ~policy ~write_effect
  in
  {
    hb1 =
      Array.init n (fun p ->
          Array.init n (fun q -> if p = q then None else Some (make "1" p q)));
    hb2 =
      Array.init n (fun p ->
          Array.init n (fun q -> if p = q then None else Some (make "2" p q)));
  }

let create ~me ~mesh =
  let n = Array.length mesh.hb1 in
  let t =
    {
      me;
      mesh;
      n;
      hb_send_counter = 0;
      hb_timeout = Array.make n 1;
      hb_timer = Array.make n 1;
      prev_hb1 = Array.make n (Some 0);
      prev_hb2 = Array.make n (Some 0);
      cur_hb1 = Array.make n (Some 0);
      cur_hb2 = Array.make n (Some 0);
      active_set = Array.make n false;
    }
  in
  t.active_set.(me) <- true;
  t

let send t ~dest =
  t.hb_send_counter <- t.hb_send_counter + 1;
  for q = 0 to t.n - 1 do
    if q <> t.me && dest.(q) then begin
      let r1 = Option.get t.mesh.hb1.(t.me).(q) in
      let r2 = Option.get t.mesh.hb2.(t.me).(q) in
      let (_ : bool) = r1.Reg.Abortable.write t.hb_send_counter in
      let (_ : bool) = r2.Reg.Abortable.write t.hb_send_counter in
      ()
    end
  done

let receive t =
  for q = 0 to t.n - 1 do
    if q <> t.me then begin
      if t.hb_timer.(q) >= 1 then t.hb_timer.(q) <- t.hb_timer.(q) - 1;
      if t.hb_timer.(q) = 0 then begin
        t.hb_timer.(q) <- t.hb_timeout.(q);
        t.prev_hb1.(q) <- t.cur_hb1.(q);
        t.prev_hb2.(q) <- t.cur_hb2.(q);
        t.cur_hb1.(q) <- (Option.get t.mesh.hb1.(q).(t.me)).Reg.Abortable.read ();
        t.cur_hb2.(q) <- (Option.get t.mesh.hb2.(q).(t.me)).Reg.Abortable.read ();
        let fresh cur prev =
          match cur with None -> true | Some _ -> cur <> prev
        in
        if
          fresh t.cur_hb1.(q) t.prev_hb1.(q)
          && fresh t.cur_hb2.(q) t.prev_hb2.(q)
        then t.active_set.(q) <- true
        else begin
          t.active_set.(q) <- false;
          t.hb_timeout.(q) <- t.hb_timeout.(q) + 1
        end
      end
    end
  done;
  t.active_set
