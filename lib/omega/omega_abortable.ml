open Tbwf_sim

type t = {
  handles : Omega_spec.handle array;
  msg_registers :
    Msg_channel.payload Tbwf_registers.Reg.Abortable.t option array array;
  hb_mesh : Heartbeat.mesh;
}

(* Figure 6, main code for process p. *)
let omega_loop rt t p n =
  let handle = t.handles.(p) in
  let channel = Msg_channel.create ~me:p ~registers:t.msg_registers in
  let heartbeat = Heartbeat.create ~me:p ~mesh:t.hb_mesh in
  let leader = ref p in
  let counter = Array.make n 0 in
  let actr_to = Array.make n 0 in
  let write_done = ref (Array.make n false) in
  let msg_to = Array.make n (0, 0) in
  while true do
    Omega_spec.set_view rt handle Omega_spec.No_leader;
    Runtime.await (fun () -> !(handle.Omega_spec.candidate));
    (* Self-punishment on joining: jump over the current leader's counter.
       Done with max (not an increment) so counter[p] stops changing once
       the run stabilizes — otherwise WriteMsgs could never propagate it. *)
    counter.(p) <- max counter.(p) (counter.(!leader) + 1);
    let continue_loop = ref true in
    while !continue_loop do
      Heartbeat.send heartbeat ~dest:!write_done;
      let active_set = Heartbeat.receive heartbeat in
      let best = ref p in
      for q = 0 to n - 1 do
        if active_set.(q) && (counter.(q), q) < (counter.(!best), !best) then
          best := q
      done;
      leader := !best;
      Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
      for q = 0 to n - 1 do
        if q <> p then begin
          if not active_set.(q) then
            actr_to.(q) <- max actr_to.(q) (counter.(!leader) + 1);
          msg_to.(q) <- counter.(p), actr_to.(q)
        end
      done;
      write_done := Msg_channel.write_msgs channel msg_to;
      let msg_from = Msg_channel.read_msgs channel in
      for q = 0 to n - 1 do
        if q <> p then begin
          let counter_q, actr_from_q = msg_from.(q) in
          counter.(q) <- counter_q;
          counter.(p) <- max counter.(p) actr_from_q
        end
      done;
      (* One local step per iteration: keeps the loop live in the simulator
         even on iterations where every adaptive timer skips its register
         operation. *)
      Runtime.yield ();
      continue_loop := !(handle.Omega_spec.candidate)
    done
  done

let install ?factory ?n rt ~policy ?write_effect () =
  let n = match n with Some n -> n | None -> Runtime.n rt in
  let msg_registers =
    Msg_channel.registers ?factory rt ~policy ?write_effect ~n ()
  in
  let hb_mesh = Heartbeat.registers ?factory rt ~policy ?write_effect ~n () in
  let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
  let t = { handles; msg_registers; hb_mesh } in
  for p = 0 to n - 1 do
    Runtime.spawn ~layer:Sink.Omega rt ~pid:p ~name:(Fmt.str "omega-ab[%d]" p)
      (fun () -> omega_loop rt t p n)
  done;
  t
