open Tbwf_sim
open Tbwf_omega

type classes = {
  pcands : int list;
  rcands : int list;
  ncands : int list;
  untimely : int list;
  crashes : (int * int) list;
}

let everyone_p ~n =
  {
    pcands = List.init n Fun.id;
    rcands = [];
    ncands = [];
    untimely = [];
    crashes = [];
  }

type outcome = {
  verdict : Omega_spec.verdict;
  stabilization_step : int option;
  total_steps : int;
  samples : Omega_spec.sample list;
}

let spawn_drivers rt handles classes ~rcand_phase ~ncand_phase =
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"pcand" (fun () ->
          handles.(pid).Omega_spec.candidate := true))
    classes.pcands;
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"rcand" (fun () ->
          while true do
            Omega_spec.canonical_join handles.(pid);
            for _ = 1 to rcand_phase do
              Runtime.yield ()
            done;
            Omega_spec.leave handles.(pid);
            for _ = 1 to rcand_phase do
              Runtime.yield ()
            done
          done))
    classes.rcands;
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"ncand" (fun () ->
          handles.(pid).Omega_spec.candidate := true;
          for _ = 1 to ncand_phase do
            Runtime.yield ()
          done;
          handles.(pid).Omega_spec.candidate := false))
    classes.ncands

(* Earliest sampled step from which every live pcand's view equals the final
   elected leader forever (within the samples). *)
let stabilization samples ~pcands ~elected =
  match elected with
  | None -> None
  | Some ell ->
    let arr = Array.of_list samples in
    let settled sample =
      List.for_all
        (fun pid ->
          Omega_spec.equal_view
            sample.Omega_spec.views.(pid)
            (Omega_spec.Leader ell))
        pcands
    in
    let len = Array.length arr in
    let rec earliest i best =
      if i < 0 then best
      else if settled arr.(i) then earliest (i - 1) (Some arr.(i).Omega_spec.at_step)
      else best
    in
    earliest (len - 1) None

let run ?(seed = 0xFEEDL) ?(flicker = (300, 600, 1.5)) ?(rcand_phase = 400)
    ?(ncand_phase = 600) ~n ~omega ~classes ~segments ~segment_steps () =
  let rt = Runtime.create ~seed ~n () in
  let handles =
    match omega with
    | Scenario.Omega_atomic -> (Tbwf_system.System.install_atomic rt).handles
    | Scenario.Omega_abortable policy ->
      (Tbwf_system.System.install_abortable rt ~policy ()).handles
    | Scenario.Omega_naive -> (Tbwf_system.System.install_naive rt).handles
  in
  spawn_drivers rt handles classes ~rcand_phase ~ncand_phase;
  List.iter (fun (pid, step) -> Runtime.crash_at rt ~pid ~step) classes.crashes;
  let active, sleep, growth = flicker in
  (* Timely processes take deterministic Every-claims: under a random
     schedule no process has a bounded gap in the limit (gaps grow like the
     logarithm of time), so spurious suspicions — and hence punishments and
     leadership changes — would recur forever. Claims cover every other
     step; the free steps go to awake flickerers, or back to the timely
     processes when everyone else sleeps. *)
  let timely_pids =
    List.filter (fun pid -> not (List.mem pid classes.untimely)) (List.init n Fun.id)
  in
  let k = max 1 (List.length timely_pids) in
  let pattern pid =
    match List.find_index (fun p -> p = pid) timely_pids with
    | Some i -> Policy.Every { period = 2 * k; offset = 2 * i }
    | None -> Policy.Flicker { active; sleep; growth }
  in
  let policy =
    Policy.of_patterns ~name:"omega-scenario"
      (List.init n (fun pid -> pid, pattern pid))
  in
  let samples = ref [] in
  for _seg = 1 to segments do
    Runtime.run rt ~policy ~steps:segment_steps;
    samples :=
      Omega_spec.take_sample ~at_step:(Runtime.now rt) handles :: !samples
  done;
  let total_steps = Runtime.now rt in
  Runtime.stop rt;
  let samples = List.rev !samples in
  let crashed = List.map fst classes.crashes in
  let all_pids = List.init n Fun.id in
  let timely =
    List.filter
      (fun pid ->
        (not (List.mem pid classes.untimely)) && not (List.mem pid crashed))
      all_pids
  in
  let never_candidates =
    List.filter
      (fun pid ->
        (not (List.mem pid classes.pcands))
        && (not (List.mem pid classes.rcands))
        && not (List.mem pid classes.ncands))
      all_pids
  in
  let verdict =
    Omega_spec.check_election ~samples ~suffix:(max 2 (segments / 4))
      ~pcandidates:classes.pcands ~rcandidates:classes.rcands
      ~ncandidates:(classes.ncands @ never_candidates)
      ~timely ~crashed ~lagging:classes.untimely ()
  in
  let live_pcands =
    List.filter
      (fun pid ->
        (not (List.mem pid crashed)) && not (List.mem pid classes.untimely))
      classes.pcands
  in
  let stabilization_step =
    stabilization samples ~pcands:live_pcands ~elected:verdict.Omega_spec.elected
  in
  { verdict; stabilization_step; total_steps; samples }
