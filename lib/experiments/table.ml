type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let row_count t = List.length t.rows

let print fmt t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length header) rows)
      t.columns
  in
  let pad width s = s ^ String.make (width - String.length s) ' ' in
  let print_row cells =
    let padded = List.map2 pad widths cells in
    Fmt.pf fmt "| %s |@." (String.concat " | " padded)
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Fmt.pf fmt "@.%s@." t.title;
  Fmt.pf fmt "%s@." rule;
  print_row t.columns;
  Fmt.pf fmt "%s@." rule;
  List.iter print_row rows;
  Fmt.pf fmt "%s@." rule

let cell_int = string_of_int
let cell_float f = Fmt.str "%.2f" f
let cell_bool b = if b then "yes" else "NO"
let cell_ints xs = String.concat ", " (List.map string_of_int xs)
