(** E13 — failure detection under partial timeliness (paper §1.2, §2).

    The paper contrasts Ω∆ with the eventually perfect detector I3P/◊P
    used by the boosting of [8]: ◊P needs {e all} correct processes timely
    to stabilize, while Ω∆ only needs {e some} timely candidate.

    One run, three phases sampled over time, with a decelerating (correct,
    never-stopping, non-timely) process and a crashing process among timely
    observers. Measured per window:

    - ◊P: suspicion flip-flops of the decelerating process at a timely
      observer — they never stop (accuracy fails forever);
    - ◊P: the crashed process stays suspected once detected (completeness
      holds — the detector is not broken, its accuracy promise is);
    - Ω∆ (same run style): the leader view's changes — they stop. *)

type row = {
  window : int * int;  (** step interval *)
  dp_flips_slow : int;
      (** ◊P suspicion changes of the decelerating process at observer 1 *)
  dp_crashed_suspected : bool;  (** crashed process suspected all window *)
  omega_leader_changes : int;  (** Ω∆ leader-view changes at observer 1 *)
}

type result = {
  rows : row list;
  dp_never_stabilizes : bool;  (** flips still occur in the last quarter *)
  dp_complete : bool;
      (** crashed process suspected throughout the second half *)
  omega_stabilizes : bool;
      (** Ω∆'s output changes are several times rarer than ◊P's flips
          overall, with at most one change in the last quarter and strictly
          fewer than ◊P's flips there *)
}

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
