(** E4 — Ω∆ from atomic registers (Figure 3, Theorems 11–12).

    Scenario family over the candidate classes of Definition 4, checking
    the election properties of Definition 5 / Theorem 7:

    - all-timely permanent candidates, n ∈ {2, 4, 8};
    - a non-timely flickering candidate holding the smallest pid (it would
      win every tie-break; it must still lose the election);
    - mixed P/R/N classes;
    - leader crash and re-election. *)

type row = {
  scenario : string;
  n : int;
  elected : int option;
  elected_ok : bool;  (** elected ∈ expected set (timely pcands) *)
  stabilization_step : int option;
  violations : string list;
}

type result = { rows : row list; all_pass : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit

(** Shared row builder, reused by E5 with a different Ω∆ implementation. *)
val scenario_rows :
  quick:bool -> omega:Scenario.omega_impl -> row list
