open Tbwf_sim
open Tbwf_registers

type policy_block = {
  policy_name : string;
  rows : E4_omega_atomic.row list;
  abort_rate : float;
}

type result = { blocks : policy_block list; all_pass : bool }

(* Characterize the policy itself: a writer and a reader hammering one
   abortable register under strict alternation, so every operation's window
   overlaps another operation. (Measuring on the Ω∆ mesh would understate
   hostility: the algorithm's adaptive read timeouts actively desynchronize
   readers from writers until collisions stop.) *)
let measure_abort_rate ~quick policy =
  let rt = Runtime.create ~seed:55L ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"collide" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy ()
  in
  Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
      let k = ref 0 in
      while true do
        incr k;
        let (_ : bool) = Abortable_reg.write reg !k in
        ()
      done);
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      while true do
        let (_ : int option) = Abortable_reg.read reg in
        ()
      done);
  Runtime.run rt
    ~policy:(Policy.round_robin ())
    ~steps:(if quick then 4_000 else 20_000);
  Runtime.stop rt;
  let m = Abortable_reg.metrics reg in
  let total = Metrics.total_ops m in
  if total = 0 then 0.0
  else
    float_of_int (m.Metrics.read_aborts + m.Metrics.write_aborts)
    /. float_of_int total

let compute ?(quick = false) () =
  let policies =
    if quick then [ "always-on-overlap", Abort_policy.Always ]
    else
      [
        "always-on-overlap", Abort_policy.Always;
        "random(0.9)", Abort_policy.Random 0.9;
        "random(0.5)", Abort_policy.Random 0.5;
      ]
  in
  let blocks =
    List.map
      (fun (policy_name, policy) ->
        {
          policy_name;
          rows =
            E4_omega_atomic.scenario_rows ~quick
              ~omega:(Scenario.Omega_abortable policy);
          abort_rate = measure_abort_rate ~quick policy;
        })
      policies
  in
  {
    blocks;
    all_pass =
      List.for_all
        (fun b ->
          List.for_all
            (fun (r : E4_omega_atomic.row) ->
              r.E4_omega_atomic.elected_ok && r.E4_omega_atomic.violations = [])
            b.rows)
        blocks;
  }

let report fmt result =
  List.iter
    (fun block ->
      let table =
        Table.create
          ~title:
            (Fmt.str
               "E5: Ω∆ from abortable registers (Figures 4–6) — abort policy \
                %s (measured mesh abort rate %.1f%%)"
               block.policy_name (100.0 *. block.abort_rate))
          ~columns:
            [ "scenario"; "n"; "elected"; "in expected set"; "stable from step"; "violations" ]
      in
      List.iter
        (fun (row : E4_omega_atomic.row) ->
          Table.add_row table
            [
              row.E4_omega_atomic.scenario;
              Table.cell_int row.E4_omega_atomic.n;
              (match row.E4_omega_atomic.elected with
              | Some e -> Table.cell_int e
              | None -> "-");
              Table.cell_bool row.E4_omega_atomic.elected_ok;
              (match row.E4_omega_atomic.stabilization_step with
              | Some s -> Table.cell_int s
              | None -> "-");
              (match row.E4_omega_atomic.violations with
              | [] -> "none"
              | vs -> Fmt.str "%d: %s" (List.length vs) (List.hd vs));
            ])
        block.rows;
      Table.print fmt table)
    result.blocks
