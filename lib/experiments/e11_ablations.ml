open Tbwf_sim
open Tbwf_registers
open Tbwf_monitor
open Tbwf_omega

type row = {
  ablation : string;
  variant : string;
  metric : string;
  outcome : string;
  healthy : bool;
}

type result = { rows : row list; ablations_all_fail : bool }

(* --- ablation 1: one heartbeat register instead of two ------------------ *)

(* Reader logic with a single register: "abort or advanced" means alive.
   The two-register case delegates to the real Heartbeat module. *)
let single_register_detector rt ~steps =
  let reg =
    Abortable_reg.create rt ~name:"hb-single" ~codec:Codec.int ~init:0
      ~writer:0 ~reader:1 ~policy:Abort_policy.Always ()
  in
  (* Writer stalls inside a write: it invokes one write and never responds
     (its schedule goes silent right after the invocation). *)
  Runtime.spawn rt ~pid:0 ~name:"stalled-writer" (fun () ->
      let (_ : bool) = Abortable_reg.write reg 1 in
      ());
  let considered_timely = ref false in
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      let prev = ref (Some 0) in
      while true do
        let cur = Abortable_reg.read reg in
        let fresh = match cur with None -> true | Some _ -> cur <> !prev in
        considered_timely := fresh;
        prev := cur;
        for _ = 1 to 10 do
          Runtime.yield ()
        done
      done);
  let policy =
    Policy.of_patterns
      [ 0, Policy.Switch_at (1, Policy.Every { period = 1; offset = 0 }, Policy.Silent);
        1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps;
  Runtime.stop rt;
  !considered_timely

let two_register_detector rt ~steps =
  let mesh = Heartbeat.registers rt ~policy:Abort_policy.Always ~n:2 () in
  let sender = Heartbeat.create ~me:0 ~mesh in
  let receiver = Heartbeat.create ~me:1 ~mesh in
  (* Same stall: the writer freezes inside its very first register write. *)
  Runtime.spawn rt ~pid:0 ~name:"stalled-writer" (fun () ->
      while true do
        Heartbeat.send sender ~dest:[| false; true |]
      done);
  let considered_timely = ref true in
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      while true do
        let active = Heartbeat.receive receiver in
        considered_timely := active.(0);
        Runtime.yield ()
      done);
  let policy =
    Policy.of_patterns
      [ 0, Policy.Switch_at (2, Policy.Every { period = 1; offset = 0 }, Policy.Silent);
        1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps;
  Runtime.stop rt;
  !considered_timely

let heartbeat_rows ~quick =
  let steps = if quick then 20_000 else 80_000 in
  let single = single_register_detector (Runtime.create ~seed:111L ~n:2 ()) ~steps in
  let double = two_register_detector (Runtime.create ~seed:111L ~n:2 ()) ~steps in
  [
    {
      ablation = "two heartbeat registers";
      variant = "as in paper (two, alternated)";
      metric = "stalled mid-write writer still deemed timely?";
      outcome = (if double then "yes (BAD)" else "no — exposed");
      healthy = not double;
    };
    {
      ablation = "two heartbeat registers";
      variant = "ablated (single register)";
      metric = "stalled mid-write writer still deemed timely?";
      outcome = (if single then "yes — fooled forever" else "no (unexpected)");
      healthy = not single;
    };
  ]

(* --- ablation 2: self-punishment on joining ----------------------------- *)

(* The paper: "This ensures that a process r that stops and starts being a
   candidate infinitely often has an unbounded CounterRegister[r], which is
   necessary to ensure that eventually r is not chosen as leader. Without
   this self-punishment, it is easy to find a scenario where r has the
   smallest CounterRegister and leadership oscillates forever."
   We measure the mechanism's direct contract: across a fixed number of
   join/leave cycles by r, its shared counter must grow at least once per
   join with self-punishment, and stalls at a small constant without it
   (only incidental timeliness-fault punishments remain — and once those dry
   up, nothing stops r from being elected on every rejoin, forever). *)
let counter_growth ~self_punishment ~quick =
  let n = 3 in
  let rt = Runtime.create ~seed:112L ~n () in
  let om = Tbwf_system.System.install_atomic ~self_punishment rt in
  let handles = om.Omega_registers.handles in
  let joins = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"rejoiner" (fun () ->
      while true do
        Omega_spec.canonical_join handles.(0);
        incr joins;
        for _ = 1 to 300 do
          Runtime.yield ()
        done;
        Omega_spec.leave handles.(0);
        for _ = 1 to 300 do
          Runtime.yield ()
        done
      done);
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"pcand" (fun () ->
          handles.(pid).Omega_spec.candidate := true))
    [ 1; 2 ];
  let total_steps = if quick then 240_000 else 600_000 in
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:total_steps;
  Runtime.stop rt;
  !joins, om.Omega_registers.counters.(0).Reg.peek ()

let self_punishment_rows ~quick =
  let joins_sp, counter_sp = counter_growth ~self_punishment:true ~quick in
  let joins_ab, counter_ab = counter_growth ~self_punishment:false ~quick in
  [
    {
      ablation = "self-punishment on join";
      variant = "as in paper";
      metric = "rejoiner's shared counter grows with its joins?";
      outcome = Fmt.str "%d joins, counter %d" joins_sp counter_sp;
      healthy = counter_sp >= joins_sp;
    };
    {
      ablation = "self-punishment on join";
      variant = "ablated (no self-punishment)";
      metric = "rejoiner's shared counter grows with its joins?";
      outcome = Fmt.str "%d joins, counter %d (bounded)" joins_ab counter_ab;
      healthy = counter_ab >= joins_ab;
    };
  ]

(* --- ablation 3: faultCntr increment guards ----------------------------- *)

let faults_after_crash ~increment_guards ~quick =
  let rt = Runtime.create ~seed:113L ~n:2 () in
  let mon = Activity_monitor.install ~increment_guards rt ~p:0 ~q:1 in
  mon.Activity_monitor.monitoring := true;
  mon.Activity_monitor.active_for := true;
  let steps = if quick then 40_000 else 120_000 in
  Runtime.crash_at rt ~pid:1 ~step:(steps / 4);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:(steps / 2);
  let mid = !(mon.Activity_monitor.fault_cntr) in
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:(steps / 2);
  Runtime.stop rt;
  let final = !(mon.Activity_monitor.fault_cntr) in
  mid, final

let increment_guard_rows ~quick =
  let guarded_mid, guarded_final = faults_after_crash ~increment_guards:true ~quick in
  let ablated_mid, ablated_final = faults_after_crash ~increment_guards:false ~quick in
  [
    {
      ablation = "faultCntr increment guards";
      variant = "as in paper (conditions a+b)";
      metric = "faultCntr keeps growing after q crashes?";
      outcome = Fmt.str "%d -> %d" guarded_mid guarded_final;
      healthy = guarded_final = guarded_mid;
    };
    {
      ablation = "faultCntr increment guards";
      variant = "ablated (unconditional)";
      metric = "faultCntr keeps growing after q crashes?";
      outcome = Fmt.str "%d -> %d" ablated_mid ablated_final;
      healthy = ablated_final = ablated_mid;
    };
  ]

let compute ?(quick = false) () =
  let rows =
    heartbeat_rows ~quick @ self_punishment_rows ~quick
    @ increment_guard_rows ~quick
  in
  let paper_rows, ablated_rows =
    List.partition (fun r -> r.variant.[0] = 'a' && r.variant.[1] = 's') rows
  in
  {
    rows;
    ablations_all_fail =
      List.for_all (fun r -> r.healthy) paper_rows
      && List.for_all (fun r -> not r.healthy) ablated_rows;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        "E11: ablations — each paper mechanism removed in turn; the ablated \
         variant must exhibit the failure the paper predicts"
      ~columns:[ "mechanism"; "variant"; "metric"; "outcome"; "healthy" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [ row.ablation; row.variant; row.metric; row.outcome; Table.cell_bool row.healthy ])
    result.rows;
  Table.print fmt table
