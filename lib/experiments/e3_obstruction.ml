open Tbwf_sim
open Tbwf_core
open Tbwf_system

type row = {
  system : string;
  solo_pid : int;
  ops_before_solo : int;
  ops_in_solo : int;
  solo_progress : bool;
}

type result = { n : int; rows : row list; all_pass : bool }

let run_one ~system ~n ~solo_pid ~contention_steps ~solo_steps ~seed ~id =
  let stack = System.build ~seed ~n id in
  let rt = stack.System.rt in
  let stats = stack.System.stats in
  let policy = Policy.solo_after ~n ~pid:solo_pid ~step:contention_steps in
  Runtime.run rt ~policy ~steps:contention_steps;
  let before = stats.Workload.completed.(solo_pid) in
  Runtime.run rt ~policy ~steps:solo_steps;
  Runtime.stop rt;
  let ops_in_solo = stats.Workload.completed.(solo_pid) - before in
  {
    system;
    solo_pid;
    ops_before_solo = before;
    ops_in_solo;
    solo_progress = ops_in_solo > 0;
  }

let compute ?(quick = false) () =
  let n = 4 in
  let contention_steps = if quick then 10_000 else 40_000 in
  let solo_steps = if quick then 20_000 else 60_000 in
  let pids = if quick then [ 0; 2 ] else List.init n Fun.id in
  let rows =
    List.concat_map
      (fun solo_pid ->
        [
          run_one ~system:"TBWF" ~n ~solo_pid ~contention_steps ~solo_steps
            ~seed:31L ~id:System.Tbwf_atomic;
          run_one ~system:"retry" ~n ~solo_pid ~contention_steps ~solo_steps
            ~seed:31L ~id:System.Retry;
        ])
      pids
  in
  { n; rows; all_pass = List.for_all (fun r -> r.solo_progress) rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E3: obstruction-freedom — n=%d, always-abort adversary; each row \
            gives one process a solo suffix" result.n)
      ~columns:
        [ "system"; "solo pid"; "ops before solo"; "ops in solo"; "progress" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.system;
          Table.cell_int row.solo_pid;
          Table.cell_int row.ops_before_solo;
          Table.cell_int row.ops_in_solo;
          Table.cell_bool row.solo_progress;
        ])
    result.rows;
  Table.print fmt table
