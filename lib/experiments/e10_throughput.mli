(** E10 — cost of the stack (engineering numbers, not a paper claim).

    Micro-workloads exercising each layer: raw scheduler steps, atomic
    register operations, abortable register operations, query-abortable
    object operations, and a full TBWF operation including leader election.
    [runners] exposes them as thunks for the bechamel harness in
    [bench/main.ml]; [compute]/[report] give a coarse self-timed table for
    the experiments binary. *)

val base_seed : int64
(** Every layer's runtime seed derives from this constant; BENCH json
    files record it as run provenance. *)

val runners : (string * (unit -> unit)) list
(** Each thunk builds a small scenario and runs a fixed number of steps;
    label describes the layer exercised. *)

type row = { layer : string; steps : int; seconds : float; steps_per_sec : float }

type result = { rows : row list }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
