(** E7 — write-efficiency of the register-based Ω∆ (end of paper §5.2).

    "If Pcandidates ∩ Timely ≠ ∅ then there is a time after which the only
    processes that write to shared registers are the leader and processes in
    Rcandidates." We run a stabilizing election (permanent timely candidates
    and optionally repeated candidates), then count, per window of steps,
    which processes performed successful shared-register writes. The
    prediction: the writer set shrinks to {leader} ∪ Rcandidates. *)

type window = { from_step : int; to_step : int; writers : int list }

type result = {
  n : int;
  elected : int option;
  rcands : int list;
  windows : window list;
  final_writers_ok : bool;
      (** the last window's writers ⊆ {leader} ∪ Rcandidates *)
}

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
