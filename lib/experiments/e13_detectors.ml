open Tbwf_sim
open Tbwf_monitor
open Tbwf_omega

type row = {
  window : int * int;
  dp_flips_slow : int;
  dp_crashed_suspected : bool;
  omega_leader_changes : int;
}

type result = {
  rows : row list;
  dp_never_stabilizes : bool;
  dp_complete : bool;
  omega_stabilizes : bool;
}

(* Shared scenario: n = 4. pid 0 decelerates forever (correct, not timely);
   pid 3 crashes at a quarter of the run; pids 1, 2 are timely observers. *)
let scenario_policy n =
  Policy.of_patterns
    (List.init n (fun pid ->
         if pid = 0 then
           pid, Policy.Slowing { initial_gap = 60; growth = 1.12; burst = 8 * n }
         else pid, Policy.Every { period = 2 * (n - 1); offset = 2 * (pid - 1) }))

let compute ?(quick = false) () =
  let n = 4 in
  let windows = 12 in
  let window_steps = if quick then 15_000 else 60_000 in
  let total = windows * window_steps in
  (* Run 1: ◊P. *)
  let rt = Runtime.create ~seed:131L ~n () in
  let dp = Eventually_perfect.install rt in
  Runtime.crash_at rt ~pid:3 ~step:(total / 4);
  let policy = scenario_policy n in
  (* Sample densely inside each window to count flips. *)
  let samples_per_window = 40 in
  let dp_rows = ref [] in
  for w = 0 to windows - 1 do
    let flips = ref 0 in
    let crashed_suspected = ref true in
    let previous = ref (Eventually_perfect.suspected dp ~pid:1 ~q:0) in
    for _ = 1 to samples_per_window do
      Runtime.run rt ~policy ~steps:(window_steps / samples_per_window);
      let now = Eventually_perfect.suspected dp ~pid:1 ~q:0 in
      if now <> !previous then incr flips;
      previous := now;
      if Runtime.now rt > total / 2 then
        if not (Eventually_perfect.suspected dp ~pid:1 ~q:3) then
          crashed_suspected := false
    done;
    dp_rows :=
      (w * window_steps, ((w + 1) * window_steps) - 1, !flips, !crashed_suspected)
      :: !dp_rows
  done;
  Runtime.stop rt;
  let dp_rows = List.rev !dp_rows in
  (* Run 2: Ω∆ on the same scenario shape (same policy, same crash). *)
  let rt = Runtime.create ~seed:131L ~n () in
  let om = Tbwf_system.System.install_atomic rt in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"pcand" (fun () ->
        om.Omega_registers.handles.(pid).Omega_spec.candidate := true)
  done;
  Runtime.crash_at rt ~pid:3 ~step:(total / 4);
  let policy = scenario_policy n in
  let omega_rows = ref [] in
  for _w = 0 to windows - 1 do
    let changes = ref 0 in
    let previous = ref !(om.Omega_registers.handles.(1).Omega_spec.leader) in
    for _ = 1 to samples_per_window do
      Runtime.run rt ~policy ~steps:(window_steps / samples_per_window);
      let now = !(om.Omega_registers.handles.(1).Omega_spec.leader) in
      if not (Omega_spec.equal_view now !previous) then incr changes;
      previous := now
    done;
    omega_rows := !changes :: !omega_rows
  done;
  Runtime.stop rt;
  let omega_rows = List.rev !omega_rows in
  let rows =
    List.map2
      (fun (lo, hi, flips, crashed) changes ->
        {
          window = lo, hi;
          dp_flips_slow = flips;
          dp_crashed_suspected = crashed;
          omega_leader_changes = changes;
        })
      dp_rows omega_rows
  in
  (* Finite-run proxies. ◊P: the decelerating process's suspect/refute
     cycles get longer but never stop, so flips must still appear in the
     last quarter. Ω∆: its output changes are finite — punishments make
     them ever rarer — but a straggler can land arbitrarily late, so the
     honest check is the contrast: an order of magnitude fewer changes
     than ◊P's flips overall, and at most one change in the last quarter
     (vs ◊P still flipping there). *)
  let last_quarter = List.filteri (fun i _ -> i >= 3 * windows / 4) rows in
  let second_half = List.filteri (fun i _ -> i >= windows / 2) rows in
  let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let dp_total = sum (fun r -> r.dp_flips_slow) rows in
  let omega_total = sum (fun r -> r.omega_leader_changes) rows in
  let omega_late = sum (fun r -> r.omega_leader_changes) last_quarter in
  let dp_late = sum (fun r -> r.dp_flips_slow) last_quarter in
  {
    rows;
    dp_never_stabilizes =
      List.exists (fun r -> r.dp_flips_slow > 0) last_quarter;
    dp_complete = List.for_all (fun r -> r.dp_crashed_suspected) second_half;
    omega_stabilizes =
      omega_total * 5 <= dp_total && omega_late <= 1 && omega_late < dp_late;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        "E13: ◊P vs Ω∆ under partial timeliness — pid 0 decelerates forever, \
         pid 3 crashes; observer is timely pid 1"
      ~columns:
        [
          "steps";
          "◊P flips on slow pid";
          "◊P: crashed suspected";
          "Ω∆ leader changes";
        ]
  in
  List.iter
    (fun row ->
      let lo, hi = row.window in
      Table.add_row table
        [
          Fmt.str "%d-%d" lo hi;
          Table.cell_int row.dp_flips_slow;
          Table.cell_bool row.dp_crashed_suspected;
          Table.cell_int row.omega_leader_changes;
        ])
    result.rows;
  Table.print fmt table;
  Fmt.pf fmt
    "◊P keeps flip-flopping on the non-timely process (in the last quarter: \
     %s), stays complete on the crashed one (%s); Ω∆ stabilizes (%s)@."
    (Table.cell_bool result.dp_never_stabilizes)
    (Table.cell_bool result.dp_complete)
    (Table.cell_bool result.omega_stabilizes)
