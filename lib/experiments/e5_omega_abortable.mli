(** E5 — Ω∆ from abortable registers (Figures 4–6, Theorem 13).

    The same scenario family as E4 run over the abortable-register
    implementation, across increasingly hostile abort policies, plus the
    measured abort rate of the register mesh — showing the election still
    stabilizes when most concurrent register operations abort. *)

type policy_block = {
  policy_name : string;
  rows : E4_omega_atomic.row list;
  abort_rate : float;
      (** aggregate aborted-ops / total-ops across the message and heartbeat
          registers in the all-timely n=4 scenario *)
}

type result = { blocks : policy_block list; all_pass : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
