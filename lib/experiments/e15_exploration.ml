open Tbwf_check

type row = {
  scenario : string;
  naive_runs : int;  (* pre-reduction explorer: one execution per prefix *)
  dfs_runs : int;  (* incremental DFS, reduction off *)
  por_runs : int;  (* incremental DFS with sleep sets *)
  reduction : float;  (* naive_runs / por_runs *)
  expect_violation : bool;
  agree : bool;  (* all three explorers agree on violation presence *)
}

type fuzz_row = {
  f_scenario : string;
  f_runs : int;
  found : bool;
  original_len : int;
  minimal_len : int;
  minimal_replays : bool;  (* the shrunk schedule still violates on replay *)
}

type result = { rows : row list; fuzz_rows : fuzz_row list }

let explore_row (s : Explore_scenarios.t) =
  let naive = Explore_scenarios.exhaustive_naive s in
  let dfs = Explore_scenarios.exhaustive ~por:false s in
  let por = Explore_scenarios.exhaustive s in
  let found o = o.Explore.violation <> None in
  {
    scenario = s.Explore_scenarios.name;
    naive_runs = naive.Explore.schedules;
    dfs_runs = dfs.Explore.schedules;
    por_runs = por.Explore.schedules;
    reduction =
      float_of_int naive.Explore.schedules
      /. float_of_int (max 1 por.Explore.schedules);
    expect_violation = s.Explore_scenarios.expect_violation;
    agree =
      found naive = s.Explore_scenarios.expect_violation
      && found dfs = s.Explore_scenarios.expect_violation
      && found por = s.Explore_scenarios.expect_violation;
  }

let fuzz_row ?(runs = 2_000) (s : Explore_scenarios.t) =
  let f = Explore_scenarios.fuzz ~seed:0xF00DL ~runs s in
  match f.Explore.counterexample with
  | None ->
    {
      f_scenario = s.Explore_scenarios.name;
      f_runs = f.Explore.fuzz_runs;
      found = false;
      original_len = 0;
      minimal_len = 0;
      minimal_replays = false;
    }
  | Some minimal ->
    {
      f_scenario = s.Explore_scenarios.name;
      f_runs = f.Explore.fuzz_runs;
      found = true;
      original_len = Option.value f.Explore.shrunk_from ~default:0;
      minimal_len = List.length minimal;
      minimal_replays = not (Explore_scenarios.replay s minimal);
    }

let compute ?(quick = false) () =
  ignore quick;
  (* exploration is already "quick": the scenarios are sized for it *)
  let scenarios = Explore_scenarios.all in
  let buggy =
    List.filter (fun s -> s.Explore_scenarios.expect_violation) scenarios
  in
  {
    rows = List.map explore_row scenarios;
    fuzz_rows = List.map fuzz_row buggy;
  }

let coverage_reduction r =
  let total f = List.fold_left (fun acc row -> acc + f row) 0 r.rows in
  float_of_int (total (fun row -> row.naive_runs))
  /. float_of_int (max 1 (total (fun row -> row.por_runs)))

let report fmt r =
  let table =
    Table.create ~title:"E15: schedule-exploration coverage"
      ~columns:
        [ "scenario"; "naive runs"; "dfs runs"; "POR runs"; "reduction"; "bug?"; "agree" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.scenario;
          Table.cell_int row.naive_runs;
          Table.cell_int row.dfs_runs;
          Table.cell_int row.por_runs;
          Fmt.str "%.1fx" row.reduction;
          (if row.expect_violation then "yes" else "no");
          Table.cell_bool row.agree;
        ])
    r.rows;
  Table.print fmt table;
  Fmt.pf fmt "overall naive/POR executed-schedule reduction: %.1fx@."
    (coverage_reduction r);
  let fuzz_table =
    Table.create ~title:"E15: fuzz + shrink on the buggy scenarios"
      ~columns:
        [ "scenario"; "runs to bug"; "found"; "witness len"; "shrunk len"; "replays" ]
  in
  List.iter
    (fun f ->
      Table.add_row fuzz_table
        [
          f.f_scenario;
          Table.cell_int f.f_runs;
          Table.cell_bool f.found;
          Table.cell_int f.original_len;
          Table.cell_int f.minimal_len;
          Table.cell_bool f.minimal_replays;
        ])
    r.fuzz_rows;
  Table.print fmt fuzz_table
