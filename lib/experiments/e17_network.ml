(* E17: the degradation matrix over the message-passing substrate. The
   same campaign × system grid as E16, but the registers under the Ω∆ are
   ABD-style quorum emulations over the simulated crash-prone network
   (lib/net), so register timeliness is emergent — a property of the
   links and the live replica set — rather than assumed. The network
   campaign catalogue (partitions, heals, delay ramps, drop storms,
   replica crashes) drives the new axis; the checker exempts clients the
   plan cuts off from a live replica majority, and the paper systems must
   hold every cell for the clients that remain quorate. *)

open Tbwf_nemesis

type cell = {
  holds : bool;
  as_expected : bool;
  min_tail_ops : int;  (* min ops over in-force processes, -1 if none *)
}

type row = {
  campaign : string;
  atom : string;
  exempt : int list;  (* clients the plan's emergent prediction exempts *)
  cells : (Campaign.system * cell) list;
}

type result = {
  n : int;
  replicas : int;
  horizon : int;
  rows : row list;
  all_ok : bool;
}

let cell_of_row (r : Campaign.row) =
  let v = r.Campaign.row_result.Campaign.rr_verdict in
  {
    holds = v.Tbwf_check.Degradation.holds;
    as_expected = r.Campaign.row_as_expected;
    min_tail_ops =
      Option.value ~default:(-1)
        (Tbwf_check.Degradation.min_timely_tail_ops v);
  }

let exempt_clients plan =
  match Fault_plan.emergent plan with
  | None -> []
  | Some em ->
    List.filter
      (fun c -> not (Tbwf_check.Degradation.emergent_quorate em c))
      (List.init (Fault_plan.n plan) Fun.id)

let compute ?(quick = false) () =
  let substrate =
    Tbwf_system.System.Message_passing Tbwf_net.Net.default_config
  in
  let n, horizon = Campaign.substrate_dimensions ~substrate ~quick () in
  let outcomes =
    List.map (Campaign.run ~quick ~substrate) Campaign.net_catalogue
  in
  let rows =
    List.map
      (fun (o : Campaign.outcome) ->
        {
          campaign = Campaign.name o.Campaign.o_campaign;
          atom = Campaign.headline_atom o.Campaign.o_campaign;
          exempt = exempt_clients o.Campaign.o_plan;
          cells =
            List.map
              (fun r -> (r.Campaign.row_system, cell_of_row r))
              o.Campaign.o_rows;
        })
      outcomes
  in
  {
    n;
    replicas = Campaign.net_replicas;
    horizon;
    rows;
    all_ok = List.for_all (fun o -> o.Campaign.o_ok) outcomes;
  }

let report fmt r =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E17: degradation over message passing (n=%d, %d replicas, \
            horizon=%d)"
           r.n r.replicas r.horizon)
      ~columns:
        ("campaign" :: "atom" :: "exempt"
        :: List.map Campaign.system_name Campaign.all_systems)
  in
  List.iter
    (fun row ->
      Table.add_row table
        (row.campaign :: row.atom
        :: (match row.exempt with
           | [] -> "-"
           | cs -> String.concat "," (List.map string_of_int cs))
        :: List.map
             (fun system ->
               match List.assoc_opt system row.cells with
               | None -> "-"
               | Some c ->
                 Fmt.str "%s %d%s"
                   (if c.holds then "holds" else "fails")
                   c.min_tail_ops
                   (if c.as_expected then "" else " [!]"))
             Campaign.all_systems))
    r.rows;
  Table.print fmt table;
  Fmt.pf fmt
    "registers are ABD quorum emulations over the simulated network; \
     'exempt' lists clients the plan cuts off from a live replica \
     majority (no guarantee in force for them); cells show verdict + min \
     tail ops over the clients that keep the guarantee; [!] marks a \
     verdict that contradicts the campaign's prediction@.";
  Fmt.pf fmt "matrix %s@."
    (if r.all_ok then "as predicted" else "NOT as predicted")
