(** Minimal column-aligned text tables for experiment reports. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val row_count : t -> int
val print : Format.formatter -> t -> unit

val cell_int : int -> string
val cell_float : float -> string
val cell_bool : bool -> string
(** Render [true] as "yes" and [false] as "NO" so violations stand out. *)

val cell_ints : int list -> string
(** Comma-separated without line breaks (Fmt's [comma] inserts break hints
    that would wrap inside table cells). *)
