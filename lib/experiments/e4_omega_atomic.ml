type row = {
  scenario : string;
  n : int;
  elected : int option;
  elected_ok : bool;
  stabilization_step : int option;
  violations : string list;
}

type result = { rows : row list; all_pass : bool }

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let row_of_outcome ~scenario ~n ~expected (outcome : Omega_scenarios.outcome) =
  let elected = outcome.verdict.Tbwf_omega.Omega_spec.elected in
  {
    scenario;
    n;
    elected;
    elected_ok =
      (match elected with Some e -> List.mem e expected | None -> false);
    stabilization_step = outcome.stabilization_step;
    violations = outcome.verdict.Tbwf_omega.Omega_spec.violations;
  }

let scenario_rows ~quick ~omega =
  let segments = if quick then 12 else 30 in
  let segment_steps = if quick then 4_000 else 10_000 in
  let run =
    Omega_scenarios.run ~omega ~segments ~segment_steps
      ~rcand_phase:(if quick then 60 else 400)
      ~ncand_phase:(if quick then 80 else 600)
  in
  let all_timely n =
    let classes = Omega_scenarios.everyone_p ~n in
    let outcome = run ~n ~classes () in
    row_of_outcome ~scenario:(Fmt.str "all timely, n=%d" n) ~n
      ~expected:(range 0 (n - 1)) outcome
  in
  let untimely_min_pid =
    let n = 4 in
    let classes =
      { (Omega_scenarios.everyone_p ~n) with untimely = [ 0 ] }
    in
    let outcome = run ~n ~classes () in
    row_of_outcome ~scenario:"pid 0 flickers (not timely)" ~n
      ~expected:(range 1 (n - 1)) outcome
  in
  let mixed_classes =
    let n = 6 in
    let classes =
      {
        Omega_scenarios.pcands = [ 0; 1; 2 ];
        rcands = [ 3; 4 ];
        ncands = [ 5 ];
        untimely = [ 0 ];
        crashes = [];
      }
    in
    let outcome = run ~n ~classes () in
    row_of_outcome ~scenario:"P={0u,1,2} R={3,4} N={5}" ~n ~expected:[ 1; 2 ]
      outcome
  in
  let leader_crash =
    let n = 4 in
    (* With equal counters the initial leader is pid 0; crash it mid-run. *)
    let classes =
      {
        (Omega_scenarios.everyone_p ~n) with
        Omega_scenarios.crashes = [ 0, (segments * segment_steps) / 3 ];
      }
    in
    let outcome = run ~n ~classes () in
    row_of_outcome ~scenario:"leader (pid 0) crashes" ~n
      ~expected:(range 1 (n - 1)) outcome
  in
  let sizes = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  List.map all_timely sizes
  @ [ untimely_min_pid; mixed_classes; leader_crash ]

let compute ?(quick = false) () =
  let rows = scenario_rows ~quick ~omega:Scenario.Omega_atomic in
  {
    rows;
    all_pass =
      List.for_all (fun r -> r.elected_ok && r.violations = []) rows;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        "E4: dynamic leader election from atomic registers (Figure 3) — \
         Definition 5 / Theorem 7 checks"
      ~columns:
        [ "scenario"; "n"; "elected"; "in expected set"; "stable from step"; "violations" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.scenario;
          Table.cell_int row.n;
          (match row.elected with Some e -> Table.cell_int e | None -> "-");
          Table.cell_bool row.elected_ok;
          (match row.stabilization_step with
          | Some s -> Table.cell_int s
          | None -> "-");
          (match row.violations with
          | [] -> "none"
          | vs -> Fmt.str "%d: %s" (List.length vs) (List.hd vs));
        ])
    result.rows;
  Table.print fmt table
