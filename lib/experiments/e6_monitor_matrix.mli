(** E6 — activity-monitor specification matrix (Definition 9, Figure 2).

    One monitor A(p,q) with p = 0, q = 1, driven through the input/behaviour
    combinations that Definition 9 constrains, one row per property:

    - status properties 1–4 (eventual value of [status]);
    - faultCntr properties 5(a)–5(d) (boundedness) and 6 (unbounded growth).

    Inputs can be eventually-on, eventually-off or oscillate forever; q can
    be timely, non-timely (flickering schedule) or crash mid-run. *)

type row = {
  property : string;
  scenario : string;
  expected : string;
  observed : string;
  pass : bool;
}

type result = { rows : row list; all_pass : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
