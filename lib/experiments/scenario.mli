(** Common scenario construction for the experiment suite.

    A scenario is a full TBWF stack (Ω∆ implementation + query-abortable
    object + Figure 7 transformation + client workload) plus a schedule
    policy, run in segments with Ω∆ output sampling between segments. *)

type omega_impl =
  | Omega_atomic  (** Figure 3 over activity monitors and atomic registers *)
  | Omega_abortable of Tbwf_registers.Abort_policy.t
      (** Figures 4–6 over abortable registers with this abort policy *)
  | Omega_naive  (** the non-gracefully-degrading booster baseline *)

val pp_omega_impl : Format.formatter -> omega_impl -> unit

type stack = {
  rt : Tbwf_sim.Runtime.t;
  handles : Tbwf_omega.Omega_spec.handle array;
  qa : Tbwf_objects.Qa_intf.t;
  tbwf : Tbwf_core.Tbwf.t;
  stats : Tbwf_core.Workload.stats;
}

val set_default_backend : Tbwf_sim.Backend.t -> unit
(** Backend used by {!build} when no [?backend] is given (initially
    [Reference]). The experiments CLI's [--backend] flag sets it once so
    every registry entry — whose [run] signature has no backend
    parameter — picks it up. *)

val build :
  ?backend:Tbwf_sim.Backend.t ->
  ?seed:int64 ->
  ?canonical:bool ->
  ?qa_universal:bool ->
  ?qa_policy:Tbwf_registers.Abort_policy.t ->
  n:int ->
  omega:omega_impl ->
  spec:Tbwf_objects.Seq_spec.t ->
  next_op:(pid:int -> k:int -> Tbwf_sim.Value.t option) ->
  client_pids:int list ->
  unit ->
  stack
(** Wire a complete stack. [qa_policy] defaults to always-abort-on-
    contention; [qa_universal] selects the layered RMW-cell construction
    instead of the direct object (default false). *)

val degraded_policy :
  ?untimely_pattern:[ `Flicker of int * int * float | `Slowing of int * float ] ->
  n:int ->
  timely:int list ->
  unit ->
  Tbwf_sim.Policy.t
(** Timely pids take steps in a deterministic interleave (an [Every] claim
    each, so each is timely with bound about twice the number of timely
    processes); the rest follow [untimely_pattern] — by default
    [`Slowing (60, 1.15)], a process whose step gaps grow geometrically
    (never timely, never willingly inactive), the adversary under which the
    baselines of E2 collapse. [`Flicker (active, sleep, growth)] alternates
    eager phases with geometrically growing silences instead. *)

val run_sampled :
  stack ->
  policy:Tbwf_sim.Policy.t ->
  segments:int ->
  segment_steps:int ->
  Tbwf_omega.Omega_spec.sample list
(** Run the stack [segments × segment_steps] further steps, sampling the Ω∆
    outputs after each segment; returns the samples in order. *)
