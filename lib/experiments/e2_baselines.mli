(** E2 — graceful vs non-graceful degradation (paper §1.2, §2).

    Same workload (endless counter increments, one flickering non-timely
    process with the smallest pid, the rest timely) run over three systems:

    - TBWF (this paper): the flickering process is punished out of
      leadership; timely processes keep a steady completion rate;
    - a naive booster in the style of [7, 8, 11] (leadership to the smallest
      alive-looking pid, no punishment): every time the flickerer looks
      alive it recaptures leadership, and the failure detector's adaptive
      timeout makes each such capture stall everyone for longer — per-
      segment completions of the timely processes decay;
    - plain obstruction-free retries (no boosting at all) under the
      always-abort adversary: contention livelocks everyone.

    The paper's prediction: only TBWF lets the timely majority's progress
    survive the loss of one process's timeliness. *)

type row = {
  system : string;
  timely_total : int;  (** ops completed by timely processes, whole run *)
  untimely_total : int;
  first_segment : int;  (** timely ops in the first run segment *)
  last_segment : int;  (** timely ops in the last run segment *)
}

type result = { n : int; segments : int; segment_steps : int; rows : row list }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
