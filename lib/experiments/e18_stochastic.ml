(* E18: "practically wait-free" under stochastic schedulers, measured as
   completion-time tails. Alistarh, Censor-Hillel and Shavit observed
   that lock-free algorithms behave wait-free under stochastic
   schedulers: with every process equally likely to be scheduled, the
   adversarial interleavings that starve an operation have vanishing
   probability, so completion-time tails stay short even for algorithms
   with no worst-case progress bound. The qualitative claim this
   experiment reproduces: under a uniform stochastic scheduler {e all
   five} systems — including the naive booster and bare retry, which the
   nemesis campaigns reject — show tight per-operation tails; under the
   E2 adversary (one process decelerating forever) the baselines' tails
   blow up by orders of magnitude while the TBWF systems' tails stay
   bounded. Timeliness-based wait-freedom is exactly the gap between
   those two columns: the paper's guarantee is the stochastic-scheduler
   experience, delivered under an adversary.

   Tails come from the telemetry span tracer's quantile sketches
   (app-layer invoke→respond times, in steps), so the numbers are
   deterministic per seed and mergeable across runs. *)

open Tbwf_system
open Tbwf_telemetry

type regime = Uniform | Adversarial

let regime_name = function
  | Uniform -> "uniform"
  | Adversarial -> "adversary"

type cell = {
  completed : int;  (* workload operations completed over the run *)
  ops_observed : int;  (* app-layer spans the tracer closed *)
  p50 : int;
  p99 : int;
  p999 : int;
  max_time : int;  (* all in steps, invoke to respond *)
}

type result = {
  n : int;
  steps : int;
  cells : (System.id * (regime * cell) list) list;
  (* The headline numbers: how much of its stochastic-scheduler
     throughput each population keeps under the adversary. Tails alone
     can't tell the story for bare retry — its app spans are per
     *attempt*, so they stay short while it completes nothing — but
     completed operations can: the TBWF systems retain their uniform
     throughput, the baselines collapse. *)
  tbwf_min_retention : float;  (* min over paper systems *)
  baseline_max_retention : float;  (* max over baselines *)
}

let retention regimes =
  match
    List.assoc_opt Uniform regimes, List.assoc_opt Adversarial regimes
  with
  | Some u, Some a when u.completed > 0 ->
    float_of_int a.completed /. float_of_int u.completed
  | _ -> 0.0

let run_cell ~n ~steps ~seed ~regime system =
  let stack = System.build ~seed ~telemetry:true ~n system in
  let telemetry = Option.get stack.System.telemetry in
  let policy =
    match regime with
    | Uniform ->
      (* Every pid equally likely each step: the stochastic scheduler
         under which lock-free is practically wait-free. *)
      Tbwf_sim.Policy.weighted (Array.init n (fun pid -> pid, 1.0))
    | Adversarial ->
      (* The E2 adversary: pid 0's gaps grow geometrically forever,
         everyone else is timely. *)
      Scenario.degraded_policy ~n ~timely:(List.init (n - 1) (fun i -> i + 1))
        ()
  in
  Tbwf_sim.Runtime.run stack.System.rt ~policy ~steps;
  Tbwf_sim.Runtime.stop stack.System.rt;
  let q = Span.tail_of (Collector.spans telemetry) Tbwf_sim.Sink.App in
  {
    completed =
      Array.fold_left ( + ) 0 (Collector.app_completed telemetry);
    ops_observed = Quantile.count q;
    p50 = Quantile.p50 q;
    p99 = Quantile.p99 q;
    p999 = Quantile.p999 q;
    max_time = Quantile.max_value q;
  }

let compute ?(quick = false) () =
  let n = if quick then 4 else 6 in
  let steps = if quick then 60_000 else 240_000 in
  let cells =
    List.map
      (fun system ->
        ( system,
          List.map
            (fun regime ->
              ( regime,
                run_cell ~n ~steps ~seed:0xE18L ~regime system ))
            [ Uniform; Adversarial ] ))
      System.all
  in
  let retention_of system =
    match List.assoc_opt system cells with
    | None -> 0.0
    | Some rs -> retention rs
  in
  {
    n;
    steps;
    cells;
    tbwf_min_retention =
      List.fold_left
        (fun acc s -> min acc (retention_of s))
        infinity System.paper_systems;
    baseline_max_retention =
      List.fold_left
        (fun acc s -> max acc (retention_of s))
        0.0 System.baseline_systems;
  }

let report fmt r =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E18: completion-time tails, stochastic scheduler vs adversary \
            (n=%d, %d steps)"
           r.n r.steps)
      ~columns:
        [ "system"; "regime"; "completed"; "ops"; "p50"; "p99"; "p999";
          "max"; "retained" ]
  in
  List.iter
    (fun (system, regimes) ->
      List.iter
        (fun (regime, c) ->
          Table.add_row table
            [
              System.to_string system;
              regime_name regime;
              string_of_int c.completed;
              string_of_int c.ops_observed;
              string_of_int c.p50;
              string_of_int c.p99;
              string_of_int c.p999;
              string_of_int c.max_time;
              (match regime with
              | Uniform -> "-"
              | Adversarial -> Fmt.str "%.2f" (retention regimes));
            ])
        regimes)
    r.cells;
  Table.print fmt table;
  Fmt.pf fmt
    "per-operation completion times (steps, app-layer invoke to respond) \
     from the telemetry quantile sketches; 'uniform' schedules every \
     process with equal probability each step, 'adversary' is E2's \
     decelerating process 0@.";
  Fmt.pf fmt
    "the practically-wait-free gap: under the uniform stochastic \
     scheduler every system looks wait-free — tight tails, steady \
     completions (the Alistarh-Censor-Hillel-Shavit effect; bare retry's \
     spans are per attempt, so watch its 'completed' column, not its \
     tails); under the adversary the baselines keep at most %.2f of \
     their uniform throughput while every TBWF system keeps %.2f or \
     more — the paper's guarantee is the stochastic-scheduler \
     experience, delivered under an adversary@."
    r.baseline_max_retention r.tbwf_min_retention
