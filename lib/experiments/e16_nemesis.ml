(* E16: the Nemesis degradation matrix. Runs the whole fault-injection
   campaign catalogue (lib/nemesis) against every system — the paper's
   three algorithm stacks plus the two baselines — and checks each verdict
   of the graceful-degradation checker against the campaign's prediction:
   paper systems keep every predicted-timely process progressing at the
   required tail rate, baselines do not. *)

open Tbwf_nemesis

type cell = {
  holds : bool;
  as_expected : bool;
  min_tail_ops : int;  (* min ops over predicted-timely processes, -1 if none *)
}

type row = {
  campaign : string;
  atom : string;
  tail_steps : int;
  min_ops : int;  (* the rate floor the verdicts were judged against *)
  cells : (Campaign.system * cell) list;
}

type result = { n : int; horizon : int; rows : row list; all_ok : bool }

let cell_of_row (r : Campaign.row) =
  let v = r.Campaign.row_result.Campaign.rr_verdict in
  {
    holds = v.Tbwf_check.Degradation.holds;
    as_expected = r.Campaign.row_as_expected;
    min_tail_ops =
      Option.value ~default:(-1)
        (Tbwf_check.Degradation.min_timely_tail_ops v);
  }

let compute ?(quick = false) () =
  let n, horizon = Campaign.dimensions ~quick in
  let outcomes = List.map (Campaign.run ~quick) Campaign.catalogue in
  let rows =
    List.map
      (fun (o : Campaign.outcome) ->
        let first = List.hd o.Campaign.o_rows in
        let result = first.Campaign.row_result in
        let tail = result.Campaign.rr_tail_steps in
        {
          campaign = Campaign.name o.Campaign.o_campaign;
          atom = Campaign.headline_atom o.Campaign.o_campaign;
          tail_steps = tail;
          min_ops = Campaign.required_tail_ops ~n ~tail;
          cells =
            List.map
              (fun r -> (r.Campaign.row_system, cell_of_row r))
              o.Campaign.o_rows;
        })
      outcomes
  in
  {
    n;
    horizon;
    rows;
    all_ok = List.for_all (fun o -> o.Campaign.o_ok) outcomes;
  }

let report fmt r =
  let table =
    Table.create
      ~title:
        (Fmt.str "E16: Nemesis degradation matrix (n=%d, horizon=%d)" r.n
           r.horizon)
      ~columns:
        ("campaign" :: "atom" :: "floor"
        :: List.map Campaign.system_name Campaign.all_systems)
  in
  List.iter
    (fun row ->
      Table.add_row table
        (row.campaign :: row.atom
        :: Table.cell_int row.min_ops
        :: List.map
             (fun system ->
               match List.assoc_opt system row.cells with
               | None -> "-"
               | Some c ->
                 Fmt.str "%s %d%s"
                   (if c.holds then "holds" else "fails")
                   c.min_tail_ops
                   (if c.as_expected then "" else " [!]"))
             Campaign.all_systems))
    r.rows;
  Table.print fmt table;
  Fmt.pf fmt
    "cells show verdict + min tail ops per predicted-timely process \
     (floor = required ops over the %d-step tail); [!] marks a verdict \
     that contradicts the campaign's prediction@."
    (match r.rows with row :: _ -> row.tail_steps | [] -> 0);
  Fmt.pf fmt "matrix %s@."
    (if r.all_ok then "as predicted" else "NOT as predicted")
