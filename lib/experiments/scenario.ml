open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_core

type omega_impl =
  | Omega_atomic
  | Omega_abortable of Abort_policy.t
  | Omega_naive

let pp_omega_impl fmt = function
  | Omega_atomic -> Fmt.string fmt "atomic-registers"
  | Omega_abortable policy ->
    Fmt.pf fmt "abortable-registers(%a)" Abort_policy.pp policy
  | Omega_naive -> Fmt.string fmt "naive-booster"

type stack = {
  rt : Runtime.t;
  handles : Omega_spec.handle array;
  qa : Qa_intf.t;
  tbwf : Tbwf.t;
  stats : Workload.stats;
}

let build ?(seed = 0xC0FFEEL) ?(canonical = true) ?(qa_universal = false)
    ?(qa_policy = Abort_policy.Always) ~n ~omega ~spec ~next_op ~client_pids
    () =
  let rt = Runtime.create ~seed ~n () in
  let handles =
    match omega with
    | Omega_atomic -> (Omega_registers.install rt).Omega_registers.handles
    | Omega_abortable policy ->
      (Omega_abortable.install rt ~policy ()).Omega_abortable.handles
    | Omega_naive -> (Baselines.Naive_booster.install rt).Baselines.Naive_booster.handles
  in
  let qa =
    if qa_universal then
      Qa_universal.create rt ~name:(spec.Seq_spec.name ^ "-qa") ~spec
        ~policy:qa_policy ()
    else
      Qa_object.create rt ~name:(spec.Seq_spec.name ^ "-qa") ~spec
        ~policy:qa_policy ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:handles ~canonical () in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:client_pids ~stats ~invoke:(Tbwf.invoke tbwf)
    ~next_op;
  { rt; handles; qa; tbwf; stats }

let degraded_policy ?(untimely_pattern = `Slowing (60, 1.15)) ~n ~timely () =
  let k = max 1 (List.length timely) in
  let untimely =
    match untimely_pattern with
    | `Flicker (active, sleep, growth) -> Policy.Flicker { active; sleep; growth }
    | `Slowing (initial_gap, growth) ->
      (* Burst sized so each visit yields at least one heartbeat write even
         with a full monitor mesh multiplexed onto the process. *)
      Policy.Slowing { initial_gap; growth; burst = 8 * n }
  in
  let pattern pid =
    (* A strict rotation: every step is claimed by some timely process, so
       the interleaving is perfectly adversarial for unboosted retries. *)
    match List.find_index (fun p -> p = pid) timely with
    | Some i -> Policy.Every { period = k; offset = i }
    | None -> untimely
  in
  Policy.of_patterns ~name:"degraded" (List.init n (fun pid -> pid, pattern pid))

let run_sampled stack ~policy ~segments ~segment_steps =
  let samples = ref [] in
  for _seg = 1 to segments do
    Runtime.run stack.rt ~policy ~steps:segment_steps;
    samples :=
      Omega_spec.take_sample ~at_step:(Runtime.now stack.rt) stack.handles
      :: !samples
  done;
  List.rev !samples
