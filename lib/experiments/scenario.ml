open Tbwf_sim
open Tbwf_registers
open Tbwf_core

type omega_impl =
  | Omega_atomic
  | Omega_abortable of Abort_policy.t
  | Omega_naive

let pp_omega_impl fmt = function
  | Omega_atomic -> Fmt.string fmt "atomic-registers"
  | Omega_abortable policy ->
    Fmt.pf fmt "abortable-registers(%a)" Abort_policy.pp policy
  | Omega_naive -> Fmt.string fmt "naive-booster"

type stack = {
  rt : Runtime.t;
  handles : Tbwf_omega.Omega_spec.handle array;
  qa : Tbwf_objects.Qa_intf.t;
  tbwf : Tbwf.t;
  stats : Workload.stats;
}

(* All wiring lives in the System layer; a scenario is a System stack
   narrowed to the boosted systems (so [tbwf] is total). *)

(* The experiment registry's entries don't take a backend parameter, so
   the experiments CLI selects one globally instead. Per-call [?backend]
   still wins when given. *)
let default_backend = ref Backend.Reference
let set_default_backend b = default_backend := b

let build ?backend ?(seed = 0xC0FFEEL)
    ?(canonical = true) ?(qa_universal = false)
    ?(qa_policy = Abort_policy.Always) ~n ~omega ~spec ~next_op ~client_pids
    () =
  let id, mesh_policy =
    match omega with
    | Omega_atomic -> Tbwf_system.System.Tbwf_atomic, Abort_policy.Always
    | Omega_abortable policy ->
      ( (if qa_universal then Tbwf_system.System.Tbwf_universal
         else Tbwf_system.System.Tbwf_abortable),
        policy )
    | Omega_naive -> Tbwf_system.System.Naive_booster, Abort_policy.Always
  in
  let backend = Option.value backend ~default:!default_backend in
  let s =
    Tbwf_system.System.build ~backend ~seed ~canonical ~qa_universal
      ~qa_policy ~mesh_policy ~spec ~next_op ~client_pids ~n id
  in
  {
    rt = s.Tbwf_system.System.rt;
    handles = s.Tbwf_system.System.handles;
    qa = s.Tbwf_system.System.qa;
    tbwf = Option.get s.Tbwf_system.System.tbwf;
    stats = s.Tbwf_system.System.stats;
  }

let degraded_policy ?(untimely_pattern = `Slowing (60, 1.15)) ~n ~timely () =
  let k = max 1 (List.length timely) in
  let untimely =
    match untimely_pattern with
    | `Flicker (active, sleep, growth) -> Policy.Flicker { active; sleep; growth }
    | `Slowing (initial_gap, growth) ->
      (* Burst sized so each visit yields at least one heartbeat write even
         with a full monitor mesh multiplexed onto the process. *)
      Policy.Slowing { initial_gap; growth; burst = 8 * n }
  in
  let pattern pid =
    (* A strict rotation: every step is claimed by some timely process, so
       the interleaving is perfectly adversarial for unboosted retries. *)
    match List.find_index (fun p -> p = pid) timely with
    | Some i -> Policy.Every { period = k; offset = i }
    | None -> untimely
  in
  Policy.of_patterns ~name:"degraded" (List.init n (fun pid -> pid, pattern pid))

let run_sampled stack ~policy ~segments ~segment_steps =
  let samples = ref [] in
  for _seg = 1 to segments do
    Runtime.run stack.rt ~policy ~steps:segment_steps;
    samples :=
      Tbwf_omega.Omega_spec.take_sample ~at_step:(Runtime.now stack.rt)
        stack.handles
      :: !samples
  done;
  List.rev !samples
