open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_check

type t = {
  name : string;
  summary : string;
  n : int;
  seed : int64;
  max_steps : int;
  expect_violation : bool;
  scenario : Runtime.t -> unit -> bool;
}

let make_runtime t () = Runtime.create ~seed:t.seed ~n:t.n ()

(* --- atomic2: every interleaving of two register clients linearizable --- *)

let atomic2_scenario rt =
  let reg = Atomic_reg.create rt ~name:"X" ~codec:Codec.int ~init:0 in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        Atomic_reg.write reg (pid + 1);
        ignore (Atomic_reg.read reg))
  done;
  fun () ->
    let history = History.complete_ops (Runtime.trace rt) ~obj_name:"X" in
    Linearizability.check (Linearizability.register_spec ~init:(Value.Int 0))
      history

let atomic2 =
  {
    name = "atomic2";
    summary = "2 clients of one atomic register: linearizable everywhere";
    n = 2;
    seed = 1L;
    max_steps = 10;
    expect_violation = false;
    scenario = atomic2_scenario;
  }

(* --- abortable2: abortable-register value domain is safe ----------------- *)

let abortable2_scenario rt =
  let reg =
    Abortable_reg.create rt ~name:"A" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always
      ~write_effect:Abort_policy.Effect_always ()
  in
  let reads = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      ignore (Abortable_reg.write reg 1);
      ignore (Abortable_reg.write reg 2));
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 2 do
        match Abortable_reg.read reg with
        | Some v ->
          let snapshot = !reads in
          reads := v :: snapshot
        | None -> ()
      done);
  fun () ->
    List.for_all (fun v -> v = 0 || v = 1 || v = 2) !reads
    && List.mem (Abortable_reg.peek reg) [ 0; 1; 2 ]

let abortable2 =
  {
    name = "abortable2";
    summary = "abortable register under the always-abort adversary";
    n = 2;
    seed = 1L;
    max_steps = 10;
    expect_violation = false;
    scenario = abortable2_scenario;
  }

(* --- qa2: query-abortable fates are exact -------------------------------- *)

let qa2_scenario rt =
  let qa =
    Qa_object.create rt ~name:"q" ~spec:Counter.spec ~policy:Abort_policy.Always
      ~effect_on_abort:Abort_policy.Effect_always ()
  in
  let confirmed = ref [] in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        let res = qa.Qa_intf.invoke Counter.inc in
        let fate =
          if Value.equal res Value.Abort then qa.Qa_intf.query () else res
        in
        match fate with
        | Value.Int v ->
          let snapshot = !confirmed in
          confirmed := v :: snapshot
        | _ -> ())
  done;
  fun () ->
    match qa.Qa_intf.peek_state () with
    | Value.Int state ->
      state >= 0 && state <= 2
      && List.length !confirmed <= state
      && List.for_all (fun v -> v >= 0 && v < state) !confirmed
      && List.sort_uniq compare !confirmed = List.sort compare !confirmed
    | _ -> false

let qa2 =
  {
    name = "qa2";
    summary = "query-abortable counter: fates exact on every interleaving";
    n = 2;
    seed = 1L;
    max_steps = 12;
    expect_violation = false;
    scenario = qa2_scenario;
  }

(* --- regs3: mostly-disjoint registers, the reduction's showcase ---------- *)

let regs3_scenario rt =
  let shared = Atomic_reg.create rt ~name:"S" ~codec:Codec.int ~init:0 in
  let privs =
    Array.init 3 (fun i ->
        Atomic_reg.create rt ~name:(Fmt.str "R%d" i) ~codec:Codec.int ~init:0)
  in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        Atomic_reg.write privs.(pid) (pid + 1);
        ignore (Atomic_reg.read shared))
  done;
  fun () ->
    let shared_reads_zero =
      History.complete_ops (Runtime.trace rt) ~obj_name:"S"
      |> List.for_all (fun o ->
             (not (Value.is_read o.History.op))
             || Value.equal o.History.result (Value.Int 0))
    in
    shared_reads_zero
    && Array.for_all
         (fun i -> List.mem (Atomic_reg.peek privs.(i)) [ 0; i + 1 ])
         [| 0; 1; 2 |]

let regs3 =
  {
    name = "regs3";
    summary = "3 writers on private registers + one shared read: POR showcase";
    n = 3;
    seed = 1L;
    max_steps = 12;
    expect_violation = false;
    scenario = regs3_scenario;
  }

(* --- broken1: a register that lies, caught by some schedule -------------- *)

let broken1_scenario rt =
  let cell = ref (Value.Int 0) in
  let obj =
    Runtime.register_object rt ~name:"B" ~respond:(fun ctx ->
        match ctx.Shared.op with
        | Value.Pair (Str "write", v) ->
          cell := v;
          Value.Unit
        | Value.Pair (Str "read", _) -> Value.Int 999 (* always wrong *)
        | _ -> assert false)
  in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj (Value.write_op (Value.Int 1)) in
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  fun () ->
    let history = History.complete_ops (Runtime.trace rt) ~obj_name:"B" in
    Linearizability.check (Linearizability.register_spec ~init:(Value.Int 0))
      history

let broken1 =
  {
    name = "broken1";
    summary = "a broken register whose reads lie: a violation must be found";
    n = 1;
    seed = 1L;
    max_steps = 8;
    expect_violation = true;
  scenario = broken1_scenario;
  }

(* --- mutex2: a check-then-set "lock" that two processes can both win ----- *)

(* Critical-section occupancy is itself a shared object (so the violation is
   visible to the explorer's footprint-based reduction, and recorded in the
   trace): entering and leaving are single atomic operations on it. *)
let mutex2_scenario rt =
  let occupancy = ref 0 in
  let cs =
    Runtime.register_object rt ~name:"cs" ~respond:(fun ctx ->
        match ctx.Shared.op with
        | Value.Str "enter" ->
          incr occupancy;
          Value.Int !occupancy
        | Value.Str "leave" ->
          decr occupancy;
          Value.Int !occupancy
        | _ -> assert false)
  in
  let flags =
    Array.init 2 (fun i ->
        Atomic_reg.create rt ~name:(Fmt.str "F%d" i) ~codec:Codec.int ~init:0)
  in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        (* The classic broken lock: test the other flag, THEN set ours. *)
        if Atomic_reg.read flags.(1 - pid) = 0 then begin
          Atomic_reg.write flags.(pid) 1;
          let (_ : Value.t) = Runtime.call cs (Value.Str "enter") in
          Runtime.yield ();
          let (_ : Value.t) = Runtime.call cs (Value.Str "leave") in
          Atomic_reg.write flags.(pid) 0
        end)
  done;
  fun () -> !occupancy <= 1

let mutex2 =
  {
    name = "mutex2";
    summary = "flawed check-then-set lock: mutual exclusion must break";
    n = 2;
    seed = 1L;
    max_steps = 16;
    expect_violation = true;
    scenario = mutex2_scenario;
  }

let all = [ atomic2; abortable2; qa2; regs3; broken1; mutex2 ]

let find name =
  List.find_opt (fun t -> String.equal t.name name) all

(* --- uniform drivers ----------------------------------------------------- *)

let exhaustive ?max_schedules ?por ?pool t =
  Explore.exhaustive ?max_schedules ?por ?pool ~max_steps:t.max_steps
    ~scenario:t.scenario ~make_runtime:(make_runtime t) ()

let exhaustive_naive ?max_schedules t =
  Explore.exhaustive_naive ?max_schedules ~max_steps:t.max_steps
    ~scenario:t.scenario ~make_runtime:(make_runtime t) ()

let fuzz ?seed ?runs ?pool t =
  Explore.fuzz ?seed ?runs ?pool ~max_steps:t.max_steps ~scenario:t.scenario
    ~make_runtime:(make_runtime t) ()

let replay t pids =
  Explore.replay ~max_steps:t.max_steps ~scenario:t.scenario
    ~make_runtime:(make_runtime t) pids

let schedule_of t pids = Schedule.make ~seed:t.seed ~n:t.n pids
