(** E15 — schedule-exploration coverage.

    Not a claim of the paper but of the reproduction's own tooling: on the
    scenario library of {!Explore_scenarios}, the incremental DFS with
    sleep-set partial-order reduction must (a) agree with the
    pre-reduction explorer on which scenarios contain violations, and
    (b) execute an order of magnitude fewer schedules overall; and the
    random fuzzer must find the planted bugs and shrink their witnesses to
    short schedules that reproduce deterministically on replay. *)

type row = {
  scenario : string;
  naive_runs : int;
  dfs_runs : int;
  por_runs : int;
  reduction : float;
  expect_violation : bool;
  agree : bool;
}

type fuzz_row = {
  f_scenario : string;
  f_runs : int;
  found : bool;
  original_len : int;
  minimal_len : int;
  minimal_replays : bool;
}

type result = { rows : row list; fuzz_rows : fuzz_row list }

val compute : ?quick:bool -> unit -> result

val coverage_reduction : result -> float
(** Total naive executed schedules over total POR executed schedules. *)

val report : Format.formatter -> result -> unit
