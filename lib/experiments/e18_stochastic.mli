(** E18: the "practically wait-free" effect — per-operation
    completion-time tails for all five systems under a uniform stochastic
    scheduler vs the E2 adversary, from the telemetry quantile sketches.
    Reproduces the qualitative claim of Alistarh, Censor-Hillel and
    Shavit (Are lock-free concurrent algorithms practically wait-free?):
    stochastic scheduling makes every system's tails tight; the adversary
    blows up the baselines' tails while the TBWF systems stay bounded. *)

type regime = Uniform | Adversarial

val regime_name : regime -> string

type cell = {
  completed : int;
  ops_observed : int;
  p50 : int;
  p99 : int;
  p999 : int;
  max_time : int;
}

type result = {
  n : int;
  steps : int;
  cells : (Tbwf_system.System.id * (regime * cell) list) list;
  tbwf_min_retention : float;
      (** min over paper systems of (adversary completed / uniform
          completed) *)
  baseline_max_retention : float;  (** same ratio, max over baselines *)
}

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
