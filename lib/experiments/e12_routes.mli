(** E12 — five routes to progress on the same object (paper §1.2 and
    reference [10]).

    The deque of Herlihy–Luchangco–Moir implemented five ways:

    - {e direct obstruction-free} from CAS cells ({!Tbwf_objects.Hlm_deque},
      the algorithm of reference [10]);
    - {e lock-free} via the classic CAS state-cell universal construction
      ({!Tbwf_objects.Cas_universal});
    - {e wait-free from strong primitives} via Herlihy-style helping
      ({!Tbwf_objects.Herlihy_universal}) — §1.2's "well-known" route [9];
    - {e blocking} behind Lamport's bakery lock ({!Tbwf_core.Bakery});
    - {e timeliness-based wait-free} from abortable registers (this paper's
      Figure 7 stack).

    Three schedules:
    - {b contended}: n = 4 timely processes hammering the deque round-robin
      — raw throughput, where strong primitives shine;
    - {b asymmetric}: two processes, {e both timely}, but the victim takes
      one step for every seven of the attacker. Under the CAS routes the
      victim's read-apply-CAS window always contains a completed update by
      the attacker, so it loses every race, forever — lock-freedom and
      obstruction-freedom permit exactly this. The bakery's FIFO tickets
      and TBWF's canonical leader rotation both protect it.
    - {b frozen}: one process stops taking steps mid-protocol. The three
      non-blocking routes shrug; the lock-based route deadlocks the entire
      system behind the frozen ticket-holder.

    The point in one table: unconditional per-process progress under
    failures is available from CAS (Herlihy) or — for timely processes,
    from registers weaker than safe (TBWF). The OF/lock-free CAS routes
    trade that guarantee for speed; the lock trades robustness for
    fairness. *)

type row = {
  implementation : string;
  scenario : string;
  per_pid : int array;  (** completed ops per process *)
  total : int;
  victim_ops : int option;  (** asymmetric scenario: the slow process's ops *)
}

type result = {
  rows : row list;
  tbwf_protects_victim : bool;
      (** victim completes ops under TBWF but not under either CAS route *)
}

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
