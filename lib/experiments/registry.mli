(** The experiment registry: one entry per table/series in EXPERIMENTS.md. *)

type entry = {
  id : string;  (** e.g. "E1" *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
      (** compute and print the experiment's table(s) *)
}

val all : entry list

val run_all : ?quick:bool -> Format.formatter -> unit

val find : string -> entry option
(** Look up by id, case-insensitive. *)
