open Tbwf_registers

type row = {
  implementation : string;
  elected : int option;
  elected_ok : bool;
  stabilization_step : int option;
  violations : string list;
}

type result = { n : int; rows : row list; all_pass : bool }

let compute ?(quick = false) () =
  let n = 8 in
  let classes =
    {
      Omega_scenarios.pcands = [ 0; 1; 2 ];
      rcands = [ 3; 4; 5 ];
      ncands = [ 6 ];
      untimely = [ 0 ];
      crashes = [];
    }
  in
  let segments = if quick then 12 else 30 in
  let segment_steps = if quick then 5_000 else 20_000 in
  let expected = [ 1; 2 ] in
  let run implementation omega =
    let outcome =
      Omega_scenarios.run ~seed:91L ~n ~omega ~classes ~segments ~segment_steps
        ~rcand_phase:(if quick then 60 else 400)
        ~ncand_phase:(if quick then 80 else 600)
        ()
    in
    let elected = outcome.verdict.Tbwf_omega.Omega_spec.elected in
    {
      implementation;
      elected;
      elected_ok =
        (match elected with Some e -> List.mem e expected | None -> false);
      stabilization_step = outcome.stabilization_step;
      violations = outcome.verdict.Tbwf_omega.Omega_spec.violations;
    }
  in
  let rows =
    [
      run "atomic registers (Fig. 3)" Scenario.Omega_atomic;
      run "abortable registers (Figs. 4-6)"
        (Scenario.Omega_abortable Abort_policy.Always);
    ]
  in
  { n; rows; all_pass = List.for_all (fun r -> r.elected_ok && r.violations = []) rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E9: flicker resilience — n=%d, P={0(untimely),1,2} R={3,4,5} \
            N={6,7}; expect a timely P-candidate elected" result.n)
      ~columns:
        [ "implementation"; "elected"; "in {1,2}"; "stable from step"; "violations" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.implementation;
          (match row.elected with Some e -> Table.cell_int e | None -> "-");
          Table.cell_bool row.elected_ok;
          (match row.stabilization_step with
          | Some s -> Table.cell_int s
          | None -> "-");
          (match row.violations with
          | [] -> "none"
          | vs -> Fmt.str "%d: %s" (List.length vs) (List.hd vs));
        ])
    result.rows;
  Table.print fmt table
