open Tbwf_sim
open Tbwf_registers
open Tbwf_core
open Tbwf_objects

(* Every layer below runs a fixed seed derived from [base_seed]; BENCH
   json files record it so a committed trajectory states which runs it
   timed. *)
let base_seed = 101L

let scheduler_steps steps () =
  let rt = Runtime.create ~seed:base_seed ~n:4 () in
  for pid = 0 to 3 do
    Runtime.spawn rt ~pid ~name:"spin" (fun () ->
        while true do
          Runtime.yield ()
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop rt

let atomic_register_ops steps () =
  let rt = Runtime.create ~seed:(Int64.add base_seed 1L) ~n:4 () in
  let reg = Atomic_reg.create rt ~name:"r" ~codec:Codec.int ~init:0 in
  for pid = 0 to 3 do
    Runtime.spawn rt ~pid ~name:"rw" (fun () ->
        while true do
          let v = Atomic_reg.read reg in
          Atomic_reg.write reg (v + 1)
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop rt

let abortable_register_ops steps () =
  let rt = Runtime.create ~seed:(Int64.add base_seed 2L) ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"r" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always ()
  in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      let k = ref 0 in
      while true do
        incr k;
        let (_ : bool) = Abortable_reg.write reg !k in
        ()
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      while true do
        let (_ : int option) = Abortable_reg.read reg in
        ()
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop rt

let qa_object_ops steps () =
  let rt = Runtime.create ~seed:(Int64.add base_seed 3L) ~n:4 () in
  let qa =
    Qa_object.create rt ~name:"qa" ~spec:Counter.spec
      ~policy:Abort_policy.Always ()
  in
  for pid = 0 to 3 do
    Runtime.spawn rt ~pid ~name:"apply" (fun () ->
        while true do
          let (_ : Value.t) = qa.Qa_intf.invoke Counter.inc in
          let (_ : Value.t) = qa.Qa_intf.query () in
          ()
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop rt

(* The reference/compiled pair below runs the identical stack (same seed,
   same wiring, byte-identical trace) on both execution backends; their
   steps/sec ratio is the compiled backend's speedup and is reported as
   [backend_speedup] in the --json output. *)
let full_tbwf ~backend steps () =
  let stack =
    Scenario.build ~backend ~seed:(Int64.add base_seed 4L) ~n:4
      ~omega:Scenario.Omega_atomic ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:[ 0; 1; 2; 3 ] ()
  in
  Runtime.run stack.Scenario.rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop stack.Scenario.rt

let full_tbwf_ops steps () = full_tbwf ~backend:Backend.Reference steps ()
let full_tbwf_ops_compiled steps () = full_tbwf ~backend:Backend.Compiled steps ()

(* The same client workload with the Ω∆'s registers emulated over the
   simulated network (ABD quorums against 3 replica server pids); the
   ratio against [full_tbwf_ops] is the substrate overhead reported as
   [substrate_overhead] in the --json output. *)
let full_tbwf_ops_mp steps () =
  let stack =
    Tbwf_system.System.build
      ~substrate:
        (Tbwf_system.System.Message_passing Tbwf_net.Net.default_config)
      ~seed:(Int64.add base_seed 5L) ~n:4 ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:[ 0; 1; 2; 3 ] Tbwf_system.System.Tbwf_atomic
  in
  Runtime.run stack.Tbwf_system.System.rt
    ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop stack.Tbwf_system.System.rt

(* Same workload as [full_tbwf_ops] but with a telemetry collector
   attached: the difference between the two rows is the cost of live
   telemetry. [full_tbwf_ops] itself runs with the default nil sink, so
   its row doubles as the "telemetry disabled" baseline. *)
let full_tbwf_ops_telemetry steps () =
  let stack =
    Scenario.build ~seed:(Int64.add base_seed 4L) ~n:4 ~omega:Scenario.Omega_atomic
      ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:[ 0; 1; 2; 3 ] ()
  in
  let (_ : Tbwf_telemetry.Collector.t) =
    Tbwf_telemetry.Collector.attach stack.Scenario.rt
  in
  Runtime.run stack.Scenario.rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop stack.Scenario.rt

(* The full streaming configuration tbwf_soak runs: collector plus the
   windowed tail-rate monitor plus the online degradation checker in one
   sink tee, with a v2 record emitted (and dropped) every 2 500 steps.
   The ratio against [full_tbwf_ops] is [streaming_overhead] in the
   --json output — the cost of watching a run while it executes. *)
let full_tbwf_ops_streaming steps () =
  let n = 4 in
  let stack =
    Scenario.build ~seed:(Int64.add base_seed 4L) ~n
      ~omega:Scenario.Omega_atomic ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:[ 0; 1; 2; 3 ] ()
  in
  let rt = stack.Scenario.rt in
  let telemetry = Tbwf_telemetry.Collector.attach rt in
  let prediction =
    {
      Tbwf_check.Degradation.pred_n = n;
      pred_timely = [ 0; 1; 2; 3 ];
      pred_from = steps / 2;
      pred_bound = n;
      pred_emergent = None;
    }
  in
  let online = Tbwf_check.Degradation.Online.create prediction in
  let tm = Tbwf_check.Tail_monitor.create ~n ~window:2_500 () in
  Runtime.set_sink rt
    (Sink.tee
       (Tbwf_check.Tail_monitor.sink tm)
       (Sink.tee
          (Tbwf_telemetry.Collector.sink telemetry)
          (Tbwf_check.Degradation.Online.sink online)));
  Tbwf_telemetry.Collector.emit_every telemetry ~every:2_500
    ~extra:(fun ~window:_ ->
      [
        ( "verdict",
          Tbwf_check.Degradation.verdict_json
            (Tbwf_check.Degradation.Online.verdict online) );
        "tail_monitor", Tbwf_check.Tail_monitor.to_json tm;
      ])
    (fun (_ : Tbwf_telemetry.Json.t) -> ());
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps;
  Tbwf_telemetry.Collector.stream_flush telemetry;
  Runtime.stop rt

let layers =
  [
    "scheduler (yield only)", scheduler_steps;
    "atomic register read/write", atomic_register_ops;
    "abortable register (always-abort)", abortable_register_ops;
    "query-abortable object", qa_object_ops;
    "full TBWF op (election + QA)", full_tbwf_ops;
    "full TBWF op (compiled backend)", full_tbwf_ops_compiled;
    "full TBWF op (message-passing substrate)", full_tbwf_ops_mp;
    "full TBWF op + live telemetry", full_tbwf_ops_telemetry;
    "full TBWF op + streaming telemetry", full_tbwf_ops_streaming;
  ]

let runners = List.map (fun (label, f) -> label, f 20_000) layers

type row = { layer : string; steps : int; seconds : float; steps_per_sec : float }

type result = { rows : row list }

let compute ?(quick = false) () =
  let steps = if quick then 20_000 else 200_000 in
  let rows =
    List.map
      (fun (layer, f) ->
        let start = Sys.time () in
        f steps ();
        let seconds = Sys.time () -. start in
        {
          layer;
          steps;
          seconds;
          steps_per_sec =
            (if seconds <= 0.0 then 0.0 else float_of_int steps /. seconds);
        })
      layers
  in
  { rows }

let report fmt result =
  let table =
    Table.create ~title:"E10: simulator throughput per stack layer"
      ~columns:[ "layer"; "steps"; "seconds"; "steps/sec" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.layer;
          Table.cell_int row.steps;
          Fmt.str "%.3f" row.seconds;
          Fmt.str "%.0f" row.steps_per_sec;
        ])
    result.rows;
  Table.print fmt table
