(** E8 — why the canonical use of Ω∆ matters (paper §7 and Definition 6).

    Figure 7's line 2 makes each process wait until it is no longer the
    leader before competing again. Without it, the paper notes, one timely
    process could win every election and monopolize the object. We run the
    same all-timely workload with and without the wait and compare how
    fairly completions are distributed (min/max ratio across processes:
    1.0 is perfectly fair, near 0 is monopolized). *)

type row = {
  variant : string;
  per_pid : int array;
  min_ops : int;
  max_ops : int;
  fairness : float;  (** min/max; 0 when max is 0 *)
}

type result = { n : int; rows : row list; canonical_fairer : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
