open Tbwf_core
open Tbwf_objects

type row = {
  k : int;
  timely_min : int;
  timely_mean : float;
  untimely_mean : float;
  tbwf_holds : bool;
  lock_free : bool;
}

type result = { n : int; steps : int; rows : row list }

let mean = function
  | [] -> 0.0
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let run_config ~n ~steps ~k ~seed =
  (* Untimely processes get the low pids: they would win every pid
     tie-break, so this is the adversarial placement. *)
  let timely = List.init k (fun i -> n - 1 - i) in
  let stack =
    Scenario.build ~seed ~n ~omega:Scenario.Omega_atomic ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:(List.init n Fun.id) ()
  in
  let policy = Scenario.degraded_policy ~n ~timely () in
  Tbwf_sim.Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  let mid = Progress.snapshot stack.Scenario.stats in
  Tbwf_sim.Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  Tbwf_sim.Runtime.stop stack.Scenario.rt;
  let completed pid = stack.Scenario.stats.Workload.completed.(pid) in
  let timely_counts = List.map completed timely in
  let untimely_counts =
    List.filter_map
      (fun pid -> if List.mem pid timely then None else Some (completed pid))
      (List.init n Fun.id)
  in
  {
    k;
    timely_min = List.fold_left min max_int (max_int :: timely_counts);
    timely_mean = mean timely_counts;
    untimely_mean = mean untimely_counts;
    tbwf_holds =
      (k = 0)
      || Progress.tbwf_holds_endless ~before:mid ~after:stack.Scenario.stats
           ~timely;
    lock_free =
      (k = 0) || Progress.lock_freedom_holds ~before:mid ~after:stack.Scenario.stats;
  }

let compute ?(quick = false) () =
  let n = if quick then 4 else 8 in
  let steps = if quick then 60_000 else 240_000 in
  let rows =
    List.init (n + 1) (fun k ->
        run_config ~n ~steps ~k ~seed:(Int64.of_int (1000 + k)))
  in
  { n; steps; rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E1: graceful degradation — TBWF counter, n=%d, %d steps, k timely \
            processes vs (n-k) decelerating"
           result.n result.steps)
      ~columns:
        [ "k"; "timely min ops"; "timely mean"; "untimely mean"; "TBWF"; "lock-free" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          Table.cell_int row.k;
          (if row.k = 0 then "-" else Table.cell_int row.timely_min);
          (if row.k = 0 then "-" else Table.cell_float row.timely_mean);
          (if row.k = result.n then "-" else Table.cell_float row.untimely_mean);
          Table.cell_bool row.tbwf_holds;
          Table.cell_bool row.lock_free;
        ])
    result.rows;
  Table.print fmt table
