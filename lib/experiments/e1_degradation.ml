open Tbwf_core
open Tbwf_objects

type row = {
  k : int;
  timely_min : int;
  timely_mean : float;
  untimely_mean : float;
  timely_rate : float;
      (* measured mean completions per telemetry window (1024 steps) per
         timely process, from the attached collector's rate series *)
  leader_epochs : int;
  tbwf_holds : bool;
  lock_free : bool;
}

type result = { n : int; steps : int; rows : row list }

let mean = function
  | [] -> 0.0
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let run_config ~n ~steps ~k ~seed =
  (* Untimely processes get the low pids: they would win every pid
     tie-break, so this is the adversarial placement. *)
  let timely = List.init k (fun i -> n - 1 - i) in
  let stack =
    Scenario.build ~seed ~n ~omega:Scenario.Omega_atomic ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:(List.init n Fun.id) ()
  in
  let policy = Scenario.degraded_policy ~n ~timely () in
  let telemetry = Tbwf_telemetry.Collector.attach stack.Scenario.rt in
  Tbwf_sim.Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  let mid = Progress.snapshot stack.Scenario.stats in
  Tbwf_sim.Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  Tbwf_sim.Runtime.stop stack.Scenario.rt;
  let completed pid = stack.Scenario.stats.Workload.completed.(pid) in
  let timely_counts = List.map completed timely in
  let untimely_counts =
    List.filter_map
      (fun pid -> if List.mem pid timely then None else Some (completed pid))
      (List.init n Fun.id)
  in
  let series = Tbwf_telemetry.Collector.app_ops telemetry in
  let timely_rate =
    match timely with
    | [] -> 0.0
    | pids ->
      List.fold_left
        (fun acc pid -> acc +. Tbwf_telemetry.Series.mean_per_window series ~pid)
        0.0 pids
      /. float_of_int (List.length pids)
  in
  {
    k;
    timely_min = List.fold_left min max_int (max_int :: timely_counts);
    timely_mean = mean timely_counts;
    untimely_mean = mean untimely_counts;
    timely_rate;
    leader_epochs = Tbwf_telemetry.Collector.leader_epochs telemetry;
    tbwf_holds =
      (k = 0)
      || Progress.tbwf_holds_endless ~before:mid ~after:stack.Scenario.stats
           ~timely;
    lock_free =
      (k = 0) || Progress.lock_freedom_holds ~before:mid ~after:stack.Scenario.stats;
  }

let compute ?(quick = false) () =
  let n = if quick then 4 else 8 in
  let steps = if quick then 60_000 else 240_000 in
  let rows =
    List.init (n + 1) (fun k ->
        run_config ~n ~steps ~k ~seed:(Int64.of_int (1000 + k)))
  in
  { n; steps; rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E1: graceful degradation — TBWF counter, n=%d, %d steps, k timely \
            processes vs (n-k) decelerating"
           result.n result.steps)
      ~columns:
        [
          "k";
          "timely min ops";
          "timely mean";
          "untimely mean";
          "ops/win (timely)";
          "leader epochs";
          "TBWF";
          "lock-free";
        ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          Table.cell_int row.k;
          (if row.k = 0 then "-" else Table.cell_int row.timely_min);
          (if row.k = 0 then "-" else Table.cell_float row.timely_mean);
          (if row.k = result.n then "-" else Table.cell_float row.untimely_mean);
          (if row.k = 0 then "-" else Table.cell_float row.timely_rate);
          Table.cell_int row.leader_epochs;
          Table.cell_bool row.tbwf_holds;
          Table.cell_bool row.lock_free;
        ])
    result.rows;
  Table.print fmt table
