open Tbwf_sim
open Tbwf_core
open Tbwf_system

type row = {
  system : string;
  timely_total : int;
  untimely_total : int;
  first_segment : int;
  last_segment : int;
}

type result = { n : int; segments : int; segment_steps : int; rows : row list }

let sum_pids stats pids =
  List.fold_left (fun acc pid -> acc + stats.Workload.completed.(pid)) 0 pids

let run_system ~system ~n ~segments ~segment_steps ~seed ~id =
  let stack = System.build ~seed ~n id in
  let rt = stack.System.rt in
  let stats = stack.System.stats in
  let timely = List.init (n - 1) (fun i -> i + 1) in
  let policy = Scenario.degraded_policy ~n ~timely () in
  let segment_totals = ref [] in
  let previous = ref 0 in
  for _seg = 1 to segments do
    Runtime.run rt ~policy ~steps:segment_steps;
    let now = sum_pids stats timely in
    segment_totals := (now - !previous) :: !segment_totals;
    previous := now
  done;
  Runtime.stop rt;
  let totals = List.rev !segment_totals in
  {
    system;
    timely_total = sum_pids stats timely;
    untimely_total = stats.Workload.completed.(0);
    first_segment = List.nth totals 0;
    last_segment = List.nth totals (List.length totals - 1);
  }

let compute ?(quick = false) () =
  let n = if quick then 4 else 6 in
  let segments = if quick then 4 else 8 in
  let segment_steps = if quick then 15_000 else 60_000 in
  let rows =
    [
      run_system ~system:"TBWF (this paper)" ~n ~segments ~segment_steps
        ~seed:21L ~id:System.Tbwf_atomic;
      run_system ~system:"naive booster [7,8,11]" ~n ~segments ~segment_steps
        ~seed:21L ~id:System.Naive_booster;
      run_system ~system:"obstruction-free retry" ~n ~segments ~segment_steps
        ~seed:21L ~id:System.Retry;
    ]
  in
  { n; segments; segment_steps; rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E2: degradation under one non-timely process — n=%d, %d segments \
            of %d steps (timely ops should stay steady only for TBWF)"
           result.n result.segments result.segment_steps)
      ~columns:
        [
          "system";
          "timely ops (total)";
          "untimely ops";
          "timely ops seg#1";
          "timely ops seg#last";
        ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.system;
          Table.cell_int row.timely_total;
          Table.cell_int row.untimely_total;
          Table.cell_int row.first_segment;
          Table.cell_int row.last_segment;
        ])
    result.rows;
  Table.print fmt table
