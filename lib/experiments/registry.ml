type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let wrap compute report ?quick fmt = report fmt (compute ?quick ())

let all =
  [
    {
      id = "E1";
      title = "graceful degradation curve";
      run = wrap E1_degradation.compute E1_degradation.report;
    };
    {
      id = "E2";
      title = "TBWF vs non-gracefully-degrading baselines";
      run = wrap E2_baselines.compute E2_baselines.report;
    };
    {
      id = "E3";
      title = "obstruction-freedom (solo suffixes)";
      run = wrap E3_obstruction.compute E3_obstruction.report;
    };
    {
      id = "E4";
      title = "Ω∆ from atomic registers";
      run = wrap E4_omega_atomic.compute E4_omega_atomic.report;
    };
    {
      id = "E5";
      title = "Ω∆ from abortable registers";
      run = wrap E5_omega_abortable.compute E5_omega_abortable.report;
    };
    {
      id = "E6";
      title = "activity monitor property matrix";
      run = wrap E6_monitor_matrix.compute E6_monitor_matrix.report;
    };
    {
      id = "E7";
      title = "write-efficiency of Ω∆";
      run = wrap E7_write_efficiency.compute E7_write_efficiency.report;
    };
    {
      id = "E8";
      title = "canonical vs non-canonical use of Ω∆";
      run = wrap E8_canonical.compute E8_canonical.report;
    };
    {
      id = "E9";
      title = "flicker resilience";
      run = wrap E9_flicker.compute E9_flicker.report;
    };
    {
      id = "E10";
      title = "stack throughput";
      run = wrap E10_throughput.compute E10_throughput.report;
    };
    {
      id = "E11";
      title = "design-choice ablations";
      run = wrap E11_ablations.compute E11_ablations.report;
    };
    {
      id = "E12";
      title = "four routes to progress (HLM deque)";
      run = wrap E12_routes.compute E12_routes.report;
    };
    {
      id = "E13";
      title = "◊P vs Ω∆ under partial timeliness";
      run = wrap E13_detectors.compute E13_detectors.report;
    };
    {
      id = "E14";
      title = "eventual timeliness (GST)";
      run = wrap E14_gst.compute E14_gst.report;
    };
    {
      id = "E15";
      title = "schedule-exploration coverage";
      run = wrap E15_exploration.compute E15_exploration.report;
    };
    {
      id = "E16";
      title = "Nemesis degradation matrix";
      run = wrap E16_nemesis.compute E16_nemesis.report;
    };
    {
      id = "E17";
      title = "degradation over message passing";
      run = wrap E17_network.compute E17_network.report;
    };
    {
      id = "E18";
      title = "practically wait-free: stochastic scheduler vs adversary";
      run = wrap E18_stochastic.compute E18_stochastic.report;
    };
  ]

let run_all ?quick fmt =
  List.iter
    (fun entry ->
      Fmt.pf fmt "@.=== %s: %s ===@." entry.id entry.title;
      entry.run ?quick fmt)
    all

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun entry -> String.equal entry.id id) all
