(** E14 — eventual timeliness suffices (paper footnote 4 and the
    partial-synchrony tradition of Dwork–Lynch–Stockmeyer).

    "Timely" and "eventually timely" coincide when the bounds are unknown
    and per-run: a chaotic finite prefix merely raises the (unknown) bound.
    We run the TBWF stack through a global stabilization time (GST):
    before it, every process flickers with growing sleeps out of phase with
    the others (nobody is timely in the prefix); after it, everyone takes
    deterministic interleaved steps. The paper's prediction: whatever
    happened before GST, every process settles into steady per-window
    progress afterwards. *)

type row = {
  window : int * int;
  per_pid : int array;  (** ops completed in this window *)
  all_progressed : bool;
}

type result = {
  gst : int;
  rows : row list;
  steady_after_gst : bool;
      (** every process progressed in every window of the last quarter *)
}

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
