(** E11 — ablations of the paper's load-bearing design choices.

    Three mechanisms whose necessity the paper argues in prose; each row
    runs the system with the mechanism on and off and shows the predicted
    failure appear:

    - {b two heartbeat registers} (§6, Figure 5): with a single abortable
      register, a writer that stalls {e inside} a write keeps aborting the
      reader's reads forever, and "abort = alive" makes the stalled writer
      look timely; the second register, written in alternation, goes quiet
      and exposes it.
    - {b self-punishment} (§5.2 and Figure 6 line 44): without it, a
      repeatedly joining candidate with the smallest counter recaptures
      leadership on every join, so the permanent candidates' leader view
      keeps changing forever.
    - {b faultCntr increment guards} (Figure 2, conditions (a)/(b)):
      without them a crashed process is suspected forever, violating
      Definition 9 property 5(b) — and in Ω∆ it would be punished forever,
      wasting unbounded register writes. *)

type row = {
  ablation : string;
  variant : string;  (** "as in paper" or "ablated" *)
  metric : string;
  outcome : string;
  healthy : bool;  (** true iff the system behaved as the paper's design does *)
}

type result = { rows : row list; ablations_all_fail : bool }
(** [ablations_all_fail]: every ablated variant exhibited its predicted
    failure while the paper's variant stayed healthy. *)

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
