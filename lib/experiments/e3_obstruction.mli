(** E3 — TBWF implies obstruction-freedom (paper §1.1).

    Under the always-abort adversary, a contention phase is followed by a
    suffix in which a single process runs solo. Whatever happened during
    contention, the solo process must complete operations during its solo
    suffix — that is obstruction-freedom, and the paper argues every TBWF
    implementation has it (a solo process is trivially timely, because
    timeliness is relative to the other processes' steps). We check it for
    each choice of the solo process, for both the TBWF stack and the plain
    retry baseline. *)

type row = {
  system : string;
  solo_pid : int;
  ops_before_solo : int;  (** solo pid's completions during contention *)
  ops_in_solo : int;  (** solo pid's completions during the solo suffix *)
  solo_progress : bool;
}

type result = { n : int; rows : row list; all_pass : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
