(** E9 — flicker resilience of Ω∆ (paper §4: "this is guaranteed even if
    several processes that compete for leadership flicker forever").

    A stress mix: one non-timely permanent candidate on the smallest pid,
    several repeated candidates that join and leave forever, permanent
    timely candidates, and non-candidates — under both Ω∆ implementations.
    Expected: a timely permanent candidate is elected and each class's view
    settles per Theorem 7. *)

type row = {
  implementation : string;
  elected : int option;
  elected_ok : bool;
  stabilization_step : int option;
  violations : string list;
}

type result = { n : int; rows : row list; all_pass : bool }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
