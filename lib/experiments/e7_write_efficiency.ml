open Tbwf_sim
open Tbwf_omega

type window = { from_step : int; to_step : int; writers : int list }

type result = {
  n : int;
  elected : int option;
  rcands : int list;
  windows : window list;
  final_writers_ok : bool;
}

let compute ?(quick = false) () =
  let n = 6 in
  let rcands = [ 4 ] in
  let classes =
    {
      Omega_scenarios.pcands = [ 0; 1; 2; 3 ];
      rcands;
      ncands = [ 5 ];
      untimely = [];
      crashes = [];
    }
  in
  let segments = if quick then 10 else 20 in
  let segment_steps = if quick then 5_000 else 20_000 in
  let rt = Runtime.create ~seed:77L ~n () in
  let om = Tbwf_system.System.install_atomic rt in
  (* Reuse the scenario drivers but keep our own runtime to read the trace. *)
  let handles = om.handles in
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"pcand" (fun () ->
          handles.(pid).Omega_spec.candidate := true))
    classes.pcands;
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"rcand" (fun () ->
          while true do
            Omega_spec.canonical_join handles.(pid);
            for _ = 1 to 400 do Runtime.yield () done;
            Omega_spec.leave handles.(pid);
            for _ = 1 to 400 do Runtime.yield () done
          done))
    classes.rcands;
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"ncand" (fun () ->
          handles.(pid).Omega_spec.candidate := true;
          for _ = 1 to 600 do Runtime.yield () done;
          handles.(pid).Omega_spec.candidate := false))
    classes.ncands;
  let policy = Policy.round_robin () in
  Runtime.run rt ~policy ~steps:(segments * segment_steps);
  let elected =
    match !(handles.(0).Omega_spec.leader) with
    | Omega_spec.Leader l -> Some l
    | Omega_spec.No_leader -> None
  in
  Runtime.stop rt;
  let trace = Runtime.trace rt in
  let windows =
    List.init segments (fun seg ->
        let from_step = seg * segment_steps in
        let to_step = ((seg + 1) * segment_steps) - 1 in
        let counts = Trace.writes_in_window trace ~obj_prefix:"" ~from_step ~to_step in
        let writers =
          Hashtbl.fold (fun pid _count acc -> pid :: acc) counts []
          |> List.sort compare
        in
        { from_step; to_step; writers })
  in
  let allowed =
    match elected with Some l -> l :: rcands | None -> rcands
  in
  let last = List.nth windows (List.length windows - 1) in
  {
    n;
    elected;
    rcands;
    windows;
    final_writers_ok =
      List.for_all (fun w -> List.mem w allowed) last.writers;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E7: write-efficiency of Ω∆ from registers — n=%d, P={0,1,2,3} \
            R={%s} N={5}; eventual writers must be {leader} ∪ R (leader: %a)"
           result.n
           (Table.cell_ints result.rcands)
           Fmt.(option ~none:(any "?") int)
           result.elected)
      ~columns:[ "steps"; "distinct writers"; "writer pids" ]
  in
  List.iter
    (fun w ->
      Table.add_row table
        [
          Fmt.str "%d-%d" w.from_step w.to_step;
          Table.cell_int (List.length w.writers);
          Table.cell_ints w.writers;
        ])
    result.windows;
  Table.print fmt table;
  Fmt.pf fmt "final window writers within {leader} ∪ R: %s@."
    (Table.cell_bool result.final_writers_ok)
