(** Shared machinery for the Ω∆ experiments (E4, E5, E9): drive candidate
    classes against a bare Ω∆ implementation and evaluate Definition 5 /
    Theorem 7. *)

type classes = {
  pcands : int list;  (** permanent candidates: join once, never leave *)
  rcands : int list;
      (** repeated candidates: canonically join and leave forever *)
  ncands : int list;
      (** eventually non-candidates: compete briefly, then leave forever
          (pids not listed anywhere never compete at all and are also
          checked under property 2) *)
  untimely : int list;  (** scheduled to flicker (not timely) *)
  crashes : (int * int) list;  (** (pid, step) crash injections *)
}

val everyone_p : n:int -> classes
(** All processes are permanent timely candidates. *)

type outcome = {
  verdict : Tbwf_omega.Omega_spec.verdict;
  stabilization_step : int option;
      (** earliest sampled step from which every live permanent candidate's
          view stays equal to the final elected leader *)
  total_steps : int;
  samples : Tbwf_omega.Omega_spec.sample list;
}

val run :
  ?seed:int64 ->
  ?flicker:int * int * float ->
  ?rcand_phase:int ->
  ?ncand_phase:int ->
  n:int ->
  omega:Scenario.omega_impl ->
  classes:classes ->
  segments:int ->
  segment_steps:int ->
  unit ->
  outcome
(** Install the chosen Ω∆ implementation, spawn one driver task per process
    realizing its class, run with a schedule where [untimely] pids flicker
    (parameters [flicker], default (300, 600, 1.5)) and everyone else runs
    with equal weight, then evaluate the election properties on the sampled
    suffix. *)
