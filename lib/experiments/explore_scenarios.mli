(** Named scenarios for the schedule-exploration subsystem.

    Each scenario packages a runtime recipe, a task setup, a per-step
    safety invariant and a step bound, so the explorer
    ({!Tbwf_check.Explore}), the fuzzer, the [tbwf_explore] CLI and
    experiment E15 all quantify over schedules of the same library of
    situations. Two of them ([broken1], [mutex2]) contain deliberate bugs
    and exist to prove the tools can find, shrink and replay violations. *)

type t = {
  name : string;
  summary : string;
  n : int;  (** process count *)
  seed : int64;  (** runtime seed — recorded in serialized schedules *)
  max_steps : int;  (** exploration depth bound *)
  expect_violation : bool;
      (** whether exhaustive exploration must find an invariant violation *)
  scenario : Tbwf_sim.Runtime.t -> unit -> bool;
}

val atomic2 : t
val abortable2 : t
val qa2 : t

val regs3 : t
(** Three processes each writing a private register before reading one
    shared register — mostly-independent steps, where partial-order
    reduction shines. *)

val broken1 : t
val mutex2 : t

val all : t list
val find : string -> t option

val make_runtime : t -> unit -> Tbwf_sim.Runtime.t

val exhaustive :
  ?max_schedules:int ->
  ?por:bool ->
  ?pool:Tbwf_parallel.Pool.t ->
  t ->
  Tbwf_check.Explore.outcome

val exhaustive_naive : ?max_schedules:int -> t -> Tbwf_check.Explore.outcome

val fuzz :
  ?seed:int64 ->
  ?runs:int ->
  ?pool:Tbwf_parallel.Pool.t ->
  t ->
  Tbwf_check.Explore.fuzz_outcome

val replay : t -> int list -> bool
(** Replay a pid schedule against the scenario's invariant; [true] iff the
    invariant held at every step. *)

val schedule_of : t -> int list -> Tbwf_sim.Schedule.t
(** Wrap a witness in a serializable schedule carrying the scenario's
    process count and seed. *)
