open Tbwf_sim
open Tbwf_core
open Tbwf_objects

type row = {
  window : int * int;
  per_pid : int array;
  all_progressed : bool;
}

type result = { gst : int; rows : row list; steady_after_gst : bool }

let compute ?(quick = false) () =
  let n = 4 in
  let windows = 12 in
  let window_steps = if quick then 12_000 else 50_000 in
  let total = windows * window_steps in
  let gst = total / 2 in
  let stack =
    Scenario.build ~seed:141L ~n ~omega:Scenario.Omega_atomic
      ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:(List.init n Fun.id) ()
  in
  (* Before GST: everyone flickers with growing sleeps, staggered so that
     no process keeps a bounded gap. After GST: deterministic interleave. *)
  let policy =
    Policy.of_patterns ~name:"gst"
      (List.init n (fun pid ->
           ( pid,
             Policy.Switch_at
               ( gst,
                 Policy.Flicker
                   {
                     active = 400 + (137 * pid);
                     sleep = 900 + (211 * pid);
                     growth = 1.3;
                   },
                 Policy.Every { period = 2 * n; offset = 2 * pid } ) )))
  in
  let rows = ref [] in
  let previous = ref (Array.make n 0) in
  for w = 0 to windows - 1 do
    Runtime.run stack.Scenario.rt ~policy ~steps:window_steps;
    let now = Array.copy stack.Scenario.stats.Workload.completed in
    let delta = Array.mapi (fun i c -> c - !previous.(i)) now in
    previous := now;
    rows :=
      {
        window = w * window_steps, ((w + 1) * window_steps) - 1;
        per_pid = delta;
        all_progressed = Array.for_all (fun d -> d > 0) delta;
      }
      :: !rows
  done;
  Runtime.stop stack.Scenario.rt;
  let rows = List.rev !rows in
  let last_quarter = List.filteri (fun i _ -> i >= 3 * windows / 4) rows in
  {
    gst;
    rows;
    steady_after_gst = List.for_all (fun r -> r.all_progressed) last_quarter;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E14: eventual timeliness — nobody timely before GST (step %d), \
            everyone after; TBWF counter ops per window" result.gst)
      ~columns:[ "steps"; "ops per pid"; "phase"; "all progressed" ]
  in
  List.iter
    (fun row ->
      let lo, hi = row.window in
      Table.add_row table
        [
          Fmt.str "%d-%d" lo hi;
          Table.cell_ints (Array.to_list row.per_pid);
          (if hi < result.gst then "chaos" else "post-GST");
          Table.cell_bool row.all_progressed;
        ])
    result.rows;
  Table.print fmt table;
  Fmt.pf fmt "steady universal progress in the last quarter: %s@."
    (Table.cell_bool result.steady_after_gst)
