open Tbwf_sim
open Tbwf_monitor

type row = {
  property : string;
  scenario : string;
  expected : string;
  observed : string;
  pass : bool;
}

type result = { rows : row list; all_pass : bool }

type toggle = On | Off_after_third | Oscillating
type q_variant = Timely | Untimely | Crashes

let pp_toggle = function
  | On -> "on"
  | Off_after_third -> "→off"
  | Oscillating -> "osc"

let pp_variant = function
  | Timely -> "q timely"
  | Untimely -> "q not timely"
  | Crashes -> "q crashes"

type observation = {
  samples : Activity_monitor.sample list;
  segments : int;
}

(* Drive one monitor through a scenario and sample its outputs. *)
let observe ?(seed = 66L) ~monitoring ~active_for ~variant ~segments
    ~segment_steps () =
  let rt = Runtime.create ~seed ~n:2 () in
  let mon = Activity_monitor.install rt ~p:0 ~q:1 in
  let total = segments * segment_steps in
  let drive_toggle target behaviour =
    match behaviour with
    | On -> target := true
    | Off_after_third ->
      target := true;
      ()
    | Oscillating -> target := true
  in
  drive_toggle mon.Activity_monitor.monitoring monitoring;
  drive_toggle mon.Activity_monitor.active_for active_for;
  (* Oscillation and delayed switch-off run as tasks so they take steps. *)
  let spawn_behaviour pid target behaviour =
    match behaviour with
    | On -> ()
    | Off_after_third ->
      Runtime.spawn rt ~pid ~name:"switch-off" (fun () ->
          Runtime.await (fun () -> Runtime.now rt >= total / 3);
          target := false)
    | Oscillating ->
      Runtime.spawn rt ~pid ~name:"oscillate" (fun () ->
          while true do
            target := true;
            for _ = 1 to 300 do
              Runtime.yield ()
            done;
            target := false;
            for _ = 1 to 300 do
              Runtime.yield ()
            done
          done)
  in
  spawn_behaviour 0 mon.Activity_monitor.monitoring monitoring;
  spawn_behaviour 1 mon.Activity_monitor.active_for active_for;
  (match variant with
  | Timely | Untimely -> ()
  | Crashes -> Runtime.crash_at rt ~pid:1 ~step:(total / 3));
  let policy =
    match variant with
    | Untimely ->
      Policy.of_patterns ~name:"untimely-q"
        [ 0, Policy.Weighted 1.0;
          1, Policy.Flicker { active = 150; sleep = 400; growth = 1.6 } ]
    | Timely | Crashes -> Policy.round_robin ()
  in
  let samples = ref [] in
  for _seg = 1 to segments do
    Runtime.run rt ~policy ~steps:segment_steps;
    samples :=
      {
        Activity_monitor.at_step = Runtime.now rt;
        status_now = !(mon.Activity_monitor.status);
        fault_cntr_now = !(mon.Activity_monitor.fault_cntr);
      }
      :: !samples
  done;
  Runtime.stop rt;
  { samples = List.rev !samples; segments }

let last_status obs =
  match List.rev obs.samples with
  | [] -> "no samples"
  | s :: _ ->
    Fmt.str "status=%a faultCntr=%d" Activity_monitor.pp_status
      s.Activity_monitor.status_now s.Activity_monitor.fault_cntr_now

let status_row ~property ~monitoring ~active_for ~variant ~expected ~check obs =
  let suffix = max 2 (obs.segments / 4) in
  let pass = check obs.samples suffix in
  {
    property;
    scenario =
      Fmt.str "monitoring %s, active-for %s, %s" (pp_toggle monitoring)
        (pp_toggle active_for) (pp_variant variant);
    expected;
    observed = last_status obs;
    pass;
  }

let compute ?(quick = false) () =
  let segments = if quick then 10 else 24 in
  let segment_steps = if quick then 3_000 else 8_000 in
  let observe = observe ~segments ~segment_steps in
  let eventually expect samples suffix =
    Activity_monitor.check_status_eventually samples ~expect ~suffix
  in
  let is_unknown s = Activity_monitor.equal_status s Activity_monitor.Unknown in
  let is_active s = Activity_monitor.equal_status s Activity_monitor.Active in
  let is_inactive s = Activity_monitor.equal_status s Activity_monitor.Inactive in
  let bounded samples suffix = Activity_monitor.fault_cntr_bounded samples ~suffix in
  let unbounded samples suffix =
    Activity_monitor.fault_cntr_unbounded samples ~suffix
  in
  let mk ~property ~monitoring ~active_for ~variant ~expected ~check =
    let obs = observe ~monitoring ~active_for ~variant () in
    status_row ~property ~monitoring ~active_for ~variant ~expected ~check obs
  in
  let rows =
    [
      mk ~property:"1 (status)" ~monitoring:Off_after_third ~active_for:On
        ~variant:Timely ~expected:"eventually status=?"
        ~check:(eventually is_unknown);
      mk ~property:"2 (status)" ~monitoring:On ~active_for:On ~variant:Timely
        ~expected:"eventually status≠?"
        ~check:(eventually (fun s -> not (is_unknown s)));
      mk ~property:"3 (status)" ~monitoring:On ~active_for:On ~variant:Crashes
        ~expected:"eventually status≠active"
        ~check:(eventually (fun s -> not (is_active s)));
      mk ~property:"3 (status)" ~monitoring:On ~active_for:Off_after_third
        ~variant:Timely ~expected:"eventually status≠active"
        ~check:(eventually (fun s -> not (is_active s)));
      mk ~property:"4 (status)" ~monitoring:On ~active_for:On ~variant:Timely
        ~expected:"eventually status≠inactive"
        ~check:(eventually (fun s -> not (is_inactive s)));
      mk ~property:"5a (faultCntr)" ~monitoring:On ~active_for:Oscillating
        ~variant:Timely ~expected:"bounded" ~check:bounded;
      mk ~property:"5b (faultCntr)" ~monitoring:On ~active_for:On
        ~variant:Crashes ~expected:"bounded" ~check:bounded;
      mk ~property:"5c (faultCntr)" ~monitoring:On ~active_for:Off_after_third
        ~variant:Untimely ~expected:"bounded" ~check:bounded;
      mk ~property:"5d (faultCntr)" ~monitoring:Off_after_third ~active_for:On
        ~variant:Untimely ~expected:"bounded" ~check:bounded;
      mk ~property:"6 (faultCntr)" ~monitoring:On ~active_for:On
        ~variant:Untimely ~expected:"unbounded" ~check:unbounded;
    ]
  in
  { rows; all_pass = List.for_all (fun r -> r.pass) rows }

let report fmt result =
  let table =
    Table.create
      ~title:
        "E6: activity monitor A(p,q) specification matrix (Definition 9, \
         implementation of Figure 2)"
      ~columns:[ "property"; "scenario"; "expected"; "observed (final)"; "pass" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [ row.property; row.scenario; row.expected; row.observed; Table.cell_bool row.pass ])
    result.rows;
  Table.print fmt table
