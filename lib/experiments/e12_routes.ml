open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_core

type row = {
  implementation : string;
  scenario : string;
  per_pid : int array;
  total : int;
  victim_ops : int option;
}

type result = { rows : row list; tbwf_protects_victim : bool }

(* Client behaviour shared by all implementations: alternate a right-push
   and a right-pop, counting completed operations. [invoke_pair] runs one
   (push, pop) round and returns how many operations completed (always 2
   for blocking implementations). *)
let spawn_clients rt ~pids ~completed ~push ~pop =
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"client" (fun () ->
          while true do
            push pid;
            completed.(pid) <- completed.(pid) + 1;
            pop pid;
            completed.(pid) <- completed.(pid) + 1
          done))
    pids

let hlm_stack rt ~n =
  let deque = Hlm_deque.create rt ~name:"hlm" ~capacity:(4 * n) in
  let push _pid =
    match Hlm_deque.right_push deque (Value.Int 1) with
    | `Ok | `Full -> ()
  in
  let pop _pid =
    match Hlm_deque.right_pop deque with `Value _ | `Empty -> ()
  in
  push, pop

let cas_universal_stack rt ~n =
  ignore n;
  let obj = Cas_universal.create rt ~name:"cas-deque" ~spec:Deque_obj.spec in
  let push _pid =
    ignore (Cas_universal.invoke obj (Deque_obj.push_right (Value.Int 1)))
  in
  let pop _pid = ignore (Cas_universal.invoke obj Deque_obj.pop_right) in
  push, pop

let tbwf_stack rt ~n =
  ignore n;
  let handles =
    (Tbwf_system.System.install_abortable rt ~policy:Abort_policy.Always ())
      .Omega_abortable.handles
  in
  let qa =
    Qa_object.create rt ~name:"tbwf-deque" ~spec:Deque_obj.spec
      ~policy:Abort_policy.Always ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:handles () in
  let push _pid = ignore (Tbwf.invoke tbwf (Deque_obj.push_right (Value.Int 1))) in
  let pop _pid = ignore (Tbwf.invoke tbwf Deque_obj.pop_right) in
  push, pop

let run_scenario ~implementation ~scenario ~n ~policy ~steps ~victim ~make =
  let rt = Runtime.create ~seed:121L ~n () in
  let push, pop = make rt ~n in
  let completed = Array.make n 0 in
  spawn_clients rt ~pids:(List.init n Fun.id) ~completed ~push ~pop;
  Runtime.run rt ~policy:(policy ()) ~steps;
  Runtime.stop rt;
  {
    implementation;
    scenario;
    per_pid = completed;
    total = Array.fold_left ( + ) 0 completed;
    victim_ops = Option.map (fun pid -> completed.(pid)) victim;
  }

let herlihy_stack rt ~n =
  ignore n;
  let obj = Herlihy_universal.create rt ~name:"herlihy-deque" ~spec:Deque_obj.spec in
  let push _pid =
    ignore (Herlihy_universal.invoke obj (Deque_obj.push_right (Value.Int 1)))
  in
  let pop _pid = ignore (Herlihy_universal.invoke obj Deque_obj.pop_right) in
  push, pop

let bakery_stack rt ~n =
  ignore n;
  let lock = Bakery.create rt ~name:"lock" in
  let state =
    Atomic_reg.create rt ~name:"locked-deque" ~codec:Codec.value
      ~init:Deque_obj.spec.Seq_spec.initial
  in
  let apply op =
    Bakery.with_lock lock (fun () ->
        let current = Atomic_reg.read state in
        let next, _response = Seq_spec.apply_exn Deque_obj.spec current op in
        Atomic_reg.write state next)
  in
  let push _pid = apply (Deque_obj.push_right (Value.Int 1)) in
  let pop _pid = apply Deque_obj.pop_right in
  push, pop

let implementations =
  [
    "HLM deque (obstruction-free, CAS)", hlm_stack;
    "CAS universal (lock-free)", cas_universal_stack;
    "Herlihy universal (wait-free, CAS)", herlihy_stack;
    "bakery lock (blocking)", bakery_stack;
    "TBWF (abortable registers)", tbwf_stack;
  ]

(* Scenario 3: pid 0 freezes mid-protocol; report the other processes'
   completions after the freeze. Only the lock-based route lets the frozen
   process take the whole system down with it. *)
let run_frozen ~implementation ~steps ~make =
  let n = 4 in
  let freeze_at = 600 in
  let rt = Runtime.create ~seed:122L ~n () in
  let push, pop = make rt ~n in
  let completed = Array.make n 0 in
  spawn_clients rt ~pids:(List.init n Fun.id) ~completed ~push ~pop;
  let policy =
    Policy.of_patterns
      (List.init n (fun pid ->
           if pid = 0 then
             pid, Policy.Switch_at (freeze_at, Policy.Weighted 1.0, Policy.Silent)
           else pid, Policy.Weighted 1.0))
  in
  Runtime.run rt ~policy ~steps:freeze_at;
  let at_freeze = Array.copy completed in
  Runtime.run rt ~policy ~steps:(steps - freeze_at);
  Runtime.stop rt;
  let post = Array.mapi (fun i c -> c - at_freeze.(i)) completed in
  {
    implementation;
    scenario = "pid 0 freezes mid-op";
    per_pid = post;
    total = Array.fold_left ( + ) 0 post;
    victim_ops = None;
  }

let compute ?(quick = false) () =
  let steps = if quick then 60_000 else 300_000 in
  let contended =
    List.map
      (fun (implementation, make) ->
        run_scenario ~implementation ~scenario:"contended (4 timely)" ~n:4
          ~policy:Policy.round_robin ~steps ~victim:None ~make)
      implementations
  in
  (* Asymmetric: both processes timely; the victim takes one step in eight.
     Its read-apply-CAS window always contains a full attacker update. *)
  let asymmetric_policy () =
    Policy.of_patterns
      [ 0, Policy.Every { period = 8; offset = 0 }; 1, Policy.Weighted 1.0 ]
  in
  let asymmetric =
    List.map
      (fun (implementation, make) ->
        run_scenario ~implementation
          ~scenario:"asymmetric (victim timely, 1 step in 8)" ~n:2
          ~policy:asymmetric_policy ~steps ~victim:(Some 0) ~make)
      implementations
  in
  let victim name rows =
    List.find_map
      (fun r ->
        if String.length r.implementation >= String.length name
           && String.sub r.implementation 0 (String.length name) = name
        then r.victim_ops
        else None)
      rows
  in
  let frozen =
    List.map
      (fun (implementation, make) ->
        run_frozen ~implementation ~steps ~make)
      implementations
  in
  let tbwf_victim = Option.value (victim "TBWF" asymmetric) ~default:0 in
  let hlm_victim = Option.value (victim "HLM" asymmetric) ~default:0 in
  let cas_victim = Option.value (victim "CAS" asymmetric) ~default:0 in
  {
    rows = contended @ asymmetric @ frozen;
    tbwf_protects_victim =
      tbwf_victim > 0 && hlm_victim = 0 && cas_victim = 0;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        "E12: five routes to progress on the HLM deque — the per-process \
         guarantee costs either strong primitives (Herlihy) or a constant \
         factor over weak ones (TBWF)"
      ~columns:[ "implementation"; "scenario"; "per-pid ops"; "total"; "victim ops" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.implementation;
          row.scenario;
          Table.cell_ints (Array.to_list row.per_pid);
          Table.cell_int row.total;
          (match row.victim_ops with Some v -> Table.cell_int v | None -> "-");
        ])
    result.rows;
  Table.print fmt table;
  Fmt.pf fmt
    "timely victim starves under the OF/lock-free CAS routes but completes \
     ops under TBWF (and under Herlihy helping and the bakery): %s@."
    (Table.cell_bool result.tbwf_protects_victim)
