open Tbwf_sim
open Tbwf_core
open Tbwf_objects

type row = {
  variant : string;
  per_pid : int array;
  min_ops : int;
  max_ops : int;
  fairness : float;
}

type result = { n : int; rows : row list; canonical_fairer : bool }

let run_variant ~variant ~canonical ~n ~steps ~seed =
  let stack =
    Scenario.build ~seed ~canonical ~n ~omega:Scenario.Omega_atomic
      ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:(List.init n Fun.id) ()
  in
  Runtime.run stack.Scenario.rt ~policy:(Policy.round_robin ()) ~steps;
  Runtime.stop stack.Scenario.rt;
  let per_pid = Array.copy stack.Scenario.stats.Workload.completed in
  let min_ops = Array.fold_left min max_int per_pid in
  let max_ops = Array.fold_left max 0 per_pid in
  {
    variant;
    per_pid;
    min_ops;
    max_ops;
    fairness =
      (if max_ops = 0 then 0.0 else float_of_int min_ops /. float_of_int max_ops);
  }

let compute ?(quick = false) () =
  let n = 4 in
  let steps = if quick then 60_000 else 200_000 in
  let canonical =
    run_variant ~variant:"canonical (Figure 7 as printed)" ~canonical:true ~n
      ~steps ~seed:81L
  in
  let non_canonical =
    run_variant ~variant:"non-canonical (line 2 removed)" ~canonical:false ~n
      ~steps ~seed:81L
  in
  {
    n;
    rows = [ canonical; non_canonical ];
    canonical_fairer = canonical.fairness > non_canonical.fairness;
  }

let report fmt result =
  let table =
    Table.create
      ~title:
        (Fmt.str
           "E8: canonical use of Ω∆ — n=%d all-timely endless increments; \
            fairness = min/max completions" result.n)
      ~columns:[ "variant"; "per-pid ops"; "min"; "max"; "fairness" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.variant;
          Table.cell_ints (Array.to_list row.per_pid);
          Table.cell_int row.min_ops;
          Table.cell_int row.max_ops;
          Table.cell_float row.fairness;
        ])
    result.rows;
  Table.print fmt table;
  Fmt.pf fmt "canonical variant fairer: %s@."
    (Table.cell_bool result.canonical_fairer)
