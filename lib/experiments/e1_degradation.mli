(** E1 — the graceful degradation curve (paper §1.1).

    n processes share one TBWF counter and issue endless increments; k of
    them are timely, the rest flicker with unboundedly growing sleeps. As k
    goes from 0 to n the progress guarantee goes from obstruction-freedom
    (k = 0: nothing promised under contention) through "k processes are
    guaranteed to progress" up to wait-freedom (k = n). The paper's
    qualitative prediction: every timely process keeps completing
    operations at a healthy rate regardless of how many non-timely
    processes flicker around it. *)

type row = {
  k : int;  (** number of timely processes *)
  timely_min : int;  (** fewest ops completed by any timely process *)
  timely_mean : float;
  untimely_mean : float;
  timely_rate : float;
      (** measured mean completions per 1024-step telemetry window per
          timely process, from the run's attached collector *)
  leader_epochs : int;
      (** leadership handoffs observed by telemetry (self-announcements
          that changed the leader) *)
  tbwf_holds : bool;
      (** every timely process kept completing ops in the second half *)
  lock_free : bool;  (** someone kept completing ops in the second half *)
}

type result = { n : int; steps : int; rows : row list }

val compute : ?quick:bool -> unit -> result
val report : Format.formatter -> result -> unit
