open Tbwf_sim
open Tbwf_registers

type status = Active | Inactive | Unknown

let pp_status fmt = function
  | Active -> Fmt.string fmt "active"
  | Inactive -> Fmt.string fmt "inactive"
  | Unknown -> Fmt.string fmt "?"

let equal_status a b =
  match a, b with
  | Active, Active | Inactive, Inactive | Unknown, Unknown -> true
  | (Active | Inactive | Unknown), _ -> false

type t = {
  p : int;
  q : int;
  monitoring : bool ref;
  active_for : bool ref;
  status : status ref;
  fault_cntr : int ref;
  hb : int Reg.t;
}

(* Set the monitor's status estimate, emitting a telemetry signal when the
   Active/Inactive verdict actually flips (resets to Unknown are not
   suspicion changes and stay silent). *)
let set_status rt t s =
  if not (equal_status !(t.status) s) then begin
    (match s with
    | Active | Inactive ->
      if Runtime.telemetry_active rt then
        Runtime.signal rt ~pid:t.p
          (Sink.Suspicion_flip
             { watched = t.q; suspected = equal_status s Inactive })
    | Unknown -> ());
    t.status := s
  end

(* Figure 2, top: code for the monitored process q. *)
let monitored_loop t =
  let hb_counter = ref 0 in
  while true do
    t.hb.Reg.write (-1);
    Runtime.await (fun () -> !(t.active_for));
    while !(t.active_for) do
      incr hb_counter;
      t.hb.Reg.write !hb_counter
    done
  done

(* Figure 2, bottom: code for the monitoring process p. With
   [increment_guards:false], faults are charged on every timeout regardless
   of the register's value — the E11 ablation. *)
let monitoring_loop ~adapt ~increment_guards rt t =
  let hb_timeout = ref 1 in
  let hb_timer = ref 1 in
  let hb_counter = ref 0 in
  let prev_hb_counter = ref 0 in
  let allow_increment = ref true in
  while true do
    t.status := Unknown;
    Runtime.await (fun () -> !(t.monitoring));
    hb_timer := !hb_timeout;
    while !(t.monitoring) do
      if !hb_timer >= 1 then decr hb_timer;
      if !hb_timer = 0 then begin
        hb_timer := !hb_timeout;
        prev_hb_counter := !hb_counter;
        hb_counter := t.hb.Reg.read ();
        if !hb_counter < 0 then set_status rt t Inactive;
        if !hb_counter >= 0 && !hb_counter > !prev_hb_counter then begin
          set_status rt t Active;
          allow_increment := true
        end;
        if increment_guards then begin
          if !hb_counter >= 0 && !hb_counter <= !prev_hb_counter then begin
            set_status rt t Inactive;
            if !allow_increment then begin
              incr t.fault_cntr;
              hb_timeout := adapt !hb_timeout;
              allow_increment := false
            end
          end
        end
        else if !hb_counter <= !prev_hb_counter then begin
          (* Ablation: charge a fault on every non-advancing read, even for
             the −1 sentinel and without the increased-since-last guard. *)
          set_status rt t Inactive;
          incr t.fault_cntr;
          hb_timeout := adapt !hb_timeout
        end
      end
      else Runtime.yield ()
    done
  done

let make ?factory rt ~p ~q =
  if p = q then invalid_arg "Activity_monitor.install: p = q";
  let factory =
    match factory with Some f -> f | None -> Reg.shared_factory rt
  in
  let hb =
    factory.Reg.mk_reg
      ~kind:(Reg.Swmr { writer = q })
      ~name:(Fmt.str "Hb[%d->%d]" q p)
      ~codec:Codec.int ~init:(-1)
  in
  {
    p;
    q;
    monitoring = ref false;
    active_for = ref false;
    status = ref Unknown;
    fault_cntr = ref 0;
    hb;
  }

let task_names t =
  Fmt.str "amon-hb[%d->%d]" t.q t.p, Fmt.str "amon-watch[%d<-%d]" t.p t.q

let install ?(adapt = succ) ?(increment_guards = true) ?factory rt ~p ~q =
  let t = make ?factory rt ~p ~q in
  let hb_name, watch_name = task_names t in
  Runtime.spawn ~layer:Sink.Monitor rt ~pid:q ~name:hb_name (fun () ->
      monitored_loop t);
  Runtime.spawn ~layer:Sink.Monitor rt ~pid:p ~name:watch_name (fun () ->
      monitoring_loop ~adapt ~increment_guards rt t);
  t

type sample = { at_step : int; status_now : status; fault_cntr_now : int }

let last_n n samples =
  let len = List.length samples in
  if len <= n then samples else List.filteri (fun i _ -> i >= len - n) samples

let check_status_eventually samples ~expect ~suffix =
  let tail = last_n suffix samples in
  tail <> [] && List.for_all (fun s -> expect s.status_now) tail

let fault_cntr_bounded samples ~suffix =
  match last_n suffix samples with
  | [] -> false
  | first :: _ as tail ->
    let last = List.nth tail (List.length tail - 1) in
    last.fault_cntr_now = first.fault_cntr_now

let fault_cntr_unbounded samples ~suffix =
  match last_n suffix samples with
  | [] -> false
  | first :: _ as tail ->
    let last = List.nth tail (List.length tail - 1) in
    last.fault_cntr_now > first.fault_cntr_now
