open Tbwf_sim

type t = {
  n : int;
  monitors : Activity_monitor.t option array array;  (* (p).(q) = A(p,q) *)
}

let install rt =
  let n = Runtime.n rt in
  let monitors =
    Array.init n (fun p ->
        Array.init n (fun q ->
            if p = q then None
            else begin
              let mon = Activity_monitor.install rt ~p ~q in
              mon.Activity_monitor.monitoring := true;
              mon.Activity_monitor.active_for := true;
              Some mon
            end))
  in
  { n; monitors }

let suspected t ~pid ~q =
  match t.monitors.(pid).(q) with
  | None -> false
  | Some mon ->
    Activity_monitor.equal_status
      !(mon.Activity_monitor.status)
      Activity_monitor.Inactive

let suspects t ~pid =
  List.filter (fun q -> suspected t ~pid ~q) (List.init t.n Fun.id)
