(** Dynamic activity monitors A(p,q) — paper Section 5.1, Figure 2.

    A(p,q) lets process [p] determine whether [q] is currently active or
    inactive, and whether [q] is p-timely. Both sides can turn their
    participation on and off at any time:

    - [p] writes its input [monitoring] (on/off);
    - [q] writes its input [active_for] (on/off);
    - A(p,q) writes outputs [status] ∈ {active, inactive, ?} and
      [fault_cntr] ∈ ℕ at [p].

    The implementation follows Figure 2 verbatim: [q] writes an increasing
    heartbeat counter to a shared atomic register while active (and the
    sentinel −1 when it stops willingly); [p] polls with an adaptive timeout
    and increments [fault_cntr] only when the register holds a non-sentinel
    value that has increased since the last increment — the two conditions
    that keep [fault_cntr] bounded when [q] crashes or stops willingly
    (Definition 9, properties 5(b) and 5(c)). *)

type status = Active | Inactive | Unknown

val pp_status : Format.formatter -> status -> unit
val equal_status : status -> status -> bool

type t = {
  p : int;  (** the monitoring process *)
  q : int;  (** the monitored process *)
  monitoring : bool ref;  (** input at p: does p want to monitor q? *)
  active_for : bool ref;  (** input at q: is q active for p? *)
  status : status ref;  (** output at p *)
  fault_cntr : int ref;  (** output at p *)
  hb : int Tbwf_registers.Reg.t;
      (** the register HbRegister[q,p], written by q and read by p — a
          handle, so the substrate (shared memory or message passing) is
          whichever factory wired the monitor *)
}

val install :
  ?adapt:(int -> int) ->
  ?increment_guards:bool ->
  ?factory:Tbwf_registers.Reg.factory ->
  Tbwf_sim.Runtime.t ->
  p:int ->
  q:int ->
  t
(** Create the monitor's shared register and spawn its two tasks: the
    monitored-side loop on process [q] and the monitoring-side loop on
    process [p]. Both inputs start off, [status] starts at [Unknown] and
    [fault_cntr] at 0. Requires [p <> q].

    [adapt] is how the timeout grows on each suspicion; the default is the
    paper's [succ] (+1). The +1 is load-bearing for Definition 9 property 6:
    a process whose step gaps grow geometrically must keep being suspected,
    and a timeout that only grows linearly can never overtake geometric
    gaps. An aggressive doubling adaptation (as naive failure detectors use)
    eventually trusts such a process forever — which is exactly the
    non-gracefully-degrading baseline of experiment E2.

    [increment_guards] (default true) enables Figure 2's two conditions on
    incrementing [fault_cntr]: (a) the register holds a non-sentinel value
    and (b) it increased since the last increment. Disabling them is the
    ablation of experiment E11: without the guards a crashed or willingly
    inactive process is suspected forever, violating Definition 9
    properties 5(b)–(c). *)

(** {2 Compiled-backend hooks}

    The compiled backend ([Tbwf_compiled]) creates the same monitor state
    and register via {!make} but spawns machine-compiled loops instead of
    the effect-based ones — the creation point is shared so both backends
    assign identical object ids. *)

val make :
  ?factory:Tbwf_registers.Reg.factory -> Tbwf_sim.Runtime.t -> p:int -> q:int -> t
(** Create the monitor's register and state {e without} spawning its two
    loops. Requires [p <> q]. [factory] selects the register substrate
    (default: {!Tbwf_registers.Reg.shared_factory}). *)

val task_names : t -> string * string
(** The (monitored-loop, monitoring-loop) task names {!install} uses, so
    the compiled spawns are labelled identically. *)

val set_status : Tbwf_sim.Runtime.t -> t -> status -> unit
(** Set the monitor's status estimate, emitting a telemetry
    {!Tbwf_sim.Sink.Suspicion_flip} signal when the Active/Inactive
    verdict actually flips. Both backends' monitoring loops route status
    assignments through this (except the silent reset to [Unknown] at the
    top of the outer loop). *)

(** {2 Ground-truth property checking — Definition 9}

    Experiments sample the outputs between run segments; these helpers
    evaluate the specification's six properties on such samples. *)

type sample = { at_step : int; status_now : status; fault_cntr_now : int }

val check_status_eventually :
  sample list -> expect:(status -> bool) -> suffix:int -> bool
(** True iff every sample in the last [suffix] samples satisfies
    [expect]. *)

val fault_cntr_bounded : sample list -> suffix:int -> bool
(** True iff [fault_cntr] did not grow over the last [suffix] samples. *)

val fault_cntr_unbounded : sample list -> suffix:int -> bool
(** True iff [fault_cntr] strictly grew across the last [suffix] samples. *)
