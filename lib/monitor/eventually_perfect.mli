(** The eventually perfect failure detector ◊P (the paper's I3P of [8]),
    built from activity monitors.

    Every process permanently monitors and advertises to every other; a
    process suspects exactly the peers whose monitor currently reports them
    inactive. When {e all} correct processes are timely, this satisfies ◊P:
    strong completeness (crashed processes are eventually suspected by
    every correct process, forever) and eventual strong accuracy (correct
    processes are eventually never suspected).

    The paper's §2 point, made measurable by experiment E13: with even one
    correct-but-non-timely process, accuracy fails forever — the slow
    process is suspected and unsuspected infinitely often at every timely
    observer, so any boosting scheme that waits on ◊P stabilizing never
    stops being disturbed. Ω∆ asks for less (a {e leader} among the timely)
    and therefore stabilizes in the same runs. *)

type t

val install : Tbwf_sim.Runtime.t -> t
(** Full monitor mesh with monitoring and advertising permanently on. *)

val suspects : t -> pid:int -> int list
(** The processes [pid] currently suspects (zero-step read of the monitor
    outputs; ascending). A peer with no estimate yet is not suspected. *)

val suspected : t -> pid:int -> q:int -> bool
