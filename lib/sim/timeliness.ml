(* Scan the suffix once, counting q-steps between consecutive p-steps. *)
let max_gap trace ~p ~q ~from_step =
  let len = Trace.length trace in
  let biggest = ref 0 in
  let current = ref 0 in
  let p_stepped = ref false in
  for i = from_step to len - 1 do
    let pid = Trace.pid_at trace i in
    if pid = p then begin
      p_stepped := true;
      if !current > !biggest then biggest := !current;
      current := 0
    end
    else if pid = q then incr current
  done;
  if !current > !biggest then biggest := !current;
  if !p_stepped then Some !biggest
  else if !biggest = 0 then Some 0 (* q silent too: vacuously fine *)
  else None

let q_timely trace ~p ~q ~from_step ~bound =
  match max_gap trace ~p ~q ~from_step with
  | Some gap -> gap <= bound
  | None -> false

let timely trace ~n ~p ~from_step ~bound =
  let ok = ref true in
  for q = 0 to n - 1 do
    if q <> p && not (q_timely trace ~p ~q ~from_step ~bound) then ok := false
  done;
  !ok

let timely_set trace ~n ~from_step ~bound =
  List.init n Fun.id |> List.filter (fun p -> timely trace ~n ~p ~from_step ~bound)

let empirical_bound trace ~n ~p ~from_step =
  let worst = ref (Some 0) in
  for q = 0 to n - 1 do
    if q <> p then
      match !worst, max_gap trace ~p ~q ~from_step with
      | Some acc, Some gap -> worst := Some (max acc gap)
      | _, None | None, _ -> worst := None
  done;
  Option.map (fun gap -> gap + 1) !worst
