(** Serializable schedules.

    A schedule is the per-step pid sequence of a run (-1 for idle steps),
    together with the process count and runtime seed it was recorded
    against. Because runs are pure functions of (seed, schedule, spawned
    code), a serialized schedule replays a run {e byte-identically}: any
    counterexample the explorer or fuzzer finds, and any experiment run,
    can be saved to a file, replayed, and committed as a regression test.

    The text format is one header line and one run-length-encoded body
    line; [#]-prefixed lines and blank lines are ignored:

    {v
    tbwf-sched v1 n=3 seed=42
    0x3 1 _x2 0
    v}

    reads "three steps of pid 0, one of pid 1, two idle steps, one of
    pid 0" on a 3-process runtime seeded with 42. *)

type t

val make : ?seed:int64 -> n:int -> int list -> t
(** [make ~n pids] wraps a pid-per-step list. [seed] defaults to the
    default {!Runtime.create} seed. Raises [Invalid_argument] on a pid
    outside [-1 .. n-1]. *)

val of_trace : ?seed:int64 -> n:int -> Trace.t -> t
(** The schedule a finished (or paused) run actually followed. *)

val n : t -> int
val seed : t -> int64
val pids : t -> int list
val length : t -> int

val to_policy : t -> Policy.t
(** A {!Policy.replay} policy that re-executes the schedule. *)

val to_policy_strict : t -> Policy.t
(** A {!Policy.replay_strict} policy: replaying against drifted code raises
    {!Policy.Replay_mismatch} instead of silently diverging. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trip: [of_string (to_string t)] reproduces [t] exactly. *)

val pp : Format.formatter -> t -> unit
