(** Simulated shared objects.

    A shared object is identified by an id and a name and exposes a single
    [respond] function: the runtime calls it at the *response step* of an
    operation, passing a context that describes the operation's window and
    whether any other operation on the same object overlapped it. All
    concurrency-dependent semantics (atomicity, safe/regular anomalies,
    abortable aborts) are decided inside [respond] from that context. *)

type ctx = {
  pid : int;  (** invoking process *)
  invoke_step : int;  (** step at which the operation was invoked *)
  respond_step : int;  (** current step, at which the operation takes effect *)
  overlapped : bool;
      (** true iff some other operation on the same object had a window
          overlapping this operation's [invoke_step, respond_step] window *)
  overlap_ops : Value.t list;
      (** the operations (in {!Value} encoding) whose windows overlapped
          this one, most recent first *)
  step_contended : bool;
      (** true iff some other process performed a step on this object
          (an invocation or a response) strictly inside this operation's
          window. Weaker than [overlapped]: an operation left pending by a
          stalled process overlaps later operations but generates no steps,
          so it does not step-contend them. Query-abortable objects abort on
          step contention (matching the step-contention-style constructions
          of reference [2]); abortable registers abort on [overlapped] (the
          harsher adversary the paper's two-register heartbeat anticipates). *)
  pending_others : int;
      (** number of other operations on this object still in flight at the
          response step *)
  rng : Rng.t;  (** runtime RNG, for nondeterministic semantics *)
  op : Value.t;  (** the operation, in the {!Value} encoding *)
}

type t = private {
  id : int;
  name : string;
  respond : ctx -> Value.t;
}

val make : id:int -> name:string -> respond:(ctx -> Value.t) -> t
