type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64: fast, well distributed, trivially seedable. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = create (next t)

(* Stateless per-task seed derivation: task [i]'s seed is the splitmix64
   output for counter state [master + (i+1)·γ] — i.e. what a generator
   seeded with [master] would emit as its (i+1)-th value, computed
   directly from the index. Parallel fan-out must never split seeds off a
   shared mutable generator (the derived seeds would then depend on how
   many draws happened before the split); this derivation depends only on
   (master, index), so every pool, at any domain count, derives the same
   task-seed array. *)
let task_seed ~master index =
  if index < 0 then invalid_arg "Rng.task_seed: negative index";
  let open Int64 in
  let z = add master (mul (of_int (index + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let task_seeds ~master count =
  if count < 0 then invalid_arg "Rng.task_seeds: negative count";
  Array.init count (fun i -> task_seed ~master i)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int has 63, so a 63-bit mask could still
     produce negatives through Int64.to_int. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let v = Int64.to_int (Int64.logand (next t) mask) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
