type ctx = {
  pid : int;
  invoke_step : int;
  respond_step : int;
  overlapped : bool;
  overlap_ops : Value.t list;
  step_contended : bool;
  pending_others : int;
  rng : Rng.t;
  op : Value.t;
}

type t = {
  id : int;
  name : string;
  respond : ctx -> Value.t;
}

let make ~id ~name ~respond = { id; name; respond }
