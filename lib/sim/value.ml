type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Abort
  | Fail

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Abort, Abort -> true
  | Fail, Fail -> true
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Abort | Fail), _ ->
    false

let rec pp fmt = function
  | Unit -> Fmt.string fmt "()"
  | Bool b -> Fmt.bool fmt b
  | Int i -> Fmt.int fmt i
  | Str s -> Fmt.pf fmt "%S" s
  | Pair (a, b) -> Fmt.pf fmt "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf fmt "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) vs
  | Abort -> Fmt.string fmt "⊥"
  | Fail -> Fmt.string fmt "F"

let to_string v = Fmt.str "%a" pp v

let read_op = Pair (Str "read", Unit)

(* Write operations over small non-negative ints — heartbeat and punish
   counters, overwhelmingly the most common ops in a TBWF run — are
   hash-consed so the trace (which retains every op for the whole run)
   holds pointers into this table instead of a fresh block per write. The
   values are immutable, so sharing is unobservable except to the GC. *)
let write_str = Str "write"
let write_int_cache : t array = Array.make 65536 Unit

let write_op v =
  match v with
  | Int i when i >= 0 && i < Array.length write_int_cache ->
    let cached = write_int_cache.(i) in
    if cached != Unit then cached
    else begin
      let fresh = Pair (write_str, v) in
      write_int_cache.(i) <- fresh;
      fresh
    end
  | v -> Pair (write_str, v)

let is_write = function Pair (Str "write", _) -> true | _ -> false
let is_read = function Pair (Str "read", _) -> true | _ -> false

let shape_error what v =
  invalid_arg (Fmt.str "Value.%s: unexpected shape %a" what pp v)

let to_int = function Int i -> i | v -> shape_error "to_int" v
let to_bool = function Bool b -> b | v -> shape_error "to_bool" v
let to_pair = function Pair (a, b) -> a, b | v -> shape_error "to_pair" v
let to_list = function List vs -> vs | v -> shape_error "to_list" v
