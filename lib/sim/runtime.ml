exception Simulation_over

type pending = {
  p_pid : int;
  p_obj : Shared.t;
  p_op : Value.t;
  p_invoke_step : int;
  p_layer : Sink.layer;  (* layer of the invoking task, for telemetry *)
  mutable p_overlapped : bool;
  mutable p_overlap_ops : Value.t list;
  p_events_at_invoke : int;
      (* object event-counter value just after this op's invocation *)
}

type machine_action = M_yield | M_call of Shared.t * Value.t | M_halt

(* A machine is a compiled task body: an effect-free step function that,
   given the result of its last call ([Value.Unit] on resume-from-yield
   and at the first step), runs to its next suspension point and says
   how it suspended. One invocation of the function = one step, exactly
   mirroring the effects-based contract that a task runs from suspension
   to next effect. *)
type machine = Value.t -> machine_action

type task_state =
  | Ready of (unit -> unit)
  | Suspended_local of (unit, unit) Effect.Deep.continuation
  | Suspended_call of (Value.t, unit) Effect.Deep.continuation * pending
  | Machine_ready of machine
  | Machine_awaiting of machine * pending
  | Running
  | Finished

type task = {
  t_name : string;
  t_pid : int;
  t_layer : Sink.layer;
  mutable t_state : task_state;
}

(* Tasks live in a growable array (spawn order, first [n_tasks] slots) so
   the per-step round-robin pick walks the array in place; [live] counts
   tasks not yet Finished, so runnability is one comparison instead of a
   list scan. *)
type proc = {
  pid : int;
  mutable tasks : task array;
  mutable n_tasks : int;
  mutable live : int;
  mutable next_task : int;  (* round-robin cursor *)
  mutable is_crashed : bool;
  mutable is_retired : bool;
}

(* Deferred membership events: late task activations and graceful
   retirements scheduled for a future step. [crashes] predates this list
   and keeps its own (unsorted, prepend-order) representation; events
   carry a creation sequence number so same-step events apply in the
   deterministic order they were scheduled, independent of list shape. *)
type event_kind =
  | Ev_task of { pid : int; name : string; layer : Sink.layer;
                 state : task_state }
  | Ev_retire of int

type t = {
  mutable num : int;
  rng : Rng.t;
  obj_rng : Rng.t;
  trace : Trace.t;
  mutable procs : proc array;  (* first [num] slots are the processes *)
  mutable step : int;
  mutable next_obj_id : int;
  (* Object ids are dense (allocated by [register_object]), so in-flight
     ops and event counters index arrays instead of hashtables. *)
  mutable pending_by_obj : pending list array;  (* obj id -> in-flight ops *)
  mutable events_by_obj : int array;
      (* obj id -> number of invocation/response events so far *)
  mutable crashes : (int * int) list;  (* (step, pid), unsorted *)
  mutable events : (int * int * event_kind) list;
      (* (due step, creation seq, kind), unsorted *)
  mutable next_event_seq : int;
  mutable sink : Sink.t;  (* telemetry sink; Sink.nil = disabled *)
  (* Cached runnable-pid set, recomputed only when membership can have
     changed (spawn, a proc's last task finishing, a crash). The cache is
     replaced by a fresh array on recomputation, never mutated in place,
     so arrays handed to policies (and captured by e.g.
     [Policy.Replay_mismatch]) stay stable. *)
  mutable runnable_cache : int array;
  mutable runnable_dirty : bool;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Call : Shared.t * Value.t -> Value.t Effect.t
  | Self : int Effect.t

let create ?(seed = 0xC0FFEEL) ?(record_trace = true) ~n () =
  if n < 1 then invalid_arg "Runtime.create: need at least one process";
  let trace = Trace.create () in
  if not record_trace then Trace.disable trace;
  {
    num = n;
    rng = Rng.create seed;
    (* A stream of its own, derived from the seed: object-level random
       decisions (abort draws, safe-register garbage, write effects) must
       not share the scheduling policy's stream, or a replayed schedule —
       which consumes no scheduling randomness — would shift every object
       draw and diverge from the run it replays. *)
    obj_rng = Rng.create (Int64.logxor seed 0x6F626A5F726E6721L);
    trace;
    procs =
      Array.init n (fun pid ->
          {
            pid;
            tasks = [||];
            n_tasks = 0;
            live = 0;
            next_task = 0;
            is_crashed = false;
            is_retired = false;
          });
    step = 0;
    next_obj_id = 0;
    pending_by_obj = Array.make 16 [];
    events_by_obj = Array.make 16 0;
    crashes = [];
    events = [];
    next_event_seq = 0;
    sink = Sink.nil;
    runnable_cache = [||];
    runnable_dirty = true;
  }

let n t = t.num
let rng t = t.rng
let obj_rng t = t.obj_rng
let trace t = t.trace
let now t = t.step

(* --- telemetry ---------------------------------------------------------- *)

let set_sink t sink = t.sink <- sink
let clear_sink t = t.sink <- Sink.nil
let telemetry_active t = t.sink.Sink.active

(* Emit a structured signal on behalf of [pid] at the current step. Cheap
   when disabled, but call sites should still guard on [telemetry_active]
   before allocating the signal payload. *)
let signal t ~pid s =
  if t.sink.Sink.active then t.sink.Sink.on_signal ~step:t.step ~pid s

let ensure_obj t id =
  let len = Array.length t.events_by_obj in
  if id >= len then begin
    let cap = max (id + 1) (2 * len) in
    let events = Array.make cap 0 in
    Array.blit t.events_by_obj 0 events 0 len;
    t.events_by_obj <- events;
    let pending = Array.make cap [] in
    Array.blit t.pending_by_obj 0 pending 0 len;
    t.pending_by_obj <- pending
  end

let register_object t ~name ~respond =
  let id = t.next_obj_id in
  t.next_obj_id <- id + 1;
  ensure_obj t id;
  Shared.make ~id ~name ~respond

let push_task t ~pid ~name ~layer state =
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.spawn: bad pid";
  let proc = t.procs.(pid) in
  let task = { t_name = name; t_pid = pid; t_layer = layer; t_state = state } in
  let cap = Array.length proc.tasks in
  if proc.n_tasks = cap then begin
    let grown = Array.make (max 4 (2 * cap)) task in
    Array.blit proc.tasks 0 grown 0 cap;
    proc.tasks <- grown
  end;
  proc.tasks.(proc.n_tasks) <- task;
  proc.n_tasks <- proc.n_tasks + 1;
  proc.live <- proc.live + 1;
  t.runnable_dirty <- true

let spawn ?(layer = Sink.Other) t ~pid ~name body =
  push_task t ~pid ~name ~layer (Ready body)

let spawn_machine ?(layer = Sink.Other) t ~pid ~name fn =
  push_task t ~pid ~name ~layer (Machine_ready fn)

let crash_at t ~pid ~step = t.crashes <- (step, pid) :: t.crashes

let crashed t ~pid = t.procs.(pid).is_crashed
let retired t ~pid = t.procs.(pid).is_retired

(* --- dynamic membership -------------------------------------------------- *)

let fresh_proc pid =
  {
    pid;
    tasks = [||];
    n_tasks = 0;
    live = 0;
    next_task = 0;
    is_crashed = false;
    is_retired = false;
  }

(* Grow the process table by one (amortized doubling; pre-built slots
   beyond [num] are placeholders with the right pid). A fresh process has
   no tasks, so it is not runnable until something is spawned on it —
   joining the membership and joining the schedule are separate moments. *)
let add_process t =
  let pid = t.num in
  let cap = Array.length t.procs in
  if pid = cap then
    t.procs <-
      Array.init
        (max 4 (2 * cap))
        (fun i -> if i < cap then t.procs.(i) else fresh_proc i);
  t.num <- pid + 1;
  pid

let schedule_event t ~step kind =
  let seq = t.next_event_seq in
  t.next_event_seq <- seq + 1;
  t.events <- (step, seq, kind) :: t.events

let spawn_late ?(layer = Sink.Other) ?at t ~name body =
  let pid = add_process t in
  (match at with
  | Some at when at > t.step ->
    schedule_event t ~step:at (Ev_task { pid; name; layer; state = Ready body })
  | _ -> push_task t ~pid ~name ~layer (Ready body));
  pid

let spawn_at ?(layer = Sink.Other) t ~pid ~at ~name body =
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.spawn_at: bad pid";
  if at <= t.step then push_task t ~pid ~name ~layer (Ready body)
  else
    schedule_event t ~step:at (Ev_task { pid; name; layer; state = Ready body })

let yield () = Effect.perform Yield
let call obj op = Effect.perform (Call (obj, op))
let self () = Effect.perform Self

let await cond =
  while not (cond ()) do
    yield ()
  done

(* All transitions into [Finished] funnel through here so the proc's
   [live] count decrements exactly once per task: crash/stop teardown
   first finishes the task, then discontinues its continuation, and the
   handler's [exnc] lands here a second time as a no-op. *)
let finish_task t task =
  match task.t_state with
  | Finished -> ()
  | Ready _ | Suspended_local _ | Suspended_call _ | Machine_ready _
  | Machine_awaiting _ | Running ->
    task.t_state <- Finished;
    let proc = t.procs.(task.t_pid) in
    proc.live <- proc.live - 1;
    if proc.live = 0 then t.runnable_dirty <- true

(* --- pending-operation bookkeeping ------------------------------------- *)

let events_of t obj_id = t.events_by_obj.(obj_id)

let bump_events t obj_id =
  t.events_by_obj.(obj_id) <- t.events_by_obj.(obj_id) + 1

let add_pending t pend =
  let obj_id = pend.p_obj.Shared.id in
  let existing = t.pending_by_obj.(obj_id) in
  if existing <> [] then begin
    pend.p_overlapped <- true;
    List.iter
      (fun other ->
        other.p_overlapped <- true;
        other.p_overlap_ops <- pend.p_op :: other.p_overlap_ops;
        pend.p_overlap_ops <- other.p_op :: pend.p_overlap_ops)
      existing
  end;
  t.pending_by_obj.(obj_id) <- pend :: existing

let remove_pending t pend =
  let obj_id = pend.p_obj.Shared.id in
  match t.pending_by_obj.(obj_id) with
  | [ only ] when only == pend ->
    (* the overwhelmingly common case: the op was alone on its object *)
    t.pending_by_obj.(obj_id) <- [];
    0
  | existing ->
    let remaining = List.filter (fun other -> other != pend) existing in
    t.pending_by_obj.(obj_id) <- remaining;
    List.length remaining

let respond_pending t pend =
  let remaining = remove_pending t pend in
  let obj_id = pend.p_obj.Shared.id in
  let step_contended = events_of t obj_id > pend.p_events_at_invoke in
  bump_events t obj_id;
  let ctx =
    {
      Shared.pid = pend.p_pid;
      invoke_step = pend.p_invoke_step;
      respond_step = t.step;
      overlapped = pend.p_overlapped;
      overlap_ops = pend.p_overlap_ops;
      step_contended;
      pending_others = remaining;
      rng = t.obj_rng;
      op = pend.p_op;
    }
  in
  let result = pend.p_obj.Shared.respond ctx in
  Trace.record_respond t.trace ~step:t.step ~pid:pend.p_pid
    ~obj_id:pend.p_obj.Shared.id ~obj_name:pend.p_obj.Shared.name
    ~op:pend.p_op ~result;
  if t.sink.Sink.active then
    t.sink.Sink.on_respond ~step:t.step ~pid:pend.p_pid ~layer:pend.p_layer
      ~obj_id:pend.p_obj.Shared.id ~obj_name:pend.p_obj.Shared.name
      ~op:pend.p_op ~result;
  result

(* Invocation-side bookkeeping, shared by the effects handler's [Call]
   case and the machine interpreter's [M_call]: both backends must record
   the invocation identically for traces and telemetry to stay
   byte-identical. *)
let begin_call t task obj op =
  ensure_obj t obj.Shared.id;
  bump_events t obj.Shared.id;
  let pend =
    {
      p_pid = task.t_pid;
      p_obj = obj;
      p_op = op;
      p_invoke_step = t.step;
      p_layer = task.t_layer;
      p_overlapped = false;
      p_overlap_ops = [];
      p_events_at_invoke = events_of t obj.Shared.id;
    }
  in
  add_pending t pend;
  Trace.record_invoke t.trace ~step:t.step ~pid:task.t_pid
    ~obj_id:obj.Shared.id ~obj_name:obj.Shared.name ~op;
  if t.sink.Sink.active then
    t.sink.Sink.on_invoke ~step:t.step ~pid:task.t_pid ~layer:task.t_layer
      ~obj_id:obj.Shared.id ~obj_name:obj.Shared.name ~op;
  pend

(* --- task execution ----------------------------------------------------- *)

let handler t task =
  let open Effect.Deep in
  {
    retc = (fun () -> finish_task t task);
    exnc =
      (fun e ->
        match e with
        | Simulation_over -> finish_task t task
        | e ->
          let bt = Printexc.get_raw_backtrace () in
          Fmt.epr "task %S (pid %d) raised: %s@." task.t_name task.t_pid
            (Printexc.to_string e);
          Printexc.raise_with_backtrace e bt);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) continuation) ->
              task.t_state <- Suspended_local k)
        | Call (obj, op) ->
          Some
            (fun (k : (a, unit) continuation) ->
              let pend = begin_call t task obj op in
              task.t_state <- Suspended_call (k, pend))
        | Self -> Some (fun (k : (a, unit) continuation) -> continue k task.t_pid)
        | _ -> None);
  }

let runnable_task task =
  match task.t_state with
  | Ready _ | Suspended_local _ | Suspended_call _ | Machine_ready _
  | Machine_awaiting _ ->
    true
  | Running | Finished -> false

let proc_runnable proc =
  (not proc.is_crashed) && (not proc.is_retired) && proc.live > 0

(* Pick the next runnable task of [proc], round-robin over the task array
   starting at the cursor. Allocation-free. *)
let pick_task proc =
  let tasks = proc.tasks in
  let count = proc.n_tasks in
  let rec search tries idx =
    if tries >= count then None
    else
      let task = tasks.(idx mod count) in
      if runnable_task task then begin
        proc.next_task <- (idx mod count) + 1;
        Some task
      end
      else search (tries + 1) (idx + 1)
  in
  search 0 proc.next_task

(* Run one step of a machine: feed it the value it was waiting on and
   reinstate the state its action implies. The machine function itself
   executes synchronously — no continuation is captured. *)
let run_machine t task fn v =
  match fn v with
  | M_yield -> task.t_state <- Machine_ready fn
  | M_call (obj, op) ->
    let pend = begin_call t task obj op in
    task.t_state <- Machine_awaiting (fn, pend)
  | M_halt -> finish_task t task

let exec_task_step t task =
  match task.t_state with
  | Ready body ->
    task.t_state <- Running;
    Effect.Deep.match_with body () (handler t task)
  | Suspended_local k ->
    task.t_state <- Running;
    Effect.Deep.continue k ()
  | Suspended_call (k, pend) ->
    let result = respond_pending t pend in
    task.t_state <- Running;
    Effect.Deep.continue k result
  | Machine_ready fn ->
    task.t_state <- Running;
    run_machine t task fn Value.Unit
  | Machine_awaiting (fn, pend) ->
    let result = respond_pending t pend in
    task.t_state <- Running;
    run_machine t task fn result
  | Running | Finished -> assert false

(* Resolve any in-flight operation so the object's state is well defined,
   then unwind every suspended task — the shared teardown under both
   crashes and graceful retirements. *)
let unwind_tasks t proc =
  let finish task =
    match task.t_state with
    | Suspended_call (k, pend) ->
      let (_ : Value.t) = respond_pending t pend in
      finish_task t task;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Suspended_local k ->
      finish_task t task;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Machine_awaiting (_, pend) ->
      let (_ : Value.t) = respond_pending t pend in
      finish_task t task
    | Ready _ | Machine_ready _ -> finish_task t task
    | Running | Finished -> ()
  in
  for i = 0 to proc.n_tasks - 1 do
    finish proc.tasks.(i)
  done

let crash_proc t proc =
  proc.is_crashed <- true;
  t.runnable_dirty <- true;
  if t.sink.Sink.active then
    signal t ~pid:proc.pid (Sink.Crash { pid = proc.pid });
  unwind_tasks t proc

let retire_proc t proc =
  proc.is_retired <- true;
  t.runnable_dirty <- true;
  if t.sink.Sink.active then
    signal t ~pid:proc.pid (Sink.Retire { pid = proc.pid });
  unwind_tasks t proc;
  (* A retired process never runs again: drop its task storage so a
     long-lived world with heavy churn compacts as members leave. *)
  proc.tasks <- [||];
  proc.n_tasks <- 0;
  proc.live <- 0;
  proc.next_task <- 0

let retire ?at t ~pid =
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.retire: bad pid";
  match at with
  | Some at when at > t.step -> schedule_event t ~step:at (Ev_retire pid)
  | _ ->
    let proc = t.procs.(pid) in
    if not (proc.is_crashed || proc.is_retired) then retire_proc t proc

let apply_due_crashes t =
  match t.crashes with
  | [] -> ()
  | _ ->
    let due, later = List.partition (fun (s, _) -> s <= t.step) t.crashes in
    t.crashes <- later;
    List.iter
      (fun (_, pid) ->
        let proc = t.procs.(pid) in
        if not proc.is_crashed then crash_proc t proc)
      due

(* Due membership events apply in creation order (the seq numbers — the
   list itself is prepend-ordered), then due crashes: a crash and a
   retirement due at the same step leave the process crashed. Activation
   on a process that crashed or retired first is dropped. *)
let apply_due_events t =
  match t.events with
  | [] -> ()
  | _ ->
    let due, later =
      List.partition (fun (s, _, _) -> s <= t.step) t.events
    in
    t.events <- later;
    List.sort (fun (_, a, _) (_, b, _) -> compare (a : int) b) due
    |> List.iter (fun (_, _, kind) ->
           match kind with
           | Ev_task { pid; name; layer; state } ->
             let proc = t.procs.(pid) in
             if not (proc.is_crashed || proc.is_retired) then
               push_task t ~pid ~name ~layer state
           | Ev_retire pid ->
             let proc = t.procs.(pid) in
             if not (proc.is_crashed || proc.is_retired) then
               retire_proc t proc)

let apply_due t =
  apply_due_events t;
  apply_due_crashes t

let recompute_runnable t =
  (* Index loops bounded by [num], not [Array.iter]: the table's capacity
     can exceed the membership after amortized growth. *)
  let count = ref 0 in
  for i = 0 to t.num - 1 do
    if proc_runnable t.procs.(i) then incr count
  done;
  let fresh = Array.make !count 0 in
  let j = ref 0 in
  for i = 0 to t.num - 1 do
    let p = t.procs.(i) in
    if proc_runnable p then begin
      fresh.(!j) <- p.pid;
      incr j
    end
  done;
  t.runnable_cache <- fresh;
  t.runnable_dirty <- false

(* The public accessor copies the cache: callers of the original
   implementation received a fresh array per call and could do anything
   with it; only the internal hot loop reads the cache directly. *)
let runnable_pids t =
  apply_due t;
  if t.runnable_dirty then recompute_runnable t;
  Array.copy t.runnable_cache

let run_task_step t ~pid task =
  Trace.record_step t.trace ~pid;
  if t.sink.Sink.active then
    t.sink.Sink.on_step ~step:t.step ~pid ~layer:task.t_layer;
  exec_task_step t task

let step t ~pid =
  apply_due t;
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.step: bad pid";
  let proc = t.procs.(pid) in
  if not (proc_runnable proc) then
    invalid_arg (Fmt.str "Runtime.step: pid %d is not runnable" pid);
  (match pick_task proc with
  | None -> assert false (* proc_runnable guarantees a runnable task *)
  | Some task -> run_task_step t ~pid task);
  t.step <- t.step + 1

let record_idle_step t =
  Trace.record_step t.trace ~pid:(-1);
  if t.sink.Sink.active then
    t.sink.Sink.on_step ~step:t.step ~pid:(-1) ~layer:Sink.Other

let idle_step t =
  apply_due t;
  record_idle_step t;
  t.step <- t.step + 1

let run t ~policy ~steps =
  let deadline = t.step + steps in
  let pick = Policy.next policy in
  let continue_run = ref true in
  while !continue_run && t.step < deadline do
    apply_due t;
    if t.runnable_dirty then recompute_runnable t;
    let runnable = t.runnable_cache in
    if Array.length runnable = 0 then
      (* Nobody is runnable now, but a scheduled activation may still be
         due before the deadline: idle toward it rather than stopping —
         "no runnable task" only ends the run once no task can appear. *)
      if
        List.exists
          (fun (s, _, k) ->
            s < deadline
            && match k with Ev_task _ -> true | Ev_retire _ -> false)
          t.events
      then begin
        record_idle_step t;
        t.step <- t.step + 1
      end
      else continue_run := false
    else begin
      (match pick ~step:t.step ~runnable ~rng:t.rng with
      | None -> record_idle_step t (* idle step *)
      | Some pid ->
        (match pick_task t.procs.(pid) with
        | None -> record_idle_step t
        | Some task -> run_task_step t ~pid task));
      t.step <- t.step + 1
    end
  done

let stop t =
  let teardown task =
    match task.t_state with
    | Suspended_local k ->
      finish_task t task;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Suspended_call (k, pend) ->
      let (_ : int) = remove_pending t pend in
      finish_task t task;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Machine_awaiting (_, pend) ->
      let (_ : int) = remove_pending t pend in
      finish_task t task
    | Ready _ | Machine_ready _ -> finish_task t task
    | Running | Finished -> ()
  in
  for p = 0 to t.num - 1 do
    let proc = t.procs.(p) in
    for i = 0 to proc.n_tasks - 1 do
      teardown proc.tasks.(i)
    done
  done
