exception Simulation_over

type pending = {
  p_pid : int;
  p_obj : Shared.t;
  p_op : Value.t;
  p_invoke_step : int;
  p_layer : Sink.layer;  (* layer of the invoking task, for telemetry *)
  mutable p_overlapped : bool;
  mutable p_overlap_ops : Value.t list;
  p_events_at_invoke : int;
      (* object event-counter value just after this op's invocation *)
}

type task_state =
  | Ready of (unit -> unit)
  | Suspended_local of (unit, unit) Effect.Deep.continuation
  | Suspended_call of (Value.t, unit) Effect.Deep.continuation * pending
  | Running
  | Finished

type task = {
  t_name : string;
  t_pid : int;
  t_layer : Sink.layer;
  mutable t_state : task_state;
}

type proc = {
  pid : int;
  mutable tasks : task list;  (* in spawn order *)
  mutable next_task : int;  (* round-robin cursor *)
  mutable is_crashed : bool;
}

type t = {
  num : int;
  rng : Rng.t;
  obj_rng : Rng.t;
  trace : Trace.t;
  procs : proc array;
  mutable step : int;
  mutable next_obj_id : int;
  pending : (int, pending list) Hashtbl.t;  (* obj id -> in-flight ops *)
  event_counts : (int, int) Hashtbl.t;
      (* obj id -> number of invocation/response events so far *)
  mutable crashes : (int * int) list;  (* (step, pid), unsorted *)
  mutable current : (int * task) option;  (* set while a task runs *)
  mutable sink : Sink.t;  (* telemetry sink; Sink.nil = disabled *)
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Call : Shared.t * Value.t -> Value.t Effect.t
  | Self : int Effect.t

let create ?(seed = 0xC0FFEEL) ~n () =
  if n < 1 then invalid_arg "Runtime.create: need at least one process";
  {
    num = n;
    rng = Rng.create seed;
    (* A stream of its own, derived from the seed: object-level random
       decisions (abort draws, safe-register garbage, write effects) must
       not share the scheduling policy's stream, or a replayed schedule —
       which consumes no scheduling randomness — would shift every object
       draw and diverge from the run it replays. *)
    obj_rng = Rng.create (Int64.logxor seed 0x6F626A5F726E6721L);
    trace = Trace.create ();
    procs = Array.init n (fun pid -> { pid; tasks = []; next_task = 0; is_crashed = false });
    step = 0;
    next_obj_id = 0;
    pending = Hashtbl.create 64;
    event_counts = Hashtbl.create 64;
    crashes = [];
    current = None;
    sink = Sink.nil;
  }

let n t = t.num
let rng t = t.rng
let obj_rng t = t.obj_rng
let trace t = t.trace
let now t = t.step

(* --- telemetry ---------------------------------------------------------- *)

let set_sink t sink = t.sink <- sink
let clear_sink t = t.sink <- Sink.nil
let telemetry_active t = t.sink.Sink.active

(* Emit a structured signal on behalf of [pid] at the current step. Cheap
   when disabled, but call sites should still guard on [telemetry_active]
   before allocating the signal payload. *)
let signal t ~pid s =
  if t.sink.Sink.active then t.sink.Sink.on_signal ~step:t.step ~pid s

let register_object t ~name ~respond =
  let id = t.next_obj_id in
  t.next_obj_id <- id + 1;
  Shared.make ~id ~name ~respond

let spawn ?(layer = Sink.Other) t ~pid ~name body =
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.spawn: bad pid";
  let proc = t.procs.(pid) in
  proc.tasks <-
    proc.tasks
    @ [ { t_name = name; t_pid = pid; t_layer = layer; t_state = Ready body } ]

let crash_at t ~pid ~step = t.crashes <- (step, pid) :: t.crashes

let crashed t ~pid = t.procs.(pid).is_crashed

let yield () = Effect.perform Yield
let call obj op = Effect.perform (Call (obj, op))
let self () = Effect.perform Self

let await cond =
  while not (cond ()) do
    yield ()
  done

(* --- pending-operation bookkeeping ------------------------------------- *)

let events_of t obj_id =
  Option.value (Hashtbl.find_opt t.event_counts obj_id) ~default:0

let bump_events t obj_id =
  Hashtbl.replace t.event_counts obj_id (events_of t obj_id + 1)

let add_pending t pend =
  let obj_id = pend.p_obj.Shared.id in
  let existing = Option.value (Hashtbl.find_opt t.pending obj_id) ~default:[] in
  if existing <> [] then begin
    pend.p_overlapped <- true;
    List.iter
      (fun other ->
        other.p_overlapped <- true;
        other.p_overlap_ops <- pend.p_op :: other.p_overlap_ops;
        pend.p_overlap_ops <- other.p_op :: pend.p_overlap_ops)
      existing
  end;
  Hashtbl.replace t.pending obj_id (pend :: existing)

let remove_pending t pend =
  let obj_id = pend.p_obj.Shared.id in
  let existing = Option.value (Hashtbl.find_opt t.pending obj_id) ~default:[] in
  let remaining = List.filter (fun other -> other != pend) existing in
  Hashtbl.replace t.pending obj_id remaining;
  List.length remaining

let respond_pending t pend =
  let remaining = remove_pending t pend in
  let obj_id = pend.p_obj.Shared.id in
  let step_contended = events_of t obj_id > pend.p_events_at_invoke in
  bump_events t obj_id;
  let ctx =
    {
      Shared.pid = pend.p_pid;
      invoke_step = pend.p_invoke_step;
      respond_step = t.step;
      overlapped = pend.p_overlapped;
      overlap_ops = pend.p_overlap_ops;
      step_contended;
      pending_others = remaining;
      rng = t.obj_rng;
      op = pend.p_op;
    }
  in
  let result = pend.p_obj.Shared.respond ctx in
  Trace.record_op t.trace
    {
      Trace.step = t.step;
      pid = pend.p_pid;
      obj_id = pend.p_obj.Shared.id;
      obj_name = pend.p_obj.Shared.name;
      op = pend.p_op;
      phase = `Respond result;
    };
  if t.sink.Sink.active then
    t.sink.Sink.on_respond ~step:t.step ~pid:pend.p_pid ~layer:pend.p_layer
      ~obj_id:pend.p_obj.Shared.id ~obj_name:pend.p_obj.Shared.name
      ~op:pend.p_op ~result;
  result

(* --- task execution ----------------------------------------------------- *)

let handler t task =
  let open Effect.Deep in
  {
    retc = (fun () -> task.t_state <- Finished);
    exnc =
      (fun e ->
        match e with
        | Simulation_over -> task.t_state <- Finished
        | e ->
          let bt = Printexc.get_raw_backtrace () in
          Fmt.epr "task %S (pid %d) raised: %s@." task.t_name task.t_pid
            (Printexc.to_string e);
          Printexc.raise_with_backtrace e bt);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) continuation) ->
              task.t_state <- Suspended_local k)
        | Call (obj, op) ->
          Some
            (fun (k : (a, unit) continuation) ->
              bump_events t obj.Shared.id;
              let pend =
                {
                  p_pid = task.t_pid;
                  p_obj = obj;
                  p_op = op;
                  p_invoke_step = t.step;
                  p_layer = task.t_layer;
                  p_overlapped = false;
                  p_overlap_ops = [];
                  p_events_at_invoke = events_of t obj.Shared.id;
                }
              in
              add_pending t pend;
              Trace.record_op t.trace
                {
                  Trace.step = t.step;
                  pid = task.t_pid;
                  obj_id = obj.Shared.id;
                  obj_name = obj.Shared.name;
                  op;
                  phase = `Invoke;
                };
              if t.sink.Sink.active then
                t.sink.Sink.on_invoke ~step:t.step ~pid:task.t_pid
                  ~layer:task.t_layer ~obj_id:obj.Shared.id
                  ~obj_name:obj.Shared.name ~op;
              task.t_state <- Suspended_call (k, pend))
        | Self -> Some (fun (k : (a, unit) continuation) -> continue k task.t_pid)
        | _ -> None);
  }

let runnable_task task =
  match task.t_state with
  | Ready _ | Suspended_local _ | Suspended_call _ -> true
  | Running | Finished -> false

let proc_runnable proc =
  (not proc.is_crashed) && List.exists runnable_task proc.tasks

(* Pick the next runnable task of [proc], round-robin. *)
let pick_task proc =
  let tasks = Array.of_list proc.tasks in
  let count = Array.length tasks in
  let rec search tries idx =
    if tries >= count then None
    else
      let task = tasks.(idx mod count) in
      if runnable_task task then begin
        proc.next_task <- (idx mod count) + 1;
        Some task
      end
      else search (tries + 1) (idx + 1)
  in
  search 0 proc.next_task

let exec_task_step t task =
  match task.t_state with
  | Ready body ->
    task.t_state <- Running;
    Effect.Deep.match_with body () (handler t task)
  | Suspended_local k ->
    task.t_state <- Running;
    Effect.Deep.continue k ()
  | Suspended_call (k, pend) ->
    let result = respond_pending t pend in
    task.t_state <- Running;
    Effect.Deep.continue k result
  | Running | Finished -> assert false

let crash_proc t proc =
  proc.is_crashed <- true;
  if t.sink.Sink.active then
    signal t ~pid:proc.pid (Sink.Crash { pid = proc.pid });
  (* Resolve any in-flight operation so the object's state is well defined,
     then unwind every suspended task. *)
  let finish task =
    match task.t_state with
    | Suspended_call (k, pend) ->
      let (_ : Value.t) = respond_pending t pend in
      task.t_state <- Finished;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Suspended_local k ->
      task.t_state <- Finished;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Ready _ -> task.t_state <- Finished
    | Running | Finished -> ()
  in
  List.iter finish proc.tasks

let apply_due_crashes t =
  let due, later = List.partition (fun (s, _) -> s <= t.step) t.crashes in
  t.crashes <- later;
  List.iter
    (fun (_, pid) ->
      let proc = t.procs.(pid) in
      if not proc.is_crashed then crash_proc t proc)
    due

let runnable_pids t =
  apply_due_crashes t;
  Array.to_list t.procs
  |> List.filter proc_runnable
  |> List.map (fun p -> p.pid)
  |> Array.of_list

let step t ~pid =
  apply_due_crashes t;
  if pid < 0 || pid >= t.num then invalid_arg "Runtime.step: bad pid";
  let proc = t.procs.(pid) in
  if not (proc_runnable proc) then
    invalid_arg (Fmt.str "Runtime.step: pid %d is not runnable" pid);
  (match pick_task proc with
  | None -> assert false (* proc_runnable guarantees a runnable task *)
  | Some task ->
    Trace.record_step t.trace ~pid;
    if t.sink.Sink.active then
      t.sink.Sink.on_step ~step:t.step ~pid ~layer:task.t_layer;
    t.current <- Some (pid, task);
    exec_task_step t task;
    t.current <- None);
  t.step <- t.step + 1

let record_idle_step t =
  Trace.record_step t.trace ~pid:(-1);
  if t.sink.Sink.active then
    t.sink.Sink.on_step ~step:t.step ~pid:(-1) ~layer:Sink.Other

let idle_step t =
  apply_due_crashes t;
  record_idle_step t;
  t.step <- t.step + 1

let run t ~policy ~steps =
  let deadline = t.step + steps in
  let continue_run = ref true in
  while !continue_run && t.step < deadline do
    let runnable = runnable_pids t in
    if Array.length runnable = 0 then continue_run := false
    else begin
      (match Policy.next policy ~step:t.step ~runnable ~rng:t.rng with
      | None -> record_idle_step t (* idle step *)
      | Some pid ->
        let proc = t.procs.(pid) in
        (match pick_task proc with
        | None -> record_idle_step t
        | Some task ->
          Trace.record_step t.trace ~pid;
          if t.sink.Sink.active then
            t.sink.Sink.on_step ~step:t.step ~pid ~layer:task.t_layer;
          t.current <- Some (pid, task);
          exec_task_step t task;
          t.current <- None));
      t.step <- t.step + 1
    end
  done

let stop t =
  let teardown task =
    match task.t_state with
    | Suspended_local k ->
      task.t_state <- Finished;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Suspended_call (k, pend) ->
      let (_ : int) = remove_pending t pend in
      task.t_state <- Finished;
      (try Effect.Deep.discontinue k Simulation_over with Simulation_over -> ())
    | Ready _ -> task.t_state <- Finished
    | Running | Finished -> ()
  in
  Array.iter (fun proc -> List.iter teardown proc.tasks) t.procs
