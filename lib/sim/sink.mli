(** Telemetry sink: the runtime's hook surface for observers.

    The runtime (and the libraries built on it) emit structured events
    through a sink record. The default sink is {!nil}, whose callbacks
    are no-ops and whose [active] flag is false; every instrumentation
    site guards on [active] {e before} building the event's payload, so
    with the nil sink installed the only cost on the hot path is one
    boolean load and branch. Attaching a real sink (see lib/telemetry)
    turns the same sites into a deterministic event stream: events are
    keyed by the simulator's step counter, never by wall-clock, so the
    same (seed, policy) produces a byte-identical stream. *)

(** Which part of the stack a task belongs to (set via
    [Runtime.spawn ~layer]); step attribution groups by it. *)
type layer = App | Omega | Monitor | Other

val layer_name : layer -> string
val layer_index : layer -> int
val layers : layer list
val n_layers : int

(** Structured events from the libraries above the step loop. Payloads
    are allocated only when a sink is active (call sites guard). *)
type signal =
  | Abort_decision of { obj_name : string; is_write : bool }
      (** an abortable register chose to abort the current operation *)
  | Leader_view of { leader : int option }
      (** the acting process's Ω∆ view changed ([None] = no leader) *)
  | Suspicion_flip of { watched : int; suspected : bool }
      (** activity monitor A(p,q) at the acting process p flipped its
          estimate of [watched] = q *)
  | Crash of { pid : int }  (** the runtime crashed process [pid] *)
  | Retire of { pid : int }
      (** the runtime gracefully retired process [pid]: it left the
          membership with any in-flight operation resolved first, so the
          departure is not a failure — checkers and telemetry count it
          apart from {!Crash} *)
  | Op_complete
      (** the acting process completed one workload-level operation (a
          full [Tbwf.invoke] round trip, not an individual register call
          — emitted by [Workload], so it counts exactly what
          [Workload.stats.completed] counts) *)
  | Message of { src : int; dst : int; latency : int; dropped : bool }
      (** the simulated network accepted a message from [src] to [dst];
          [latency] is the assigned delivery delay in steps, and
          [dropped] is true when the message was cut by a partition or a
          loss draw (then [latency] is the would-have-been delay) *)

type t = {
  active : bool;
  on_step : step:int -> pid:int -> layer:layer -> unit;
  on_invoke :
    step:int ->
    pid:int ->
    layer:layer ->
    obj_id:int ->
    obj_name:string ->
    op:Value.t ->
    unit;
  on_respond :
    step:int ->
    pid:int ->
    layer:layer ->
    obj_id:int ->
    obj_name:string ->
    op:Value.t ->
    result:Value.t ->
    unit;
  on_signal : step:int -> pid:int -> signal -> unit;
}

val nil : t
(** The inactive no-op sink; installed by default. *)

val tee : t -> t -> t
(** [tee a b] forwards every event to [a] then [b]; active iff either
    side is. Lets a collector and an online checker observe one run. *)
