type t = {
  name : string;
  next : step:int -> runnable:int array -> rng:Rng.t -> int option;
  (* for of_script policies: observed branching factors, reverse order *)
  script_branching : int list ref;
}

let name t = t.name
let next t = t.next

let mem pid runnable = Array.exists (fun p -> p = pid) runnable

let round_robin () =
  let last = ref (-1) in
  let next ~step:_ ~runnable ~rng:_ =
    let len = Array.length runnable in
    if len = 0 then None
    else begin
      (* smallest pid strictly greater than [!last], wrapping around:
         first match in array order (the runtime hands pids sorted) *)
      let rec find i =
        if i >= len then runnable.(0)
        else if runnable.(i) > !last then runnable.(i)
        else find (i + 1)
      in
      let chosen = find 0 in
      last := chosen;
      Some chosen
    end
  in
  { name = "round-robin"; next; script_branching = ref [] }

let weighted_pick rng candidates weight_of =
  let total = Array.fold_left (fun acc p -> acc +. weight_of p) 0.0 candidates in
  if total <= 0.0 then None
  else begin
    let target = Rng.float rng *. total in
    let acc = ref 0.0 in
    let chosen = ref None in
    Array.iter
      (fun p ->
        if !chosen = None then begin
          acc := !acc +. weight_of p;
          if !acc > target then chosen := Some p
        end)
      candidates;
    (* floating-point slack: fall back to the last candidate *)
    match !chosen with
    | Some _ as c -> c
    | None -> Some candidates.(Array.length candidates - 1)
  end

let weighted weights =
  let table = Hashtbl.create 16 in
  Array.iter (fun (pid, w) -> Hashtbl.replace table pid w) weights;
  let weight_of p = Option.value (Hashtbl.find_opt table p) ~default:1.0 in
  let next ~step:_ ~runnable ~rng =
    if Array.length runnable = 0 then None else weighted_pick rng runnable weight_of
  in
  { name = "weighted"; next; script_branching = ref [] }

type pattern =
  | Every of { period : int; offset : int }
  | Weighted of float
  | Flicker of { active : int; sleep : int; growth : float }
  | Slowing of { initial_gap : int; growth : float; burst : int }
  | Silent
  | Switch_at of int * pattern * pattern

(* Mutable flicker phase tracking, keyed by pid. *)
type flicker_state = {
  mutable awake : bool;
  mutable phase_end : int;  (* first step of the next phase *)
  mutable sleep_len : float;
}

type slowing_state = {
  mutable due : int;
  mutable gap : float;
  mutable burst_left : int;
}

let of_patterns ?(name = "patterns") assignments =
  let patterns = Hashtbl.create 16 in
  List.iter (fun (pid, p) -> Hashtbl.replace patterns pid p) assignments;
  let flickers : (int, flicker_state) Hashtbl.t = Hashtbl.create 16 in
  let slowers : (int, slowing_state) Hashtbl.t = Hashtbl.create 16 in
  let last_run = Hashtbl.create 16 in
  let rec resolve step = function
    | Switch_at (s, before, after) ->
      if step < s then resolve step before else resolve step after
    | (Every _ | Weighted _ | Flicker _ | Slowing _ | Silent) as p -> p
  in
  let slowing_state pid step initial_gap burst =
    match Hashtbl.find_opt slowers pid with
    | Some st -> st
    | None ->
      let st =
        { due = step; gap = float_of_int initial_gap; burst_left = burst }
      in
      Hashtbl.replace slowers pid st;
      st
  in
  let flicker_awake pid step active sleep growth =
    let st =
      match Hashtbl.find_opt flickers pid with
      | Some st -> st
      | None ->
        let st = { awake = true; phase_end = step + active; sleep_len = float_of_int sleep } in
        Hashtbl.replace flickers pid st;
        st
    in
    while step >= st.phase_end do
      if st.awake then begin
        st.awake <- false;
        st.phase_end <- st.phase_end + int_of_float st.sleep_len;
        st.sleep_len <- st.sleep_len *. growth
      end
      else begin
        st.awake <- true;
        st.phase_end <- st.phase_end + active
      end
    done;
    st.awake
  in
  let next ~step ~runnable ~rng =
    if Array.length runnable = 0 then None
    else begin
      let pattern_of p =
        resolve step
          (Option.value (Hashtbl.find_opt patterns p) ~default:(Weighted 1.0))
      in
      let claims =
        Array.to_list runnable
        |> List.filter (fun p ->
               match pattern_of p with
               | Every { period; offset } -> (step - offset) mod period = 0
               | Slowing { initial_gap; growth = _; burst } ->
                 step >= (slowing_state p step initial_gap burst).due
               | Weighted _ | Flicker _ | Silent | Switch_at _ -> false)
      in
      match claims with
      | _ :: _ ->
        (* serve the least-recently-run claimant so ties starve nobody *)
        let ran_at p = Option.value (Hashtbl.find_opt last_run p) ~default:(-1) in
        let best =
          List.fold_left
            (fun best p ->
              match best with
              | None -> Some p
              | Some b -> if ran_at p < ran_at b then Some p else best)
            None claims
        in
        Option.iter
          (fun p ->
            Hashtbl.replace last_run p step;
            match pattern_of p with
            | Slowing { initial_gap; growth; burst } ->
              let st = slowing_state p step initial_gap burst in
              if st.burst_left > 1 then st.burst_left <- st.burst_left - 1
              else begin
                st.burst_left <- max 1 burst;
                st.due <- step + int_of_float st.gap;
                st.gap <- st.gap *. growth
              end
            | Every _ | Weighted _ | Flicker _ | Silent | Switch_at _ -> ())
          best;
        best
      | [] ->
        let weight_of p =
          match pattern_of p with
          | Weighted w -> w
          | Flicker { active; sleep; growth } ->
            if flicker_awake p step active sleep growth then 1.0 else 0.0
          | Every _ | Slowing _ | Silent -> 0.0
          | Switch_at _ -> assert false
        in
        let chosen = weighted_pick rng runnable weight_of in
        (match chosen with
        | Some p -> Hashtbl.replace last_run p step; Some p
        | None ->
          (* No soft participant this step. Give the spare step to an
             off-claim [Every] process (it is willing, merely not due), so
             runs made only of timely processes keep progressing; if truly
             everyone is silent, let the step pass idle. *)
          let willing =
            Array.to_list runnable
            |> List.filter (fun p ->
                   match pattern_of p with
                   | Every _ -> true
                   | Weighted _ | Flicker _ | Slowing _ | Silent | Switch_at _ ->
                     false)
          in
          let ran_at p = Option.value (Hashtbl.find_opt last_run p) ~default:(-1) in
          let best =
            List.fold_left
              (fun best p ->
                match best with
                | None -> Some p
                | Some b -> if ran_at p < ran_at b then Some p else best)
              None willing
          in
          Option.iter (fun p -> Hashtbl.replace last_run p step) best;
          best)
      end
  in
  { name; next; script_branching = ref [] }

let solo_after ~n ~pid ~step =
  let assignments =
    List.init n (fun p ->
        if p = pid then p, Weighted 1.0
        else p, Switch_at (step, Weighted 1.0, Silent))
  in
  let base = of_patterns ~name:(Fmt.str "solo-after-%d" step) assignments in
  (* After the switch point, only [pid] must run, even as the idle fallback. *)
  let next ~step:s ~runnable ~rng =
    if s >= step then (if mem pid runnable then Some pid else None)
    else next base ~step:s ~runnable ~rng
  in
  { name = base.name; next; script_branching = ref [] }

let of_script script =
  let remaining = ref script in
  let branching = ref [] in
  let next ~step:_ ~runnable ~rng:_ =
    if Array.length runnable = 0 then None
    else
      match !remaining with
      | [] -> None
      | choice :: rest ->
        remaining := rest;
        branching := Array.length runnable :: !branching;
        Some runnable.(choice mod Array.length runnable)
  in
  { name = "script"; next; script_branching = branching }

let branching_of_script t = List.rev !(t.script_branching)

exception
  Replay_mismatch of { step : int; pid : int; runnable : int array }

(* Shared core of the replay family. [on_mismatch] decides what happens when
   a recorded non-idle pid is not runnable at its step: the lenient variant
   lets the step pass idle (so shrunk/foreign schedules stay executable),
   the strict one raises, the counting one increments a counter. *)
let replay_with ~name ~on_mismatch pids =
  let remaining = ref pids in
  let next ~step ~runnable ~rng:_ =
    match !remaining with
    | [] -> None
    | pid :: rest ->
      remaining := rest;
      if pid >= 0 && mem pid runnable then Some pid
      else begin
        if pid >= 0 then on_mismatch ~step ~pid ~runnable;
        None (* recorded idle step, or a diverging replay: stay aligned *)
      end
  in
  { name; next; script_branching = ref [] }

let replay pids =
  replay_with ~name:"replay" ~on_mismatch:(fun ~step:_ ~pid:_ ~runnable:_ -> ())
    pids

let replay_strict pids =
  replay_with ~name:"replay-strict"
    ~on_mismatch:(fun ~step ~pid ~runnable ->
      raise (Replay_mismatch { step; pid; runnable }))
    pids

let replay_counting pids =
  let mismatches = ref 0 in
  let t =
    replay_with ~name:"replay-counting"
      ~on_mismatch:(fun ~step:_ ~pid:_ ~runnable:_ -> incr mismatches)
      pids
  in
  t, fun () -> !mismatches
