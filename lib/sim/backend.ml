type t = Reference | Compiled

let all = [ Reference; Compiled ]
let to_string = function Reference -> "reference" | Compiled -> "compiled"

let of_string = function
  | "reference" -> Ok Reference
  | "compiled" -> Ok Compiled
  | s -> Error (Fmt.str "unknown backend %S (known: reference, compiled)" s)

let pp fmt t = Fmt.string fmt (to_string t)
