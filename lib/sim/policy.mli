(** Schedule policies.

    A policy decides which runnable process takes each step. Timeliness in
    the sense of the paper (Definitions 1–2) is a property of the schedule,
    so policies are how experiments construct timely, non-timely, flickering,
    crashing and solo processes.

    Policies may keep internal mutable state; create a fresh policy per run. *)

type t

val name : t -> string

val next : t -> step:int -> runnable:int array -> rng:Rng.t -> int option
(** Pick the process to run at [step] among [runnable] (non-empty, sorted
    ascending). [None] means nobody is willing to run this step; the runtime
    records an idle step and moves on. Called once per step by the runtime. *)

val round_robin : unit -> t
(** Perfectly fair rotation: every process is timely with bound ≈ n. *)

val weighted : (int * float) array -> t
(** Seeded-random choice with the given per-pid weights. Pids absent from
    the list get weight 1.0. A pid with a much smaller weight than the rest
    has unbounded expected gaps, i.e. is (statistically) not timely. *)

(** Per-process step patterns, compiled into a policy by {!of_patterns}. *)
type pattern =
  | Every of { period : int; offset : int }
      (** hard claim on steps ≡ offset (mod period): a timely process with
          bound on the order of [period] *)
  | Weighted of float
      (** soft participant chosen with this weight on unclaimed steps *)
  | Flicker of { active : int; sleep : int; growth : float }
      (** alternates between [active] steps of eager participation and a
          silent phase whose length starts at [sleep] and is multiplied by
          [growth] after every cycle — with [growth > 1.0] the gaps grow
          without bound, so the process is not timely *)
  | Slowing of { initial_gap : int; growth : float; burst : int }
      (** takes a burst of [burst] steps (competing for them against other
          claimants), then pauses for a gap that starts at [initial_gap] and
          is multiplied by [growth] after every burst: a process that keeps
          decelerating forever. With [growth > 1.0] it is not timely, yet it
          never stops and never looks "willingly inactive" — the adversary
          that defeats boosting algorithms with aggressively adaptive (e.g.
          doubling) timeouts. Make [burst] a small multiple of the
          process's task count so each burst produces at least one
          heartbeat write. *)
  | Silent  (** never scheduled (until a [Switch_at] changes it) *)
  | Switch_at of int * pattern * pattern
      (** [Switch_at (s, before, after)]: behave as [before] for steps < s,
          as [after] afterwards *)

val of_patterns : ?name:string -> (int * pattern) list -> t
(** Compile per-pid patterns. Pids not listed behave as [Weighted 1.0].
    Hard claims win over soft participants; simultaneous hard claims are
    served least-recently-run first, so a set of [Every] processes with the
    same period remains timely (with a proportionally larger bound). *)

val solo_after : n:int -> pid:int -> step:int -> t
(** All processes run with equal weight before [step]; afterwards only
    [pid] takes steps. Used to check obstruction-freedom. *)

val of_script : int list -> t
(** Follow an explicit choice script: at step i, run the runnable process
    with index [script.(i) mod (number of runnable processes)] (in
    ascending-pid order). Once the script is exhausted, returns [None]
    forever — the driver for exhaustive schedule exploration
    ({!Tbwf_check.Explore}). *)

val branching_of_script : t -> int list
(** For a policy built with {!of_script}: the number of runnable choices
    that was available at each scripted step, in order — the information an
    exhaustive explorer needs to enumerate sibling schedules. *)

val replay : int list -> t
(** Re-execute a recorded schedule: at step i, run the pid at position i of
    the list (an entry of -1, recorded for an idle step, lets the step pass
    idle again). Because runs are deterministic, replaying
    [Trace.schedule (Runtime.trace rt)] on a fresh identically-seeded
    runtime reproduces the original run byte for byte. An entry whose pid
    is not currently runnable — only possible when the schedule came from a
    {e different} scenario — is treated as idle so the step numbering stays
    aligned. Once the list is exhausted, returns [None] forever.

    That leniency is what schedule shrinking needs, but it also means a
    counterexample replayed against code that has drifted since it was
    recorded can silently diverge into a passing run. Use {!replay_strict}
    or {!replay_counting} when a mismatch should be loud. *)

exception
  Replay_mismatch of { step : int; pid : int; runnable : int array }
(** Raised by a {!replay_strict} policy when the recorded [pid] is not
    runnable at [step] ([runnable] is what was). *)

val replay_strict : int list -> t
(** Like {!replay}, but a recorded non-idle pid that is not runnable raises
    {!Replay_mismatch} instead of passing idle: replaying a committed
    counterexample against drifted code fails loudly instead of quietly
    checking a different schedule. Recorded idle steps (-1) never
    mismatch. *)

val replay_counting : int list -> t * (unit -> int)
(** Like {!replay}, but returns the policy together with a live counter of
    mismatched steps (recorded non-idle pids that were not runnable and so
    passed idle). A nonzero count after a replay means the executed
    schedule was not the recorded one. *)
