(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through one of these
    generators, so a run is a pure function of its seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Useful to give subsystems independent deterministic streams. *)

val task_seed : master:int64 -> int -> int64
(** [task_seed ~master i] is the seed for task [i] of a fan-out keyed by
    [master]: the (i+1)-th splitmix64 output of [master]'s stream,
    computed statelessly from the index. Unlike {!split}, it never reads
    shared mutable generator state, so any two pools (at any domain
    count) derive identical task seeds from the same master. Raises
    [Invalid_argument] on a negative index. *)

val task_seeds : master:int64 -> int -> int64 array
(** [task_seeds ~master count] is [| task_seed ~master 0; ... |]. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
