(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through one of these
    generators, so a run is a pure function of its seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Useful to give subsystems independent deterministic streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
