(** Empirical timeliness classification (paper Definitions 1–2).

    [p] is [q]-timely in a run iff p is correct and there is an i ≥ 1 such
    that every interval containing i steps of q has at least one step of p.
    Over a finite trace we measure, for each gap between consecutive p-steps
    (including the leading and trailing gaps), the number of q-steps inside
    it; p is q-timely with bound i iff every gap holds fewer than i q-steps.

    All functions take [from_step] so callers can ignore a burn-in prefix —
    per the paper (footnote 4), "timely" and "eventually timely" coincide
    when bounds are unknown and per-run. *)

val max_gap : Trace.t -> p:int -> q:int -> from_step:int -> int option
(** Largest number of q-steps in any interval free of p-steps, in the trace
    suffix starting at [from_step]. [None] if p takes no step in the suffix
    (in which case p is certainly not q-timely unless q is also silent). *)

val q_timely : Trace.t -> p:int -> q:int -> from_step:int -> bound:int -> bool
(** True iff every p-free interval of the suffix contains at most [bound]
    q-steps. A silent q makes p trivially q-timely. *)

val timely : Trace.t -> n:int -> p:int -> from_step:int -> bound:int -> bool
(** [p] is q-timely (with [bound]) for every process q ≠ p. *)

val timely_set : Trace.t -> n:int -> from_step:int -> bound:int -> int list
(** All pids classified timely, ascending. *)

val empirical_bound : Trace.t -> n:int -> p:int -> from_step:int -> int option
(** The smallest global bound i witnessing that p is timely, i.e.
    1 + the maximum of [max_gap] over all q ≠ p; [None] if p stops
    stepping while some q keeps stepping. *)
