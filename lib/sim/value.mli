(** Dynamic values exchanged between algorithm code and simulated shared
    objects.

    Shared-object operations and results cross the simulator's effect
    boundary as values of this single type; typed wrappers (see
    [Tbwf_registers]) encode and decode at the edges.

    Conventions used throughout the code base:
    - a read operation is encoded as [Pair (Str "read", Unit)];
    - a write of [v] is encoded as [Pair (Str "write", v)];
    - an aborted operation's result is [Abort] (the paper's ⊥);
    - a failed query result is [Fail] (the paper's F). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Abort  (** the special value ⊥ returned by aborted operations *)
  | Fail   (** the special value F returned by query when the op did not take effect *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Encoding helpers} *)

val read_op : t
(** [Pair (Str "read", Unit)] *)

val write_op : t -> t
(** [write_op v] is [Pair (Str "write", v)] *)

val is_write : t -> bool
val is_read : t -> bool

(** {2 Decoding helpers}

    These raise [Invalid_argument] on shape mismatch; a decoding failure is
    always a bug in the caller, never a legal run of the simulation. *)

val to_int : t -> int
val to_bool : t -> bool
val to_pair : t -> t * t
val to_list : t -> t list
