(** The step simulator.

    A runtime hosts [n] processes (pids 0..n-1). Each process runs one or
    more {e tasks} — coroutines implemented with OCaml effects — modelling
    the paper's view that leader-election code, activity-monitor code and
    application code all execute "at" the process and share its local state.

    One {e step} schedules one task of one process and runs it from its last
    suspension point to its next effect. Shared-object operations span two
    steps: the step that performs the invocation, and the later step (the
    next time the task is scheduled) at which the operation takes effect and
    its result is delivered. Two operations on the same object are
    {e concurrent} iff their invoke/response windows overlap; the runtime
    tracks this and reports it to the object (see {!Shared.ctx}), which is
    what drives abortable-register semantics.

    Runs are deterministic: a run is a pure function of (seed, policy,
    spawned code). *)

type t

val create : ?seed:int64 -> ?record_trace:bool -> n:int -> unit -> t
(** [create ~n ()] makes a runtime with processes 0..n-1 and no tasks.
    [record_trace] (default true) controls whether steps and operation
    events are recorded in {!trace}; long-horizon memory-bounded runs
    pass [false] and rely on streaming telemetry instead (post-hoc
    trace analyses are then unavailable). The run itself is
    byte-identical either way. *)

val n : t -> int
(** Current membership size: pids are 0..n-1, counting crashed and
    retired processes. Grows with {!add_process}/{!spawn_late}. *)

val rng : t -> Rng.t
(** The scheduling stream: consumed by policies (via {!run}) and nothing
    else. *)

val obj_rng : t -> Rng.t
(** The object stream, seeded independently of {!rng} from the same seed:
    every random decision made inside a shared object's [respond] (abort
    draws, write effects, safe-register garbage) comes from here, in
    response order. Keeping the two streams separate is what makes a
    schedule replay ({!Policy.replay}) byte-identical to the original run:
    replay consumes no scheduling randomness, and object draws depend only
    on the response order, which the schedule fixes. *)

val trace : t -> Trace.t

val now : t -> int
(** Number of steps executed so far (also the index of the next step). *)

val register_object : t -> name:string -> respond:(Shared.ctx -> Value.t) -> Shared.t
(** Create a shared object with a fresh id. [respond] is called at each
    operation's response step (and once, with the final context, if the
    invoking process crashes mid-operation). *)

val spawn :
  ?layer:Sink.layer -> t -> pid:int -> name:string -> (unit -> unit) -> unit
(** Add a task to process [pid]. Tasks added to the same process share its
    steps round-robin. May be called before or during a run. [layer] tags
    every step and operation the task performs for telemetry attribution
    (default {!Sink.Other}); it has no behavioural effect. *)

(** {2 Machine tasks (compiled backend)}

    A {e machine} is a task body compiled down to an effect-free step
    function: instead of suspending with effects, it runs to its next
    suspension point and {e returns} how it suspended. The runtime
    interprets the action — no continuation capture, no handler dispatch,
    no per-step closure — which is what the compiled backend
    ([Tbwf_compiled]) is built on. Machine tasks and effect tasks share
    every other bit of runtime bookkeeping (trace records, pending-op
    tracking, telemetry, crash/stop semantics), so a machine that mirrors
    a task body's effect sequence produces a byte-identical run. *)

type machine_action =
  | M_yield  (** the task's [yield]: give up the step *)
  | M_call of Shared.t * Value.t
      (** the task's [call obj op]: invoke now, the result arrives as the
          argument of the machine's next invocation *)
  | M_halt  (** the task body returned *)

type machine = Value.t -> machine_action
(** One invocation = one step. The argument is the result of the call the
    machine last suspended on, or {!Value.Unit} after a yield and at the
    machine's first step. *)

val spawn_machine :
  ?layer:Sink.layer -> t -> pid:int -> name:string -> machine -> unit
(** Like {!spawn}, for a compiled task body. *)

val crash_at : t -> pid:int -> step:int -> unit
(** Schedule [pid] to crash just before step [step] executes. A crashed
    process never takes another step; its in-flight operation (if any) is
    resolved at crash time so the object's state stays well defined. *)

val crashed : t -> pid:int -> bool

(** {2 Dynamic membership}

    Processes can join and leave mid-run. Membership changes are
    deterministic simulator events, keyed by step like everything else:
    a run with churn is still a pure function of (seed, policy, spawned
    code, scheduled events), so it replays byte-identically under
    {!Policy.replay}. Events scheduled for the same step apply in the
    order they were scheduled, before any crash due at that step. *)

val add_process : t -> int
(** Grow the membership by one and return the fresh pid ([n t] before the
    call). The new process has no tasks, so it is not runnable — and
    consumes no steps — until something is spawned on it; joining the
    membership and joining the schedule are separate moments. The dense
    process table grows amortized; existing pids are untouched. *)

val spawn_late :
  ?layer:Sink.layer -> ?at:int -> t -> name:string -> (unit -> unit) -> int
(** [spawn_late t ~name body] = {!add_process} plus a task activation:
    the fresh pid is returned immediately (so callers can wire objects or
    predictions to it), and [body] becomes runnable at step [at] (default
    now; an [at] in the past means now). The body can learn its own pid
    with {!self}. *)

val spawn_at :
  ?layer:Sink.layer -> t -> pid:int -> at:int -> name:string ->
  (unit -> unit) -> unit
(** Deferred {!spawn}: add a task to existing process [pid] that becomes
    runnable at step [at] — the join primitive for a cell built at
    capacity, where a dormant member starts doing work mid-run. An
    activation on a process that crashed or retired first is dropped. *)

val retire : ?at:int -> t -> pid:int -> unit
(** Gracefully remove [pid] from the membership at step [at] (default
    now). Retirement resolves the process's in-flight operation exactly
    as a crash does — the object's state stays well defined — and then
    unwinds its tasks and drops their storage (compaction), but emits
    {!Sink.Retire} rather than {!Sink.Crash}: the departure is a planned
    leave, not a failure, and checkers treat it accordingly. Retiring a
    crashed or already-retired process is a no-op. *)

val retired : t -> pid:int -> bool

val run : t -> policy:Policy.t -> steps:int -> unit
(** Execute up to [steps] further steps. Stops early only if no process has
    a runnable task. May be called repeatedly (e.g. with different policies)
    to build phased schedules. *)

(** {2 Step-replay hooks}

    Single-step drivers for the schedule explorer ({!Tbwf_check.Explore}):
    instead of delegating the whole run to a policy, a caller can inspect
    which processes are runnable and execute exactly one chosen step,
    interleaving its own bookkeeping (invariant checks, access-footprint
    capture) between steps. Both entry points apply due crashes first, so
    they compose with {!crash_at} exactly as {!run} does. *)

val runnable_pids : t -> int array
(** Pids with at least one runnable task, ascending — the choices a policy
    would be offered at the next step. Applies due crashes first. *)

val step : t -> pid:int -> unit
(** Execute one step of [pid]'s next runnable task (round-robin within the
    process, as in {!run}) and record it in the trace. Raises
    [Invalid_argument] if [pid] is not currently runnable. *)

val idle_step : t -> unit
(** Let a step pass with nobody scheduled, recording pid -1 in the trace —
    what {!run} does when the policy declines to pick. *)

val stop : t -> unit
(** Tear down all suspended tasks by resuming them with an exception. After
    [stop] the runtime can still be inspected but not run. *)

(** {2 Telemetry}

    A runtime carries one telemetry sink, {!Sink.nil} by default. With the
    nil sink installed every instrumentation site reduces to a boolean test,
    so the uninstrumented path stays fast; attaching a real sink (see
    [Tbwf_telemetry.Collector]) streams steps, operation invocations and
    responses, and library-level signals to it. The stream is a pure
    function of (seed, policy, spawned code), like the trace. *)

val set_sink : t -> Sink.t -> unit
(** Install [sink] as the runtime's telemetry sink. *)

val clear_sink : t -> unit
(** Reinstall {!Sink.nil}. *)

val telemetry_active : t -> bool
(** True iff the installed sink is active. Instrumented libraries guard on
    this before allocating signal payloads. *)

val signal : t -> pid:int -> Sink.signal -> unit
(** Emit a structured signal on behalf of [pid] at the current step. No-op
    when telemetry is inactive. *)

(** {2 Inside-task API}

    These may only be called from code running inside a task spawned on this
    runtime. *)

val yield : unit -> unit
(** Give up the current step; the task resumes the next time it is
    scheduled. One [yield] models one local step of the paper's model. *)

val call : Shared.t -> Value.t -> Value.t
(** Perform an operation on a shared object: invocation at the current
    step, response at the task's next scheduled step. *)

val await : (unit -> bool) -> unit
(** Busy-wait (one step per test) until the condition holds — the paper's
    [while ... do skip]. *)

val self : unit -> int
(** Pid of the process executing the current task. *)

exception Simulation_over
(** Raised inside suspended tasks by {!stop} to unwind them. Task code that
    installs [try ... with] around loops must re-raise it. *)
