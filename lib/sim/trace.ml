type op_event = {
  step : int;
  pid : int;
  obj_id : int;
  obj_name : string;
  op : Value.t;
  phase : [ `Invoke | `Respond of Value.t ];
}

(* The trace retains every step and every operation event for the whole
   run, so its representation is what the major GC re-marks cycle after
   cycle — a naive list of event records costs hundreds of ns/step on
   long runs just in marking. Events are therefore stored
   struct-of-arrays in Bigarrays (off-heap, never scanned), with operands
   and results compressed to int codes: reads, int-valued writes, unit /
   abort / fail / bool / int results — the overwhelming majority of a
   TBWF run's events — need no heap value at all. The rare other shapes
   (e.g. RMW ops, pair-valued message writes) go to a small [overflow]
   value array, the only GC-visible part of the log. [op_event] records
   are materialized on demand for the (cold) analysis API. *)

type ints =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_ints len : ints =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

(* Signed ints fold into non-negative codes by zigzag. *)
let zig i = if i >= 0 then 2 * i else (-2 * i) - 1
let unzig z = if z land 1 = 0 then z / 2 else -((z + 1) / 2)

(* Operand codes: negative = overflow slot -(code+1); 1 = read;
   2+zig i = write of [Int i]. Result codes: negative = overflow slot;
   1 = invocation event (no result); 2..6 = unit/abort/fail/false/true;
   7+zig i = [Int i]. An invocation is exactly code 1, so no in-band
   marker value can be forged by a weird workload result. *)
let res_invoke = 1

type t = {
  mutable enabled : bool;
      (* long-horizon runs (tbwf_soak) disable recording entirely: even
         off-heap Bigarrays grow ~8 bytes/step, which a memory-bounded
         multi-10M-step run cannot afford. A disabled trace stays empty. *)
  mutable steps : ints;  (* steps.{i} = pid of step i *)
  mutable len : int;
  mutable ev_step : ints;
  mutable ev_pid : ints;
  mutable ev_obj : ints;
  mutable ev_op : ints;  (* operand codes *)
  mutable ev_res : ints;  (* result codes *)
  mutable ev_name : ints;  (* per-event name id into [names] *)
  mutable n_events : int;
  mutable overflow : Value.t array;  (* values the codes can't carry *)
  mutable n_overflow : int;
  mutable names : string array;  (* name id -> interned name *)
  mutable n_names : int;
  (* obj_id -> (last name seen, its id): the runtime passes the same
     physically-equal name string for a given object on every event, so
     interning is one array load + pointer compare on the hot path. *)
  mutable cache_name : string array;
  mutable cache_nid : int array;
}

let create () =
  {
    enabled = true;
    steps = make_ints 1024;
    len = 0;
    ev_step = make_ints 1024;
    ev_pid = make_ints 1024;
    ev_obj = make_ints 1024;
    ev_op = make_ints 1024;
    ev_res = make_ints 1024;
    ev_name = make_ints 1024;
    n_events = 0;
    overflow = Array.make 64 Value.Unit;
    n_overflow = 0;
    names = Array.make 16 "";
    n_names = 0;
    cache_name = Array.make 16 "";
    cache_nid = Array.make 16 (-1);
  }

let grow_ints (a : ints) : ints =
  let cap = Bigarray.Array1.dim a in
  let b = make_ints (2 * cap) in
  Bigarray.Array1.blit a (Bigarray.Array1.sub b 0 cap);
  b

let disable t = t.enabled <- false
let enabled t = t.enabled

let record_step t ~pid =
  if t.enabled then begin
    if t.len = Bigarray.Array1.dim t.steps then t.steps <- grow_ints t.steps;
    Bigarray.Array1.unsafe_set t.steps t.len pid;
    t.len <- t.len + 1
  end

let grow_events t =
  t.ev_step <- grow_ints t.ev_step;
  t.ev_pid <- grow_ints t.ev_pid;
  t.ev_obj <- grow_ints t.ev_obj;
  t.ev_op <- grow_ints t.ev_op;
  t.ev_res <- grow_ints t.ev_res;
  t.ev_name <- grow_ints t.ev_name

let push_overflow t v =
  let cap = Array.length t.overflow in
  if t.n_overflow = cap then begin
    let bigger = Array.make (2 * cap) Value.Unit in
    Array.blit t.overflow 0 bigger 0 cap;
    t.overflow <- bigger
  end;
  t.overflow.(t.n_overflow) <- v;
  t.n_overflow <- t.n_overflow + 1;
  -t.n_overflow  (* slot k encodes as -(k+1) *)

let op_code t (op : Value.t) =
  if op == Value.read_op then 1
  else
    match op with
    | Value.Pair (Value.Str "write", Value.Int i) -> 2 + zig i
    | Value.Pair (Value.Str "read", Value.Unit) -> 1
    | op -> push_overflow t op

let decode_op t code =
  if code < 0 then t.overflow.(-code - 1)
  else if code = 1 then Value.read_op
  else Value.write_op (Value.Int (unzig (code - 2)))

let res_code t (res : Value.t) =
  match res with
  | Value.Unit -> 2
  | Value.Abort -> 3
  | Value.Fail -> 4
  | Value.Bool false -> 5
  | Value.Bool true -> 6
  | Value.Int i -> 7 + zig i
  | res -> push_overflow t res

let decode_res t code =
  if code < 0 then t.overflow.(-code - 1)
  else
    match code with
    | 2 -> Value.Unit
    | 3 -> Value.Abort
    | 4 -> Value.Fail
    | 5 -> Value.Bool false
    | 6 -> Value.Bool true
    | code -> Value.Int (unzig (code - 7))

let intern_slow t obj_id obj_name =
  let nid = ref (-1) in
  for k = 0 to t.n_names - 1 do
    if !nid < 0 && String.equal t.names.(k) obj_name then nid := k
  done;
  if !nid < 0 then begin
    if t.n_names = Array.length t.names then begin
      let bigger = Array.make (2 * t.n_names) "" in
      Array.blit t.names 0 bigger 0 t.n_names;
      t.names <- bigger
    end;
    t.names.(t.n_names) <- obj_name;
    nid := t.n_names;
    t.n_names <- t.n_names + 1
  end;
  let len = Array.length t.cache_name in
  if obj_id >= len then begin
    let cap = max (obj_id + 1) (2 * len) in
    let names = Array.make cap "" in
    let nids = Array.make cap (-1) in
    Array.blit t.cache_name 0 names 0 len;
    Array.blit t.cache_nid 0 nids 0 len;
    t.cache_name <- names;
    t.cache_nid <- nids
  end;
  t.cache_name.(obj_id) <- obj_name;
  t.cache_nid.(obj_id) <- !nid;
  !nid

let name_id t obj_id obj_name =
  if obj_id < Array.length t.cache_name && t.cache_name.(obj_id) == obj_name
  then t.cache_nid.(obj_id)
  else intern_slow t obj_id obj_name

let record_event t ~step ~pid ~obj_id ~obj_name ~op_code:oc ~res_code:rc =
  if t.n_events = Bigarray.Array1.dim t.ev_step then grow_events t;
  let nid = name_id t obj_id obj_name in
  let i = t.n_events in
  Bigarray.Array1.unsafe_set t.ev_step i step;
  Bigarray.Array1.unsafe_set t.ev_pid i pid;
  Bigarray.Array1.unsafe_set t.ev_obj i obj_id;
  Bigarray.Array1.unsafe_set t.ev_op i oc;
  Bigarray.Array1.unsafe_set t.ev_res i rc;
  Bigarray.Array1.unsafe_set t.ev_name i nid;
  t.n_events <- i + 1

let record_invoke t ~step ~pid ~obj_id ~obj_name ~op =
  if t.enabled then
    record_event t ~step ~pid ~obj_id ~obj_name ~op_code:(op_code t op)
      ~res_code:res_invoke

let record_respond t ~step ~pid ~obj_id ~obj_name ~op ~result =
  if t.enabled then
    record_event t ~step ~pid ~obj_id ~obj_name ~op_code:(op_code t op)
      ~res_code:(res_code t result)

let record_op t ev =
  match ev.phase with
  | `Invoke ->
    record_invoke t ~step:ev.step ~pid:ev.pid ~obj_id:ev.obj_id
      ~obj_name:ev.obj_name ~op:ev.op
  | `Respond result ->
    record_respond t ~step:ev.step ~pid:ev.pid ~obj_id:ev.obj_id
      ~obj_name:ev.obj_name ~op:ev.op ~result

let length t = t.len

let pid_at t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.pid_at: out of range";
  t.steps.{i}

let steps_of t ~pid =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if t.steps.{i} = pid then acc := i :: !acc
  done;
  !acc

let step_counts t ~n =
  let counts = Array.make n 0 in
  for i = 0 to t.len - 1 do
    let p = t.steps.{i} in
    if p >= 0 && p < n then counts.(p) <- counts.(p) + 1
  done;
  counts

let schedule t = List.init t.len (fun i -> t.steps.{i})

let event t i =
  let rc = t.ev_res.{i} in
  {
    step = t.ev_step.{i};
    pid = t.ev_pid.{i};
    obj_id = t.ev_obj.{i};
    obj_name = t.names.(t.ev_name.{i});
    op = decode_op t t.ev_op.{i};
    phase = (if rc = res_invoke then `Invoke else `Respond (decode_res t rc));
  }

let n_ops t = t.n_events

let ops t = List.init t.n_events (event t)

let ops_from t mark =
  let fresh = t.n_events - mark in
  if fresh <= 0 then [] else List.init fresh (fun i -> event t (mark + i))

let iter_ops t f =
  for i = 0 to t.n_events - 1 do
    f (event t i)
  done

let fingerprint t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sched:";
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (string_of_int t.steps.{i});
    Buffer.add_char buf ','
  done;
  Buffer.add_string buf "\nops:\n";
  iter_ops t (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %s %s %s\n" ev.step ev.pid ev.obj_id
           ev.obj_name
           (Value.to_string ev.op)
           (match ev.phase with
           | `Invoke -> "I"
           | `Respond r -> "R " ^ Value.to_string r)));
  Buffer.contents buf

let writes_in_window t ~obj_prefix ~from_step ~to_step =
  let counts = Hashtbl.create 16 in
  let prefix_matches name =
    String.length name >= String.length obj_prefix
    && String.sub name 0 (String.length obj_prefix) = obj_prefix
  in
  for i = 0 to t.n_events - 1 do
    let step = t.ev_step.{i} in
    let rc = t.ev_res.{i} in
    if
      rc <> res_invoke
      && step >= from_step && step <= to_step
      && Value.is_write (decode_op t t.ev_op.{i})
      && rc <> 3 (* Abort *)
      && (rc >= 0 || not (Value.equal t.overflow.(-rc - 1) Value.Abort))
      && prefix_matches t.names.(t.ev_name.{i})
    then begin
      let pid = t.ev_pid.{i} in
      let current = Option.value (Hashtbl.find_opt counts pid) ~default:0 in
      Hashtbl.replace counts pid (current + 1)
    end
  done;
  counts
