type op_event = {
  step : int;
  pid : int;
  obj_id : int;
  obj_name : string;
  op : Value.t;
  phase : [ `Invoke | `Respond of Value.t ];
}

type t = {
  mutable steps : int array;  (* steps.(i) = pid of step i *)
  mutable len : int;
  mutable events : op_event list;  (* reverse chronological *)
  mutable n_events : int;
}

let create () = { steps = Array.make 1024 (-1); len = 0; events = []; n_events = 0 }

let record_step t ~pid =
  if t.len = Array.length t.steps then begin
    let bigger = Array.make (2 * t.len) (-1) in
    Array.blit t.steps 0 bigger 0 t.len;
    t.steps <- bigger
  end;
  t.steps.(t.len) <- pid;
  t.len <- t.len + 1

let record_op t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let length t = t.len

let pid_at t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.pid_at: out of range";
  t.steps.(i)

let steps_of t ~pid =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if t.steps.(i) = pid then acc := i :: !acc
  done;
  !acc

let step_counts t ~n =
  let counts = Array.make n 0 in
  for i = 0 to t.len - 1 do
    let p = t.steps.(i) in
    if p >= 0 && p < n then counts.(p) <- counts.(p) + 1
  done;
  counts

let schedule t = Array.to_list (Array.sub t.steps 0 t.len)

let ops t = List.rev t.events

let n_ops t = t.n_events

let ops_from t mark =
  (* events is reverse-chronological; the newest (n_events - mark) entries
     are the ones recorded since the mark *)
  let fresh = t.n_events - mark in
  if fresh <= 0 then []
  else begin
    let rec take k = function
      | ev :: rest when k > 0 -> ev :: take (k - 1) rest
      | _ -> []
    in
    List.rev (take fresh t.events)
  end

let iter_ops t f = List.iter f (List.rev t.events)

let fingerprint t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sched:";
  Array.iter
    (fun pid ->
      Buffer.add_string buf (string_of_int pid);
      Buffer.add_char buf ',')
    (Array.sub t.steps 0 t.len);
  Buffer.add_string buf "\nops:\n";
  iter_ops t (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %s %s %s\n" ev.step ev.pid ev.obj_id
           ev.obj_name
           (Value.to_string ev.op)
           (match ev.phase with
           | `Invoke -> "I"
           | `Respond r -> "R " ^ Value.to_string r)));
  Buffer.contents buf

let writes_in_window t ~obj_prefix ~from_step ~to_step =
  let counts = Hashtbl.create 16 in
  let prefix_matches name =
    String.length name >= String.length obj_prefix
    && String.sub name 0 (String.length obj_prefix) = obj_prefix
  in
  let record ev =
    match ev.phase with
    | `Respond result
      when ev.step >= from_step && ev.step <= to_step
           && Value.is_write ev.op
           && (not (Value.equal result Value.Abort))
           && prefix_matches ev.obj_name ->
      let current = Option.value (Hashtbl.find_opt counts ev.pid) ~default:0 in
      Hashtbl.replace counts ev.pid (current + 1)
    | `Respond _ | `Invoke -> ()
  in
  List.iter record t.events;
  counts
