(* Telemetry sink: the runtime's hook surface for observers.

   The runtime (and the libraries built on it) emit structured events
   through a sink record. The default sink is [nil], whose callbacks are
   no-ops and whose [active] flag is false; every instrumentation site
   guards on [active] *before* building the event's payload, so with the
   nil sink installed the only cost on the hot path is one boolean load
   and branch. Attaching a real sink (see lib/telemetry) turns the same
   sites into a deterministic event stream: events are keyed by the
   simulator's step counter, never by wall-clock, so the same (seed,
   policy) produces a byte-identical stream. *)

type layer = App | Omega | Monitor | Other

let layer_name = function
  | App -> "app"
  | Omega -> "omega"
  | Monitor -> "monitor"
  | Other -> "other"

let layer_index = function App -> 0 | Omega -> 1 | Monitor -> 2 | Other -> 3
let layers = [ App; Omega; Monitor; Other ]
let n_layers = 4

(* Structured events from the libraries above the step loop. Payloads are
   allocated only when a sink is active (call sites guard). *)
type signal =
  | Abort_decision of { obj_name : string; is_write : bool }
      (** an abortable register chose to abort the current operation *)
  | Leader_view of { leader : int option }
      (** the acting process's Ω∆ view changed ([None] = no leader) *)
  | Suspicion_flip of { watched : int; suspected : bool }
      (** activity monitor A(p,q) at the acting process p flipped its
          estimate of [watched] = q *)
  | Crash of { pid : int }  (** the runtime crashed process [pid] *)
  | Retire of { pid : int }
      (** the runtime gracefully retired process [pid]: it left the
          membership with any in-flight operation resolved first, so the
          departure is not a failure — checkers and telemetry count it
          apart from {!Crash} *)
  | Op_complete
      (** the acting process completed one workload-level operation (a
          full [Tbwf.invoke] round trip, not an individual register call
          — emitted by [Workload], so it counts exactly what
          [Workload.stats.completed] counts) *)
  | Message of { src : int; dst : int; latency : int; dropped : bool }
      (** the simulated network accepted a message from [src] to [dst];
          [latency] is the assigned delivery delay in steps, and
          [dropped] is true when the message was cut by a partition or a
          loss draw (then [latency] is the would-have-been delay) *)

type t = {
  active : bool;
  on_step : step:int -> pid:int -> layer:layer -> unit;
  on_invoke :
    step:int ->
    pid:int ->
    layer:layer ->
    obj_id:int ->
    obj_name:string ->
    op:Value.t ->
    unit;
  on_respond :
    step:int ->
    pid:int ->
    layer:layer ->
    obj_id:int ->
    obj_name:string ->
    op:Value.t ->
    result:Value.t ->
    unit;
  on_signal : step:int -> pid:int -> signal -> unit;
}

(* Fan one event stream out to two sinks, first [a] then [b] — the
   composition point that lets a collector and an online checker watch
   the same run. The tee is active if either side is, and call sites
   guard on the *tee*'s flag, so an inactive side just receives (and
   ignores) events its partner paid to build. *)
let tee a b =
  {
    active = a.active || b.active;
    on_step =
      (fun ~step ~pid ~layer ->
        a.on_step ~step ~pid ~layer;
        b.on_step ~step ~pid ~layer);
    on_invoke =
      (fun ~step ~pid ~layer ~obj_id ~obj_name ~op ->
        a.on_invoke ~step ~pid ~layer ~obj_id ~obj_name ~op;
        b.on_invoke ~step ~pid ~layer ~obj_id ~obj_name ~op);
    on_respond =
      (fun ~step ~pid ~layer ~obj_id ~obj_name ~op ~result ->
        a.on_respond ~step ~pid ~layer ~obj_id ~obj_name ~op ~result;
        b.on_respond ~step ~pid ~layer ~obj_id ~obj_name ~op ~result);
    on_signal =
      (fun ~step ~pid s ->
        a.on_signal ~step ~pid s;
        b.on_signal ~step ~pid s);
  }

let nil =
  {
    active = false;
    on_step = (fun ~step:_ ~pid:_ ~layer:_ -> ());
    on_invoke =
      (fun ~step:_ ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ -> ());
    on_respond =
      (fun ~step:_ ~pid:_ ~layer:_ ~obj_id:_ ~obj_name:_ ~op:_ ~result:_ ->
        ());
    on_signal = (fun ~step:_ ~pid:_ _ -> ());
  }
