(** Execution backend selection.

    The simulator has two ways to execute a system's processes:

    - {!Reference}: the effects-based runtime — task bodies are ordinary
      OCaml code suspended with effect handlers at every step boundary.
      This is the executable semantics: slow, direct, obviously faithful
      to the paper's pseudo-code.
    - {!Compiled}: the same processes compiled into flat step tables — a
      direct-threaded interpreter over dense int-indexed program counters
      and registers (see [Tbwf_compiled]), eliminating effects-handler
      dispatch and per-step closure allocation from the hot path.

    The two backends are required to be observationally byte-identical:
    same {!Trace.fingerprint}, same telemetry snapshots, for every
    (system, seed, policy, fault plan). [Tbwf_check.Differential] and
    [test/test_differential.ml] enforce the contract. *)

type t = Reference | Compiled

val all : t list
val to_string : t -> string

val of_string : string -> (t, string) result
(** Total inverse of {!to_string}; [Error] lists the known names. *)

val pp : Format.formatter -> t -> unit
