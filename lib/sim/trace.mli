(** Run traces.

    A trace records which process took each step, plus a separate compact
    log of shared-object operations (invocations and responses). Analyses
    such as empirical timeliness classification (Definitions 1–2 of the
    paper) and the write-efficiency experiment read the trace after a run. *)

type op_event = {
  step : int;          (** step at which the event happened *)
  pid : int;
  obj_id : int;
  obj_name : string;
  op : Value.t;
  phase : [ `Invoke | `Respond of Value.t ];
      (** [`Respond r] carries the result delivered to the caller *)
}

type t

val create : unit -> t

val disable : t -> unit
(** Stop recording: subsequent {!record_step}/{!record_op} calls are
    no-ops and the trace stays at its current contents (normally empty —
    disable before running). Long-horizon soak runs use this to stay
    memory-bounded; analyses that need the trace must not disable it. *)

val enabled : t -> bool

val record_step : t -> pid:int -> unit
(** Append one scheduler step taken by [pid]. Steps are numbered from 0 in
    the order recorded. *)

val record_op : t -> op_event -> unit

val record_invoke :
  t -> step:int -> pid:int -> obj_id:int -> obj_name:string -> op:Value.t ->
  unit
(** Hot-path form of {!record_op} for an [`Invoke] event: no [op_event]
    record is allocated. The runtime's call bookkeeping uses these. *)

val record_respond :
  t ->
  step:int -> pid:int -> obj_id:int -> obj_name:string -> op:Value.t ->
  result:Value.t ->
  unit
(** Hot-path form of {!record_op} for a [`Respond result] event. *)

val length : t -> int
(** Number of steps recorded so far. *)

val pid_at : t -> int -> int
(** [pid_at t i] is the process that took step [i]. *)

val steps_of : t -> pid:int -> int list
(** Ascending list of step indices taken by [pid]. *)

val step_counts : t -> n:int -> int array
(** [step_counts t ~n] gives, for each pid < n, its number of steps. *)

val schedule : t -> int list
(** The pid of every step recorded so far, in order (-1 for idle steps) —
    the run's schedule, ready for {!Schedule.make}. *)

val ops : t -> op_event list
(** All operation events, in chronological order. *)

val n_ops : t -> int
(** Number of operation events recorded so far. Use as a mark for
    {!ops_from} to observe the events of a single step. *)

val ops_from : t -> int -> op_event list
(** [ops_from t mark] is the chronological list of operation events
    recorded after the first [mark] ones — i.e. since [n_ops t] returned
    [mark]. The schedule explorer uses this to read off the shared-object
    access footprint of the step it just executed. *)

val iter_ops : t -> (op_event -> unit) -> unit

val fingerprint : t -> string
(** A canonical rendering of the whole trace — every scheduler step and
    every operation event, operands and results included. Two runs are
    byte-identical iff their fingerprints are equal, which is how
    replay determinism (same seed, same plan, same schedule ⇒ same run)
    is asserted without diffing structures field by field. *)

val writes_in_window : t -> obj_prefix:string -> from_step:int -> to_step:int -> (int, int) Hashtbl.t
(** Count successful shared-register write responses per pid in the given
    step window, restricted to objects whose name starts with [obj_prefix].
    Aborted writes (result ⊥) are not counted. *)
