type t = { n : int; seed : int64; pids : int list }

let magic = "tbwf-sched"
let version = "v1"

let make ?(seed = 0xC0FFEEL) ~n pids =
  if n < 1 then invalid_arg "Schedule.make: need at least one process";
  List.iter
    (fun pid ->
      if pid < -1 || pid >= n then
        invalid_arg (Fmt.str "Schedule.make: pid %d out of range" pid))
    pids;
  { n; seed; pids }

let of_trace ?seed ~n trace = make ?seed ~n (Trace.schedule trace)

let n t = t.n
let seed t = t.seed
let pids t = t.pids
let length t = List.length t.pids
let to_policy t = Policy.replay t.pids
let to_policy_strict t = Policy.replay_strict t.pids

(* Run-length encode the pid sequence: "0x12 1 _x3 2" means twelve steps of
   pid 0, one of pid 1, three idle steps, one of pid 2. *)
let encode_pids pids =
  let token pid count =
    let name = if pid < 0 then "_" else string_of_int pid in
    if count = 1 then name else Fmt.str "%sx%d" name count
  in
  let buf = Buffer.create 64 in
  let flush_group pid count =
    if count > 0 then begin
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (token pid count)
    end
  in
  let cur = ref (-2) and count = ref 0 in
  List.iter
    (fun pid ->
      if pid = !cur then incr count
      else begin
        flush_group !cur !count;
        cur := pid;
        count := 1
      end)
    pids;
  flush_group !cur !count;
  Buffer.contents buf

let to_string t =
  Fmt.str "%s %s n=%d seed=%Ld\n%s\n" magic version t.n t.seed
    (encode_pids t.pids)

let pp fmt t = Fmt.string fmt (to_string t)

let decode_token tok =
  let pid_of s =
    if String.equal s "_" then Ok (-1)
    else
      match int_of_string_opt s with
      | Some pid when pid >= 0 -> Ok pid
      | Some _ | None -> Error (Fmt.str "bad pid %S" s)
  in
  match String.index_opt tok 'x' with
  | None -> Result.map (fun pid -> pid, 1) (pid_of tok)
  | Some i ->
    let pid_part = String.sub tok 0 i in
    let count_part = String.sub tok (i + 1) (String.length tok - i - 1) in
    (match pid_of pid_part, int_of_string_opt count_part with
    | Ok pid, Some count when count > 0 -> Ok (pid, count)
    | Ok _, _ -> Error (Fmt.str "bad repeat count in %S" tok)
    | (Error _ as e), _ -> e)

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l ->
           String.length l > 0 && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | [] -> Error "empty schedule"
  | header :: body ->
    let* n, seed =
      match String.split_on_char ' ' header with
      | m :: v :: fields when String.equal m magic && String.equal v version ->
        let assoc =
          List.filter_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i ->
                Some
                  ( String.sub f 0 i,
                    String.sub f (i + 1) (String.length f - i - 1) )
              | None -> None)
            fields
        in
        let* n =
          match List.assoc_opt "n" assoc with
          | Some s ->
            (match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | Some _ | None -> Error "bad n= field")
          | None -> Error "missing n= field"
        in
        let* seed =
          match List.assoc_opt "seed" assoc with
          | Some s ->
            (match Int64.of_string_opt s with
            | Some seed -> Ok seed
            | None -> Error "bad seed= field")
          | None -> Ok 0xC0FFEEL
        in
        Ok (n, seed)
      | m :: v :: _ ->
        Error (Fmt.str "bad header %S %S (want %S %s)" m v magic version)
      | _ -> Error "bad header line"
    in
    let tokens =
      List.concat_map (String.split_on_char ' ') body
      |> List.filter (fun tok -> String.length tok > 0)
    in
    let* pids =
      List.fold_left
        (fun acc tok ->
          let* acc = acc in
          let* pid, count = decode_token tok in
          if pid >= n then Error (Fmt.str "pid %d out of range (n=%d)" pid n)
          else Ok (List.rev_append (List.init count (fun _ -> pid)) acc))
        (Ok []) tokens
    in
    Ok { n; seed; pids = List.rev pids }
