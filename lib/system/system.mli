(** The stack registry: one place that wires every system under test.

    A {e system} is a complete object stack — an Ω∆ implementation (or
    none), a query-abortable object, and an invoke path — identified by
    {!id} and catalogued in {!registry} with its description and paper
    reference. Every consumer of a full stack (the experiment scenarios,
    the nemesis campaigns, the trace/nemesis/demo CLIs and the bench
    harness) builds it through {!build}, or through the lower-level
    {!install_atomic}/{!install_abortable}/{!install_naive}/{!create_qa}
    when it needs the raw implementation records (monitor meshes, counter
    registers) rather than a client-ready stack.

    Refactor safety is mechanized: [test/golden/system_fingerprints.txt]
    pins each system's [Trace.fingerprint] under two schedules as captured
    from the historical per-consumer wiring, and [test/test_system.ml]
    asserts {!build} still reproduces them byte-for-byte. *)

open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_core

(** {2 The registry} *)

type id =
  | Tbwf_atomic  (** Figs 2–3 Ω∆ over atomic registers + Fig 7 (Thm 11–12, 14) *)
  | Tbwf_abortable  (** Figs 4–6 Ω∆ over abortable registers + Fig 7 (Thm 13) *)
  | Tbwf_universal
      (** as [Tbwf_abortable] but with the query-abortable object itself
          built by the universal QA construction *)
  | Naive_booster  (** min-pid leader, adaptive timeouts, no punishment *)
  | Retry  (** obstruction-free retry, no boosting at all *)

type info = {
  id : id;
  name : string;  (** stable CLI identifier, e.g. ["tbwf-atomic"] *)
  summary : string;  (** one-line description *)
  figure : string;  (** paper reference (figures/theorems/sections) *)
}

val registry : info list
(** All five systems, paper systems first. *)

val all : id list
val paper_systems : id list
val baseline_systems : id list

val info : id -> info
val to_string : id -> string
val of_string : string -> (id, string) result
(** Total inverse of {!to_string} over registry names; [Error] lists the
    known names. *)

val pp : Format.formatter -> id -> unit

val pp_registry : Format.formatter -> unit -> unit
(** The [list-systems] rendering: one entry per system with its summary
    and paper reference. *)

(** {2 Low-level wiring}

    Named entry points over the individual installers, so that stack
    construction outside [lib/system] is grep-verifiably confined to this
    module (tests excepted). They return the full implementation records —
    monitor meshes, counter registers, heartbeat meshes — for experiments
    that measure the internals rather than the client interface. *)

val install_atomic :
  ?self_punishment:bool ->
  ?factory:Reg.factory ->
  ?n:int ->
  Runtime.t ->
  Omega_registers.t
(** The Figure 3 Ω∆ over activity monitors and atomic registers.
    [self_punishment] (default true) is the E11 ablation switch.
    [factory]/[n] select the register substrate and restrict the election
    (see {!Omega_registers.install}). *)

val install_abortable :
  ?factory:Reg.factory ->
  ?n:int ->
  Runtime.t ->
  policy:Abort_policy.t ->
  ?write_effect:Abort_policy.write_effect ->
  unit ->
  Omega_abortable.t
(** The Figure 6 Ω∆ over abortable registers; [policy] governs when
    concurrent register operations abort. *)

val install_naive :
  ?factory:Reg.factory -> ?n:int -> Runtime.t -> Baselines.Naive_booster.t
(** The non-gracefully-degrading booster baseline. *)

val create_qa :
  ?universal:bool ->
  Runtime.t ->
  name:string ->
  spec:Seq_spec.t ->
  policy:Abort_policy.t ->
  ?effect_on_abort:Abort_policy.write_effect ->
  unit ->
  Qa_intf.t
(** A query-abortable object: the direct implementation by default, the
    layered universal (RMW-cell) construction with [universal:true]. *)

(** {2 Building a full stack} *)

(** What the stack's registers are made of.

    [Shared_memory] is the paper's model: registers are simulator shared
    objects with intrinsic timeliness. [Message_passing config] replaces
    every register the Ω∆ uses with an emulation over a simulated
    crash-prone network ({!Tbwf_net.Net}): atomic MWMR registers by the
    ABD quorum protocol, SWMR regular registers by the one-phase
    time-efficient protocol, served by [config.replicas] replica
    processes appended after the [n] clients. Register timeliness then
    becomes {e emergent} — a function of link timeliness to a live
    replica majority.

    The query-abortable object itself stays a shared simulator object on
    both substrates: QA has consensus number > 1, so it cannot be built
    from message-passing registers alone — the substrate axis moves
    exactly the part of the stack the paper builds from registers. *)
type substrate = Shared_memory | Message_passing of Tbwf_net.Net.config

val substrate_name : substrate -> string
(** ["shared-memory"] / ["message-passing"] — the CLI identifiers. *)

type stack = {
  system : id;
  backend : Backend.t;
      (** which backend executes the stack's tasks; identical observable
          behaviour either way (see {!Backend}) *)
  substrate : substrate;
  rt : Runtime.t;
  net : Tbwf_net.Net.t option;
      (** the simulated network; [None] on shared memory *)
  cluster : Mp_reg.Cluster.t option;
      (** the replica cluster serving the registers; [None] on shared
          memory *)
  handles : Omega_spec.handle array;
      (** Ω∆ output handles, indexed by pid; [[||]] for {!Retry} *)
  qa : Qa_intf.t;
  tbwf : Tbwf.t option;  (** [None] for {!Retry} (no transformation) *)
  invoke : Value.t -> Value.t;
      (** the system's operation path: [Tbwf.invoke] for boosted systems,
          the bare retry automaton for {!Retry} *)
  stats : Workload.stats;
  telemetry : Tbwf_telemetry.Collector.t option;
}

val build :
  ?backend:Backend.t ->
  ?substrate:substrate ->
  ?seed:int64 ->
  ?record_trace:bool ->
  ?canonical:bool ->
  ?qa_policy:Abort_policy.t ->
  ?mesh_policy:Abort_policy.t ->
  ?qa_universal:bool ->
  ?spec:Seq_spec.t ->
  ?next_op:(pid:int -> k:int -> Value.t option) ->
  ?client_pids:int list ->
  ?telemetry:bool ->
  ?telemetry_window:int ->
  ?telemetry_retain:int ->
  n:int ->
  id ->
  stack
(** Wire one system end to end: create the runtime, optionally attach a
    telemetry collector, install the system's Ω∆, create its
    query-abortable object (named [spec.name ^ "-qa"]), assemble the
    invoke path and spawn the client workload.

    Defaults: [canonical:true] (Definition 6's leader-wait guard),
    [qa_policy]/[mesh_policy] always-abort-on-contention, [qa_universal]
    per the system (true only for {!Tbwf_universal}; overridable, e.g. an
    atomic-Ω∆ stack over the universal QA object), [spec] the counter,
    [next_op] an endless stream of increments, [client_pids] all pids,
    [telemetry:false].

    [record_trace:false] disables trace recording (see {!Runtime.create})
    and [telemetry_retain] bounds the collector's per-window series to
    the most recent windows (see {!Tbwf_telemetry.Collector.attach}) —
    together the memory-bounded configuration long soak runs use.

    [substrate] (default {!Shared_memory}) selects what registers are
    made of; with [Message_passing config] the runtime is created
    [n + config.replicas] processes wide, the network and replica cluster
    are wired between the collector and the Ω∆, and the Ω∆ installs with
    the quorum-register factory restricted to the [n] client pids. Raises
    [Invalid_argument] when combined with the compiled backend — the
    machines need direct [Shared.t] handles, which quorum registers do
    not have.

    Wiring order (runtime, collector, [network, cluster,] Ω∆, QA,
    transformation, workload) is part of the determinism contract: it
    fixes the object-id assignment and hence the trace fingerprint for a
    given (seed, policy, code).

    [backend] (default {!Backend.Reference}) selects how the stack's tasks
    execute: effect coroutines, or the compiled machines of
    [Tbwf_compiled]. Both wire objects and tasks in the same order and are
    observationally byte-identical — same trace fingerprints, same
    telemetry snapshots — as enforced by [Tbwf_check.Differential]. *)
