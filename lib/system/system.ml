open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_core

(* --- the registry -------------------------------------------------------- *)

type id =
  | Tbwf_atomic
  | Tbwf_abortable
  | Tbwf_universal
  | Naive_booster
  | Retry

type info = {
  id : id;
  name : string;
  summary : string;
  figure : string;
}

let registry =
  [
    {
      id = Tbwf_atomic;
      name = "tbwf-atomic";
      summary =
        "TBWF transformation over the atomic-register \xE2\x84\xA6\xCE\x94 \
         (activity monitors + counter registers)";
      figure = "Figs. 2-3 + 7 (Thm 11-12, 14)";
    };
    {
      id = Tbwf_abortable;
      name = "tbwf-abortable";
      summary =
        "TBWF transformation over the abortable-register \xE2\x84\xA6\xCE\x94 \
         (message channels + heartbeats)";
      figure = "Figs. 4-6 + 7 (Thm 13)";
    };
    {
      id = Tbwf_universal;
      name = "tbwf-universal";
      summary =
        "as tbwf-abortable, with the query-abortable object itself built by \
         the universal QA construction over an abortable RMW cell";
      figure = "Figs. 4-6 + 7, QA per ref [2]";
    };
    {
      id = Naive_booster;
      name = "naive-booster";
      summary =
        "boosting baseline: min-alive-pid leader, adaptive timeouts, no \
         punishment of timeliness faults";
      figure = "S1.2 baseline (E2)";
    };
    {
      id = Retry;
      name = "retry";
      summary =
        "obstruction-free baseline: op/query/retry automaton with no leader \
         gate at all";
      figure = "S2 / Fig. 8 sans gate (E2/E3)";
    };
  ]

let all = List.map (fun e -> e.id) registry
let paper_systems = [ Tbwf_atomic; Tbwf_abortable; Tbwf_universal ]
let baseline_systems = [ Naive_booster; Retry ]

let info id = List.find (fun e -> e.id = id) registry
let to_string id = (info id).name

let of_string s =
  match List.find_opt (fun e -> String.equal e.name s) registry with
  | Some e -> Ok e.id
  | None ->
    Error
      (Fmt.str "unknown system %S (known: %s)" s
         (String.concat ", " (List.map (fun e -> e.name) registry)))

let pp fmt id = Fmt.string fmt (to_string id)

let pp_registry fmt () =
  Fmt.pf fmt "@[<v>";
  List.iter
    (fun e ->
      Fmt.pf fmt "%-16s %s@,%-16s [%s]@," e.name e.summary "" e.figure)
    registry;
  Fmt.pf fmt "@]"

(* --- low-level wiring ---------------------------------------------------- *)

(* Thin, named entry points over the individual installers: every
   non-test consumer routes stack construction through this module, so a
   grep for the raw installers outside [lib/system] finds only tests. *)

let install_atomic ?self_punishment ?factory ?n rt =
  Omega_registers.install ?self_punishment ?factory ?n rt

let install_abortable ?factory ?n rt ~policy ?write_effect () =
  Omega_abortable.install ?factory ?n rt ~policy ?write_effect ()

let install_naive ?factory ?n rt = Baselines.Naive_booster.install ?factory ?n rt

let create_qa ?(universal = false) rt ~name ~spec ~policy ?effect_on_abort () =
  if universal then
    Qa_universal.create rt ~name ~spec ~policy ?effect_on_abort ()
  else Qa_object.create rt ~name ~spec ~policy ?effect_on_abort ()

(* --- building a full stack ----------------------------------------------- *)

type substrate = Shared_memory | Message_passing of Tbwf_net.Net.config

let substrate_name = function
  | Shared_memory -> "shared-memory"
  | Message_passing _ -> "message-passing"

type stack = {
  system : id;
  backend : Backend.t;
  substrate : substrate;
  rt : Runtime.t;
  net : Tbwf_net.Net.t option;
  cluster : Mp_reg.Cluster.t option;
  handles : Omega_spec.handle array;
  qa : Qa_intf.t;
  tbwf : Tbwf.t option;
  invoke : Value.t -> Value.t;
  stats : Workload.stats;
  telemetry : Tbwf_telemetry.Collector.t option;
}

let default_qa_universal = function
  | Tbwf_universal -> true
  | Tbwf_atomic | Tbwf_abortable | Naive_booster | Retry -> false

let build ?(backend = Backend.Reference) ?(substrate = Shared_memory) ?seed
    ?(record_trace = true) ?(canonical = true) ?(qa_policy = Abort_policy.Always)
    ?(mesh_policy = Abort_policy.Always) ?qa_universal ?(spec = Counter.spec)
    ?(next_op = Workload.forever Counter.inc) ?client_pids
    ?(telemetry = false) ?telemetry_window ?telemetry_retain ~n id =
  (match backend, substrate with
  | Backend.Compiled, Message_passing _ ->
    (* The compiled machines talk to register objects through direct
       Shared.t handles; the quorum emulation has none. Rejecting here
       keeps the two backends byte-identical wherever both exist, rather
       than letting them silently diverge. *)
    invalid_arg
      "System.build: the compiled backend requires the shared-memory substrate"
  | (Backend.Reference | Backend.Compiled), _ -> ());
  let rt =
    match substrate with
    | Shared_memory -> Runtime.create ?seed ~record_trace ~n ()
    | Message_passing config ->
      (* Replica server pids ride after the n clients, inside the same
         deterministic scheduler. *)
      Runtime.create ?seed ~record_trace
        ~n:(n + config.Tbwf_net.Net.replicas) ()
  in
  (* The collector only installs a sink; attaching before the stack is
     wired records nothing and keeps the trace identical, while covering
     the wiring itself once spans start flowing. *)
  let collector =
    if telemetry then
      Some
        (Tbwf_telemetry.Collector.attach ?window:telemetry_window
           ?retain:telemetry_retain rt)
    else None
  in
  (* Network and replica cluster come up before the Ω∆ so that inbox and
     replica wiring claims its object ids and pids first — part of the
     message-passing determinism contract. *)
  let net, cluster, factory =
    match substrate with
    | Shared_memory -> None, None, None
    | Message_passing config ->
      let net = Tbwf_net.Net.create rt ~config in
      let cluster = Mp_reg.Cluster.create rt ~net in
      Some net, Some cluster, Some (Mp_reg.factory cluster)
  in
  (* Both backends create objects and spawn tasks at the same wiring
     points, in the same order — what differs is only whether the spawned
     task bodies are effect coroutines or compiled machines. That shared
     order is what makes the two backends assign identical object ids and
     produce byte-identical traces. *)
  let handles =
    match backend, id with
    | Backend.Reference, Tbwf_atomic ->
      (install_atomic ?factory ~n rt).Omega_registers.handles
    | Backend.Compiled, Tbwf_atomic ->
      (Tbwf_compiled.Omega_atomic_compiled.install rt)
        .Omega_registers.handles
    | Backend.Reference, (Tbwf_abortable | Tbwf_universal) ->
      (install_abortable ?factory ~n rt ~policy:mesh_policy ())
        .Omega_abortable.handles
    | Backend.Compiled, (Tbwf_abortable | Tbwf_universal) ->
      (Tbwf_compiled.Omega_abortable_compiled.install rt ~policy:mesh_policy
         ())
        .Omega_abortable.handles
    | Backend.Reference, Naive_booster ->
      (install_naive ?factory ~n rt).Baselines.Naive_booster.handles
    | Backend.Compiled, Naive_booster ->
      (Tbwf_compiled.Naive_compiled.install rt).Baselines.Naive_booster.handles
    | _, Retry -> [||]
  in
  let qa =
    let universal =
      match qa_universal with
      | Some u -> u
      | None -> default_qa_universal id
    in
    create_qa ~universal rt
      ~name:(spec.Seq_spec.name ^ "-qa")
      ~spec ~policy:qa_policy ()
  in
  let tbwf, invoke =
    match id with
    | Tbwf_atomic | Tbwf_abortable | Tbwf_universal | Naive_booster ->
      let tbwf = Tbwf.make ~qa ~omega_handles:handles ~canonical () in
      Some tbwf, Tbwf.invoke tbwf
    | Retry -> None, Baselines.retry_invoke qa
  in
  let stats = Workload.fresh_stats ~n in
  let client_pids =
    match client_pids with Some pids -> pids | None -> List.init n Fun.id
  in
  (match backend with
  | Backend.Reference ->
    Workload.spawn_clients rt ~pids:client_pids ~stats ~invoke ~next_op
  | Backend.Compiled -> (
    let cqa = Tbwf_compiled.Qa_call.of_qa ~n qa in
    match id with
    | Tbwf_atomic | Tbwf_abortable | Tbwf_universal | Naive_booster ->
      Tbwf_compiled.Client_machine.spawn_boosted_clients rt ~pids:client_pids
        ~handles ~canonical ~qa:cqa ~stats ~next_op
    | Retry ->
      Tbwf_compiled.Client_machine.spawn_retry_clients rt ~pids:client_pids
        ~qa:cqa ~stats ~next_op));
  {
    system = id;
    backend;
    substrate;
    rt;
    net;
    cluster;
    handles;
    qa;
    tbwf;
    invoke;
    stats;
    telemetry = collector;
  }
