(** Compiled Ω∆ over atomic registers (Figure 3).

    {!install} mirrors [Omega_registers.install] — same mesh/register
    creation order (monitor pairs p-major via {!Monitor_machines.install},
    then the counter registers), same task names, layers and spawn order —
    and returns the same record type, so downstream consumers (the system
    stack, experiments) are backend-agnostic. *)

open Tbwf_sim
open Tbwf_omega

val machine :
  self_punishment:bool ->
  Runtime.t ->
  Omega_registers.t ->
  int ->
  int ->
  Runtime.machine
(** [machine ~self_punishment rt t p n] is process [p]'s main loop. *)

val install : ?self_punishment:bool -> Runtime.t -> Omega_registers.t
