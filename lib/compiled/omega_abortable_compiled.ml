open Tbwf_sim
open Tbwf_registers
open Tbwf_omega

(* Figure 6's main loop with the Figure 4 message channel and Figure 5
   two-register heartbeat inlined. All channel/heartbeat endpoint state is
   task-local in the reference ([Msg_channel.create]/[Heartbeat.create]
   inside the task body), so the machine owns equivalent plain arrays.

   pc map:
   0  outer-loop top (leave)
   1  awaiting candidacy (then the joining self-punishment)
   2  inner-loop top: SendHeartbeat begins
   3  heartbeat-send scan (index [si])
   4  a Hb1 write returned (Hb2 write follows)
   5  a Hb2 write returned
   6  ReceiveHeartbeat scan (index [ri])
   7  a Hb1 read returned (Hb2 read follows)
   8  a Hb2 read returned (freshness verdict)
   9  leader choice and message preparation
   10 WriteMsgs scan (index [wi])
   11 a message write returned
   12 ReadMsgs scan (index [mi])
   13 a message read returned
   14 counter merge + end-of-iteration yield
   15 after the yield: candidacy check *)
let machine rt (t : Omega_abortable.t) p n : Runtime.machine =
  let handle = t.Omega_abortable.handles.(p) in
  let msg_w q = Option.get t.Omega_abortable.msg_registers.(p).(q) in
  let msg_r q = Option.get t.Omega_abortable.msg_registers.(q).(p) in
  let hb1_w q = Option.get t.Omega_abortable.hb_mesh.Heartbeat.hb1.(p).(q) in
  let hb2_w q = Option.get t.Omega_abortable.hb_mesh.Heartbeat.hb2.(p).(q) in
  let hb1_r q = Option.get t.Omega_abortable.hb_mesh.Heartbeat.hb1.(q).(p) in
  let hb2_r q = Option.get t.Omega_abortable.hb_mesh.Heartbeat.hb2.(q).(p) in
  (* Figure 6 locals *)
  let leader = ref p in
  let counter = Array.make n 0 in
  let actr_to = Array.make n 0 in
  let msg_to = Array.make n (0, 0) in
  (* writeDone starts as a fresh all-false array and aliases the channel's
     prevWriteDone from the first WriteMsgs on. *)
  let first_send = ref true in
  (* heartbeat endpoint state (Figure 5) *)
  let hb_send_counter = ref 0 in
  let hb_timeout = Array.make n 1 in
  let hb_timer = Array.make n 1 in
  let prev_hb1 = Array.make n (Some 0) in
  let prev_hb2 = Array.make n (Some 0) in
  let cur_hb1 = Array.make n (Some 0) in
  let cur_hb2 = Array.make n (Some 0) in
  let active_set = Array.make n false in
  active_set.(p) <- true;
  (* message-channel endpoint state (Figure 4) *)
  let msg_curr = Array.make n (0, 0) in
  let prev_write_done = Array.make n true in
  let prev_msg_from = Array.make n (0, 0) in
  let read_timer = Array.make n 1 in
  let read_timeout = Array.make n 1 in
  let si = ref 0 in
  let ri = ref 0 in
  let wi = ref 0 in
  let mi = ref 0 in
  let pc = ref 0 in
  let read_result reg v =
    match v with
    | Value.Abort -> None
    | v -> Some (reg.Reg.Abortable.dec v)
  in
  let rec exec v =
    match !pc with
    | 0 ->
      Omega_spec.set_view rt handle Omega_spec.No_leader;
      pc := 1;
      exec v
    | 1 ->
      if !(handle.Omega_spec.candidate) then begin
        counter.(p) <- max counter.(p) (counter.(!leader) + 1);
        pc := 2;
        exec v
      end
      else Runtime.M_yield
    | 2 ->
      incr hb_send_counter;
      si := 0;
      pc := 3;
      exec v
    | 3 ->
      if !si >= n then begin
        ri := 0;
        pc := 6;
        exec v
      end
      else begin
        let q = !si in
        if q <> p && (not !first_send) && prev_write_done.(q) then begin
          pc := 4;
          Runtime.M_call
            ( Reg.Abortable.obj_exn (hb1_w q),
              Value.write_op (Value.Int !hb_send_counter) )
        end
        else begin
          incr si;
          exec v
        end
      end
    | 4 ->
      pc := 5;
      Runtime.M_call
        ( Reg.Abortable.obj_exn (hb2_w !si),
          Value.write_op (Value.Int !hb_send_counter) )
    | 5 ->
      incr si;
      pc := 3;
      exec Value.Unit
    | 6 ->
      if !ri >= n then begin
        pc := 9;
        exec v
      end
      else begin
        let q = !ri in
        if q = p then begin
          incr ri;
          exec v
        end
        else begin
          if hb_timer.(q) >= 1 then hb_timer.(q) <- hb_timer.(q) - 1;
          if hb_timer.(q) = 0 then begin
            hb_timer.(q) <- hb_timeout.(q);
            prev_hb1.(q) <- cur_hb1.(q);
            prev_hb2.(q) <- cur_hb2.(q);
            pc := 7;
            Runtime.M_call (Reg.Abortable.obj_exn (hb1_r q), Value.read_op)
          end
          else begin
            incr ri;
            exec v
          end
        end
      end
    | 7 ->
      cur_hb1.(!ri) <- read_result (hb1_r !ri) v;
      pc := 8;
      Runtime.M_call (Reg.Abortable.obj_exn (hb2_r !ri), Value.read_op)
    | 8 ->
      let q = !ri in
      cur_hb2.(q) <- read_result (hb2_r q) v;
      let fresh cur prev =
        match cur with None -> true | Some _ -> cur <> prev
      in
      if fresh cur_hb1.(q) prev_hb1.(q) && fresh cur_hb2.(q) prev_hb2.(q) then
        active_set.(q) <- true
      else begin
        active_set.(q) <- false;
        hb_timeout.(q) <- hb_timeout.(q) + 1
      end;
      incr ri;
      pc := 6;
      exec Value.Unit
    | 9 ->
      let best = ref p in
      for q = 0 to n - 1 do
        if active_set.(q) && (counter.(q), q) < (counter.(!best), !best) then
          best := q
      done;
      leader := !best;
      Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
      for q = 0 to n - 1 do
        if q <> p then begin
          if not active_set.(q) then
            actr_to.(q) <- max actr_to.(q) (counter.(!leader) + 1);
          msg_to.(q) <- counter.(p), actr_to.(q)
        end
      done;
      wi := 0;
      pc := 10;
      exec v
    | 10 ->
      if !wi >= n then begin
        first_send := false;
        mi := 0;
        pc := 12;
        exec v
      end
      else begin
        let q = !wi in
        if
          q <> p
          && ((not prev_write_done.(q)) || msg_curr.(q) <> msg_to.(q))
        then begin
          if prev_write_done.(q) then msg_curr.(q) <- msg_to.(q);
          let reg = msg_w q in
          pc := 11;
          Runtime.M_call
            ( Reg.Abortable.obj_exn reg,
              Value.write_op (reg.Reg.Abortable.enc msg_curr.(q)) )
        end
        else begin
          incr wi;
          exec v
        end
      end
    | 11 ->
      prev_write_done.(!wi) <- (match v with Value.Abort -> false | _ -> true);
      incr wi;
      pc := 10;
      exec Value.Unit
    | 12 ->
      if !mi >= n then begin
        pc := 14;
        exec v
      end
      else begin
        let q = !mi in
        if q = p then begin
          incr mi;
          exec v
        end
        else begin
          if read_timer.(q) >= 1 then read_timer.(q) <- read_timer.(q) - 1;
          if read_timer.(q) = 0 then begin
            read_timer.(q) <- read_timeout.(q);
            pc := 13;
            Runtime.M_call (Reg.Abortable.obj_exn (msg_r q), Value.read_op)
          end
          else begin
            incr mi;
            exec v
          end
        end
      end
    | 13 ->
      let q = !mi in
      (match read_result (msg_r q) v with
      | None -> read_timeout.(q) <- read_timeout.(q) + 1
      | Some m when m = prev_msg_from.(q) ->
        read_timeout.(q) <- read_timeout.(q) + 1
      | Some m ->
        prev_msg_from.(q) <- m;
        read_timeout.(q) <- 1);
      incr mi;
      pc := 12;
      exec Value.Unit
    | 14 ->
      for q = 0 to n - 1 do
        if q <> p then begin
          let counter_q, actr_from_q = prev_msg_from.(q) in
          counter.(q) <- counter_q;
          counter.(p) <- max counter.(p) actr_from_q
        end
      done;
      pc := 15;
      Runtime.M_yield
    | 15 ->
      if !(handle.Omega_spec.candidate) then begin
        pc := 2;
        exec v
      end
      else begin
        pc := 0;
        exec v
      end
    | _ -> assert false
  in
  exec

let install rt ~policy ?write_effect () =
  let n = Runtime.n rt in
  let msg_registers = Msg_channel.registers rt ~policy ?write_effect ~n () in
  let hb_mesh = Heartbeat.registers rt ~policy ?write_effect ~n () in
  let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
  let t = { Omega_abortable.handles; msg_registers; hb_mesh } in
  for p = 0 to n - 1 do
    Runtime.spawn_machine ~layer:Sink.Omega rt ~pid:p
      ~name:(Fmt.str "omega-ab[%d]" p)
      (machine rt t p n)
  done;
  t
