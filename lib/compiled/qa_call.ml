open Tbwf_sim
open Tbwf_objects

type t = {
  invoke_call : pid:int -> Value.t -> Shared.t * Value.t;
  query_call : pid:int -> Shared.t * Value.t;
  query_result : pid:int -> Value.t -> Value.t;
}

let lookup_fate pid entries =
  List.find_map
    (function Value.Pair (Int p, fate) when p = pid -> Some fate | _ -> None)
    entries

let of_qa ~n (qa : Qa_intf.t) =
  match qa.Qa_intf.view with
  | Qa_intf.Direct obj ->
    {
      invoke_call = (fun ~pid:_ op -> obj, Value.Pair (Str "apply", op));
      query_call = (fun ~pid:_ -> obj, Value.Pair (Str "query", Unit));
      query_result = (fun ~pid:_ v -> v);
    }
  | Qa_intf.Universal cell ->
    (* The universal construction's op-id bookkeeping lives on the client
       side (see [Qa_universal]): per-pid sequence numbers and the id of
       the last issued operation. A pid's ops are only ever issued by that
       pid's client, so dense per-pid arrays replace the hashtables. *)
    let sequence = Array.make n 0 in
    let last_op_id = Array.make n None in
    {
      invoke_call =
        (fun ~pid op ->
          let k = sequence.(pid) + 1 in
          sequence.(pid) <- k;
          let op_id = Value.Pair (Int pid, Int k) in
          last_op_id.(pid) <- Some op_id;
          cell, Value.Pair (Str "rmw", Pair (op_id, op)));
      query_call = (fun ~pid:_ -> cell, Value.read_op);
      query_result =
        (fun ~pid v ->
          match v with
          | Value.Abort -> Value.Abort
          | Value.Pair (_, List fates) -> (
            match lookup_fate pid fates, last_op_id.(pid) with
            | Some (Value.Pair (op_id, response)), Some issued
              when Value.equal op_id issued ->
              response
            | _, _ -> Value.Fail)
          | v ->
            invalid_arg
              (Fmt.str "Qa_call %s: bad cell state %a" qa.Qa_intf.name
                 Value.pp v));
    }
