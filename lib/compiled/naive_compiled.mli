(** Compiled naive-booster baseline: min-alive-pid election with doubling
    monitor timeouts and no punishment, mirroring
    [Baselines.Naive_booster.install] (same monitor mesh creation order,
    task names, layers and spawn order). *)

open Tbwf_sim
open Tbwf_core

val machine :
  Runtime.t -> Baselines.Naive_booster.t -> int -> int -> Runtime.machine
(** [machine rt t p n] is process [p]'s election loop. *)

val install : Runtime.t -> Baselines.Naive_booster.t
