(** Compiled activity monitors: Figure 2's two loops as machines.

    {!install} mirrors [Activity_monitor.install] exactly — same register
    creation point (via [Activity_monitor.make]), same task names, pids,
    layers and spawn order — so a compiled stack assigns identical object
    ids and produces an identical trace. *)

open Tbwf_sim
open Tbwf_monitor

val monitored : Activity_monitor.t -> Runtime.machine
(** The monitored process q's heartbeat loop (runs at pid [t.q]). *)

val monitoring :
  adapt:(int -> int) ->
  increment_guards:bool ->
  Runtime.t ->
  Activity_monitor.t ->
  Runtime.machine
(** The monitoring process p's polling loop (runs at pid [t.p]). *)

val install :
  ?adapt:(int -> int) ->
  ?increment_guards:bool ->
  Runtime.t ->
  p:int ->
  q:int ->
  Activity_monitor.t
(** As [Activity_monitor.install] with machine-compiled loops; defaults
    match ([adapt] = [succ], [increment_guards] = [true]). *)
