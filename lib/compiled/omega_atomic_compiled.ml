open Tbwf_sim
open Tbwf_registers
open Tbwf_monitor
open Tbwf_omega

(* Figure 3's main loop, compiled. pc map:
   0 outer-loop top (leave, reset monitor inputs)
   1 awaiting candidacy
   2 self-punishment counter read returned
   3 self-punishment counter write returned
   4 inner-loop candidacy check
   5 monitor-consult loop (index [qi], awaits each estimate)
   6 counter-read loop (index [rq], one read per step)
   7 punishment scan (index [pq])
   8 a punishment write returned *)
let machine ~self_punishment rt (t : Omega_registers.t) p n : Runtime.machine =
  let handle = t.Omega_registers.handles.(p) in
  let monitor q = Option.get t.Omega_registers.monitors.(p).(q) in
  let active_for q =
    (Option.get t.Omega_registers.monitors.(q).(p)).Activity_monitor.active_for
  in
  let counter_reg q = t.Omega_registers.counters.(q) in
  let counter_obj q = Reg.obj_exn (counter_reg q) in
  let status = Array.make n Activity_monitor.Unknown in
  let fault_cntr = Array.make n 0 in
  let max_fault_cntr = Array.make n 0 in
  let counter = Array.make n 0 in
  let qi = ref 0 in
  let rq = ref 0 in
  let pq = ref 0 in
  let pc = ref 0 in
  let rec exec v =
    match !pc with
    | 0 ->
      Omega_spec.set_view rt handle Omega_spec.No_leader;
      for q = 0 to n - 1 do
        if q <> p then (monitor q).Activity_monitor.monitoring := false
      done;
      for q = 0 to n - 1 do
        if q <> p then active_for q := false
      done;
      pc := 1;
      exec v
    | 1 ->
      if !(handle.Omega_spec.candidate) then begin
        for q = 0 to n - 1 do
          if q <> p then (monitor q).Activity_monitor.monitoring := true
        done;
        if self_punishment then begin
          pc := 2;
          Runtime.M_call (counter_obj p, Value.read_op)
        end
        else begin
          pc := 4;
          exec v
        end
      end
      else Runtime.M_yield
    | 2 ->
      counter.(p) <- (counter_reg p).Reg.dec v;
      pc := 3;
      Runtime.M_call
        (counter_obj p, Value.write_op (Value.Int (counter.(p) + 1)))
    | 3 ->
      pc := 4;
      exec Value.Unit
    | 4 ->
      if !(handle.Omega_spec.candidate) then begin
        qi := 0;
        pc := 5;
        exec v
      end
      else begin
        pc := 0;
        exec v
      end
    | 5 ->
      if !qi = p then incr qi;
      if !qi >= n then begin
        status.(p) <- Activity_monitor.Active;
        rq := 0;
        pc := 6;
        Runtime.M_call (counter_obj 0, Value.read_op)
      end
      else begin
        let q = !qi in
        let mon = monitor q in
        if
          Activity_monitor.equal_status
            !(mon.Activity_monitor.status)
            Activity_monitor.Unknown
        then Runtime.M_yield
        else begin
          status.(q) <- !(mon.Activity_monitor.status);
          fault_cntr.(q) <- !(mon.Activity_monitor.fault_cntr);
          incr qi;
          exec v
        end
      end
    | 6 ->
      counter.(!rq) <- (counter_reg !rq).Reg.dec v;
      incr rq;
      if !rq < n then Runtime.M_call (counter_obj !rq, Value.read_op)
      else begin
        let leader = ref p in
        for q = 0 to n - 1 do
          if
            Activity_monitor.equal_status status.(q) Activity_monitor.Active
            && (counter.(q), q) < (counter.(!leader), !leader)
          then leader := q
        done;
        Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
        let am_leader = !leader = p in
        for q = 0 to n - 1 do
          if q <> p then active_for q := am_leader
        done;
        pq := 0;
        pc := 7;
        exec Value.Unit
      end
    | 7 ->
      if !pq = p then incr pq;
      if !pq >= n then begin
        pc := 4;
        exec v
      end
      else begin
        let q = !pq in
        if fault_cntr.(q) > max_fault_cntr.(q) then begin
          pc := 8;
          Runtime.M_call
            (counter_obj q, Value.write_op (Value.Int (counter.(q) + 1)))
        end
        else begin
          incr pq;
          exec v
        end
      end
    | 8 ->
      max_fault_cntr.(!pq) <- fault_cntr.(!pq);
      incr pq;
      pc := 7;
      exec Value.Unit
    | _ -> assert false
  in
  exec

let install ?(self_punishment = true) rt =
  let n = Runtime.n rt in
  let monitors =
    Array.init n (fun p ->
        Array.init n (fun q ->
            if p = q then None else Some (Monitor_machines.install rt ~p ~q)))
  in
  let factory = Reg.shared_factory rt in
  let counters =
    Array.init n (fun q ->
        factory.Reg.mk_reg ~kind:Reg.Mwmr
          ~name:(Fmt.str "Counter[%d]" q)
          ~codec:Codec.int ~init:0)
  in
  let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
  let t = { Omega_registers.handles; monitors; counters } in
  for p = 0 to n - 1 do
    Runtime.spawn_machine ~layer:Sink.Omega rt ~pid:p
      ~name:(Fmt.str "omega[%d]" p)
      (machine ~self_punishment rt t p n)
  done;
  t
