open Tbwf_sim
open Tbwf_monitor
open Tbwf_omega
open Tbwf_core

(* The naive-booster election loop, compiled. No shared-object calls at
   all — leadership is min-active-pid over the monitor estimates. pc map:
   0 outer-loop top; 1 awaiting candidacy; 2 inner-loop candidacy check;
   3 monitor-consult loop (index [qi]); 4 the end-of-iteration yield. *)
let machine rt (t : Baselines.Naive_booster.t) p n : Runtime.machine =
  let handle = t.Baselines.Naive_booster.handles.(p) in
  let monitor q = Option.get t.Baselines.Naive_booster.monitors.(p).(q) in
  let active_for q =
    (Option.get t.Baselines.Naive_booster.monitors.(q).(p))
      .Activity_monitor.active_for
  in
  let leader = ref p in
  let qi = ref 0 in
  let pc = ref 0 in
  let rec exec v =
    match !pc with
    | 0 ->
      Omega_spec.set_view rt handle Omega_spec.No_leader;
      for q = 0 to n - 1 do
        if q <> p then (monitor q).Activity_monitor.monitoring := false
      done;
      for q = 0 to n - 1 do
        if q <> p then active_for q := false
      done;
      pc := 1;
      exec v
    | 1 ->
      if !(handle.Omega_spec.candidate) then begin
        for q = 0 to n - 1 do
          if q <> p then (monitor q).Activity_monitor.monitoring := true
        done;
        pc := 2;
        exec v
      end
      else Runtime.M_yield
    | 2 ->
      if !(handle.Omega_spec.candidate) then begin
        leader := p;
        qi := 0;
        pc := 3;
        exec v
      end
      else begin
        pc := 0;
        exec v
      end
    | 3 ->
      if !qi = p then incr qi;
      if !qi >= n then begin
        Omega_spec.set_view rt handle (Omega_spec.Leader !leader);
        let am_leader = !leader = p in
        for q = 0 to n - 1 do
          if q <> p then active_for q := am_leader
        done;
        pc := 2;
        Runtime.M_yield
      end
      else begin
        let q = !qi in
        let mon = monitor q in
        if
          Activity_monitor.equal_status
            !(mon.Activity_monitor.status)
            Activity_monitor.Unknown
        then Runtime.M_yield
        else begin
          if
            Activity_monitor.equal_status
              !(mon.Activity_monitor.status)
              Activity_monitor.Active
            && q < !leader
          then leader := q;
          incr qi;
          exec v
        end
      end
    | _ -> assert false
  in
  exec

let install rt =
  let n = Runtime.n rt in
  let adapt timeout = 2 * timeout in
  let monitors =
    Array.init n (fun p ->
        Array.init n (fun q ->
            if p = q then None
            else Some (Monitor_machines.install ~adapt rt ~p ~q)))
  in
  let handles = Array.init n (fun pid -> Omega_spec.make_handle ~pid) in
  let t = { Baselines.Naive_booster.handles; monitors } in
  for p = 0 to n - 1 do
    Runtime.spawn_machine ~layer:Sink.Omega rt ~pid:p
      ~name:(Fmt.str "naive-boost[%d]" p)
      (machine rt t p n)
  done;
  t
