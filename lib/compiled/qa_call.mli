(** Compiled client-side view of a query-abortable object.

    In the reference backend [Qa_intf.invoke]/[query] are closures that
    perform effects. The compiled client machines instead need, for each
    attempt, the raw (object, operation) pair to emit as an [M_call] and a
    pure post-processing function for the result. Both QA implementations
    reduce to exactly one shared-object operation per attempt, so this is
    a complete compilation of the client side. *)

open Tbwf_sim
open Tbwf_objects

type t = {
  invoke_call : pid:int -> Value.t -> Shared.t * Value.t;
      (** the single operation [invoke op] performs, with any client-side
          bookkeeping (op-id sequencing for the universal construction)
          done at build time — i.e. at the invocation step, as in the
          reference closures *)
  query_call : pid:int -> Shared.t * Value.t;
  query_result : pid:int -> Value.t -> Value.t;
      (** post-process a query's raw result (fate lookup for the
          universal construction; identity for the direct object) *)
}

val of_qa : n:int -> Qa_intf.t -> t
(** Compile [qa]'s client side for a runtime with [n] processes. The
    returned value owns the per-pid op-id state for the universal
    construction, so build exactly one per stack. *)
