(** Compiled Ω∆ over abortable registers (Figure 6), with the Figure 4
    message channel and Figure 5 two-register heartbeat inlined into the
    machine — their endpoint state is task-local in the reference, so the
    machine owns equivalent arrays and reproduces the same register
    operations in the same order.

    {!install} mirrors [Omega_abortable.install]: same register-mesh
    creation order (message registers then both heartbeat meshes), same
    task names, layers and spawn order, same record type. *)

open Tbwf_sim
open Tbwf_registers
open Tbwf_omega

val machine : Runtime.t -> Omega_abortable.t -> int -> int -> Runtime.machine
(** [machine rt t p n] is process [p]'s main loop. *)

val install :
  Runtime.t ->
  policy:Abort_policy.t ->
  ?write_effect:Abort_policy.write_effect ->
  unit ->
  Omega_abortable.t
