(** Compiled client tasks: the Workload client loop fused with Figure 7's
    invoke (boosted systems) or the bare retry automaton ({!Tbwf_system}'s
    [Retry] baseline), as effect-free machines.

    Both mirror [Workload.spawn_clients] + [Tbwf_core.Tbwf.invoke] /
    [Baselines.retry_invoke] step for step: same stats updates, same
    [Sink.Op_complete] signals, same spawn order, names and layers. *)

open Tbwf_sim
open Tbwf_omega
open Tbwf_core

val boosted :
  Runtime.t ->
  pid:int ->
  handle:Omega_spec.handle ->
  canonical:bool ->
  qa:Qa_call.t ->
  stats:Workload.stats ->
  next_op:(pid:int -> k:int -> Value.t option) ->
  Runtime.machine

val retry :
  Runtime.t ->
  pid:int ->
  qa:Qa_call.t ->
  stats:Workload.stats ->
  next_op:(pid:int -> k:int -> Value.t option) ->
  Runtime.machine

val spawn_boosted_clients :
  Runtime.t ->
  pids:int list ->
  handles:Omega_spec.handle array ->
  canonical:bool ->
  qa:Qa_call.t ->
  stats:Workload.stats ->
  next_op:(pid:int -> k:int -> Value.t option) ->
  unit

val spawn_retry_clients :
  Runtime.t ->
  pids:int list ->
  qa:Qa_call.t ->
  stats:Workload.stats ->
  next_op:(pid:int -> k:int -> Value.t option) ->
  unit
