open Tbwf_sim
open Tbwf_omega
open Tbwf_core

type attempt = Op | Query

(* Figure 7's invoke wrapped in the Workload client loop, as one machine.
   pc 0: fetch the next operation; 1: the canonical leader-wait gate;
   2: the leader-gated attempt loop; 3: an attempt's result arrived. *)
let boosted rt ~pid ~(handle : Omega_spec.handle) ~canonical ~qa
    ~(stats : Workload.stats) ~next_op : Runtime.machine =
  let k = ref 0 in
  let cur_op = ref Value.Unit in
  let next = ref Op in
  let pc = ref 0 in
  let is_leader () =
    Omega_spec.equal_view !(handle.Omega_spec.leader) (Omega_spec.Leader pid)
  in
  let rec exec v =
    match !pc with
    | 0 -> (
      match next_op ~pid ~k:!k with
      | None -> Runtime.M_halt
      | Some op ->
        stats.Workload.issued.(pid) <- stats.Workload.issued.(pid) + 1;
        cur_op := op;
        next := Op;
        if canonical then begin
          pc := 1;
          exec v
        end
        else begin
          handle.Omega_spec.candidate := true;
          pc := 2;
          exec v
        end)
    | 1 ->
      (* await (not is_leader ()) — checks before the first yield *)
      if is_leader () then Runtime.M_yield
      else begin
        handle.Omega_spec.candidate := true;
        pc := 2;
        exec v
      end
    | 2 ->
      if is_leader () then begin
        let obj, op =
          match !next with
          | Op -> qa.Qa_call.invoke_call ~pid !cur_op
          | Query -> qa.Qa_call.query_call ~pid
        in
        pc := 3;
        Runtime.M_call (obj, op)
      end
      else Runtime.M_yield
    | 3 -> (
      let res =
        match !next with
        | Op -> v
        | Query -> qa.Qa_call.query_result ~pid v
      in
      match res with
      | Value.Abort ->
        next := Query;
        pc := 2;
        exec Value.Unit
      | Value.Fail ->
        next := Op;
        pc := 2;
        exec Value.Unit
      | response ->
        handle.Omega_spec.candidate := false;
        stats.Workload.completed.(pid) <- stats.Workload.completed.(pid) + 1;
        stats.Workload.last_response.(pid) <- Some response;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid Sink.Op_complete;
        incr k;
        pc := 0;
        exec Value.Unit)
    | _ -> assert false
  in
  exec

(* The retry baseline's op/query/retry automaton: as above with no leader
   gate and no candidacy — consecutive attempts are back-to-back calls. *)
let retry rt ~pid ~qa ~(stats : Workload.stats) ~next_op : Runtime.machine =
  let k = ref 0 in
  let cur_op = ref Value.Unit in
  let next = ref Op in
  let pc = ref 0 in
  let rec exec v =
    match !pc with
    | 0 -> (
      match next_op ~pid ~k:!k with
      | None -> Runtime.M_halt
      | Some op ->
        stats.Workload.issued.(pid) <- stats.Workload.issued.(pid) + 1;
        cur_op := op;
        next := Op;
        pc := 2;
        exec v)
    | 2 ->
      let obj, op =
        match !next with
        | Op -> qa.Qa_call.invoke_call ~pid !cur_op
        | Query -> qa.Qa_call.query_call ~pid
      in
      pc := 3;
      Runtime.M_call (obj, op)
    | 3 -> (
      let res =
        match !next with
        | Op -> v
        | Query -> qa.Qa_call.query_result ~pid v
      in
      match res with
      | Value.Abort ->
        next := Query;
        pc := 2;
        exec Value.Unit
      | Value.Fail ->
        next := Op;
        pc := 2;
        exec Value.Unit
      | response ->
        stats.Workload.completed.(pid) <- stats.Workload.completed.(pid) + 1;
        stats.Workload.last_response.(pid) <- Some response;
        if Runtime.telemetry_active rt then
          Runtime.signal rt ~pid Sink.Op_complete;
        incr k;
        pc := 0;
        exec Value.Unit)
    | _ -> assert false
  in
  exec

let spawn_boosted_clients rt ~pids ~handles ~canonical ~qa ~stats ~next_op =
  List.iter
    (fun pid ->
      Runtime.spawn_machine ~layer:Sink.App rt ~pid ~name:"client"
        (boosted rt ~pid ~handle:handles.(pid) ~canonical ~qa ~stats ~next_op))
    pids

let spawn_retry_clients rt ~pids ~qa ~stats ~next_op =
  List.iter
    (fun pid ->
      Runtime.spawn_machine ~layer:Sink.App rt ~pid ~name:"client"
        (retry rt ~pid ~qa ~stats ~next_op))
    pids
