open Tbwf_sim
open Tbwf_registers
open Tbwf_monitor

(* Figure 2 top, compiled: the monitored process q's heartbeat loop.
   pc 0: write the −1 sentinel; 1: sentinel written, awaiting active_for;
   2: a beat was written, keep beating while active. *)
let monitored (t : Activity_monitor.t) : Runtime.machine =
  let reg = t.Activity_monitor.hb in
  let obj = Reg.obj_exn reg in
  let reset_op = Value.write_op (reg.Reg.enc (-1)) in
  let hb_counter = ref 0 in
  let pc = ref 0 in
  let rec exec v =
    match !pc with
    | 0 ->
      pc := 1;
      Runtime.M_call (obj, reset_op)
    | 1 ->
      if !(t.Activity_monitor.active_for) then begin
        incr hb_counter;
        pc := 2;
        Runtime.M_call (obj, Value.write_op (Value.Int !hb_counter))
      end
      else Runtime.M_yield
    | 2 ->
      if !(t.Activity_monitor.active_for) then begin
        incr hb_counter;
        Runtime.M_call (obj, Value.write_op (Value.Int !hb_counter))
      end
      else begin
        pc := 0;
        exec v
      end
    | _ -> assert false
  in
  exec

(* Figure 2 bottom, compiled: the monitoring process p's polling loop.
   pc 0: outer-loop top (status reset); 1: awaiting monitoring; 2: timer
   tick; 3: a heartbeat read returned. *)
let monitoring ~adapt ~increment_guards rt (t : Activity_monitor.t) :
    Runtime.machine =
  let reg = t.Activity_monitor.hb in
  let obj = Reg.obj_exn reg in
  let hb_timeout = ref 1 in
  let hb_timer = ref 1 in
  let hb_counter = ref 0 in
  let prev_hb_counter = ref 0 in
  let allow_increment = ref true in
  let pc = ref 0 in
  let rec exec v =
    match !pc with
    | 0 ->
      t.Activity_monitor.status := Activity_monitor.Unknown;
      pc := 1;
      exec v
    | 1 ->
      if !(t.Activity_monitor.monitoring) then begin
        hb_timer := !hb_timeout;
        pc := 2;
        exec v
      end
      else Runtime.M_yield
    | 2 ->
      if not !(t.Activity_monitor.monitoring) then begin
        pc := 0;
        exec v
      end
      else begin
        if !hb_timer >= 1 then decr hb_timer;
        if !hb_timer = 0 then begin
          hb_timer := !hb_timeout;
          prev_hb_counter := !hb_counter;
          pc := 3;
          Runtime.M_call (obj, Value.read_op)
        end
        else Runtime.M_yield
      end
    | 3 ->
      hb_counter := reg.Reg.dec v;
      if !hb_counter < 0 then
        Activity_monitor.set_status rt t Activity_monitor.Inactive;
      if !hb_counter >= 0 && !hb_counter > !prev_hb_counter then begin
        Activity_monitor.set_status rt t Activity_monitor.Active;
        allow_increment := true
      end;
      if increment_guards then begin
        if !hb_counter >= 0 && !hb_counter <= !prev_hb_counter then begin
          Activity_monitor.set_status rt t Activity_monitor.Inactive;
          if !allow_increment then begin
            incr t.Activity_monitor.fault_cntr;
            hb_timeout := adapt !hb_timeout;
            allow_increment := false
          end
        end
      end
      else if !hb_counter <= !prev_hb_counter then begin
        Activity_monitor.set_status rt t Activity_monitor.Inactive;
        incr t.Activity_monitor.fault_cntr;
        hb_timeout := adapt !hb_timeout
      end;
      pc := 2;
      exec Value.Unit
    | _ -> assert false
  in
  exec

let install ?(adapt = succ) ?(increment_guards = true) rt ~p ~q =
  let t = Activity_monitor.make rt ~p ~q in
  let hb_name, watch_name = Activity_monitor.task_names t in
  Runtime.spawn_machine ~layer:Sink.Monitor rt ~pid:q ~name:hb_name
    (monitored t);
  Runtime.spawn_machine ~layer:Sink.Monitor rt ~pid:p ~name:watch_name
    (monitoring ~adapt ~increment_guards rt t);
  t
