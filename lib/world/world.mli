(** The World layer: many independent cells, open-loop clients, churn.

    Everything below this layer studies one cell — a single
    {!Tbwf_system.System.build} instance with a fixed membership and
    closed-loop clients. A [World] composes [shards] such cells into one
    sharded run: each shard is an independent key-value cell under
    open-loop (Poisson/Zipf) traffic whose membership changes mid-run —
    some processes join late, some leave (gracefully retire, or crash).
    Shards share no state, so the world fans out over a
    {!Tbwf_parallel.Pool} and aggregates telemetry by folding each
    shard's {!Tbwf_telemetry.Collector} into a running merge in shard
    order, which bounds the resident set: memory scales with one shard
    plus one in-flight batch, not with the world's total process count.

    {2 Determinism contract}

    The world's stdout artifact — every shard's JSONL stream in shard
    order, then one [tbwf-world/v1] aggregate record — is a pure
    function of the config: shard [i] derives its seed statelessly as
    {!Tbwf_sim.Rng.task_seed}[ ~master:seed i], churn schedules come
    from a private split of that seed, and the aggregate folds in shard
    order regardless of batching, so output is byte-identical for any
    [--jobs] value and any pool shape. Wall-clock numbers never enter
    the artifact; they belong to stderr and the bench layer.

    {2 The capacity-membership model}

    A cell is built at its {e capacity} [n]: all [n] pids run Ω∆
    heartbeats and monitors from step 0, so a joiner is a dormant but
    timely member whose {e client} activates at its join step (via
    {!Tbwf_sim.Runtime.spawn_at}). Leavers are compiled onto the cell's
    fault timeline as {!Tbwf_nemesis.Fault_plan.Retire} or [Crash]
    atoms, so the plan's timely prediction, compiled policy, and the
    online degradation checker all see the churn the same way. *)

type config = {
  shards : int;  (** independent cells (>= 1) *)
  n : int;  (** processes per cell — the cell's capacity (>= 2) *)
  joiners : int;
      (** pids per cell that join mid-run: the last [joiners] pids
          activate their clients at a drawn step in
          [\[horizon/8, 3*horizon/8)] (>= 0, < [n]) *)
  leavers : int;
      (** initially-active pids per cell that leave mid-run at a drawn
          step in [\[horizon/4, horizon/2)]; at least one initially
          active pid always stays (>= 0) *)
  retire_fraction : float;
      (** probability a leaver retires gracefully rather than crashing
          (in [\[0, 1\]]; drawn per leaver from the churn stream) *)
  horizon : int;  (** steps per shard (>= 8) *)
  every : int option;
      (** per-shard streaming JSONL cadence; [None] streams nothing
          (the aggregate record is still produced) *)
  window : int;  (** telemetry rate-series window *)
  retain : int option;  (** live windows per shard — the memory bound *)
  systems : Tbwf_system.System.id list;
      (** cycled shard-major: shard [i] runs [systems.(i mod length)] *)
  substrate : Tbwf_system.System.substrate;
  profile : Tbwf_core.Workload.Open_loop.profile;
  seed : int64;
}

val default : config
(** 8 shards of 4 processes (1 joiner, 1 leaver, half the leavers
    retiring), 24k steps, no streaming, the paper systems on shared
    memory under a non-saturating open-loop profile (600-step mean
    gaps). Cell size and horizon are coupled — the canonical protocol
    completes about one operation per Ω∆ election cycle rotated across
    the cell — so a bigger [n] needs a proportionally longer
    [horizon] before the verdict's tail floor is meaningful. *)

val validate : config -> unit
(** Raises [Invalid_argument] on a config the model cannot honour. *)

(** One cell's planned membership changes, as drawn from the shard's
    churn stream. Steps are absolute; all fall before the verdict
    tail. *)
type churn = {
  ch_joins : (int * int) list;  (** (pid, join step), pid-ascending *)
  ch_leaves : (int * int * bool) list;
      (** (pid, leave step, retires?) — [false] means the leaver
          crashes *)
}

val churn_schedule : config -> shard:int -> churn
(** The churn shard [shard] will run — exposed so tests and tools can
    predict a shard's membership timeline without running it. *)

type shard_result = {
  ws_shard : int;
  ws_system : Tbwf_system.System.id;
  ws_jsonl : string;  (** the shard's JSONL stream ("" when not streaming) *)
  ws_telemetry : Tbwf_telemetry.Collector.t;
  ws_verdict : Tbwf_check.Degradation.verdict;
  ws_churn : churn;
  ws_completed : int;  (** app operations completed in this shard *)
  ws_seconds : float;  (** wall-clock; never part of the artifact *)
}

val run_shard : config -> shard:int -> shard_result
(** Run one cell to completion: build the system at capacity [n], spawn
    open-loop clients for the initial members, defer the joiners,
    compile the leavers into the fault plan, and run under the plan's
    policy with the collector and the online degradation checker teed
    into the sink. *)

type summary = {
  sum_json : Tbwf_telemetry.Json.t;  (** the [tbwf-world/v1] record *)
  sum_all_hold : bool;  (** every shard's online verdict holds *)
  sum_holds : int;
  sum_completed : int;  (** app operations completed, world-wide *)
  sum_steps : int;  (** simulated steps, world-wide *)
}

val schema_version : string
(** ["tbwf-world/v1"]. *)

val run :
  ?pool:Tbwf_parallel.Pool.t ->
  ?on_shard:(shard_result -> unit) ->
  config ->
  summary
(** Run the whole world. Shards fan out over [pool] (sequentially when
    absent) in fixed-size batches whose size does not depend on the
    pool, and fold into the aggregate in shard order — [on_shard] fires
    in shard order too, once per shard, before the shard's collector is
    folded and dropped. The summary's JSON carries only deterministic
    fields (sim-time rates, tail sketches, churn and verdict tallies);
    wall-clock throughput is the caller's business. *)
