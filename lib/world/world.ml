open Tbwf_sim
open Tbwf_core
open Tbwf_check
open Tbwf_nemesis
open Tbwf_telemetry
module System = Tbwf_system.System

let schema_version = "tbwf-world/v1"

type config = {
  shards : int;
  n : int;
  joiners : int;
  leavers : int;
  retire_fraction : float;
  horizon : int;
  every : int option;
  window : int;
  retain : int option;
  systems : System.id list;
  substrate : System.substrate;
  profile : Workload.Open_loop.profile;
  seed : int64;
}

(* Cell size and horizon are coupled: the canonical Fig-7 protocol
   completes about one operation per Ω∆ election cycle, rotated across
   the cell's candidates, so the per-pid completion rate falls roughly
   as 1/(n * cycle) — a bigger cell needs a proportionally longer
   horizon before the verdict's tail floor is honest. The default is
   small cells, and a mean arrival gap well above the service time:
   a world that saturates every cell turns the QA abort/query recovery
   into a livelock lottery, which is the campaign layer's experiment
   to run deliberately, not the world's default. *)
let default =
  {
    shards = 8;
    n = 4;
    joiners = 1;
    leavers = 1;
    retire_fraction = 0.5;
    horizon = 24_000;
    every = None;
    window = 1024;
    retain = Some 64;
    systems = System.paper_systems;
    substrate = System.Shared_memory;
    profile = { Workload.Open_loop.mean_gap = 600.0; keys = 64; zipf = 1.1 };
    seed = 0x574F_524CL (* "WORL" *);
  }

let validate c =
  let fail fmt = Format.kasprintf invalid_arg ("World: " ^^ fmt) in
  if c.shards < 1 then fail "shards must be positive (got %d)" c.shards;
  if c.n < 2 then fail "n must be at least 2 (got %d)" c.n;
  if c.joiners < 0 || c.joiners >= c.n then
    fail "joiners must be in [0, n) (got %d of n=%d)" c.joiners c.n;
  (* at least one initially-active pid must stay for the whole run, so
     the cell always has a member the verdict can anchor on *)
  if c.leavers < 0 || c.leavers > c.n - c.joiners - 1 then
    fail "leavers must be in [0, n - joiners - 1] (got %d of n=%d, joiners=%d)"
      c.leavers c.n c.joiners;
  if c.retire_fraction < 0.0 || c.retire_fraction > 1.0 then
    fail "retire_fraction must be in [0, 1] (got %g)" c.retire_fraction;
  if c.horizon < 8 then fail "horizon must be at least 8 (got %d)" c.horizon;
  (match c.every with
  | Some e when e < 1 -> fail "every must be positive (got %d)" e
  | _ -> ());
  if c.systems = [] then fail "systems must be non-empty"

let shard_system c ~shard =
  let systems = Array.of_list c.systems in
  systems.(shard mod Array.length systems)

type churn = {
  ch_joins : (int * int) list;
  ch_leaves : (int * int * bool) list;
}

(* The churn stream is a private split of the shard seed: the cell's own
   rng (scheduling) and object rng must not move when the churn knobs
   do, or a churn-free world would not be comparable to a churned one at
   the same seed. *)
let churn_stream_salt = 0x6368_7572_6e21L (* "churn!" *)

let churn_schedule c ~shard =
  let shard_seed = Rng.task_seed ~master:c.seed shard in
  let rng = Rng.create (Int64.logxor shard_seed churn_stream_salt) in
  let h = c.horizon in
  (* joiners are the top pids: capacity-membership keeps the initially
     active prefix dense, which keeps the per-pid arrays readable *)
  let joins =
    List.init c.joiners (fun i ->
        c.n - c.joiners + i, (h / 8) + Rng.int rng (max 1 (h / 4)))
  in
  (* leavers come from the initially-active pids, except pid 0: the
     shuffle picks which ones, the draw order fixes when. Keeping pid 0
     is the validated "at least one stable member" anchor. *)
  let eligible = Array.init (c.n - c.joiners - 1) (fun i -> i + 1) in
  Rng.shuffle rng eligible;
  (* the leave window ends at h/2: a crash just before the verdict tail
     would charge the re-election turbulence to the tail, which is the
     campaign layer's experiment, not the world's *)
  let leaves =
    List.init c.leavers (fun i ->
        ( eligible.(i),
          (h / 4) + Rng.int rng (max 1 (h / 4)),
          Rng.bool rng c.retire_fraction ))
  in
  { ch_joins = joins; ch_leaves = leaves }

(* Leaves become fault atoms, so prediction, policy and installation all
   run through the one nemesis pipeline; joins are not faults and stay a
   runtime affair ({!Runtime.spawn_at}). *)
let plan_of c ~churn =
  let replicas =
    match c.substrate with
    | System.Shared_memory -> 0
    | System.Message_passing config -> config.Tbwf_net.Net.replicas
  in
  let atoms =
    List.map
      (fun (pid, at, retires) ->
        if retires then Fault_plan.Retire { pid; at }
        else Fault_plan.Crash { pid; at })
      churn.ch_leaves
  in
  Fault_plan.make ~replicas ~n:c.n ~horizon:c.horizon atoms

(* Alternating writes and reads over the drawn Zipf key: every pid
   exercises both paths, and the hot keys contend across the cell. *)
let op_of_key ~pid ~k ~key =
  let name = "k" ^ string_of_int key in
  if k land 1 = 0 then Tbwf_objects.Kv_store.put name (Value.Int pid)
  else Tbwf_objects.Kv_store.get name

type shard_result = {
  ws_shard : int;
  ws_system : System.id;
  ws_jsonl : string;
  ws_telemetry : Collector.t;
  ws_verdict : Degradation.verdict;
  ws_churn : churn;
  ws_completed : int;
  ws_seconds : float;
}

let run_shard c ~shard =
  let start = Unix.gettimeofday () in
  let system = shard_system c ~shard in
  let shard_seed = Rng.task_seed ~master:c.seed shard in
  let churn = churn_schedule c ~shard in
  let plan = plan_of c ~churn in
  let stack =
    System.build ~substrate:c.substrate ~seed:shard_seed ~record_trace:false
      ~spec:Tbwf_objects.Kv_store.spec ~client_pids:[] ~telemetry:true
      ~telemetry_window:c.window
      ?telemetry_retain:c.retain ~n:c.n system
  in
  let rt = stack.System.rt in
  let telemetry = Option.get stack.System.telemetry in
  (* Initially-active members drive open-loop traffic from step 0; each
     joiner's client is the same body deferred to its join step. The Ω∆
     mesh installed by [build] covers all [n] pids either way — a joiner
     is a dormant but timely member until its client wakes. *)
  let initial = List.init (c.n - c.joiners) Fun.id in
  Workload.Open_loop.spawn_clients rt ~pids:initial ~stats:stack.System.stats
    ~invoke:stack.System.invoke ~profile:c.profile ~seed:shard_seed
    ~until:c.horizon ~op_of_key;
  List.iter
    (fun (pid, at) ->
      Runtime.spawn_at ~layer:Sink.App rt ~pid ~at ~name:"open-loop"
        (Workload.Open_loop.client_body rt ~pid ~stats:stack.System.stats
           ~invoke:stack.System.invoke ~profile:c.profile ~seed:shard_seed
           ~until:c.horizon ~op_of_key))
    churn.ch_joins;
  Fault_plan.install_crashes plan rt;
  (* Same tail boundary and floor as Campaign.run_plan, with the network
     substrate's cost factor folded into the floor the same way. *)
  let snap =
    max (Fault_plan.settle_step plan) (c.horizon - (c.horizon / 4))
  in
  let prediction =
    { (Fault_plan.prediction plan) with Degradation.pred_from = snap }
  in
  let tail = c.horizon - snap in
  let min_ops =
    match c.substrate with
    | System.Shared_memory -> Campaign.required_tail_ops ~n:c.n ~tail
    | System.Message_passing _ ->
      max 2 (Campaign.required_tail_ops ~n:c.n ~tail / Campaign.net_cost_factor)
  in
  let online = Degradation.Online.create ~min_ops prediction in
  Runtime.set_sink rt
    (Sink.tee (Collector.sink telemetry) (Degradation.Online.sink online));
  let buf = Buffer.create 256 in
  (match c.every with
  | None -> ()
  | Some every ->
    Collector.emit_every telemetry ~every
      ~extra:(fun ~window:_ ->
        [
          "shard", Json.Int shard;
          "system", Json.Str (System.to_string system);
          ( "verdict",
            Degradation.verdict_json (Degradation.Online.verdict online) );
        ])
      (fun record ->
        Buffer.add_string buf (Json.to_string record);
        Buffer.add_char buf '\n'));
  Runtime.run rt ~policy:(Fault_plan.policy plan) ~steps:c.horizon;
  if c.every <> None then Collector.stream_flush telemetry;
  let verdict = Degradation.Online.verdict online in
  Runtime.stop rt;
  {
    ws_shard = shard;
    ws_system = system;
    ws_jsonl = Buffer.contents buf;
    ws_telemetry = telemetry;
    ws_verdict = verdict;
    ws_churn = churn;
    ws_completed =
      Array.fold_left ( + ) 0 (Collector.app_completed telemetry);
    ws_seconds = Unix.gettimeofday () -. start;
  }

type summary = {
  sum_json : Json.t;
  sum_all_hold : bool;
  sum_holds : int;
  sum_completed : int;
  sum_steps : int;
}

(* Per-system tallies small enough to keep for the whole world; the
   collectors themselves fold into one running merge and are dropped. *)
type per_system = {
  mutable py_shards : int;
  mutable py_completed : int;
  mutable py_holds : int;
}

type agg = {
  mutable merged : Collector.t option;
  epoch_sketch : Quantile.t;  (* per-shard leader-epoch churn *)
  by_system : (System.id * per_system) list;
  mutable holds : int;
  mutable joins : int;
  mutable planned_retires : int;
  mutable planned_crashes : int;
}

(* The batch size is a fixed constant — independent of the pool — so
   the fold order (shard order) and hence the aggregate are
   byte-identical for any --jobs value; it only bounds how many shard
   results are live at once. Small enough that the in-flight batch of
   collectors stays within the streaming memory contract (a world run's
   live heap must not outgrow a handful of shards), large enough to
   keep every pool domain fed. *)
let batch_size = 32

let fold_shard agg r =
  agg.merged <-
    (match agg.merged with
    | None -> Some r.ws_telemetry
    | Some m -> Some (Collector.merge m r.ws_telemetry));
  Quantile.observe agg.epoch_sketch (Collector.leader_epochs r.ws_telemetry);
  let py = List.assoc r.ws_system agg.by_system in
  py.py_shards <- py.py_shards + 1;
  py.py_completed <- py.py_completed + r.ws_completed;
  if r.ws_verdict.Degradation.holds then begin
    py.py_holds <- py.py_holds + 1;
    agg.holds <- agg.holds + 1
  end;
  agg.joins <- agg.joins + List.length r.ws_churn.ch_joins;
  List.iter
    (fun (_, _, retires) ->
      if retires then agg.planned_retires <- agg.planned_retires + 1
      else agg.planned_crashes <- agg.planned_crashes + 1)
    r.ws_churn.ch_leaves

let quantile_json q =
  Json.Obj
    [
      "count", Json.Int (Quantile.count q);
      "p50", Json.Int (Quantile.p50 q);
      "p99", Json.Int (Quantile.p99 q);
      "p999", Json.Int (Quantile.p999 q);
      "max", Json.Int (Quantile.max_value q);
    ]

let summary_json c agg =
  let merged =
    match agg.merged with
    | Some m -> m
    | None -> assert false (* shards >= 1 is validated *)
  in
  let total_steps = Collector.total_steps merged in
  let completed = Array.fold_left ( + ) 0 (Collector.app_completed merged) in
  (* A sim-time rate: ops per 100k simulated steps. Wall-clock ops/sec
     would poison the artifact's determinism; it goes to stderr. *)
  let per_100k =
    if total_steps = 0 then 0 else completed * 100_000 / total_steps
  in
  let systems =
    List.filter_map
      (fun (sys, py) ->
        if py.py_shards = 0 then None
        else
          Some
            (Json.Obj
               [
                 "system", Json.Str (System.to_string sys);
                 "shards", Json.Int py.py_shards;
                 "completed", Json.Int py.py_completed;
                 "verdict_holds", Json.Int py.py_holds;
               ]))
      agg.by_system
  in
  Json.Obj
    [
      "schema", Json.Str schema_version;
      "shards", Json.Int c.shards;
      "n", Json.Int c.n;
      "total_processes", Json.Int (c.shards * c.n);
      "horizon_per_shard", Json.Int c.horizon;
      ( "profile",
        Json.Obj
          [
            "mean_gap", Json.Float c.profile.Workload.Open_loop.mean_gap;
            "keys", Json.Int c.profile.Workload.Open_loop.keys;
            "zipf", Json.Float c.profile.Workload.Open_loop.zipf;
          ] );
      ( "steps",
        Json.Obj
          [
            "total", Json.Int total_steps;
            "idle", Json.Int (Collector.idle_steps merged);
          ] );
      ( "ops",
        Json.Obj
          [
            "completed", Json.Int completed;
            "per_100k_steps", Json.Int per_100k;
          ] );
      ( "app_tail",
        quantile_json (Span.tail_of (Collector.spans merged) Sink.App) );
      ( "leader_epochs",
        Json.Obj
          [
            "total", Json.Int (Collector.leader_epochs merged);
            "per_shard", quantile_json agg.epoch_sketch;
          ] );
      ( "churn",
        Json.Obj
          [
            "joins", Json.Int agg.joins;
            "planned_retires", Json.Int agg.planned_retires;
            "planned_crashes", Json.Int agg.planned_crashes;
            "observed_retires", Json.Int (Collector.retire_count merged);
            "observed_crashes", Json.Int (Collector.crash_count merged);
          ] );
      "systems", Json.Arr systems;
      "verdict_holds", Json.Int agg.holds;
      "all_hold", Json.Bool (agg.holds = c.shards);
    ]

let run ?pool ?(on_shard = fun _ -> ()) c =
  validate c;
  let agg =
    {
      merged = None;
      epoch_sketch = Quantile.create ();
      by_system = List.map (fun sys -> sys, { py_shards = 0; py_completed = 0; py_holds = 0 }) c.systems;
      holds = 0;
      joins = 0;
      planned_retires = 0;
      planned_crashes = 0;
    }
  in
  let run_batch from count =
    let shards = Array.init count (fun i -> from + i) in
    let results =
      match pool with
      | Some pool when Tbwf_parallel.Pool.domains pool > 1 ->
        Tbwf_parallel.Pool.map pool shards (fun shard -> run_shard c ~shard)
      | _ -> Array.map (fun shard -> run_shard c ~shard) shards
    in
    Array.iter
      (fun r ->
        on_shard r;
        fold_shard agg r)
      results
  in
  let rec go from =
    if from < c.shards then begin
      run_batch from (min batch_size (c.shards - from));
      go (from + batch_size)
    end
  in
  go 0;
  let merged = Option.get agg.merged in
  {
    sum_json = summary_json c agg;
    sum_all_hold = agg.holds = c.shards;
    sum_holds = agg.holds;
    sum_completed = Array.fold_left ( + ) 0 (Collector.app_completed merged);
    sum_steps = Collector.total_steps merged;
  }
