open Tbwf_sim
open Tbwf_monitor

let status = Alcotest.testable Activity_monitor.pp_status Activity_monitor.equal_status

(* Run one monitor scenario and return the final status/faultCntr plus
   mid-run fault counter for boundedness checks. *)
let run_monitor ?(seed = 5L) ?(steps = 60_000) ~setup ~schedule () =
  let rt = Runtime.create ~seed ~n:2 () in
  let mon = Activity_monitor.install rt ~p:0 ~q:1 in
  setup rt mon;
  let policy = schedule () in
  Runtime.run rt ~policy ~steps:(steps / 2);
  let mid_faults = !(mon.Activity_monitor.fault_cntr) in
  Runtime.run rt ~policy ~steps:(steps / 2);
  Runtime.stop rt;
  mon, mid_faults

let round_robin () = Policy.round_robin ()

let untimely_q () =
  Policy.of_patterns
    [ 0, Policy.Every { period = 2; offset = 0 };
      1, Policy.Flicker { active = 100; sleep = 300; growth = 1.5 } ]

let both_on rt mon =
  ignore rt;
  mon.Activity_monitor.monitoring := true;
  mon.Activity_monitor.active_for := true

let test_initial_outputs () =
  let rt = Runtime.create ~n:2 () in
  let mon = Activity_monitor.install rt ~p:0 ~q:1 in
  Alcotest.check status "initial status" Activity_monitor.Unknown
    !(mon.Activity_monitor.status);
  Alcotest.(check int) "initial faults" 0 !(mon.Activity_monitor.fault_cntr)

let test_rejects_self_monitoring () =
  let rt = Runtime.create ~n:2 () in
  Alcotest.(check bool) "p = q rejected" true
    (try
       ignore (Activity_monitor.install rt ~p:1 ~q:1);
       false
     with Invalid_argument _ -> true)

let test_not_monitoring_stays_unknown () =
  let mon, _ =
    run_monitor ~steps:10_000
      ~setup:(fun _ mon -> mon.Activity_monitor.active_for := true)
      ~schedule:round_robin ()
  in
  Alcotest.check status "status stays ?" Activity_monitor.Unknown
    !(mon.Activity_monitor.status)

let test_active_timely_q_seen_active () =
  let mon, _ = run_monitor ~setup:both_on ~schedule:round_robin () in
  Alcotest.check status "active" Activity_monitor.Active
    !(mon.Activity_monitor.status);
  Alcotest.(check int) "no faults for timely q" 0
    !(mon.Activity_monitor.fault_cntr)

let test_willing_stop_seen_inactive_without_new_faults () =
  let mon, _ =
    run_monitor
      ~setup:(fun rt mon ->
        both_on rt mon;
        Runtime.spawn rt ~pid:1 ~name:"stopper" (fun () ->
            for _ = 1 to 500 do
              Runtime.yield ()
            done;
            mon.Activity_monitor.active_for := false))
      ~schedule:round_robin ()
  in
  Alcotest.check status "inactive after willing stop" Activity_monitor.Inactive
    !(mon.Activity_monitor.status);
  (* At most one spurious fault from catching the stop mid-handshake. *)
  Alcotest.(check bool) "faults bounded by 1" true
    (!(mon.Activity_monitor.fault_cntr) <= 1)

let test_crash_seen_inactive_bounded_faults () =
  let mon, _ =
    run_monitor
      ~setup:(fun rt mon ->
        both_on rt mon;
        Runtime.crash_at rt ~pid:1 ~step:5_000)
      ~schedule:round_robin ()
  in
  Alcotest.check status "inactive after crash" Activity_monitor.Inactive
    !(mon.Activity_monitor.status);
  (* Condition (b) of the increment rule: the register stops increasing, so
     at most one fault is charged after the crash. *)
  Alcotest.(check bool) "faults bounded" true
    (!(mon.Activity_monitor.fault_cntr) <= 1)

let test_untimely_q_faults_grow () =
  let mon, mid_faults =
    run_monitor ~steps:120_000 ~setup:both_on ~schedule:untimely_q ()
  in
  Alcotest.(check bool) "faults keep growing (property 6)" true
    (!(mon.Activity_monitor.fault_cntr) > mid_faults);
  Alcotest.(check bool) "multiple faults" true
    (!(mon.Activity_monitor.fault_cntr) >= 3)

let test_monitoring_off_resets_to_unknown () =
  let mon, _ =
    run_monitor
      ~setup:(fun rt mon ->
        both_on rt mon;
        Runtime.spawn rt ~pid:0 ~name:"switch-off" (fun () ->
            for _ = 1 to 500 do
              Runtime.yield ()
            done;
            mon.Activity_monitor.monitoring := false))
      ~schedule:round_robin ()
  in
  Alcotest.check status "back to ?" Activity_monitor.Unknown
    !(mon.Activity_monitor.status)

let test_monitor_restart () =
  (* Turn monitoring off and on again: the monitor must resume and converge
     back to active. *)
  let mon, _ =
    run_monitor
      ~setup:(fun rt mon ->
        both_on rt mon;
        Runtime.spawn rt ~pid:0 ~name:"cycle" (fun () ->
            for _ = 1 to 300 do
              Runtime.yield ()
            done;
            mon.Activity_monitor.monitoring := false;
            for _ = 1 to 300 do
              Runtime.yield ()
            done;
            mon.Activity_monitor.monitoring := true))
      ~schedule:round_robin ()
  in
  Alcotest.check status "active again after restart" Activity_monitor.Active
    !(mon.Activity_monitor.status)

let test_sample_helpers () =
  let samples =
    [
      { Activity_monitor.at_step = 0; status_now = Activity_monitor.Active; fault_cntr_now = 1 };
      { Activity_monitor.at_step = 1; status_now = Activity_monitor.Active; fault_cntr_now = 2 };
      { Activity_monitor.at_step = 2; status_now = Activity_monitor.Active; fault_cntr_now = 2 };
      { Activity_monitor.at_step = 3; status_now = Activity_monitor.Active; fault_cntr_now = 2 };
    ]
  in
  Alcotest.(check bool) "bounded on suffix" true
    (Activity_monitor.fault_cntr_bounded samples ~suffix:3);
  Alcotest.(check bool) "not bounded over whole run" false
    (Activity_monitor.fault_cntr_bounded samples ~suffix:4);
  Alcotest.(check bool) "unbounded over whole run" true
    (Activity_monitor.fault_cntr_unbounded samples ~suffix:4);
  Alcotest.(check bool) "status check" true
    (Activity_monitor.check_status_eventually samples
       ~expect:(fun s -> Activity_monitor.equal_status s Activity_monitor.Active)
       ~suffix:2)

let test_doubling_adaptation_trusts_slowing_q () =
  (* With adapt = doubling, a geometrically decelerating q is eventually
     trusted forever (finite faults); with the paper's +1 it keeps being
     suspected. This is the mechanism behind baseline E2. *)
  let run_with adapt =
    let rt = Runtime.create ~seed:9L ~n:2 () in
    let mon = Activity_monitor.install ?adapt rt ~p:0 ~q:1 in
    mon.Activity_monitor.monitoring := true;
    mon.Activity_monitor.active_for := true;
    let policy =
      Policy.of_patterns
        [ 0, Policy.Every { period = 2; offset = 0 };
          1, Policy.Slowing { initial_gap = 20; growth = 1.1; burst = 8 } ]
    in
    Runtime.run rt ~policy ~steps:400_000;
    Runtime.stop rt;
    !(mon.Activity_monitor.fault_cntr)
  in
  let doubling = run_with (Some (fun t -> 2 * t)) in
  let linear = run_with None in
  Alcotest.(check bool)
    (Fmt.str "+1 keeps suspecting (%d) more than doubling (%d)" linear doubling)
    true
    (linear > doubling)

let () =
  Alcotest.run "monitor"
    [
      ( "unit",
        [
          Alcotest.test_case "initial outputs" `Quick test_initial_outputs;
          Alcotest.test_case "rejects self-monitoring" `Quick
            test_rejects_self_monitoring;
          Alcotest.test_case "not monitoring stays ?" `Quick
            test_not_monitoring_stays_unknown;
          Alcotest.test_case "active timely q" `Quick
            test_active_timely_q_seen_active;
          Alcotest.test_case "willing stop" `Quick
            test_willing_stop_seen_inactive_without_new_faults;
          Alcotest.test_case "crash" `Quick test_crash_seen_inactive_bounded_faults;
          Alcotest.test_case "untimely q faults grow" `Slow
            test_untimely_q_faults_grow;
          Alcotest.test_case "monitoring off resets" `Quick
            test_monitoring_off_resets_to_unknown;
          Alcotest.test_case "monitor restart" `Quick test_monitor_restart;
          Alcotest.test_case "sample helpers" `Quick test_sample_helpers;
          Alcotest.test_case "doubling vs +1 adaptation" `Slow
            test_doubling_adaptation_trusts_slowing_q;
        ] );
    ]
