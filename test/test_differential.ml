(* Differential verification: the compiled backend must be byte-identical
   to the reference effects runtime — same trace fingerprint, same
   telemetry snapshot — for every (system, policy, seed, fault
   configuration). These tests sweep the goldens matrix, fuzzed replay
   schedules, nemesis fault plans, and a qcheck-random configuration
   space including mid-run crashes. *)

open Tbwf_sim
module System = Tbwf_system.System
module Differential = Tbwf_check.Differential
module Scenario = Tbwf_experiments.Scenario
module Fault_plan = Tbwf_nemesis.Fault_plan
module Campaign = Tbwf_nemesis.Campaign

let n = 3
let steps = 4_000
let seed = 0x53595354L (* the goldens matrix seed *)

let agree msg verdict =
  match verdict with
  | Differential.Agree -> ()
  | Differential.Diverge _ as d ->
    Alcotest.failf "%s: %a" msg Differential.pp_verdict d

(* The goldens matrix: every registered system under both representative
   schedules, telemetry attached, so snapshot equality is checked too. *)
let test_goldens_matrix () =
  let policies =
    [
      "round-robin", (fun () -> Policy.round_robin ());
      "degraded", (fun () -> Scenario.degraded_policy ~n ~timely:[ 1; 2 ] ());
    ]
  in
  List.iter
    (fun id ->
      List.iter
        (fun (pname, policy) ->
          agree
            (Fmt.str "%s / %s" (System.to_string id) pname)
            (Differential.check ~seed ~telemetry:true ~policy ~steps ~n id))
        policies)
    System.all

(* Reference-backend fingerprints of the goldens matrix must still match
   the committed golden digests: the differential tests prove the
   backends agree with each other, this one proves they agree with
   history. *)
let test_goldens_pinned () =
  let path =
    (* dune runtest runs with cwd = _build/default/test; dune exec from
       the repo root does not. *)
    match
      List.find_opt Sys.file_exists
        [
          "golden/system_fingerprints.txt";
          "test/golden/system_fingerprints.txt";
        ]
    with
    | Some p -> p
    | None -> Alcotest.fail "golden/system_fingerprints.txt not found"
  in
  let golden = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line golden :: !lines
     done
   with End_of_file -> close_in golden);
  let expected = List.rev !lines in
  let policies =
    [
      "round-robin", (fun () -> Policy.round_robin ());
      "degraded", (fun () -> Scenario.degraded_policy ~n ~timely:[ 1; 2 ] ());
    ]
  in
  let actual =
    List.concat_map
      (fun id ->
        List.map
          (fun (pname, policy) ->
            let obs =
              Differential.observe ~backend:Backend.Compiled ~seed ~policy
                ~steps ~n id
            in
            Fmt.str "%s %s %s" (System.to_string id) pname
              (Digest.to_hex (Digest.string obs.Differential.fingerprint)))
          policies)
      System.all
  in
  Alcotest.(check (list string))
    "compiled backend reproduces the committed goldens" expected actual

(* Fuzzed schedules: random pid sequences (with idle steps mixed in)
   replayed identically against both backends. *)
let test_fuzzed_replay () =
  let rng = Rng.create 0xD1FFL in
  for round = 0 to 4 do
    let sched =
      List.init 2_000 (fun _ ->
          if Rng.bool rng 0.1 then -1 else Rng.int rng n)
    in
    let system = Rng.pick rng (Array.of_list System.all) in
    agree
      (Fmt.str "fuzz round %d (%s)" round (System.to_string system))
      (Differential.check ~seed:(Int64.of_int (round + 1)) ~telemetry:true
         ~policy:(fun () -> Policy.replay sched)
         ~steps:(List.length sched) ~n system)
  done

(* Nemesis fault plans: every campaign in the catalogue, compiled at
   quick dimensions, against one paper system and one baseline. The
   plan's crashes and abort policies flow through [configure] /
   [qa_policy] / [mesh_policy] exactly as [Campaign.run_plan] wires
   them. *)
let test_fault_plans () =
  List.iter
    (fun campaign ->
      let cn, horizon = Campaign.dimensions ~quick:true in
      let plan = Campaign.plan campaign ~n:cn ~horizon in
      let qa_policy =
        Fault_plan.abort_policy plan ~target:Fault_plan.Qa
          ~base:Tbwf_registers.Abort_policy.Always
      in
      let mesh_policy =
        Fault_plan.abort_policy plan ~target:Fault_plan.Omega_mesh
          ~base:Tbwf_registers.Abort_policy.Always
      in
      List.iter
        (fun system ->
          agree
            (Fmt.str "campaign %s / %s" (Campaign.name campaign)
               (System.to_string system))
            (Differential.check ~seed:Campaign.default_seed ~telemetry:true
               ~qa_policy ~mesh_policy
               ~configure:(fun stack ->
                 Fault_plan.install_crashes plan stack.System.rt)
               ~policy:(fun () -> Fault_plan.policy plan)
               ~steps:horizon ~n:cn system))
        [ System.Tbwf_atomic; System.Naive_booster ])
    Campaign.catalogue

(* qcheck: arbitrary (system, policy shape, seed, step budget, mid-run
   crash) configurations agree byte for byte. Crashes are installed
   before the run via Runtime.crash_at, which fires mid-run at the
   drawn step. *)
let qcheck_backends_agree =
  let gen =
    QCheck.Gen.(
      let* sys_ix = int_bound (List.length System.all - 1) in
      let* pol = int_bound 2 in
      let* seed = map Int64.of_int (int_bound 10_000) in
      let* steps = map (fun k -> 500 + k) (int_bound 2_500) in
      let* crash_pid = int_bound (n - 1) in
      let* crash_step = int_bound (max 1 (steps - 1)) in
      let* crash = bool in
      return (sys_ix, pol, seed, steps, (crash, crash_pid, crash_step)))
  in
  let print (sys_ix, pol, seed, steps, (crash, cp, cs)) =
    Fmt.str "(%s, policy %d, seed %Ld, steps %d, crash %b pid %d @ %d)"
      (System.to_string (List.nth System.all sys_ix))
      pol seed steps crash cp cs
  in
  QCheck.Test.make ~count:25 ~name:"backends agree on arbitrary configs"
    (QCheck.make ~print gen)
    (fun (sys_ix, pol, seed, steps, (crash, crash_pid, crash_step)) ->
      let system = List.nth System.all sys_ix in
      let policy () =
        match pol with
        | 0 -> Policy.round_robin ()
        | 1 -> Scenario.degraded_policy ~n ~timely:[ 1 ] ()
        | _ -> Policy.weighted [| 0, 1.0; 1, 3.0; 2, 0.5 |]
      in
      let configure stack =
        if crash then
          Runtime.crash_at stack.System.rt ~pid:crash_pid ~step:crash_step
      in
      match
        Differential.check ~seed ~telemetry:true ~configure ~policy ~steps
          ~n system
      with
      | Differential.Agree -> true
      | Differential.Diverge _ as d ->
        QCheck.Test.fail_reportf "%a" Differential.pp_verdict d)

let () =
  Alcotest.run "differential"
    [
      ( "backends",
        [
          Alcotest.test_case "goldens matrix agrees" `Quick
            test_goldens_matrix;
          Alcotest.test_case "compiled reproduces committed goldens" `Quick
            test_goldens_pinned;
          Alcotest.test_case "fuzzed replay schedules agree" `Quick
            test_fuzzed_replay;
          Alcotest.test_case "nemesis fault plans agree" `Slow
            test_fault_plans;
          QCheck_alcotest.to_alcotest qcheck_backends_agree;
        ] );
    ]
