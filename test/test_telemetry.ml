open Tbwf_sim
open Tbwf_core
open Tbwf_objects
open Tbwf_experiments
open Tbwf_telemetry

(* --- Hist ---------------------------------------------------------------- *)

let test_hist_buckets () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Fmt.str "bucket_of %d" v) b (Hist.bucket_of v))
    [ 0, 0; 1, 1; 2, 2; 3, 2; 4, 3; 7, 3; 8, 4; 1023, 10; 1024, 11 ];
  Alcotest.(check int) "bucket_lo 0" 0 (Hist.bucket_lo 0);
  Alcotest.(check int) "bucket_lo 1" 1 (Hist.bucket_lo 1);
  Alcotest.(check int) "bucket_lo 4" 8 (Hist.bucket_lo 4)

let test_hist_stats () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 0; 1; 1; 2; 4; 100 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  Alcotest.(check (float 1e-9)) "mean" 18.0 (Hist.mean h);
  Alcotest.(check bool) "p50 bound covers median" true
    (Hist.quantile_bound h 0.5 >= 1);
  Alcotest.(check int) "p99 bound is max" 100 (Hist.quantile_bound h 0.99);
  Hist.observe h (-5);
  Alcotest.(check int) "negative clamps to zero bucket" 7 (Hist.count h)

(* --- Series -------------------------------------------------------------- *)

let test_series_windows () =
  let s = Series.create ~window:10 ~n:2 () in
  Series.bump s ~pid:0 ~step:5;
  Series.bump s ~pid:0 ~step:15;
  Series.bump s ~pid:1 ~step:25;
  Series.bump s ~pid:9 ~step:25;
  (* out of range: ignored *)
  Alcotest.(check int) "windows" 3 (Series.windows s);
  Alcotest.(check (array int)) "row 0 (padded)" [| 1; 1; 0 |]
    (Series.row s ~pid:0);
  Alcotest.(check (array int)) "row 1 (lazy growth padded)" [| 0; 0; 1 |]
    (Series.row s ~pid:1);
  Alcotest.(check (array int)) "totals" [| 2; 1 |] (Series.totals s);
  Alcotest.(check int) "tail_total from w1" 1
    (Series.tail_total s ~pid:0 ~from_window:1);
  Alcotest.(check (float 1e-9)) "mean per window" (2.0 /. 3.0)
    (Series.mean_per_window s ~pid:0)

let test_series_growth () =
  let s = Series.create ~window:2 ~n:1 () in
  for step = 0 to 999 do
    Series.bump s ~pid:0 ~step
  done;
  Alcotest.(check int) "windows after growth" 500 (Series.windows s);
  Alcotest.(check int) "total preserved" 1000 (Series.total s ~pid:0);
  Alcotest.(check bool) "every window holds 2" true
    (Array.for_all (fun c -> c = 2) (Series.row s ~pid:0))

(* --- Quantile ------------------------------------------------------------- *)

let test_quantile_exact_small () =
  let q = Quantile.create () in
  for v = 0 to 15 do
    Quantile.observe q v
  done;
  Alcotest.(check int) "count" 16 (Quantile.count q);
  Alcotest.(check int) "max" 15 (Quantile.max_value q);
  (* values 0..15 live in exact buckets: every quantile is exact *)
  Alcotest.(check int) "p50 exact" 7 (Quantile.quantile q 0.5);
  Alcotest.(check int) "p999 is max" 15 (Quantile.p999 q);
  Quantile.observe q (-3);
  Alcotest.(check int) "negative clamps to 0" 17 (Quantile.count q)

let test_quantile_error_bound () =
  let q = Quantile.create () in
  List.iter (Quantile.observe q) [ 100; 1_000; 50_000; 1_000_000 ];
  List.iter
    (fun (v, p) ->
      let b = Quantile.quantile q p in
      Alcotest.(check bool)
        (Fmt.str "upper bound at p=%.3f (%d for %d)" p b v)
        true
        (b >= v && b - v <= (v / 16) + 1))
    [ 100, 0.25; 1_000, 0.5; 50_000, 0.75; 1_000_000, 1.0 ];
  Alcotest.(check int) "max clamps the top quantile" 1_000_000
    (Quantile.p999 q)

let sketch_of values =
  let q = Quantile.create () in
  List.iter (Quantile.observe q) values;
  q

let qcheck_quantile_merge_algebra =
  QCheck.Test.make
    ~name:"quantile merge is associative, commutative and order-free"
    ~count:100
    QCheck.(
      triple
        (small_list (int_range 0 100_000))
        (small_list (int_range 0 100_000))
        (small_list (int_range 0 100_000)))
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      Quantile.equal
        (Quantile.merge (Quantile.merge a b) c)
        (Quantile.merge a (Quantile.merge b c))
      && Quantile.equal (Quantile.merge a b) (Quantile.merge b a)
      (* merging sketches = sketching the concatenation, any order *)
      && Quantile.equal
           (Quantile.merge a (Quantile.merge b c))
           (sketch_of (List.rev_append xs (List.rev_append ys zs))))

(* --- Span ---------------------------------------------------------------- *)

let test_span_latency_and_streaks () =
  let sp = Span.create ~n:2 in
  Span.on_invoke sp ~pid:0 ~obj_id:1 ~step:0;
  Span.on_respond sp ~pid:0 ~layer:Sink.App ~obj_id:1 ~step:5 ~aborted:false;
  Alcotest.(check int) "completed" 1 (Span.completed sp);
  let lat = Span.latency_of sp Sink.App in
  Alcotest.(check int) "latency count" 1 (Hist.count lat);
  Alcotest.(check (float 1e-9)) "latency mean" 5.0 (Hist.mean lat);
  (* Three aborts then a success: one streak of length 3. *)
  List.iter
    (fun step ->
      Span.on_invoke sp ~pid:1 ~obj_id:1 ~step;
      Span.on_respond sp ~pid:1 ~layer:Sink.App ~obj_id:1 ~step:(step + 1)
        ~aborted:true)
    [ 10; 12; 14 ];
  Span.on_invoke sp ~pid:1 ~obj_id:1 ~step:16;
  Span.on_respond sp ~pid:1 ~layer:Sink.App ~obj_id:1 ~step:17 ~aborted:false;
  match Span.to_json sp with
  | Json.Obj fields -> (
    Alcotest.(check bool) "all five spans completed" true
      (List.assoc "completed" fields = Json.Int 5);
    match List.assoc "abort_streaks" fields with
    | Json.Obj h ->
      Alcotest.(check bool) "one closed streak" true
        (List.assoc "count" h = Json.Int 1);
      Alcotest.(check bool) "streak length 3" true
        (List.assoc "max" h = Json.Int 3)
    | _ -> Alcotest.fail "abort_streaks should be a histogram object")
  | _ -> Alcotest.fail "span json should be an object"

let test_span_contention () =
  let sp = Span.create ~n:2 in
  Span.on_invoke sp ~pid:0 ~obj_id:7 ~step:0;
  Span.on_invoke sp ~pid:1 ~obj_id:7 ~step:1;
  (* both spans overlap on object 7: one contention window *)
  Span.on_respond sp ~pid:0 ~layer:Sink.App ~obj_id:7 ~step:2 ~aborted:false;
  Span.on_respond sp ~pid:1 ~layer:Sink.App ~obj_id:7 ~step:3 ~aborted:false;
  (* a solo operation afterwards does not reopen the window *)
  Span.on_invoke sp ~pid:0 ~obj_id:7 ~step:4;
  Span.on_respond sp ~pid:0 ~layer:Sink.App ~obj_id:7 ~step:5 ~aborted:false;
  match Span.to_json sp with
  | Json.Obj fields -> (
    match List.assoc "contention" fields with
    | Json.Obj c ->
      Alcotest.(check bool) "one window" true
        (List.assoc "windows" c = Json.Int 1);
      Alcotest.(check bool) "two contended spans" true
        (List.assoc "contended_spans" c = Json.Int 2)
    | _ -> Alcotest.fail "contention should be an object")
  | _ -> Alcotest.fail "span json should be an object"

let test_span_orphan_respond () =
  let sp = Span.create ~n:1 in
  (* A respond with no recorded invoke (collector attached mid-run) is
     silently ignored rather than crashing or corrupting counts. *)
  Span.on_respond sp ~pid:0 ~layer:Sink.App ~obj_id:3 ~step:9 ~aborted:false;
  Alcotest.(check int) "nothing completed" 0 (Span.completed sp)

(* --- Json ---------------------------------------------------------------- *)

let test_json_printing () =
  let doc =
    Json.Obj
      [
        "s", Json.Str "a\"b\n";
        "i", Json.Int (-3);
        "f", Json.Float 1.5;
        "g", Json.Float 2.0;
        "a", Json.Arr [ Json.Bool true; Json.Null ];
      ]
  in
  Alcotest.(check string) "compact deterministic"
    "{\"s\":\"a\\\"b\\n\",\"i\":-3,\"f\":1.5,\"g\":2.0,\"a\":[true,null]}"
    (Json.to_string doc)

let test_json_schema () =
  let doc =
    Json.Obj
      [
        "b", Json.Arr [ Json.Int 1; Json.Int 2; Json.Int 3 ];
        "a", Json.Obj [ "x", Json.Str "s" ];
        "e", Json.Arr [];
      ]
  in
  Alcotest.(check (list string)) "sorted deduped paths"
    [
      ": object";
      "a.x: string";
      "a: object";
      "b: array";
      "b[]: int";
      "e: array";
    ]
    (Json.schema_paths doc)

(* --- Collector on a live scenario ---------------------------------------- *)

let build_stack ~seed =
  Scenario.build ~seed ~n:3 ~omega:Scenario.Omega_atomic ~spec:Counter.spec
    ~next_op:(Workload.forever Counter.inc)
    ~client_pids:[ 0; 1; 2 ] ()

let test_collector_agrees_with_workload () =
  let stack = build_stack ~seed:42L in
  let telemetry = Collector.attach ~window:256 stack.Scenario.rt in
  Runtime.run stack.Scenario.rt ~policy:(Policy.round_robin ()) ~steps:6_000;
  Runtime.stop stack.Scenario.rt;
  Alcotest.(check (array int)) "app_completed = workload completed"
    stack.Scenario.stats.Workload.completed
    (Collector.app_completed telemetry);
  Alcotest.(check (array int)) "series totals = workload completed"
    stack.Scenario.stats.Workload.completed
    (Series.totals (Collector.app_ops telemetry));
  Alcotest.(check int) "every step attributed" 6_000
    (Collector.total_steps telemetry);
  let per_pid = Collector.steps_per_pid telemetry in
  Alcotest.(check int) "pid + idle steps = total" 6_000
    (Collector.idle_steps telemetry + Array.fold_left ( + ) 0 per_pid);
  Array.iteri
    (fun pid steps ->
      let by_layer =
        List.fold_left
          (fun acc layer -> acc + Collector.layer_steps telemetry ~pid layer)
          0 Sink.layers
      in
      Alcotest.(check int) (Fmt.str "pid %d layers sum" pid) steps by_layer)
    per_pid;
  Alcotest.(check int) "handoffs = epochs"
    (Collector.leader_epochs telemetry)
    (List.length (Collector.handoffs telemetry));
  Alcotest.(check bool) "leadership changed hands at least once" true
    (Collector.leader_epochs telemetry >= 1)

let test_sink_lifecycle () =
  let rt = Runtime.create ~seed:7L ~n:2 () in
  Alcotest.(check bool) "nil sink inactive by default" false
    (Runtime.telemetry_active rt);
  let (_ : Collector.t) = Collector.attach rt in
  Alcotest.(check bool) "collector active" true (Runtime.telemetry_active rt);
  Runtime.clear_sink rt;
  Alcotest.(check bool) "cleared" false (Runtime.telemetry_active rt);
  Runtime.stop rt

let test_snapshot_deterministic () =
  let snap seed =
    let stack = build_stack ~seed in
    let telemetry = Collector.attach stack.Scenario.rt in
    let policy = Scenario.degraded_policy ~n:3 ~timely:[ 2 ] () in
    Runtime.run stack.Scenario.rt ~policy ~steps:4_000;
    Runtime.stop stack.Scenario.rt;
    Collector.snapshot_string telemetry
  in
  Alcotest.(check string) "same seed, same snapshot" (snap 5L) (snap 5L);
  Alcotest.(check bool) "different seed, different snapshot" false
    (String.equal (snap 5L) (snap 6L))

(* --- the replay property -------------------------------------------------- *)

(* Telemetry must be a pure function of the run: replaying the recorded
   schedule on a fresh identically-seeded stack reproduces the snapshot
   byte for byte. *)
let qcheck_snapshot_replay_stable =
  QCheck.Test.make ~name:"snapshot byte-identical under schedule replay"
    ~count:25
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      let stack = build_stack ~seed in
      let telemetry = Collector.attach ~window:128 stack.Scenario.rt in
      let policy = Scenario.degraded_policy ~n:3 ~timely:[ 1; 2 ] () in
      Runtime.run stack.Scenario.rt ~policy ~steps:3_000;
      let sched = Trace.schedule (Runtime.trace stack.Scenario.rt) in
      let original = Collector.snapshot_string telemetry in
      Runtime.stop stack.Scenario.rt;
      let stack' = build_stack ~seed in
      let telemetry' = Collector.attach ~window:128 stack'.Scenario.rt in
      Runtime.run stack'.Scenario.rt ~policy:(Policy.replay sched)
        ~steps:3_000;
      let replayed = Collector.snapshot_string telemetry' in
      Runtime.stop stack'.Scenario.rt;
      String.equal original replayed)

(* --- merge tie-break ------------------------------------------------------ *)

(* Collector.merge interleaves step-sorted event lists chronologically;
   on EQUAL steps the first argument's events come first. That argument-
   order tie-break (not domain completion order) is what makes pooled
   matrix telemetry byte-identical at any job count — pin it directly. *)
let test_merge_tie_break_order () =
  let feed changes =
    let c = Collector.create ~n:3 () in
    let sink = Collector.sink c in
    List.iter
      (fun (step, leader) ->
        sink.Sink.on_signal ~step ~pid:leader
          (Sink.Leader_view { leader = Some leader }))
      changes;
    c
  in
  (* same steps in both collectors: every merge point is a tie *)
  let a = feed [ 10, 0; 20, 1 ] in
  let b = feed [ 10, 2; 20, 0 ] in
  let leaders c =
    List.map (fun e -> e.Collector.le_step, e.Collector.le_leader)
      (Collector.handoffs c)
  in
  Alcotest.(check (list (pair int int)))
    "a's events first on equal steps"
    [ 10, 0; 10, 2; 20, 1; 20, 0 ]
    (leaders (Collector.merge a b));
  Alcotest.(check (list (pair int int)))
    "argument order decides, not content"
    [ 10, 2; 10, 0; 20, 0; 20, 1 ]
    (leaders (Collector.merge b a))

(* --- merge edge cases ------------------------------------------------------ *)

let test_merge_empty_collectors () =
  let a = Collector.create ~n:2 () and b = Collector.create ~n:2 () in
  let m = Collector.merge a b in
  Alcotest.(check int) "no steps" 0 (Collector.total_steps m);
  Alcotest.(check (array int)) "no completions" [| 0; 0 |]
    (Collector.app_completed m);
  Alcotest.(check int) "no handoffs" 0 (List.length (Collector.handoffs m));
  Alcotest.(check bool) "snapshot still renders" true
    (String.length (Collector.snapshot_string m) > 0);
  Alcotest.check_raises "mismatched n rejected"
    (Invalid_argument "Collector.merge: process counts differ")
    (fun () -> ignore (Collector.merge a (Collector.create ~n:3 ())))

(* Merging a shared-memory collector (no net events, zero counters) with
   a message-passing one must keep the net section additive — the soak
   aggregate merges whatever shards a system ran on. *)
let test_merge_net_section () =
  let sm = Collector.create ~n:2 () in
  let mp = Collector.create ~n:2 () in
  let sink = Collector.sink mp in
  sink.Sink.on_signal ~step:5 ~pid:0
    (Sink.Message { src = 0; dst = 1; latency = 3; dropped = false });
  sink.Sink.on_signal ~step:6 ~pid:1
    (Sink.Message { src = 1; dst = 0; latency = 2; dropped = true });
  List.iter
    (fun m ->
      Alcotest.(check int) "sent sums" 2 (Collector.net_sent m);
      Alcotest.(check int) "dropped sums" 1 (Collector.net_dropped m);
      Alcotest.(check int) "only delivered latencies" 1
        (Hist.count (Collector.net_latency m)))
    [ Collector.merge sm mp; Collector.merge mp sm ]

(* --- v2 stream schema golden ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let stream_schema_golden () =
  (* dune runtest runs with cwd = _build/default/test; `dune exec` from
     the repo root does not. *)
  match
    List.find_opt Sys.file_exists
      [ "golden/telemetry_stream.schema"; "test/golden/telemetry_stream.schema" ]
  with
  | Some p -> read_file p
  | None -> Alcotest.fail "telemetry_stream.schema golden not found"

let test_stream_schema_pinned () =
  let stack = build_stack ~seed:42L in
  let rt = stack.Scenario.rt in
  let telemetry = Collector.attach ~window:256 rt in
  let tm = Tbwf_check.Tail_monitor.create ~n:3 ~window:2000 () in
  Runtime.set_sink rt
    (Sink.tee (Tbwf_check.Tail_monitor.sink tm) (Collector.sink telemetry));
  let last = ref None in
  Collector.emit_every telemetry ~every:2000
    ~extra:(fun ~window:_ ->
      [ "tail_monitor", Tbwf_check.Tail_monitor.to_json tm ])
    (fun record -> last := Some record);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:6_000;
  Collector.stream_flush telemetry;
  Runtime.stop rt;
  match !last with
  | None -> Alcotest.fail "no stream record emitted"
  | Some record ->
    Alcotest.(check string) "tbwf-telemetry/v2 record schema"
      (stream_schema_golden ())
      (Json.schema_string record)

(* --- bounded live memory --------------------------------------------------- *)

(* The long-horizon configuration (no trace recording, a retained rate
   series, capped event lists, fixed-size sketches) must hold the
   collector's live words flat: 10x the steps, no growth. This is the
   invariant that lets tbwf_soak run tens of millions of steps in a few
   dozen MB. *)
let live_words_after steps =
  let n = 4 in
  let stack =
    Tbwf_system.System.build ~seed:11L ~record_trace:false ~telemetry:true
      ~telemetry_window:256 ~telemetry_retain:64 ~n
      Tbwf_system.System.Tbwf_atomic
  in
  let rt = stack.Tbwf_system.System.rt in
  let telemetry = Option.get stack.Tbwf_system.System.telemetry in
  Runtime.run rt
    ~policy:(Scenario.degraded_policy ~n ~timely:[ 1; 2; 3 ] ())
    ~steps;
  Runtime.stop rt;
  Obj.reachable_words (Obj.repr telemetry)

let test_bounded_live_words () =
  let short = live_words_after 100_000 in
  let long = live_words_after 1_000_000 in
  Alcotest.(check bool)
    (Fmt.str "live words bounded (%d @ 100k steps, %d @ 1M)" short long)
    true
    (long <= short + (short / 10))

let () =
  Alcotest.run "telemetry"
    [
      ( "hist",
        [
          Alcotest.test_case "log2 buckets" `Quick test_hist_buckets;
          Alcotest.test_case "stats" `Quick test_hist_stats;
        ] );
      ( "series",
        [
          Alcotest.test_case "windows" `Quick test_series_windows;
          Alcotest.test_case "growth" `Quick test_series_growth;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact small values" `Quick
            test_quantile_exact_small;
          Alcotest.test_case "relative error bound" `Quick
            test_quantile_error_bound;
          QCheck_alcotest.to_alcotest qcheck_quantile_merge_algebra;
        ] );
      ( "span",
        [
          Alcotest.test_case "latency and streaks" `Quick
            test_span_latency_and_streaks;
          Alcotest.test_case "contention windows" `Quick test_span_contention;
          Alcotest.test_case "orphan respond ignored" `Quick
            test_span_orphan_respond;
        ] );
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_printing;
          Alcotest.test_case "schema paths" `Quick test_json_schema;
        ] );
      ( "collector",
        [
          Alcotest.test_case "agrees with workload" `Quick
            test_collector_agrees_with_workload;
          Alcotest.test_case "sink lifecycle" `Quick test_sink_lifecycle;
          Alcotest.test_case "deterministic snapshot" `Quick
            test_snapshot_deterministic;
          Alcotest.test_case "merge tie-break order" `Quick
            test_merge_tie_break_order;
          Alcotest.test_case "merge of empty collectors" `Quick
            test_merge_empty_collectors;
          Alcotest.test_case "merge net section (SM vs MP)" `Quick
            test_merge_net_section;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "v2 record schema pinned" `Quick
            test_stream_schema_pinned;
          Alcotest.test_case "bounded live words over 1M steps" `Slow
            test_bounded_live_words;
        ] );
      ( "replay",
        [ QCheck_alcotest.to_alcotest qcheck_snapshot_replay_stable ] );
    ]
