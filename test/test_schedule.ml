(* Serializable schedules: the text format round-trips exactly, rejects
   malformed input, and — the determinism regression — replaying a recorded
   schedule on a fresh identically-seeded runtime reproduces the original
   trace byte for byte, for every kind of policy the simulator offers. *)

open Tbwf_sim

let schedule_eq = Alcotest.(list int)

(* --- text format round-trip ---------------------------------------------- *)

let roundtrip sched =
  match Schedule.of_string (Schedule.to_string sched) with
  | Ok parsed -> parsed
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let test_roundtrip_with_idles () =
  let sched = Schedule.make ~seed:42L ~n:3 [ 0; 0; -1; 1; -1; -1; 2; 2; 2 ] in
  Alcotest.(check string) "rendered text"
    "tbwf-sched v1 n=3 seed=42\n0x2 _ 1 _x2 2x3\n"
    (Schedule.to_string sched);
  let parsed = roundtrip sched in
  Alcotest.check schedule_eq "pids" (Schedule.pids sched) (Schedule.pids parsed);
  Alcotest.(check int) "n" 3 (Schedule.n parsed);
  Alcotest.(check int64) "seed" 42L (Schedule.seed parsed)

let test_roundtrip_empty () =
  let parsed = roundtrip (Schedule.make ~n:2 []) in
  Alcotest.check schedule_eq "no steps" [] (Schedule.pids parsed);
  Alcotest.(check int64) "default seed survives" 0xC0FFEEL
    (Schedule.seed parsed)

let test_comments_and_blank_lines_ignored () =
  let text =
    "# a committed counterexample\n\ntbwf-sched v1 n=2 seed=1\n# body below\n\
     1 0x2\n\n# trailing note\n"
  in
  match Schedule.of_string text with
  | Ok sched ->
    Alcotest.check schedule_eq "pids" [ 1; 0; 0 ] (Schedule.pids sched)
  | Error msg -> Alcotest.failf "rejected commented schedule: %s" msg

let test_parse_errors () =
  let rejects label text =
    match Schedule.of_string text with
    | Ok _ -> Alcotest.failf "%s: accepted malformed input" label
    | Error _ -> ()
  in
  rejects "empty input" "";
  rejects "wrong magic" "bogus v1 n=2\n0\n";
  rejects "wrong version" "tbwf-sched v2 n=2\n0\n";
  rejects "missing n" "tbwf-sched v1 seed=3\n0\n";
  rejects "bad n" "tbwf-sched v1 n=zero\n0\n";
  rejects "pid out of range" "tbwf-sched v1 n=2\n0 1 2\n";
  rejects "garbage pid" "tbwf-sched v1 n=2\nzebra\n";
  rejects "zero repeat" "tbwf-sched v1 n=2\n0x0\n"

let test_make_validates () =
  let raises label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted invalid schedule" label
  in
  raises "pid >= n" (fun () -> Schedule.make ~n:2 [ 0; 2 ]);
  raises "pid < -1" (fun () -> Schedule.make ~n:2 [ -2 ]);
  raises "n < 1" (fun () -> Schedule.make ~n:0 [])

(* --- determinism regression ---------------------------------------------- *)

(* A deterministic 3-process scenario over plain cells (no random object
   behaviour): every process writes tagged values to a shared cell and its
   private cell, and reads the shared one back. The full observable trace —
   schedule plus every operation event — is rendered to a string, so
   "byte-identical" means exactly that. *)

let make_cell rt name =
  let contents = ref (Value.Int 0) in
  Runtime.register_object rt ~name ~respond:(fun ctx ->
      match ctx.Shared.op with
      | Value.Pair (Str "write", v) ->
        contents := v;
        Value.Unit
      | Value.Pair (Str "read", _) -> !contents
      | _ -> assert false)

let build_runtime ~seed =
  let rt = Runtime.create ~seed ~n:3 () in
  let shared = make_cell rt "shared" in
  let private_ = Array.init 3 (fun pid -> make_cell rt (Fmt.str "priv%d" pid)) in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"worker" (fun () ->
        for k = 1 to 4 do
          let v = Value.Int ((pid * 10) + k) in
          let (_ : Value.t) = Runtime.call shared (Value.write_op v) in
          let (_ : Value.t) = Runtime.call private_.(pid) (Value.write_op v) in
          let (_ : Value.t) = Runtime.call shared Value.read_op in
          ()
        done)
  done;
  rt

let render rt =
  let trace = Runtime.trace rt in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "schedule %a\n" Fmt.(list ~sep:sp int) (Trace.schedule trace));
  List.iter
    (fun (e : Trace.op_event) ->
      Buffer.add_string buf
        (Fmt.str "%3d p%d %s#%d %a %s\n" e.step e.pid e.obj_name e.obj_id
           Value.pp e.op
           (match e.phase with
           | `Invoke -> "invoke"
           | `Respond r -> Fmt.str "-> %a" Value.pp r)))
    (Trace.ops trace);
  Buffer.contents buf

let policies =
  [
    ("round_robin", fun () -> Policy.round_robin ());
    ("weighted", fun () -> Policy.weighted [| (0, 1.0); (1, 2.5); (2, 0.5) |]);
    ( "of_patterns",
      fun () ->
        Policy.of_patterns
          [
            (0, Policy.Every { period = 2; offset = 0 });
            ( 1,
              Policy.Switch_at
                ( 8,
                  Policy.Flicker { active = 2; sleep = 2; growth = 1.5 },
                  Policy.Weighted 2.0 ) );
            ( 2,
              Policy.Switch_at
                ( 6,
                  Policy.Silent,
                  Policy.Slowing { initial_gap = 2; growth = 2.0; burst = 3 } )
            );
          ] );
    ("solo_after", fun () -> Policy.solo_after ~n:3 ~pid:1 ~step:10);
    ( "of_script",
      fun () ->
        Policy.of_script
          [ 0; 1; 2; 2; 1; 0; 1; 1; 2; 0; 0; 1; 2; 0; 1; 2; 1; 0; 2; 2 ] );
    ( "replay",
      fun () ->
        Policy.replay [ 0; 0; 1; -1; 2; 1; 0; 2; 2; 1; -1; 0; 1; 2; 0 ] );
  ]

let test_replay_reproduces_trace (policy_name, make_policy) () =
  let seed = 7L in
  (* original run under the policy *)
  let rt = build_runtime ~seed in
  Runtime.run rt ~policy:(make_policy ()) ~steps:60;
  let original = render rt in
  let sched = Schedule.of_trace ~seed ~n:3 (Runtime.trace rt) in
  Runtime.stop rt;
  (* replay the recorded schedule on a fresh identically-seeded runtime,
     going through the text serialization to cover the whole pipeline *)
  let sched =
    match Schedule.of_string (Schedule.to_string sched) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "%s: serialization broke: %s" policy_name msg
  in
  let rt' = build_runtime ~seed:(Schedule.seed sched) in
  Runtime.run rt' ~policy:(Schedule.to_policy sched)
    ~steps:(Schedule.length sched);
  let replayed = render rt' in
  Runtime.stop rt';
  Alcotest.(check string)
    (policy_name ^ ": replay is byte-identical")
    original replayed

let () =
  Alcotest.run "schedule"
    [
      ( "format",
        [
          Alcotest.test_case "round-trip with idles" `Quick
            test_roundtrip_with_idles;
          Alcotest.test_case "round-trip empty" `Quick test_roundtrip_empty;
          Alcotest.test_case "comments and blanks ignored" `Quick
            test_comments_and_blank_lines_ignored;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "make validates" `Quick test_make_validates;
        ] );
      ( "determinism",
        List.map
          (fun p ->
            Alcotest.test_case (fst p) `Quick (test_replay_reproduces_trace p))
          policies );
    ]
