open Tbwf_sim
open Tbwf_check

let op ~pid ~invoke ~respond o result =
  { History.pid; op = o; result; invoke; respond }

let reg_spec = Linearizability.register_spec ~init:(Value.Int 0)

let test_empty_history () =
  Alcotest.(check bool) "empty is linearizable" true
    (Linearizability.check reg_spec [])

let test_sequential_good () =
  let history =
    [
      op ~pid:0 ~invoke:0 ~respond:1 (Value.write_op (Value.Int 5)) Value.Unit;
      op ~pid:0 ~invoke:2 ~respond:3 Value.read_op (Value.Int 5);
    ]
  in
  Alcotest.(check bool) "write then read" true
    (Linearizability.check reg_spec history)

let test_sequential_bad () =
  let history =
    [
      op ~pid:0 ~invoke:0 ~respond:1 (Value.write_op (Value.Int 5)) Value.Unit;
      op ~pid:0 ~invoke:2 ~respond:3 Value.read_op (Value.Int 6);
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Linearizability.check reg_spec history)

let test_concurrent_either_order () =
  (* Two concurrent writes then a read seeing either one. *)
  let base v =
    [
      op ~pid:0 ~invoke:0 ~respond:3 (Value.write_op (Value.Int 1)) Value.Unit;
      op ~pid:1 ~invoke:1 ~respond:2 (Value.write_op (Value.Int 2)) Value.Unit;
      op ~pid:2 ~invoke:4 ~respond:5 Value.read_op (Value.Int v);
    ]
  in
  Alcotest.(check bool) "read 1 ok" true (Linearizability.check reg_spec (base 1));
  Alcotest.(check bool) "read 2 ok" true (Linearizability.check reg_spec (base 2));
  Alcotest.(check bool) "read 3 impossible" false
    (Linearizability.check reg_spec (base 3))

let test_real_time_order_respected () =
  (* Sequential write 1 THEN write 2 (non-overlapping) — a later read of 1
     is not linearizable. *)
  let history =
    [
      op ~pid:0 ~invoke:0 ~respond:1 (Value.write_op (Value.Int 1)) Value.Unit;
      op ~pid:1 ~invoke:2 ~respond:3 (Value.write_op (Value.Int 2)) Value.Unit;
      op ~pid:2 ~invoke:4 ~respond:5 Value.read_op (Value.Int 1);
    ]
  in
  Alcotest.(check bool) "overwritten value not readable" false
    (Linearizability.check reg_spec history)

let test_concurrent_read_new_or_old () =
  (* A read concurrent with a write may see either old or new value. *)
  let base v =
    [
      op ~pid:0 ~invoke:0 ~respond:1 (Value.write_op (Value.Int 1)) Value.Unit;
      op ~pid:0 ~invoke:2 ~respond:6 (Value.write_op (Value.Int 2)) Value.Unit;
      op ~pid:1 ~invoke:3 ~respond:4 Value.read_op (Value.Int v);
    ]
  in
  Alcotest.(check bool) "old ok" true (Linearizability.check reg_spec (base 1));
  Alcotest.(check bool) "new ok" true (Linearizability.check reg_spec (base 2))

let test_counter_spec () =
  let history ok =
    [
      op ~pid:0 ~invoke:0 ~respond:1 (Value.Str "inc") (Value.Int 0);
      op ~pid:1 ~invoke:2 ~respond:3 (Value.Str "inc") (Value.Int (if ok then 1 else 0));
      op ~pid:0 ~invoke:4 ~respond:5 Value.read_op (Value.Int 2);
    ]
  in
  Alcotest.(check bool) "monotone increments ok" true
    (Linearizability.check Linearizability.counter_spec (history true));
  Alcotest.(check bool) "duplicate return rejected" false
    (Linearizability.check Linearizability.counter_spec (history false))

let test_history_extraction () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Tbwf_registers.Atomic_reg.create rt ~name:"X"
      ~codec:Tbwf_registers.Codec.int ~init:0
  in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        Tbwf_registers.Atomic_reg.write reg pid;
        ignore (Tbwf_registers.Atomic_reg.read reg))
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  let history = History.complete_ops (Runtime.trace rt) ~obj_name:"X" in
  Alcotest.(check int) "four complete ops" 4 (List.length history);
  List.iter
    (fun o ->
      Alcotest.(check bool) "window ordered" true (o.History.invoke < o.History.respond))
    history

let test_pending_ops_dropped () =
  let rt = Runtime.create ~n:1 () in
  let obj =
    Runtime.register_object rt ~name:"Y" ~respond:(fun _ -> Value.Unit)
  in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  (* Stop after 2 steps: the first op completes at step 1 — the same step
     whose continuation also invokes the second op, which is then left
     pending. *)
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2;
  let history = History.complete_ops (Runtime.trace rt) ~obj_name:"Y" in
  Alcotest.(check int) "only the complete op extracted" 1 (List.length history);
  Runtime.stop rt

(* Random register histories produced by the ATOMIC register are always
   accepted; mutated results are usually rejected. Covers the checker
   against its own blind spots. *)
let qcheck_mutation_detected =
  QCheck.Test.make ~name:"mutating a read result breaks linearizability"
    ~count:50
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let rt = Runtime.create ~seed:(Int64.of_int seed) ~n:2 () in
      let reg =
        Tbwf_registers.Atomic_reg.create rt ~name:"Z"
          ~codec:Tbwf_registers.Codec.int ~init:0
      in
      for pid = 0 to 1 do
        Runtime.spawn rt ~pid ~name:"t" (fun () ->
            for k = 1 to 3 do
              Tbwf_registers.Atomic_reg.write reg ((pid * 100) + k);
              ignore (Tbwf_registers.Atomic_reg.read reg)
            done)
      done;
      Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 1.3 |]) ~steps:300;
      Runtime.stop rt;
      let history = History.complete_ops (Runtime.trace rt) ~obj_name:"Z" in
      let mutated =
        List.map
          (fun o ->
            if Value.is_read o.History.op then
              { o with History.result = Value.Int 999_999 }
            else o)
          history
      in
      Linearizability.check reg_spec history
      && not (Linearizability.check reg_spec mutated))

(* --- permutation oracle -------------------------------------------------- *)

(* Brute-force ground truth for the Wing–Gong checker: a history of <= 6
   operations is linearizable iff some permutation of its operations both
   respects real-time precedence and is legal for the sequential spec.
   Checked against random well-formed histories — including illegal ones,
   so agreement is exercised on both verdicts. *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
      xs

let oracle spec history =
  let ops = Array.of_list history in
  let respects_real_time perm =
    let rec ok = function
      | [] -> true
      | a :: rest ->
        List.for_all
          (fun b ->
            not (ops.(b).History.respond < ops.(a).History.invoke))
          rest
        && ok rest
    in
    ok perm
  in
  let legal perm =
    let rec go state = function
      | [] -> true
      | i :: rest -> (
        match spec.Linearizability.apply state ops.(i).History.op with
        | Some (state', r) when Value.equal r ops.(i).History.result ->
          go state' rest
        | Some _ | None -> false)
    in
    go spec.Linearizability.initial perm
  in
  List.exists
    (fun p -> respects_real_time p && legal p)
    (permutations (List.init (Array.length ops) Fun.id))

(* Well-formed random history: each pid's operations are sequential (its
   own windows don't overlap); windows of different pids overlap freely.
   Results are drawn from a small domain, so a good fraction of histories
   are NOT linearizable. *)
let gen_history ~ops_of seed =
  let rng = Rng.create (Int64.of_int seed) in
  let n_ops = 1 + Rng.int rng 6 in
  let clock = Array.make 3 0 in
  List.init n_ops (fun _ ->
      let pid = Rng.int rng 3 in
      let invoke = clock.(pid) + Rng.int rng 3 in
      let respond = invoke + 1 + Rng.int rng 4 in
      clock.(pid) <- respond + 1;
      let o, result = ops_of rng in
      { History.pid; op = o; result; invoke; respond })

let counter_ops rng =
  if Rng.bool rng 0.5 then (Value.Str "inc", Value.Int (Rng.int rng 4))
  else (Value.read_op, Value.Int (Rng.int rng 4))

let register_ops rng =
  if Rng.bool rng 0.5 then
    (Value.write_op (Value.Int (Rng.int rng 4)), Value.Unit)
  else (Value.read_op, Value.Int (Rng.int rng 4))

let agrees_with_oracle ~name ~spec ~ops_of =
  QCheck.Test.make ~name ~count:300
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let history = gen_history ~ops_of seed in
      Linearizability.check spec history = oracle spec history)

let qcheck_counter_oracle =
  agrees_with_oracle ~name:"checker agrees with permutation oracle (counter)"
    ~spec:Linearizability.counter_spec ~ops_of:counter_ops

let qcheck_register_oracle =
  agrees_with_oracle ~name:"checker agrees with permutation oracle (register)"
    ~spec:reg_spec ~ops_of:register_ops

let () =
  Alcotest.run "check"
    [
      ( "linearizability",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential good" `Quick test_sequential_good;
          Alcotest.test_case "sequential bad" `Quick test_sequential_bad;
          Alcotest.test_case "concurrent either order" `Quick
            test_concurrent_either_order;
          Alcotest.test_case "real-time order respected" `Quick
            test_real_time_order_respected;
          Alcotest.test_case "concurrent read old or new" `Quick
            test_concurrent_read_new_or_old;
          Alcotest.test_case "counter spec" `Quick test_counter_spec;
          QCheck_alcotest.to_alcotest qcheck_counter_oracle;
          QCheck_alcotest.to_alcotest qcheck_register_oracle;
        ] );
      ( "history",
        [
          Alcotest.test_case "extraction" `Quick test_history_extraction;
          Alcotest.test_case "pending dropped" `Quick test_pending_ops_dropped;
          QCheck_alcotest.to_alcotest qcheck_mutation_detected;
        ] );
    ]
