open Tbwf_sim
open Tbwf_objects

let test_solo_update_scan () =
  let rt = Runtime.create ~n:2 () in
  let snap = Atomic_snapshot.create rt ~name:"S" ~init:(Value.Int 0) in
  let view = ref [||] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      Atomic_snapshot.update snap (Value.Int 7);
      view := Atomic_snapshot.scan snap);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10_000;
  Runtime.stop rt;
  Alcotest.(check int) "view width" 2 (Array.length !view);
  Alcotest.(check bool) "own segment" true (Value.equal !view.(0) (Value.Int 7));
  Alcotest.(check bool) "untouched segment" true
    (Value.equal !view.(1) (Value.Int 0))

(* Component-wise order on views where every writer writes strictly
   increasing Ints: u <= v iff every component of u is <= v's. Atomicity of
   the snapshot means all returned views are totally ordered. *)
let leq u v =
  let ok = ref true in
  Array.iteri
    (fun i ui -> if Value.to_int ui > Value.to_int v.(i) then ok := false)
    u;
  !ok

let comparable u v = leq u v || leq v u

let run_contended ~seed ~n ~rounds =
  let rt = Runtime.create ~seed ~n () in
  let snap = Atomic_snapshot.create rt ~name:"S" ~init:(Value.Int 0) in
  let views = ref [] in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        for k = 1 to rounds do
          Atomic_snapshot.update snap (Value.Int k);
          let view = Atomic_snapshot.scan snap in
          views := (pid, view) :: !views
        done)
  done;
  Runtime.run rt
    ~policy:(Policy.weighted [| 0, 1.0; 1, 1.7; 2, 0.6; 3, 1.2 |])
    ~steps:400_000;
  Runtime.stop rt;
  List.rev !views

let test_views_totally_ordered () =
  let views = List.map snd (run_contended ~seed:3L ~n:3 ~rounds:8) in
  Alcotest.(check bool) "collected enough views" true (List.length views >= 20);
  List.iteri
    (fun i u ->
      List.iteri
        (fun j v ->
          if i < j && not (comparable u v) then
            Alcotest.failf "views %d and %d incomparable" i j)
        views)
    views

let test_own_scans_monotone () =
  let views = run_contended ~seed:9L ~n:4 ~rounds:6 in
  let by_pid pid =
    List.filter_map (fun (p, v) -> if p = pid then Some v else None) views
  in
  for pid = 0 to 3 do
    let rec check = function
      | u :: (v :: _ as rest) ->
        if not (leq u v) then
          Alcotest.failf "pid %d scans went backwards" pid;
        check rest
      | [ _ ] | [] -> ()
    in
    check (by_pid pid)
  done

let test_scan_sees_own_update () =
  (* A scan after my update must show at least that update in my segment. *)
  let views = run_contended ~seed:5L ~n:3 ~rounds:8 in
  let counters = Array.make 3 0 in
  List.iter
    (fun (pid, view) ->
      counters.(pid) <- counters.(pid) + 1;
      if Value.to_int view.(pid) < counters.(pid) then
        Alcotest.failf "pid %d scan missed its own update %d" pid counters.(pid))
    views

let qcheck_total_order_random_schedules =
  QCheck.Test.make ~name:"views totally ordered on random schedules" ~count:25
    QCheck.(int_range 1 50_000)
    (fun seed ->
      let views =
        List.map snd (run_contended ~seed:(Int64.of_int seed) ~n:3 ~rounds:4)
      in
      List.for_all
        (fun u -> List.for_all (fun v -> comparable u v) views)
        views)

let () =
  Alcotest.run "snapshot"
    [
      ( "atomic snapshot",
        [
          Alcotest.test_case "solo update/scan" `Quick test_solo_update_scan;
          Alcotest.test_case "views totally ordered" `Quick
            test_views_totally_ordered;
          Alcotest.test_case "own scans monotone" `Quick test_own_scans_monotone;
          Alcotest.test_case "scan sees own update" `Quick
            test_scan_sees_own_update;
          QCheck_alcotest.to_alcotest qcheck_total_order_random_schedules;
        ] );
    ]
