open Tbwf_sim
open Tbwf_registers
open Tbwf_objects

let value = Alcotest.testable Value.pp Value.equal

(* --- Cas_reg ------------------------------------------------------------- *)

let test_cas_reg_basic () =
  let rt = Runtime.create ~n:1 () in
  let reg = Cas_reg.create rt ~name:"c" ~codec:Codec.int ~init:5 in
  let outcomes = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      outcomes := Cas_reg.cas reg ~expected:5 ~desired:7 :: !outcomes;
      outcomes := Cas_reg.cas reg ~expected:5 ~desired:9 :: !outcomes;
      Cas_reg.write reg 1;
      outcomes := Cas_reg.cas reg ~expected:1 ~desired:2 :: !outcomes);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check (list bool)) "cas outcomes" [ true; false; true ]
    (List.rev !outcomes);
  Alcotest.(check int) "final value" 2 (Cas_reg.peek reg)

let test_cas_reg_linearizes_races () =
  (* Two processes CAS from the same expected value: exactly one wins. *)
  let rt = Runtime.create ~n:2 () in
  let reg = Cas_reg.create rt ~name:"c" ~codec:Codec.int ~init:0 in
  let wins = Array.make 2 false in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        wins.(pid) <- Cas_reg.cas reg ~expected:0 ~desired:(pid + 1))
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check bool) "exactly one winner" true (wins.(0) <> wins.(1));
  let winner = if wins.(0) then 1 else 2 in
  Alcotest.(check int) "value is winner's" winner (Cas_reg.peek reg)

(* --- sequential deque spec ----------------------------------------------- *)

let test_deque_spec () =
  let apply = Seq_spec.apply_exn Deque_obj.spec in
  let s = Deque_obj.spec.Seq_spec.initial in
  let s, _ = apply s (Deque_obj.push_right (Value.Int 2)) in
  let s, _ = apply s (Deque_obj.push_left (Value.Int 1)) in
  let s, _ = apply s (Deque_obj.push_right (Value.Int 3)) in
  let s, r1 = apply s Deque_obj.pop_left in
  Alcotest.check value "pop left" (Value.Int 1) r1;
  let s, r2 = apply s Deque_obj.pop_right in
  Alcotest.check value "pop right" (Value.Int 3) r2;
  let s, r3 = apply s Deque_obj.pop_right in
  Alcotest.check value "last" (Value.Int 2) r3;
  let _, r4 = apply s Deque_obj.pop_left in
  Alcotest.check value "empty" Deque_obj.empty_response r4

(* Property: a deque driven only at the right end behaves like a stack; only
   push-right/pop-left behaves like a queue. *)
let qcheck_deque_degenerations =
  QCheck.Test.make ~name:"deque degenerates to stack and queue" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let pushes = List.map (fun x -> Deque_obj.push_right (Value.Int x)) xs in
      let pops_right = List.map (fun _ -> Deque_obj.pop_right) xs in
      let pops_left = List.map (fun _ -> Deque_obj.pop_left) xs in
      let run ops = Seq_spec.run_sequential Deque_obj.spec ops in
      let tail n responses = List.filteri (fun i _ -> i >= n) responses in
      let as_stack = tail (List.length xs) (run (pushes @ pops_right)) in
      let as_queue = tail (List.length xs) (run (pushes @ pops_left)) in
      List.for_all2 (fun got want -> Value.equal got (Value.Int want)) as_stack
        (List.rev xs)
      && List.for_all2 (fun got want -> Value.equal got (Value.Int want)) as_queue xs)

(* --- HLM deque ----------------------------------------------------------- *)

let test_hlm_solo_matches_spec () =
  let rt = Runtime.create ~n:1 () in
  let deque = Hlm_deque.create rt ~name:"D" ~capacity:8 in
  let log = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      assert (Hlm_deque.right_push deque (Value.Int 1) = `Ok);
      assert (Hlm_deque.right_push deque (Value.Int 2) = `Ok);
      assert (Hlm_deque.left_push deque (Value.Int 0) = `Ok);
      let record outcome =
        match outcome with
        | `Value v -> log := v :: !log
        | `Empty -> log := Value.Str "empty" :: !log
      in
      record (Hlm_deque.right_pop deque);
      record (Hlm_deque.left_pop deque);
      record (Hlm_deque.left_pop deque);
      record (Hlm_deque.left_pop deque));
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100_000;
  Runtime.stop rt;
  Alcotest.(check (list (of_pp Value.pp)))
    "pop sequence"
    [ Value.Int 2; Value.Int 0; Value.Int 1; Value.Str "empty" ]
    (List.rev !log);
  Alcotest.(check int) "deque drained" 0
    (List.length (Hlm_deque.peek_contents deque))

let test_hlm_full () =
  (* Non-circular array (as in [10]'s simple version): each side owns the
     slots between the initial boundary and its sentinel — capacity 2 means
     one right slot and one left slot. *)
  let rt = Runtime.create ~n:1 () in
  let deque = Hlm_deque.create rt ~name:"D" ~capacity:2 in
  let right2 = ref `Ok and left2 = ref `Ok in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      assert (Hlm_deque.right_push deque (Value.Int 1) = `Ok);
      right2 := Hlm_deque.right_push deque (Value.Int 2);
      assert (Hlm_deque.left_push deque (Value.Int 3) = `Ok);
      left2 := Hlm_deque.left_push deque (Value.Int 4));
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:50_000;
  Runtime.stop rt;
  Alcotest.(check bool) "right side full" true (!right2 = `Full);
  Alcotest.(check bool) "left side full" true (!left2 = `Full);
  Alcotest.(check int) "two values held" 2
    (List.length (Hlm_deque.peek_contents deque))

let test_hlm_concurrent_no_loss () =
  (* Two pushers then two poppers: every pushed value is popped exactly
     once (no duplication, no loss), for several schedules. *)
  let run seed =
    let rt = Runtime.create ~seed:(Int64.of_int seed) ~n:2 () in
    let deque = Hlm_deque.create rt ~name:"D" ~capacity:32 in
    let popped = ref [] in
    for pid = 0 to 1 do
      Runtime.spawn rt ~pid ~name:"t" (fun () ->
          for k = 1 to 6 do
            let v = Value.Int ((pid * 100) + k) in
            match
              if pid = 0 then Hlm_deque.right_push deque v
              else Hlm_deque.left_push deque v
            with
            | `Ok -> ()
            | `Full -> assert false
          done;
          let drained = ref 0 in
          while !drained < 6 do
            match
              if pid = 0 then Hlm_deque.right_pop deque
              else Hlm_deque.left_pop deque
            with
            | `Value v ->
              incr drained;
              popped := v :: !popped
            | `Empty -> Runtime.yield ()
          done)
    done;
    Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 1.3 |]) ~steps:400_000;
    Runtime.stop rt;
    let ints = List.map Value.to_int !popped |> List.sort compare in
    let expected =
      (List.init 6 (fun k -> k + 1) @ List.init 6 (fun k -> 100 + k + 1))
      |> List.sort compare
    in
    ints = expected
  in
  List.iter
    (fun seed ->
      Alcotest.(check bool) (Fmt.str "seed %d" seed) true (run seed))
    [ 1; 2; 3 ]

let test_hlm_bounded_retry_reports_interference () =
  let rt = Runtime.create ~n:2 () in
  let deque = Hlm_deque.create rt ~name:"D" ~capacity:8 in
  let interfered = ref false in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        for _ = 1 to 50 do
          match Hlm_deque.try_right_push deque (Value.Int pid) ~attempts:1 with
          | `Interfered -> interfered := true
          | `Ok | `Full -> ()
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:50_000;
  Runtime.stop rt;
  Alcotest.(check bool) "single-attempt ops do get interfered" true !interfered

(* --- Cas_universal ------------------------------------------------------- *)

let test_cas_universal_sequential () =
  let rt = Runtime.create ~n:1 () in
  let obj = Cas_universal.create rt ~name:"u" ~spec:Counter.spec in
  let responses = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      for _ = 1 to 5 do
        let r = Cas_universal.invoke obj Counter.inc in
        responses := r :: !responses
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10_000;
  Runtime.stop rt;
  Alcotest.(check (list int)) "responses 0..4" [ 0; 1; 2; 3; 4 ]
    (List.rev_map Value.to_int !responses);
  Alcotest.check value "state" (Value.Int 5) (Cas_universal.peek_state obj)

let test_cas_universal_lock_free_no_lost_updates () =
  let rt = Runtime.create ~seed:5L ~n:3 () in
  let obj = Cas_universal.create rt ~name:"u" ~spec:Counter.spec in
  let completed = Array.make 3 0 in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        for _ = 1 to 20 do
          ignore (Cas_universal.invoke obj Counter.inc);
          completed.(pid) <- completed.(pid) + 1
        done)
  done;
  Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 2.0; 2, 0.5 |]) ~steps:200_000;
  Runtime.stop rt;
  Alcotest.(check (array int)) "all completed" [| 20; 20; 20 |] completed;
  Alcotest.check value "no lost updates" (Value.Int 60)
    (Cas_universal.peek_state obj)

let test_cas_universal_starvable () =
  (* The E12 asymmetric schedule: the 1-step-in-8 victim loses every race
     even though it is timely — lock-freedom permits this. *)
  let rt = Runtime.create ~seed:6L ~n:2 () in
  let obj = Cas_universal.create rt ~name:"u" ~spec:Counter.spec in
  let completed = Array.make 2 0 in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        while true do
          ignore (Cas_universal.invoke obj Counter.inc);
          completed.(pid) <- completed.(pid) + 1
        done)
  done;
  let policy =
    Policy.of_patterns
      [ 0, Policy.Every { period = 8; offset = 0 }; 1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps:100_000;
  Runtime.stop rt;
  Alcotest.(check int) "victim starves" 0 completed.(0);
  Alcotest.(check bool) "attacker progresses (lock-freedom)" true
    (completed.(1) > 1_000)

(* --- Herlihy_universal ---------------------------------------------------- *)

let test_herlihy_sequential () =
  let rt = Runtime.create ~n:1 () in
  let obj = Herlihy_universal.create rt ~name:"h" ~spec:Counter.spec in
  let responses = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      for _ = 1 to 5 do
        let r = Herlihy_universal.invoke obj Counter.inc in
        responses := r :: !responses
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10_000;
  Runtime.stop rt;
  Alcotest.(check (list int)) "responses 0..4" [ 0; 1; 2; 3; 4 ]
    (List.rev_map Value.to_int !responses);
  Alcotest.check value "state" (Value.Int 5) (Herlihy_universal.peek_state obj)

let test_herlihy_no_lost_or_duplicated_ops () =
  let rt = Runtime.create ~seed:8L ~n:3 () in
  let obj = Herlihy_universal.create rt ~name:"h" ~spec:Counter.spec in
  let seen = ref [] in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        for _ = 1 to 10 do
          let r = Herlihy_universal.invoke obj Counter.inc in
          seen := Value.to_int r :: !seen
        done)
  done;
  Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 2.2; 2, 0.4 |])
    ~steps:300_000;
  Runtime.stop rt;
  Alcotest.(check (list int))
    "30 responses are a permutation of 0..29 (each inc applied exactly once)"
    (List.init 30 Fun.id)
    (List.sort compare !seen)

let test_herlihy_wait_free_under_asymmetry () =
  (* The same schedule that starves the lock-free victim: helping makes the
     1-in-8 process complete operations anyway. *)
  let rt = Runtime.create ~seed:6L ~n:2 () in
  let obj = Herlihy_universal.create rt ~name:"h" ~spec:Counter.spec in
  let completed = Array.make 2 0 in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        while true do
          ignore (Herlihy_universal.invoke obj Counter.inc);
          completed.(pid) <- completed.(pid) + 1
        done)
  done;
  let policy =
    Policy.of_patterns
      [ 0, Policy.Every { period = 8; offset = 0 }; 1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps:100_000;
  Runtime.stop rt;
  Alcotest.(check bool) "victim progresses (helped)" true (completed.(0) > 500);
  Alcotest.(check bool) "attacker progresses" true (completed.(1) > 500)

let () =
  Alcotest.run "deque"
    [
      ( "cas register",
        [
          Alcotest.test_case "basic cas" `Quick test_cas_reg_basic;
          Alcotest.test_case "races linearize" `Quick test_cas_reg_linearizes_races;
        ] );
      ( "sequential spec",
        [
          Alcotest.test_case "deque spec" `Quick test_deque_spec;
          QCheck_alcotest.to_alcotest qcheck_deque_degenerations;
        ] );
      ( "hlm deque",
        [
          Alcotest.test_case "solo matches spec" `Quick test_hlm_solo_matches_spec;
          Alcotest.test_case "full detection" `Quick test_hlm_full;
          Alcotest.test_case "concurrent no loss" `Slow test_hlm_concurrent_no_loss;
          Alcotest.test_case "bounded retry interference" `Quick
            test_hlm_bounded_retry_reports_interference;
        ] );
      ( "cas universal",
        [
          Alcotest.test_case "sequential" `Quick test_cas_universal_sequential;
          Alcotest.test_case "lock-free, no lost updates" `Quick
            test_cas_universal_lock_free_no_lost_updates;
          Alcotest.test_case "starvable under asymmetry" `Quick
            test_cas_universal_starvable;
        ] );
      ( "herlihy universal",
        [
          Alcotest.test_case "sequential" `Quick test_herlihy_sequential;
          Alcotest.test_case "no lost or duplicated ops" `Quick
            test_herlihy_no_lost_or_duplicated_ops;
          Alcotest.test_case "wait-free under asymmetry" `Quick
            test_herlihy_wait_free_under_asymmetry;
        ] );
    ]
