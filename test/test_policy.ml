open Tbwf_sim

let run_policy policy ~runnable ~steps =
  let rng = Rng.create 17L in
  let arr = Array.of_list runnable in
  List.init steps (fun step -> Policy.next policy ~step ~runnable:arr ~rng)

let test_round_robin_fair () =
  let choices = run_policy (Policy.round_robin ()) ~runnable:[ 0; 1; 2 ] ~steps:9 in
  Alcotest.(check (list (option int)))
    "perfect rotation"
    [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]
    choices

let test_round_robin_skips_missing () =
  let policy = Policy.round_robin () in
  let rng = Rng.create 1L in
  let c1 = Policy.next policy ~step:0 ~runnable:[| 0; 1; 2 |] ~rng in
  let c2 = Policy.next policy ~step:1 ~runnable:[| 0; 2 |] ~rng in
  Alcotest.(check (option int)) "starts at 0" (Some 0) c1;
  Alcotest.(check (option int)) "skips crashed 1" (Some 2) c2

let test_weighted_respects_weights () =
  let policy = Policy.weighted [| 0, 10.0; 1, 1.0 |] in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:5_000 in
  let count pid = List.length (List.filter (fun c -> c = Some pid) choices) in
  Alcotest.(check bool) "heavy pid dominates" true (count 0 > 3 * count 1);
  Alcotest.(check bool) "light pid still runs" true (count 1 > 0)

let test_every_claims () =
  let policy =
    Policy.of_patterns
      [ 0, Policy.Every { period = 3; offset = 0 }; 1, Policy.Weighted 1.0 ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:30 in
  List.iteri
    (fun step choice ->
      if step mod 3 = 0 then
        Alcotest.(check (option int)) (Fmt.str "claim at %d" step) (Some 0) choice)
    choices

let test_every_gap_bounded () =
  let policy =
    Policy.of_patterns
      [
        0, Policy.Every { period = 4; offset = 0 };
        1, Policy.Weighted 1.0;
        2, Policy.Weighted 1.0;
      ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1; 2 ] ~steps:2_000 in
  let max_gap = ref 0 and current = ref 0 in
  List.iter
    (fun c ->
      if c = Some 0 then begin
        if !current > !max_gap then max_gap := !current;
        current := 0
      end
      else incr current)
    choices;
  Alcotest.(check bool) "gap bounded by period" true (!max_gap <= 4)

let test_flicker_gaps_grow () =
  let policy =
    Policy.of_patterns
      [
        0, Policy.Flicker { active = 10; sleep = 20; growth = 2.0 };
        1, Policy.Weighted 1.0;
      ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:3_000 in
  (* Collect gaps between pid-0 steps; the largest must dwarf the first. *)
  let gaps = ref [] and current = ref 0 and seen = ref false in
  List.iter
    (fun c ->
      if c = Some 0 then begin
        if !seen && !current > 0 then gaps := !current :: !gaps;
        seen := true;
        current := 0
      end
      else incr current)
    choices;
  let gaps = !gaps in
  Alcotest.(check bool) "has gaps" true (List.length gaps > 2);
  let max_gap = List.fold_left max 0 gaps in
  Alcotest.(check bool) "sleep gaps grew past 100" true (max_gap > 100)

let test_slowing_gaps_grow () =
  let policy =
    Policy.of_patterns
      [
        0, Policy.Slowing { initial_gap = 5; growth = 1.5; burst = 1 };
        1, Policy.Weighted 1.0;
      ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:3_000 in
  let steps_of_0 =
    List.filteri (fun _ c -> c = Some 0) choices |> List.length
  in
  (* With gaps 5, 7.5, 11.25, ... only ~log-many steps fit in 3000. *)
  Alcotest.(check bool) "pid 0 took a few steps" true (steps_of_0 >= 3);
  Alcotest.(check bool) "pid 0 decelerated" true (steps_of_0 < 30)

let test_slowing_burst () =
  let policy =
    Policy.of_patterns
      [ 0, Policy.Slowing { initial_gap = 100; growth = 2.0; burst = 5 } ]
  in
  (* Alone, the slowing process gets its whole burst in consecutive steps. *)
  let choices = run_policy policy ~runnable:[ 0 ] ~steps:20 in
  let first_five = List.filteri (fun i _ -> i < 5) choices in
  Alcotest.(check (list (option int)))
    "first burst served"
    [ Some 0; Some 0; Some 0; Some 0; Some 0 ]
    first_five;
  Alcotest.(check (option int)) "then idle" None (List.nth choices 5)

let test_silent_never_runs () =
  let policy =
    Policy.of_patterns [ 0, Policy.Silent; 1, Policy.Weighted 1.0 ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:500 in
  Alcotest.(check bool) "silent pid never scheduled" true
    (List.for_all (fun c -> c <> Some 0) choices)

let test_switch_at () =
  let policy =
    Policy.of_patterns
      [
        0, Policy.Switch_at (100, Policy.Weighted 1.0, Policy.Silent);
        1, Policy.Weighted 1.0;
      ]
  in
  let choices = run_policy policy ~runnable:[ 0; 1 ] ~steps:400 in
  let before = List.filteri (fun i c -> i < 100 && c = Some 0) choices in
  let after = List.filteri (fun i c -> i >= 100 && c = Some 0) choices in
  Alcotest.(check bool) "ran before switch" true (List.length before > 0);
  Alcotest.(check (list (option int))) "silent after switch" [] after

let test_replay_lenient_vs_strict () =
  let rng = Rng.create 3L in
  (* Recorded pid 1 is not runnable at step 1: lenient passes idle, strict
     raises, counting reports one mismatch. *)
  let sched = [ 0; 1; 0 ] in
  let lenient = Policy.replay sched in
  Alcotest.(check (option int)) "lenient step 0" (Some 0)
    (Policy.next lenient ~step:0 ~runnable:[| 0; 2 |] ~rng);
  Alcotest.(check (option int)) "lenient mismatch passes idle" None
    (Policy.next lenient ~step:1 ~runnable:[| 0; 2 |] ~rng);
  let strict = Policy.replay_strict sched in
  Alcotest.(check (option int)) "strict step 0" (Some 0)
    (Policy.next strict ~step:0 ~runnable:[| 0; 2 |] ~rng);
  (match Policy.next strict ~step:1 ~runnable:[| 0; 2 |] ~rng with
  | exception Policy.Replay_mismatch { step; pid; runnable } ->
    Alcotest.(check int) "mismatch step" 1 step;
    Alcotest.(check int) "mismatch pid" 1 pid;
    Alcotest.(check (array int)) "mismatch runnable" [| 0; 2 |] runnable
  | _ -> Alcotest.fail "strict replay should raise on drift");
  let counting, mismatches = Policy.replay_counting sched in
  ignore (Policy.next counting ~step:0 ~runnable:[| 0; 2 |] ~rng);
  ignore (Policy.next counting ~step:1 ~runnable:[| 0; 2 |] ~rng);
  ignore (Policy.next counting ~step:2 ~runnable:[| 0; 2 |] ~rng);
  Alcotest.(check int) "one mismatch counted" 1 (mismatches ())

let test_replay_strict_faithful () =
  (* On the scenario it was recorded from, strict replay never raises and
     recorded idle steps stay idle. *)
  let rng = Rng.create 4L in
  let sched = [ 0; -1; 1; 0 ] in
  let strict = Policy.replay_strict sched in
  let choices =
    List.mapi
      (fun step _ -> Policy.next strict ~step ~runnable:[| 0; 1 |] ~rng)
      sched
  in
  Alcotest.(check (list (option int)))
    "faithful replay" [ Some 0; None; Some 1; Some 0 ] choices;
  Alcotest.(check (option int)) "exhausted schedule idles" None
    (Policy.next strict ~step:4 ~runnable:[| 0; 1 |] ~rng)

let test_solo_after () =
  let policy = Policy.solo_after ~n:3 ~pid:2 ~step:50 in
  let choices = run_policy policy ~runnable:[ 0; 1; 2 ] ~steps:200 in
  let late = List.filteri (fun i _ -> i >= 50) choices in
  Alcotest.(check bool) "only solo pid after switch" true
    (List.for_all (fun c -> c = Some 2) late);
  let early_others =
    List.filteri (fun i c -> i < 50 && (c = Some 0 || c = Some 1)) choices
  in
  Alcotest.(check bool) "others ran before switch" true
    (List.length early_others > 0)

let () =
  Alcotest.run "policy"
    [
      ( "unit",
        [
          Alcotest.test_case "round robin fair" `Quick test_round_robin_fair;
          Alcotest.test_case "round robin skips missing" `Quick
            test_round_robin_skips_missing;
          Alcotest.test_case "weighted respects weights" `Quick
            test_weighted_respects_weights;
          Alcotest.test_case "every claims its steps" `Quick test_every_claims;
          Alcotest.test_case "every gap bounded" `Quick test_every_gap_bounded;
          Alcotest.test_case "flicker gaps grow" `Quick test_flicker_gaps_grow;
          Alcotest.test_case "slowing gaps grow" `Quick test_slowing_gaps_grow;
          Alcotest.test_case "slowing burst" `Quick test_slowing_burst;
          Alcotest.test_case "silent never runs" `Quick test_silent_never_runs;
          Alcotest.test_case "switch_at" `Quick test_switch_at;
          Alcotest.test_case "replay lenient vs strict" `Quick
            test_replay_lenient_vs_strict;
          Alcotest.test_case "replay strict faithful" `Quick
            test_replay_strict_faithful;
          Alcotest.test_case "solo_after" `Quick test_solo_after;
        ] );
    ]
