(* End-to-end checks of the experiment suite in quick mode: every table's
   internal pass-flags must hold, so `dune runtest` guards the claims that
   EXPERIMENTS.md records. *)

open Tbwf_experiments

let test_e1 () =
  let r = E1_degradation.compute ~quick:true () in
  Alcotest.(check int) "one row per k" (r.E1_degradation.n + 1)
    (List.length r.E1_degradation.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "TBWF holds at k=%d" row.E1_degradation.k)
        true row.E1_degradation.tbwf_holds;
      Alcotest.(check bool)
        (Fmt.str "lock-freedom at k=%d" row.E1_degradation.k)
        true row.E1_degradation.lock_free;
      if row.E1_degradation.k > 0 then
        Alcotest.(check bool)
          (Fmt.str "timely progress at k=%d" row.E1_degradation.k)
          true
          (row.E1_degradation.timely_min > 0))
    r.E1_degradation.rows

let test_e2 () =
  let r = E2_baselines.compute ~quick:true () in
  match r.E2_baselines.rows with
  | [ tbwf; naive; retry ] ->
    Alcotest.(check bool) "TBWF total beats naive" true
      (tbwf.E2_baselines.timely_total > naive.E2_baselines.timely_total);
    Alcotest.(check bool) "TBWF does not decay" true
      (tbwf.E2_baselines.last_segment * 2 >= tbwf.E2_baselines.first_segment);
    Alcotest.(check bool) "naive decays" true
      (naive.E2_baselines.last_segment < naive.E2_baselines.first_segment);
    Alcotest.(check int) "retry livelocked" 0 retry.E2_baselines.timely_total
  | _ -> Alcotest.fail "expected three systems"

let test_e3 () =
  let r = E3_obstruction.compute ~quick:true () in
  Alcotest.(check bool) "all solo suffixes progress" true
    r.E3_obstruction.all_pass

let test_e4 () =
  let r = E4_omega_atomic.compute ~quick:true () in
  Alcotest.(check bool) "all election checks pass" true r.E4_omega_atomic.all_pass

let test_e5 () =
  let r = E5_omega_abortable.compute ~quick:true () in
  Alcotest.(check bool) "abortable election checks pass" true
    r.E5_omega_abortable.all_pass;
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Fmt.str "measured abort hostility for %s" b.E5_omega_abortable.policy_name)
        true
        (b.E5_omega_abortable.abort_rate > 0.5))
    r.E5_omega_abortable.blocks

let test_e6 () =
  let r = E6_monitor_matrix.compute ~quick:true () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "%s / %s" row.E6_monitor_matrix.property
           row.E6_monitor_matrix.scenario)
        true row.E6_monitor_matrix.pass)
    r.E6_monitor_matrix.rows

let test_e7 () =
  let r = E7_write_efficiency.compute ~quick:true () in
  Alcotest.(check bool) "final writers within {leader} ∪ R" true
    r.E7_write_efficiency.final_writers_ok;
  (match r.E7_write_efficiency.windows with
  | first :: _ ->
    Alcotest.(check bool) "initially several writers" true
      (List.length first.E7_write_efficiency.writers > 1)
  | [] -> Alcotest.fail "no windows")

let test_e8 () =
  let r = E8_canonical.compute ~quick:true () in
  Alcotest.(check bool) "canonical fairer" true r.E8_canonical.canonical_fairer;
  (match r.E8_canonical.rows with
  | [ canonical; non_canonical ] ->
    Alcotest.(check bool) "canonical reasonably fair" true
      (canonical.E8_canonical.fairness > 0.5);
    Alcotest.(check bool) "non-canonical monopolized" true
      (non_canonical.E8_canonical.fairness < 0.1)
  | _ -> Alcotest.fail "expected two variants")

let test_e9 () =
  let r = E9_flicker.compute ~quick:true () in
  Alcotest.(check bool) "flicker resilience" true r.E9_flicker.all_pass

let test_e10 () =
  let r = E10_throughput.compute ~quick:true () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "%s ran" row.E10_throughput.layer)
        true
        (row.E10_throughput.steps_per_sec > 0.0))
    r.E10_throughput.rows

let test_e11 () =
  let r = E11_ablations.compute ~quick:true () in
  Alcotest.(check bool)
    "paper variants healthy, ablated variants exhibit their failures" true
    r.E11_ablations.ablations_all_fail

let test_e12 () =
  let r = E12_routes.compute ~quick:true () in
  Alcotest.(check bool)
    "timely victim starves under CAS routes but progresses under TBWF" true
    r.E12_routes.tbwf_protects_victim

let test_e13 () =
  let r = E13_detectors.compute ~quick:true () in
  Alcotest.(check bool) "◊P accuracy fails forever" true
    r.E13_detectors.dp_never_stabilizes;
  Alcotest.(check bool) "◊P completeness holds" true r.E13_detectors.dp_complete;
  Alcotest.(check bool) "Ω∆ stabilizes in the same run" true
    r.E13_detectors.omega_stabilizes

let test_e14 () =
  let r = E14_gst.compute ~quick:true () in
  Alcotest.(check bool) "steady progress after GST" true
    r.E14_gst.steady_after_gst

let test_e15 () =
  let r = E15_exploration.compute ~quick:true () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "%s: explorers agree" row.E15_exploration.scenario)
        true row.E15_exploration.agree)
    r.E15_exploration.rows;
  Alcotest.(check bool) "POR >=10x overall" true
    (E15_exploration.coverage_reduction r >= 10.0);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Fmt.str "%s: fuzzer found the bug" f.E15_exploration.f_scenario)
        true f.E15_exploration.found;
      Alcotest.(check bool)
        (Fmt.str "%s: minimal witness replays" f.E15_exploration.f_scenario)
        true f.E15_exploration.minimal_replays)
    r.E15_exploration.fuzz_rows

let test_e16 () =
  let r = E16_nemesis.compute ~quick:true () in
  Alcotest.(check bool) "degradation matrix fully as predicted" true
    r.E16_nemesis.all_ok;
  List.iter
    (fun row ->
      List.iter
        (fun (system, cell) ->
          let expect_holds =
            List.mem system Tbwf_nemesis.Campaign.paper_systems
          in
          Alcotest.(check bool)
            (Fmt.str "%s/%s verdict"
               row.E16_nemesis.campaign
               (Tbwf_nemesis.Campaign.system_name system))
            expect_holds cell.E16_nemesis.holds)
        row.E16_nemesis.cells)
    r.E16_nemesis.rows

let test_e17 () =
  let r = E17_network.compute ~quick:true () in
  Alcotest.(check bool) "network degradation matrix fully as predicted" true
    r.E17_network.all_ok;
  List.iter
    (fun row ->
      List.iter
        (fun (system, cell) ->
          let expect_holds =
            List.mem system Tbwf_nemesis.Campaign.paper_systems
          in
          Alcotest.(check bool)
            (Fmt.str "%s/%s verdict"
               row.E17_network.campaign
               (Tbwf_nemesis.Campaign.system_name system))
            expect_holds cell.E17_network.holds)
        row.E17_network.cells)
    r.E17_network.rows

let test_e18 () =
  let r = E18_stochastic.compute ~quick:true () in
  (* The practically-wait-free gap: the baselines keep a strictly smaller
     share of their stochastic-scheduler throughput under the adversary
     than any TBWF system, with real separation between the
     populations. *)
  Alcotest.(check bool)
    (Fmt.str "retention separates populations (tbwf min %.2f > baseline \
              max %.2f)"
       r.E18_stochastic.tbwf_min_retention
       r.E18_stochastic.baseline_max_retention)
    true
    (r.E18_stochastic.tbwf_min_retention
    > 2.0 *. r.E18_stochastic.baseline_max_retention);
  (* Under the uniform stochastic scheduler everything completes
     operations — including the baselines the campaigns reject. *)
  List.iter
    (fun (system, regimes) ->
      match List.assoc_opt E18_stochastic.Uniform regimes with
      | None -> Alcotest.failf "missing uniform cell"
      | Some c ->
        Alcotest.(check bool)
          (Fmt.str "%s completes under the stochastic scheduler"
             (Tbwf_system.System.to_string system))
          true
          (c.E18_stochastic.completed > 0))
    r.E18_stochastic.cells

let test_registry_complete () =
  Alcotest.(check int) "eighteen experiments registered" 18
    (List.length Registry.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) (Fmt.str "%s findable" id) true
        (Registry.find id <> None))
    [ "E1"; "e1"; "E5"; "E15"; "E16"; "E17"; "E18" ];
  Alcotest.(check bool) "unknown id" true (Registry.find "E99" = None)

let () =
  Alcotest.run "experiments"
    [
      ( "quick suite",
        [
          Alcotest.test_case "E1 graceful degradation" `Slow test_e1;
          Alcotest.test_case "E2 baselines" `Slow test_e2;
          Alcotest.test_case "E3 obstruction-freedom" `Slow test_e3;
          Alcotest.test_case "E4 omega atomic" `Slow test_e4;
          Alcotest.test_case "E5 omega abortable" `Slow test_e5;
          Alcotest.test_case "E6 monitor matrix" `Slow test_e6;
          Alcotest.test_case "E7 write efficiency" `Slow test_e7;
          Alcotest.test_case "E8 canonical use" `Slow test_e8;
          Alcotest.test_case "E9 flicker resilience" `Slow test_e9;
          Alcotest.test_case "E10 throughput" `Quick test_e10;
          Alcotest.test_case "E11 ablations" `Slow test_e11;
          Alcotest.test_case "E12 routes to progress" `Slow test_e12;
          Alcotest.test_case "E13 detectors" `Slow test_e13;
          Alcotest.test_case "E14 GST" `Slow test_e14;
          Alcotest.test_case "E15 exploration" `Slow test_e15;
          Alcotest.test_case "E16 nemesis matrix" `Slow test_e16;
          Alcotest.test_case "E17 network matrix" `Slow test_e17;
          Alcotest.test_case "E18 practically wait-free" `Slow test_e18;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
        ] );
    ]
