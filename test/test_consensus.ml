open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_consensus

let value = Alcotest.testable Value.pp Value.equal

let setup ?(seed = 2L) ~omega ~n () =
  let rt = Runtime.create ~seed ~n () in
  let handles =
    match omega with
    | `Atomic -> (Omega_registers.install rt).Omega_registers.handles
    | `Abortable ->
      (Omega_abortable.install rt ~policy:Abort_policy.Always ()).Omega_abortable.handles
  in
  let adapter = Consensus.Omega_adapter.attach handles in
  let instance = Consensus.create rt ~name:"cons" ~omega:adapter in
  rt, instance

let spawn_proposers rt instance ~pids ~decisions =
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"proposer" (fun () ->
          let decided = Consensus.propose instance (Value.Int (100 + pid)) in
          decisions.(pid) <- Some decided))
    pids

let check_agreement_validity ~n ~decisions ~must_decide =
  let decided_values =
    Array.to_list decisions |> List.filter_map Fun.id
  in
  List.iter
    (fun pid ->
      Alcotest.(check bool) (Fmt.str "pid %d decided" pid) true
        (decisions.(pid) <> None))
    must_decide;
  (match decided_values with
  | [] -> Alcotest.fail "nobody decided"
  | first :: rest ->
    List.iter (fun v -> Alcotest.check value "agreement" first v) rest;
    let valid =
      List.exists
        (fun pid -> Value.equal first (Value.Int (100 + pid)))
        (List.init n Fun.id)
    in
    Alcotest.(check bool) "validity (decision was proposed)" true valid)

let test_all_timely omega () =
  let n = 4 in
  let rt, instance = setup ~omega ~n () in
  let decisions = Array.make n None in
  spawn_proposers rt instance ~pids:(List.init n Fun.id) ~decisions;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:400_000;
  Runtime.stop rt;
  check_agreement_validity ~n ~decisions ~must_decide:(List.init n Fun.id)

let test_untimely_proposer () =
  let n = 4 in
  let rt, instance = setup ~seed:9L ~omega:`Atomic ~n () in
  let decisions = Array.make n None in
  spawn_proposers rt instance ~pids:(List.init n Fun.id) ~decisions;
  let policy =
    Policy.of_patterns
      [
        0, Policy.Slowing { initial_gap = 60; growth = 1.2; burst = 32 };
        1, Policy.Every { period = 6; offset = 0 };
        2, Policy.Every { period = 6; offset = 2 };
        3, Policy.Every { period = 6; offset = 4 };
      ]
  in
  Runtime.run rt ~policy ~steps:600_000;
  Runtime.stop rt;
  (* The timely processes must decide even though pid 0 keeps decelerating. *)
  check_agreement_validity ~n ~decisions ~must_decide:[ 1; 2; 3 ]

let test_leader_crash () =
  let n = 3 in
  let rt, instance = setup ~seed:11L ~omega:`Atomic ~n () in
  let decisions = Array.make n None in
  (* Delay proposals so the crash happens before any ballot completes only
     for pid 0; survivors then drive the instance. *)
  spawn_proposers rt instance ~pids:[ 0; 1; 2 ] ~decisions;
  Runtime.crash_at rt ~pid:0 ~step:2_000;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:600_000;
  Runtime.stop rt;
  check_agreement_validity ~n ~decisions ~must_decide:[ 1; 2 ]

let test_rejects_unit_proposal () =
  let rt, instance = setup ~omega:`Atomic ~n:2 () in
  let raised = ref false in
  Runtime.spawn rt ~pid:0 ~name:"bad" (fun () ->
      try ignore (Consensus.propose instance Value.Unit)
      with Invalid_argument _ -> raised := true);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_000;
  Runtime.stop rt;
  Alcotest.(check bool) "Unit proposal rejected" true !raised

(* Safety under arbitrary random schedules: whatever subset decides must
   agree on a single proposed value — even when the schedule prevents a
   stable leader and nobody is obliged to terminate. *)
let qcheck_safety_random_schedules =
  QCheck.Test.make ~name:"agreement+validity on random schedules" ~count:40
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let n = 3 in
      let rt, instance = setup ~seed:(Int64.of_int seed) ~omega:`Atomic ~n () in
      let decisions = Array.make n None in
      spawn_proposers rt instance ~pids:(List.init n Fun.id) ~decisions;
      let policy =
        Policy.weighted [| 0, 1.0; 1, 0.4 +. float_of_int (seed mod 7); 2, 2.0 |]
      in
      Runtime.run rt ~policy ~steps:60_000;
      Runtime.stop rt;
      let decided_values =
        Array.to_list decisions |> List.filter_map Fun.id
      in
      let all_equal =
        match decided_values with
        | [] -> true
        | first :: rest -> List.for_all (Value.equal first) rest
      in
      let all_valid =
        List.for_all
          (fun v ->
            List.exists
              (fun pid -> Value.equal v (Value.Int (100 + pid)))
              (List.init n Fun.id))
          decided_values
      in
      all_equal && all_valid)

let () =
  Alcotest.run "consensus"
    [
      ( "termination",
        [
          Alcotest.test_case "all timely (atomic omega)" `Quick
            (test_all_timely `Atomic);
          Alcotest.test_case "all timely (abortable omega)" `Slow
            (test_all_timely `Abortable);
          Alcotest.test_case "untimely proposer" `Slow test_untimely_proposer;
          Alcotest.test_case "leader crash" `Slow test_leader_crash;
        ] );
      ( "safety",
        [
          Alcotest.test_case "rejects Unit proposal" `Quick
            test_rejects_unit_proposal;
          QCheck_alcotest.to_alcotest qcheck_safety_random_schedules;
        ] );
    ]
