open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_core

let value = Alcotest.testable Value.pp Value.equal

let build_stack ?(seed = 2L) ?(canonical = true) ?(omega = `Atomic)
    ?(qa_universal = false) ~n ~spec () =
  let rt = Runtime.create ~seed ~n () in
  let handles =
    match omega with
    | `Atomic -> (Omega_registers.install rt).Omega_registers.handles
    | `Abortable ->
      (Omega_abortable.install rt ~policy:Abort_policy.Always ()).Omega_abortable.handles
  in
  let qa =
    if qa_universal then
      Qa_universal.create rt ~name:"obj" ~spec ~policy:Abort_policy.Always ()
    else Qa_object.create rt ~name:"obj" ~spec ~policy:Abort_policy.Always ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:handles ~canonical () in
  rt, qa, tbwf

let test_finite_workload_completes variant () =
  let omega, qa_universal =
    match variant with
    | `Atomic_direct -> `Atomic, false
    | `Atomic_universal -> `Atomic, true
    | `Abortable_direct -> `Abortable, false
  in
  let n = 3 in
  let rt, qa, tbwf =
    build_stack ~omega ~qa_universal ~n ~spec:Counter.spec ()
  in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.n_times 10 Counter.inc);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_500_000;
  Runtime.stop rt;
  Alcotest.(check (array int)) "all clients finished" [| 10; 10; 10 |]
    stats.Workload.completed;
  Alcotest.check value "counter exact (no lost or duplicated increments)"
    (Value.Int 30) (qa.Qa_intf.peek_state ())

let test_responses_are_sequential () =
  (* Every inc's response is a distinct pre-increment value: collect them
     all and verify we saw exactly 0..total-1. *)
  let n = 3 in
  let rt, _, tbwf = build_stack ~n ~spec:Counter.spec () in
  let seen = ref [] in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"client" (fun () ->
        for _ = 1 to 8 do
          (* Bind before consing: [e1 :: e2] evaluates [e2] first, and the
             invoke suspends mid-expression, so a direct
             [seen := ... :: !seen] would clobber other clients' pushes. *)
          let response = Tbwf.invoke tbwf Counter.inc in
          seen := Value.to_int response :: !seen
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_500_000;
  Runtime.stop rt;
  let sorted = List.sort compare !seen in
  Alcotest.(check (list int)) "responses are a permutation of 0..23"
    (List.init 24 Fun.id) sorted

let test_stack_object_through_tbwf () =
  let n = 2 in
  let rt, qa, tbwf = build_stack ~n ~spec:Stack_obj.spec () in
  let popped = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"pusher" (fun () ->
      for k = 1 to 5 do
        let (_ : Value.t) = Tbwf.invoke tbwf (Stack_obj.push (Value.Int k)) in
        ()
      done);
  Runtime.spawn rt ~pid:1 ~name:"popper" (fun () ->
      let non_empty = ref 0 in
      while !non_empty < 5 do
        match Tbwf.invoke tbwf Stack_obj.pop with
        | v when Value.equal v Stack_obj.empty_response -> ()
        | v ->
          incr non_empty;
          popped := v :: !popped
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_500_000;
  Runtime.stop rt;
  Alcotest.(check int) "all five values popped" 5 (List.length !popped);
  Alcotest.check value "stack empty at end" (Value.List [])
    (qa.Qa_intf.peek_state ())

let test_untimely_cannot_block_timely () =
  let n = 4 in
  let rt, _, tbwf = build_stack ~seed:6L ~n ~spec:Counter.spec () in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1; 2; 3 ] ~stats
    ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.forever Counter.inc);
  let policy =
    Policy.of_patterns
      [
        0, Policy.Slowing { initial_gap = 50; growth = 1.2; burst = 32 };
        1, Policy.Every { period = 6; offset = 0 };
        2, Policy.Every { period = 6; offset = 2 };
        3, Policy.Every { period = 6; offset = 4 };
      ]
  in
  Runtime.run rt ~policy ~steps:150_000;
  let mid = Progress.snapshot stats in
  Runtime.run rt ~policy ~steps:150_000;
  Runtime.stop rt;
  Alcotest.(check bool) "every timely process progressed in the second half"
    true
    (Progress.tbwf_holds_endless ~before:mid ~after:stats ~timely:[ 1; 2; 3 ])

let test_obstruction_freedom_solo_suffix () =
  let n = 3 in
  let rt, _, tbwf = build_stack ~seed:10L ~n ~spec:Counter.spec () in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.forever Counter.inc);
  let policy = Policy.solo_after ~n ~pid:2 ~step:30_000 in
  Runtime.run rt ~policy ~steps:30_000;
  let before = stats.Workload.completed.(2) in
  Runtime.run rt ~policy ~steps:60_000;
  Runtime.stop rt;
  Alcotest.(check bool) "solo process completes ops" true
    (stats.Workload.completed.(2) > before)

let test_non_canonical_monopolizes () =
  let run canonical =
    let n = 3 in
    let rt, _, tbwf = build_stack ~seed:4L ~canonical ~n ~spec:Counter.spec () in
    let stats = Workload.fresh_stats ~n in
    Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats
      ~invoke:(Tbwf.invoke tbwf)
      ~next_op:(Workload.forever Counter.inc);
    Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:150_000;
    Runtime.stop rt;
    stats.Workload.completed
  in
  let fair = run true in
  let unfair = run false in
  let min_max arr = Array.fold_left min max_int arr, Array.fold_left max 0 arr in
  let fair_min, fair_max = min_max fair in
  let unfair_min, _ = min_max unfair in
  Alcotest.(check bool) "canonical is fair (min within 3x of max)" true
    (fair_max <= 3 * max 1 fair_min);
  Alcotest.(check int) "non-canonical starves someone completely" 0 unfair_min

let test_naive_booster_collapses () =
  (* One decelerating process; compare last-segment timely throughput. *)
  let run make_handles =
    let n = 3 in
    let rt = Runtime.create ~seed:15L ~n () in
    let handles = make_handles rt in
    let qa =
      Qa_object.create rt ~name:"obj" ~spec:Counter.spec
        ~policy:Abort_policy.Always ()
    in
    let tbwf = Tbwf.make ~qa ~omega_handles:handles () in
    let stats = Workload.fresh_stats ~n in
    Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats
      ~invoke:(Tbwf.invoke tbwf)
      ~next_op:(Workload.forever Counter.inc);
    let policy =
      Policy.of_patterns
        [
          0, Policy.Slowing { initial_gap = 60; growth = 1.15; burst = 24 };
          1, Policy.Every { period = 4; offset = 0 };
          2, Policy.Every { period = 4; offset = 2 };
        ]
    in
    Runtime.run rt ~policy ~steps:200_000;
    let mid = stats.Workload.completed.(1) + stats.Workload.completed.(2) in
    Runtime.run rt ~policy ~steps:200_000;
    Runtime.stop rt;
    let total = stats.Workload.completed.(1) + stats.Workload.completed.(2) in
    total - mid
  in
  let tbwf_late =
    run (fun rt -> (Omega_registers.install rt).Omega_registers.handles)
  in
  let naive_late =
    run (fun rt -> (Baselines.Naive_booster.install rt).Baselines.Naive_booster.handles)
  in
  Alcotest.(check bool)
    (Fmt.str "TBWF keeps going late (%d) while naive collapses (%d)" tbwf_late
       naive_late)
    true
    (tbwf_late > 4 * max 1 naive_late)

let test_retry_baseline_livelocks_under_rotation () =
  let n = 3 in
  let rt = Runtime.create ~seed:16L ~n () in
  let qa =
    Qa_object.create rt ~name:"obj" ~spec:Counter.spec
      ~policy:Abort_policy.Always ()
  in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats
    ~invoke:(Baselines.retry_invoke qa)
    ~next_op:(Workload.forever Counter.inc);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:30_000;
  Runtime.stop rt;
  Alcotest.(check (array int)) "nobody completes under perfect interleaving"
    [| 0; 0; 0 |] stats.Workload.completed

let test_retry_baseline_progresses_solo () =
  let rt = Runtime.create ~n:1 () in
  let qa =
    Qa_object.create rt ~name:"obj" ~spec:Counter.spec
      ~policy:Abort_policy.Always ()
  in
  let stats = Workload.fresh_stats ~n:1 in
  Workload.spawn_clients rt ~pids:[ 0 ] ~stats
    ~invoke:(Baselines.retry_invoke qa)
    ~next_op:(Workload.n_times 20 Counter.inc);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10_000;
  Runtime.stop rt;
  Alcotest.(check int) "solo retry completes everything" 20
    stats.Workload.completed.(0)

let test_progress_reports () =
  let n = 2 in
  let rt, _, tbwf = build_stack ~n ~spec:Counter.spec () in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1 ] ~stats ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.n_times 5 Counter.inc);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:600_000;
  let reports =
    Progress.reports (Runtime.trace rt) ~n ~stats ~from_step:0 ~bound:(4 * n)
  in
  Runtime.stop rt;
  Alcotest.(check int) "one report per process" n (List.length reports);
  Alcotest.(check bool) "tbwf holds on finite workload" true
    (Progress.tbwf_holds_finite reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) (Fmt.str "pid %d timely" r.Progress.pid) true
        r.Progress.timely)
    reports

(* Fuzzing: under arbitrary weighted schedules (and an optional crash), the
   counter's state must always satisfy completed <= state <= issued — every
   returned operation took effect exactly once, and at most one operation
   per process is in flight. *)
let qcheck_stack_consistency =
  QCheck.Test.make ~name:"TBWF counter consistent under random schedules"
    ~count:25
    QCheck.(pair (int_range 1 100_000) bool)
    (fun (seed, with_crash) ->
      let n = 3 in
      let rt, qa, tbwf =
        build_stack ~seed:(Int64.of_int seed) ~n ~spec:Counter.spec ()
      in
      let stats = Workload.fresh_stats ~n in
      Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats
        ~invoke:(Tbwf.invoke tbwf)
        ~next_op:(Workload.forever Counter.inc);
      if with_crash then Runtime.crash_at rt ~pid:(seed mod n) ~step:20_000;
      let policy =
        Policy.weighted
          [| 0, 1.0; 1, 0.3 +. float_of_int (seed mod 5); 2, 1.5 |]
      in
      Runtime.run rt ~policy ~steps:60_000;
      Runtime.stop rt;
      let state = Value.to_int (qa.Qa_intf.peek_state ()) in
      let completed = Array.fold_left ( + ) 0 stats.Workload.completed in
      let issued = Array.fold_left ( + ) 0 stats.Workload.issued in
      completed <= state && state <= issued)

(* End-to-end linearizability: record each client-level TBWF invocation as
   an operation with its [start step, return step] window and check the
   whole history against the sequential counter spec with the Wing–Gong
   checker. Figure 7 linearizes every operation at its (unique) effective
   QA application, which lies inside the client window, so the history must
   always be linearizable. *)
let qcheck_tbwf_linearizable =
  QCheck.Test.make ~name:"TBWF client histories linearizable" ~count:15
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let n = 3 in
      let rt, _, tbwf =
        build_stack ~seed:(Int64.of_int seed) ~n ~spec:Counter.spec ()
      in
      let history = ref [] in
      for pid = 0 to n - 1 do
        Runtime.spawn rt ~pid ~name:"client" (fun () ->
            for _ = 1 to 5 do
              let invoke = Runtime.now rt in
              let result = Tbwf.invoke tbwf Counter.inc in
              let respond = Runtime.now rt in
              history :=
                {
                  Tbwf_check.History.pid;
                  op = Value.Str "inc";
                  result;
                  invoke;
                  respond;
                }
                :: !history
            done)
      done;
      Runtime.run rt
        ~policy:(Policy.weighted [| 0, 1.0; 1, 1.8; 2, 0.6 |])
        ~steps:2_000_000;
      Runtime.stop rt;
      Tbwf_check.Linearizability.check Tbwf_check.Linearizability.counter_spec
        !history)

let qcheck_stack_deterministic =
  QCheck.Test.make ~name:"same seed, same outcome" ~count:10
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let run () =
        let n = 3 in
        let rt, qa, tbwf =
          build_stack ~seed:(Int64.of_int seed) ~n ~spec:Counter.spec ()
        in
        let stats = Workload.fresh_stats ~n in
        Workload.spawn_clients rt ~pids:[ 0; 1; 2 ] ~stats
          ~invoke:(Tbwf.invoke tbwf)
          ~next_op:(Workload.forever Counter.inc);
        Runtime.run rt ~policy:(Policy.weighted [| 0, 1.3; 1, 0.8; 2, 1.0 |])
          ~steps:30_000;
        Runtime.stop rt;
        Array.copy stats.Workload.completed, qa.Qa_intf.peek_state ()
      in
      let c1, s1 = run () in
      let c2, s2 = run () in
      c1 = c2 && Value.equal s1 s2)

let test_scale_n12 () =
  (* Larger configuration sanity: 12 processes (132 monitors, ~25 tasks per
     process), everyone finishes a finite workload and the counter is
     exact. *)
  let n = 12 in
  let rt, qa, tbwf = build_stack ~seed:20L ~n ~spec:Counter.spec () in
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:(List.init n Fun.id) ~stats
    ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.n_times 3 Counter.inc);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:8_000_000;
  Runtime.stop rt;
  Alcotest.(check (array int)) "all finished" (Array.make n 3)
    stats.Workload.completed;
  Alcotest.check value "exact count" (Value.Int (3 * n)) (qa.Qa_intf.peek_state ())

let () =
  Alcotest.run "tbwf"
    [
      ( "correctness",
        [
          Alcotest.test_case "finite workload (atomic + direct QA)" `Quick
            (test_finite_workload_completes `Atomic_direct);
          Alcotest.test_case "finite workload (atomic + universal QA)" `Quick
            (test_finite_workload_completes `Atomic_universal);
          Alcotest.test_case "finite workload (abortable omega)" `Slow
            (test_finite_workload_completes `Abortable_direct);
          Alcotest.test_case "responses sequential" `Quick
            test_responses_are_sequential;
          Alcotest.test_case "stack through TBWF" `Quick
            test_stack_object_through_tbwf;
          Alcotest.test_case "progress reports" `Quick test_progress_reports;
          Alcotest.test_case "scale: n=12" `Slow test_scale_n12;
        ] );
      ( "progress",
        [
          Alcotest.test_case "untimely cannot block timely" `Slow
            test_untimely_cannot_block_timely;
          Alcotest.test_case "obstruction-freedom solo suffix" `Quick
            test_obstruction_freedom_solo_suffix;
          Alcotest.test_case "non-canonical monopolizes" `Slow
            test_non_canonical_monopolizes;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive booster collapses" `Slow
            test_naive_booster_collapses;
          Alcotest.test_case "retry livelocks under rotation" `Quick
            test_retry_baseline_livelocks_under_rotation;
          Alcotest.test_case "retry progresses solo" `Quick
            test_retry_baseline_progresses_solo;
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_stack_consistency;
            qcheck_tbwf_linearizable;
            qcheck_stack_deterministic;
          ] );
    ]
