(* Golden scenario corpus: each test/corpus/NNN_<name>/ directory pins one
   CLI invocation (`cmd`, one line of "<exe> <args>") and its exact stdout
   (`expected.out`). The runner executes every entry in order and diffs;
   `--bless` rewrites the expected files from the current output instead.

   An optional `exit` file pins a nonzero expected exit code (default 0).
   stderr is dropped: it carries wall-clock timings and progress chatter,
   which are not part of the contract. Entries must only use
   deterministic subcommands (fixed seeds, --jobs 1 or byte-identical
   fan-out) — a flaky entry is a bug in the entry, not the runner. *)

let bless = Array.exists (String.equal "--bless") Sys.argv

let corpus_root =
  (* dune runtest runs with cwd = _build/default/test; `dune exec
     test/test_corpus.exe` from the repo root does not. *)
  let is_dir d = Sys.file_exists d && Sys.is_directory d in
  match List.find_opt is_dir [ "corpus"; "test/corpus" ] with
  | Some d -> d
  | None ->
    prerr_endline "corpus directory not found";
    exit 2

let exe_path name =
  let candidates =
    [
      Filename.concat "../bin" (name ^ ".exe");
      Filename.concat "bin" (name ^ ".exe");
      Filename.concat "_build/default/bin" (name ^ ".exe");
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
    Printf.eprintf "executable %s not found (looked at %s)\n" name
      (String.concat ", " candidates);
    exit 2

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let read_output cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s
  in
  Buffer.contents buf, code

let first_diff_line a b =
  let la = String.split_on_char '\n' a in
  let lb = String.split_on_char '\n' b in
  let rec walk i = function
    | [], [] -> None
    | x :: la, y :: lb when String.equal x y -> walk (i + 1) (la, lb)
    | x :: _, y :: _ -> Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end>")
    | [], y :: _ -> Some (i, "<end>", y)
  in
  walk 1 (la, lb)

let run_entry dir =
  let path f = Filename.concat (Filename.concat corpus_root dir) f in
  let cmd_line = String.trim (read_file (path "cmd")) in
  let exe, args =
    match String.index_opt cmd_line ' ' with
    | Some i ->
      ( String.sub cmd_line 0 i,
        String.sub cmd_line (i + 1) (String.length cmd_line - i - 1) )
    | None -> cmd_line, ""
  in
  let command = Printf.sprintf "%s %s 2>/dev/null" (exe_path exe) args in
  let output, code = read_output command in
  let expected_code =
    if Sys.file_exists (path "exit") then
      int_of_string (String.trim (read_file (path "exit")))
    else 0
  in
  if bless then begin
    write_file (path "expected.out") output;
    Printf.printf "blessed  %s\n" dir;
    true
  end
  else begin
    let expected =
      if Sys.file_exists (path "expected.out") then
        read_file (path "expected.out")
      else "<missing expected.out — run with --bless>"
    in
    let ok_out = String.equal output expected in
    let ok_code = code = expected_code in
    if ok_out && ok_code then begin
      Printf.printf "ok       %s\n" dir;
      true
    end
    else begin
      Printf.printf "MISMATCH %s\n" dir;
      if not ok_code then
        Printf.printf "  exit code %d, expected %d\n" code expected_code;
      (match first_diff_line expected output with
      | Some (line, e, a) ->
        Printf.printf "  line %d:\n  - %s\n  + %s\n" line e a
      | None -> ());
      false
    end
  end

let () =
  let entries =
    Sys.readdir corpus_root |> Array.to_list
    |> List.filter (fun d ->
           Sys.is_directory (Filename.concat corpus_root d))
    |> List.sort String.compare
  in
  if entries = [] then begin
    prerr_endline "corpus is empty";
    exit 2
  end;
  let results = List.map run_entry entries in
  let failed = List.length (List.filter not results) in
  Printf.printf "%d/%d corpus entries %s\n"
    (List.length results - failed)
    (List.length results)
    (if bless then "blessed" else "match");
  if failed > 0 then exit 1
