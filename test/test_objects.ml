open Tbwf_sim
open Tbwf_registers
open Tbwf_objects

let value = Alcotest.testable Value.pp Value.equal

let apply spec state op = Seq_spec.apply_exn spec state op

(* --- sequential specs --------------------------------------------------- *)

let test_counter_spec () =
  let s0 = Counter.spec.Seq_spec.initial in
  let s1, r1 = apply Counter.spec s0 Counter.inc in
  Alcotest.check value "inc returns old" (Value.Int 0) r1;
  let s2, r2 = apply Counter.spec s1 (Counter.add 5) in
  Alcotest.check value "add returns old" (Value.Int 1) r2;
  let _, r3 = apply Counter.spec s2 Counter.read in
  Alcotest.check value "read" (Value.Int 6) r3

let test_cell_spec () =
  let spec = Cell.spec ~init:(Value.Str "a") in
  let s1, _ = apply spec spec.Seq_spec.initial (Cell.write (Value.Str "b")) in
  let _, r = apply spec s1 Cell.read in
  Alcotest.check value "read back" (Value.Str "b") r

let test_stack_spec () =
  let s = Stack_obj.spec.Seq_spec.initial in
  let s, _ = apply Stack_obj.spec s (Stack_obj.push (Value.Int 1)) in
  let s, _ = apply Stack_obj.spec s (Stack_obj.push (Value.Int 2)) in
  let s, top = apply Stack_obj.spec s Stack_obj.pop in
  Alcotest.check value "LIFO" (Value.Int 2) top;
  let s, next = apply Stack_obj.spec s Stack_obj.pop in
  Alcotest.check value "then first" (Value.Int 1) next;
  let _, empty = apply Stack_obj.spec s Stack_obj.pop in
  Alcotest.check value "empty sentinel" Stack_obj.empty_response empty

let test_queue_spec () =
  let s = Queue_obj.spec.Seq_spec.initial in
  let s, _ = apply Queue_obj.spec s (Queue_obj.enqueue (Value.Int 1)) in
  let s, _ = apply Queue_obj.spec s (Queue_obj.enqueue (Value.Int 2)) in
  let s, first = apply Queue_obj.spec s Queue_obj.dequeue in
  Alcotest.check value "FIFO" (Value.Int 1) first;
  let s, second = apply Queue_obj.spec s Queue_obj.dequeue in
  Alcotest.check value "then second" (Value.Int 2) second;
  let _, empty = apply Queue_obj.spec s Queue_obj.dequeue in
  Alcotest.check value "empty sentinel" Queue_obj.empty_response empty

let test_set_spec () =
  let s = Set_obj.spec.Seq_spec.initial in
  let s, r1 = apply Set_obj.spec s (Set_obj.add 3) in
  Alcotest.check value "fresh add" (Value.Bool true) r1;
  let s, r2 = apply Set_obj.spec s (Set_obj.add 3) in
  Alcotest.check value "duplicate add" (Value.Bool false) r2;
  let s, r3 = apply Set_obj.spec s (Set_obj.mem 3) in
  Alcotest.check value "mem" (Value.Bool true) r3;
  let s, r4 = apply Set_obj.spec s (Set_obj.remove 3) in
  Alcotest.check value "remove" (Value.Bool true) r4;
  let _, r5 = apply Set_obj.spec s Set_obj.size in
  Alcotest.check value "size" (Value.Int 0) r5

let test_kv_spec () =
  let s = Kv_store.spec.Seq_spec.initial in
  let s, r1 = apply Kv_store.spec s (Kv_store.put "k" (Value.Int 1)) in
  Alcotest.(check (option (of_pp Value.pp))) "no previous binding" None
    (Kv_store.decode_binding r1);
  let s, r2 = apply Kv_store.spec s (Kv_store.put "k" (Value.Int 2)) in
  Alcotest.(check bool) "previous binding returned" true
    (match Kv_store.decode_binding r2 with
    | Some v -> Value.equal v (Value.Int 1)
    | None -> false);
  let s, r3 = apply Kv_store.spec s (Kv_store.get "k") in
  Alcotest.(check bool) "get current" true
    (match Kv_store.decode_binding r3 with
    | Some v -> Value.equal v (Value.Int 2)
    | None -> false);
  let s, r4 = apply Kv_store.spec s (Kv_store.delete "k") in
  Alcotest.check value "delete true" (Value.Bool true) r4;
  let _, r5 = apply Kv_store.spec s Kv_store.size in
  Alcotest.check value "size 0" (Value.Int 0) r5

let test_tas_spec () =
  let s = Test_and_set.spec.Seq_spec.initial in
  let s, r1 = apply Test_and_set.spec s Test_and_set.tas in
  Alcotest.check value "first tas sees false" (Value.Bool false) r1;
  let s, r2 = apply Test_and_set.spec s Test_and_set.tas in
  Alcotest.check value "second tas sees true" (Value.Bool true) r2;
  let s, _ = apply Test_and_set.spec s Test_and_set.reset in
  let _, r3 = apply Test_and_set.spec s Test_and_set.read in
  Alcotest.check value "reset" (Value.Bool false) r3

let test_max_register_spec () =
  let s = Max_register.spec.Seq_spec.initial in
  let s, _ = apply Max_register.spec s (Max_register.write_max 5) in
  let s, _ = apply Max_register.spec s (Max_register.write_max 3) in
  let _, r = apply Max_register.spec s Max_register.read in
  Alcotest.check value "max retained" (Value.Int 5) r

let test_illegal_op_rejected () =
  Alcotest.(check bool) "apply returns None" true
    (Counter.spec.Seq_spec.apply (Value.Int 0) (Value.Str "nonsense") = None);
  Alcotest.check_raises "apply_exn raises"
    (Invalid_argument "Seq_spec counter: illegal op \"nonsense\" in state 0")
    (fun () -> ignore (apply Counter.spec (Value.Int 0) (Value.Str "nonsense")))

let test_priority_queue_spec () =
  let apply = Seq_spec.apply_exn Priority_queue.spec in
  let s = Priority_queue.spec.Seq_spec.initial in
  let s, _ = apply s (Priority_queue.insert 5 (Value.Str "bulk-a")) in
  let s, _ = apply s (Priority_queue.insert 0 (Value.Str "urgent")) in
  let s, _ = apply s (Priority_queue.insert 5 (Value.Str "bulk-b")) in
  let s, first = apply s Priority_queue.extract_min in
  Alcotest.check value "urgent first" (Value.Pair (Int 0, Str "urgent")) first;
  let s, second = apply s Priority_queue.extract_min in
  Alcotest.check value "FIFO among equals" (Value.Pair (Int 5, Str "bulk-a")) second;
  let s, n_left = apply s Priority_queue.size in
  Alcotest.check value "size" (Value.Int 1) n_left;
  let s, third = apply s Priority_queue.extract_min in
  Alcotest.check value "last" (Value.Pair (Int 5, Str "bulk-b")) third;
  let _, empty = apply s Priority_queue.extract_min in
  Alcotest.check value "empty sentinel" Priority_queue.empty_response empty

(* Property: extracting everything yields priorities in non-decreasing
   order, stable within a priority class. *)
let qcheck_priority_queue_sorted =
  QCheck.Test.make ~name:"priority queue extracts sorted, stably" ~count:300
    QCheck.(small_list (int_range 0 5))
    (fun prios ->
      let inserts =
        List.mapi (fun i p -> Priority_queue.insert p (Value.Int i)) prios
      in
      let extracts = List.map (fun _ -> Priority_queue.extract_min) prios in
      let responses =
        Seq_spec.run_sequential Priority_queue.spec (inserts @ extracts)
      in
      let extracted =
        List.filteri (fun i _ -> i >= List.length prios) responses
        |> List.map (fun v ->
               let p, payload = Value.to_pair v in
               Value.to_int p, Value.to_int payload)
      in
      let expected =
        List.mapi (fun i p -> p, i) prios
        |> List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2)
      in
      extracted = expected)

(* Property: the counter value after a batch of incs/adds equals the sum. *)
let qcheck_counter_sum =
  QCheck.Test.make ~name:"counter sums deltas" ~count:300
    QCheck.(small_list (int_range (-20) 20))
    (fun deltas ->
      let ops = List.map Counter.add deltas in
      let responses = Seq_spec.run_sequential Counter.spec ops in
      let expected_prefix_sums =
        List.rev
          (snd
             (List.fold_left
                (fun (acc, outs) d -> acc + d, Value.Int acc :: outs)
                (0, []) deltas))
      in
      List.for_all2 Value.equal responses expected_prefix_sums)

(* Property: stack push-then-pop-all returns pushed values in reverse. *)
let qcheck_stack_lifo =
  QCheck.Test.make ~name:"stack is LIFO" ~count:300
    QCheck.(small_list small_int)
    (fun xs ->
      let pushes = List.map (fun x -> Stack_obj.push (Value.Int x)) xs in
      let pops = List.map (fun _ -> Stack_obj.pop) xs in
      let responses = Seq_spec.run_sequential Stack_obj.spec (pushes @ pops) in
      let popped = List.filteri (fun i _ -> i >= List.length xs) responses in
      List.for_all2
        (fun got want -> Value.equal got (Value.Int want))
        popped (List.rev xs))

(* Property: queue preserves order. *)
let qcheck_queue_fifo =
  QCheck.Test.make ~name:"queue is FIFO" ~count:300
    QCheck.(small_list small_int)
    (fun xs ->
      let enqs = List.map (fun x -> Queue_obj.enqueue (Value.Int x)) xs in
      let deqs = List.map (fun _ -> Queue_obj.dequeue) xs in
      let responses = Seq_spec.run_sequential Queue_obj.spec (enqs @ deqs) in
      let dequeued = List.filteri (fun i _ -> i >= List.length xs) responses in
      List.for_all2 (fun got want -> Value.equal got (Value.Int want)) dequeued xs)

(* Property: max register reads are monotone. *)
let qcheck_max_monotone =
  QCheck.Test.make ~name:"max register monotone" ~count:300
    QCheck.(small_list small_nat)
    (fun xs ->
      let ops =
        List.concat_map
          (fun x -> [ Max_register.write_max x; Max_register.read ])
          xs
      in
      let responses = Seq_spec.run_sequential Max_register.spec ops in
      let reads =
        List.filteri (fun i _ -> i mod 2 = 1) responses
        |> List.map Value.to_int
      in
      let sorted = List.sort compare reads in
      reads = sorted)

(* --- query-abortable objects ------------------------------------------- *)

let test_qa_solo_succeeds () =
  let rt = Runtime.create ~n:1 () in
  let qa =
    Qa_object.create rt ~name:"c" ~spec:Counter.spec ~policy:Abort_policy.Always
      ()
  in
  let results = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      for _ = 1 to 3 do
        let response = qa.Qa_intf.invoke Counter.inc in
        results := response :: !results
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check (list (of_pp Value.pp)))
    "solo ops never abort"
    [ Value.Int 2; Value.Int 1; Value.Int 0 ]
    !results;
  Alcotest.check value "state" (Value.Int 3) (qa.Qa_intf.peek_state ())

let test_qa_contended_aborts_and_query_recovers () =
  let rt = Runtime.create ~n:2 () in
  let qa =
    Qa_object.create rt ~name:"c" ~spec:Counter.spec ~policy:Abort_policy.Always
      ~effect_on_abort:Abort_policy.Effect_always ()
  in
  let aborted = ref 0 and recovered = ref [] in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        let res = qa.Qa_intf.invoke Counter.inc in
        if Value.equal res Value.Abort then begin
          incr aborted;
          (* Stagger the two processes so the query loops de-synchronize
             (two perfectly interleaved queriers abort forever, which is
             legal — queries may abort — but not what we test here). *)
          for _ = 1 to pid + 1 do
            Runtime.yield ()
          done;
          let rec ask () =
            match qa.Qa_intf.query () with
            | Value.Abort ->
              for _ = 1 to pid + 1 do
                Runtime.yield ()
              done;
              ask ()
            | v -> v
          in
          let fate = ask () in
          recovered := fate :: !recovered
        end)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:200;
  Runtime.stop rt;
  Alcotest.(check int) "both ops aborted (round-robin overlap)" 2 !aborted;
  (* Effect_always: both took effect; queries must recover responses 0 and 1. *)
  let sorted = List.sort compare (List.map Value.to_int !recovered) in
  Alcotest.(check (list int)) "fates recovered" [ 0; 1 ] sorted;
  Alcotest.check value "both applied" (Value.Int 2) (qa.Qa_intf.peek_state ())

let test_qa_no_effect_query_returns_fail () =
  let rt = Runtime.create ~n:2 () in
  let qa =
    Qa_object.create rt ~name:"c" ~spec:Counter.spec ~policy:Abort_policy.Always
      ~effect_on_abort:Abort_policy.Effect_never ()
  in
  let fates = ref [] in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        let res = qa.Qa_intf.invoke Counter.inc in
        if Value.equal res Value.Abort then begin
          for _ = 1 to pid + 1 do
            Runtime.yield ()
          done;
          let rec ask () =
            match qa.Qa_intf.query () with
            | Value.Abort ->
              for _ = 1 to pid + 1 do
                Runtime.yield ()
              done;
              ask ()
            | v -> v
          in
          let fate = ask () in
          fates := fate :: !fates
        end)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:200;
  Runtime.stop rt;
  Alcotest.(check (list (of_pp Value.pp)))
    "both queries report F"
    [ Value.Fail; Value.Fail ] !fates;
  Alcotest.check value "nothing applied" (Value.Int 0) (qa.Qa_intf.peek_state ())

let test_qa_query_before_any_op () =
  let rt = Runtime.create ~n:1 () in
  let qa =
    Qa_object.create rt ~name:"c" ~spec:Counter.spec ~policy:Abort_policy.Never ()
  in
  let fate = ref Value.Unit in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () -> fate := qa.Qa_intf.query ());
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:50;
  Alcotest.check value "query with no prior op is F" Value.Fail !fate

(* Both QA implementations must agree on sequential (solo) behaviour. *)
let qcheck_qa_universal_matches_direct =
  QCheck.Test.make ~name:"Qa_universal solo behaviour matches Qa_object"
    ~count:100
    QCheck.(small_list (int_range 0 2))
    (fun choices ->
      let ops =
        List.map
          (fun c ->
            match c with
            | 0 -> Counter.inc
            | 1 -> Counter.add 3
            | _ -> Counter.read)
          choices
      in
      let run make =
        let rt = Runtime.create ~n:1 () in
        let qa = make rt in
        let results = ref [] in
        Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
            List.iter
              (fun op ->
                let response = qa.Qa_intf.invoke op in
                results := response :: !results)
              ops);
        Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:(50 + (List.length ops * 10));
        Runtime.stop rt;
        List.rev !results, qa.Qa_intf.peek_state ()
      in
      let direct =
        run (fun rt ->
            Qa_object.create rt ~name:"d" ~spec:Counter.spec
              ~policy:Abort_policy.Always ())
      in
      let universal =
        run (fun rt ->
            Qa_universal.create rt ~name:"u" ~spec:Counter.spec
              ~policy:Abort_policy.Always ())
      in
      let results_equal (r1, s1) (r2, s2) =
        List.length r1 = List.length r2
        && List.for_all2 Value.equal r1 r2
        && Value.equal s1 s2
      in
      results_equal direct universal)

let test_qa_universal_fate_via_op_ids () =
  (* The fate log must distinguish "my last op" from older ops: after an
     aborted no-effect op, query returns F even though an earlier op by the
     same process took effect. *)
  let rt = Runtime.create ~n:2 () in
  let qa =
    Qa_universal.create rt ~name:"u" ~spec:Counter.spec
      ~policy:Abort_policy.Always ~effect_on_abort:Abort_policy.Effect_never ()
  in
  let outcome = ref Value.Unit in
  let first_response = ref Value.Unit in
  let noise_done = ref false in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      (* Phase 1: first op runs while p1 only yields — no contention. *)
      first_response := qa.Qa_intf.invoke Counter.inc;
      (* Phase 2: collide with p1's reads until an abort is observed. *)
      let rec collide budget =
        if budget = 0 then ()
        else
          let r = qa.Qa_intf.invoke Counter.inc in
          if Value.equal r Value.Abort then begin
            (* Phase 3: wait out the noise, then query solo. *)
            Runtime.await (fun () -> !noise_done);
            outcome := qa.Qa_intf.query ()
          end
          else collide (budget - 1)
      in
      collide 30);
  Runtime.spawn rt ~pid:1 ~name:"noise" (fun () ->
      for _ = 1 to 6 do
        Runtime.yield ()
      done;
      for _ = 1 to 40 do
        let (_ : Value.t) = qa.Qa_intf.invoke Counter.read in
        ()
      done;
      noise_done := true);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_000;
  Runtime.stop rt;
  Alcotest.check value "first solo op succeeded" (Value.Int 0) !first_response;
  Alcotest.check value "aborted-no-effect op reports F, not the old response"
    Value.Fail !outcome

let () =
  Alcotest.run "objects"
    [
      ( "sequential specs",
        [
          Alcotest.test_case "counter" `Quick test_counter_spec;
          Alcotest.test_case "cell" `Quick test_cell_spec;
          Alcotest.test_case "stack" `Quick test_stack_spec;
          Alcotest.test_case "queue" `Quick test_queue_spec;
          Alcotest.test_case "set" `Quick test_set_spec;
          Alcotest.test_case "kv store" `Quick test_kv_spec;
          Alcotest.test_case "test-and-set" `Quick test_tas_spec;
          Alcotest.test_case "max register" `Quick test_max_register_spec;
          Alcotest.test_case "priority queue" `Quick test_priority_queue_spec;
          Alcotest.test_case "illegal op rejected" `Quick test_illegal_op_rejected;
        ] );
      ( "spec properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_counter_sum;
            qcheck_priority_queue_sorted;
            qcheck_stack_lifo;
            qcheck_queue_fifo;
            qcheck_max_monotone;
          ] );
      ( "query-abortable",
        [
          Alcotest.test_case "solo succeeds" `Quick test_qa_solo_succeeds;
          Alcotest.test_case "contended aborts, query recovers" `Quick
            test_qa_contended_aborts_and_query_recovers;
          Alcotest.test_case "no-effect query returns F" `Quick
            test_qa_no_effect_query_returns_fail;
          Alcotest.test_case "query before any op" `Quick
            test_qa_query_before_any_op;
          Alcotest.test_case "universal: fate via op ids" `Quick
            test_qa_universal_fate_via_op_ids;
          QCheck_alcotest.to_alcotest qcheck_qa_universal_matches_direct;
        ] );
    ]
