(* Abortable-register edge cases, pinned to exact interleavings with
   Policy.replay. A shared-object operation spans two steps (invoke at one
   scheduled step, response at the process's next), so a replayed pid
   sequence fixes precisely which operation windows overlap — letting us
   test the boundary of the "solo operations never abort" guarantee rather
   than statistical behaviour. *)

open Tbwf_sim
open Tbwf_registers

let make_reg ?(seed = 1L) ?write_effect policy =
  let rt = Runtime.create ~seed ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy ?write_effect ()
  in
  (rt, reg)

let run rt schedule =
  Runtime.run rt ~policy:(Policy.replay schedule) ~steps:(List.length schedule);
  Runtime.stop rt

(* Writer finishes completely (2 writes = 3 steps: invoke, respond+invoke,
   respond) before the reader takes a single step: under the harshest
   adversary nothing may abort, because nothing overlaps. *)
let test_solo_sequential_never_abort () =
  let rt, reg = make_reg Abort_policy.Always in
  let writes = ref [] and read = ref None in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      let w1 = Abortable_reg.write reg 1 in
      let w2 = Abortable_reg.write reg 2 in
      writes := [ w1; w2 ]);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      read := Some (Abortable_reg.read reg));
  run rt [ 0; 0; 0; 1; 1 ];
  Alcotest.(check (list bool)) "solo writes succeed" [ true; true ] !writes;
  Alcotest.(check (option (option int))) "solo read sees last write"
    (Some (Some 2)) !read;
  let m = Abortable_reg.metrics reg in
  Alcotest.(check int) "no write aborts" 0 m.Metrics.write_aborts;
  Alcotest.(check int) "no read aborts" 0 m.Metrics.read_aborts

(* Exact window boundary: the write's window is steps {0,1}, the read's is
   steps {2,3}. Adjacent but disjoint windows are not an overlap, so even
   Always must let both succeed. *)
let test_adjacent_windows_do_not_overlap () =
  let rt, reg = make_reg Abort_policy.Always in
  let wrote = ref None and read = ref None in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      wrote := Some (Abortable_reg.write reg 7));
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      read := Some (Abortable_reg.read reg));
  run rt [ 0; 0; 1; 1 ];
  Alcotest.(check (option bool)) "boundary write succeeds" (Some true) !wrote;
  Alcotest.(check (option (option int))) "boundary read succeeds"
    (Some (Some 7)) !read

(* One step later and the windows do overlap — in either nesting order. *)
let overlap_case schedule () =
  let rt, reg =
    make_reg Abort_policy.Always ~write_effect:Abort_policy.Effect_never
  in
  let wrote = ref None and read = ref None in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      wrote := Some (Abortable_reg.write reg 7));
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      read := Some (Abortable_reg.read reg));
  run rt schedule;
  Alcotest.(check (option bool)) "overlapped write aborts" (Some false) !wrote;
  Alcotest.(check (option (option int))) "overlapped read aborts" (Some None)
    !read;
  let m = Abortable_reg.metrics reg in
  Alcotest.(check int) "write abort counted" 1 m.Metrics.write_aborts;
  Alcotest.(check int) "read abort counted" 1 m.Metrics.read_aborts;
  Alcotest.(check int) "Effect_never: abort left no trace" 0
    (Abortable_reg.peek reg)

let test_overlap_interleaved = overlap_case [ 0; 1; 0; 1 ]
let test_overlap_nested = overlap_case [ 0; 1; 1; 0 ]

(* A process's own back-to-back operations never overlap each other: the
   response of one and the invocation of the next happen at the same
   scheduled step, sequentially. *)
let test_back_to_back_writes_never_abort () =
  let rt, reg = make_reg Abort_policy.Always in
  let writes = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      let w1 = Abortable_reg.write reg 1 in
      let w2 = Abortable_reg.write reg 2 in
      let w3 = Abortable_reg.write reg 3 in
      writes := [ w1; w2; w3 ]);
  run rt [ 0; 0; 0; 0 ];
  Alcotest.(check (list bool)) "all back-to-back writes succeed"
    [ true; true; true ] !writes;
  Alcotest.(check int) "last value stuck" 3 (Abortable_reg.peek reg)

(* The spec allows an aborted write to take effect or not, and the writer
   cannot tell. Under Effect_random both outcomes must actually occur:
   replay the same overlapping schedule across runtime seeds and observe
   the register both keeping its old value and taking the new one. *)
let test_aborted_write_both_effects_occur () =
  let outcomes = Hashtbl.create 2 in
  for seed = 1 to 40 do
    let rt, reg =
      make_reg ~seed:(Int64.of_int seed) Abort_policy.Always
        ~write_effect:(Abort_policy.Effect_random 0.5)
    in
    let wrote = ref None in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        wrote := Some (Abortable_reg.write reg 42));
    Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
        ignore (Abortable_reg.read reg));
    run rt [ 0; 1; 0; 1 ];
    Alcotest.(check (option bool)) "write always aborts" (Some false) !wrote;
    Hashtbl.replace outcomes (Abortable_reg.peek reg) ()
  done;
  Alcotest.(check bool) "some aborted write took effect" true
    (Hashtbl.mem outcomes 42);
  Alcotest.(check bool) "some aborted write did not take effect" true
    (Hashtbl.mem outcomes 0)

(* Random abort policy on the same pinned overlap: across seeds the same
   overlapped write must sometimes abort and sometimes succeed — "may
   abort" means may, not must. *)
let test_random_policy_both_fates_occur () =
  let aborted = ref false and succeeded = ref false in
  for seed = 1 to 40 do
    let rt, reg =
      make_reg ~seed:(Int64.of_int seed) (Abort_policy.Random 0.5)
    in
    let wrote = ref None in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        wrote := Some (Abortable_reg.write reg 42));
    Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
        ignore (Abortable_reg.read reg));
    run rt [ 0; 1; 0; 1 ];
    match !wrote with
    | Some true -> succeeded := true
    | Some false -> aborted := true
    | None -> Alcotest.fail "write did not complete"
  done;
  Alcotest.(check bool) "write aborted under some seed" true !aborted;
  Alcotest.(check bool) "write succeeded under some seed" true !succeeded

let () =
  Alcotest.run "abortable-edges"
    [
      ( "windows",
        [
          Alcotest.test_case "sequential solo ops never abort" `Quick
            test_solo_sequential_never_abort;
          Alcotest.test_case "adjacent windows do not overlap" `Quick
            test_adjacent_windows_do_not_overlap;
          Alcotest.test_case "interleaved windows abort" `Quick
            test_overlap_interleaved;
          Alcotest.test_case "nested windows abort" `Quick test_overlap_nested;
          Alcotest.test_case "back-to-back writes never abort" `Quick
            test_back_to_back_writes_never_abort;
        ] );
      ( "nondeterminism",
        [
          Alcotest.test_case "aborted write takes effect or not" `Quick
            test_aborted_write_both_effects_occur;
          Alcotest.test_case "random policy aborts or not" `Quick
            test_random_policy_both_fates_occur;
        ] );
    ]
