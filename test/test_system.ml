(* The system registry: golden trace fingerprints (the mechanized proof
   that [System.build] wires each stack exactly as the pre-registry code
   did), same-seed build determinism, and id round-tripping. *)

open Tbwf_sim
open Tbwf_experiments
open Tbwf_system

(* --- golden fingerprints -------------------------------------------------- *)

(* The golden file was generated from the LEGACY per-consumer wiring
   (before lib/system existed); bin/gen_system_goldens.ml regenerates it
   through the registry. Equality here is the refactor-equivalence
   proof: same seed, same policy, same object-id assignment, same trace,
   for every system. Dimensions must match the generator exactly. *)

let golden_n = 3
let golden_steps = 4_000
let golden_seed = 0x53595354L

let golden_policy = function
  | "round-robin" -> Policy.round_robin ()
  | "degraded" -> Scenario.degraded_policy ~n:golden_n ~timely:[ 1; 2 ] ()
  | other -> Alcotest.failf "unknown policy %S in golden file" other

let golden_path () =
  (* dune runtest runs with cwd = _build/default/test; dune exec from the
     repo root does not. *)
  List.find_opt Sys.file_exists
    [ "golden/system_fingerprints.txt"; "test/golden/system_fingerprints.txt" ]
  |> function
  | Some p -> p
  | None -> Alcotest.fail "golden/system_fingerprints.txt not found"

let read_goldens () =
  let ic = open_in (golden_path ()) in
  let rec loop acc =
    match input_line ic with
    | line ->
      (match String.split_on_char ' ' line with
      | [ sys; pol; digest ] -> loop ((sys, pol, digest) :: acc)
      | _ -> Alcotest.failf "malformed golden line %S" line)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

let digest_of_run id ~seed ~n ~steps ~policy =
  let stack = System.build ~seed ~n id in
  let rt = stack.System.rt in
  Runtime.run rt ~policy ~steps;
  Runtime.stop rt;
  Digest.to_hex (Digest.string (Trace.fingerprint (Runtime.trace rt)))

let test_goldens () =
  let goldens = read_goldens () in
  Alcotest.(check int) "golden file covers 5 systems x 2 policies" 10
    (List.length goldens);
  List.iter
    (fun (sys, pol, expected) ->
      let id =
        match System.of_string sys with
        | Ok id -> id
        | Error msg -> Alcotest.failf "golden system: %s" msg
      in
      let actual =
        digest_of_run id ~seed:golden_seed ~n:golden_n ~steps:golden_steps
          ~policy:(golden_policy pol)
      in
      Alcotest.(check string)
        (Fmt.str "%s under %s matches legacy wiring" sys pol)
        expected actual)
    goldens

let test_goldens_cover_registry () =
  let goldens = read_goldens () in
  List.iter
    (fun id ->
      let name = System.to_string id in
      Alcotest.(check bool)
        (Fmt.str "%s present in golden file" name)
        true
        (List.exists (fun (sys, _, _) -> String.equal sys name) goldens))
    System.all

(* --- build determinism ---------------------------------------------------- *)

(* Two builds of the same (system, seed) must produce byte-identical
   traces under the same schedule — System.build may not consult any
   hidden state. Telemetry attachment must be trace-neutral. *)

let qcheck_same_seed_byte_identical =
  QCheck.Test.make ~name:"same (system, seed) => byte-identical fingerprints"
    ~count:25
    QCheck.(pair (int_range 0 4) (int_range 1 100_000))
    (fun (which, seed) ->
      let id = List.nth System.all which in
      let seed = Int64.of_int seed in
      let run ~telemetry =
        let stack = System.build ~seed ~telemetry ~n:3 id in
        let rt = stack.System.rt in
        Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_500;
        Runtime.stop rt;
        Trace.fingerprint (Runtime.trace rt)
      in
      let a = run ~telemetry:false in
      let b = run ~telemetry:false in
      let c = run ~telemetry:true in
      String.equal a b && String.equal a c)

(* --- ids ------------------------------------------------------------------ *)

let test_id_round_trip () =
  List.iter
    (fun id ->
      match System.of_string (System.to_string id) with
      | Ok id' ->
        Alcotest.(check bool)
          (Fmt.str "%s round-trips" (System.to_string id))
          true (id = id')
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    System.all

let test_unknown_id () =
  match System.of_string "tbwf-quantum" with
  | Ok _ -> Alcotest.fail "unknown system accepted"
  | Error msg ->
    Alcotest.(check bool) "error lists the known names" true
      (List.for_all
         (fun id ->
           let re = System.to_string id in
           (* poor man's substring check *)
           let len = String.length re in
           let found = ref false in
           for i = 0 to String.length msg - len do
             if String.equal (String.sub msg i len) re then found := true
           done;
           !found)
         System.all)

let test_registry_shape () =
  Alcotest.(check int) "five systems" 5 (List.length System.all);
  Alcotest.(check int) "three paper systems" 3
    (List.length System.paper_systems);
  Alcotest.(check int) "two baselines" 2 (List.length System.baseline_systems);
  List.iter
    (fun id ->
      let info = System.info id in
      Alcotest.(check bool)
        (Fmt.str "%s has a summary" (System.to_string id))
        true
        (String.length info.System.summary > 0);
      Alcotest.(check bool)
        (Fmt.str "%s has a figure reference" (System.to_string id))
        true
        (String.length info.System.figure > 0))
    System.all

let () =
  Alcotest.run "system"
    [
      ( "goldens",
        [
          Alcotest.test_case "registry build matches legacy fingerprints"
            `Quick test_goldens;
          Alcotest.test_case "golden file covers every system" `Quick
            test_goldens_cover_registry;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest qcheck_same_seed_byte_identical ] );
      ( "ids",
        [
          Alcotest.test_case "round trip" `Quick test_id_round_trip;
          Alcotest.test_case "unknown id" `Quick test_unknown_id;
          Alcotest.test_case "registry shape" `Quick test_registry_shape;
        ] );
    ]
