(* The domain pool and its fan-out sites: results merge in canonical task
   order, so every output is byte-identical at any domain count; a raising
   task is reported against its own cell without killing the pool; and
   task seeds derive explicitly from the master seed by index. *)

open Tbwf_parallel
open Tbwf_sim
open Tbwf_experiments
open Tbwf_nemesis

let pool d = Pool.create ~domains:d ()

(* --- pool basics --------------------------------------------------------- *)

let test_map_canonical_order () =
  List.iter
    (fun d ->
      let xs = Array.init 57 Fun.id in
      Alcotest.(check (array int))
        (Fmt.str "map over %d domains" d)
        (Array.map (fun i -> i * i) xs)
        (Pool.map (pool d) xs (fun i -> i * i)))
    [ 1; 2; 3; 8 ];
  Alcotest.(check (array int))
    "empty input" [||]
    (Pool.map (pool 4) [||] (fun i -> i * i))

let test_try_map_reports_failing_cell () =
  let results =
    Pool.try_map (pool 4) (Array.init 10 Fun.id) (fun i ->
        if i = 3 then failwith "boom" else i * 10)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v ->
        Alcotest.(check bool) "only task 3 fails" true (i <> 3);
        Alcotest.(check int) "value in the right slot" (i * 10) v
      | Error e ->
        Alcotest.(check int) "failure lands on its own cell" 3 e.Pool.task;
        Alcotest.(check bool)
          "message carries the exception" true
          (String.length e.Pool.message > 0))
    results

let test_map_collects_all_errors () =
  match
    Pool.map (pool 3) (Array.init 10 Fun.id) (fun i ->
        if i = 2 || i = 7 then failwith "boom" else i)
  with
  | (_ : int array) -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed errors ->
    Alcotest.(check (list int))
      "every failed task, in index order" [ 2; 7 ]
      (List.map (fun e -> e.Pool.task) errors)

let qcheck_map_seeded_matches_sequential =
  QCheck.Test.make
    ~name:"map_seeded over d domains = sequential map, for d in 1..8"
    ~count:40
    QCheck.(triple int (int_range 0 40) (int_range 1 8))
    (fun (master, count, domains) ->
      let seeds = Rng.task_seeds ~master:(Int64.of_int master) count in
      let f s = Rng.int (Rng.create s) 1_000_003 in
      Pool.map_seeded (pool domains) seeds f = Array.map f seeds)

let test_same_master_same_task_seeds () =
  let seeds = Rng.task_seeds ~master:0x5EEDL 32 in
  let via d = Pool.map_seeded (pool d) seeds Fun.id in
  Alcotest.(check bool) "pool of 3 = the seed array" true (via 3 = seeds);
  Alcotest.(check bool) "pool of 7 = pool of 3" true (via 7 = via 3)

(* --- exploration: pooled root-split = sequential DFS ---------------------- *)

let test_exhaustive_matches_sequential () =
  List.iter
    (fun s ->
      List.iter
        (fun budget ->
          let seq = Explore_scenarios.exhaustive ~max_schedules:budget s in
          let par =
            Explore_scenarios.exhaustive ~max_schedules:budget ~pool:(pool 4)
              s
          in
          Alcotest.(check bool)
            (Fmt.str "%s at budget %d" s.Explore_scenarios.name budget)
            true (seq = par))
        [ 1; 2; 7; 50; 200_000 ])
    Explore_scenarios.all

(* --- fuzzing: batch partition is job-count-independent -------------------- *)

let test_fuzz_identical_across_pools () =
  let base = Explore_scenarios.fuzz Explore_scenarios.mutex2 in
  Alcotest.(check bool)
    "a violation is found" true
    (base.Tbwf_check.Explore.counterexample <> None);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Fmt.str "pool of %d = sequential" d)
        true
        (Explore_scenarios.fuzz ~pool:(pool d) Explore_scenarios.mutex2
        = base))
    [ 1; 2; 4 ]

let test_fuzz_lowest_batch_wins () =
  (* broken1 violates on every schedule, so every batch witnesses — the
     reported outcome must still be batch 0's, not a racing later batch. *)
  let seq = Explore_scenarios.fuzz ~runs:200 Explore_scenarios.broken1 in
  let par =
    Explore_scenarios.fuzz ~runs:200 ~pool:(pool 4)
      Explore_scenarios.broken1
  in
  Alcotest.(check bool) "pooled = sequential" true (seq = par);
  Alcotest.(check bool)
    "winner comes from the first batch" true
    (par.Tbwf_check.Explore.fuzz_runs <= Tbwf_check.Explore.fuzz_batch_runs)

let test_plan_fuzz_identical_across_pools () =
  let render (o : Fault_plan.t Tbwf_check.Explore.fault_fuzz_outcome) =
    Fmt.str "%d %a %a"
      o.Tbwf_check.Explore.plan_runs
      Fmt.(option ~none:(any "-") int)
      o.Tbwf_check.Explore.plan_shrunk_from
      Fmt.(
        option ~none:(any "none") (fun fmt (pids, plan) ->
            Fmt.pf fmt "%a / %s" (list ~sep:comma int) pids
              (Fault_plan.to_string plan)))
      o.Tbwf_check.Explore.plan_counterexample
  in
  let base = render (Plan_fuzz.demo ~horizon:400 ()) in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Fmt.str "demo fuzz, pool of %d" d)
        base
        (render (Plan_fuzz.demo ~pool:(pool d) ~horizon:400 ())))
    [ 1; 3 ]

(* --- campaigns: cells fan out, outputs and telemetry stay fixed ----------- *)

let test_campaign_run_identical_across_pools () =
  let c = Option.get (Campaign.find "slowdown") in
  let systems = [ Campaign.Tbwf_atomic; Campaign.Naive_booster ] in
  let render d =
    Fmt.str "%a" Campaign.pp_outcome (Campaign.run ~pool:(pool d) ~systems c)
  in
  let base = render 1 in
  Alcotest.(check string) "pool of 3 = pool of 1" base (render 3)

(* Mirror of the smoke above on the compiled backend: the pool partition
   (Rng.task_seed per cell) and the compiled machines must compose into
   the same bytes at --jobs 1 and --jobs 4. *)
let test_campaign_run_compiled_identical_across_pools () =
  let c = Option.get (Campaign.find "slowdown") in
  let systems = [ Campaign.Tbwf_atomic; Campaign.Naive_booster ] in
  let render backend d =
    Fmt.str "%a" Campaign.pp_outcome
      (Campaign.run ~backend ~pool:(pool d) ~systems c)
  in
  let base = render Tbwf_sim.Backend.Compiled 1 in
  Alcotest.(check string)
    "compiled, pool of 4 = pool of 1" base
    (render Tbwf_sim.Backend.Compiled 4);
  Alcotest.(check string)
    "compiled = reference bytes" base
    (render Tbwf_sim.Backend.Reference 1)

(* Rng.task_seed is the pool's determinism keystone: the seed of task k
   is a pure function of (master, k), independent of domain count or
   execution order. Pin a few values so a drive-by "improvement" to the
   mixer is caught as the golden break it is. *)
let test_task_seed_stable () =
  let master = 0x5EED5EEDL in
  let seeds = Tbwf_sim.Rng.task_seeds ~master 4 in
  Alcotest.(check (array int64))
    "task_seeds = task_seed per index"
    (Array.init 4 (Tbwf_sim.Rng.task_seed ~master))
    seeds;
  Alcotest.(check bool)
    "distinct across indices" true
    (Array.length
       (Array.of_seq
          (Seq.map Int64.to_string (Array.to_seq seeds)
          |> List.of_seq |> List.sort_uniq String.compare |> List.to_seq))
    = 4);
  (* same master, same seeds — computed twice, including under domains *)
  let again =
    Tbwf_parallel.Pool.map (pool 4) [| 0; 1; 2; 3 |] (fun k ->
        Tbwf_sim.Rng.task_seed ~master k)
  in
  Alcotest.(check (array int64)) "stable under the pool" seeds again

let test_matrix_identical_and_telemetry_merges () =
  let matrix d =
    Campaign.run_matrix ~pool:(pool d) ~systems:[ Campaign.Tbwf_atomic ] ()
  in
  let a = matrix 1 in
  let b = matrix 3 in
  Alcotest.(check bool) "matrix verdict" a.Campaign.m_ok b.Campaign.m_ok;
  Alcotest.(check bool)
    "all campaigns present" true
    (List.length a.Campaign.m_outcomes = List.length Campaign.catalogue);
  Alcotest.(check string)
    "merged telemetry snapshot is byte-identical"
    (Tbwf_telemetry.Collector.snapshot_string a.Campaign.m_telemetry)
    (Tbwf_telemetry.Collector.snapshot_string b.Campaign.m_telemetry)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map merges in canonical order" `Quick
            test_map_canonical_order;
          Alcotest.test_case "try_map reports the failing cell" `Quick
            test_try_map_reports_failing_cell;
          Alcotest.test_case "map collects every error" `Quick
            test_map_collects_all_errors;
          Alcotest.test_case "same master, same task seeds" `Quick
            test_same_master_same_task_seeds;
          QCheck_alcotest.to_alcotest qcheck_map_seeded_matches_sequential;
        ] );
      ( "explore",
        [
          Alcotest.test_case "pooled exhaustive = sequential" `Quick
            test_exhaustive_matches_sequential;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "identical across pool sizes" `Quick
            test_fuzz_identical_across_pools;
          Alcotest.test_case "lowest batch wins" `Quick
            test_fuzz_lowest_batch_wins;
          Alcotest.test_case "plan fuzz identical across pools" `Quick
            test_plan_fuzz_identical_across_pools;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "run identical across pools" `Quick
            test_campaign_run_identical_across_pools;
          Alcotest.test_case "compiled run identical across pools" `Quick
            test_campaign_run_compiled_identical_across_pools;
          Alcotest.test_case "task seeds stable" `Quick
            test_task_seed_stable;
          Alcotest.test_case "matrix + merged telemetry identical" `Quick
            test_matrix_identical_and_telemetry_merges;
        ] );
    ]
