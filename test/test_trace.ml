open Tbwf_sim

let test_record_and_query () =
  let t = Trace.create () in
  List.iter (fun pid -> Trace.record_step t ~pid) [ 0; 1; 2; 0; 1; 0 ];
  Alcotest.(check int) "length" 6 (Trace.length t);
  Alcotest.(check int) "pid_at 0" 0 (Trace.pid_at t 0);
  Alcotest.(check int) "pid_at 2" 2 (Trace.pid_at t 2);
  Alcotest.(check (list int)) "steps_of 0" [ 0; 3; 5 ] (Trace.steps_of t ~pid:0);
  Alcotest.(check (list int)) "steps_of 1" [ 1; 4 ] (Trace.steps_of t ~pid:1);
  let counts = Trace.step_counts t ~n:3 in
  Alcotest.(check (array int)) "step counts" [| 3; 2; 1 |] counts

let test_pid_at_bounds () =
  let t = Trace.create () in
  Trace.record_step t ~pid:0;
  Alcotest.(check bool) "negative index rejected" true
    (try
       ignore (Trace.pid_at t (-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "past-end rejected" true
    (try
       ignore (Trace.pid_at t 1);
       false
     with Invalid_argument _ -> true)

let test_growth () =
  let t = Trace.create () in
  for i = 0 to 5_000 do
    Trace.record_step t ~pid:(i mod 7)
  done;
  Alcotest.(check int) "survives growth" 5_001 (Trace.length t);
  Alcotest.(check int) "late entry correct" (5_000 mod 7)
    (Trace.pid_at t 5_000)

let op_event ~step ~pid ~obj_name ~op ~phase =
  { Trace.step; pid; obj_id = 0; obj_name; op; phase }

let test_writes_in_window () =
  let t = Trace.create () in
  let w pid step result =
    Trace.record_op t
      (op_event ~step ~pid ~obj_name:"Reg[1]" ~op:(Value.write_op (Value.Int 1))
         ~phase:(`Respond result))
  in
  w 0 10 Value.Unit;
  w 0 20 Value.Unit;
  w 1 30 Value.Abort;
  (* aborted write must not count *)
  w 2 40 Value.Unit;
  Trace.record_op t
    (op_event ~step:15 ~pid:3 ~obj_name:"Reg[1]" ~op:Value.read_op
       ~phase:(`Respond (Value.Int 0)));
  (* reads must not count *)
  Trace.record_op t
    (op_event ~step:25 ~pid:4 ~obj_name:"Other" ~op:(Value.write_op Value.Unit)
       ~phase:(`Respond Value.Unit));
  (* other prefix must not count when filtering *)
  let counts = Trace.writes_in_window t ~obj_prefix:"Reg" ~from_step:0 ~to_step:100 in
  Alcotest.(check (option int)) "pid 0 wrote twice" (Some 2)
    (Hashtbl.find_opt counts 0);
  Alcotest.(check (option int)) "pid 1 aborted write not counted" None
    (Hashtbl.find_opt counts 1);
  Alcotest.(check (option int)) "pid 2 wrote once" (Some 1)
    (Hashtbl.find_opt counts 2);
  Alcotest.(check (option int)) "pid 3 read not counted" None
    (Hashtbl.find_opt counts 3);
  Alcotest.(check (option int)) "other object filtered" None
    (Hashtbl.find_opt counts 4);
  let windowed = Trace.writes_in_window t ~obj_prefix:"Reg" ~from_step:15 ~to_step:35 in
  Alcotest.(check (option int)) "window restricts" (Some 1)
    (Hashtbl.find_opt windowed 0)

let test_ops_order () =
  let t = Trace.create () in
  for step = 1 to 5 do
    Trace.record_op t
      (op_event ~step ~pid:0 ~obj_name:"x" ~op:Value.read_op ~phase:`Invoke)
  done;
  let steps = List.map (fun ev -> ev.Trace.step) (Trace.ops t) in
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3; 4; 5 ] steps

let steps_of_events evs = List.map (fun ev -> ev.Trace.step) evs

let test_ops_from_empty () =
  let t = Trace.create () in
  Alcotest.(check int) "empty n_ops" 0 (Trace.n_ops t);
  Alcotest.(check (list int)) "empty from 0" []
    (steps_of_events (Trace.ops_from t 0));
  Alcotest.(check (list int)) "empty, mark past end" []
    (steps_of_events (Trace.ops_from t 7))

let test_ops_from_past_end () =
  let t = Trace.create () in
  Trace.record_op t
    (op_event ~step:1 ~pid:0 ~obj_name:"x" ~op:Value.read_op ~phase:`Invoke);
  Alcotest.(check (list int)) "mark = n_ops is empty" []
    (steps_of_events (Trace.ops_from t (Trace.n_ops t)));
  Alcotest.(check (list int)) "mark beyond n_ops is empty" []
    (steps_of_events (Trace.ops_from t (Trace.n_ops t + 3)))

let test_ops_from_interleaved () =
  let t = Trace.create () in
  let record step =
    Trace.record_op t
      (op_event ~step ~pid:0 ~obj_name:"x" ~op:Value.read_op ~phase:`Invoke)
  in
  record 1;
  record 2;
  let mark1 = Trace.n_ops t in
  Alcotest.(check int) "mark after two" 2 mark1;
  record 3;
  let mark2 = Trace.n_ops t in
  record 4;
  record 5;
  (* Earlier mark still sees everything since it was taken, a later mark
     only its own suffix; old marks are never invalidated by new events. *)
  Alcotest.(check (list int)) "since mark1" [ 3; 4; 5 ]
    (steps_of_events (Trace.ops_from t mark1));
  Alcotest.(check (list int)) "since mark2" [ 4; 5 ]
    (steps_of_events (Trace.ops_from t mark2));
  Alcotest.(check (list int)) "from zero sees all" [ 1; 2; 3; 4; 5 ]
    (steps_of_events (Trace.ops_from t 0))

(* The fingerprint is the replay-determinism witness: explorer and nemesis
   tests compare runs by fingerprint equality, so its exact rendering is a
   compatibility surface. Pin it to a golden string. *)
let test_fingerprint_golden () =
  let t = Trace.create () in
  List.iter (fun pid -> Trace.record_step t ~pid) [ 0; 1; -1 ];
  Trace.record_op t
    (op_event ~step:1 ~pid:0 ~obj_name:"x" ~op:Value.read_op ~phase:`Invoke);
  Trace.record_op t
    { Trace.step = 2; pid = 1; obj_id = 2; obj_name = "Reg[0]";
      op = Value.write_op (Value.Int 7); phase = `Respond Value.Abort };
  let expected =
    "sched:0,1,-1,\n" ^ "ops:\n"
    ^ "1 0 0 x (\"read\", ()) I\n"
    ^ "2 1 2 Reg[0] (\"write\", 7) R \xe2\x8a\xa5\n"
  in
  Alcotest.(check string) "golden fingerprint" expected (Trace.fingerprint t)

let test_fingerprint_distinguishes () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record_step a ~pid:0;
  Trace.record_step b ~pid:0;
  Alcotest.(check string) "same prefix agrees" (Trace.fingerprint a)
    (Trace.fingerprint b);
  Trace.record_step b ~pid:1;
  Alcotest.(check bool) "extra step differs" false
    (String.equal (Trace.fingerprint a) (Trace.fingerprint b))

let () =
  Alcotest.run "trace"
    [
      ( "unit",
        [
          Alcotest.test_case "record and query" `Quick test_record_and_query;
          Alcotest.test_case "pid_at bounds" `Quick test_pid_at_bounds;
          Alcotest.test_case "buffer growth" `Quick test_growth;
          Alcotest.test_case "writes_in_window" `Quick test_writes_in_window;
          Alcotest.test_case "ops chronological" `Quick test_ops_order;
        ] );
      ( "marks",
        [
          Alcotest.test_case "ops_from empty trace" `Quick test_ops_from_empty;
          Alcotest.test_case "ops_from past end" `Quick test_ops_from_past_end;
          Alcotest.test_case "ops_from interleaved marks" `Quick
            test_ops_from_interleaved;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "golden string" `Quick test_fingerprint_golden;
          Alcotest.test_case "distinguishes runs" `Quick
            test_fingerprint_distinguishes;
        ] );
    ]
