open Tbwf_sim
open Tbwf_registers
open Tbwf_omega
open Tbwf_objects
open Tbwf_consensus

let value = Alcotest.testable Value.pp Value.equal

let setup ?(seed = 2L) ~omega ~n ~spec ~slots () =
  let rt = Runtime.create ~seed ~n () in
  let handles =
    match omega with
    | `Atomic -> (Omega_registers.install rt).Omega_registers.handles
    | `Abortable ->
      (Omega_abortable.install rt ~policy:Abort_policy.Always ()).Omega_abortable.handles
  in
  let adapter = Consensus.Omega_adapter.attach handles in
  let log = Replicated.create rt ~name:"rsm" ~omega:adapter ~spec ~slots in
  rt, log

let test_counter_rsm omega () =
  let n = 3 in
  let ops_each = 4 in
  let rt, log = setup ~omega ~n ~spec:Counter.spec ~slots:32 () in
  let responses = Array.make n [] in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"client" (fun () ->
        for _ = 1 to ops_each do
          let r = Replicated.submit log Counter.inc in
          responses.(pid) <- Value.to_int r :: responses.(pid)
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_000_000;
  Runtime.stop rt;
  (* Every client finished, and the 12 responses are a permutation of
     0..11 (each increment observed a distinct predecessor count). *)
  let all = Array.to_list responses |> List.concat |> List.sort compare in
  Alcotest.(check (list int)) "responses form the full prefix"
    (List.init (n * ops_each) Fun.id)
    all;
  (* All replicas that applied everything agree on the final state. *)
  for pid = 0 to n - 1 do
    Alcotest.(check int)
      (Fmt.str "replica %d applied all slots it saw" pid)
      (Replicated.applied log ~pid)
      (Value.to_int (Replicated.local_state log ~pid))
  done

let test_replicas_prefix_consistent () =
  (* Under a random schedule, any two replicas' states are comparable:
     one's applied count is a prefix of the other's op sequence — for a
     counter this means states equal applied counts. *)
  let n = 3 in
  let rt, log = setup ~seed:7L ~omega:`Atomic ~n ~spec:Counter.spec ~slots:24 () in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"client" (fun () ->
        for _ = 1 to 3 do
          ignore (Replicated.submit log Counter.inc)
        done)
  done;
  Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 2.5; 2, 0.7 |]) ~steps:2_000_000;
  Runtime.stop rt;
  for pid = 0 to n - 1 do
    Alcotest.(check int)
      (Fmt.str "replica %d state equals slots applied" pid)
      (Replicated.applied log ~pid)
      (Value.to_int (Replicated.local_state log ~pid))
  done

let test_kv_rsm_with_sync () =
  (* Two writers drive a KV store; a read-only third replica catches up via
     sync and sees a consistent store. *)
  let n = 3 in
  let rt, log = setup ~seed:4L ~omega:`Atomic ~n ~spec:Kv_store.spec ~slots:16 () in
  let done_writing = Array.make 2 false in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"writer" (fun () ->
        for k = 1 to 3 do
          ignore
            (Replicated.submit log
               (Kv_store.put (Fmt.str "key-%d-%d" pid k) (Value.Int k)))
        done;
        done_writing.(pid) <- true)
  done;
  Runtime.spawn rt ~pid:2 ~name:"reader" (fun () ->
      Runtime.await (fun () -> done_writing.(0) && done_writing.(1));
      Replicated.sync log);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_000_000;
  Runtime.stop rt;
  Alcotest.(check int) "reader applied all six writes" 6
    (Replicated.applied log ~pid:2);
  let reader_state = Replicated.local_state log ~pid:2 in
  (* The reader's replica agrees with a writer's replica that applied the
     same number of slots. *)
  Alcotest.check value "reader agrees with writer 0's final state"
    (Replicated.local_state log ~pid:0)
    reader_state

let test_log_exhaustion_raises () =
  let rt, log = setup ~omega:`Atomic ~n:2 ~spec:Counter.spec ~slots:2 () in
  let failed = ref false in
  Runtime.spawn rt ~pid:0 ~name:"client" (fun () ->
      try
        for _ = 1 to 3 do
          ignore (Replicated.submit log Counter.inc)
        done
      with Failure _ -> failed := true);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_000_000;
  Runtime.stop rt;
  Alcotest.(check bool) "log exhaustion raises" true !failed

let () =
  Alcotest.run "replicated"
    [
      ( "state machine replication",
        [
          Alcotest.test_case "counter RSM (atomic omega)" `Quick
            (test_counter_rsm `Atomic);
          Alcotest.test_case "counter RSM (abortable omega)" `Slow
            (test_counter_rsm `Abortable);
          Alcotest.test_case "replica prefix consistency" `Quick
            test_replicas_prefix_consistent;
          Alcotest.test_case "kv store with read-only sync" `Quick
            test_kv_rsm_with_sync;
          Alcotest.test_case "log exhaustion" `Quick test_log_exhaustion_raises;
        ] );
    ]
