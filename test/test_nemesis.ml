(* The nemesis subsystem: fault-plan serialization, compiled-plan
   determinism, campaign verdicts, and the planted-bug fuzz demo. *)

open Tbwf_sim
open Tbwf_nemesis

(* One atom of every kind, exercising every field of the text format. *)
let kitchen_sink =
  Fault_plan.make ~n:4 ~horizon:10_000
    [
      Fault_plan.Crash { pid = 3; at = 7_000 };
      Fault_plan.Slow { pid = 0; at = 0; gap = 60; growth = 1.15 };
      Fault_plan.Timely { pid = 1; at = 5_000; period = 5 };
      Fault_plan.Flicker
        { pid = 2; at = 1_000; active = 80; sleep = 200; growth = 1.3 };
      Fault_plan.Abort_ramp
        {
          target = Fault_plan.Qa;
          from = 2_500;
          until = 7_500;
          rate0 = 0.5;
          rate1 = 0.9;
        };
      Fault_plan.Staleness { from = 2_500; until = 7_500 };
    ]

let test_round_trip () =
  let text = Fault_plan.to_string kitchen_sink in
  match Fault_plan.of_string text with
  | Error msg -> Alcotest.failf "kitchen sink failed to parse: %s" msg
  | Ok plan ->
    Alcotest.(check bool) "round-trips exactly" true
      (Fault_plan.equal kitchen_sink plan);
    Alcotest.(check string) "second serialization identical" text
      (Fault_plan.to_string plan)

let test_comments_and_blanks () =
  let text = Fault_plan.to_string kitchen_sink in
  let sprinkled =
    String.concat "\n"
      (List.concat_map
         (fun line -> [ "# a comment"; ""; line ])
         (String.split_on_char '\n' text))
  in
  match Fault_plan.of_string sprinkled with
  | Error msg -> Alcotest.failf "comments broke parsing: %s" msg
  | Ok plan ->
    Alcotest.(check bool) "comments and blanks ignored" true
      (Fault_plan.equal kitchen_sink plan)

let test_rejects_garbage () =
  let bad text =
    match Fault_plan.of_string text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "wrong magic" true (bad "tbwf-sched v1 n=2\n");
  Alcotest.(check bool) "bad atom kind" true
    (bad "tbwf-plan v1 n=2 horizon=100\nmelt pid=0 at=3\n");
  Alcotest.(check bool) "out-of-range pid" true
    (bad "tbwf-plan v1 n=2 horizon=100\ncrash pid=7 at=3\n")

let test_prediction () =
  Alcotest.(check (list int))
    "slow and crashed pids excluded, timely-restored included" [ 1 ]
    (Fault_plan.predicted_timely kitchen_sink);
  Alcotest.(check int) "settles at the last fault" 7_500
    (Fault_plan.settle_step kitchen_sink)

(* --- tbwf-plan v2: network atoms, replicas, forward compatibility --- *)

(* One atom of every v2 kind, node fields in both Some/None and
   client/replica flavours, plus an unknown future kind. *)
let net_kitchen_sink =
  Fault_plan.make ~replicas:3 ~n:4 ~horizon:10_000
    [
      Fault_plan.Slow { pid = 0; at = 0; gap = 60; growth = 1.15 };
      Fault_plan.Partition
        { at = 2_000; side = [ Fault_plan.Client 1; Fault_plan.Replica 2 ] };
      Fault_plan.Heal { at = 4_000 };
      Fault_plan.Delay_ramp
        { from = 1_000; until = 6_000; extra0 = 0.0; extra1 = 8.0;
          node = None };
      Fault_plan.Delay_ramp
        { from = 2_000; until = 7_000; extra0 = 1.0; extra1 = 3.0;
          node = Some (Fault_plan.Replica 1) };
      Fault_plan.Drop
        { from = 3_000; until = 8_000; rate0 = 0.25; rate1 = 0.75;
          node = Some (Fault_plan.Client 0) };
      Fault_plan.Crash_replica { r = 2; at = 7_000 };
      Fault_plan.Unknown { line = "quantum-foam pid=0 at=9000" };
    ]

let test_v2_round_trip () =
  let text = Fault_plan.to_string net_kitchen_sink in
  Alcotest.(check bool) "serializes under the v2 header" true
    (String.length text > 13 && String.equal (String.sub text 0 13)
       "tbwf-plan v2 ");
  match Fault_plan.of_string text with
  | Error msg -> Alcotest.failf "net kitchen sink failed to parse: %s" msg
  | Ok plan ->
    Alcotest.(check bool) "round-trips exactly" true
      (Fault_plan.equal net_kitchen_sink plan);
    Alcotest.(check string) "second serialization identical" text
      (Fault_plan.to_string plan)

(* Growing the format must not disturb committed v1 plans: a plan with
   only v1 atoms and no replicas still serializes byte-for-byte under the
   v1 header, with no replicas= field. *)
let test_v1_header_stable () =
  let text = Fault_plan.to_string kitchen_sink in
  Alcotest.(check bool) "v1 header" true
    (String.equal (String.sub text 0 13) "tbwf-plan v1 ");
  Alcotest.(check bool) "no replicas field" true
    (not
       (List.exists
          (fun line ->
            String.length line >= 9 && String.sub line 0 9 = "replicas=")
          (String.split_on_char ' ' (List.hd (String.split_on_char '\n' text)))))

let test_unknown_kind_versioned () =
  let body = "quantum-foam pid=0 at=9000\n" in
  (match
     Fault_plan.of_string ("tbwf-plan v2 n=2 horizon=100 replicas=3\n" ^ body)
   with
  | Error msg -> Alcotest.failf "v2 rejected an unknown kind: %s" msg
  | Ok plan ->
    Alcotest.(check bool) "preserved verbatim" true
      (Fault_plan.atoms plan
      = [ Fault_plan.Unknown { line = "quantum-foam pid=0 at=9000" } ]));
  match Fault_plan.of_string ("tbwf-plan v1 n=2 horizon=100\n" ^ body) with
  | Ok _ -> Alcotest.fail "v1 accepted an unknown kind"
  | Error _ -> ()

let test_emergent_prediction () =
  (* Client 1 partitioned away from every replica, persistently: it is
     emergently untimely; the others reach all three replicas. *)
  let plan =
    Fault_plan.make ~replicas:3 ~n:3 ~horizon:10_000
      [ Fault_plan.Partition { at = 5_000; side = [ Fault_plan.Client 1 ] } ]
  in
  match Fault_plan.emergent plan with
  | None -> Alcotest.fail "replicated plan has no emergent structure"
  | Some em ->
    let open Tbwf_check.Degradation in
    Alcotest.(check (list int)) "all replicas live" [ 0; 1; 2 ] em.em_live;
    Alcotest.(check bool) "cut client not quorate" false
      (emergent_quorate em 1);
    Alcotest.(check bool) "mainland client quorate" true
      (emergent_quorate em 0);
    (* A heal after the cut restores everyone. *)
    let healed =
      Fault_plan.make ~replicas:3 ~n:3 ~horizon:10_000
        [
          Fault_plan.Partition { at = 5_000; side = [ Fault_plan.Client 1 ] };
          Fault_plan.Heal { at = 6_000 };
        ]
    in
    (match Fault_plan.emergent healed with
    | None -> Alcotest.fail "healed plan has no emergent structure"
    | Some em ->
      Alcotest.(check bool) "healed client quorate again" true
        (emergent_quorate em 1));
    (* Crashing a minority leaves everyone quorate; the events compile. *)
    let crashed =
      Fault_plan.make ~replicas:3 ~n:3 ~horizon:10_000
        [ Fault_plan.Crash_replica { r = 0; at = 100 } ]
    in
    (match Fault_plan.emergent crashed with
    | None -> Alcotest.fail "crashed plan has no emergent structure"
    | Some em ->
      Alcotest.(check (list int)) "minority crash leaves a live majority"
        [ 1; 2 ] em.em_live;
      Alcotest.(check bool) "clients still quorate" true
        (emergent_quorate em 0));
    Alcotest.(check int) "network atoms compile to events" 3
      (List.length (Fault_plan.net_events plan)
      + List.length (Fault_plan.net_events healed))

let qcheck_gen_v2_round_trip =
  QCheck.Test.make
    ~name:"generated replicated plans round-trip through text" ~count:200
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let plan = Fault_plan.gen ~replicas:3 rng ~n:4 ~horizon:8_000 in
      match Fault_plan.of_string (Fault_plan.to_string plan) with
      | Error _ -> false
      | Ok plan' -> Fault_plan.equal plan plan')

(* Satellite: shrinking must carry atom kinds it does not understand
   through both ddmin and the text round-trip the CLI applies to every
   candidate, instead of silently dropping them. The fails predicate only
   accepts plans that still contain the planted future atom after a
   serialize/parse cycle — if shrinking dropped or mangled it, no
   candidate would fail and the shrinker would return the plan unshrunk
   with the atom gone. *)
let test_shrink_preserves_unknown_atoms () =
  let planted = "quantum-foam pid=0 at=9000" in
  let plan =
    Fault_plan.make ~replicas:3 ~n:4 ~horizon:10_000
      [
        Fault_plan.Crash { pid = 3; at = 7_000 };
        Fault_plan.Slow { pid = 0; at = 0; gap = 60; growth = 1.15 };
        Fault_plan.Unknown { line = planted };
        Fault_plan.Heal { at = 4_000 };
      ]
  in
  let has_unknown p =
    List.mem (Fault_plan.Unknown { line = planted }) (Fault_plan.atoms p)
  in
  let fails p =
    match Fault_plan.of_string (Fault_plan.to_string p) with
    | Error _ -> false
    | Ok p' -> has_unknown p'
  in
  let shrunk = Fault_plan.shrink ~fails plan in
  Alcotest.(check bool) "unknown atom survives shrinking" true
    (has_unknown shrunk);
  Alcotest.(check int) "shrunk to the single load-bearing atom" 1
    (List.length (Fault_plan.atoms shrunk));
  Alcotest.(check string) "re-serializes verbatim"
    (Fault_plan.to_string shrunk)
    (Fault_plan.to_string
       (Result.get_ok (Fault_plan.of_string (Fault_plan.to_string shrunk))))

let qcheck_gen_round_trip =
  QCheck.Test.make ~name:"generated plans round-trip through text" ~count:200
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let plan = Fault_plan.gen rng ~n:4 ~horizon:8_000 in
      match Fault_plan.of_string (Fault_plan.to_string plan) with
      | Error _ -> false
      | Ok plan' -> Fault_plan.equal plan plan')

(* Satellite 4: one (seed, plan, scenario) must produce byte-identical
   traces on repeated runs. The scenario exercises every compilation
   surface: the plan's policy drives the schedule, its crashes are
   installed, and both channel-level targets get plan-wrapped abort
   policies over registers the tasks hammer. *)
let fingerprint_run ~seed plan =
  let n = Fault_plan.n plan in
  let rt = Runtime.create ~seed ~n () in
  let open Tbwf_registers in
  let qa =
    Abortable_reg.create rt ~name:"qa-reg" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1
      ~policy:(Fault_plan.abort_policy plan ~target:Fault_plan.Qa
                 ~base:Abort_policy.Always)
      ()
  in
  let mesh =
    Abortable_reg.create rt ~name:"hb-mesh" ~codec:Codec.int ~init:0 ~writer:2
      ~reader:0
      ~policy:(Fault_plan.abort_policy plan ~target:Fault_plan.Omega_mesh
                 ~base:Abort_policy.Always)
      ()
  in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      let k = ref 0 in
      while true do
        incr k;
        ignore (Abortable_reg.write qa !k);
        ignore (Abortable_reg.read mesh)
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      while true do
        ignore (Abortable_reg.read qa)
      done);
  Runtime.spawn rt ~pid:2 ~name:"hb" (fun () ->
      let k = ref 0 in
      while true do
        incr k;
        ignore (Abortable_reg.write mesh !k)
      done);
  Fault_plan.install_crashes plan rt;
  Runtime.run rt ~policy:(Fault_plan.policy plan)
    ~steps:(Fault_plan.horizon plan);
  let fp = Trace.fingerprint (Runtime.trace rt) in
  Runtime.stop rt;
  fp

let qcheck_deterministic_replay =
  QCheck.Test.make
    ~name:"same (seed, plan, scenario) gives byte-identical traces"
    ~count:40
    QCheck.(pair (int_range 1 100_000) (int_range 1 100_000))
    (fun (seed, plan_seed) ->
      let rng = Rng.create (Int64.of_int plan_seed) in
      let plan = Fault_plan.gen rng ~n:3 ~horizon:2_000 in
      let seed = Int64.of_int seed in
      String.equal (fingerprint_run ~seed plan) (fingerprint_run ~seed plan))

(* A plan parsed back from its serialization compiles identically too. *)
let qcheck_serialized_plan_replays =
  QCheck.Test.make
    ~name:"serialized plan replays byte-identically" ~count:40
    QCheck.(int_range 1 100_000)
    (fun plan_seed ->
      let rng = Rng.create (Int64.of_int plan_seed) in
      let plan = Fault_plan.gen rng ~n:3 ~horizon:2_000 in
      match Fault_plan.of_string (Fault_plan.to_string plan) with
      | Error _ -> false
      | Ok plan' ->
        String.equal
          (fingerprint_run ~seed:42L plan)
          (fingerprint_run ~seed:42L plan'))

(* Campaign smoke: the headline campaign separates a paper system from the
   naive booster at quick dimensions, and the degradation checker agrees
   with both predictions. *)
let test_campaign_smoke () =
  match Campaign.find "slowdown" with
  | None -> Alcotest.fail "slowdown campaign missing from catalogue"
  | Some c ->
    let o =
      Campaign.run ~quick:true
        ~systems:[ Campaign.Tbwf_atomic; Campaign.Naive_booster ] c
    in
    Alcotest.(check bool) "both verdicts as predicted" true o.Campaign.o_ok;
    List.iter
      (fun r ->
        let holds =
          r.Campaign.row_result.Campaign.rr_verdict
            .Tbwf_check.Degradation.holds
        in
        match r.Campaign.row_system with
        | Campaign.Tbwf_atomic ->
          Alcotest.(check bool) "tbwf-atomic holds" true holds
        | Campaign.Naive_booster ->
          Alcotest.(check bool) "naive booster fails" false holds
        | _ -> ())
      o.Campaign.o_rows

let test_catalogue_covers_every_atom () =
  let atoms =
    List.sort_uniq compare (List.map Campaign.headline_atom Campaign.catalogue)
  in
  Alcotest.(check (list string))
    "one campaign per fault atom"
    [ "abort-ramp"; "crash"; "flicker"; "slow"; "staleness"; "timely" ]
    atoms;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Fmt.str "%s expects every baseline to fail" (Campaign.name c))
        true
        (List.for_all
           (fun s -> List.mem s (Campaign.expect_fail c))
           Campaign.baseline_systems))
    Campaign.catalogue

(* The message-passing axis end-to-end: the client-cut campaign over the
   ABD substrate. The paper system must hold its verdict with the cut
   client exempted by emergent untimeliness (it cannot reach a live
   replica majority, so no guarantee is in force for it) while every
   mainland client keeps the timely+quorate guarantee. *)
let test_campaign_mp_smoke () =
  match Campaign.find "net-client-cut" with
  | None -> Alcotest.fail "net-client-cut campaign missing"
  | Some c ->
    let n, horizon = Campaign.dimensions ~quick:true in
    let substrate =
      Tbwf_system.System.Message_passing Tbwf_net.Net.default_config
    in
    let plan = Campaign.plan c ~n ~horizon in
    let r =
      Campaign.run_plan ~substrate ~plan ~system:Campaign.Tbwf_atomic ()
    in
    let v = r.Campaign.rr_verdict in
    Alcotest.(check bool) "tbwf-atomic holds over message passing" true
      v.Tbwf_check.Degradation.holds;
    List.iter
      (fun dv ->
        let open Tbwf_check.Degradation in
        match dv.dv_pid with
        | 1 ->
          Alcotest.(check (option bool)) "cut client not quorate"
            (Some false) dv.dv_quorate;
          Alcotest.(check bool) "and therefore exempt" false
            dv.dv_predicted_timely
        | 0 -> ()
        | _ ->
          Alcotest.(check (option bool))
            (Fmt.str "client %d quorate" dv.dv_pid)
            (Some true) dv.dv_quorate)
      v.Tbwf_check.Degradation.processes

(* The tentpole differential: the online checker consumed the very same
   event stream the run produced, so its verdict must equal the post-hoc
   checker's — field for field, on every (campaign, system) cell of the
   matrix, on both substrates. Structural equality covers the whole
   verdict record including per-process sub-verdicts. *)
let test_online_differential () =
  let pool = Tbwf_parallel.Pool.create () in
  let check_matrix label ?substrate () =
    let m = Campaign.run_matrix ?substrate ~pool ~quick:true () in
    List.iter
      (fun o ->
        List.iter
          (fun r ->
            let rr = r.Campaign.row_result in
            Alcotest.(check bool)
              (Fmt.str "%s/%s/%s online = post-hoc" label
                 (Campaign.name o.Campaign.o_campaign)
                 (Campaign.system_name r.Campaign.row_system))
              true
              (rr.Campaign.rr_online = rr.Campaign.rr_verdict))
          o.Campaign.o_rows)
      m.Campaign.m_outcomes
  in
  check_matrix "shared-memory" ();
  check_matrix "message-passing"
    ~substrate:
      (Tbwf_system.System.Message_passing Tbwf_net.Net.default_config)
    ()

(* The fuzz demo: the planted bug needs both fuzz dimensions (a plan with
   an abort ramp AND a schedule that runs the writer), the shrunk plan
   still fails, and it replays byte-identically from its serialization. *)
let test_fuzz_demo () =
  let outcome = Plan_fuzz.demo ~seed:0xF001L ~runs:200 ~horizon:400 () in
  match outcome.Tbwf_check.Explore.plan_counterexample with
  | None -> Alcotest.fail "fuzz did not find the planted bug"
  | Some (pids, plan) ->
    let held, fp = Plan_fuzz.demo_replay plan pids in
    Alcotest.(check bool) "shrunk counterexample still violates" false held;
    (match Fault_plan.of_string (Fault_plan.to_string plan) with
    | Error msg -> Alcotest.failf "shrunk plan failed to parse: %s" msg
    | Ok plan' ->
      let held', fp' = Plan_fuzz.demo_replay plan' pids in
      Alcotest.(check bool) "parsed plan violates too" false held';
      Alcotest.(check string) "byte-identical replay" fp fp')

let () =
  Alcotest.run "nemesis"
    [
      ( "fault plans",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "comments and blanks" `Quick
            test_comments_and_blanks;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "prediction" `Quick test_prediction;
          QCheck_alcotest.to_alcotest qcheck_gen_round_trip;
        ] );
      ( "fault plans v2",
        [
          Alcotest.test_case "net kitchen sink round trip" `Quick
            test_v2_round_trip;
          Alcotest.test_case "v1 header byte-stable" `Quick
            test_v1_header_stable;
          Alcotest.test_case "unknown kinds: v2 keeps, v1 rejects" `Quick
            test_unknown_kind_versioned;
          Alcotest.test_case "emergent timeliness prediction" `Quick
            test_emergent_prediction;
          Alcotest.test_case "shrink preserves unknown atoms" `Quick
            test_shrink_preserves_unknown_atoms;
          QCheck_alcotest.to_alcotest qcheck_gen_v2_round_trip;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest qcheck_deterministic_replay;
          QCheck_alcotest.to_alcotest qcheck_serialized_plan_replays;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "catalogue covers every atom" `Quick
            test_catalogue_covers_every_atom;
          Alcotest.test_case "slowdown separates systems" `Slow
            test_campaign_smoke;
          Alcotest.test_case "client cut over message passing" `Slow
            test_campaign_mp_smoke;
          Alcotest.test_case "online verdicts equal post-hoc (both substrates)"
            `Slow test_online_differential;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "planted bug found and replayed" `Quick
            test_fuzz_demo ] );
    ]
