open Tbwf_sim
open Tbwf_core

(* --- Workload ------------------------------------------------------------- *)

let test_workload_counts () =
  let rt = Runtime.create ~n:2 () in
  let stats = Workload.fresh_stats ~n:2 in
  let calls = ref 0 in
  Workload.spawn_clients rt ~pids:[ 0; 1 ] ~stats
    ~invoke:(fun op ->
      incr calls;
      Runtime.yield ();
      op)
    ~next_op:(Workload.n_times 4 (Value.Int 9));
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_000;
  Alcotest.(check (array int)) "issued" [| 4; 4 |] stats.Workload.issued;
  Alcotest.(check (array int)) "completed" [| 4; 4 |] stats.Workload.completed;
  Alcotest.(check int) "invoke called per op" 8 !calls;
  Alcotest.(check bool) "last response recorded" true
    (match stats.Workload.last_response.(0) with
    | Some v -> Value.equal v (Value.Int 9)
    | None -> false)

let test_workload_forever_never_stops () =
  let rt = Runtime.create ~n:1 () in
  let stats = Workload.fresh_stats ~n:1 in
  Workload.spawn_clients rt ~pids:[ 0 ] ~stats
    ~invoke:(fun op ->
      Runtime.yield ();
      op)
    ~next_op:(Workload.forever Value.Unit);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:501;
  Runtime.stop rt;
  Alcotest.(check bool) "kept issuing" true (stats.Workload.issued.(0) > 100)

(* --- Progress ------------------------------------------------------------- *)

let test_progress_checks () =
  let before = Workload.fresh_stats ~n:3 in
  let after = Workload.fresh_stats ~n:3 in
  after.Workload.completed.(0) <- 5;
  after.Workload.completed.(1) <- 1;
  Alcotest.(check bool) "endless holds for progressing pids" true
    (Progress.tbwf_holds_endless ~before ~after ~timely:[ 0; 1 ]);
  Alcotest.(check bool) "endless fails for stalled timely pid" false
    (Progress.tbwf_holds_endless ~before ~after ~timely:[ 0; 2 ]);
  Alcotest.(check bool) "lock freedom holds" true
    (Progress.lock_freedom_holds ~before ~after);
  Alcotest.(check bool) "lock freedom fails without progress" false
    (Progress.lock_freedom_holds ~before ~after:before)

let test_progress_snapshot_is_deep () =
  let stats = Workload.fresh_stats ~n:1 in
  let snap = Progress.snapshot stats in
  stats.Workload.completed.(0) <- 7;
  Alcotest.(check int) "snapshot unaffected" 0 snap.Workload.completed.(0)

let test_tbwf_holds_finite () =
  let reports =
    [
      { Progress.pid = 0; timely = true; issued = 5; completed = 5 };
      { Progress.pid = 1; timely = false; issued = 5; completed = 1 };
    ]
  in
  Alcotest.(check bool) "untimely laggard allowed" true
    (Progress.tbwf_holds_finite reports);
  let bad =
    [ { Progress.pid = 0; timely = true; issued = 5; completed = 4 } ]
  in
  Alcotest.(check bool) "timely laggard not allowed" false
    (Progress.tbwf_holds_finite bad)

(* --- Bakery --------------------------------------------------------------- *)

let test_bakery_mutual_exclusion () =
  let rt = Runtime.create ~seed:3L ~n:3 () in
  let lock = Bakery.create rt ~name:"L" in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let rounds = Array.make 3 0 in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        for _ = 1 to 10 do
          Bakery.with_lock lock (fun () ->
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              Runtime.yield ();
              Runtime.yield ();
              decr inside);
          rounds.(pid) <- rounds.(pid) + 1
        done)
  done;
  Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 1.4; 2, 0.8 |])
    ~steps:200_000;
  Runtime.stop rt;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check (array int)) "everyone completed all rounds" [| 10; 10; 10 |]
    rounds

let test_bakery_frozen_holder_blocks_everyone () =
  let rt = Runtime.create ~n:2 () in
  let lock = Bakery.create rt ~name:"L" in
  let p1_acquired = ref false in
  Runtime.spawn rt ~pid:0 ~name:"holder" (fun () ->
      Bakery.lock lock;
      (* never unlocks; its schedule freezes below *)
      while true do
        Runtime.yield ()
      done);
  Runtime.spawn rt ~pid:1 ~name:"waiter" (fun () ->
      for _ = 1 to 50 do
        Runtime.yield ()
      done;
      Bakery.lock lock;
      p1_acquired := true);
  let policy =
    Policy.of_patterns
      [ 0, Policy.Switch_at (200, Policy.Weighted 1.0, Policy.Silent);
        1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps:50_000;
  Runtime.stop rt;
  Alcotest.(check bool) "waiter blocked forever behind frozen holder" false
    !p1_acquired

(* --- Baselines ------------------------------------------------------------ *)

let test_naive_booster_elects_min_pid () =
  let rt = Runtime.create ~n:3 () in
  let booster = Baselines.Naive_booster.install rt in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"cand" (fun () ->
        booster.Baselines.Naive_booster.handles.(pid).Tbwf_omega.Omega_spec.candidate
        := true)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:60_000;
  Runtime.stop rt;
  Array.iter
    (fun h ->
      Alcotest.(check bool) "all views name pid 0" true
        (Tbwf_omega.Omega_spec.equal_view
           !(h.Tbwf_omega.Omega_spec.leader)
           (Tbwf_omega.Omega_spec.Leader 0)))
    booster.Baselines.Naive_booster.handles

let () =
  Alcotest.run "core"
    [
      ( "workload",
        [
          Alcotest.test_case "counts" `Quick test_workload_counts;
          Alcotest.test_case "forever" `Quick test_workload_forever_never_stops;
        ] );
      ( "progress",
        [
          Alcotest.test_case "endless and lock-free checks" `Quick
            test_progress_checks;
          Alcotest.test_case "snapshot deep copies" `Quick
            test_progress_snapshot_is_deep;
          Alcotest.test_case "finite check" `Quick test_tbwf_holds_finite;
        ] );
      ( "bakery",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_bakery_mutual_exclusion;
          Alcotest.test_case "frozen holder blocks everyone" `Quick
            test_bakery_frozen_holder_blocks_everyone;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive booster elects min pid" `Quick
            test_naive_booster_elects_min_pid;
        ] );
    ]
