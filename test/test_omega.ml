open Tbwf_sim
open Tbwf_registers
open Tbwf_omega

let view = Alcotest.testable Omega_spec.pp_view Omega_spec.equal_view

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* --- Omega_spec unit tests ---------------------------------------------- *)

let sample ~at_step views candidacies =
  { Omega_spec.at_step; views = Array.of_list views; candidacies = Array.of_list candidacies }

let stable_samples ell n count =
  List.init count (fun i ->
      sample ~at_step:i
        (List.init n (fun _ -> Omega_spec.Leader ell))
        (List.init n (fun _ -> true)))

let test_check_election_accepts_stable () =
  let samples = stable_samples 1 3 10 in
  let verdict =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0; 1; 2 ]
      ~rcandidates:[] ~ncandidates:[] ~timely:[ 0; 1; 2 ] ~crashed:[] ()
  in
  Alcotest.(check (option int)) "elected" (Some 1) verdict.Omega_spec.elected;
  Alcotest.(check (list string)) "no violations" [] verdict.Omega_spec.violations

let test_check_election_rejects_untimely_leader () =
  let samples = stable_samples 0 3 10 in
  let verdict =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0; 1; 2 ]
      ~rcandidates:[] ~ncandidates:[] ~timely:[ 1; 2 ] ~crashed:[] ()
  in
  (* pid 0 stably elects itself but is not timely: 1(a) has no witness. *)
  Alcotest.(check (option int)) "nobody validly elected" None
    verdict.Omega_spec.elected;
  Alcotest.(check bool) "violation reported" true
    (verdict.Omega_spec.violations <> [])

let test_check_election_ncand_must_see_unknown () =
  let views = [ Omega_spec.Leader 1; Omega_spec.Leader 1; Omega_spec.Leader 1 ] in
  let samples = List.init 10 (fun i -> sample ~at_step:i views [ true; true; false ]) in
  let verdict =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0; 1 ]
      ~rcandidates:[] ~ncandidates:[ 2 ] ~timely:[ 0; 1; 2 ] ~crashed:[] ()
  in
  Alcotest.(check bool) "property 2 violated" true
    (List.exists
       (fun v -> contains_substring v "property 2")
       verdict.Omega_spec.violations)

let test_check_election_rcand_may_see_unknown () =
  let mixed i =
    sample ~at_step:i
      [
        Omega_spec.Leader 0;
        (if i mod 2 = 0 then Omega_spec.No_leader else Omega_spec.Leader 0);
      ]
      [ true; i mod 2 = 1 ]
  in
  let samples = List.init 10 mixed in
  let verdict =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0 ]
      ~rcandidates:[ 1 ] ~ncandidates:[] ~timely:[ 0; 1 ] ~crashed:[] ()
  in
  Alcotest.(check (option int)) "elected 0" (Some 0) verdict.Omega_spec.elected;
  Alcotest.(check (list string)) "rcand flapping between ? and leader is fine"
    [] verdict.Omega_spec.violations

let test_lagging_exemption () =
  (* pid 1 is a non-timely pcandidate with a stale view; without the
     exemption 1(b) fails, with it the verdict is clean. *)
  let samples =
    List.init 10 (fun i ->
        sample ~at_step:i
          [ Omega_spec.Leader 0; Omega_spec.Leader 1 ]
          [ true; true ])
  in
  let strict =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0; 1 ]
      ~rcandidates:[] ~ncandidates:[] ~timely:[ 0 ] ~crashed:[] ()
  in
  Alcotest.(check bool) "strict check flags stale view" true
    (strict.Omega_spec.violations <> []);
  let lenient =
    Omega_spec.check_election ~samples ~suffix:5 ~pcandidates:[ 0; 1 ]
      ~rcandidates:[] ~ncandidates:[] ~timely:[ 0 ] ~crashed:[] ~lagging:[ 1 ] ()
  in
  Alcotest.(check (list string)) "lagging exempt" [] lenient.Omega_spec.violations

(* --- election end-to-end ------------------------------------------------ *)

let install_omega ~kind rt =
  match kind with
  | `Atomic -> (Omega_registers.install rt).Omega_registers.handles
  | `Abortable ->
    (Omega_abortable.install rt ~policy:Abort_policy.Always ()).Omega_abortable.handles

let elect_all_timely kind () =
  let n = 3 in
  let rt = Runtime.create ~seed:8L ~n () in
  let handles = install_omega ~kind rt in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"cand" (fun () ->
        handles.(pid).Omega_spec.candidate := true)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:60_000;
  Runtime.stop rt;
  (* All views must agree on one leader who sees itself. *)
  let leader_of h = !(h.Omega_spec.leader) in
  (match leader_of handles.(0) with
  | Omega_spec.Leader ell ->
    Array.iter
      (fun h -> Alcotest.check view "agreement" (Omega_spec.Leader ell) (leader_of h))
      handles
  | Omega_spec.No_leader -> Alcotest.fail "no leader elected")

let elect_past_crashed kind () =
  let n = 3 in
  let rt = Runtime.create ~seed:12L ~n () in
  let handles = install_omega ~kind rt in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"cand" (fun () ->
        handles.(pid).Omega_spec.candidate := true)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:40_000;
  (* Crash whoever currently leads; a new leader must emerge. *)
  let old_leader =
    match !(handles.(1).Omega_spec.leader) with
    | Omega_spec.Leader l -> l
    | Omega_spec.No_leader -> 0
  in
  Runtime.crash_at rt ~pid:old_leader ~step:(Runtime.now rt);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:120_000;
  Runtime.stop rt;
  let survivor = if old_leader = 0 then 1 else 0 in
  (match !(handles.(survivor).Omega_spec.leader) with
  | Omega_spec.Leader l ->
    Alcotest.(check bool) "new leader is alive" true (l <> old_leader)
  | Omega_spec.No_leader -> Alcotest.fail "no leader after crash")

let test_canonical_join_waits () =
  let rt = Runtime.create ~n:2 () in
  let handle = Omega_spec.make_handle ~pid:0 in
  handle.Omega_spec.leader := Omega_spec.Leader 0;
  let joined = ref false in
  Runtime.spawn rt ~pid:0 ~name:"joiner" (fun () ->
      Omega_spec.canonical_join handle;
      joined := true);
  Runtime.spawn rt ~pid:1 ~name:"releaser" (fun () ->
      for _ = 1 to 20 do
        Runtime.yield ()
      done;
      handle.Omega_spec.leader := Omega_spec.No_leader);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10;
  Alcotest.(check bool) "still waiting while leader=self" false !joined;
  Alcotest.(check bool) "not yet candidate" false !(handle.Omega_spec.candidate);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check bool) "joined after leadership released" true !joined;
  Alcotest.(check bool) "candidate now" true !(handle.Omega_spec.candidate);
  Runtime.stop rt

(* --- abortable communication building blocks ---------------------------- *)

let test_msg_channel_delivers_final_value () =
  let rt = Runtime.create ~seed:4L ~n:2 () in
  let registers = Msg_channel.registers rt ~policy:Abort_policy.Always ~n:2 () in
  let sender = Msg_channel.create ~me:0 ~registers in
  let receiver = Msg_channel.create ~me:1 ~registers in
  let payload = 42, 7 in
  Runtime.spawn rt ~pid:0 ~name:"sender" (fun () ->
      let msg_to = [| (0, 0); payload |] in
      while true do
        let (_ : bool array) = Msg_channel.write_msgs sender msg_to in
        Runtime.yield ()
      done);
  let received = ref (0, 0) in
  Runtime.spawn rt ~pid:1 ~name:"receiver" (fun () ->
      while true do
        let from = Msg_channel.read_msgs receiver in
        received := from.(0);
        Runtime.yield ()
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:30_000;
  Runtime.stop rt;
  Alcotest.(check (pair int int))
    "final value delivered despite always-abort-on-overlap" payload !received

let test_heartbeat_detects_timely_writer () =
  let rt = Runtime.create ~seed:3L ~n:2 () in
  let mesh = Heartbeat.registers rt ~policy:Abort_policy.Always ~n:2 () in
  let sender = Heartbeat.create ~me:0 ~mesh in
  let receiver = Heartbeat.create ~me:1 ~mesh in
  Runtime.spawn rt ~pid:0 ~name:"sender" (fun () ->
      let dest = [| false; true |] in
      while true do
        Heartbeat.send sender ~dest;
        Runtime.yield ()
      done);
  let active = ref false in
  Runtime.spawn rt ~pid:1 ~name:"receiver" (fun () ->
      while true do
        let set = Heartbeat.receive receiver in
        active := set.(0);
        Runtime.yield ()
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:20_000;
  Runtime.stop rt;
  Alcotest.(check bool) "timely sender detected active" true !active

let test_heartbeat_detects_silent_writer () =
  let rt = Runtime.create ~seed:3L ~n:2 () in
  let mesh = Heartbeat.registers rt ~policy:Abort_policy.Always ~n:2 () in
  let sender = Heartbeat.create ~me:0 ~mesh in
  let receiver = Heartbeat.create ~me:1 ~mesh in
  (* Sender beats for a while, then goes silent forever. *)
  Runtime.spawn rt ~pid:0 ~name:"sender" (fun () ->
      let dest = [| false; true |] in
      for _ = 1 to 100 do
        Heartbeat.send sender ~dest;
        Runtime.yield ()
      done);
  let active = ref true in
  Runtime.spawn rt ~pid:1 ~name:"receiver" (fun () ->
      while true do
        let set = Heartbeat.receive receiver in
        active := set.(0);
        Runtime.yield ()
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:30_000;
  Runtime.stop rt;
  Alcotest.(check bool) "silent sender eventually inactive" false !active

(* Fuzz: random candidate-class assignments (all processes timely) must
   always satisfy Definition 5 / Theorem 7 for both implementations. *)
let qcheck_random_classes =
  QCheck.Test.make ~name:"random candidate classes elect cleanly" ~count:8
    QCheck.(pair (int_range 1 10_000) bool)
    (fun (seed, use_abortable) ->
      let n = 5 in
      let rng = Rng.create (Int64.of_int seed) in
      let assignment =
        List.init n (fun pid -> pid, Rng.int rng 3 (* 0=P 1=R 2=N *))
      in
      let of_kind k =
        List.filter_map (fun (pid, kind) -> if kind = k then Some pid else None)
          assignment
      in
      let pcands = match of_kind 0 with [] -> [ 0 ] | ps -> ps in
      let rcands = List.filter (fun p -> not (List.mem p pcands)) (of_kind 1) in
      let ncands = List.filter (fun p -> not (List.mem p pcands)) (of_kind 2) in
      let classes =
        {
          Tbwf_experiments.Omega_scenarios.pcands;
          rcands;
          ncands;
          untimely = [];
          crashes = [];
        }
      in
      let omega =
        if use_abortable then
          Tbwf_experiments.Scenario.Omega_abortable Tbwf_registers.Abort_policy.Always
        else Tbwf_experiments.Scenario.Omega_atomic
      in
      let outcome =
        Tbwf_experiments.Omega_scenarios.run ~seed:(Int64.of_int (seed + 7)) ~n
          ~omega ~classes ~segments:12 ~segment_steps:5_000 ~rcand_phase:60
          ~ncand_phase:80 ()
      in
      let verdict = outcome.Tbwf_experiments.Omega_scenarios.verdict in
      verdict.Omega_spec.violations = []
      &&
      match verdict.Omega_spec.elected with
      | Some ell -> List.mem ell (pcands @ rcands)
      | None -> false)

let () =
  Alcotest.run "omega"
    [
      ( "spec checker",
        [
          Alcotest.test_case "accepts stable election" `Quick
            test_check_election_accepts_stable;
          Alcotest.test_case "rejects untimely leader" `Quick
            test_check_election_rejects_untimely_leader;
          Alcotest.test_case "ncand must see ?" `Quick
            test_check_election_ncand_must_see_unknown;
          Alcotest.test_case "rcand may see ?" `Quick
            test_check_election_rcand_may_see_unknown;
          Alcotest.test_case "lagging exemption" `Quick test_lagging_exemption;
          Alcotest.test_case "canonical join waits" `Quick test_canonical_join_waits;
        ] );
      ( "election",
        [
          Alcotest.test_case "atomic: all-timely elects" `Quick
            (elect_all_timely `Atomic);
          Alcotest.test_case "abortable: all-timely elects" `Quick
            (elect_all_timely `Abortable);
          Alcotest.test_case "atomic: survives leader crash" `Slow
            (elect_past_crashed `Atomic);
          Alcotest.test_case "abortable: survives leader crash" `Slow
            (elect_past_crashed `Abortable);
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest qcheck_random_classes ] );
      ( "abortable channels",
        [
          Alcotest.test_case "msg channel delivers final value" `Quick
            test_msg_channel_delivers_final_value;
          Alcotest.test_case "heartbeat detects timely writer" `Quick
            test_heartbeat_detects_timely_writer;
          Alcotest.test_case "heartbeat detects silent writer" `Quick
            test_heartbeat_detects_silent_writer;
        ] );
    ]
