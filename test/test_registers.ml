open Tbwf_sim
open Tbwf_registers
open Tbwf_check

let test_atomic_read_write_solo () =
  let rt = Runtime.create ~n:1 () in
  let reg = Atomic_reg.create rt ~name:"r" ~codec:Codec.int ~init:5 in
  let observed = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      observed := Atomic_reg.read reg :: !observed;
      Atomic_reg.write reg 9;
      observed := Atomic_reg.read reg :: !observed);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check (list int)) "init then written" [ 9; 5 ] !observed;
  Alcotest.(check int) "peek" 9 (Atomic_reg.peek reg)

let test_atomic_metrics () =
  let rt = Runtime.create ~n:1 () in
  let reg = Atomic_reg.create rt ~name:"r" ~codec:Codec.int ~init:0 in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      for _ = 1 to 3 do
        Atomic_reg.write reg 1
      done;
      for _ = 1 to 5 do
        ignore (Atomic_reg.read reg)
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  let m = Atomic_reg.metrics reg in
  Alcotest.(check int) "writes" 3 m.Metrics.writes;
  Alcotest.(check int) "reads" 5 m.Metrics.reads

(* Concurrent atomic-register histories must be linearizable (checked with
   the Wing–Gong checker) for many random schedules. *)
let qcheck_atomic_linearizable =
  QCheck.Test.make ~name:"atomic register histories linearizable" ~count:60
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rt = Runtime.create ~seed:(Int64.of_int seed) ~n:3 () in
      let reg = Atomic_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
      for pid = 0 to 2 do
        Runtime.spawn rt ~pid ~name:"t" (fun () ->
            for k = 1 to 4 do
              Atomic_reg.write reg ((pid * 10) + k);
              ignore (Atomic_reg.read reg)
            done)
      done;
      Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 1.5; 2, 0.7 |]) ~steps:500;
      Runtime.stop rt;
      let history = History.complete_ops (Runtime.trace rt) ~obj_name:"R" in
      Linearizability.check (Linearizability.register_spec ~init:(Value.Int 0)) history)

let test_abortable_solo_never_aborts () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always ()
  in
  let write_results = ref [] in
  let read_results = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      for k = 1 to 5 do
        let ok = Abortable_reg.write reg k in
        write_results := ok :: !write_results
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      (* Wait until the writer is done, then read solo. *)
      Runtime.await (fun () -> Abortable_reg.peek reg = 5);
      let r = Abortable_reg.read reg in
      read_results := r :: !read_results);
  (* Writer first (its ops run solo because the reader only awaits). *)
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:200;
  Alcotest.(check (list bool)) "solo writes succeed"
    [ true; true; true; true; true ] !write_results;
  Alcotest.(check (list (option int))) "solo read succeeds" [ Some 5 ]
    !read_results;
  Runtime.stop rt

let test_abortable_always_aborts_on_overlap () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always
      ~write_effect:Abort_policy.Effect_never ()
  in
  let aborted_writes = ref 0 and aborted_reads = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      for k = 1 to 20 do
        if not (Abortable_reg.write reg k) then incr aborted_writes
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 20 do
        if Abortable_reg.read reg = None then incr aborted_reads
      done);
  (* Strict alternation: every op overlaps the other side's op. *)
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:200;
  Runtime.stop rt;
  Alcotest.(check int) "all writes aborted" 20 !aborted_writes;
  Alcotest.(check int) "all reads aborted" 20 !aborted_reads;
  Alcotest.(check int) "no aborted write took effect (Effect_never)" 0
    (Abortable_reg.peek reg)

let test_abortable_aborted_write_may_take_effect () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always
      ~write_effect:Abort_policy.Effect_always ()
  in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      ignore (Abortable_reg.write reg 42));
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      ignore (Abortable_reg.read reg));
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:50;
  Runtime.stop rt;
  Alcotest.(check int) "aborted write took effect (Effect_always)" 42
    (Abortable_reg.peek reg)

let test_abortable_swsr_enforced () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Never ()
  in
  let raised = ref false in
  Runtime.spawn rt ~pid:1 ~name:"bad-writer" (fun () ->
      try ignore (Abortable_reg.write reg 1)
      with Invalid_argument _ -> raised := true);
  (try Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:50
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "wrong-pid write rejected" true !raised

let test_abortable_random_policy_partial () =
  let rt = Runtime.create ~seed:77L ~n:2 () in
  let reg =
    Abortable_reg.create rt ~name:"a" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:(Abort_policy.Random 0.5) ()
  in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      for k = 1 to 200 do
        ignore (Abortable_reg.write reg k)
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 200 do
        ignore (Abortable_reg.read reg)
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2000;
  Runtime.stop rt;
  let m = Abortable_reg.metrics reg in
  let aborts = m.Metrics.read_aborts + m.Metrics.write_aborts in
  let rate = float_of_int aborts /. float_of_int (Metrics.total_ops m) in
  Alcotest.(check bool) "rate strictly between 0 and 1" true
    (rate > 0.2 && rate < 0.8)

let test_safe_reg_quiet_reads_exact () =
  let rt = Runtime.create ~n:2 () in
  let reg =
    Safe_reg.create rt ~name:"s" ~codec:Codec.int ~init:3
      ~arbitrary:(fun rng -> Rng.int rng 1000)
  in
  let result = ref None in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () -> Safe_reg.write reg 8);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      Runtime.await (fun () -> Safe_reg.peek reg = 8);
      result := Some (Safe_reg.read reg));
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Runtime.stop rt;
  Alcotest.(check (option int)) "quiet read returns written value" (Some 8)
    !result

let test_safe_reg_concurrent_reads_garbled () =
  (* With reads always overlapping writes, safe-register reads may return
     arbitrary domain values — check we can observe one outside the set of
     values ever written. *)
  let rt = Runtime.create ~seed:5L ~n:2 () in
  let reg =
    Safe_reg.create rt ~name:"s" ~codec:Codec.int ~init:0
      ~arbitrary:(fun rng -> 500 + Rng.int rng 100)
  in
  let garbled = ref false in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      for k = 1 to 50 do
        Safe_reg.write reg k
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 50 do
        if Safe_reg.read reg >= 500 then garbled := true
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:500;
  Runtime.stop rt;
  Alcotest.(check bool) "some read garbled" true !garbled

let test_regular_reg_returns_old_or_concurrent () =
  let rt = Runtime.create ~seed:6L ~n:2 () in
  let reg = Regular_reg.create rt ~name:"g" ~codec:Codec.int ~init:0 in
  let ok = ref true in
  let writes_done = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      for k = 1 to 50 do
        Regular_reg.write reg k;
        writes_done := k
      done);
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 50 do
        let v = Regular_reg.read reg in
        (* Any read must return a value that was written (or the init). *)
        if v < 0 || v > 50 then ok := false
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:500;
  Runtime.stop rt;
  Alcotest.(check bool) "reads within written domain" true !ok

let () =
  Alcotest.run "registers"
    [
      ( "atomic",
        [
          Alcotest.test_case "solo read/write" `Quick test_atomic_read_write_solo;
          Alcotest.test_case "metrics" `Quick test_atomic_metrics;
          QCheck_alcotest.to_alcotest qcheck_atomic_linearizable;
        ] );
      ( "abortable",
        [
          Alcotest.test_case "solo never aborts" `Quick
            test_abortable_solo_never_aborts;
          Alcotest.test_case "always aborts on overlap" `Quick
            test_abortable_always_aborts_on_overlap;
          Alcotest.test_case "aborted write may take effect" `Quick
            test_abortable_aborted_write_may_take_effect;
          Alcotest.test_case "SWSR enforced" `Quick test_abortable_swsr_enforced;
          Alcotest.test_case "random policy partial" `Quick
            test_abortable_random_policy_partial;
        ] );
      ( "safe and regular",
        [
          Alcotest.test_case "safe quiet reads exact" `Quick
            test_safe_reg_quiet_reads_exact;
          Alcotest.test_case "safe concurrent reads garbled" `Quick
            test_safe_reg_concurrent_reads_garbled;
          Alcotest.test_case "regular reads old or concurrent" `Quick
            test_regular_reg_returns_old_or_concurrent;
        ] );
    ]
