open Tbwf_sim

let value = Alcotest.testable Value.pp Value.equal

(* A trivial cell object for runtime tests: applies writes, answers reads,
   and records contention flags. *)
let make_cell rt =
  let contents = ref (Value.Int 0) in
  let overlaps = ref [] in
  let contentions = ref [] in
  let obj =
    Runtime.register_object rt ~name:"cell" ~respond:(fun ctx ->
        overlaps := ctx.Shared.overlapped :: !overlaps;
        contentions := ctx.Shared.step_contended :: !contentions;
        match ctx.Shared.op with
        | Value.Pair (Str "write", v) ->
          contents := v;
          Value.Unit
        | Value.Pair (Str "read", _) -> !contents
        | _ -> assert false)
  in
  obj, contents, overlaps, contentions

let test_single_task_runs_to_completion () =
  let rt = Runtime.create ~n:1 () in
  let counter = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      for _ = 1 to 10 do
        incr counter;
        Runtime.yield ()
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check int) "body completed" 10 !counter;
  Alcotest.(check bool) "stopped early when done" true (Runtime.now rt < 100)

let test_register_op_spans_two_steps () =
  let rt = Runtime.create ~n:1 () in
  let obj, _, _, _ = make_cell rt in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  (* invoke step + response step *)
  Alcotest.(check int) "two steps" 2 (Runtime.now rt)

let test_solo_ops_not_overlapped () =
  let rt = Runtime.create ~n:1 () in
  let obj, contents, overlaps, contentions = make_cell rt in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj (Value.write_op (Value.Int 7)) in
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.check value "write applied" (Value.Int 7) !contents;
  Alcotest.(check bool) "no overlap" true (List.for_all not !overlaps);
  Alcotest.(check bool) "no contention" true (List.for_all not !contentions)

let test_interleaved_ops_overlap () =
  let rt = Runtime.create ~n:2 () in
  let obj, _, overlaps, contentions = make_cell rt in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        let (_ : Value.t) = Runtime.call obj Value.read_op in
        ())
  done;
  (* Round robin: p0 invokes, p1 invokes, p0 responds, p1 responds. *)
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check (list bool)) "both overlapped" [ true; true ] !overlaps;
  Alcotest.(check (list bool)) "both step-contended" [ true; true ] !contentions

let test_pending_op_overlaps_but_does_not_contend () =
  let rt = Runtime.create ~n:2 () in
  let obj, _, overlaps, contentions = make_cell rt in
  (* p0 invokes an op and then never runs again (Silent after step 0), so
     its operation stays pending. p1's later ops overlap that pending op,
     but p0 generates no steps, so p1 is not step-contended (after p1's
     first op window, which contains p0's invocation). *)
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  Runtime.spawn rt ~pid:1 ~name:"t" (fun () ->
      for _ = 1 to 3 do
        let (_ : Value.t) = Runtime.call obj Value.read_op in
        ()
      done);
  let policy =
    Policy.of_patterns
      [ 0, Policy.Switch_at (1, Policy.Every { period = 1; offset = 0 }, Policy.Silent);
        1, Policy.Weighted 1.0 ]
  in
  Runtime.run rt ~policy ~steps:100;
  (* p0 invoked at step 0 and froze; p1's three ops all overlap that pending
     operation, but the frozen process generates no events inside their
     windows, so none of them is step-contended. *)
  Alcotest.(check int) "three responses" 3 (List.length !overlaps);
  Alcotest.(check bool) "all overlapped (pending op)" true
    (List.for_all Fun.id !overlaps);
  Alcotest.(check (list bool)) "none step-contended" [ false; false; false ]
    !contentions

let test_crash_stops_process () =
  let rt = Runtime.create ~n:2 () in
  let steps_taken = Array.make 2 0 in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        while true do
          steps_taken.(pid) <- steps_taken.(pid) + 1;
          Runtime.yield ()
        done)
  done;
  Runtime.crash_at rt ~pid:0 ~step:20;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check bool) "pid 0 crashed" true (Runtime.crashed rt ~pid:0);
  Alcotest.(check bool) "pid 1 alive" false (Runtime.crashed rt ~pid:1);
  Alcotest.(check bool) "pid 0 stopped near crash point" true
    (steps_taken.(0) <= 12);
  Alcotest.(check bool) "pid 1 kept going" true (steps_taken.(1) > 40);
  Runtime.stop rt

let test_crash_resolves_pending_op () =
  let rt = Runtime.create ~n:2 () in
  let responded = ref 0 in
  let obj =
    Runtime.register_object rt ~name:"o" ~respond:(fun _ctx ->
        incr responded;
        Value.Unit)
  in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj (Value.write_op (Value.Int 1)) in
      ());
  Runtime.spawn rt ~pid:1 ~name:"spin" (fun () ->
      while true do
        Runtime.yield ()
      done);
  (* Crash p0 right after its invoke step (p0 runs at step 0, crash at 1). *)
  Runtime.crash_at rt ~pid:0 ~step:1;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10;
  Alcotest.(check int) "pending op resolved at crash" 1 !responded;
  Runtime.stop rt

let test_multi_task_round_robin () =
  let rt = Runtime.create ~n:1 () in
  let log = ref [] in
  for task = 0 to 2 do
    Runtime.spawn rt ~pid:0 ~name:(Fmt.str "t%d" task) (fun () ->
        for _ = 1 to 3 do
          log := task :: !log;
          Runtime.yield ()
        done)
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check (list int)) "tasks interleaved round-robin"
    [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ]
    (List.rev !log)

let test_self () =
  let rt = Runtime.create ~n:3 () in
  let seen = Array.make 3 (-1) in
  for pid = 0 to 2 do
    Runtime.spawn rt ~pid ~name:"t" (fun () -> seen.(pid) <- Runtime.self ())
  done;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10;
  Alcotest.(check (array int)) "self returns own pid" [| 0; 1; 2 |] seen

let test_determinism_same_seed () =
  let run seed =
    let rt = Runtime.create ~seed ~n:3 () in
    let obj, contents, _, _ = make_cell rt in
    for pid = 0 to 2 do
      Runtime.spawn rt ~pid ~name:"t" (fun () ->
          for k = 1 to 20 do
            let (_ : Value.t) =
              Runtime.call obj (Value.write_op (Value.Int ((pid * 100) + k)))
            in
            ()
          done)
    done;
    Runtime.run rt ~policy:(Policy.weighted [| 0, 1.0; 1, 2.0; 2, 3.0 |]) ~steps:500;
    let trace = Runtime.trace rt in
    let pids = List.init (Trace.length trace) (Trace.pid_at trace) in
    pids, !contents
  in
  let t1, c1 = run 123L in
  let t2, c2 = run 123L in
  let t3, _ = run 321L in
  Alcotest.(check (list int)) "same seed, same schedule" t1 t2;
  Alcotest.check value "same seed, same state" c1 c2;
  Alcotest.(check bool) "different seed, different schedule" true (t1 <> t3)

let test_await () =
  let rt = Runtime.create ~n:2 () in
  let flag = ref false in
  let done_waiting = ref false in
  Runtime.spawn rt ~pid:0 ~name:"waiter" (fun () ->
      Runtime.await (fun () -> !flag);
      done_waiting := true);
  Runtime.spawn rt ~pid:1 ~name:"setter" (fun () ->
      for _ = 1 to 10 do
        Runtime.yield ()
      done;
      flag := true);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:100;
  Alcotest.(check bool) "await completed after flag" true !done_waiting

let test_stop_unwinds_tasks () =
  let rt = Runtime.create ~n:1 () in
  let cleaned = ref false in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      try
        while true do
          Runtime.yield ()
        done
      with Runtime.Simulation_over as e ->
        cleaned := true;
        raise e);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10;
  Runtime.stop rt;
  Alcotest.(check bool) "teardown reached task" true !cleaned

let test_spawn_during_run () =
  let rt = Runtime.create ~n:1 () in
  let child_ran = ref false in
  Runtime.spawn rt ~pid:0 ~name:"parent" (fun () ->
      Runtime.spawn rt ~pid:0 ~name:"child" (fun () -> child_ran := true);
      Runtime.yield ());
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:10;
  Alcotest.(check bool) "dynamically spawned task ran" true !child_ran

let test_idle_steps_advance_time () =
  let rt = Runtime.create ~n:1 () in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      while true do
        Runtime.yield ()
      done);
  let policy = Policy.of_patterns [ 0, Policy.Silent ] in
  Runtime.run rt ~policy ~steps:50;
  Alcotest.(check int) "idle steps counted" 50 (Runtime.now rt);
  Runtime.stop rt

let () =
  Alcotest.run "runtime"
    [
      ( "unit",
        [
          Alcotest.test_case "single task completes" `Quick
            test_single_task_runs_to_completion;
          Alcotest.test_case "op spans two steps" `Quick
            test_register_op_spans_two_steps;
          Alcotest.test_case "solo ops not overlapped" `Quick
            test_solo_ops_not_overlapped;
          Alcotest.test_case "interleaved ops overlap" `Quick
            test_interleaved_ops_overlap;
          Alcotest.test_case "pending op overlaps without contending" `Quick
            test_pending_op_overlaps_but_does_not_contend;
          Alcotest.test_case "crash stops process" `Quick test_crash_stops_process;
          Alcotest.test_case "crash resolves pending op" `Quick
            test_crash_resolves_pending_op;
          Alcotest.test_case "multi-task round robin" `Quick
            test_multi_task_round_robin;
          Alcotest.test_case "self" `Quick test_self;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
          Alcotest.test_case "await" `Quick test_await;
          Alcotest.test_case "stop unwinds tasks" `Quick test_stop_unwinds_tasks;
          Alcotest.test_case "spawn during run" `Quick test_spawn_during_run;
          Alcotest.test_case "idle steps advance time" `Quick
            test_idle_steps_advance_time;
        ] );
    ]
