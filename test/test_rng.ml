open Tbwf_sim

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_different_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next a) (Rng.next b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7L in
  let (_ : int64) = Rng.next a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b);
  let (_ : int64) = Rng.next a in
  let va = Rng.next a in
  let vb = Rng.next b in
  Alcotest.(check bool) "advancing one does not advance the other"
    false (Int64.equal va vb)

let test_split_diverges () =
  let a = Rng.create 11L in
  let b = Rng.split a in
  let equal_count = ref 0 in
  for _ = 1 to 20 do
    if Int64.equal (Rng.next a) (Rng.next b) then incr equal_count
  done;
  Alcotest.(check bool) "split stream is distinct" true (!equal_count < 20)

let test_task_seed_deterministic () =
  let a = Rng.task_seeds ~master:42L 16 in
  let b = Rng.task_seeds ~master:42L 16 in
  Alcotest.(check bool) "same master, same seed array" true (a = b);
  Array.iteri
    (fun i s ->
      Alcotest.(check int64) "task_seeds agrees with task_seed" s
        (Rng.task_seed ~master:42L i))
    a

let test_task_seed_distinct () =
  let seeds = Array.to_list (Rng.task_seeds ~master:7L 64) in
  Alcotest.(check int) "all indices distinct" 64
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool) "masters diverge" false
    (Int64.equal (Rng.task_seed ~master:1L 0) (Rng.task_seed ~master:2L 0));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.task_seed: negative index") (fun () ->
      ignore (Rng.task_seed ~master:1L (-1)))

let test_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 5L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let test_bool_probability () =
  let rng = Rng.create 9L in
  let hits = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Rng.bool rng 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "rate near 0.25" true (rate > 0.23 && rate < 0.27)

let test_int_uniformity () =
  let rng = Rng.create 13L in
  let buckets = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = trials / 8 in
      if abs (count - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i count expected)
    buckets

let int64_of_int_gen = QCheck.map Int64.of_int QCheck.int

let qcheck_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair (small_list small_int) int64_of_int_gen)
    (fun (xs, seed) ->
      let rng = Rng.create seed in
      let arr = Array.of_list xs in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let qcheck_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 20) small_int) small_int)
    (fun (xs, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let arr = Array.of_list xs in
      List.mem (Rng.pick rng arr) xs)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
          Alcotest.test_case "copy is independent" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "task seeds deterministic" `Quick
            test_task_seed_deterministic;
          Alcotest.test_case "task seeds distinct" `Quick
            test_task_seed_distinct;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects non-positive" `Quick
            test_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bool probability" `Quick test_bool_probability;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_shuffle_is_permutation; qcheck_pick_member ] );
    ]
